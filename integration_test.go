// Integration tests across the whole stack: strategies must
// interoperate on the same file, runs must be deterministic, traces
// must replay faithfully, and every byte must survive arbitrary
// workloads under every strategy.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/adio"
	"repro/internal/bench"
	"repro/internal/buffer"
	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/iolib"
	"repro/internal/iotrace"
	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/workload"
)

// quietPlatform is a small machine without jitter for byte-exact tests.
func quietPlatform(nodes, cores int) (cluster.Config, pfs.Config) {
	mcfg := cluster.TestbedConfig(nodes)
	mcfg.CoresPerNode = cores
	mcfg.MemPerNode = 8 * cluster.MiB
	mcfg.MemSigma = float64(50*cluster.MB) / float64(mcfg.MemPerNode)
	mcfg.MemFloor = 2 * cluster.MiB
	mcfg.Seed = 5
	fcfg := pfs.DefaultConfig()
	fcfg.Seed = 5
	return mcfg, fcfg
}

// mccioOpts builds strategy options for the quiet platform.
func mccioOpts(mcfg cluster.Config, fcfg pfs.Config, total int64) core.Options {
	opts := core.DefaultOptions(mcfg, fcfg)
	opts.Msggroup = total / 2
	opts.Memmin = 1 << 20
	return opts
}

// TestCrossStrategyInterop writes with one strategy and reads with
// another in every combination; the file contents are strategy-
// independent, so every combination must verify.
func TestCrossStrategyInterop(t *testing.T) {
	mcfg, fcfg := quietPlatform(3, 4)
	const nprocs = 12
	wl := workload.IOR{Ranks: nprocs, BlockSize: 32 << 10, Segments: 8}
	strategies := func() map[string]iolib.Collective {
		return map[string]iolib.Collective{
			"two-phase":     collio.TwoPhase{CBBuffer: 256 << 10},
			"mccio":         core.MCCIO{Opts: mccioOpts(mcfg, fcfg, wl.TotalBytes())},
			"mccio-combine": core.MCCIO{Opts: func() core.Options { o := mccioOpts(mcfg, fcfg, wl.TotalBytes()); o.NodeCombine = true; return o }()},
			"independent":   iolib.Naive{Opts: iolib.SieveOptions{}},
		}
	}
	for wName, w := range strategies() {
		for rName, r := range strategies() {
			t.Run(wName+"->"+rName, func(t *testing.T) {
				engine := simtime.NewEngine()
				machine, err := cluster.New(mcfg)
				if err != nil {
					t.Fatal(err)
				}
				fs, err := pfs.New(fcfg, machine)
				if err != nil {
					t.Fatal(err)
				}
				world, err := mpi.NewWorld(engine, machine, nprocs)
				if err != nil {
					t.Fatal(err)
				}
				file := iolib.Open(fs, "interop")
				world.Start(func(c *mpi.Comm) {
					view := wl.View(c.Rank())
					data := buffer.NewReal(view.TotalBytes())
					var pos int64
					for _, s := range view {
						data.Slice(pos, s.Len).Fill(uint64(c.Rank()), s.Off)
						pos += s.Len
					}
					iolib.Run(w, "write", file, c, view, data, nil)
					dst := buffer.NewReal(view.TotalBytes())
					iolib.Run(r, "read", file, c, view, dst, nil)
					pos = 0
					for _, s := range view {
						if i := dst.Slice(pos, s.Len).Verify(uint64(c.Rank()), s.Off); i != -1 {
							t.Errorf("rank %d %v byte %d", c.Rank(), s, i)
						}
						pos += s.Len
					}
				})
				if err := engine.Run(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestDeterminism runs the same spec twice and demands identical
// virtual timing and metrics.
func TestDeterminism(t *testing.T) {
	mcfg, fcfg := quietPlatform(4, 4)
	fcfg.JitterMean = 12e-3 // jitter is seeded, so still deterministic
	wl := workload.IOR{Ranks: 16, BlockSize: 256 << 10, Segments: 8}
	spec := bench.Spec{
		Strategy: core.MCCIO{Opts: mccioOpts(mcfg, fcfg, wl.TotalBytes())},
		Op:       "write", Machine: mcfg, FS: fcfg, Workload: wl,
	}
	a, err := bench.RunOnce(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bench.RunOnce(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.Rounds != b.Rounds || a.BytesShuffleInter != b.BytesShuffleInter {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

// TestSeedSensitivity: different storage-jitter seeds must actually
// change timing (the jitter is real), without changing correctness.
func TestSeedSensitivity(t *testing.T) {
	mcfg, fcfg := quietPlatform(4, 4)
	fcfg.JitterMean = 12e-3
	wl := workload.IOR{Ranks: 16, BlockSize: 256 << 10, Segments: 8}
	run := func(seed uint64) float64 {
		f := fcfg
		f.Seed = seed
		res, err := bench.RunOnce(bench.Spec{
			Strategy: collio.TwoPhase{CBBuffer: 1 << 20},
			Op:       "write", Machine: mcfg, FS: f, Workload: wl,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	if run(1) == run(2) {
		t.Fatal("different jitter seeds produced identical timing")
	}
}

// TestTraceReplayEndToEnd: a generated trace replays through the full
// simulator with verification.
func TestTraceReplayEndToEnd(t *testing.T) {
	wl := workload.Random{Ranks: 8, SegsPerRank: 16, SegLen: 8 << 10, FileSize: 4 << 20, Seed: 3}
	tr := iotrace.FromWorkload(wl, iotrace.Write)
	rp, err := iotrace.NewReplay(tr, iotrace.Write)
	if err != nil {
		t.Fatal(err)
	}
	mcfg, fcfg := quietPlatform(2, 4)
	res, err := bench.RunOnce(bench.Spec{
		Strategy: core.MCCIO{Opts: mccioOpts(mcfg, fcfg, rp.TotalBytes())},
		Op:       "write", Machine: mcfg, FS: fcfg, Workload: rp, Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != wl.TotalBytes() {
		t.Fatalf("replayed %d bytes, want %d", res.Bytes, wl.TotalBytes())
	}
}

// TestHintsDrivenRun builds strategies from ADIO hints and runs them
// verified.
func TestHintsDrivenRun(t *testing.T) {
	mcfg, fcfg := quietPlatform(2, 4)
	wl := workload.IOR{Ranks: 8, BlockSize: 64 << 10, Segments: 4}
	for _, hs := range []string{
		"collective=mccio,mccio_node_combine=true",
		"collective=two_phase,cb_buffer_size=262144",
		"romio_cb_write=disable",
	} {
		h, err := adio.ParseHints(hs)
		if err != nil {
			t.Fatal(err)
		}
		s, err := h.BuildStrategy(mcfg, fcfg, wl.TotalBytes())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := bench.RunOnce(bench.Spec{
			Strategy: s, Op: "write", Machine: mcfg, FS: fcfg, Workload: wl, Verify: true,
		}); err != nil {
			t.Fatalf("%s: %v", hs, err)
		}
	}
}

// TestRandomizedWorkloadsVerify fuzzes random workloads through both
// collective strategies with full byte verification.
func TestRandomizedWorkloadsVerify(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 6; trial++ {
		seed := rng.Uint64()
		wl := workload.Random{
			Ranks:       8,
			SegsPerRank: 4 + rng.Intn(24),
			SegLen:      int64(1+rng.Intn(32)) << 10,
			FileSize:    8 << 20,
			Seed:        seed,
		}
		mcfg, fcfg := quietPlatform(2, 4)
		for _, s := range []iolib.Collective{
			collio.TwoPhase{CBBuffer: int64(64+rng.Intn(512)) << 10},
			core.MCCIO{Opts: mccioOpts(mcfg, fcfg, wl.TotalBytes())},
		} {
			for _, op := range []string{"write", "read"} {
				if _, err := bench.RunOnce(bench.Spec{
					Strategy: s, Op: op, Machine: mcfg, FS: fcfg, Workload: wl, Verify: true,
				}); err != nil {
					t.Fatalf("trial %d %s %s (wl seed %d): %v", trial, s.Name(), op, seed, err)
				}
			}
		}
	}
}

// TestManyGroupsManyNodesSmoke pushes a wider machine through MCCIO
// with per-node groups as a structural stress test.
func TestManyGroupsManyNodesSmoke(t *testing.T) {
	mcfg, fcfg := quietPlatform(12, 4)
	wl := workload.IOR{Ranks: 48, BlockSize: 128 << 10, Segments: 6}
	opts := mccioOpts(mcfg, fcfg, wl.TotalBytes())
	opts.Msggroup = 1 // one group per node
	res, err := bench.RunOnce(bench.Spec{
		Strategy: core.MCCIO{Opts: opts}, Op: "write", Machine: mcfg, FS: fcfg, Workload: wl, Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups < 6 {
		t.Fatalf("expected many groups, got %d", res.Groups)
	}
}

// TestWorkloadGallery runs every workload generator through MCCIO with
// verification — the generators and strategies must compose.
func TestWorkloadGallery(t *testing.T) {
	mcfg, fcfg := quietPlatform(2, 4)
	wls := []workload.Workload{
		workload.IOR{Ranks: 8, BlockSize: 64 << 10, Segments: 4},
		workload.CollPerf3D{Dims: [3]int64{32, 32, 32}, Procs: workload.Grid3(8), Elem: 4},
		workload.Random{Ranks: 8, SegsPerRank: 8, SegLen: 4 << 10, FileSize: 2 << 20, Seed: 1},
		workload.Tile2D{Rows: 64, Cols: 64, TilesX: 4, TilesY: 2, Elem: 4},
		workload.Checkpoint{Ranks: 8, MeanBytes: 64 << 10, Sigma: 0.5, Seed: 1, Align: 4 << 10},
	}
	for _, wl := range wls {
		t.Run(fmt.Sprintf("%.24s", wl.Name()), func(t *testing.T) {
			if _, err := bench.RunOnce(bench.Spec{
				Strategy: core.MCCIO{Opts: mccioOpts(mcfg, fcfg, wl.TotalBytes())},
				Op:       "write", Machine: mcfg, FS: fcfg, Workload: wl, Verify: true,
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
