// Benchmarks regenerating the paper's evaluation, one per table/figure,
// plus ablations of MCCIO's design choices and microbenchmarks of the
// hot data structures.
//
// The per-figure benchmarks run shrunken-but-same-shape configurations
// so `go test -bench=.` finishes in minutes; the full-scale sweeps
// (paper-sized data and 1080 ranks) are produced by cmd/mccio-bench and
// recorded in EXPERIMENTS.md. Each figure benchmark reports virtual
// application bandwidth as app-MB/s next to the usual host-time ns/op.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/iolib"
	"repro/internal/pfs"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/workload"
)

// benchPlatform builds the small-scale platform shared by the figure
// benchmarks: nodes×cores ranks, nominal mem per node with the paper's
// σ=50MB variance, jittered storage.
func benchPlatform(nodes, cores int, mem int64) (cluster.Config, pfs.Config) {
	mcfg := cluster.TestbedConfig(nodes)
	mcfg.CoresPerNode = cores
	mcfg.MemPerNode = mem
	mcfg.MemSigma = float64(50*cluster.MB) / float64(mem)
	mcfg.MemFloor = mem / 4
	mcfg.Seed = 42
	fcfg := pfs.DefaultConfig()
	fcfg.JitterMean = 12e-3
	fcfg.Seed = 42
	return mcfg, fcfg
}

// mccioFor derives calibrated options for a platform and workload.
func mccioFor(mcfg cluster.Config, fcfg pfs.Config, wl workload.Workload, mem int64) core.Options {
	opts := core.DefaultOptions(mcfg, fcfg)
	groups := mcfg.Nodes / 2
	if groups < 1 {
		groups = 1
	}
	opts.Msggroup = wl.TotalBytes() / int64(groups)
	opts.Memmin = mem / 4
	return opts
}

// runSpec executes one simulation per iteration and reports virtual
// bandwidth.
func runSpec(b *testing.B, spec bench.Spec) {
	b.Helper()
	var mbps float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunOnce(spec)
		if err != nil {
			b.Fatal(err)
		}
		mbps = res.BandwidthMBps()
	}
	b.ReportMetric(mbps, "app-MB/s")
}

// BenchmarkTable1Model regenerates Table 1 (the exascale projection and
// its derived per-core memory/bandwidth rows).
func BenchmarkTable1Model(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := bench.Table1(); len(t.Rows) < 13 {
			b.Fatalf("table lost rows: %d", len(t.Rows))
		}
	}
}

// BenchmarkFig6CollPerf runs the Figure 6 configuration (coll_perf
// 3-D array, two-phase vs mccio) at benchmark scale: 24 ranks, 256³.
func BenchmarkFig6CollPerf(b *testing.B) {
	const mem = 4 * cluster.MiB
	mcfg, fcfg := benchPlatform(6, 4, mem)
	wl := workload.CollPerf3D{Dims: [3]int64{256, 256, 256}, Procs: workload.Grid3(24), Elem: 4}
	b.Run("two-phase/write", func(b *testing.B) {
		runSpec(b, bench.Spec{Strategy: collio.TwoPhase{CBBuffer: mem}, Op: "write", Machine: mcfg, FS: fcfg, Workload: wl})
	})
	b.Run("mccio/write", func(b *testing.B) {
		runSpec(b, bench.Spec{Strategy: core.MCCIO{Opts: mccioFor(mcfg, fcfg, wl, mem)}, Op: "write", Machine: mcfg, FS: fcfg, Workload: wl})
	})
	b.Run("two-phase/read", func(b *testing.B) {
		runSpec(b, bench.Spec{Strategy: collio.TwoPhase{CBBuffer: mem}, Op: "read", Machine: mcfg, FS: fcfg, Workload: wl})
	})
	b.Run("mccio/read", func(b *testing.B) {
		runSpec(b, bench.Spec{Strategy: core.MCCIO{Opts: mccioFor(mcfg, fcfg, wl, mem)}, Op: "read", Machine: mcfg, FS: fcfg, Workload: wl})
	})
}

// BenchmarkFig7IOR120 runs the Figure 7 configuration (IOR interleaved
// at 120 ranks) at benchmark scale.
func BenchmarkFig7IOR120(b *testing.B) {
	const mem = 8 * cluster.MiB
	mcfg, fcfg := benchPlatform(10, 12, mem)
	wl := workload.IOR{Ranks: 120, BlockSize: 1 << 20, Segments: 8}
	for _, op := range []string{"write", "read"} {
		b.Run("two-phase/"+op, func(b *testing.B) {
			runSpec(b, bench.Spec{Strategy: collio.TwoPhase{CBBuffer: mem}, Op: op, Machine: mcfg, FS: fcfg, Workload: wl})
		})
		b.Run("mccio/"+op, func(b *testing.B) {
			runSpec(b, bench.Spec{Strategy: core.MCCIO{Opts: mccioFor(mcfg, fcfg, wl, mem)}, Op: op, Machine: mcfg, FS: fcfg, Workload: wl})
		})
	}
}

// BenchmarkFig8IOR1080 runs the Figure 8 configuration (IOR interleaved
// at 1080 ranks, 90 nodes) at reduced per-rank volume.
func BenchmarkFig8IOR1080(b *testing.B) {
	const mem = 16 * cluster.MiB
	mcfg, fcfg := benchPlatform(90, 12, mem)
	wl := workload.IOR{Ranks: 1080, BlockSize: 512 << 10, Segments: 4}
	for _, op := range []string{"write", "read"} {
		b.Run("two-phase/"+op, func(b *testing.B) {
			runSpec(b, bench.Spec{Strategy: collio.TwoPhase{CBBuffer: mem}, Op: op, Machine: mcfg, FS: fcfg, Workload: wl})
		})
		b.Run("mccio/"+op, func(b *testing.B) {
			runSpec(b, bench.Spec{Strategy: core.MCCIO{Opts: mccioFor(mcfg, fcfg, wl, mem)}, Op: op, Machine: mcfg, FS: fcfg, Workload: wl})
		})
	}
}

// BenchmarkAblation isolates each MCCIO mechanism (the design choices
// DESIGN.md §6 calls out) on the small IOR configuration.
func BenchmarkAblation(b *testing.B) {
	const mem = 4 * cluster.MiB
	mcfg, fcfg := benchPlatform(8, 4, mem)
	wl := workload.IOR{Ranks: 32, BlockSize: 512 << 10, Segments: 16}
	full := mccioFor(mcfg, fcfg, wl, mem)
	variants := []struct {
		name   string
		mutate func(*core.Options)
	}{
		{"full", nil},
		{"no-groups", func(o *core.Options) { o.DisableGroups = true }},
		{"no-memaware", func(o *core.Options) { o.DisableMemAware = true }},
		{"no-remerge", func(o *core.Options) { o.DisableRemerge = true }},
		{"nah-1", func(o *core.Options) { o.Nah = 1 }},
	}
	for _, v := range variants {
		opts := full
		if v.mutate != nil {
			v.mutate(&opts)
		}
		b.Run(v.name, func(b *testing.B) {
			runSpec(b, bench.Spec{Strategy: core.MCCIO{Opts: opts}, Op: "write", Machine: mcfg, FS: fcfg, Workload: wl})
		})
	}
	b.Run("baseline", func(b *testing.B) {
		runSpec(b, bench.Spec{Strategy: collio.TwoPhase{CBBuffer: mem}, Op: "write", Machine: mcfg, FS: fcfg, Workload: wl})
	})
}

// BenchmarkMsgindSweep ablates the partition-tree granularity. Memory
// is plentiful and the workload small so Msgind — not the aggregator
// budget — decides the leaf count.
func BenchmarkMsgindSweep(b *testing.B) {
	const mem = 64 * cluster.MiB
	mcfg, fcfg := benchPlatform(8, 4, mem)
	wl := workload.IOR{Ranks: 32, BlockSize: 128 << 10, Segments: 8}
	for _, msgind := range []int64{512 << 10, 2 << 20, 8 << 20} {
		opts := mccioFor(mcfg, fcfg, wl, mem)
		opts.Msgind = msgind
		opts.Memmin = 1 << 20
		b.Run(bytesName(msgind), func(b *testing.B) {
			runSpec(b, bench.Spec{Strategy: core.MCCIO{Opts: opts}, Op: "write", Machine: mcfg, FS: fcfg, Workload: wl})
		})
	}
}

func bytesName(n int64) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%dMB", n>>20)
	}
	return fmt.Sprintf("%dKB", n>>10)
}

// --- Microbenchmarks of the hot substrate paths ---

// BenchmarkEngineEvents measures raw event throughput of the
// discrete-event core.
func BenchmarkEngineEvents(b *testing.B) {
	e := simtime.NewEngine()
	e.Spawn("ticker", func(p *simtime.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1e-6)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSegmentClip measures the view-clipping hot path of the
// two-phase round loop.
func BenchmarkSegmentClip(b *testing.B) {
	r := stats.NewRNG(1)
	raw := make([]datatype.Segment, 4096)
	for i := range raw {
		raw[i] = datatype.Segment{Off: r.Int63n(1 << 30), Len: 1 + r.Int63n(1<<16)}
	}
	l := datatype.Normalize(raw)
	lo, hi := l.Extent()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := lo + int64(i)%(hi-lo)
		_ = l.Clip(w, w+1<<20)
	}
}

// BenchmarkNormalize measures canonicalization of a large request list.
func BenchmarkNormalize(b *testing.B) {
	r := stats.NewRNG(1)
	raw := make([]datatype.Segment, 65536)
	for i := range raw {
		raw[i] = datatype.Segment{Off: r.Int63n(1 << 32), Len: 1 + r.Int63n(1<<14)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = datatype.Normalize(raw)
	}
}

// BenchmarkPartitionTree measures building and fully remerging a tree.
func BenchmarkPartitionTree(b *testing.B) {
	cov := datatype.List{{Off: 0, Len: 1 << 30}}
	r := stats.NewRNG(1)
	for i := 0; i < b.N; i++ {
		tr := core.BuildTree(cov, 1<<22, 256)
		for len(tr.Leaves()) > 1 {
			leaves := tr.Leaves()
			tr.RemoveLeaf(leaves[r.Intn(len(leaves))])
		}
	}
}

// BenchmarkDataSieving measures the independent-I/O comparator.
func BenchmarkDataSieving(b *testing.B) {
	mcfg, fcfg := benchPlatform(1, 1, 64*cluster.MiB)
	wl := workload.IOR{Ranks: 1, BlockSize: 64 << 10, Segments: 128}
	runSpec(b, bench.Spec{Strategy: iolib.Naive{Opts: iolib.DefaultSieve()}, Op: "write", Machine: mcfg, FS: fcfg, Workload: wl})
}
