// checkpoint simulates a defensive application checkpoint: every rank
// dumps one contiguous state blob whose size follows a lognormal
// distribution (some ranks carry far more state), onto nodes whose
// aggregation memory also varies. It then prints where the two
// strategies placed their aggregation memory — the paper's
// memory-consumption-and-variance claim, visible directly in the
// per-node high-water marks.
//
//	go run ./examples/checkpoint
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/iolib"
	"repro/internal/pfs"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	const nodes, cores = 6, 4
	const mem = 8 * cluster.MiB
	wl := workload.Checkpoint{
		Ranks:     nodes * cores,
		MeanBytes: 8 << 20,
		Sigma:     0.8, // heavy imbalance across ranks
		Seed:      3,
		Align:     1 << 20,
	}
	fcfg := pfs.DefaultConfig()
	fcfg.JitterMean = 12e-3
	fcfg.Seed = 3

	fmt.Printf("checkpoint burst: %d ranks, %.0f MB total (lognormal sizes)\n\n",
		wl.NumRanks(), float64(wl.TotalBytes())/1e6)

	for _, name := range []string{"two-phase", "mccio"} {
		mcfg := cluster.TestbedConfig(nodes)
		mcfg.CoresPerNode = cores
		mcfg.MemPerNode = mem
		mcfg.MemSigma = float64(50*cluster.MB) / float64(mem)
		mcfg.MemFloor = mem / 4
		mcfg.Seed = 3
		machine, err := cluster.New(mcfg)
		if err != nil {
			log.Fatal(err)
		}
		_ = machine // built again inside RunOnce; kept here to print capacities

		var s iolib.Collective
		if name == "mccio" {
			opts := core.DefaultOptions(mcfg, fcfg)
			opts.Msggroup = wl.TotalBytes() / 3
			opts.Memmin = mem / 4
			s = core.MCCIO{Opts: opts}
		} else {
			s = collio.TwoPhase{CBBuffer: mem}
		}

		res, err := bench.RunOnce(bench.Spec{
			Strategy: s, Op: "write", Machine: mcfg, FS: fcfg, Workload: wl,
		})
		if err != nil {
			log.Fatal(err)
		}
		bufStats := res.AggBufferStats()
		var bufs []float64
		for _, b := range res.AggBufferBytes {
			bufs = append(bufs, float64(b))
		}
		fmt.Printf("%-10s: %7.1f MB/s  aggs=%d rounds=%d  buffers mean %.2f MB (cv %.3f)\n",
			name, res.BandwidthMBps(), res.Aggregators, res.Rounds,
			bufStats.Mean/1e6, stats.CV(bufs))
	}
	fmt.Println("\nExpected: mccio matches or beats two-phase while its aggregation")
	fmt.Println("buffers track what each node can actually afford.")
}
