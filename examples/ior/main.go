// ior runs the IOR-style interleaved workload (the paper's Figures 7–8)
// at example scale and prints, besides bandwidth, the mechanism-level
// metrics that explain the result: rounds, aggregator count, groups,
// and how much shuffle traffic stayed on-node.
//
//	go run ./examples/ior
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/iolib"
	"repro/internal/pfs"
	"repro/internal/workload"
)

func main() {
	const nodes, cores = 8, 4
	const mem = 4 * cluster.MiB
	// Small interleaved blocks: the regime collective I/O exists for.
	// (With large stripe-aligned blocks, independent I/O is genuinely
	// competitive — on real systems too.)
	wl := workload.IOR{Ranks: nodes * cores, BlockSize: 32 << 10, Segments: 256}

	mcfg := cluster.TestbedConfig(nodes)
	mcfg.CoresPerNode = cores
	mcfg.MemPerNode = mem
	mcfg.MemSigma = float64(50*cluster.MB) / float64(mem)
	mcfg.MemFloor = mem / 4
	mcfg.Seed = 11
	fcfg := pfs.DefaultConfig()
	fcfg.JitterMean = 12e-3
	fcfg.Seed = 11

	opts := core.DefaultOptions(mcfg, fcfg)
	opts.Msggroup = wl.TotalBytes() / int64(nodes/2)
	opts.Memmin = mem / 4

	fmt.Printf("IOR interleaved: %d ranks, %.0f MB total, %d MB/node aggregation memory\n\n",
		wl.Ranks, float64(wl.TotalBytes())/1e6, mem>>20)

	for _, s := range []iolib.Collective{
		iolib.Naive{Opts: iolib.SieveOptions{}},
		collio.TwoPhase{CBBuffer: mem},
		core.MCCIO{Opts: opts},
	} {
		for _, op := range []string{"write", "read"} {
			res, err := bench.RunOnce(bench.Spec{
				Strategy: s, Op: op, Machine: mcfg, FS: fcfg, Workload: wl,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s %-5s: %8.1f MB/s", s.Name(), op, res.BandwidthMBps())
			if res.Aggregators > 0 {
				localPct := 0.0
				if tot := res.BytesShuffleIntra + res.BytesShuffleInter; tot > 0 {
					localPct = 100 * float64(res.BytesShuffleIntra) / float64(tot)
				}
				fmt.Printf("  (rounds=%d aggs=%d groups=%d, %.0f%% of shuffle stayed on-node)",
					res.Rounds, res.Aggregators, res.Groups, localPct)
			}
			fmt.Println()
		}
	}
	fmt.Println("\nExpected ordering: independent << two-phase < mccio;")
	fmt.Println("mccio also keeps a much larger share of shuffle traffic on-node.")
}
