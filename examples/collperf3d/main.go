// collperf3d reproduces the shape of the paper's Figure 6 experiment at
// example scale: a 3-D block-distributed array (ROMIO's coll_perf
// benchmark) written and read by 24 ranks under both two-phase
// collective I/O and memory-conscious collective I/O, across shrinking
// aggregation memory.
//
//	go run ./examples/collperf3d
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/iolib"
	"repro/internal/pfs"
	"repro/internal/workload"
)

func main() {
	// 24 ranks = 6 nodes x 4 cores write a 256^3 float array (64 MB).
	wl := workload.CollPerf3D{
		Dims:  [3]int64{256, 256, 256},
		Procs: workload.Grid3(24),
		Elem:  4,
	}
	fcfg := pfs.DefaultConfig()
	fcfg.JitterMean = 12e-3
	fcfg.Seed = 7

	fmt.Printf("coll_perf: %s (%.1f MB total)\n\n", wl.Name(), float64(wl.TotalBytes())/1e6)
	fmt.Printf("%8s  %22s  %22s\n", "mem", "two-phase wr/rd MB/s", "mccio wr/rd MB/s")

	for _, mem := range []int64{1 << 20, 2 << 20, 4 << 20, 8 << 20} {
		mcfg := cluster.TestbedConfig(6)
		mcfg.CoresPerNode = 4
		mcfg.MemPerNode = mem
		mcfg.MemSigma = float64(50*cluster.MB) / float64(mem)
		mcfg.MemFloor = mem / 4
		mcfg.Seed = 7

		opts := core.DefaultOptions(mcfg, fcfg)
		opts.Msggroup = wl.TotalBytes() / 3
		opts.Memmin = mem / 4

		row := make(map[string]float64)
		for _, s := range []iolib.Collective{collio.TwoPhase{CBBuffer: mem}, core.MCCIO{Opts: opts}} {
			for _, op := range []string{"write", "read"} {
				res, err := bench.RunOnce(bench.Spec{
					Strategy: s, Op: op, Machine: mcfg, FS: fcfg, Workload: wl,
				})
				if err != nil {
					log.Fatal(err)
				}
				row[s.Name()+op] = res.BandwidthMBps()
			}
		}
		fmt.Printf("%6dMB  %10.1f / %-9.1f  %10.1f / %-9.1f\n",
			mem>>20,
			row["two-phasewrite"], row["two-phaseread"],
			row["mcciowrite"], row["mccioread"])
	}
	fmt.Println("\nExpected shape: both columns fall as memory shrinks; mccio holds up better.")
}
