// Quickstart: 16 simulated MPI ranks on 4 nodes collectively write an
// interleaved file with memory-conscious collective I/O, read it back,
// and verify every byte.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/buffer"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/iolib"
	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/simtime"
	"repro/internal/trace"
)

func main() {
	// A little machine: 4 nodes x 4 cores, 8 MB of aggregation memory
	// per node with heavy variance (sigma = 50 MB, the paper's setup).
	engine := simtime.NewEngine()
	mcfg := cluster.Config{
		Nodes: 4, CoresPerNode: 4,
		MemPerNode: 8 * cluster.MiB,
		MemSigma:   float64(50*cluster.MB) / float64(8*cluster.MiB),
		MemFloor:   2 * cluster.MiB,
		MemBusBW:   25e9, MemBusLat: 2e-7,
		NICBW: 1.5e9, NICLat: 2e-6,
		BisectionBW: 3e9, BisectionLat: 1e-6,
		IONetBW: 2.4e9, IONetLat: 2e-5,
		Seed: 7,
	}
	machine, err := cluster.New(mcfg)
	if err != nil {
		log.Fatal(err)
	}
	fcfg := pfs.DefaultConfig()
	fs, err := pfs.New(fcfg, machine)
	if err != nil {
		log.Fatal(err)
	}
	world, err := mpi.NewWorld(engine, machine, 16)
	if err != nil {
		log.Fatal(err)
	}
	file := iolib.Open(fs, "quickstart.dat")

	// The strategy under test: MCCIO with platform-calibrated options.
	opts := core.DefaultOptions(mcfg, fcfg)
	opts.Msggroup = 8 * cluster.MiB // small groups so the example shows several
	opts.Memmin = 1 * cluster.MiB
	strategy := core.MCCIO{Opts: opts}

	var result trace.Result
	world.Start(func(c *mpi.Comm) {
		// Each rank owns every 16th 64 KiB block — the classic
		// interleaved pattern collective I/O exists for.
		const blockLen = 64 << 10
		const blocks = 16
		view := datatype.Normalize(datatype.Vector{
			Count:    blocks,
			BlockLen: blockLen,
			Stride:   blockLen * 16,
		}.Segments(nil, int64(c.Rank())*blockLen))

		// Fill the local buffer with a per-rank pattern keyed by file
		// offset, write collectively, then read back and verify.
		data := buffer.NewReal(view.TotalBytes())
		pos := int64(0)
		for _, s := range view {
			data.Slice(pos, s.Len).Fill(uint64(c.Rank()), s.Off)
			pos += s.Len
		}
		r := iolib.Run(strategy, "write", file, c, view, data, &trace.Metrics{})
		if c.Rank() == 0 {
			result = r
		}

		dst := buffer.NewReal(view.TotalBytes())
		iolib.Run(strategy, "read", file, c, view, dst, nil)
		pos = 0
		for _, s := range view {
			if i := dst.Slice(pos, s.Len).Verify(uint64(c.Rank()), s.Off); i != -1 {
				log.Fatalf("rank %d: verification failed in %v at byte %d", c.Rank(), s, i)
			}
			pos += s.Len
		}
	})
	if err := engine.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("collective write:", result.String())
	fmt.Printf("node memory (MB):")
	for _, cap := range machine.MemCapacities() {
		fmt.Printf(" %.1f", float64(cap)/1e6)
	}
	fmt.Println("\nall 16 ranks verified every byte they read back — OK")
}
