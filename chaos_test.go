// Chaos tests: the resilience machinery under deterministic fault
// injection. Collectives must complete with bit-identical file
// contents despite aggregator-node failures, memory exhaustion,
// stragglers, and message drop/delay — and the fault trace itself must
// be a pure function of (seed, FaultSpec).
package repro_test

import (
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/iolib"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/workload"
)

// chaosFaultSpec exercises every fault class: an aggregator-node
// failure at round 0 (guaranteed to trigger failover-by-remerge while
// schedules still have windows), memory pressure, a straggler OST, a
// degraded link, and message drop/delay.
func chaosFaultSpec() faults.Spec {
	return faults.Spec{
		Seed: 7,
		MemPressure: []faults.MemPressure{
			{Node: 2, Round: 1, Bytes: 4 * cluster.MiB},
		},
		SlowOSTs:  []faults.SlowOST{{OST: 0, Factor: 3}},
		SlowLinks: []faults.SlowLink{{Node: 2, Factor: 2}},
		NodeFailures: []faults.NodeFailure{
			{Node: 1, Round: 0},
		},
		Messages: faults.MessageSpec{DropRate: 0.1, DelayRate: 0.05, DelayMeanSec: 1e-3},
	}
}

func chaosStrategies(mcfg cluster.Config, fcfg pfs.Config, total int64) map[string]iolib.Collective {
	return map[string]iolib.Collective{
		"two-phase": collio.TwoPhase{CBBuffer: 1 << 20},
		"mccio":     core.MCCIO{Opts: mccioOpts(mcfg, fcfg, total)},
	}
}

// TestChaosCorrectness runs verified write and read collectives under
// the full fault schedule: every byte must land (write) or arrive
// (read) bit-identical to the fault-free contents, and the node-1
// failure must actually exercise the failover path.
func TestChaosCorrectness(t *testing.T) {
	mcfg, fcfg := quietPlatform(3, 4)
	const nprocs = 12
	wl := workload.IOR{Ranks: nprocs, BlockSize: 64 << 10, Segments: 6}
	for name, s := range chaosStrategies(mcfg, fcfg, wl.TotalBytes()) {
		for _, op := range []string{"write", "read"} {
			t.Run(name+"/"+op, func(t *testing.T) {
				sched, err := faults.NewSchedule(chaosFaultSpec())
				if err != nil {
					t.Fatal(err)
				}
				_, err = bench.RunOnce(bench.Spec{
					Strategy: s, Op: op, Machine: mcfg, FS: fcfg,
					Workload: wl, Verify: true, Faults: sched,
				})
				if err != nil {
					t.Fatalf("collective did not survive its faults: %v", err)
				}
				if sched.Injected() == 0 {
					t.Error("schedule injected nothing — the test exercised no faults")
				}
				if sched.Failovers()+sched.Unrecovered() == 0 {
					t.Errorf("node-1 failure triggered no failover (injected=%d dropped=%d)",
						sched.Injected(), sched.Dropped())
				}
			})
		}
	}
}

// TestChaosDeterminism runs the same faulty collective twice with
// fresh schedules and tracers: the fault/failover event streams must
// be byte-identical and the results equal — the reproducibility
// guarantee that makes fault injection debuggable.
func TestChaosDeterminism(t *testing.T) {
	mcfg, fcfg := quietPlatform(3, 4)
	const nprocs = 12
	wl := workload.IOR{Ranks: nprocs, BlockSize: 64 << 10, Segments: 6}
	for name, s := range chaosStrategies(mcfg, fcfg, wl.TotalBytes()) {
		t.Run(name, func(t *testing.T) {
			type runOut struct {
				events []obs.Event
				bytes  int64
				fo     int64
				inj    int64
			}
			once := func() runOut {
				sched, err := faults.NewSchedule(chaosFaultSpec())
				if err != nil {
					t.Fatal(err)
				}
				tr := obs.NewTracer()
				res, err := bench.RunOnce(bench.Spec{
					Strategy: s, Op: "write", Machine: mcfg, FS: fcfg,
					Workload: wl, Verify: true, Tracer: tr, Faults: sched,
					Metrics: metrics.New(),
				})
				if err != nil {
					t.Fatal(err)
				}
				var evs []obs.Event
				for _, e := range tr.Events() {
					switch e.Phase.Category() {
					case "fault", "failover":
						evs = append(evs, e)
					}
				}
				return runOut{events: evs, bytes: res.Bytes, fo: sched.Failovers(), inj: sched.Injected()}
			}
			a, b := once(), once()
			if len(a.events) == 0 {
				t.Fatal("no fault/failover events traced")
			}
			if !reflect.DeepEqual(a.events, b.events) {
				t.Errorf("fault trace not deterministic: %d vs %d events", len(a.events), len(b.events))
				for i := range a.events {
					if i < len(b.events) && !reflect.DeepEqual(a.events[i], b.events[i]) {
						t.Errorf("first divergence at %d: %+v vs %+v", i, a.events[i], b.events[i])
						break
					}
				}
			}
			if a.bytes != b.bytes || a.fo != b.fo || a.inj != b.inj {
				t.Errorf("run tallies diverged: %+v vs %+v", a, b)
			}
		})
	}
}

// TestChaosFaultFreeIdentical: attaching an all-zero schedule must not
// move a single byte of the simulation — the armed-but-empty path is
// behaviorally identical to no schedule at all.
func TestChaosFaultFreeIdentical(t *testing.T) {
	mcfg, fcfg := quietPlatform(2, 4)
	wl := workload.IOR{Ranks: 8, BlockSize: 32 << 10, Segments: 4}
	s := core.MCCIO{Opts: mccioOpts(mcfg, fcfg, wl.TotalBytes())}
	run := func(sched *faults.Schedule) (int64, float64) {
		res, err := bench.RunOnce(bench.Spec{
			Strategy: s, Op: "write", Machine: mcfg, FS: fcfg,
			Workload: wl, Faults: sched,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Bytes, res.Elapsed
	}
	emptySched, err := faults.NewSchedule(faults.Spec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b0, e0 := run(nil)
	b1, e1 := run(emptySched)
	if b0 != b1 || e0 != e1 {
		t.Errorf("empty schedule perturbed the run: bytes %d vs %d, elapsed %v vs %v", b0, b1, e0, e1)
	}
	if emptySched.Injected() != 0 {
		t.Errorf("empty schedule injected %d faults", emptySched.Injected())
	}
}
