// Command docscheck is the documentation gate CI runs over the repo's
// markdown: every relative link must resolve to a file that exists,
// and every ```go fenced snippet must be gofmt-clean (so examples in
// the docs stay compilable idiom, not pseudocode drift).
//
// Usage:
//
//	docscheck README.md DESIGN.md EXPERIMENTS.md
//
// Exit status: 0 all files clean, 1 findings printed to stderr, 2 usage.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docscheck FILE.md ...")
		os.Exit(2)
	}
	bad := 0
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
		for _, f := range Check(path, data) {
			fmt.Fprintf(os.Stderr, "%s\n", f)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d finding(s)\n", bad)
		os.Exit(1)
	}
}
