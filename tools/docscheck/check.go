package main

import (
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target). Reference-style
// links and autolinks are out of scope; the repo's docs use inline
// links only.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// Finding is one documentation defect, formatted as file:line: message.
type Finding struct {
	File    string
	Line    int // 1-based line of the defect
	Message string
}

// String renders the finding in the conventional compiler format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s", f.File, f.Line, f.Message)
}

// Check scans one markdown file: relative links must point at files
// that exist (anchors and external URLs are skipped), and every ```go
// fence must survive go/format unchanged-or-error-free. The file's
// directory anchors relative link resolution.
func Check(path string, data []byte) []Finding {
	var out []Finding
	dir := filepath.Dir(path)
	lines := strings.Split(string(data), "\n")

	inFence := false
	fenceIsGo := false
	fenceStart := 0
	var fence []string
	for i, line := range lines {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			if !inFence {
				inFence = true
				fenceIsGo = strings.TrimPrefix(trimmed, "```") == "go"
				fenceStart = i + 1
				fence = fence[:0]
			} else {
				if fenceIsGo {
					if f := checkGoFence(path, fenceStart, fence); f != nil {
						out = append(out, *f)
					}
				}
				inFence = false
			}
			continue
		}
		if inFence {
			fence = append(fence, line)
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if f := checkLink(path, dir, i+1, target); f != nil {
				out = append(out, *f)
			}
		}
	}
	return out
}

// checkLink validates one link target; nil means fine.
func checkLink(file, dir string, line int, target string) *Finding {
	switch {
	case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"), strings.HasPrefix(target, "#"):
		return nil
	}
	target = strings.SplitN(target, "#", 2)[0]
	if target == "" {
		return nil
	}
	if !fileExists(filepath.Join(dir, target)) {
		return &Finding{File: file, Line: line, Message: fmt.Sprintf("broken relative link %q", target)}
	}
	return nil
}

// checkGoFence gofmt-checks one ```go snippet; nil means clean.
// Snippets may be fragments (no package clause), so formatting is
// attempted as-is and then wrapped in a synthetic package/function
// before a failure is reported.
func checkGoFence(file string, line int, src []string) *Finding {
	snippet := strings.Join(src, "\n") + "\n"
	if strings.TrimSpace(snippet) == "" {
		return nil
	}
	candidates := []string{
		snippet,
		"package p\n\n" + snippet,
		"package p\n\nfunc _() {\n" + snippet + "}\n",
	}
	var firstErr error
	parsed := false
	for _, c := range candidates {
		formatted, err := format.Source([]byte(c))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		parsed = true
		if string(formatted) == c {
			return nil
		}
		// A reformat on the wrapped forms may only be indentation the
		// wrapper itself introduced; compare the snippet's own lines
		// ignoring leading tabs added by the function wrapper.
		if sameModuloWrapperIndent(c, string(formatted)) {
			return nil
		}
	}
	if !parsed {
		return &Finding{File: file, Line: line, Message: fmt.Sprintf("go snippet does not parse: %v", firstErr)}
	}
	return &Finding{File: file, Line: line, Message: "go snippet is not gofmt-formatted"}
}

// sameModuloWrapperIndent reports whether two sources differ only in
// uniform leading-tab depth per line (the artifact of wrapping a
// statement fragment in a synthetic function).
func sameModuloWrapperIndent(a, b string) bool {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	if len(al) != len(bl) {
		return false
	}
	for i := range al {
		if strings.TrimLeft(al[i], "\t") != strings.TrimLeft(bl[i], "\t") {
			return false
		}
	}
	return true
}

// fileExists is a seam for tests; the default consults the real fs.
var fileExists = func(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
