package main

import (
	"strings"
	"testing"
)

// withFS stubs the link-existence seam for one test.
func withFS(t *testing.T, exists map[string]bool) {
	t.Helper()
	old := fileExists
	fileExists = func(path string) bool { return exists[path] }
	t.Cleanup(func() { fileExists = old })
}

func TestCheckFlagsBrokenRelativeLink(t *testing.T) {
	withFS(t, map[string]bool{"docs/DESIGN.md": true})
	md := "see [design](DESIGN.md) and [gone](MISSING.md)\n"
	got := Check("docs/README.md", []byte(md))
	if len(got) != 1 {
		t.Fatalf("findings: %v", got)
	}
	if got[0].Line != 1 || !strings.Contains(got[0].Message, "MISSING.md") {
		t.Fatalf("finding: %+v", got[0])
	}
}

func TestCheckSkipsExternalAndAnchorLinks(t *testing.T) {
	withFS(t, nil)
	md := "[a](https://example.com) [b](#section) [c](mailto:x@y.z)\n"
	if got := Check("README.md", []byte(md)); len(got) != 0 {
		t.Fatalf("findings: %v", got)
	}
}

func TestCheckStripsAnchorFromRelativeLink(t *testing.T) {
	withFS(t, map[string]bool{"DESIGN.md": true})
	md := "[a](DESIGN.md#architecture)\n"
	if got := Check("README.md", []byte(md)); len(got) != 0 {
		t.Fatalf("findings: %v", got)
	}
}

func TestCheckAcceptsGofmtCleanFence(t *testing.T) {
	withFS(t, nil)
	md := "```go\npackage p\n\nfunc F() int { return 1 }\n```\n"
	if got := Check("README.md", []byte(md)); len(got) != 0 {
		t.Fatalf("findings: %v", got)
	}
}

func TestCheckAcceptsStatementFragmentFence(t *testing.T) {
	withFS(t, nil)
	md := "```go\nout, err := runner.Run(ctx, 8, fn)\nif err != nil {\n\treturn err\n}\n```\n"
	if got := Check("README.md", []byte(md)); len(got) != 0 {
		t.Fatalf("findings: %v", got)
	}
}

func TestCheckFlagsUnformattedFence(t *testing.T) {
	withFS(t, nil)
	md := "```go\npackage p\nfunc  F( ) int {return 1}\n```\n"
	got := Check("README.md", []byte(md))
	if len(got) != 1 || !strings.Contains(got[0].Message, "gofmt") {
		t.Fatalf("findings: %v", got)
	}
}

func TestCheckIgnoresNonGoFences(t *testing.T) {
	withFS(t, nil)
	md := "```sh\ngo  build   ./...\n```\n```\nnot go either [link](NOPE.md)\n```\n"
	if got := Check("README.md", []byte(md)); len(got) != 0 {
		t.Fatalf("findings: %v", got)
	}
}
