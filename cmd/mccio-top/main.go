// Command mccio-top is a live terminal dashboard for a running
// mccio-pland daemon: it polls /metrics.json and redraws request
// rate, status mix, latency percentiles, cache hit rate, and shed /
// queue pressure every interval.
//
// Usage:
//
//	mccio-top -url http://127.0.0.1:9100
//	mccio-top -url http://127.0.0.1:9100 -interval 1s
//	mccio-top -url http://127.0.0.1:9100 -once        # one frame, no redraw
//	mccio-top -url http://127.0.0.1:9100 -n 5         # five frames, then exit
//
// The first frame shows all-time percentiles; subsequent frames show
// the sampling window when it saw requests.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/metrics"
	"repro/internal/top"
)

// fetch decodes one /metrics.json snapshot.
func fetch(client *http.Client, url string) (*metrics.Snapshot, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("mccio-top: %s: %s", url, resp.Status)
	}
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("mccio-top: decode %s: %w", url, err)
	}
	return &snap, nil
}

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:9100", "base URL of the pland daemon")
		interval = flag.Duration("interval", 2*time.Second, "poll and redraw interval")
		frames   = flag.Int("n", 0, "number of frames to draw (0 = until interrupted)")
		once     = flag.Bool("once", false, "draw a single frame and exit (same as -n 1, without clearing the screen)")
	)
	flag.Parse()
	if *once {
		*frames = 1
	}

	client := &http.Client{Timeout: 10 * time.Second}
	target := *url + "/metrics.json"
	var prev *metrics.Snapshot
	var prevAt time.Time
	for i := 0; *frames == 0 || i < *frames; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		cur, err := fetch(client, target)
		now := time.Now()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		m := top.Compute(prev, cur, now.Sub(prevAt).Seconds())
		if !*once {
			// ANSI clear + home: redraw in place like top(1).
			fmt.Print("\x1b[2J\x1b[H")
			fmt.Printf("mccio-top — %s — %s\n\n", *url, now.Format("15:04:05"))
		}
		m.Render(os.Stdout)
		prev, prevAt = cur, now
	}
}
