// Command mccio-top is a live terminal dashboard for a running
// mccio-pland daemon — or a whole plan-serving ring: it polls
// /metrics.json and redraws request rate, status mix, latency
// percentiles, cache hit rate, and shed / queue pressure every
// interval.
//
// Usage:
//
//	mccio-top -url http://127.0.0.1:9100
//	mccio-top -url http://127.0.0.1:9100 -interval 1s
//	mccio-top -url http://127.0.0.1:9100 -once        # one frame, no redraw
//	mccio-top -url http://127.0.0.1:9100 -n 5         # five frames, then exit
//	mccio-top -url http://127.0.0.1:9201,http://127.0.0.1:9202,http://127.0.0.1:9203
//
// With multiple comma-separated endpoints the dashboard shows one row
// per shard (request rate, hit rate, planner runs, forwards, p99) and
// a cluster-total panel computed from the merged snapshots.
//
// The first frame shows all-time percentiles; subsequent frames show
// the sampling window when it saw requests.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/top"
)

// fetch decodes one /metrics.json snapshot.
func fetch(client *http.Client, url string) (*metrics.Snapshot, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("mccio-top: %s: %s", url, resp.Status)
	}
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("mccio-top: decode %s: %w", url, err)
	}
	return &snap, nil
}

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:9100", "base URL(s) of the pland daemon(s), comma-separated for a ring")
		interval = flag.Duration("interval", 2*time.Second, "poll and redraw interval")
		frames   = flag.Int("n", 0, "number of frames to draw (0 = until interrupted)")
		once     = flag.Bool("once", false, "draw a single frame and exit (same as -n 1, without clearing the screen)")
	)
	flag.Parse()
	if *once {
		*frames = 1
	}

	var urls []string
	for _, u := range strings.Split(*url, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "mccio-top: no endpoint URLs")
		os.Exit(1)
	}

	client := &http.Client{Timeout: 10 * time.Second}
	prevs := make([]*metrics.Snapshot, len(urls))
	var prevMerged *metrics.Snapshot
	var prevAt time.Time
	for i := 0; *frames == 0 || i < *frames; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		curs := make([]*metrics.Snapshot, len(urls))
		for j, u := range urls {
			cur, err := fetch(client, u+"/metrics.json")
			if err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
				os.Exit(1)
			}
			curs[j] = cur
		}
		now := time.Now()
		dt := now.Sub(prevAt).Seconds()
		if !*once {
			// ANSI clear + home: redraw in place like top(1).
			fmt.Print("\x1b[2J\x1b[H")
			fmt.Printf("mccio-top — %s — %s\n\n", strings.Join(urls, " "), now.Format("15:04:05"))
		}
		if len(urls) == 1 {
			top.Compute(prevs[0], curs[0], dt).Render(os.Stdout)
			prevs[0] = curs[0]
		} else {
			shards := make([]top.Model, len(urls))
			snaps := make([]metrics.Snapshot, len(urls))
			for j := range urls {
				shards[j] = top.Compute(prevs[j], curs[j], dt)
				snaps[j] = *curs[j]
				prevs[j] = curs[j]
			}
			merged := metrics.MergeSnapshots(snaps...)
			total := top.Compute(prevMerged, &merged, dt)
			top.RenderCluster(os.Stdout, urls, shards, total)
			prevMerged = &merged
		}
		prevAt = now
	}
}
