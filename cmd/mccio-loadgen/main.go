// Command mccio-loadgen drives a running mccio-pland daemon with a
// closed-loop, Zipf-skewed plan workload and reports throughput,
// latency percentiles, and the client-observed cache behavior.
//
// Usage:
//
//	mccio-loadgen -url http://127.0.0.1:9100 -n 500 -c 16
//	mccio-loadgen -url http://127.0.0.1:9100 -keys 64 -zipf 1.2 -json load.json
//	mccio-loadgen -url http://127.0.0.1:9100 -sim-every 10
//	mccio-loadgen -urls http://127.0.0.1:9201,http://127.0.0.1:9202,http://127.0.0.1:9203
//
// With -urls (comma-separated) the generator sprays requests
// round-robin across a plan-serving ring and the report gains a
// per-shard breakdown: each shard's request count, hit rate (counting
// replica hits and forwarded hits as served), and tail latency.
//
// With -json the report is also written as a JSON object whose field
// names CI asserts on (hits, coalesced, hit_rate, throughput_rps,
// forwarded, shards, ...).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/pland"
)

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:9100", "base URL of the pland daemon")
		urls     = flag.String("urls", "", "comma-separated base URLs of a plan-serving ring (overrides -url)")
		n        = flag.Int("n", 200, "total requests to issue")
		c        = flag.Int("c", 8, "concurrent closed-loop clients")
		keys     = flag.Int("keys", 32, "distinct request layouts")
		zipf     = flag.Float64("zipf", 1.1, "Zipf popularity skew (0 = uniform)")
		ranks    = flag.Int("ranks", 16, "ranks per generated request")
		simEvery = flag.Int("sim-every", 0, "route every Nth request to /v1/simulate (0 = plans only)")
		seed     = flag.Uint64("seed", 1, "client RNG seed")
		jsonPath = flag.String("json", "", "also write the report as JSON to this file")
	)
	flag.Parse()

	var urlList []string
	for _, u := range strings.Split(*urls, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urlList = append(urlList, u)
		}
	}
	rep, err := pland.RunLoad(pland.LoadSpec{
		URL:         *url,
		URLs:        urlList,
		Requests:    *n,
		Concurrency: *c,
		Keys:        *keys,
		ZipfS:       *zipf,
		Ranks:       *ranks,
		SimEvery:    *simEvery,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mccio-loadgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("requests    %d (%d errors, %d shed, %.2f%% error rate)\n",
		rep.Requests, rep.Errors, rep.Shed, rep.ErrorRate*100)
	codes := make([]string, 0, len(rep.StatusCounts))
	for code := range rep.StatusCounts {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	var parts []string
	for _, code := range codes {
		parts = append(parts, fmt.Sprintf("%s=%d", code, rep.StatusCounts[code]))
	}
	fmt.Printf("status      %s\n", strings.Join(parts, " "))
	fmt.Printf("throughput  %.1f req/s over %.2fs\n", rep.ThroughputRPS, rep.ElapsedS)
	fmt.Printf("latency     p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n", rep.P50Ms, rep.P95Ms, rep.P99Ms)
	fmt.Printf("plan cache  %.1f%% hit rate (%d hits, %d coalesced, %d misses)\n",
		rep.HitRate*100, rep.Hits, rep.Coalesced, rep.Misses)
	if rep.Forwarded > 0 || rep.ReplicaHits > 0 {
		fmt.Printf("cluster     %d forwarded (%d fwd-hit, %d fwd-miss), %d replica hits\n",
			rep.Forwarded, rep.ForwardHits, rep.ForwardMisses, rep.ReplicaHits)
	}
	for _, sr := range rep.Shards {
		fmt.Printf("  shard %-28s %4d req, %5.1f%% hit, p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
			sr.URL, sr.Requests, sr.HitRate*100, sr.P50Ms, sr.P95Ms, sr.P99Ms)
	}
	if rep.Simulations > 0 {
		fmt.Printf("simulations %d\n", rep.Simulations)
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mccio-loadgen: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "mccio-loadgen: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}
