// Command mccio-report aggregates a recorded event trace into the
// phase-breakdown report: per-phase and per-round seconds, per-group
// exchange traffic, and per-node memory high-water marks.
//
// It accepts either trace format the simulator writes — Chrome
// trace_event JSON (-trace foo.json) or JSON lines (-trace foo.jsonl) —
// and sniffs which one it was given.
//
//	mccio-sim -strategy mccio -op write -trace run.json
//	mccio-report run.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mccio-report TRACE-FILE\n\nTRACE-FILE is a trace written by mccio-sim -trace or mccio-trace run -trace\n(Chrome trace_event JSON or JSONL; the format is auto-detected).")
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	events, err := obs.ParseAuto(f)
	if err != nil {
		fatal(err)
	}
	if len(events) == 0 {
		fatal(fmt.Errorf("%s contains no events", flag.Arg(0)))
	}
	fmt.Printf("%s: %d events\n", flag.Arg(0), len(events))
	obs.Summarize(events).WriteText(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mccio-report: %v\n", err)
	os.Exit(1)
}
