// Command mccio-report turns recorded observability artifacts into
// human-readable reports.
//
//	mccio-report summarize TRACE-FILE
//	  Aggregate an event trace (Chrome trace_event JSON or JSONL,
//	  auto-detected) into the phase-breakdown report: per-phase and
//	  per-round seconds, per-group exchange traffic, per-node memory
//	  high-water marks.
//
//	mccio-report compare [-threshold PCT] OLD.json NEW.json
//	  Diff two bench trajectories written by mccio-bench -json and
//	  print the per-experiment bandwidth deltas. Exits 1 when any
//	  experiment's bandwidth fell more than PCT percent (default 10),
//	  which is how CI gates regressions.
//
//	mccio-report explain EXPLAIN-FILE
//	  Render a decision log written by mccio-sim/mccio-bench -explain
//	  as annotated ASCII partition trees — every remerge inline with
//	  its reason (candidate hosts, their Mem_avl, the failed
//	  threshold) and every placement with its winner and headroom —
//	  plus a per-decision "why" table and the decision-count summary.
//
//	mccio-report memtl EXPLAIN-FILE
//	  Render the same log's per-aggregator memory timeline as a
//	  terminal heatmap (nodes x rounds, shaded by ledger utilization).
//
// A bare trace-file argument (mccio-report run.json) is accepted as
// shorthand for summarize, for compatibility with earlier versions.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/explain"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  mccio-report summarize TRACE-FILE
  mccio-report compare [-threshold PCT] [-host [-host-ns-tol PCT] [-host-alloc-tol PCT]] OLD.json NEW.json
  mccio-report explain EXPLAIN-FILE
  mccio-report memtl EXPLAIN-FILE

summarize aggregates an event trace written by mccio-sim -trace
(Chrome trace_event JSON or JSONL; auto-detected) into the phase
breakdown. compare diffs two bench trajectories written by
mccio-bench -json and exits 1 if any experiment regressed more than
the threshold; with -host it additionally gates the host-cost columns
recorded by mccio-bench -host (wall time and allocations, each with
its own tolerance band). explain renders a decision log written by
mccio-sim/mccio-bench -explain as an annotated partition tree with
remerge reasons and a per-decision "why" table; memtl renders the
same log's per-aggregator memory timeline as a terminal heatmap.
A bare TRACE-FILE argument implies summarize.`)
}

// run dispatches the subcommand and returns the process exit code:
// 0 success, 1 operational failure (including detected regressions),
// 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "summarize":
		return summarize(args[1:], stdout, stderr)
	case "compare":
		return compare(args[1:], stdout, stderr)
	case "explain":
		return explainCmd(args[1:], stdout, stderr)
	case "memtl":
		return memtlCmd(args[1:], stdout, stderr)
	case "help", "-h", "-help", "--help":
		usage(stdout)
		return 0
	}
	// Back-compat: a single non-flag argument naming an existing file
	// is the old "mccio-report TRACE" spelling.
	if len(args) == 1 && !strings.HasPrefix(args[0], "-") {
		if _, err := os.Stat(args[0]); err == nil {
			return summarize(args, stdout, stderr)
		}
	}
	fmt.Fprintf(stderr, "mccio-report: unknown subcommand or file %q\n\n", args[0])
	usage(stderr)
	return 2
}

func summarize(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("summarize", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() { usage(stderr) }
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		usage(stderr)
		return 2
	}
	path := fs.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(stderr, "mccio-report: %v\n", err)
		return 1
	}
	defer f.Close()
	events, err := obs.ParseAuto(f)
	if err != nil {
		fmt.Fprintf(stderr, "mccio-report: %v\n", err)
		return 1
	}
	if len(events) == 0 {
		fmt.Fprintf(stderr, "mccio-report: %s contains no events\n", path)
		return 1
	}
	fmt.Fprintf(stdout, "%s: %d events\n", path, len(events))
	obs.Summarize(events).WriteText(stdout)
	return 0
}

// loadExplain parses one decision-log argument for explain/memtl.
func loadExplain(fsName string, args []string, stderr io.Writer) ([]explain.Event, int) {
	fs := flag.NewFlagSet(fsName, flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() { usage(stderr) }
	if err := fs.Parse(args); err != nil {
		return nil, 2
	}
	if fs.NArg() != 1 {
		usage(stderr)
		return nil, 2
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "mccio-report: %v\n", err)
		return nil, 1
	}
	defer f.Close()
	events, err := explain.ParseJSONL(f)
	if err != nil {
		fmt.Fprintf(stderr, "mccio-report: %v\n", err)
		return nil, 1
	}
	if len(events) == 0 {
		fmt.Fprintf(stderr, "mccio-report: %s contains no decision events\n", fs.Arg(0))
		return nil, 1
	}
	return events, 0
}

func explainCmd(args []string, stdout, stderr io.Writer) int {
	events, code := loadExplain("explain", args, stderr)
	if code != 0 {
		return code
	}
	explain.RenderExplain(stdout, events)
	explain.Summarize(events).WriteText(stdout)
	return 0
}

func memtlCmd(args []string, stdout, stderr io.Writer) int {
	events, code := loadExplain("memtl", args, stderr)
	if code != 0 {
		return code
	}
	explain.RenderMemTL(stdout, events)
	return 0
}

func compare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() { usage(stderr) }
	threshold := fs.Float64("threshold", 10, "regression threshold in percent bandwidth drop")
	host := fs.Bool("host", false, "also gate the host-cost columns (host_ns_op, host_allocs_op); both trajectories must have been recorded with mccio-bench -host")
	hostNsTol := fs.Float64("host-ns-tol", 300, "with -host: fail when a row's wall time grows more than this percent (wide band — wall clock varies with hardware)")
	hostAllocTol := fs.Float64("host-alloc-tol", 25, "with -host: fail when a row's allocation count grows more than this percent (tight band — allocs are near-deterministic per binary)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		usage(stderr)
		return 2
	}
	if *threshold < 0 {
		fmt.Fprintf(stderr, "mccio-report: negative threshold %g\n", *threshold)
		return 2
	}
	old, err := bench.ReadBenchFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "mccio-report: %v\n", err)
		return 1
	}
	cur, err := bench.ReadBenchFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "mccio-report: %v\n", err)
		return 1
	}
	table, _, regressed, err := bench.CompareBench(old, cur, *threshold)
	if err != nil {
		fmt.Fprintf(stderr, "mccio-report: %v\n", err)
		return 1
	}
	table.WriteText(stdout)
	code := 0
	if regressed > 0 {
		fmt.Fprintf(stderr, "mccio-report: %d experiment(s) regressed more than %.1f%%\n", regressed, *threshold)
		code = 1
	}
	if *host {
		htable, _, hregressed, err := bench.CompareHost(old, cur, *hostNsTol, *hostAllocTol)
		if err != nil {
			fmt.Fprintf(stderr, "mccio-report: %v\n", err)
			return 1
		}
		htable.WriteText(stdout)
		if hregressed > 0 {
			fmt.Fprintf(stderr, "mccio-report: %d experiment(s) regressed on host cost (bands: wall +%.0f%%, allocs +%.0f%%)\n",
				hregressed, *hostNsTol, *hostAllocTol)
			code = 1
		}
	}
	return code
}
