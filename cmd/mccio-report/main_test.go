package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

func writeTraj(t *testing.T, name string, bw ...float64) string {
	t.Helper()
	bf := &bench.BenchFile{Schema: bench.BenchSchemaVersion, Scale: 1, Seed: 42}
	for i, b := range bw {
		bf.Experiments = append(bf.Experiments, bench.BenchRow{
			Key: []string{"a", "b", "c"}[i%3], BandwidthMBps: b,
		})
	}
	path := filepath.Join(t.TempDir(), name)
	if err := bench.WriteBenchFile(path, bf); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunUnknownSubcommand(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"frobnicate"}, &out, &errb); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "usage:") {
		t.Errorf("stderr missing usage:\n%s", errb.String())
	}
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no-args exit = %d, want 2", code)
	}
	if code := run([]string{"compare", "-bogus-flag", "a", "b"}, &out, &errb); code != 2 {
		t.Errorf("bad-flag exit = %d, want 2", code)
	}
	if code := run([]string{"compare", "just-one.json"}, &out, &errb); code != 2 {
		t.Errorf("missing-arg exit = %d, want 2", code)
	}
}

func TestRunCompare(t *testing.T) {
	old := writeTraj(t, "old.json", 100, 200)
	same := writeTraj(t, "same.json", 100, 200)
	bad := writeTraj(t, "bad.json", 100, 120) // b: -40%

	var out, errb bytes.Buffer
	if code := run([]string{"compare", old, same}, &out, &errb); code != 0 {
		t.Errorf("identical trajectories: exit = %d, want 0 (stderr %q)", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"compare", old, bad}, &out, &errb); code != 1 {
		t.Errorf("regressed trajectory: exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("table missing REGRESSED verdict:\n%s", out.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"compare", "-threshold", "50", old, bad}, &out, &errb); code != 0 {
		t.Errorf("loose threshold: exit = %d, want 0", code)
	}
	if code := run([]string{"compare", old, filepath.Join(t.TempDir(), "absent.json")}, &out, &errb); code != 1 {
		t.Errorf("unreadable file: exit = %d, want 1", code)
	}
}

func TestRunSummarizeBareFile(t *testing.T) {
	// The old "mccio-report TRACE" spelling still works: one JSONL event.
	path := filepath.Join(t.TempDir(), "run.jsonl")
	line := `{"kind":"span","phase":"io","t0":0,"t1":1,"rank":0,"node":0,"group":-1,"round":0,"bytes":10,"extra":1}` + "\n"
	if err := os.WriteFile(path, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Errorf("bare file: exit = %d, want 0 (stderr %q)", code, errb.String())
	}
	if !strings.Contains(out.String(), "1 events") {
		t.Errorf("missing event count:\n%s", out.String())
	}
	if code := run([]string{"summarize", path}, &out, &errb); code != 0 {
		t.Errorf("summarize: exit = %d, want 0", code)
	}
}
