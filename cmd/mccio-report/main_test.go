package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/explain"
)

func writeTraj(t *testing.T, name string, bw ...float64) string {
	t.Helper()
	bf := &bench.BenchFile{Schema: bench.BenchSchemaVersion, Scale: 1, Seed: 42}
	for i, b := range bw {
		bf.Experiments = append(bf.Experiments, bench.BenchRow{
			Key: []string{"a", "b", "c"}[i%3], BandwidthMBps: b,
		})
	}
	path := filepath.Join(t.TempDir(), name)
	if err := bench.WriteBenchFile(path, bf); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunUnknownSubcommand(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"frobnicate"}, &out, &errb); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "usage:") {
		t.Errorf("stderr missing usage:\n%s", errb.String())
	}
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no-args exit = %d, want 2", code)
	}
	if code := run([]string{"compare", "-bogus-flag", "a", "b"}, &out, &errb); code != 2 {
		t.Errorf("bad-flag exit = %d, want 2", code)
	}
	if code := run([]string{"compare", "just-one.json"}, &out, &errb); code != 2 {
		t.Errorf("missing-arg exit = %d, want 2", code)
	}
}

func TestRunCompare(t *testing.T) {
	old := writeTraj(t, "old.json", 100, 200)
	same := writeTraj(t, "same.json", 100, 200)
	bad := writeTraj(t, "bad.json", 100, 120) // b: -40%

	var out, errb bytes.Buffer
	if code := run([]string{"compare", old, same}, &out, &errb); code != 0 {
		t.Errorf("identical trajectories: exit = %d, want 0 (stderr %q)", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"compare", old, bad}, &out, &errb); code != 1 {
		t.Errorf("regressed trajectory: exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("table missing REGRESSED verdict:\n%s", out.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"compare", "-threshold", "50", old, bad}, &out, &errb); code != 0 {
		t.Errorf("loose threshold: exit = %d, want 0", code)
	}
	if code := run([]string{"compare", old, filepath.Join(t.TempDir(), "absent.json")}, &out, &errb); code != 1 {
		t.Errorf("unreadable file: exit = %d, want 1", code)
	}
}

func TestRunSummarizeBareFile(t *testing.T) {
	// The old "mccio-report TRACE" spelling still works: one JSONL event.
	path := filepath.Join(t.TempDir(), "run.jsonl")
	line := `{"kind":"span","phase":"io","t0":0,"t1":1,"rank":0,"node":0,"group":-1,"round":0,"bytes":10,"extra":1}` + "\n"
	if err := os.WriteFile(path, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Errorf("bare file: exit = %d, want 0 (stderr %q)", code, errb.String())
	}
	if !strings.Contains(out.String(), "1 events") {
		t.Errorf("missing event count:\n%s", out.String())
	}
	if code := run([]string{"summarize", path}, &out, &errb); code != 0 {
		t.Errorf("summarize: exit = %d, want 0", code)
	}
}

// writeExplainLog serializes a minimal decision log for the explain and
// memtl subcommand tests.
func writeExplainLog(t *testing.T, events []explain.Event) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "decisions.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := explain.WriteJSONLEvents(f, events); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunExplain(t *testing.T) {
	path := writeExplainLog(t, []explain.Event{
		{Kind: explain.KindGroups, Group: -1, Op: "write", TotalBytes: 200, Msggroup: 200,
			Groups: []explain.GroupInfo{{First: 0, Last: 3, Nodes: 1, Bytes: 200}}},
		{Kind: explain.KindTree, Group: 0, Hi: 200, Data: 200, Leaves: 2, Msgind: 100, MaxAggs: 2},
		{Kind: explain.KindBisect, Group: 0, Hi: 200, Data: 200, Cut: 100, LeftData: 100, RightData: 100},
		{Kind: explain.KindRemerge, Group: 0, Lo: 100, Hi: 200, Data: 100,
			Variant: explain.VariantSibling, Reason: "no candidate can offer Memmin=64 bytes",
			Threshold: 64, BestShare: 32,
			Candidates: []explain.Candidate{{Node: 0, Avail: 32, Share: 32}}, TakerHi: 200},
		{Kind: explain.KindMemTL, Group: -1, Node: 0, Round: 0, Used: 50, Peak: 60, Cap: 100},
	})
	var out, errb bytes.Buffer
	if code := run([]string{"explain", path}, &out, &errb); code != 0 {
		t.Fatalf("explain: exit = %d, want 0 (stderr %q)", code, errb.String())
	}
	for _, want := range []string{"<- remerged (sibling-takeover)", "why (1 decision(s)):", "decision audit:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("explain output missing %q:\n%s", want, out.String())
		}
	}
	out.Reset()
	if code := run([]string{"memtl", path}, &out, &errb); code != 0 {
		t.Fatalf("memtl: exit = %d, want 0 (stderr %q)", code, errb.String())
	}
	if !strings.Contains(out.String(), "memory timeline (1 node(s) x 1 round(s))") {
		t.Errorf("memtl output missing heatmap:\n%s", out.String())
	}
}

func TestRunExplainErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"explain"}, &out, &errb); code != 2 {
		t.Errorf("missing arg: exit = %d, want 2", code)
	}
	if code := run([]string{"explain", "-bogus", "x"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit = %d, want 2", code)
	}
	if code := run([]string{"explain", filepath.Join(t.TempDir(), "absent.jsonl")}, &out, &errb); code != 1 {
		t.Errorf("unreadable file: exit = %d, want 1", code)
	}
	// A log holding only the header has no decision events.
	empty := writeExplainLog(t, nil)
	errb.Reset()
	if code := run([]string{"memtl", empty}, &out, &errb); code != 1 {
		t.Errorf("empty log: exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "no decision events") {
		t.Errorf("empty-log stderr: %q", errb.String())
	}
}
