// Command mccio-inspect prints the static plan memory-conscious
// collective I/O computes for a workload — aggregation groups,
// partition trees, remerges, and aggregator placements — without
// running the simulation. Useful for understanding how the four §3
// mechanisms respond to a pattern and a memory distribution.
//
// Example:
//
//	mccio-inspect -workload ior -procs 24 -cores 4 -mem 8MB -sigma 50
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/explain"
	"repro/internal/pfs"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  mccio-inspect [flags]

Prints the static MCCIO plan — aggregation groups, partition tree,
remerges, aggregator placements — for a workload on a simulated
platform, without running the collective. Flags:`)
}

// run executes the inspection and returns the process exit code:
// 0 success, 1 operational failure, 2 usage error (unknown flags or
// stray positional arguments).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mccio-inspect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() { usage(stderr); fs.PrintDefaults() }
	var (
		wlName   = fs.String("workload", "ior", "ior | collperf | random | checkpoint")
		procs    = fs.Int("procs", 24, "number of MPI processes")
		cores    = fs.Int("cores", 4, "cores (ranks) per node")
		memMB    = fs.Int64("mem", 8, "nominal aggregation memory per node, MB")
		sigmaMB  = fs.Int64("sigma", 50, "memory variance sigma, MB (0 = uniform)")
		dim      = fs.Int64("dim", 256, "collperf cube dimension")
		blockKB  = fs.Int64("block", 1024, "ior block size, KB")
		segments = fs.Int("segments", 8, "ior segments")
		seed     = fs.Uint64("seed", 42, "seed for memory sampling")
		groups   = fs.Int("groups", 0, "target group count (0 = derive from Msggroup)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "mccio-inspect: unexpected argument %q\n\n", fs.Arg(0))
		fs.Usage()
		return 2
	}

	if *procs <= 0 || *cores <= 0 || *procs%*cores != 0 {
		fmt.Fprintf(stderr, "mccio-inspect: procs %d not divisible by cores %d\n", *procs, *cores)
		return 2
	}
	nodes := *procs / *cores

	var wl workload.Workload
	switch *wlName {
	case "ior":
		wl = workload.IOR{Ranks: *procs, BlockSize: *blockKB << 10, Segments: *segments}
	case "collperf":
		wl = workload.CollPerf3D{Dims: [3]int64{*dim, *dim, *dim}, Procs: workload.Grid3(*procs), Elem: 4}
	case "random":
		wl = workload.Random{Ranks: *procs, SegsPerRank: 32, SegLen: 64 << 10, FileSize: int64(*procs) * 8 << 20, Seed: *seed}
	case "checkpoint":
		wl = workload.Checkpoint{Ranks: *procs, MeanBytes: 8 << 20, Sigma: 0.7, Seed: *seed, Align: 1 << 20}
	default:
		fmt.Fprintf(stderr, "mccio-inspect: unknown workload %q\n", *wlName)
		return 2
	}

	mcfg := cluster.TestbedConfig(nodes)
	mcfg.CoresPerNode = *cores
	mcfg.MemPerNode = *memMB << 20
	if *sigmaMB > 0 {
		mcfg.MemSigma = float64(*sigmaMB<<20) / float64(mcfg.MemPerNode)
	}
	mcfg.MemFloor = mcfg.MemPerNode / 4
	mcfg.Seed = *seed
	machine, err := cluster.New(mcfg)
	if err != nil {
		fmt.Fprintf(stderr, "mccio-inspect: %v\n", err)
		return 1
	}

	opts := core.DefaultOptions(mcfg, pfs.DefaultConfig())
	opts.Memmin = mcfg.MemPerNode / 4
	if *groups > 0 {
		opts.Msggroup = wl.TotalBytes() / int64(*groups)
	}
	fmt.Fprintf(stdout, "machine: %d nodes x %d cores; nominal %d MB/node (sigma %d MB)\n",
		nodes, *cores, *memMB, *sigmaMB)
	fmt.Fprint(stdout, "node aggregation memory (MB):")
	for _, c := range machine.MemCapacities() {
		fmt.Fprintf(stdout, " %.1f", float64(c)/1e6)
	}
	fmt.Fprintf(stdout, "\nworkload: %s\n", wl.Name())
	fmt.Fprintf(stdout, "options: Msgind=%.1fMB Msggroup=%.1fMB Nah=%d Memmin=%.1fMB\n\n",
		float64(opts.Msgind)/1e6, float64(opts.Msggroup)/1e6, opts.Nah, float64(opts.Memmin)/1e6)

	views := make([]datatype.List, *procs)
	for r := range views {
		views[r] = wl.View(r)
	}
	// Record the decision audit alongside the plan so the inspector can
	// close with the decision-count summary.
	rec := explain.NewRecorder()
	machine.SetExplain(rec)
	res, err := (core.MCCIO{Opts: opts}).Inspect(machine, views)
	if err != nil {
		fmt.Fprintf(stderr, "mccio-inspect: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, res.Summary())
	fmt.Fprintln(stdout)
	explain.Summarize(rec.Events()).WriteText(stdout)
	return 0
}
