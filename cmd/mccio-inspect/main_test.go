package main

import (
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, errb.String())
	}
	for _, want := range []string{"machine:", "workload:", "options:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"stray-positional"},
		{"-procs", "25", "-cores", "4"}, // not divisible
		{"-workload", "nope"},
	}
	for _, args := range cases {
		var out, errb strings.Builder
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, errb.String())
		}
		if errb.Len() == 0 {
			t.Errorf("run(%v): expected a diagnostic on stderr", args)
		}
	}
}
