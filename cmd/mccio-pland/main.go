// Command mccio-pland runs the plan-serving daemon: an HTTP service
// that computes (or cache-hits) MCCIO aggregation plans and runs
// on-demand simulations.
//
// Usage:
//
//	mccio-pland -addr 127.0.0.1:9100
//	mccio-pland -addr :9100 -cache 4096 -workers 8 -queue 128
//	mccio-pland -addr :9100 -trace serve.trace.json
//	mccio-pland -addr :9100 -log requests.jsonl -pprof
//	mccio-pland -addr :9201 -shard-id s1 \
//	    -peers "s1=http://127.0.0.1:9201,s2=http://127.0.0.1:9202,s3=http://127.0.0.1:9203"
//
// Endpoints: POST /v1/plan, POST /v1/simulate, GET /healthz,
// GET /metrics, GET /metrics.json, GET /debug/flight,
// GET /debug/explain, GET /debug/ring, and (with
// -pprof) GET /debug/pprof/. SIGINT/SIGTERM drains gracefully:
// in-flight requests finish (up to -drain-timeout) and the process
// exits 0. SIGQUIT dumps the in-memory flight recorder — the last
// -flight requests plus the slowest and the failures — to stderr as
// JSONL and keeps serving.
//
// With -peers (a comma-separated id=url list naming every ring member,
// including this daemon under -shard-id), the daemon joins a
// plan-serving ring: a consistent-hash ring assigns each plan
// fingerprint an owner shard, wrong-shard requests are proxied to the
// owner in one internal hop, and hot fingerprints (≥ -hot-threshold
// requests per -hot-window) are replicated into the local cache so the
// Zipf head is served from every shard. Peer health is probed every
// -probe-interval; dead shards are routed around.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/logx"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pland"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:9100", "listen address")
		cacheCap  = flag.Int("cache", 1024, "plan cache capacity (entries)")
		workers   = flag.Int("workers", 0, "planner/simulator worker count (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "admission backlog beyond in-flight jobs (negative = none)")
		tracePath = flag.String("trace", "", "write server-side request spans to this trace file on exit")
		drainT    = flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight requests")
		logPath   = flag.String("log", "", "write one JSONL record per request to this file (\"-\" = stderr)")
		flightN   = flag.Int("flight", 256, "flight recorder ring size (last N requests kept in memory)")
		pprofOn   = flag.Bool("pprof", false, "mount live profiling handlers under /debug/pprof/")
		shardID   = flag.String("shard-id", "", "this daemon's name on the plan-serving ring (required with -peers)")
		peersFlag = flag.String("peers", "", "ring membership as id=url,id=url,... including this daemon; 2+ entries enable cluster mode")
		vnodes    = flag.Int("vnodes", 0, "virtual nodes per ring member (0 = default)")
		hotThresh = flag.Int("hot-threshold", 8, "requests per -hot-window at which a non-owned plan replicates locally")
		hotWindow = flag.Duration("hot-window", 10*time.Second, "hot-key tracking window")
		probeIv   = flag.Duration("probe-interval", 500*time.Millisecond, "peer health probe period")
	)
	flag.Parse()

	peers, err := parsePeers(*peersFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mccio-pland: %v\n", err)
		os.Exit(1)
	}
	if len(peers) > 0 && *shardID == "" {
		fmt.Fprintln(os.Stderr, "mccio-pland: -peers requires -shard-id")
		os.Exit(1)
	}

	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer()
	}
	var logger *logx.Logger
	if *logPath != "" {
		lw := os.Stderr
		if *logPath != "-" {
			f, err := os.Create(*logPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mccio-pland: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			lw = f
		}
		logger = logx.New(lw)
	}
	cfg := pland.Config{
		Addr:          *addr,
		CacheCapacity: *cacheCap,
		Workers:       *workers,
		Queue:         *queue,
		Registry:      metrics.New(),
		Tracer:        tracer,
		Logger:        logger,
		FlightSize:    *flightN,
		Pprof:         *pprofOn,
		ShardID:       *shardID,
		Peers:         peers,
		Vnodes:        *vnodes,
		HotThreshold:  *hotThresh,
		HotWindow:     *hotWindow,
		ProbeInterval: *probeIv,
	}
	// The flag default 64 doubles as pland's own default; distinguish
	// an explicit -queue 0 (no backlog at all) from the unset case.
	if *queue == 0 {
		cfg.Queue = -1
	}
	srv, err := pland.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mccio-pland: %v\n", err)
		os.Exit(1)
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "mccio-pland: serving on http://%s (cache %d, workers %d)\n",
		srv.Addr(), *cacheCap, w)
	if len(peers) > 1 {
		fmt.Fprintf(os.Stderr, "mccio-pland: shard %s of a %d-member ring\n", *shardID, len(peers))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM, syscall.SIGQUIT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

wait:
	for {
		select {
		case err := <-serveErr:
			fmt.Fprintf(os.Stderr, "mccio-pland: %v\n", err)
			os.Exit(1)
		case s := <-sig:
			// SIGQUIT is the in-flight triage signal: dump the flight
			// recorder and keep serving. SIGINT/SIGTERM drain and exit.
			if s == syscall.SIGQUIT {
				fl := srv.Flight()
				fmt.Fprintf(os.Stderr, "mccio-pland: SIGQUIT — flight recorder (%d requests seen):\n", fl.Len())
				if err := fl.WriteJSONL(os.Stderr); err != nil {
					fmt.Fprintf(os.Stderr, "mccio-pland: flight dump: %v\n", err)
				}
				continue
			}
			fmt.Fprintf(os.Stderr, "mccio-pland: %v — draining\n", s)
			break wait
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "mccio-pland: drain: %v\n", err)
		os.Exit(1)
	}
	if err := <-serveErr; err != nil {
		fmt.Fprintf(os.Stderr, "mccio-pland: %v\n", err)
		os.Exit(1)
	}
	if tracer != nil {
		if err := writeTrace(*tracePath, tracer); err != nil {
			fmt.Fprintf(os.Stderr, "mccio-pland: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mccio-pland: wrote %d trace events to %s\n", tracer.Len(), *tracePath)
	}
	fmt.Fprintln(os.Stderr, "mccio-pland: drained cleanly")
}

// parsePeers parses the -peers flag: a comma-separated list of id=url
// entries. An empty flag returns nil (single-node mode).
func parsePeers(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	peers := make(map[string]string)
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, url, ok := strings.Cut(entry, "=")
		id, url = strings.TrimSpace(id), strings.TrimSpace(url)
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q; want id=url", entry)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("duplicate shard ID %q in -peers", id)
		}
		peers[id] = url
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("-peers %q names no members", s)
	}
	return peers, nil
}

// writeTrace serializes the trace; the extension picks the format
// (.jsonl = JSON lines, otherwise Chrome trace_event JSON).
func writeTrace(path string, t *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") {
		return t.WriteJSONL(f)
	}
	return t.WriteChrome(f)
}
