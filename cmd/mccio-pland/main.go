// Command mccio-pland runs the plan-serving daemon: an HTTP service
// that computes (or cache-hits) MCCIO aggregation plans and runs
// on-demand simulations.
//
// Usage:
//
//	mccio-pland -addr 127.0.0.1:9100
//	mccio-pland -addr :9100 -cache 4096 -workers 8 -queue 128
//	mccio-pland -addr :9100 -trace serve.trace.json
//	mccio-pland -addr :9100 -log requests.jsonl -pprof
//
// Endpoints: POST /v1/plan, POST /v1/simulate, GET /healthz,
// GET /metrics, GET /metrics.json, GET /debug/flight,
// GET /debug/explain, and (with
// -pprof) GET /debug/pprof/. SIGINT/SIGTERM drains gracefully:
// in-flight requests finish (up to -drain-timeout) and the process
// exits 0. SIGQUIT dumps the in-memory flight recorder — the last
// -flight requests plus the slowest and the failures — to stderr as
// JSONL and keeps serving.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/logx"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pland"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:9100", "listen address")
		cacheCap  = flag.Int("cache", 1024, "plan cache capacity (entries)")
		workers   = flag.Int("workers", 0, "planner/simulator worker count (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "admission backlog beyond in-flight jobs (negative = none)")
		tracePath = flag.String("trace", "", "write server-side request spans to this trace file on exit")
		drainT    = flag.Duration("drain-timeout", 5*time.Second, "how long shutdown waits for in-flight requests")
		logPath   = flag.String("log", "", "write one JSONL record per request to this file (\"-\" = stderr)")
		flightN   = flag.Int("flight", 256, "flight recorder ring size (last N requests kept in memory)")
		pprofOn   = flag.Bool("pprof", false, "mount live profiling handlers under /debug/pprof/")
	)
	flag.Parse()

	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer()
	}
	var logger *logx.Logger
	if *logPath != "" {
		lw := os.Stderr
		if *logPath != "-" {
			f, err := os.Create(*logPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mccio-pland: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			lw = f
		}
		logger = logx.New(lw)
	}
	cfg := pland.Config{
		Addr:          *addr,
		CacheCapacity: *cacheCap,
		Workers:       *workers,
		Queue:         *queue,
		Registry:      metrics.New(),
		Tracer:        tracer,
		Logger:        logger,
		FlightSize:    *flightN,
		Pprof:         *pprofOn,
	}
	// The flag default 64 doubles as pland's own default; distinguish
	// an explicit -queue 0 (no backlog at all) from the unset case.
	if *queue == 0 {
		cfg.Queue = -1
	}
	srv, err := pland.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mccio-pland: %v\n", err)
		os.Exit(1)
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "mccio-pland: serving on http://%s (cache %d, workers %d)\n",
		srv.Addr(), *cacheCap, w)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM, syscall.SIGQUIT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

wait:
	for {
		select {
		case err := <-serveErr:
			fmt.Fprintf(os.Stderr, "mccio-pland: %v\n", err)
			os.Exit(1)
		case s := <-sig:
			// SIGQUIT is the in-flight triage signal: dump the flight
			// recorder and keep serving. SIGINT/SIGTERM drain and exit.
			if s == syscall.SIGQUIT {
				fl := srv.Flight()
				fmt.Fprintf(os.Stderr, "mccio-pland: SIGQUIT — flight recorder (%d requests seen):\n", fl.Len())
				if err := fl.WriteJSONL(os.Stderr); err != nil {
					fmt.Fprintf(os.Stderr, "mccio-pland: flight dump: %v\n", err)
				}
				continue
			}
			fmt.Fprintf(os.Stderr, "mccio-pland: %v — draining\n", s)
			break wait
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "mccio-pland: drain: %v\n", err)
		os.Exit(1)
	}
	if err := <-serveErr; err != nil {
		fmt.Fprintf(os.Stderr, "mccio-pland: %v\n", err)
		os.Exit(1)
	}
	if tracer != nil {
		if err := writeTrace(*tracePath, tracer); err != nil {
			fmt.Fprintf(os.Stderr, "mccio-pland: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mccio-pland: wrote %d trace events to %s\n", tracer.Len(), *tracePath)
	}
	fmt.Fprintln(os.Stderr, "mccio-pland: drained cleanly")
}

// writeTrace serializes the trace; the extension picks the format
// (.jsonl = JSON lines, otherwise Chrome trace_event JSON).
func writeTrace(path string, t *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") {
		return t.WriteJSONL(f)
	}
	return t.WriteChrome(f)
}
