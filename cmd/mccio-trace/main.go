// Command mccio-trace generates, inspects, and replays I/O traces —
// the bridge between real application patterns and the simulator.
//
//	mccio-trace gen -workload ior -procs 24 -out ior.trace
//	mccio-trace stat ior.trace
//	mccio-trace run -strategy mccio -mem 8MB ior.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/iolib"
	"repro/internal/iotrace"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/strategy"
	"repro/internal/twolayer"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "stat":
		cmdStat(os.Args[2:])
	case "run":
		cmdRun(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  mccio-trace gen  -workload ior|collperf|random|checkpoint [-procs N] [-out FILE]
  mccio-trace stat FILE
  mccio-trace run  [-strategy `+strategy.List()+`] [-op write|read] [-mem SIZE] [-trace OUT] FILE
                   (-trace records an event trace: .jsonl = JSON lines, else Chrome JSON)`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mccio-trace: %v\n", err)
	os.Exit(1)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	wlName := fs.String("workload", "ior", "ior | collperf | tile2d | random | checkpoint")
	procs := fs.Int("procs", 24, "ranks")
	blockKB := fs.Int64("block", 256, "ior block size, KB")
	segments := fs.Int("segments", 8, "ior segments")
	dim := fs.Int64("dim", 128, "collperf cube dimension")
	out := fs.String("out", "", "output file (default stdout)")
	seed := fs.Uint64("seed", 42, "seed for random workloads")
	fs.Parse(args)

	var wl workload.Workload
	switch *wlName {
	case "ior":
		wl = workload.IOR{Ranks: *procs, BlockSize: *blockKB << 10, Segments: *segments}
	case "collperf":
		wl = workload.CollPerf3D{Dims: [3]int64{*dim, *dim, *dim}, Procs: workload.Grid3(*procs), Elem: 4}
	case "tile2d":
		g := workload.Grid3(*procs)
		wl = workload.Tile2D{Rows: *dim * g[2], Cols: *dim * g[1] * g[0], TilesX: g[2], TilesY: g[1] * g[0], Elem: 4}
	case "random":
		wl = workload.Random{Ranks: *procs, SegsPerRank: 32, SegLen: 64 << 10, FileSize: int64(*procs) << 23, Seed: *seed}
	case "checkpoint":
		wl = workload.Checkpoint{Ranks: *procs, MeanBytes: 4 << 20, Sigma: 0.7, Seed: *seed, Align: 1 << 20}
	default:
		fatal(fmt.Errorf("unknown workload %q", *wlName))
	}
	tr := iotrace.FromWorkload(wl, iotrace.Write)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := tr.Write(w); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated %d requests from %s\n", len(tr.Requests), wl.Name())
}

func loadTrace(path string) *iotrace.Trace {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := iotrace.Parse(f)
	if err != nil {
		fatal(err)
	}
	return tr
}

func cmdStat(args []string) {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	s := iotrace.Analyze(loadTrace(fs.Arg(0)))
	fmt.Printf("ranks:        %d\n", s.Ranks)
	fmt.Printf("requests:     %d (%.0f%% writes)\n", s.Requests, s.WriteShare*100)
	fmt.Printf("bytes:        %.2f MB over file extent %.2f MB\n", float64(s.Bytes)/1e6, float64(s.FileExtent)/1e6)
	fmt.Printf("request size: min %d, mean %.0f, max %d bytes\n", s.MinLen, s.MeanLen, s.MaxLen)
	fmt.Printf("interleave:   %.2f contiguous-ownership runs per rank\n", s.Interleave)
	fmt.Println("size histogram:")
	keys := make([]string, 0, len(s.SizeBuckets))
	for k := range s.SizeBuckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-8s %d\n", k, s.SizeBuckets[k])
	}
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	stratName := fs.String("strategy", strategy.MCCIO, strategy.List())
	op := fs.String("op", "write", "write | read")
	memMB := fs.Int64("mem", 8, "nominal aggregation memory per node, MB")
	cores := fs.Int("cores", 12, "cores per node")
	seed := fs.Uint64("seed", 42, "simulation seed")
	traceOut := fs.String("trace", "", "record an event trace to FILE (.jsonl = JSON lines, otherwise Chrome trace_event JSON)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	tr := loadTrace(fs.Arg(0))
	traceOp := iotrace.Write
	if *op == "read" {
		traceOp = iotrace.Read
	}
	rp, err := iotrace.NewReplay(tr, traceOp)
	if err != nil {
		// A write-only trace replayed as read is still meaningful:
		// read back what was written.
		if *op == "read" {
			rp, err = iotrace.NewReplay(tr, iotrace.Write)
		}
		if err != nil {
			fatal(err)
		}
	}
	if rp.TotalBytes() == 0 {
		rp2, err2 := iotrace.NewReplay(tr, iotrace.Write)
		if err2 == nil && rp2.TotalBytes() > 0 && *op == "read" {
			rp = rp2
		} else {
			fatal(fmt.Errorf("trace has no %s requests", *op))
		}
	}
	nodes := (rp.NumRanks() + *cores - 1) / *cores

	mem := *memMB << 20
	mcfg := cluster.TestbedConfig(nodes)
	mcfg.CoresPerNode = *cores
	mcfg.MemPerNode = mem
	mcfg.MemSigma = float64(50*cluster.MB) / float64(mem)
	mcfg.MemFloor = mem / 4
	mcfg.Seed = *seed
	fcfg := pfs.DefaultConfig()
	fcfg.JitterMean = 12e-3
	fcfg.Seed = *seed

	if !strategy.Valid(*stratName) {
		fmt.Fprintf(os.Stderr, "mccio-trace: unknown strategy %q (want %s)\n", *stratName, strategy.List())
		os.Exit(2)
	}
	var s iolib.Collective
	switch *stratName {
	case strategy.MCCIO:
		opts := core.DefaultOptions(mcfg, fcfg)
		opts.Msggroup = rp.TotalBytes() / int64(maxInt(nodes/2, 1))
		opts.Memmin = mem / 4
		s = core.MCCIO{Opts: opts}
	case strategy.TwoPhase:
		s = collio.TwoPhase{CBBuffer: mem}
	case strategy.TwoLayer:
		s = twolayer.Strategy{CBBuffer: mem}
	default: // strategy.Independent
		s = iolib.Naive{Opts: iolib.DefaultSieve()}
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}
	res, err := bench.RunOnce(bench.Spec{Strategy: s, Op: *op, Machine: mcfg, FS: fcfg, Workload: rp, Tracer: tracer})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replayed %s with %s %s on %d nodes x %d cores\n",
		fs.Arg(0), *stratName, *op, nodes, *cores)
	fmt.Println(res.String())
	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if strings.HasSuffix(*traceOut, ".jsonl") {
			err = tracer.WriteJSONL(f)
		} else {
			err = tracer.WriteChrome(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace events to %s\n", tracer.Len(), *traceOut)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
