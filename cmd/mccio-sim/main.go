// Command mccio-sim runs a single collective I/O simulation with every
// knob exposed as a flag and prints the phase breakdown — the tool for
// poking at one configuration rather than sweeping a figure.
//
// Examples:
//
//	mccio-sim -strategy mccio -op write -workload ior -procs 120 -mem 8MB
//	mccio-sim -strategy two-phase -workload collperf -dim 512 -mem 16MB
//	mccio-sim -strategy two-layer -workload ior -procs 48 -cores 4 -mem 16MB
//	mccio-sim -strategy independent -workload random -procs 24
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/adio"
	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/explain"
	"repro/internal/faults"
	"repro/internal/iolib"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/strategy"
	"repro/internal/trace"
	"repro/internal/twolayer"
	"repro/internal/workload"
)

// parseSize accepts 8MB, 512KB, 1GB, or raw bytes.
func parseSize(s string) (int64, error) {
	mul := int64(1)
	up := strings.ToUpper(strings.TrimSpace(s))
	switch {
	case strings.HasSuffix(up, "GB"):
		mul, up = 1<<30, strings.TrimSuffix(up, "GB")
	case strings.HasSuffix(up, "MB"):
		mul, up = 1<<20, strings.TrimSuffix(up, "MB")
	case strings.HasSuffix(up, "KB"):
		mul, up = 1<<10, strings.TrimSuffix(up, "KB")
	case strings.HasSuffix(up, "B"):
		up = strings.TrimSuffix(up, "B")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(up), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	return n * mul, nil
}

func main() {
	var (
		stratName = flag.String("strategy", strategy.MCCIO, strategy.List())
		op        = flag.String("op", "write", "write | read")
		wlName    = flag.String("workload", "ior", "ior | collperf | tile2d | random | checkpoint")
		procs     = flag.Int("procs", 120, "number of MPI processes")
		cores     = flag.Int("cores", 12, "cores (ranks) per node")
		memStr    = flag.String("mem", "8MB", "nominal aggregation memory per node")
		sigmaMB   = flag.Int64("sigma", 50, "memory variance sigma in MB (0 = uniform)")
		dim       = flag.Int64("dim", 512, "collperf cube dimension (elements)")
		blockStr  = flag.String("block", "4MB", "ior block size")
		segments  = flag.Int("segments", 8, "ior segments")
		seed      = flag.Uint64("seed", 42, "simulation seed")
		verify    = flag.Bool("verify", false, "use real data and verify every byte (small runs only)")
		msgind    = flag.String("msgind", "", "override mccio Msgind (e.g. 4MB)")
		nah       = flag.Int("nah", 0, "override mccio Nah")
		calibrate = flag.Bool("calibrate", false, "measure Msgind/Nah/Memmin/Msggroup on the platform (paper §3) and use them")
		combine   = flag.Bool("combine", false, "enable the rank-order node-combine exchange for mccio")
		twoLayer  = flag.Bool("twolayer", false, "compose the full two-layer exchange (elected leaders) into mccio's groups")
		hints     = flag.String("hints", "", "MPI_Info-style hints (overrides -strategy); 'help' lists keys")
		tracePath = flag.String("trace", "", "record an event trace to FILE (.jsonl = JSON lines, otherwise Chrome trace_event JSON for Perfetto) and print the phase breakdown")
		explPath  = flag.String("explain", "", "record the planner decision audit and memory timeline to FILE as JSONL (render with mccio-report explain/memtl)")
		serveAddr = flag.String("serve", "", "serve Prometheus metrics on ADDR (e.g. :9090) at /metrics and keep serving after the run until interrupted")
		metaPath  = flag.String("metrics", "", "write a one-shot JSON metrics dump to FILE after the run")
		faultPath = flag.String("faults", "", "inject the deterministic fault schedule from this JSON FaultSpec (see examples/chaos.json)")
	)
	flag.Parse()

	if *hints == "help" {
		for _, k := range adio.KnownKeys() {
			fmt.Println(k)
		}
		return
	}

	mem, err := parseSize(*memStr)
	if err != nil {
		fatal(err)
	}
	block, err := parseSize(*blockStr)
	if err != nil {
		fatal(err)
	}
	if *procs%*cores != 0 {
		fatal(fmt.Errorf("procs %d not divisible by cores/node %d", *procs, *cores))
	}
	nodes := *procs / *cores

	var wl workload.Workload
	switch *wlName {
	case "ior":
		wl = workload.IOR{Ranks: *procs, BlockSize: block, Segments: *segments, TransferSize: block}
	case "collperf":
		wl = workload.CollPerf3D{Dims: [3]int64{*dim, *dim, *dim}, Procs: workload.Grid3(*procs), Elem: 4}
	case "tile2d":
		g := workload.Grid3(*procs)
		wl = workload.Tile2D{Rows: *dim * g[2], Cols: *dim * g[1] * g[0], TilesX: g[2], TilesY: g[1] * g[0], Elem: 4}
	case "random":
		wl = workload.Random{Ranks: *procs, SegsPerRank: 64, SegLen: 64 << 10, FileSize: int64(*procs) * 16 << 20, Seed: *seed}
	case "checkpoint":
		wl = workload.Checkpoint{Ranks: *procs, MeanBytes: 16 << 20, Sigma: 0.7, Seed: *seed, Align: 1 << 20}
	default:
		fatal(fmt.Errorf("unknown workload %q", *wlName))
	}

	mcfg := cluster.TestbedConfig(nodes)
	// -cores shapes rank placement too, not just the node count: the
	// intra/inter traffic split and the two-layer election depend on
	// which ranks share a node.
	mcfg.CoresPerNode = *cores
	mcfg.MemPerNode = mem
	if *sigmaMB > 0 {
		mcfg.MemSigma = float64(*sigmaMB*cluster.MB) / float64(mem)
	}
	mcfg.MemFloor = mem / 4
	mcfg.Seed = *seed
	fcfg := pfs.DefaultConfig()
	fcfg.JitterMean = 12e-3
	fcfg.Seed = *seed

	s := buildStrategy(*hints, *stratName, *calibrate, *combine, *twoLayer, *msgind, *nah, mem, nodes, mcfg, fcfg, wl)

	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer()
	}
	var rec *explain.Recorder
	if *explPath != "" {
		rec = explain.NewRecorder()
	}
	var reg *metrics.Registry
	if *serveAddr != "" || *metaPath != "" {
		reg = metrics.New()
	}
	// The exporter comes up before the run so the endpoint can be
	// scraped while the simulation executes.
	var expo *metrics.Exposition
	if *serveAddr != "" {
		var err error
		expo, err = metrics.StartExposition(*serveAddr, reg, os.Stderr)
		if err != nil {
			fatal(err)
		}
	}
	var sched *faults.Schedule
	if *faultPath != "" {
		fspec, err := faults.LoadSpec(*faultPath)
		if err != nil {
			fatal(err)
		}
		if sched, err = faults.NewSchedule(fspec); err != nil {
			fatal(err)
		}
	}
	res, err := bench.RunOnce(bench.Spec{
		Strategy: s, Op: *op, Machine: mcfg, FS: fcfg, Workload: wl, Verify: *verify,
		Tracer: tracer, Metrics: reg, Faults: sched, Explain: rec,
	})
	if err != nil {
		fatal(err)
	}
	report(res, wl, nodes, *cores, *memStr, *sigmaMB, *verify)
	if sched != nil {
		fmt.Printf("faults:          %d injected, %d failovers, %d unrecovered, %d drops\n",
			sched.Injected(), sched.Failovers(), sched.Unrecovered(), sched.Dropped())
	}
	if tracer != nil {
		if err := writeTrace(*tracePath, tracer); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace events to %s\n", tracer.Len(), *tracePath)
		obs.Summarize(tracer.Events()).WriteText(os.Stdout)
	}
	if rec != nil {
		if err := writeExplain(*explPath, rec); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d decision events to %s\n", rec.Len(), *explPath)
	}
	// Anomaly scan: phase stragglers need the tracer, memory-ceiling
	// checks need the decision log; run with whatever was recorded.
	if tracer != nil || rec != nil {
		var sum *obs.Summary
		if tracer != nil {
			sum = obs.Summarize(tracer.Events())
		}
		anomalies := explain.DetectAnomalies(sum, rec.Events(), explain.AnomalyConfig{})
		for _, a := range anomalies {
			fmt.Fprintf(os.Stderr, "warning: %s: %s\n", a.Kind, a.Detail)
		}
		if reg != nil {
			explain.CountAnomalies(reg, anomalies)
		}
	}
	if *metaPath != "" {
		if err := writeMetricsJSON(*metaPath, reg); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote metrics dump to %s\n", *metaPath)
	}
	if expo != nil {
		expo.Block(os.Stderr, "run complete; still serving /metrics — interrupt to exit")
	}
}

// writeMetricsJSON dumps the registry snapshot as indented JSON.
func writeMetricsJSON(path string, reg *metrics.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return reg.WriteJSON(f)
}

// writeExplain serializes the decision log as schema-versioned JSONL.
func writeExplain(path string, rec *explain.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return rec.WriteJSONL(f)
}

// writeTrace serializes the trace; the extension picks the format.
func writeTrace(path string, t *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") {
		return t.WriteJSONL(f)
	}
	return t.WriteChrome(f)
}

// buildStrategy resolves the strategy from hints (when given) or the
// individual flags. An unknown -strategy is a usage error: exit 2 with
// the canonical allowed list.
func buildStrategy(hints, name string, calibrate, combine, twoLayer bool, msgind string, nah int,
	mem int64, nodes int, mcfg cluster.Config, fcfg pfs.Config, wl workload.Workload) iolib.Collective {
	if hints != "" {
		h, err := adio.ParseHints(hints)
		if err != nil {
			fatal(err)
		}
		s, err := h.BuildStrategy(mcfg, fcfg, wl.TotalBytes())
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "strategy from hints: %s\n", s.Name())
		return s
	}
	if !strategy.Valid(name) {
		fmt.Fprintf(os.Stderr, "mccio-sim: unknown strategy %q (want %s)\n", name, strategy.List())
		os.Exit(2)
	}
	switch name {
	case strategy.MCCIO:
		opts := core.DefaultOptions(mcfg, fcfg)
		if calibrate {
			rep, err := core.Calibrate(mcfg, fcfg)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "calibration:\n%s", rep.String())
			opts = rep.Result
		}
		opts.NodeCombine = combine
		opts.TwoLayer = twoLayer
		opts.Msggroup = wl.TotalBytes() / int64(max(nodes/2, 1))
		opts.Memmin = mem / 4
		if msgind != "" {
			v, err := parseSize(msgind)
			if err != nil {
				fatal(err)
			}
			opts.Msgind = v
		}
		if nah > 0 {
			opts.Nah = nah
		}
		fmt.Fprintf(os.Stderr, "mccio options: Msgind=%d Msggroup=%d Nah=%d Memmin=%d\n",
			opts.Msgind, opts.Msggroup, opts.Nah, opts.Memmin)
		return core.MCCIO{Opts: opts}
	case strategy.TwoPhase:
		return collio.TwoPhase{CBBuffer: mem}
	case strategy.TwoLayer:
		return twolayer.Strategy{CBBuffer: mem}
	default: // strategy.Independent
		return iolib.Naive{Opts: iolib.DefaultSieve()}
	}
}

// report prints the run summary.
func report(res trace.Result, wl workload.Workload, nodes, cores int, memStr string, sigmaMB int64, verify bool) {
	fmt.Printf("workload:        %s\n", wl.Name())
	fmt.Printf("platform:        %d nodes x %d cores, %s/node aggregation memory (sigma %dMB)\n",
		nodes, cores, memStr, sigmaMB)
	fmt.Printf("result:          %s\n", res.String())
	fmt.Printf("bandwidth:       %.1f MB/s\n", res.BandwidthMBps())
	fmt.Printf("rounds:          %d\n", res.Rounds)
	fmt.Printf("aggregators:     %d in %d groups (%d remerges)\n", res.Aggregators, res.Groups, res.Remerges)
	if res.Leaders > 0 {
		fmt.Printf("node leaders:    %d elected (two-layer exchange)\n", res.Leaders)
	}
	fmt.Printf("file I/O:        %.1f MB in %d requests\n", float64(res.BytesIO)/1e6, res.IORequests)
	fmt.Printf("shuffle traffic: %.1f MB intra-node, %.1f MB inter-node\n",
		float64(res.BytesShuffleIntra)/1e6, float64(res.BytesShuffleInter)/1e6)
	fmt.Printf("phase time:      %.3f s exchange, %.3f s file I/O (summed over aggregators)\n",
		res.ExchangeSeconds, res.IOSeconds)
	if st := res.AggBufferStats(); st.N > 0 {
		fmt.Printf("agg buffers:     mean %.2f MB, min %.2f, max %.2f (cv %.3f)\n",
			st.Mean/1e6, st.Min/1e6, st.Max/1e6, st.Std/maxf(st.Mean, 1))
	}
	if verify {
		fmt.Println("verification:    every byte checked OK")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mccio-sim: %v\n", err)
	os.Exit(1)
}
