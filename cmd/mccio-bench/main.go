// Command mccio-bench regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	mccio-bench -experiment all            # Table 1 + Figures 6,7,8 + ablations
//	mccio-bench -experiment fig7 -scale 0.25
//	mccio-bench -experiment fig8 -csv out.csv
//	mccio-bench -experiment profile -json profile.json
//	mccio-bench -experiment regression -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/explain"
	"repro/internal/metrics"
	"repro/internal/pland"
)

// stopProfiles finishes any -cpuprofile/-memprofile capture; every
// exit path must run it because os.Exit skips deferred calls.
var stopProfiles = func() {}

// exit terminates the process after flushing active profiles.
func exit(code int) {
	stopProfiles()
	os.Exit(code)
}

// startProfiles begins the -cpuprofile capture and arranges the
// -memprofile snapshot, returning an idempotent stop function.
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuF *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	var once sync.Once
	stop := func() {
		once.Do(func() {
			if cpuF != nil {
				pprof.StopCPUProfile()
				cpuF.Close()
				fmt.Fprintf(os.Stderr, "wrote %s\n", cpuPath)
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					fmt.Fprintf(os.Stderr, "mccio-bench: memprofile: %v\n", err)
					return
				}
				runtime.GC()
				if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
					fmt.Fprintf(os.Stderr, "mccio-bench: memprofile: %v\n", err)
				}
				f.Close()
				fmt.Fprintf(os.Stderr, "wrote %s\n", memPath)
			}
		})
	}
	return stop, nil
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "table1 | fig6 | fig7 | fig8 | ablation | memory | exascale | stripes | phases | strategies | regression | chaos | sweep | serve | profile | all")
		scale      = flag.Float64("scale", 1.0, "workload scale factor (1.0 = default experiment size)")
		seed       = flag.Uint64("seed", 42, "seed for memory variance and storage jitter")
		parallel   = flag.Int("parallel", 0, "concurrent simulation runs per experiment (0 = GOMAXPROCS, 1 = serial); results are byte-identical for every value")
		csvPath    = flag.String("csv", "", "also write results as CSV to this file")
		quiet      = flag.Bool("quiet", false, "suppress per-run progress lines")
		jsonPath   = flag.String("json", "", "write the regression trajectory (schema-versioned bench JSON) to this file; implies -experiment regression unless one is named; with -experiment profile, receives the profile report instead")
		serveAddr  = flag.String("serve", "", "serve Prometheus metrics on ADDR at /metrics during the runs and keep serving afterwards until interrupted")
		pprofOn    = flag.Bool("pprof", false, "with -serve, also mount live profiling handlers under /debug/pprof/")
		topN       = flag.Int("top", 15, "sites per table for -experiment profile")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProf    = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		explPath   = flag.String("explain", "", "with -experiment regression, record the planner decision audit to FILE as JSONL (render with mccio-report explain/memtl); byte-identical for every -parallel value")
		hostOn     = flag.Bool("host", false, "record host wall-clock and allocation columns (host_ns_op, host_allocs_op) per trajectory row; forces serial execution and is gated separately from the deterministic columns (mccio-report compare -host)")
		sitesPath  = flag.String("sites", "", "capture a CPU+allocation profile across the whole run and write the decoded top-site tables (machine-readable JSON, -top sites each) to this file; incompatible with -cpuprofile and -experiment profile")
	)
	flag.Parse()

	stop, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mccio-bench: %v\n", err)
		os.Exit(1)
	}
	stopProfiles = stop
	defer stopProfiles()

	opts := bench.Options{Scale: *scale, Seed: *seed, Parallel: *parallel, HostMetrics: *hostOn}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	var sites *bench.SiteCapture
	if *sitesPath != "" {
		// One CPU profiler per process: -sites owns it for the whole run,
		// so the raw-profile flag and the self-profiling experiment are
		// both out.
		if *cpuProf != "" || *experiment == "profile" {
			fmt.Fprintln(os.Stderr, "mccio-bench: -sites is incompatible with -cpuprofile and -experiment profile")
			exit(2)
		}
		var err error
		if sites, err = bench.StartSiteCapture(); err != nil {
			fmt.Fprintf(os.Stderr, "mccio-bench: %v\n", err)
			exit(1)
		}
	}
	if (*jsonPath != "" || *explPath != "") && *experiment == "all" {
		*experiment = "regression"
	}
	var rec *explain.Recorder
	if *explPath != "" {
		rec = explain.NewRecorder()
		opts.Explain = rec
	}

	reg := metrics.New()
	var expo *metrics.Exposition
	if *serveAddr != "" {
		var err error
		start := metrics.StartExposition
		if *pprofOn {
			start = metrics.StartExpositionPprof
		}
		expo, err = start(*serveAddr, reg, os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mccio-bench: %v\n", err)
			exit(1)
		}
	}

	var tables []*bench.Table
	runFig := func(name string, f func(bench.Options) (*bench.Table, []bench.SweepPoint, error)) {
		fmt.Fprintf(os.Stderr, "running %s (scale %.3g)...\n", name, *scale)
		t, _, err := f(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mccio-bench: %s: %v\n", name, err)
			exit(1)
		}
		tables = append(tables, t)
	}
	runT := func(name string, f func(bench.Options) (*bench.Table, error)) {
		fmt.Fprintf(os.Stderr, "running %s (scale %.3g)...\n", name, *scale)
		t, err := f(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mccio-bench: %s: %v\n", name, err)
			exit(1)
		}
		tables = append(tables, t)
	}

	want := func(name string) bool { return *experiment == name || *experiment == "all" }
	if want("table1") {
		tables = append(tables, bench.Table1())
	}
	if want("fig6") {
		runFig("fig6", bench.Fig6CollPerf)
	}
	if want("fig7") {
		runFig("fig7", bench.Fig7IOR120)
	}
	if want("fig8") {
		runFig("fig8", bench.Fig8IOR1080)
	}
	if want("ablation") {
		runT("ablation", bench.Ablation)
	}
	if want("memory") {
		runT("memory", bench.MemoryPressure)
	}
	if want("exascale") {
		runT("exascale", bench.Exascale)
	}
	if want("stripes") {
		runT("stripes", bench.Stripes)
	}
	if want("phases") {
		runT("phases", bench.PhaseBreakdown)
	}
	if *experiment == "chaos" {
		// Chaos needs the live registry so its fault/failover counters
		// land in /metrics alongside the table; it is not part of "all"
		// because its runs verify every byte and dominate the sweep time.
		fmt.Fprintf(os.Stderr, "running chaos (scale %.3g)...\n", *scale)
		t, err := bench.Chaos(opts, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mccio-bench: chaos: %v\n", err)
			exit(1)
		}
		tables = append(tables, t)
	}
	if *experiment == "strategies" {
		// The per-strategy comparison on the node-shared workload: the
		// rows CI's two-layer gates assert on. Fixed-seed and virtual-
		// time like the regression bench, so -json output is a golden.
		fmt.Fprintf(os.Stderr, "running strategies (scale %.3g)...\n", *scale)
		traj, err := bench.RunStrategies(opts, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mccio-bench: strategies: %v\n", err)
			exit(1)
		}
		tables = append(tables, bench.StrategiesTable(traj))
		if *jsonPath != "" {
			traj.Created = time.Now().UTC().Format(time.RFC3339)
			if err := bench.WriteBenchFile(*jsonPath, traj); err != nil {
				fmt.Fprintf(os.Stderr, "mccio-bench: %v\n", err)
				exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
		}
	}
	if *experiment == "regression" {
		fmt.Fprintf(os.Stderr, "running regression (scale %.3g)...\n", *scale)
		traj, err := bench.RunRegression(opts, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mccio-bench: regression: %v\n", err)
			exit(1)
		}
		tables = append(tables, trajectoryTable("Regression", traj))
		if rec != nil {
			f, err := os.Create(*explPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mccio-bench: %v\n", err)
				exit(1)
			}
			err = rec.WriteJSONL(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "mccio-bench: %v\n", err)
				exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %d decision events to %s\n", rec.Len(), *explPath)
		}
		if *jsonPath != "" {
			traj.Created = time.Now().UTC().Format(time.RFC3339)
			if err := bench.WriteBenchFile(*jsonPath, traj); err != nil {
				fmt.Fprintf(os.Stderr, "mccio-bench: %v\n", err)
				exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
		}
	}
	if *experiment == "serve" {
		// The plan-service benchmark: an in-process pland daemon under
		// Zipf load. Not part of "all" because its wall-clock numbers are
		// host-dependent and must not land in the regression baseline.
		fmt.Fprintf(os.Stderr, "running serve (seed %d)...\n", *seed)
		traj, t, err := pland.RunServeBench(opts, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mccio-bench: serve: %v\n", err)
			exit(1)
		}
		tables = append(tables, t)
		if *jsonPath != "" {
			traj.Created = time.Now().UTC().Format(time.RFC3339)
			if err := bench.WriteBenchFile(*jsonPath, traj); err != nil {
				fmt.Fprintf(os.Stderr, "mccio-bench: %v\n", err)
				exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
		}
	}
	if *experiment == "sweep" {
		// The sharded grid: 48 seed-varied rows fanned across -parallel
		// workers, with per-row seeds derived from (seed, row index) so
		// the trajectory is byte-identical at any worker count.
		fmt.Fprintf(os.Stderr, "running sweep (scale %.3g, parallel %d)...\n", *scale, *parallel)
		traj, err := bench.RunSweep(opts, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mccio-bench: sweep: %v\n", err)
			exit(1)
		}
		tables = append(tables, trajectoryTable("Sharded sweep", traj))
		if *jsonPath != "" {
			traj.Created = time.Now().UTC().Format(time.RFC3339)
			if err := bench.WriteBenchFile(*jsonPath, traj); err != nil {
				fmt.Fprintf(os.Stderr, "mccio-bench: %v\n", err)
				exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
		}
	}
	if *experiment == "profile" {
		// Continuous-profiling harness: the fixed-seed regression
		// workload runs under the CPU profiler, the allocation profile
		// is snapshotted, and both decode into top-site tables. Not part
		// of "all": it re-runs the workload for sampling time, and its
		// numbers are host-dependent. Incompatible with -cpuprofile
		// (only one CPU profiler can run).
		fmt.Fprintf(os.Stderr, "running profile (scale %.3g)...\n", *scale)
		rep, err := bench.RunProfile(opts, *topN)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mccio-bench: profile: %v\n", err)
			exit(1)
		}
		tables = append(tables, rep.Tables()...)
		if *jsonPath != "" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mccio-bench: %v\n", err)
				exit(1)
			}
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintf(os.Stderr, "mccio-bench: %v\n", err)
				exit(1)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
		}
	}
	if len(tables) == 0 {
		fmt.Fprintf(os.Stderr, "mccio-bench: unknown experiment %q\n", *experiment)
		exit(2)
	}
	if sites != nil {
		rep, err := sites.Stop(*topN)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mccio-bench: sites: %v\n", err)
			exit(1)
		}
		rep.Scale, rep.Seed, rep.Rounds = *scale, *seed, 1
		tables = append(tables, rep.Tables()...)
		f, err := os.Create(*sitesPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mccio-bench: %v\n", err)
			exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "mccio-bench: %v\n", err)
			exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", *sitesPath)
	}

	for _, t := range tables {
		t.WriteText(os.Stdout)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mccio-bench: %v\n", err)
			exit(1)
		}
		for _, t := range tables {
			t.WriteCSV(f)
			io.WriteString(f, "\n")
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
	if expo != nil {
		expo.Block(os.Stderr, "runs complete; still serving /metrics — interrupt to exit")
	}
}

// trajectoryTable renders a bench trajectory for stdout.
func trajectoryTable(name string, b *bench.BenchFile) *bench.Table {
	t := &bench.Table{
		Title:   fmt.Sprintf("%s bench (scale %.3g, seed %d)", name, b.Scale, b.Seed),
		Headers: []string{"experiment", "MB/s", "rounds", "aggs", "io MB", "shuffle MB"},
	}
	for _, r := range b.Experiments {
		t.AddRow(r.Key,
			fmt.Sprintf("%.1f", r.BandwidthMBps),
			fmt.Sprintf("%d", r.Rounds),
			fmt.Sprintf("%d", r.Aggregators),
			fmt.Sprintf("%.1f", float64(r.BytesIO)/1e6),
			fmt.Sprintf("%.1f", float64(r.ShuffleIntra+r.ShuffleInter)/1e6))
	}
	return t
}
