// Command mccio-bench regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	mccio-bench -experiment all            # Table 1 + Figures 6,7,8 + ablations
//	mccio-bench -experiment fig7 -scale 0.25
//	mccio-bench -experiment fig8 -csv out.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/metrics"
	"repro/internal/pland"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "table1 | fig6 | fig7 | fig8 | ablation | memory | exascale | stripes | phases | regression | chaos | sweep | serve | all")
		scale      = flag.Float64("scale", 1.0, "workload scale factor (1.0 = default experiment size)")
		seed       = flag.Uint64("seed", 42, "seed for memory variance and storage jitter")
		parallel   = flag.Int("parallel", 0, "concurrent simulation runs per experiment (0 = GOMAXPROCS, 1 = serial); results are byte-identical for every value")
		csvPath    = flag.String("csv", "", "also write results as CSV to this file")
		quiet      = flag.Bool("quiet", false, "suppress per-run progress lines")
		jsonPath   = flag.String("json", "", "write the regression trajectory (schema-versioned bench JSON) to this file; implies -experiment regression unless one is named")
		serveAddr  = flag.String("serve", "", "serve Prometheus metrics on ADDR at /metrics during the runs and keep serving afterwards until interrupted")
	)
	flag.Parse()

	opts := bench.Options{Scale: *scale, Seed: *seed, Parallel: *parallel}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	if *jsonPath != "" && *experiment == "all" {
		*experiment = "regression"
	}

	reg := metrics.New()
	var expo *metrics.Exposition
	if *serveAddr != "" {
		var err error
		expo, err = metrics.StartExposition(*serveAddr, reg, os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mccio-bench: %v\n", err)
			os.Exit(1)
		}
	}

	var tables []*bench.Table
	runFig := func(name string, f func(bench.Options) (*bench.Table, []bench.SweepPoint, error)) {
		fmt.Fprintf(os.Stderr, "running %s (scale %.3g)...\n", name, *scale)
		t, _, err := f(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mccio-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		tables = append(tables, t)
	}
	runT := func(name string, f func(bench.Options) (*bench.Table, error)) {
		fmt.Fprintf(os.Stderr, "running %s (scale %.3g)...\n", name, *scale)
		t, err := f(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mccio-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		tables = append(tables, t)
	}

	want := func(name string) bool { return *experiment == name || *experiment == "all" }
	if want("table1") {
		tables = append(tables, bench.Table1())
	}
	if want("fig6") {
		runFig("fig6", bench.Fig6CollPerf)
	}
	if want("fig7") {
		runFig("fig7", bench.Fig7IOR120)
	}
	if want("fig8") {
		runFig("fig8", bench.Fig8IOR1080)
	}
	if want("ablation") {
		runT("ablation", bench.Ablation)
	}
	if want("memory") {
		runT("memory", bench.MemoryPressure)
	}
	if want("exascale") {
		runT("exascale", bench.Exascale)
	}
	if want("stripes") {
		runT("stripes", bench.Stripes)
	}
	if want("phases") {
		runT("phases", bench.PhaseBreakdown)
	}
	if *experiment == "chaos" {
		// Chaos needs the live registry so its fault/failover counters
		// land in /metrics alongside the table; it is not part of "all"
		// because its runs verify every byte and dominate the sweep time.
		fmt.Fprintf(os.Stderr, "running chaos (scale %.3g)...\n", *scale)
		t, err := bench.Chaos(opts, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mccio-bench: chaos: %v\n", err)
			os.Exit(1)
		}
		tables = append(tables, t)
	}
	if *experiment == "regression" {
		fmt.Fprintf(os.Stderr, "running regression (scale %.3g)...\n", *scale)
		traj, err := bench.RunRegression(opts, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mccio-bench: regression: %v\n", err)
			os.Exit(1)
		}
		tables = append(tables, trajectoryTable("Regression", traj))
		if *jsonPath != "" {
			traj.Created = time.Now().UTC().Format(time.RFC3339)
			if err := bench.WriteBenchFile(*jsonPath, traj); err != nil {
				fmt.Fprintf(os.Stderr, "mccio-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
		}
	}
	if *experiment == "serve" {
		// The plan-service benchmark: an in-process pland daemon under
		// Zipf load. Not part of "all" because its wall-clock numbers are
		// host-dependent and must not land in the regression baseline.
		fmt.Fprintf(os.Stderr, "running serve (seed %d)...\n", *seed)
		traj, t, err := pland.RunServeBench(opts, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mccio-bench: serve: %v\n", err)
			os.Exit(1)
		}
		tables = append(tables, t)
		if *jsonPath != "" {
			traj.Created = time.Now().UTC().Format(time.RFC3339)
			if err := bench.WriteBenchFile(*jsonPath, traj); err != nil {
				fmt.Fprintf(os.Stderr, "mccio-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
		}
	}
	if *experiment == "sweep" {
		// The sharded grid: 48 seed-varied rows fanned across -parallel
		// workers, with per-row seeds derived from (seed, row index) so
		// the trajectory is byte-identical at any worker count.
		fmt.Fprintf(os.Stderr, "running sweep (scale %.3g, parallel %d)...\n", *scale, *parallel)
		traj, err := bench.RunSweep(opts, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mccio-bench: sweep: %v\n", err)
			os.Exit(1)
		}
		tables = append(tables, trajectoryTable("Sharded sweep", traj))
		if *jsonPath != "" {
			traj.Created = time.Now().UTC().Format(time.RFC3339)
			if err := bench.WriteBenchFile(*jsonPath, traj); err != nil {
				fmt.Fprintf(os.Stderr, "mccio-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
		}
	}
	if len(tables) == 0 {
		fmt.Fprintf(os.Stderr, "mccio-bench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}

	for _, t := range tables {
		t.WriteText(os.Stdout)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mccio-bench: %v\n", err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.WriteCSV(f)
			io.WriteString(f, "\n")
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
	if expo != nil {
		expo.Block(os.Stderr, "runs complete; still serving /metrics — interrupt to exit")
	}
}

// trajectoryTable renders a bench trajectory for stdout.
func trajectoryTable(name string, b *bench.BenchFile) *bench.Table {
	t := &bench.Table{
		Title:   fmt.Sprintf("%s bench (scale %.3g, seed %d)", name, b.Scale, b.Seed),
		Headers: []string{"experiment", "MB/s", "rounds", "aggs", "io MB", "shuffle MB"},
	}
	for _, r := range b.Experiments {
		t.AddRow(r.Key,
			fmt.Sprintf("%.1f", r.BandwidthMBps),
			fmt.Sprintf("%d", r.Rounds),
			fmt.Sprintf("%d", r.Aggregators),
			fmt.Sprintf("%.1f", float64(r.BytesIO)/1e6),
			fmt.Sprintf("%.1f", float64(r.ShuffleIntra+r.ShuffleInter)/1e6))
	}
	return t
}
