// Package top turns successive /metrics.json snapshots of a running
// mccio-pland daemon into the live dashboard cmd/mccio-top renders:
// request rate, status mix, cache hit rate, latency percentiles, shed
// and queue pressure. It works purely on decoded metrics.Snapshot
// values, so anything that can fetch the JSON exposition — a test, a
// script, the CLI — can drive it.
package top

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// Model is one dashboard frame: everything derived from the previous
// and current snapshots plus the seconds between them.
type Model struct {
	// ReqPerSec is the request rate over the sampling window (0 when
	// there is no previous snapshot).
	ReqPerSec float64
	// TotalRequests is the cumulative request count.
	TotalRequests float64
	// Codes is the cumulative per-status-code request count.
	Codes map[string]float64
	// HitRate is the cumulative plan-cache hit fraction
	// ((hits+coalesced)/lookups); Hits, Misses, Coalesced are the raw
	// counters behind it.
	HitRate   float64
	Hits      float64
	Misses    float64
	Coalesced float64
	// P50, P95, P99 are request-latency percentiles in seconds over
	// the sampling window when it saw requests, else over all time.
	P50 float64
	P95 float64
	P99 float64
	// Windowed reports whether the percentiles cover only the window.
	Windowed bool
	// Shed is the cumulative 429 count; CacheEntries, QueueDepth, and
	// ActiveJobs are the live gauges; PlannerRuns and Simulations the
	// cumulative work counters.
	Shed         float64
	CacheEntries float64
	QueueDepth   float64
	ActiveJobs   float64
	PlannerRuns  float64
	Simulations  float64
	// Cluster counters, all zero on a single-node daemon: Forwards are
	// requests this shard proxied to their owner, ForwardedIn requests
	// it served on a peer's behalf, ReplicaHits non-owned plans served
	// from the local copy, Fallbacks forwards that failed and computed
	// locally. PeersUp of Peers remote shards currently answer probes.
	Forwards    float64
	ForwardedIn float64
	ReplicaHits float64
	Fallbacks   float64
	Peers       float64
	PeersUp     float64
}

// sumSamples adds every sample value of one family.
func sumSamples(s *metrics.Snapshot, name string) float64 {
	var total float64
	for _, f := range s.Families {
		if f.Name != name {
			continue
		}
		for _, sm := range f.Samples {
			total += sm.Value
		}
	}
	return total
}

// sumByLabel folds every sample of one family into a map keyed by one
// label's value.
func sumByLabel(s *metrics.Snapshot, name, label string) map[string]float64 {
	out := make(map[string]float64)
	for _, f := range s.Families {
		if f.Name != name {
			continue
		}
		for _, sm := range f.Samples {
			out[sm.Labels[label]] += sm.Value
		}
	}
	return out
}

// mergedBuckets folds one histogram family's bucket series across all
// its label sets (e.g. both endpoints) into a single series.
func mergedBuckets(s *metrics.Snapshot, name string) []metrics.Bucket {
	var merged []metrics.Bucket
	for _, f := range s.Families {
		if f.Name != name {
			continue
		}
		for _, sm := range f.Samples {
			merged = metrics.SumBuckets(merged, sm.Buckets)
		}
	}
	return merged
}

// getOne returns the first sample value of a family (the unlabeled
// gauges and counters).
func getOne(s *metrics.Snapshot, name string) float64 {
	v, _ := s.Get(name, nil)
	return v
}

// Compute derives one dashboard frame. prev may be nil (first poll):
// rates are then zero and percentiles cover all time. dt is the
// seconds between the two snapshots.
func Compute(prev, cur *metrics.Snapshot, dt float64) Model {
	m := Model{
		TotalRequests: sumSamples(cur, "mccio_pland_requests_total"),
		Codes:         sumByLabel(cur, "mccio_pland_requests_total", "code"),
		Hits:          getOne(cur, "mccio_pland_cache_hits_total"),
		Misses:        getOne(cur, "mccio_pland_cache_misses_total"),
		Coalesced:     getOne(cur, "mccio_pland_cache_coalesced_total"),
		Shed:          getOne(cur, "mccio_pland_shed_total"),
		CacheEntries:  getOne(cur, "mccio_pland_cache_entries"),
		QueueDepth:    getOne(cur, "mccio_pland_queue_depth"),
		ActiveJobs:    getOne(cur, "mccio_pland_active_jobs"),
		PlannerRuns:   getOne(cur, "mccio_pland_planner_runs_total"),
		Simulations:   getOne(cur, "mccio_pland_simulations_total"),
		Forwards:      sumSamples(cur, "mccio_pland_forwards_total"),
		ForwardedIn:   getOne(cur, "mccio_pland_forwarded_in_total"),
		ReplicaHits:   getOne(cur, "mccio_pland_replica_hits_total"),
		Fallbacks:     getOne(cur, "mccio_pland_forward_fallbacks_total"),
	}
	for _, up := range sumByLabel(cur, "mccio_pland_peer_up", "peer") {
		m.Peers++
		m.PeersUp += up
	}
	if lookups := m.Hits + m.Misses + m.Coalesced; lookups > 0 {
		m.HitRate = (m.Hits + m.Coalesced) / lookups
	}

	buckets := mergedBuckets(cur, "mccio_pland_request_seconds")
	if prev != nil {
		if dt > 0 {
			m.ReqPerSec = (m.TotalRequests - sumSamples(prev, "mccio_pland_requests_total")) / dt
		}
		// Percentiles over just the window: subtract the previous
		// cumulative bucket counts. Falls back to all-time when the
		// window saw nothing.
		if prevB := mergedBuckets(prev, "mccio_pland_request_seconds"); len(prevB) == len(buckets) {
			delta := append([]metrics.Bucket(nil), buckets...)
			var seen int64
			for i := range delta {
				delta[i].Count -= prevB[i].Count
				seen += delta[i].Count
			}
			if seen > 0 {
				buckets = delta
				m.Windowed = true
			}
		}
	}
	m.P50 = metrics.QuantileBuckets(buckets, 0.50)
	m.P95 = metrics.QuantileBuckets(buckets, 0.95)
	m.P99 = metrics.QuantileBuckets(buckets, 0.99)
	return m
}

// Render writes the frame as a fixed-layout text panel.
func (m Model) Render(w io.Writer) {
	window := "all-time"
	if m.Windowed {
		window = "window"
	}
	codes := make([]string, 0, len(m.Codes))
	for code := range m.Codes {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	parts := make([]string, 0, len(codes))
	for _, code := range codes {
		parts = append(parts, fmt.Sprintf("%s=%.0f", code, m.Codes[code]))
	}
	fmt.Fprintf(w, "requests   %8.1f req/s   total %.0f   [%s]\n",
		m.ReqPerSec, m.TotalRequests, strings.Join(parts, " "))
	fmt.Fprintf(w, "latency    p50 %8.2fms  p95 %8.2fms  p99 %8.2fms  (%s)\n",
		m.P50*1e3, m.P95*1e3, m.P99*1e3, window)
	fmt.Fprintf(w, "cache      %5.1f%% hit rate   %.0f hits  %.0f coalesced  %.0f misses  %.0f entries\n",
		m.HitRate*100, m.Hits, m.Coalesced, m.Misses, m.CacheEntries)
	fmt.Fprintf(w, "work       %.0f planner runs   %.0f simulations   %.0f shed\n",
		m.PlannerRuns, m.Simulations, m.Shed)
	fmt.Fprintf(w, "pressure   queue %.0f   active %.0f\n", m.QueueDepth, m.ActiveJobs)
	if m.Peers > 0 || m.Forwards > 0 || m.ReplicaHits > 0 {
		fmt.Fprintf(w, "cluster    peers %.0f/%.0f up   %.0f fwd out  %.0f fwd in  %.0f replica hits  %.0f fallbacks\n",
			m.PeersUp, m.Peers, m.Forwards, m.ForwardedIn, m.ReplicaHits, m.Fallbacks)
	}
}

// RenderCluster writes one compact row per shard followed by the
// cluster-total panel. names and shards are parallel (one entry per
// polled daemon); total is the frame computed from the merged
// snapshots.
func RenderCluster(w io.Writer, names []string, shards []Model, total Model) {
	for i, sm := range shards {
		name := ""
		if i < len(names) {
			name = names[i]
		}
		fmt.Fprintf(w, "shard %-28s %8.1f req/s  %5.1f%% hit  %.0f planner  %.0f fwd out  %.0f fwd in  p99 %.2fms\n",
			name, sm.ReqPerSec, sm.HitRate*100, sm.PlannerRuns, sm.Forwards, sm.ForwardedIn, sm.P99*1e3)
	}
	fmt.Fprintf(w, "\ncluster total (%d shards)\n", len(shards))
	total.Render(w)
}
