package top

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// fakeDaemon builds a registry shaped like pland's and returns its
// snapshot after recording reqs requests per endpoint map entry.
func fakeDaemon(t *testing.T, planOK, sim429 int, lat []float64) *metrics.Snapshot {
	t.Helper()
	reg := metrics.New()
	reg.Counter("mccio_pland_requests_total", "h", "endpoint", "plan", "code", "200").Add(float64(planOK))
	if sim429 > 0 {
		reg.Counter("mccio_pland_requests_total", "h", "endpoint", "simulate", "code", "429").Add(float64(sim429))
	}
	reg.Counter("mccio_pland_cache_hits_total", "h").Add(6)
	reg.Counter("mccio_pland_cache_misses_total", "h").Add(3)
	reg.Counter("mccio_pland_cache_coalesced_total", "h").Add(1)
	reg.Counter("mccio_pland_shed_total", "h").Add(float64(sim429))
	reg.Counter("mccio_pland_planner_runs_total", "h").Add(3)
	reg.Counter("mccio_pland_simulations_total", "h").Add(2)
	reg.Gauge("mccio_pland_cache_entries", "h").Set(3)
	reg.Gauge("mccio_pland_queue_depth", "h").Set(1)
	reg.Gauge("mccio_pland_active_jobs", "h").Set(2)
	h := reg.Histogram("mccio_pland_request_seconds", "h",
		metrics.DefSecondsBuckets(), "endpoint", "plan")
	for _, v := range lat {
		h.Observe(v)
	}
	snap := reg.Snapshot()
	return &snap
}

func TestComputeFirstFrame(t *testing.T) {
	cur := fakeDaemon(t, 10, 2, []float64{0.001, 0.002, 0.004, 0.2})
	m := Compute(nil, cur, 0)
	if m.TotalRequests != 12 {
		t.Fatalf("TotalRequests %v, want 12", m.TotalRequests)
	}
	if m.ReqPerSec != 0 || m.Windowed {
		t.Fatalf("first frame must not report a rate or windowed percentiles: %+v", m)
	}
	if m.Codes["200"] != 10 || m.Codes["429"] != 2 {
		t.Fatalf("Codes %v", m.Codes)
	}
	if math.Abs(m.HitRate-0.7) > 1e-9 {
		t.Fatalf("HitRate %v, want 0.7", m.HitRate)
	}
	if m.Shed != 2 || m.CacheEntries != 3 || m.PlannerRuns != 3 || m.Simulations != 2 ||
		m.QueueDepth != 1 || m.ActiveJobs != 2 {
		t.Fatalf("gauges/counters wrong: %+v", m)
	}
	if m.P50 <= 0 || m.P99 < m.P95 || m.P95 < m.P50 {
		t.Fatalf("percentiles not ordered: p50=%v p95=%v p99=%v", m.P50, m.P95, m.P99)
	}
}

func TestComputeWindowedRate(t *testing.T) {
	prev := fakeDaemon(t, 10, 0, []float64{0.001, 0.001})
	cur := fakeDaemon(t, 30, 0, []float64{0.001, 0.001, 0.5, 0.5, 0.5, 0.5})
	m := Compute(prev, cur, 2.0)
	if m.ReqPerSec != 10 {
		t.Fatalf("ReqPerSec %v, want (30-10)/2 = 10", m.ReqPerSec)
	}
	if !m.Windowed {
		t.Fatal("window saw 4 observations; percentiles must be windowed")
	}
	// All four window observations are 0.5s, so every percentile lands
	// in the bucket containing 0.5 — far above the 1ms all-time floor.
	if m.P50 < 0.25 {
		t.Fatalf("windowed p50 %v still reflects all-time data", m.P50)
	}
}

func TestComputeEmptyWindowFallsBack(t *testing.T) {
	snap := fakeDaemon(t, 10, 0, []float64{0.001, 0.002})
	m := Compute(snap, snap, 2.0)
	if m.ReqPerSec != 0 {
		t.Fatalf("idle window ReqPerSec %v, want 0", m.ReqPerSec)
	}
	if m.Windowed {
		t.Fatal("empty window must fall back to all-time percentiles")
	}
	if m.P50 <= 0 {
		t.Fatalf("fallback p50 %v, want > 0", m.P50)
	}
}

func TestRender(t *testing.T) {
	cur := fakeDaemon(t, 10, 2, []float64{0.001, 0.002})
	var sb strings.Builder
	Compute(nil, cur, 0).Render(&sb)
	out := sb.String()
	for _, want := range []string{"req/s", "p95", "hit rate", "200=10", "429=2", "2 shed", "queue 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "cluster") {
		t.Fatalf("single-node frame must not render the cluster line:\n%s", out)
	}
}

// fakeShard extends the fake daemon with the cluster counter families.
func fakeShard(t *testing.T, peersUp, peersDown int) *metrics.Snapshot {
	t.Helper()
	reg := metrics.New()
	reg.Counter("mccio_pland_requests_total", "h", "endpoint", "plan", "code", "200").Add(20)
	reg.Counter("mccio_pland_cache_hits_total", "h").Add(8)
	reg.Counter("mccio_pland_cache_misses_total", "h").Add(2)
	reg.Counter("mccio_pland_forwards_total", "h", "outcome", "relayed").Add(5)
	reg.Counter("mccio_pland_forwarded_in_total", "h").Add(4)
	reg.Counter("mccio_pland_replica_hits_total", "h").Add(3)
	reg.Counter("mccio_pland_forward_fallbacks_total", "h").Add(1)
	for i := 0; i < peersUp; i++ {
		reg.Gauge("mccio_pland_peer_up", "h", "peer", fmt.Sprintf("up%d", i)).Set(1)
	}
	for i := 0; i < peersDown; i++ {
		reg.Gauge("mccio_pland_peer_up", "h", "peer", fmt.Sprintf("down%d", i)).Set(0)
	}
	snap := reg.Snapshot()
	return &snap
}

func TestComputeClusterCounters(t *testing.T) {
	m := Compute(nil, fakeShard(t, 1, 1), 0)
	if m.Forwards != 5 || m.ForwardedIn != 4 || m.ReplicaHits != 3 || m.Fallbacks != 1 {
		t.Fatalf("cluster counters wrong: %+v", m)
	}
	if m.Peers != 2 || m.PeersUp != 1 {
		t.Fatalf("peer health wrong: peers=%v up=%v", m.Peers, m.PeersUp)
	}
}

func TestRenderClusterLine(t *testing.T) {
	var sb strings.Builder
	Compute(nil, fakeShard(t, 2, 0), 0).Render(&sb)
	out := sb.String()
	for _, want := range []string{"cluster", "peers 2/2 up", "5 fwd out", "4 fwd in", "3 replica hits", "1 fallbacks"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderCluster(t *testing.T) {
	s1 := Compute(nil, fakeShard(t, 2, 0), 0)
	s2 := Compute(nil, fakeShard(t, 2, 0), 0)
	snap1, snap2 := fakeShard(t, 2, 0), fakeShard(t, 2, 0)
	merged := metrics.MergeSnapshots(*snap1, *snap2)
	total := Compute(nil, &merged, 0)
	if total.TotalRequests != 40 {
		t.Fatalf("merged TotalRequests %v, want 40", total.TotalRequests)
	}
	var sb strings.Builder
	RenderCluster(&sb, []string{"http://a:1", "http://b:2"}, []Model{s1, s2}, total)
	out := sb.String()
	for _, want := range []string{"shard http://a:1", "shard http://b:2", "cluster total (2 shards)", "total 40"} {
		if !strings.Contains(out, want) {
			t.Fatalf("cluster render missing %q:\n%s", want, out)
		}
	}
}
