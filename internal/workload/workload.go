// Package workload generates the file access patterns of the paper's
// benchmarks — coll_perf's 3-D block-distributed array and IOR's
// interleaved segmented pattern — plus a random-offset pattern and a
// checkpoint burst for the wider examples.
//
// A Workload answers, for each rank, the canonical segment list of its
// file view. Generators are pure and deterministic.
package workload

import (
	"fmt"

	"repro/internal/datatype"
	"repro/internal/stats"
)

// Workload yields per-rank file views.
type Workload interface {
	Name() string
	NumRanks() int
	// View returns rank's canonical access pattern.
	View(rank int) datatype.List
	// TotalBytes is the sum of all ranks' request volumes.
	TotalBytes() int64
}

// CollPerf3D reproduces ROMIO's coll_perf test: a Dims[0]×Dims[1]×Dims[2]
// array of Elem-byte elements stored row-major in one shared file, block
// decomposed over a Procs[0]×Procs[1]×Procs[2] process grid. Dimensions
// that do not divide evenly give the trailing block the remainder.
type CollPerf3D struct {
	Dims  [3]int64
	Procs [3]int64
	Elem  int64
}

// Name implements Workload.
func (w CollPerf3D) Name() string {
	return fmt.Sprintf("coll_perf %dx%dx%dx%dB over %dx%dx%d",
		w.Dims[0], w.Dims[1], w.Dims[2], w.Elem, w.Procs[0], w.Procs[1], w.Procs[2])
}

// NumRanks implements Workload.
func (w CollPerf3D) NumRanks() int { return int(w.Procs[0] * w.Procs[1] * w.Procs[2]) }

// block returns the [start, size] of dimension d owned by grid index i.
func (w CollPerf3D) block(d int, i int64) (start, size int64) {
	base := w.Dims[d] / w.Procs[d]
	start = i * base
	size = base
	if i == w.Procs[d]-1 {
		size = w.Dims[d] - start
	}
	return start, size
}

// View implements Workload. Rank order is x-major over the grid,
// matching MPI_Cart_create with default ordering.
func (w CollPerf3D) View(rank int) datatype.List {
	if rank < 0 || rank >= w.NumRanks() {
		panic(fmt.Sprintf("workload: rank %d out of %d", rank, w.NumRanks()))
	}
	r := int64(rank)
	ix := r / (w.Procs[1] * w.Procs[2])
	iy := r / w.Procs[2] % w.Procs[1]
	iz := r % w.Procs[2]
	sx, nx := w.block(0, ix)
	sy, ny := w.block(1, iy)
	sz, nz := w.block(2, iz)
	sub := datatype.Subarray3D{
		Global: w.Dims,
		Local:  [3]int64{nx, ny, nz},
		Start:  [3]int64{sx, sy, sz},
		Elem:   w.Elem,
	}
	return datatype.Normalize(sub.Segments(nil, 0))
}

// TotalBytes implements Workload.
func (w CollPerf3D) TotalBytes() int64 {
	return w.Dims[0] * w.Dims[1] * w.Dims[2] * w.Elem
}

// Grid3 factors n into a balanced 3-D grid (a×b×c = n with a ≥ b ≥ c as
// close as possible), the way coll_perf picks its process grid.
func Grid3(n int) [3]int64 {
	best := [3]int64{int64(n), 1, 1}
	bestScore := int64(1 << 62)
	for a := int64(1); a*a*a <= int64(n)*4; a++ {
		if int64(n)%a != 0 {
			continue
		}
		rest := int64(n) / a
		for b := a; b*b <= rest*2; b++ {
			if rest%b != 0 {
				continue
			}
			c := rest / b
			// Score: spread between largest and smallest factor.
			lo, hi := a, c
			if b < lo {
				lo = b
			}
			if b > hi {
				hi = b
			}
			if a > hi {
				hi = a
			}
			if c < lo {
				lo = c
			}
			if hi-lo < bestScore {
				bestScore = hi - lo
				best = [3]int64{c, b, a} // largest factor innermost-contiguous
			}
		}
	}
	return best
}

// IOR reproduces the IOR benchmark's segmented-interleaved pattern:
// the file is Segments repetitions of NumRanks blocks of BlockSize
// bytes; rank r owns block r of every segment. TransferSize records the
// benchmark's per-call granularity (the harness may split one logical
// test into TotalBytes/TransferSize collective calls); it does not
// change the view.
type IOR struct {
	Ranks        int
	BlockSize    int64
	Segments     int
	TransferSize int64
}

// Name implements Workload.
func (w IOR) Name() string {
	return fmt.Sprintf("IOR p=%d block=%d segs=%d xfer=%d", w.Ranks, w.BlockSize, w.Segments, w.TransferSize)
}

// NumRanks implements Workload.
func (w IOR) NumRanks() int { return w.Ranks }

// View implements Workload.
func (w IOR) View(rank int) datatype.List {
	if rank < 0 || rank >= w.Ranks {
		panic(fmt.Sprintf("workload: rank %d out of %d", rank, w.Ranks))
	}
	v := datatype.Vector{
		Count:    int64(w.Segments),
		BlockLen: w.BlockSize,
		Stride:   w.BlockSize * int64(w.Ranks),
	}
	return datatype.Normalize(v.Segments(nil, int64(rank)*w.BlockSize))
}

// TotalBytes implements Workload.
func (w IOR) TotalBytes() int64 {
	return int64(w.Ranks) * int64(w.Segments) * w.BlockSize
}

// Random scatters SegsPerRank requests of SegLen bytes uniformly over
// FileSize, disjoint across ranks (each rank draws from its own strided
// lane so requests never overlap). It models irregular scientific
// access, the "Or Random" half of IOR.
type Random struct {
	Ranks       int
	SegsPerRank int
	SegLen      int64
	FileSize    int64
	Seed        uint64
}

// Name implements Workload.
func (w Random) Name() string {
	return fmt.Sprintf("random p=%d segs=%d len=%d", w.Ranks, w.SegsPerRank, w.SegLen)
}

// NumRanks implements Workload.
func (w Random) NumRanks() int { return w.Ranks }

// View implements Workload.
func (w Random) View(rank int) datatype.List {
	if rank < 0 || rank >= w.Ranks {
		panic(fmt.Sprintf("workload: rank %d out of %d", rank, w.Ranks))
	}
	// Rank r draws slots from lane r of a round-robin slot grid, so
	// views are disjoint yet globally shuffled.
	slotLen := w.SegLen
	lanes := int64(w.Ranks)
	slots := w.FileSize / (slotLen * lanes)
	if slots < int64(w.SegsPerRank) {
		slots = int64(w.SegsPerRank)
	}
	rng := stats.NewRNG(w.Seed ^ uint64(rank)*0x9e3779b97f4a7c15)
	segs := make([]datatype.Segment, 0, w.SegsPerRank)
	seen := make(map[int64]bool, w.SegsPerRank)
	for len(segs) < w.SegsPerRank {
		slot := rng.Int63n(slots)
		if seen[slot] {
			continue
		}
		seen[slot] = true
		off := (slot*lanes + int64(rank)) * slotLen
		segs = append(segs, datatype.Segment{Off: off, Len: slotLen})
	}
	return datatype.Normalize(segs)
}

// TotalBytes implements Workload.
func (w Random) TotalBytes() int64 {
	return int64(w.Ranks) * int64(w.SegsPerRank) * w.SegLen
}

// Tile2D reproduces the MPI-Tile-IO pattern: a 2-D array of
// Rows×Cols elements stored row-major, divided into TilesX×TilesY
// tiles, one per rank; each rank's view is its tile's rows — a
// medium-grain noncontiguous pattern between coll_perf's tiny rows and
// IOR's large blocks.
type Tile2D struct {
	Rows, Cols     int64 // global array dimensions (elements)
	TilesX, TilesY int64 // tile grid: TilesX*TilesY ranks
	Elem           int64 // bytes per element
}

// Name implements Workload.
func (w Tile2D) Name() string {
	return fmt.Sprintf("tile2d %dx%dx%dB over %dx%d", w.Rows, w.Cols, w.Elem, w.TilesX, w.TilesY)
}

// NumRanks implements Workload.
func (w Tile2D) NumRanks() int { return int(w.TilesX * w.TilesY) }

// View implements Workload. Rank order is row-major over the tile grid.
func (w Tile2D) View(rank int) datatype.List {
	if rank < 0 || rank >= w.NumRanks() {
		panic(fmt.Sprintf("workload: rank %d out of %d", rank, w.NumRanks()))
	}
	tx := int64(rank) / w.TilesY // tile row index
	ty := int64(rank) % w.TilesY // tile column index
	rowsPer := w.Rows / w.TilesX
	colsPer := w.Cols / w.TilesY
	r0 := tx * rowsPer
	rn := rowsPer
	if tx == w.TilesX-1 {
		rn = w.Rows - r0
	}
	c0 := ty * colsPer
	cn := colsPer
	if ty == w.TilesY-1 {
		cn = w.Cols - c0
	}
	segs := make([]datatype.Segment, 0, rn)
	for r := int64(0); r < rn; r++ {
		segs = append(segs, datatype.Segment{
			Off: ((r0+r)*w.Cols + c0) * w.Elem,
			Len: cn * w.Elem,
		})
	}
	return datatype.Normalize(segs)
}

// TotalBytes implements Workload.
func (w Tile2D) TotalBytes() int64 { return w.Rows * w.Cols * w.Elem }

// Checkpoint is an N-rank defensive checkpoint: every rank dumps one
// contiguous region, rank-serial in the file, with sizes drawn from a
// lognormal distribution (some ranks carry far more state than others —
// the imbalance that makes aggregator memory placement matter).
type Checkpoint struct {
	Ranks     int
	MeanBytes int64
	Sigma     float64 // lognormal shape; 0 = uniform sizes
	Seed      uint64
	Align     int64 // offsets rounded up to this (0 = 1)
}

// Name implements Workload.
func (w Checkpoint) Name() string {
	return fmt.Sprintf("checkpoint p=%d mean=%d sigma=%.2f", w.Ranks, w.MeanBytes, w.Sigma)
}

// NumRanks implements Workload.
func (w Checkpoint) NumRanks() int { return w.Ranks }

// sizes returns every rank's chunk size (deterministic in Seed).
func (w Checkpoint) sizes() []int64 {
	rng := stats.NewRNG(w.Seed)
	out := make([]int64, w.Ranks)
	for i := range out {
		if w.Sigma <= 0 {
			out[i] = w.MeanBytes
			continue
		}
		v := int64(rng.LogNormal(0, w.Sigma) * float64(w.MeanBytes))
		if v < 1 {
			v = 1
		}
		out[i] = v
	}
	return out
}

// View implements Workload.
func (w Checkpoint) View(rank int) datatype.List {
	if rank < 0 || rank >= w.Ranks {
		panic(fmt.Sprintf("workload: rank %d out of %d", rank, w.Ranks))
	}
	align := w.Align
	if align <= 0 {
		align = 1
	}
	sizes := w.sizes()
	var off int64
	for r := 0; r < rank; r++ {
		off += (sizes[r] + align - 1) / align * align
	}
	return datatype.List{{Off: off, Len: sizes[rank]}}
}

// TotalBytes implements Workload.
func (w Checkpoint) TotalBytes() int64 {
	var sum int64
	for _, s := range w.sizes() {
		sum += s
	}
	return sum
}
