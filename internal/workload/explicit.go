package workload

import (
	"fmt"

	"repro/internal/datatype"
)

// Explicit is a workload given directly as per-rank segment lists —
// the form request layouts arrive in over the plan service's wire API,
// where a client submits its ranks' offset/length lists instead of
// naming a generator. Views[r] is rank r's file view; callers that
// need canonical views (sorted, non-overlapping, adjacent runs merged)
// should normalize with datatype.Normalize before constructing the
// workload, as the plan service does during request canonicalization.
type Explicit struct {
	// Label names the workload in reports; empty means "explicit".
	Label string
	// Views holds one segment list per rank.
	Views []datatype.List
}

// Name implements Workload.
func (w Explicit) Name() string {
	if w.Label != "" {
		return w.Label
	}
	return "explicit"
}

// NumRanks implements Workload.
func (w Explicit) NumRanks() int { return len(w.Views) }

// View implements Workload.
func (w Explicit) View(rank int) datatype.List {
	if rank < 0 || rank >= len(w.Views) {
		panic(fmt.Sprintf("workload: rank %d out of %d", rank, len(w.Views)))
	}
	return w.Views[rank]
}

// TotalBytes implements Workload.
func (w Explicit) TotalBytes() int64 {
	var sum int64
	for _, v := range w.Views {
		sum += v.TotalBytes()
	}
	return sum
}
