package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/datatype"
)

// checkPartition verifies the fundamental workload invariant: the
// ranks' views are pairwise disjoint and (for dense workloads) tile the
// file exactly.
func checkPartition(t *testing.T, w Workload, dense bool) {
	t.Helper()
	var all datatype.List
	var sum int64
	for r := 0; r < w.NumRanks(); r++ {
		v := w.View(r)
		if !v.IsCanonical() {
			t.Fatalf("rank %d view not canonical", r)
		}
		sum += v.TotalBytes()
		all = append(all, v...)
	}
	if sum != w.TotalBytes() {
		t.Fatalf("views carry %d bytes, TotalBytes()=%d", sum, w.TotalBytes())
	}
	merged := datatype.Normalize(all)
	if merged.TotalBytes() != sum {
		t.Fatalf("views overlap: union %d < sum %d", merged.TotalBytes(), sum)
	}
	if dense {
		if len(merged) != 1 {
			t.Fatalf("dense workload has %d coverage runs, want 1", len(merged))
		}
		lo, _ := merged.Extent()
		if lo != 0 {
			t.Fatalf("dense workload starts at %d", lo)
		}
	}
}

func TestCollPerfPartition(t *testing.T) {
	w := CollPerf3D{Dims: [3]int64{32, 24, 16}, Procs: [3]int64{2, 3, 4}, Elem: 4}
	if w.NumRanks() != 24 {
		t.Fatalf("ranks %d", w.NumRanks())
	}
	checkPartition(t, w, true)
}

func TestCollPerfUnevenDims(t *testing.T) {
	// 17 is prime: last block takes the remainder.
	w := CollPerf3D{Dims: [3]int64{17, 10, 9}, Procs: [3]int64{3, 2, 2}, Elem: 8}
	checkPartition(t, w, true)
}

func TestCollPerfSegmentsAreRows(t *testing.T) {
	w := CollPerf3D{Dims: [3]int64{4, 4, 8}, Procs: [3]int64{2, 2, 2}, Elem: 1}
	v := w.View(0) // block [0:2, 0:2, 0:4]
	// 2 planes × 2 rows of 4 bytes = 4 segments.
	if len(v) != 4 || v.TotalBytes() != 16 {
		t.Fatalf("view %v", v)
	}
	if v[0].Off != 0 || v[0].Len != 4 || v[1].Off != 8 {
		t.Fatalf("row layout wrong: %v", v)
	}
}

func TestGrid3(t *testing.T) {
	cases := []struct {
		n    int
		want int64 // product check only plus balance sanity
	}{{120, 120}, {1080, 1080}, {8, 8}, {7, 7}, {1, 1}, {64, 64}}
	for _, c := range cases {
		g := Grid3(c.n)
		if g[0]*g[1]*g[2] != c.want {
			t.Fatalf("Grid3(%d)=%v does not multiply out", c.n, g)
		}
	}
	// 120 should factor into something much better than 120×1×1.
	g := Grid3(120)
	if g[0] > 30 || g[1] > 30 || g[2] > 30 {
		t.Fatalf("Grid3(120)=%v is badly unbalanced", g)
	}
}

func TestIORInterleaving(t *testing.T) {
	w := IOR{Ranks: 4, BlockSize: 100, Segments: 3, TransferSize: 100}
	checkPartition(t, w, true)
	v := w.View(1)
	want := datatype.List{{Off: 100, Len: 100}, {Off: 500, Len: 100}, {Off: 900, Len: 100}}
	if !v.Equal(want) {
		t.Fatalf("view %v, want %v", v, want)
	}
}

func TestIORSingleSegmentIsContiguousPerRank(t *testing.T) {
	w := IOR{Ranks: 8, BlockSize: 1 << 20, Segments: 1}
	for r := 0; r < 8; r++ {
		if v := w.View(r); len(v) != 1 {
			t.Fatalf("rank %d view %v", r, v)
		}
	}
	checkPartition(t, w, true)
}

func TestRandomDisjointAndDeterministic(t *testing.T) {
	w := Random{Ranks: 6, SegsPerRank: 20, SegLen: 512, FileSize: 8 << 20, Seed: 3}
	checkPartition(t, w, false)
	a, b := w.View(2), w.View(2)
	if !a.Equal(b) {
		t.Fatal("random view not deterministic")
	}
	other := Random{Ranks: 6, SegsPerRank: 20, SegLen: 512, FileSize: 8 << 20, Seed: 4}.View(2)
	if a.Equal(other) {
		t.Fatal("different seeds gave identical views")
	}
}

func TestCheckpointSerialLayout(t *testing.T) {
	w := Checkpoint{Ranks: 5, MeanBytes: 1000, Sigma: 0, Seed: 1}
	checkPartition(t, w, true)
	for r := 0; r < 5; r++ {
		v := w.View(r)
		if len(v) != 1 || v[0].Off != int64(r)*1000 || v[0].Len != 1000 {
			t.Fatalf("rank %d view %v", r, v)
		}
	}
}

func TestCheckpointLognormalImbalance(t *testing.T) {
	w := Checkpoint{Ranks: 64, MeanBytes: 1 << 20, Sigma: 1.0, Seed: 9}
	checkPartition(t, w, false)
	sizes := w.sizes()
	min, max := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max < 4*min {
		t.Fatalf("sigma=1 produced nearly uniform sizes: min=%d max=%d", min, max)
	}
}

func TestCheckpointAlignment(t *testing.T) {
	w := Checkpoint{Ranks: 4, MeanBytes: 1000, Sigma: 0.5, Seed: 2, Align: 4096}
	for r := 0; r < 4; r++ {
		if off := w.View(r)[0].Off; off%4096 != 0 {
			t.Fatalf("rank %d offset %d not aligned", r, off)
		}
	}
}

func TestViewPanicsOutOfRange(t *testing.T) {
	ws := []Workload{
		CollPerf3D{Dims: [3]int64{4, 4, 4}, Procs: [3]int64{1, 1, 2}, Elem: 1},
		IOR{Ranks: 2, BlockSize: 10, Segments: 1},
		Random{Ranks: 2, SegsPerRank: 1, SegLen: 8, FileSize: 1 << 10},
		Checkpoint{Ranks: 2, MeanBytes: 10},
	}
	for _, w := range ws {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic for bad rank", w.Name())
				}
			}()
			w.View(w.NumRanks())
		}()
	}
}

func TestCollPerfPropertyGrids(t *testing.T) {
	f := func(px, py, pz uint8) bool {
		p := [3]int64{int64(px%3 + 1), int64(py%3 + 1), int64(pz%3 + 1)}
		w := CollPerf3D{
			Dims:  [3]int64{p[0] * 5, p[1] * 3, p[2] * 7},
			Procs: p,
			Elem:  4,
		}
		var all datatype.List
		var sum int64
		for r := 0; r < w.NumRanks(); r++ {
			v := w.View(r)
			sum += v.TotalBytes()
			all = append(all, v...)
		}
		merged := datatype.Normalize(all)
		return sum == w.TotalBytes() && merged.TotalBytes() == sum && len(merged) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTile2DPartition(t *testing.T) {
	w := Tile2D{Rows: 64, Cols: 48, TilesX: 4, TilesY: 3, Elem: 8}
	if w.NumRanks() != 12 {
		t.Fatalf("ranks %d", w.NumRanks())
	}
	checkPartition(t, w, true)
	// Rank 0's tile: rows 0..15, cols 0..15 -> 16 segments of 16*8 bytes.
	v := w.View(0)
	if len(v) != 16 || v[0].Len != 16*8 {
		t.Fatalf("rank 0 view: %d segs, first %v", len(v), v[0])
	}
}

func TestTile2DUnevenTiles(t *testing.T) {
	// 10 rows over 3 tile-rows: the last tile-row gets 4 rows.
	w := Tile2D{Rows: 10, Cols: 9, TilesX: 3, TilesY: 3, Elem: 4}
	checkPartition(t, w, true)
	last := w.View(w.NumRanks() - 1)
	if len(last) != 4 {
		t.Fatalf("last tile rows %d, want 4", len(last))
	}
}

func TestTile2DFullWidthTilesMergeRows(t *testing.T) {
	// TilesY=1: each tile spans full rows -> contiguous slab per rank.
	w := Tile2D{Rows: 12, Cols: 16, TilesX: 4, TilesY: 1, Elem: 2}
	for r := 0; r < 4; r++ {
		if v := w.View(r); len(v) != 1 {
			t.Fatalf("rank %d has %d segments, want 1 slab", r, len(v))
		}
	}
	checkPartition(t, w, true)
}
