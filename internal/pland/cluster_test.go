package pland

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/ring"
)

// testRing is an in-process plan-serving ring for tests.
type testRing struct {
	ids  []string
	urls map[string]string
	srvs map[string]*Server
	regs map[string]*metrics.Registry
	done map[string]chan error
}

// startRing boots n daemons that all know each other, with mutate
// applied to every config before New. All members are torn down with
// the test; stopping one early via stop() is fine.
func startRing(t *testing.T, n int, mutate func(id string, cfg *Config)) *testRing {
	t.Helper()
	r := &testRing{
		urls: make(map[string]string, n),
		srvs: make(map[string]*Server, n),
		regs: make(map[string]*metrics.Registry, n),
		done: make(map[string]chan error, n),
	}
	lns := make(map[string]net.Listener, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("s%d", i+1)
		r.ids = append(r.ids, id)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[id] = ln
		r.urls[id] = "http://" + ln.Addr().String()
	}
	for _, id := range r.ids {
		reg := metrics.New()
		cfg := Config{
			Listener: lns[id],
			ShardID:  id,
			Peers:    r.urls,
			Registry: reg,
		}
		if mutate != nil {
			mutate(id, &cfg)
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.srvs[id] = srv
		r.regs[id] = reg
		done := make(chan error, 1)
		r.done[id] = done
		go func(srv *Server) { done <- srv.Serve() }(srv)
	}
	t.Cleanup(func() {
		for _, id := range r.ids {
			r.stop(t, id)
		}
	})
	return r
}

// stop drains one member; repeated stops are no-ops. The deadline must
// exceed 5s: a connection a peer's transport dialed but never used is
// only reaped by graceful Shutdown once it is 5s old.
func (r *testRing) stop(t *testing.T, id string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := r.srvs[id].Shutdown(ctx); err != nil {
		t.Errorf("shutdown %s: %v", id, err)
	}
	select {
	case err := <-r.done[id]:
		if err != nil {
			t.Errorf("serve %s: %v", id, err)
		}
	case <-time.After(15 * time.Second):
		t.Errorf("serve %s did not exit", id)
	}
	// Re-arm so a second stop (the cleanup) selects the default.
	r.done[id] = closedErrChan()
}

func closedErrChan() chan error {
	ch := make(chan error, 1)
	ch <- nil
	return ch
}

// counter reads one counter's total from a shard's registry.
func (r *testRing) counter(t *testing.T, id, name string) float64 {
	t.Helper()
	snap := r.regs[id].Snapshot()
	total := 0.0
	for _, f := range snap.Families {
		if f.Name != name {
			continue
		}
		for _, sm := range f.Samples {
			total += sm.Value
		}
	}
	return total
}

// requestOwnedBy generates plan-request bodies with varying layouts
// until it finds one whose fingerprint the given shard owns (when
// wantOwner is true) or does not own (false). The daemons and this
// helper compute placement from the same pure ring, so the result is
// stable across processes.
func requestOwnedBy(t *testing.T, ids []string, shard string, wantOwner bool) []byte {
	t.Helper()
	rg := ring.New(ids, ring.DefaultVnodes)
	for k := 0; k < 64; k++ {
		block := int64(64<<10 + k*4096)
		req := testRequest([][]Extent{
			{{0, block}, {4 * block, block}},
			{{block, block}, {5 * block, block}},
		})
		key := fp(t, req)
		if (rg.Owner(key) == shard) == wantOwner {
			body, err := json.Marshal(req)
			if err != nil {
				t.Fatal(err)
			}
			return body
		}
	}
	t.Fatalf("no layout found with owner==%s %v in 64 tries", shard, wantOwner)
	return nil
}

func TestClusterForwardThenReplicate(t *testing.T) {
	r := startRing(t, 2, func(id string, cfg *Config) {
		cfg.HotThreshold = 1 // every forwarded key replicates immediately
	})
	// A body owned by s2, posted to s1: the wrong shard.
	body := requestOwnedBy(t, r.ids, "s2", true)

	resp, data := post(t, r.urls["s1"]+"/v1/plan", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first post: %d %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Cache"); got != "forward-miss" {
		t.Fatalf("first post X-Cache = %q, want forward-miss", got)
	}
	if got := resp.Header.Get(headerServedBy); got != "s2" {
		t.Fatalf("X-Served-By = %q, want s2", got)
	}

	// The bytes were replicated on the way back (hot threshold 1), so
	// the repeat on the wrong shard is a local replica-hit.
	resp2, data2 := post(t, r.urls["s1"]+"/v1/plan", body)
	if got := resp2.Header.Get("X-Cache"); got != "replica-hit" {
		t.Fatalf("second post X-Cache = %q, want replica-hit", got)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("replica-hit bytes differ from the owner's response")
	}

	// The owner computed the plan exactly once; the wrong shard never
	// ran the planner.
	if runs := r.counter(t, "s2", "mccio_pland_planner_runs_total"); runs != 1 {
		t.Fatalf("owner planner runs = %v, want 1", runs)
	}
	if runs := r.counter(t, "s1", "mccio_pland_planner_runs_total"); runs != 0 {
		t.Fatalf("non-owner planner runs = %v, want 0", runs)
	}
	if n := r.counter(t, "s2", "mccio_pland_forwarded_in_total"); n != 1 {
		t.Fatalf("owner forwarded-in = %v, want 1", n)
	}
	if n := r.counter(t, "s1", "mccio_pland_replica_fills_total"); n != 1 {
		t.Fatalf("replica fills = %v, want 1", n)
	}
}

func TestClusterForwardHitOnWarmOwner(t *testing.T) {
	r := startRing(t, 2, nil) // default threshold: nothing replicates this fast
	body := requestOwnedBy(t, r.ids, "s2", true)

	// Warm the owner directly, then hit it through the wrong shard.
	post(t, r.urls["s2"]+"/v1/plan", body)
	resp, _ := post(t, r.urls["s1"]+"/v1/plan", body)
	if got := resp.Header.Get("X-Cache"); got != "forward-hit" {
		t.Fatalf("X-Cache = %q, want forward-hit", got)
	}
}

func TestClusterRequestIDPropagatesAcrossHop(t *testing.T) {
	r := startRing(t, 2, nil)
	body := requestOwnedBy(t, r.ids, "s2", true)
	const rid = "feedfacefeedface"

	req, err := http.NewRequest(http.MethodPost, r.urls["s1"]+"/v1/plan", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != rid {
		t.Fatalf("response X-Request-ID = %q, want %q", got, rid)
	}

	// The same ID must appear in both daemons' flight recorders: once
	// for the client-facing hop, once for the internal one.
	for _, id := range r.ids {
		var buf bytes.Buffer
		if err := r.srvs[id].Flight().WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), rid) {
			t.Fatalf("shard %s flight recorder is missing request ID %s:\n%s", id, rid, buf.String())
		}
	}
}

func TestClusterLoopGuard(t *testing.T) {
	r := startRing(t, 2, nil)
	// Posted to s1 with a forged forwarded-by header, a body s2 owns
	// must still be served locally — one hop max, even when ring views
	// disagree.
	body := requestOwnedBy(t, r.ids, "s2", true)
	req, err := http.NewRequest(http.MethodPost, r.urls["s1"]+"/v1/plan", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(headerForwardedBy, "s2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("X-Cache = %q, want miss (served locally)", got)
	}
	if got := resp.Header.Get(headerServedBy); got != "" {
		t.Fatalf("X-Served-By = %q, want empty (no second hop)", got)
	}
	if runs := r.counter(t, "s1", "mccio_pland_planner_runs_total"); runs != 1 {
		t.Fatalf("s1 planner runs = %v, want 1 (local compute)", runs)
	}
	if runs := r.counter(t, "s2", "mccio_pland_planner_runs_total"); runs != 0 {
		t.Fatalf("s2 planner runs = %v, want 0", runs)
	}
}

func TestClusterDeadOwnerFallsBackToLocalCompute(t *testing.T) {
	r := startRing(t, 2, func(id string, cfg *Config) {
		// Slow probes: the test exercises the eager mark-down on a
		// failed forward, not the probe loop.
		cfg.ProbeInterval = time.Hour
	})
	body := requestOwnedBy(t, r.ids, "s2", true)
	r.stop(t, "s2")

	// The forward to the dead owner fails at transport level; the
	// client still gets a 200, computed locally.
	resp, data := post(t, r.urls["s1"]+"/v1/plan", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("X-Cache = %q, want miss (local fallback)", got)
	}
	if n := r.counter(t, "s1", "mccio_pland_forward_fallbacks_total"); n != 1 {
		t.Fatalf("fallbacks = %v, want 1", n)
	}

	// The failed forward marked the peer down, so the repeat routes to
	// self immediately and hits the local cache.
	resp2, _ := post(t, r.urls["s1"]+"/v1/plan", body)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second X-Cache = %q, want hit", got)
	}
	if n := r.counter(t, "s1", "mccio_pland_forward_fallbacks_total"); n != 1 {
		t.Fatalf("fallbacks after mark-down = %v, want still 1", n)
	}
}

func TestClusterHealthzAndRing(t *testing.T) {
	r := startRing(t, 3, nil)
	resp, err := http.Get(r.urls["s1"] + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if h.ShardID != "s1" || h.Peers != 2 || h.PeersUp != 2 {
		t.Fatalf("healthz = %+v, want shard s1 with 2/2 peers up", h)
	}

	resp, err = http.Get(r.urls["s1"] + "/debug/ring")
	if err != nil {
		t.Fatal(err)
	}
	var st RingStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.ShardID != "s1" || len(st.Members) != 3 {
		t.Fatalf("ring status = %+v", st)
	}
	shareSum := 0.0
	for _, m := range st.Members {
		if !m.Up {
			t.Fatalf("member %s down in a healthy ring", m.ID)
		}
		if m.Self != (m.ID == "s1") {
			t.Fatalf("self flag wrong on %s", m.ID)
		}
		shareSum += m.Share
	}
	if shareSum < 0.999 || shareSum > 1.001 {
		t.Fatalf("ownership shares sum to %v, want 1", shareSum)
	}
}

func TestRingEndpointOnSingleNode(t *testing.T) {
	srv := startServer(t, Config{})
	resp, err := http.Get("http://" + srv.Addr() + "/debug/ring")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("single-node /debug/ring status = %d, want 404", resp.StatusCode)
	}
}

func TestRunLoadClusterMode(t *testing.T) {
	r := startRing(t, 3, func(id string, cfg *Config) {
		cfg.HotThreshold = 2
	})
	urls := make([]string, 0, 3)
	for _, id := range r.ids {
		urls = append(urls, r.urls[id])
	}
	rep, err := RunLoad(LoadSpec{
		URLs:        urls,
		Requests:    120,
		Concurrency: 4,
		Keys:        12,
		ZipfS:       1.1,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("cluster load saw %d errors: %+v", rep.Errors, rep.StatusCounts)
	}
	if rep.Forwarded == 0 {
		t.Fatal("round-robin over 3 shards must forward some requests")
	}
	if len(rep.Shards) != 3 {
		t.Fatalf("shard reports = %d, want 3", len(rep.Shards))
	}
	total := 0
	for _, sr := range rep.Shards {
		total += sr.Requests
	}
	if total != rep.Requests {
		t.Fatalf("shard requests sum to %d, want %d", total, rep.Requests)
	}
	// Every fingerprint is planned at most once cluster-wide.
	runs := 0.0
	for _, id := range r.ids {
		runs += r.counter(t, id, "mccio_pland_planner_runs_total")
	}
	if int(runs) != 12 {
		t.Fatalf("aggregate planner runs = %v, want 12 (one per key)", runs)
	}
}

// TestClusterConcurrentForwardEvictionStress drives a tiny-cache ring
// from many goroutines so forwards, hot fills, evictions, and health
// probes all interleave — the -race CI pass is the assertion.
func TestClusterConcurrentForwardEvictionStress(t *testing.T) {
	r := startRing(t, 3, func(id string, cfg *Config) {
		cfg.CacheCapacity = 2 // constant eviction pressure
		cfg.HotThreshold = 1  // every forward fills
		cfg.ProbeInterval = 10 * time.Millisecond
	})
	const keys = 8
	bodies := make([][]byte, keys)
	for k := range bodies {
		block := int64(32<<10 + k*4096)
		req := testRequest([][]Extent{{{0, block}, {2 * block, block}}})
		var err error
		if bodies[k], err = json.Marshal(req); err != nil {
			t.Fatal(err)
		}
	}
	urls := make([]string, 0, 3)
	for _, id := range r.ids {
		urls = append(urls, r.urls[id])
	}
	client := &http.Client{Timeout: 30 * time.Second}
	defer client.CloseIdleConnections()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				url := urls[(g+i)%len(urls)] + "/v1/plan"
				resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[(g*7+i)%keys]))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestHotTrackerWindowSlide(t *testing.T) {
	t0 := time.Unix(1000, 0)
	h := newHotTracker(3, 10*time.Second)
	if h.Observe("k", t0) || h.Observe("k", t0.Add(time.Second)) {
		t.Fatal("two observations must stay below threshold 3")
	}
	if !h.Observe("k", t0.Add(2*time.Second)) {
		t.Fatal("third observation within the window must be hot")
	}
	if h.HotCount(t0.Add(3*time.Second)) != 1 {
		t.Fatal("one key should be hot")
	}
	// One window later the counts shift to the previous generation and
	// still contribute.
	if !h.Observe("k", t0.Add(11*time.Second)) {
		t.Fatal("prev-generation counts must keep the key hot")
	}
	// After two idle windows everything cools off.
	if h.Observe("k", t0.Add(40*time.Second)) {
		t.Fatal("key must cool off after two idle windows")
	}
	if h.HotCount(t0.Add(41*time.Second)) != 0 {
		t.Fatal("no keys should be hot after the reset")
	}

	// The disabled (nil) tracker never reports hot.
	var nilTracker *hotTracker
	if nilTracker.Observe("k", t0) || nilTracker.HotCount(t0) != 0 {
		t.Fatal("nil tracker must be inert")
	}
}
