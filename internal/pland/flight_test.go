package pland

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/logx"
)

// flightRec builds a distinct OK record; id doubles as the identity.
func flightRec(i int, durS float64) logx.Record {
	return logx.Record{
		ReqID:    fmt.Sprintf("req-%06d", i),
		Endpoint: "plan",
		Status:   200,
		DurS:     durS,
	}
}

func TestFlightRingEviction(t *testing.T) {
	f := NewFlightRecorder(16)
	for i := 0; i < 40; i++ {
		f.Record(flightRec(i, 0.001))
	}
	if f.Len() != 40 {
		t.Fatalf("Len %d, want 40", f.Len())
	}
	got := f.Dump()
	// Identical durations: the slow store holds early records, the ring
	// the last 16; the union must contain exactly the last 16 plus
	// whatever the slow store pinned, all in arrival order.
	seen := make(map[string]bool)
	for i := 1; i < len(got); i++ {
		if got[i-1].ReqID >= got[i].ReqID {
			t.Fatalf("dump out of order: %s before %s", got[i-1].ReqID, got[i].ReqID)
		}
	}
	for _, r := range got {
		if seen[r.ReqID] {
			t.Fatalf("duplicate %s in dump", r.ReqID)
		}
		seen[r.ReqID] = true
	}
	for i := 24; i < 40; i++ {
		if !seen[fmt.Sprintf("req-%06d", i)] {
			t.Fatalf("recent request %d evicted from a 16-slot ring after 40 inserts", i)
		}
	}
	if seen[fmt.Sprintf("req-%06d", 23)] && len(got) > 16+slowestRetained {
		t.Fatalf("dump kept more than ring+slowest: %d records", len(got))
	}
}

func TestFlightSlowestRetention(t *testing.T) {
	f := NewFlightRecorder(16)
	// One pathological outlier early, then enough fast traffic to wrap
	// the ring many times over.
	f.Record(flightRec(0, 9.5))
	for i := 1; i < 200; i++ {
		f.Record(flightRec(i, 0.0001))
	}
	var found bool
	for _, r := range f.Dump() {
		if r.ReqID == "req-000000" {
			found = true
		}
	}
	if !found {
		t.Fatal("slowest request evicted; flight recorder must retain the tail")
	}
	// The slow store itself stays bounded and holds the true top set.
	for i := 0; i < 50; i++ {
		f.Record(flightRec(1000+i, 100+float64(i)))
	}
	if len(f.slow) != slowestRetained {
		t.Fatalf("slow store holds %d, want %d", len(f.slow), slowestRetained)
	}
	if f.slow[0].rec.DurS != 100+42 {
		t.Fatalf("slowest floor %.1f, want 142", f.slow[0].rec.DurS)
	}
}

func TestFlightErrorRetention(t *testing.T) {
	f := NewFlightRecorder(16)
	bad := logx.Record{ReqID: "bad-1", Endpoint: "plan", Status: 422, DurS: 0.001,
		Error: "pland: planner failed"}
	f.Record(bad)
	for i := 0; i < 100; i++ {
		f.Record(flightRec(i+2, 0.001))
	}
	var found bool
	for _, r := range f.Dump() {
		if r.ReqID == "bad-1" && r.Error != "" {
			found = true
		}
	}
	if !found {
		t.Fatal("error record evicted; flight recorder must retain failures")
	}
}

func TestFlightWriteJSONLRoundTrip(t *testing.T) {
	f := NewFlightRecorder(16)
	for i := 0; i < 5; i++ {
		f.Record(flightRec(i, float64(i)*0.01))
	}
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := logx.ParseRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("%d records back, want 5", len(recs))
	}
	for i, r := range recs {
		if want := flightRec(i, float64(i)*0.01); r != want {
			t.Fatalf("record %d:\n got %+v\nwant %+v", i, r, want)
		}
	}
}

func TestFlightNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(flightRec(0, 1))
	if f.Len() != 0 || f.Dump() != nil {
		t.Fatal("nil recorder retained something")
	}
}
