package pland

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/bench"
	"repro/internal/metrics"
)

// RunServeBench is the "serve" benchmark experiment: it starts an
// in-process daemon on an ephemeral port, drives it with the Zipf load
// generator, and persists the serving-side result as a trajectory row;
// then it repeats the run against a three-shard in-process ring and
// persists one row per shard plus a cluster row. The wall-clock fields
// (throughput, percentiles) are host-dependent, so the rows are
// capacity records, not regression baselines; the cache counters in
// the attached metrics snapshot are what CI asserts on. The ring phase
// enforces the cluster's core invariant in-process: aggregate planner
// runs across the shards must equal the key count — every layout
// planned exactly once cluster-wide. reg receives the single-node
// daemon's metrics and the snapshot; nil creates a private registry.
func RunServeBench(o bench.Options, reg *metrics.Registry) (*bench.BenchFile, *bench.Table, error) {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if reg == nil {
		reg = metrics.New()
	}
	srv, err := New(Config{Registry: reg})
	if err != nil {
		return nil, nil, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	spec := LoadSpec{
		URL:         "http://" + srv.Addr(),
		Requests:    400,
		Concurrency: 8,
		Keys:        24,
		ZipfS:       1.1,
		SimEvery:    20,
		Seed:        o.Seed,
	}
	rep, loadErr := RunLoad(spec)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return nil, nil, fmt.Errorf("pland: shutdown: %w", err)
	}
	if err := <-serveErr; err != nil {
		return nil, nil, err
	}
	if loadErr != nil {
		return nil, nil, loadErr
	}
	if rep.Errors > 0 {
		return nil, nil, fmt.Errorf("pland: serve bench saw %d request errors", rep.Errors)
	}

	snap := reg.Snapshot()
	file := &bench.BenchFile{
		Schema: bench.BenchSchemaVersion,
		Scale:  o.Scale,
		Seed:   o.Seed,
		Experiments: []bench.BenchRow{{
			Key:           fmt.Sprintf("serve/plan keys=%d zipf=%.2f c=%d", spec.Keys, spec.ZipfS, spec.Concurrency),
			ThroughputRPS: rep.ThroughputRPS,
			LatP50Ms:      rep.P50Ms,
			LatP95Ms:      rep.P95Ms,
			LatP99Ms:      rep.P99Ms,
			HitRate:       rep.HitRate,
		}},
		Metrics: &snap,
	}
	t := &bench.Table{
		Title:   fmt.Sprintf("Plan service (%d requests, %d clients, %d keys, zipf %.2f)", spec.Requests, spec.Concurrency, spec.Keys, spec.ZipfS),
		Headers: []string{"metric", "value"},
	}
	t.AddRow("throughput", fmt.Sprintf("%.1f req/s", rep.ThroughputRPS))
	t.AddRow("latency p50/p95/p99", fmt.Sprintf("%.2f / %.2f / %.2f ms", rep.P50Ms, rep.P95Ms, rep.P99Ms))
	t.AddRow("cache hit rate", fmt.Sprintf("%.1f%% (%d hits, %d coalesced, %d misses)", rep.HitRate*100, rep.Hits, rep.Coalesced, rep.Misses))
	t.AddRow("simulations", fmt.Sprintf("%d", rep.Simulations))
	t.AddRow("shed", fmt.Sprintf("%d", rep.Shed))

	if _, err := runRingBench(o.Seed, spec.Keys, spec.ZipfS, file, t); err != nil {
		return nil, nil, err
	}
	return file, t, nil
}

// ringShards is the ring phase's shard count.
const ringShards = 3

// runRingBench drives a three-shard in-process cluster with the same
// Zipf workload and appends per-shard rows plus a cluster row to file
// and the human table. It fails if any request errored or if the
// shards' aggregate planner runs differ from the key count.
func runRingBench(seed uint64, keys int, zipfS float64, file *bench.BenchFile, t *bench.Table) (*LoadReport, error) {
	ids := [ringShards]string{"s1", "s2", "s3"}
	lns := make([]net.Listener, ringShards)
	peers := make(map[string]string, ringShards)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		peers[ids[i]] = "http://" + ln.Addr().String()
	}
	regs := make([]*metrics.Registry, ringShards)
	srvs := make([]*Server, ringShards)
	serveErrs := make([]chan error, ringShards)
	for i := range ids {
		regs[i] = metrics.New()
		srv, err := New(Config{
			Listener:     lns[i],
			ShardID:      ids[i],
			Peers:        peers,
			HotThreshold: 4,
			Registry:     regs[i],
		})
		if err != nil {
			return nil, err
		}
		srvs[i] = srv
		serveErrs[i] = make(chan error, 1)
		go func(i int) { serveErrs[i] <- srvs[i].Serve() }(i)
	}

	urls := make([]string, ringShards)
	for i, id := range ids {
		urls[i] = peers[id]
	}
	spec := LoadSpec{
		URLs:        urls,
		Requests:    400,
		Concurrency: 8,
		Keys:        keys,
		ZipfS:       zipfS,
		Seed:        seed,
	}
	rep, loadErr := RunLoad(spec)

	for i := range srvs {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := srvs[i].Shutdown(ctx)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("pland: ring shard %s shutdown: %w", ids[i], err)
		}
		if err := <-serveErrs[i]; err != nil {
			return nil, err
		}
	}
	if loadErr != nil {
		return nil, loadErr
	}
	if rep.Errors > 0 {
		return nil, fmt.Errorf("pland: ring bench saw %d request errors", rep.Errors)
	}

	snaps := make([]metrics.Snapshot, ringShards)
	for i, r := range regs {
		snaps[i] = r.Snapshot()
	}
	merged := metrics.MergeSnapshots(snaps...)
	runs, _ := merged.Get("mccio_pland_planner_runs_total", nil)
	if int(runs) != spec.Keys {
		return nil, fmt.Errorf("pland: ring planned %d times for %d keys; want exactly one planner run per key cluster-wide", int(runs), spec.Keys)
	}

	elapsed := rep.ElapsedS
	for i, sr := range rep.Shards {
		row := bench.BenchRow{
			Key:      fmt.Sprintf("serve/ring shard=%s", ids[i]),
			LatP50Ms: sr.P50Ms,
			LatP95Ms: sr.P95Ms,
			LatP99Ms: sr.P99Ms,
			HitRate:  sr.HitRate,
		}
		if elapsed > 0 {
			row.ThroughputRPS = float64(sr.Requests) / elapsed
		}
		file.Experiments = append(file.Experiments, row)
	}
	file.Experiments = append(file.Experiments, bench.BenchRow{
		Key:           fmt.Sprintf("serve/ring keys=%d zipf=%.2f shards=%d", spec.Keys, spec.ZipfS, ringShards),
		ThroughputRPS: rep.ThroughputRPS,
		LatP50Ms:      rep.P50Ms,
		LatP95Ms:      rep.P95Ms,
		LatP99Ms:      rep.P99Ms,
		HitRate:       rep.HitRate,
	})

	t.Notes = append(t.Notes, fmt.Sprintf(
		"ring: %d shards, %d requests — hit rate %.1f%% (%d replica, %d fwd-hit, %d fwd-miss), planner ran %d× for %d keys",
		ringShards, spec.Requests, rep.HitRate*100, rep.ReplicaHits, rep.ForwardHits, rep.ForwardMisses, int(runs), spec.Keys))
	return rep, nil
}
