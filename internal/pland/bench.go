package pland

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/metrics"
)

// RunServeBench is the "serve" benchmark experiment: it starts an
// in-process daemon on an ephemeral port, drives it with the Zipf load
// generator, and persists the serving-side result as a trajectory row.
// The wall-clock fields (throughput, percentiles) are host-dependent,
// so the row is a capacity record, not a regression baseline; the
// cache counters in the attached metrics snapshot are what CI asserts
// on. reg receives both the daemon's metrics and the snapshot; nil
// creates a private registry.
func RunServeBench(o bench.Options, reg *metrics.Registry) (*bench.BenchFile, *bench.Table, error) {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if reg == nil {
		reg = metrics.New()
	}
	srv, err := New(Config{Registry: reg})
	if err != nil {
		return nil, nil, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	spec := LoadSpec{
		URL:         "http://" + srv.Addr(),
		Requests:    400,
		Concurrency: 8,
		Keys:        24,
		ZipfS:       1.1,
		SimEvery:    20,
		Seed:        o.Seed,
	}
	rep, loadErr := RunLoad(spec)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return nil, nil, fmt.Errorf("pland: shutdown: %w", err)
	}
	if err := <-serveErr; err != nil {
		return nil, nil, err
	}
	if loadErr != nil {
		return nil, nil, loadErr
	}
	if rep.Errors > 0 {
		return nil, nil, fmt.Errorf("pland: serve bench saw %d request errors", rep.Errors)
	}

	snap := reg.Snapshot()
	file := &bench.BenchFile{
		Schema: bench.BenchSchemaVersion,
		Scale:  o.Scale,
		Seed:   o.Seed,
		Experiments: []bench.BenchRow{{
			Key:           fmt.Sprintf("serve/plan keys=%d zipf=%.2f c=%d", spec.Keys, spec.ZipfS, spec.Concurrency),
			ThroughputRPS: rep.ThroughputRPS,
			LatP50Ms:      rep.P50Ms,
			LatP95Ms:      rep.P95Ms,
			LatP99Ms:      rep.P99Ms,
			HitRate:       rep.HitRate,
		}},
		Metrics: &snap,
	}
	t := &bench.Table{
		Title:   fmt.Sprintf("Plan service (%d requests, %d clients, %d keys, zipf %.2f)", spec.Requests, spec.Concurrency, spec.Keys, spec.ZipfS),
		Headers: []string{"metric", "value"},
	}
	t.AddRow("throughput", fmt.Sprintf("%.1f req/s", rep.ThroughputRPS))
	t.AddRow("latency p50/p95/p99", fmt.Sprintf("%.2f / %.2f / %.2f ms", rep.P50Ms, rep.P95Ms, rep.P99Ms))
	t.AddRow("cache hit rate", fmt.Sprintf("%.1f%% (%d hits, %d coalesced, %d misses)", rep.HitRate*100, rep.Hits, rep.Coalesced, rep.Misses))
	t.AddRow("simulations", fmt.Sprintf("%d", rep.Simulations))
	t.AddRow("shed", fmt.Sprintf("%d", rep.Shed))
	return file, t, nil
}
