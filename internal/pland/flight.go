package pland

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"sync"

	"repro/internal/logx"
)

// slowestRetained is how many slowest-ever requests a FlightRecorder
// keeps beyond the recent ring — the outliers an operator is usually
// chasing when one request in ten thousand is slow.
const slowestRetained = 8

// flightEntry is one retained record with its admission sequence
// number, the dedup and ordering key across the three stores.
type flightEntry struct {
	seq uint64
	rec logx.Record
}

// FlightRecorder retains recent request records in memory so a loaded
// daemon can be triaged after the fact without restarting it or
// logging every request to disk. Three bounded stores:
//
//   - the last N requests (a ring),
//   - the slowestRetained slowest requests ever seen, and
//   - the last N/4 non-2xx requests,
//
// so the interesting records (the tail and the failures) survive even
// when the ring has long evicted them. Dump merges the stores,
// deduplicates, and returns records in arrival order — the payload of
// GET /debug/flight and of the SIGQUIT dump.
type FlightRecorder struct {
	mu  sync.Mutex
	seq uint64

	recent []flightEntry // ring, capacity = size
	next   int           // ring write cursor
	filled bool          // ring has wrapped at least once

	slow []flightEntry // ascending DurS, at most slowestRetained

	errs    []flightEntry // ring of non-2xx records
	errNext int
	errFull bool
}

// NewFlightRecorder builds a recorder retaining the last size requests
// (minimum 16).
func NewFlightRecorder(size int) *FlightRecorder {
	if size < 16 {
		size = 16
	}
	errSize := size / 4
	if errSize < 16 {
		errSize = 16
	}
	return &FlightRecorder{
		recent: make([]flightEntry, size),
		errs:   make([]flightEntry, errSize),
	}
}

// Record retains one request record.
func (f *FlightRecorder) Record(rec logx.Record) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	e := flightEntry{seq: f.seq, rec: rec}

	f.recent[f.next] = e
	f.next++
	if f.next == len(f.recent) {
		f.next = 0
		f.filled = true
	}

	// Slowest retention: keep the top slowestRetained by duration,
	// slice kept sorted ascending so the eviction candidate is [0].
	if len(f.slow) < slowestRetained || rec.DurS > f.slow[0].rec.DurS {
		i := sort.Search(len(f.slow), func(i int) bool { return f.slow[i].rec.DurS >= rec.DurS })
		f.slow = append(f.slow, flightEntry{})
		copy(f.slow[i+1:], f.slow[i:])
		f.slow[i] = e
		if len(f.slow) > slowestRetained {
			f.slow = f.slow[1:]
		}
	}

	if rec.Status < 200 || rec.Status > 299 {
		f.errs[f.errNext] = e
		f.errNext++
		if f.errNext == len(f.errs) {
			f.errNext = 0
			f.errFull = true
		}
	}
}

// Len returns how many requests have been recorded in total.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return int(f.seq)
}

// Dump returns the retained records — recent ring, slowest, and recent
// errors — deduplicated and in arrival order.
func (f *FlightRecorder) Dump() []logx.Record {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	var all []flightEntry
	appendRing := func(ring []flightEntry, next int, full bool) {
		if full {
			all = append(all, ring[next:]...)
			all = append(all, ring[:next]...)
		} else {
			all = append(all, ring[:next]...)
		}
	}
	appendRing(f.recent, f.next, f.filled)
	appendRing(f.errs, f.errNext, f.errFull)
	all = append(all, f.slow...)
	f.mu.Unlock()

	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	out := make([]logx.Record, 0, len(all))
	var last uint64
	for _, e := range all {
		if e.seq == last {
			continue
		}
		last = e.seq
		out = append(out, e.rec)
	}
	return out
}

// WriteJSONL dumps the retained records as one JSON object per line —
// the same schema the request log emits, so the same tooling reads
// both.
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range f.Dump() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}
