package pland

import (
	"container/list"
	"sync"

	"repro/internal/metrics"
)

// CacheStatus says how a Get was served.
type CacheStatus int

// Cache outcomes: a hit returns stored bytes, a miss computed them on
// the calling goroutine, a coalesced get waited for a concurrent miss
// of the same key (singleflight) and shares its result.
const (
	StatusHit CacheStatus = iota
	StatusMiss
	StatusCoalesced
)

// String returns the X-Cache header value for the status.
func (s CacheStatus) String() string {
	switch s {
	case StatusHit:
		return "hit"
	case StatusMiss:
		return "miss"
	case StatusCoalesced:
		return "coalesced"
	}
	return "unknown"
}

// flight is one in-progress computation; waiters block on done and
// then read val/err, which the leader writes before closing.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// cacheEntry is one stored plan keyed by fingerprint.
type cacheEntry struct {
	key string
	val []byte
}

// Cache is a fingerprint-keyed LRU of serialized plan responses with
// request coalescing: concurrent Gets of the same absent key collapse
// into one computation (singleflight), so a burst of identical
// requests costs one planner run, and a hit returns the exact bytes
// the original miss produced — byte-identical responses are the
// cache's correctness contract. Errors are never cached; every waiter
// of a failed flight receives the error and the next Get recomputes.
type Cache struct {
	capacity int

	mu       sync.Mutex
	ll       *list.List // *cacheEntry, front = most recent
	items    map[string]*list.Element
	inflight map[string]*flight

	hits, misses, coalesced, evictions *metrics.Counter
	entries, inflightG                 *metrics.Gauge
}

// NewCache builds a cache holding up to capacity plans (minimum 1).
// reg may be nil; the counters and gauges then disable themselves.
func NewCache(capacity int, reg *metrics.Registry) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
		hits: reg.Counter("mccio_pland_cache_hits_total",
			"Plan-cache lookups served from a stored entry."),
		misses: reg.Counter("mccio_pland_cache_misses_total",
			"Plan-cache lookups that ran the planner."),
		coalesced: reg.Counter("mccio_pland_cache_coalesced_total",
			"Plan-cache lookups that waited on a concurrent identical miss."),
		evictions: reg.Counter("mccio_pland_cache_evictions_total",
			"Plans evicted by the LRU capacity bound."),
		entries: reg.Gauge("mccio_pland_cache_entries",
			"Plans currently stored in the cache."),
		inflightG: reg.Gauge("mccio_pland_cache_inflight",
			"Planner computations currently in flight."),
	}
}

// Get returns the cached bytes for key, computing them with compute on
// a miss. Concurrent Gets of the same absent key run compute once; the
// rest wait and share the leader's result (StatusCoalesced). The
// returned slice is shared — callers must treat it as read-only.
func (c *Cache) Get(key string, compute func() ([]byte, error)) ([]byte, CacheStatus, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		c.hits.Inc()
		return el.Value.(*cacheEntry).val, StatusHit, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.coalesced.Inc()
		<-fl.done
		return fl.val, StatusCoalesced, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()
	c.inflightG.Add(1)
	c.misses.Inc()

	val, err := compute()
	fl.val, fl.err = val, err

	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
		for c.ll.Len() > c.capacity {
			back := c.ll.Back()
			c.ll.Remove(back)
			delete(c.items, back.Value.(*cacheEntry).key)
			c.evictions.Inc()
		}
		c.entries.Set(float64(len(c.items)))
	}
	c.mu.Unlock()
	c.inflightG.Add(-1)
	close(fl.done)
	return val, StatusMiss, err
}

// Lookup returns the bytes stored under key without computing on
// absence — the peer-replica read path. A present key counts as a hit
// and refreshes its LRU position; an absent key counts nothing (the
// caller will forward, not compute).
func (c *Cache) Lookup(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		c.hits.Inc()
		return el.Value.(*cacheEntry).val, true
	}
	c.mu.Unlock()
	return nil, false
}

// Put stores val under key unconditionally — the peer cache-fill path,
// where the owner shard already computed the bytes and this shard
// replicates them. Plans are a pure function of the fingerprint, so a
// racing Get flight for the same key produces identical bytes and the
// overwrite is harmless. The LRU capacity bound applies as in Get.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
	c.entries.Set(float64(len(c.items)))
}

// Len returns the number of stored plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}
