// Package pland is the plan-serving daemon: it turns the MCCIO
// planner (group division, partition tree, remerging, memory-aware
// aggregator placement) from a per-run library call into a cached,
// concurrent, observable network service.
//
// On a real extreme-scale machine the same (platform, memory vector,
// request layout) shape recurs across timesteps and across jobs, so
// the daemon keys each request by a canonical fingerprint — defaults
// filled, tunables resolved, per-rank layouts normalized — and serves
// repeats from a fingerprinted LRU cache. Concurrent identical misses
// collapse into one planner run (singleflight), and a cache hit
// returns the exact bytes the original miss produced.
//
// The endpoints:
//
//	POST /v1/plan       compute or cache-hit an aggregation plan
//	POST /v1/simulate   run the request through the collio engine
//	GET  /healthz       liveness JSON (503 while draining)
//	GET  /metrics       Prometheus text exposition
//	GET  /metrics.json  JSON snapshot of the same registry
//	GET  /debug/flight  flight-recorder dump (JSONL request records)
//	GET  /debug/explain decision-count summary of the latest planner run
//	GET  /debug/ring    cluster membership, health, and ownership shares
//	GET  /debug/pprof/  live profiles, when Config.Pprof is set
//
// With Config.Peers set (two or more members), the daemon is one shard
// of a plan-serving ring. A consistent-hash ring (internal/ring) keyed
// on the plan fingerprint assigns each plan an owner shard; a request
// that lands on the wrong shard is proxied to the owner in a single
// internal hop (X-Forwarded-By is the loop guard, and the client's
// X-Request-ID rides along so one ID joins the logs on both daemons).
// Fingerprints whose request rate crosses Config.HotThreshold are
// replicated: the owner's bytes are cached locally on the way back and
// later requests are replica-hits, so Zipf-head layouts stop
// bottlenecking one shard. Peer health probes (Config.ProbeInterval)
// route around dead shards — the next replica in ring order takes
// over, and if forwarding fails at transport level the daemon computes
// locally rather than failing the client.
//
// Every /v1/* response carries an X-Request-ID header — the client's,
// when it sent a well-formed one, else freshly minted — and the same
// ID appears in exactly one structured request-log record (Config.
// Logger), in the in-memory flight recorder, and on the request's
// trace span, so one grep joins all three views of a request.
//
// Admission control bounds the planner and simulator work: a
// sweep.Pool of workers with a bounded backlog executes plan misses
// and simulations, and when the backlog is full the daemon sheds the
// request with 429 + Retry-After instead of queueing without bound.
// Cache hits bypass admission, so known shapes stay served even under
// overload. SIGTERM (cmd/mccio-pland) drains gracefully: in-flight
// requests finish, new ones are refused, and the process exits 0.
package pland

import (
	"context"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/logx"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// Config sizes the daemon. The zero value serves on an ephemeral
// localhost port with defaults suitable for tests.
type Config struct {
	// Addr is the listen address; empty means "127.0.0.1:0".
	Addr string
	// Listener, when non-nil, is used instead of binding Addr. The
	// in-process ring bench and cluster tests bind every member's
	// listener first, so each daemon's Peers map can name the others'
	// real addresses before any of them is constructed.
	Listener net.Listener
	// CacheCapacity is the plan cache's entry bound; <= 0 means 1024.
	CacheCapacity int
	// Workers bounds concurrently executing planner/simulator jobs;
	// <= 0 means GOMAXPROCS.
	Workers int
	// Queue bounds the admission backlog beyond the in-flight jobs.
	// 0 means the default of 64; pass a negative value for no backlog
	// at all (admit only what a worker can start immediately).
	Queue int
	// Registry receives the daemon's metrics; nil creates one.
	Registry *metrics.Registry
	// Tracer, when non-nil, records one server-side span per request
	// (phases "serve.plan" and "serve.simulate") on a wall-clock
	// timeline, so mccio-report summarize can break server time down.
	// Each span carries the request's X-Request-ID, joining it to the
	// request log.
	Tracer *obs.Tracer
	// Logger, when non-nil, writes one JSONL record per request (the
	// -log flag). Nil disables request logging at zero cost.
	Logger *logx.Logger
	// FlightSize bounds the flight recorder's recent-request ring;
	// <= 0 means 256. The recorder is always on — it is the post-
	// incident dump behind GET /debug/flight and SIGQUIT.
	FlightSize int
	// Pprof, when true, mounts the net/http/pprof handlers on the
	// daemon's own mux under /debug/pprof/ for live profiling.
	Pprof bool
	// ShardID names this daemon on the plan-serving ring (and in its
	// request logs and /healthz). Required when Peers has two or more
	// entries; optional (a label only) on a single node.
	ShardID string
	// Peers maps shard ID -> base URL ("http://host:port") for every
	// ring member, including this daemon under ShardID. Two or more
	// entries enable cluster mode: consistent-hash ownership of plan
	// fingerprints, peer forwarding, and hot-key replication.
	Peers map[string]string
	// Vnodes is the per-member virtual-node count on the placement
	// ring; <= 0 means ring.DefaultVnodes.
	Vnodes int
	// HotThreshold is the request count within HotWindow at which a
	// non-owned fingerprint turns hot and its bytes are replicated
	// into the local cache on the way back from the owner; <= 0 means
	// 8.
	HotThreshold int
	// HotWindow is the hot-key tracking window; <= 0 means 10s.
	HotWindow time.Duration
	// ProbeInterval is the peer health-probe period; <= 0 means 500ms.
	ProbeInterval time.Duration
}

// Server-side trace phases: one span per request, stamped with
// wall-clock seconds since the daemon started.
const (
	PhaseServePlan     obs.Phase = "serve.plan"
	PhaseServeSimulate obs.Phase = "serve.simulate"
)

// Server is a running plan-serving daemon.
type Server struct {
	cfg     Config
	reg     *metrics.Registry
	tracer  *obs.Tracer
	logger  *logx.Logger
	flight  *FlightRecorder
	cache   *Cache
	pool    *sweep.Pool
	clu     *clusterState // nil on a single-node daemon
	ln      net.Listener
	http    *http.Server
	started time.Time

	drainOnce sync.Once
	draining  chan struct{} // closed when Shutdown begins

	explainMu   sync.Mutex
	lastExplain *ExplainState // most recent planner run's decision summary

	requests  func(endpoint, code string) *metrics.Counter
	latency   func(endpoint string) *metrics.Histogram
	shed      *metrics.Counter
	planRuns  *metrics.Counter
	simRuns   *metrics.Counter
	queueGa   *metrics.Gauge
	activeGa  *metrics.Gauge
	testHooks struct {
		// planStarted, when non-nil, is invoked at the start of every
		// admitted planner job — tests use it to hold a worker busy.
		planStarted func()
	}
}

// New binds the listen address and builds the daemon; call Serve to
// start answering. The returned server's Addr reports the actual
// address, so Addr ":0" works for tests and in-process benches.
func New(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.CacheCapacity <= 0 {
		cfg.CacheCapacity = 1024
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Queue == 0 {
		cfg.Queue = 64
	}
	if cfg.FlightSize <= 0 {
		cfg.FlightSize = 256
	}
	if cfg.HotThreshold <= 0 {
		cfg.HotThreshold = 8
	}
	if cfg.HotWindow <= 0 {
		cfg.HotWindow = 10 * time.Second
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.New()
	}
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		tracer:   cfg.Tracer,
		logger:   cfg.Logger,
		flight:   NewFlightRecorder(cfg.FlightSize),
		cache:    NewCache(cfg.CacheCapacity, reg),
		pool:     sweep.NewPool(cfg.Workers, cfg.Queue),
		draining: make(chan struct{}),
		started:  time.Now(),
		shed: reg.Counter("mccio_pland_shed_total",
			"Requests shed with 429 because the admission backlog was full."),
		planRuns: reg.Counter("mccio_pland_planner_runs_total",
			"Planner executions (cache misses that ran to completion)."),
		simRuns: reg.Counter("mccio_pland_simulations_total",
			"Simulations executed by /v1/simulate."),
		queueGa: reg.Gauge("mccio_pland_queue_depth",
			"Admitted jobs waiting for a worker, sampled per request."),
		activeGa: reg.Gauge("mccio_pland_active_jobs",
			"Jobs currently executing, sampled per request."),
	}
	s.requests = func(endpoint, code string) *metrics.Counter {
		return reg.Counter("mccio_pland_requests_total",
			"Requests served, by endpoint and status code.",
			"endpoint", endpoint, "code", code)
	}
	s.latency = func(endpoint string) *metrics.Histogram {
		return reg.Histogram("mccio_pland_request_seconds",
			"Wall-clock request latency by endpoint.",
			metrics.DefSecondsBuckets(), "endpoint", endpoint)
	}
	if s.tracer != nil {
		start := time.Now()
		s.tracer.SetClock(func() float64 { return time.Since(start).Seconds() })
	}
	if len(cfg.Peers) > 1 {
		clu, err := newClusterState(cfg.ShardID, cfg.Peers, cfg.Vnodes,
			newHotTracker(cfg.HotThreshold, cfg.HotWindow), cfg.ProbeInterval, reg)
		if err != nil {
			return nil, err
		}
		s.clu = clu
	}

	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, err
		}
	}
	s.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/plan", s.handlePlan)
	mux.HandleFunc("/v1/simulate", s.handleSimulate)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.Handle("/metrics", metrics.Handler(reg))
	mux.Handle("/metrics.json", metrics.JSONHandler(reg))
	mux.HandleFunc("/debug/flight", s.handleFlight)
	mux.HandleFunc("/debug/explain", s.handleExplain)
	mux.HandleFunc("/debug/ring", s.handleRing)
	if cfg.Pprof {
		metrics.AttachPprof(mux)
	}
	s.http = metrics.NewServer(mux)
	if s.clu != nil {
		s.clu.startProbes()
	}
	return s, nil
}

// Flight returns the daemon's flight recorder — the SIGQUIT handler in
// cmd/mccio-pland dumps it.
func (s *Server) Flight() *FlightRecorder { return s.flight }

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Registry returns the daemon's metrics registry.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Serve answers requests until Shutdown; it returns nil after a clean
// shutdown.
func (s *Server) Serve() error {
	err := s.http.Serve(s.ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown drains the daemon: /healthz flips to 503, the listener
// stops accepting, in-flight requests (and the pool jobs they wait on)
// finish, and admission closes. It returns nil when everything
// completed before ctx expired.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainOnce.Do(func() {
		close(s.draining)
		if s.clu != nil {
			s.clu.stopProbes()
		}
	})
	if err := s.http.Shutdown(ctx); err != nil {
		return err
	}
	return s.pool.Drain(ctx)
}

// isDraining reports whether Shutdown has begun.
func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}
