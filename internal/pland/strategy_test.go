package pland

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/pfs"
	"repro/internal/strategy"
)

// TestFingerprintStrategySeparation is the cache-isolation property:
// requests differing only in the strategy field must never share a
// fingerprint (and therefore never share a cache slot), across every
// strategy and across many layouts.
func TestFingerprintStrategySeparation(t *testing.T) {
	for i := 0; i < 50; i++ {
		off := int64(i) * 4096
		ln := int64(64<<10 + i*512)
		base := testRequest([][]Extent{{{off, ln}}, {{off + 1<<24, ln}}})
		seen := make(map[string]string, len(strategy.Names()))
		for _, s := range strategy.Names() {
			r := base
			r.Strategy = s
			key := fp(t, r)
			if prev, dup := seen[key]; dup {
				t.Fatalf("layout %d: strategies %q and %q share fingerprint %s", i, prev, s, key)
			}
			seen[key] = s
		}
	}
}

// TestFingerprintStrategyDefaultSpelling checks the other half of the
// contract: an empty strategy and an explicit "mccio" are the same
// request and must share a slot.
func TestFingerprintStrategyDefaultSpelling(t *testing.T) {
	base := testRequest([][]Extent{{{0, 1 << 20}}})
	explicit := base
	explicit.Strategy = strategy.MCCIO
	if fp(t, base) != fp(t, explicit) {
		t.Fatal("spelling out the default strategy changed the fingerprint")
	}
}

// TestFingerprintTwoLayerOption checks that composing the two-layer
// exchange into mccio via Options.TwoLayer keys its own cache slot.
func TestFingerprintTwoLayerOption(t *testing.T) {
	base := testRequest([][]Extent{{{0, 1 << 20}}})
	if err := base.Cluster.Validate(); err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions(base.Cluster, base.FS)
	plain, composed := base, base
	plain.Options = &opts
	tl := opts
	tl.TwoLayer = true
	composed.Options = &tl
	if fp(t, plain) == fp(t, composed) {
		t.Fatal("Options.TwoLayer did not change the fingerprint")
	}
}

// TestCanonicalizeRejectsUnknownStrategy checks validation happens
// before any planning work, with the allowed list in the message.
func TestCanonicalizeRejectsUnknownStrategy(t *testing.T) {
	r := testRequest([][]Extent{{{0, 4096}}})
	r.Strategy = "three-phase"
	if _, err := r.canonicalize(); err == nil {
		t.Fatal("unknown strategy canonicalized")
	} else if !strings.Contains(err.Error(), strategy.List()) {
		t.Fatalf("error %q does not list the allowed strategies", err)
	}
}

// multiRankRequest builds a plan request whose cluster hosts several
// ranks per node, so the two-layer election has mates to choose from:
// 2 nodes x 2 ranks.
func multiRankRequest() PlanRequest {
	mc := cluster.TestbedConfig(2)
	mc.MemPerNode = 16 * cluster.MiB
	mc.CoresPerNode = 2
	ranks := make([][]Extent, 4)
	for r := range ranks {
		ranks[r] = []Extent{{int64(r) << 20, 1 << 20}}
	}
	return PlanRequest{Cluster: mc, FS: pfs.DefaultConfig(), Ranks: ranks}
}

// TestPlanStrategies drives /v1/plan across the plannable strategies
// and checks the strategy-specific response shape: mccio plans carry
// groups, two-layer plans carry one elected leader per occupied node,
// and the unplannable "independent" is refused with the allowed list.
func TestPlanStrategies(t *testing.T) {
	srv := startServer(t, Config{})
	url := "http://" + srv.Addr() + "/v1/plan"

	planFor := func(s string) PlanResponse {
		t.Helper()
		req := multiRankRequest()
		req.Strategy = s
		body, _ := json.Marshal(req)
		resp, data := post(t, url, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s plan: %d %s", s, resp.StatusCode, data)
		}
		var pr PlanResponse
		if err := json.Unmarshal(data, &pr); err != nil {
			t.Fatal(err)
		}
		if pr.Strategy != s {
			t.Fatalf("echoed strategy %q, want %q", pr.Strategy, s)
		}
		return pr
	}

	two := planFor(strategy.TwoLayer)
	if len(two.Leaders) != 2 {
		t.Fatalf("two-layer leaders = %d, want one per occupied node (2): %+v", len(two.Leaders), two.Leaders)
	}
	nodes := map[int]bool{}
	for _, l := range two.Leaders {
		if nodes[l.Node] {
			t.Fatalf("node %d elected two leaders", l.Node)
		}
		nodes[l.Node] = true
		if l.RunnersUp != 1 {
			t.Fatalf("leader %+v: runners_up = %d, want 1 on a 2-rank node", l, l.RunnersUp)
		}
	}
	if len(two.Groups) != 1 || two.Ranks != 4 {
		t.Fatalf("implausible two-layer plan: %+v", two)
	}

	flat := planFor(strategy.TwoPhase)
	if len(flat.Leaders) != 0 {
		t.Fatalf("two-phase plan reports leaders: %+v", flat.Leaders)
	}

	mcc := planFor(strategy.MCCIO)
	if len(mcc.Groups) == 0 || mcc.Aggregators == 0 {
		t.Fatalf("implausible mccio plan: %+v", mcc)
	}

	fps := map[string]string{two.Fingerprint: "two-layer", flat.Fingerprint: "two-phase"}
	if prev, dup := fps[mcc.Fingerprint]; dup {
		t.Fatalf("mccio shares a fingerprint with %s", prev)
	}

	// Independent I/O has no collective plan to serve.
	req := multiRankRequest()
	req.Strategy = strategy.Independent
	body, _ := json.Marshal(req)
	resp, data := post(t, url, body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("independent plan: %d, want 400", resp.StatusCode)
	}
	var er struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &er); err != nil || !strings.Contains(er.Error, strategy.PlannedList()) {
		t.Fatalf("error body %s does not list the plannable strategies", data)
	}

	// Unknown strategies are refused on both endpoints.
	req.Strategy = "bogus"
	body, _ = json.Marshal(req)
	if resp, _ := post(t, url, body); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown strategy plan: %d, want 400", resp.StatusCode)
	}
}

// TestSimulateStrategies drives /v1/simulate across all four
// strategies: every one runs, echoes its name, and reports plausible
// bandwidth; the two-layer run reports elected leaders.
func TestSimulateStrategies(t *testing.T) {
	srv := startServer(t, Config{})
	url := "http://" + srv.Addr() + "/v1/simulate"

	for _, s := range strategy.Names() {
		req := SimRequest{PlanRequest: multiRankRequest(), Op: "write"}
		req.Strategy = s
		body, _ := json.Marshal(req)
		resp, data := post(t, url, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s simulate: %d %s", s, resp.StatusCode, data)
		}
		var sr SimResponse
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Strategy != s {
			t.Fatalf("echoed strategy %q, want %q", sr.Strategy, s)
		}
		if sr.BandwidthMBps <= 0 || sr.Bytes != 4<<20 {
			t.Fatalf("%s: implausible simulation: %+v", s, sr)
		}
	}

	req := SimRequest{PlanRequest: multiRankRequest(), Op: "read"}
	req.Strategy = "bogus"
	body, _ := json.Marshal(req)
	if resp, _ := post(t, url, body); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown strategy simulate: %d, want 400", resp.StatusCode)
	}
}
