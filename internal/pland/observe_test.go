package pland

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"repro/internal/logx"
	"repro/internal/obs"
)

// syncBuffer is a goroutine-safe log sink: slog handlers serialize
// writes, but the test reads while the server may still be writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf []byte
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = append(b.buf, p...)
	return len(p), nil
}

func (b *syncBuffer) records(t *testing.T) []logx.Record {
	t.Helper()
	b.mu.Lock()
	data := append([]byte(nil), b.buf...)
	b.mu.Unlock()
	recs, err := logx.ParseRecords(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("parse request log: %v", err)
	}
	return recs
}

func TestRequestIDGeneratedAndPropagated(t *testing.T) {
	srv := startServer(t, Config{})
	url := "http://" + srv.Addr() + "/v1/plan"
	body, _ := json.Marshal(testRequest([][]Extent{{{0, 1 << 20}}}))

	// No header: the daemon mints one.
	resp, _ := post(t, url, body)
	gen := resp.Header.Get("X-Request-ID")
	if !logx.ValidRequestID(gen) {
		t.Fatalf("generated X-Request-ID %q is not well-formed", gen)
	}

	// Well-formed client header: propagated verbatim.
	req, _ := http.NewRequest(http.MethodPost, url, nil)
	req.Header.Set("X-Request-ID", "client-id.42")
	req.Header.Set("Content-Type", "application/json")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); got != "client-id.42" {
		t.Fatalf("client ID not propagated: got %q", got)
	}

	// Malformed client header (illegal characters): replaced, and error
	// responses carry an ID too.
	req3, _ := http.NewRequest(http.MethodGet, url, nil)
	req3.Header.Set("X-Request-ID", "has spaces!")
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/plan: %d, want 405", resp3.StatusCode)
	}
	got := resp3.Header.Get("X-Request-ID")
	if got == "has spaces!" || !logx.ValidRequestID(got) {
		t.Fatalf("malformed client ID not replaced: got %q", got)
	}
}

func TestRequestLogOneRecordPerRequest(t *testing.T) {
	var sink syncBuffer
	srv := startServer(t, Config{Logger: logx.New(&sink)})
	base := "http://" + srv.Addr()
	body, _ := json.Marshal(testRequest([][]Extent{{{0, 1 << 20}}}))

	respMiss, _ := post(t, base+"/v1/plan", body)
	respHit, _ := post(t, base+"/v1/plan", body)
	respBad, _ := post(t, base+"/v1/plan", []byte("{not json"))

	recs := sink.records(t)
	if len(recs) != 3 {
		t.Fatalf("%d log records for 3 requests, want exactly 3:\n%+v", len(recs), recs)
	}
	wantIDs := []string{
		respMiss.Header.Get("X-Request-ID"),
		respHit.Header.Get("X-Request-ID"),
		respBad.Header.Get("X-Request-ID"),
	}
	byID := make(map[string]logx.Record, len(recs))
	for _, r := range recs {
		if _, dup := byID[r.ReqID]; dup {
			t.Fatalf("request ID %q logged twice", r.ReqID)
		}
		byID[r.ReqID] = r
	}
	miss, ok := byID[wantIDs[0]]
	if !ok || miss.Cache != "miss" || miss.Status != 200 {
		t.Fatalf("miss record wrong or missing: %+v", miss)
	}
	if miss.Fingerprint == "" || miss.Bytes == 0 || miss.WorkS <= 0 || miss.DurS <= 0 {
		t.Fatalf("miss record lacks fingerprint/bytes/work/duration: %+v", miss)
	}
	hit, ok := byID[wantIDs[1]]
	if !ok || hit.Cache != "hit" || hit.Status != 200 {
		t.Fatalf("hit record wrong or missing: %+v", hit)
	}
	if hit.WorkS != 0 {
		t.Fatalf("cache hit charged planner time: %+v", hit)
	}
	bad, ok := byID[wantIDs[2]]
	if !ok || bad.Status != 400 || bad.Error == "" {
		t.Fatalf("error record wrong or missing: %+v", bad)
	}
}

func TestSpanIDJoinsRequestLog(t *testing.T) {
	var sink syncBuffer
	tracer := obs.NewTracer()
	srv := startServer(t, Config{Logger: logx.New(&sink), Tracer: tracer})
	body, _ := json.Marshal(testRequest([][]Extent{{{0, 1 << 20}}}))

	resp, _ := post(t, "http://"+srv.Addr()+"/v1/plan", body)
	rid := resp.Header.Get("X-Request-ID")
	if rid == "" {
		t.Fatal("no X-Request-ID on response")
	}

	var spanned int
	for _, e := range tracer.Events() {
		if e.ID == rid {
			spanned++
			if e.Phase != PhaseServePlan {
				t.Fatalf("span with ID %q has phase %q, want %q", rid, e.Phase, PhaseServePlan)
			}
		}
	}
	if spanned != 1 {
		t.Fatalf("%d spans carry request ID %q, want exactly 1", spanned, rid)
	}
	var logged int
	for _, r := range sink.records(t) {
		if r.ReqID == rid {
			logged++
		}
	}
	if logged != 1 {
		t.Fatalf("%d log records carry request ID %q, want exactly 1", logged, rid)
	}
}

func TestHealthzJSON(t *testing.T) {
	srv := startServer(t, Config{})
	base := "http://" + srv.Addr()
	body, _ := json.Marshal(testRequest([][]Extent{{{0, 1 << 20}}}))
	post(t, base+"/v1/plan", body)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d, want 200", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("healthz is not JSON: %v", err)
	}
	if h.Status != "ok" || h.Draining || h.UptimeS < 0 || h.CacheEntries != 1 {
		t.Fatalf("healthz body: %+v", h)
	}

	// Once draining, the body keeps its shape but flips to 503.
	srv.drainOnce.Do(func() { close(srv.draining) })
	resp2, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d, want 503", resp2.StatusCode)
	}
	var h2 HealthResponse
	if err := json.NewDecoder(resp2.Body).Decode(&h2); err != nil {
		t.Fatalf("draining healthz is not JSON: %v", err)
	}
	if h2.Status != "draining" || !h2.Draining {
		t.Fatalf("draining healthz body: %+v", h2)
	}
}

func TestFlightEndpoint(t *testing.T) {
	srv := startServer(t, Config{})
	base := "http://" + srv.Addr()
	body, _ := json.Marshal(testRequest([][]Extent{{{0, 1 << 20}}}))
	resp1, _ := post(t, base+"/v1/plan", body)
	resp2, _ := post(t, base+"/v1/plan", body)

	resp, err := http.Get(base + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	recs, err := logx.ParseRecords(resp.Body)
	if err != nil {
		t.Fatalf("flight dump is not JSONL: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("flight dump has %d records, want 2", len(recs))
	}
	want := map[string]bool{
		resp1.Header.Get("X-Request-ID"): true,
		resp2.Header.Get("X-Request-ID"): true,
	}
	for _, r := range recs {
		if !want[r.ReqID] {
			t.Fatalf("flight record %q does not match a served request", r.ReqID)
		}
	}
}
