package pland

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/explain"
	"repro/internal/iolib"
	"repro/internal/logx"
	"repro/internal/obs"
	"repro/internal/strategy"
	"repro/internal/twolayer"
	"repro/internal/workload"
)

// maxBodyBytes bounds a request body; a layout bigger than this is a
// client error, not a reason to exhaust the daemon's memory.
const maxBodyBytes = 32 << 20

// errShed marks a request refused by admission control.
var errShed = errors.New("pland: admission queue full")

// PlanDomain is one aggregator's file domain in a plan response.
type PlanDomain struct {
	// Agg is the aggregator's group-relative rank.
	Agg int `json:"agg"`
	// Node is the physical node hosting the aggregator.
	Node int `json:"node"`
	// Lo and Hi bound the domain's file extent (half-open).
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
	// DataBytes is the requested data covered inside the domain.
	DataBytes int64 `json:"data_bytes"`
	// BufBytes is the aggregation buffer charged on the node.
	BufBytes int64 `json:"buf_bytes"`
}

// PlanGroup is one aggregation group's slice of a plan response.
type PlanGroup struct {
	// First and Last bound the group's rank range (inclusive).
	First int `json:"first"`
	Last  int `json:"last"`
	// Nodes is the number of physical nodes the group spans.
	Nodes int `json:"nodes"`
	// Bytes is the group members' total requested data.
	Bytes int64 `json:"bytes"`
	// CoverageBytes is the group's aggregate coverage (union of
	// requests).
	CoverageBytes int64 `json:"coverage_bytes"`
	// Remerges counts workload-portion remerges placement performed.
	Remerges int `json:"remerges"`
	// Domains lists the group's file domains in partition-tree order.
	Domains []PlanDomain `json:"domains"`
}

// PlanLeader is one elected node leader in a plan response (two-layer
// exchange only).
type PlanLeader struct {
	// Group is the aggregation group the election ran in (0 for the
	// single-group strategies).
	Group int `json:"group"`
	// Node is the physical node; Rank the winning group-relative rank.
	Node int `json:"node"`
	Rank int `json:"rank"`
	// MemAvail is the node's available memory at election time and
	// Score the winner's election score (Mem_avl minus extent span).
	MemAvail int64 `json:"mem_avail"`
	Score    int64 `json:"score"`
	// RunnersUp counts the losing mates on the node.
	RunnersUp int `json:"runners_up"`
}

// PlanResponse is the body of a successful POST /v1/plan: the resolved
// tunables and the full aggregation plan. Serialization is
// deterministic (structs only, no maps), which is what lets the cache
// promise byte-identical responses.
type PlanResponse struct {
	// Fingerprint is the canonical request key the plan is cached
	// under.
	Fingerprint string `json:"fingerprint"`
	// Strategy is the resolved collective strategy the plan is for.
	Strategy string `json:"strategy"`
	// Ranks echoes the request's rank count.
	Ranks int `json:"ranks"`
	// TotalBytes is the layout's total requested data.
	TotalBytes int64 `json:"total_bytes"`
	// Options are the resolved MCCIO tunables the plan was built with.
	Options core.Options `json:"options"`
	// Groups is the aggregation-group division with per-group domains.
	Groups []PlanGroup `json:"groups"`
	// Aggregators is the total aggregator count across groups.
	Aggregators int `json:"aggregators"`
	// Remerges is the total remerge count across groups.
	Remerges int `json:"remerges"`
	// Leaders lists the elected node leaders when the plan carries the
	// two-layer exchange (strategy two-layer, or mccio with
	// Options.TwoLayer); empty otherwise.
	Leaders []PlanLeader `json:"leaders,omitempty"`
}

// SimResponse is the body of a successful POST /v1/simulate: the
// engine's global result plus the top-level phase breakdown.
type SimResponse struct {
	// Fingerprint is the canonical key of the embedded plan request.
	Fingerprint string `json:"fingerprint"`
	// Strategy and Op echo what ran.
	Strategy string `json:"strategy"`
	Op       string `json:"op"`
	// BandwidthMBps is application bandwidth in MB/s.
	BandwidthMBps float64 `json:"bandwidth_mbps"`
	// Elapsed is the collective's virtual elapsed seconds.
	Elapsed float64 `json:"elapsed_s"`
	// Bytes is the data moved by the collective.
	Bytes int64 `json:"bytes"`
	// Rounds, Aggregators, Groups, Remerges summarize the schedule.
	Rounds      int `json:"rounds"`
	Aggregators int `json:"aggregators"`
	Groups      int `json:"groups"`
	Remerges    int `json:"remerges"`
	// Phases maps each top-level pipeline phase to its summed virtual
	// seconds across ranks.
	Phases map[string]float64 `json:"phases"`
}

// errorResponse is the JSON error body for non-2xx answers.
type errorResponse struct {
	Error string `json:"error"`
}

// writeJSONError answers with a JSON error body and the given status.
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

// observe finishes a request's bookkeeping: latency histogram and the
// per-endpoint/code counter.
func (s *Server) observe(endpoint string, code int, start time.Time) {
	s.requests(endpoint, fmt.Sprintf("%d", code)).Inc()
	s.latency(endpoint).Observe(time.Since(start).Seconds())
	s.queueGa.Set(float64(s.pool.Queued()))
	s.activeGa.Set(float64(s.pool.Active()))
}

// requestID returns the client's X-Request-ID when it is well-formed,
// or mints a fresh one. Every /v1/* response carries the result, so
// one ID joins the access log, the flight recorder, and the trace.
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); logx.ValidRequestID(id) {
		return id
	}
	return logx.NewRequestID()
}

// finish emits the request's single log record — latency metrics,
// request log, flight recorder — once the response has been written.
// Every handler path, success or error, funnels through here exactly
// once.
func (s *Server) finish(rec *logx.Record, start time.Time) {
	rec.DurS = time.Since(start).Seconds()
	s.observe(rec.Endpoint, rec.Status, start)
	s.logger.Request(*rec)
	s.flight.Record(*rec)
}

// fail answers with a JSON error body and finishes the request's
// bookkeeping.
func (s *Server) fail(w http.ResponseWriter, rec *logx.Record, status int, msg string, start time.Time) {
	writeJSONError(w, status, msg)
	rec.Status = status
	rec.Error = msg
	s.finish(rec, start)
}

// handlePlan serves POST /v1/plan: canonicalize, fingerprint, then
// cache-hit or compute. Hits and coalesced waits bypass admission;
// only the planner run of a miss occupies a pool slot. In cluster
// mode, a fingerprint owned by another shard takes one internal hop to
// its owner first (serveClustered); a request that already took that
// hop (X-Forwarded-By set) is always served locally — the loop guard.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rid := requestID(r)
	w.Header().Set("X-Request-ID", rid)
	rec := logx.Record{ReqID: rid, Endpoint: "plan", Shard: s.cfg.ShardID}
	if r.Method != http.MethodPost {
		s.fail(w, &rec, http.StatusMethodNotAllowed, "POST only", start)
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.fail(w, &rec, http.StatusBadRequest, "bad request body: "+err.Error(), start)
		return
	}
	var req PlanRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		s.fail(w, &rec, http.StatusBadRequest, "bad request body: "+err.Error(), start)
		return
	}
	canon, err := req.canonicalize()
	if err != nil {
		s.fail(w, &rec, http.StatusBadRequest, err.Error(), start)
		return
	}
	if !strategy.Planned(canon.Strategy) {
		s.fail(w, &rec, http.StatusBadRequest,
			fmt.Sprintf("pland: strategy %q is not plannable (want %s)", canon.Strategy, strategy.PlannedList()), start)
		return
	}
	fp := canon.Fingerprint()
	rec.Fingerprint = fp
	forwardedBy := r.Header.Get(headerForwardedBy)
	if forwardedBy != "" {
		rec.Peer = forwardedBy
		if s.clu != nil {
			s.clu.forwardedIn.Inc()
		}
	}
	sp := s.tracer.BeginID(PhaseServePlan, obs.NoLoc, rid)
	if s.clu != nil && forwardedBy == "" {
		if s.serveClustered(w, &rec, sp, fp, raw, rid, start) {
			return
		}
	}

	body, status, err := s.cache.Get(fp, func() ([]byte, error) {
		return s.admitPlan(canon, fp, &rec)
	})
	sp.EndBytes(int64(len(body)), int64(len(canon.Views)))
	switch {
	case errors.Is(err, errShed):
		rec.Cache = "shed"
		s.shed.Inc()
		w.Header().Set("Retry-After", "1")
		s.fail(w, &rec, http.StatusTooManyRequests, err.Error(), start)
		return
	case err != nil:
		s.fail(w, &rec, http.StatusUnprocessableEntity, err.Error(), start)
		return
	}
	rec.Cache = status.String()
	s.writePlanBody(w, &rec, fp, body, start)
}

// serveClustered is the cluster routing step of handlePlan, reached
// only for first-hop requests (no X-Forwarded-By). It reports true
// when it fully served the request; false falls through to the normal
// local path — either because this shard is the fingerprint's place to
// be (owner, or every better replica is down) or because the forward
// failed and local compute is the never-fail-the-client fallback.
//
// The verdicts it produces, in priority order:
//
//	replica-hit   the fingerprint is in the local cache even though a
//	              peer owns it (an earlier hot fill) — served locally
//	forward-hit   proxied to the owner, who had it cached (or
//	              coalesced onto a run already in flight)
//	forward-miss  proxied to the owner, who ran the planner
func (s *Server) serveClustered(w http.ResponseWriter, rec *logx.Record, sp *obs.Span, fp string, raw []byte, rid string, start time.Time) bool {
	target := s.clu.route(fp)
	if target == s.clu.self {
		return false
	}
	hot := s.clu.hot.Observe(fp, time.Now())
	if body, ok := s.cache.Lookup(fp); ok {
		s.clu.replicaHits.Inc()
		sp.EndBytes(int64(len(body)), 0)
		rec.Cache = "replica-hit"
		s.writePlanBody(w, rec, fp, body, start)
		return true
	}
	res, err := s.clu.forward(s.clu.peers[target], raw, rid)
	if err != nil {
		// Owner unreachable: compute locally. The peer is already
		// marked down, so the next request routes around it without
		// paying the timeout again.
		s.clu.fallbacks.Inc()
		s.clu.forwards("fallback").Inc()
		return false
	}
	rec.Peer = target
	w.Header().Set(headerServedBy, target)
	if res.status != http.StatusOK {
		// The owner's answer to a bad or shed request is authoritative
		// — the same request would fail identically here. Relay it.
		s.clu.forwards("relayed").Inc()
		w.Header().Set("Content-Type", "application/json")
		if res.status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		sp.End()
		w.WriteHeader(res.status)
		w.Write(res.body)
		rec.Status = res.status
		rec.Bytes = int64(len(res.body))
		s.finish(rec, start)
		return true
	}
	verdict := "forward-hit"
	if res.cache == StatusMiss.String() {
		verdict = "forward-miss"
		s.clu.forwards("miss").Inc()
	} else {
		s.clu.forwards("hit").Inc()
	}
	if hot {
		// Hot-key replication: keep the owner's bytes so the next
		// request for this Zipf head is a local replica-hit.
		s.cache.Put(fp, res.body)
		s.clu.replicaFills.Inc()
	}
	sp.EndBytes(int64(len(res.body)), 0)
	rec.Cache = verdict
	s.writePlanBody(w, rec, fp, res.body, start)
	return true
}

// writePlanBody writes a successful plan response — headers, body,
// bookkeeping — with rec.Cache as the X-Cache verdict.
func (s *Server) writePlanBody(w http.ResponseWriter, rec *logx.Record, fp string, body []byte, start time.Time) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", rec.Cache)
	w.Header().Set("X-Fingerprint", fp)
	w.Write(body)
	rec.Status = http.StatusOK
	rec.Bytes = int64(len(body))
	s.finish(rec, start)
}

// handleRing serves GET /debug/ring: this daemon's view of the cluster
// — membership, per-peer health, exact ownership shares, and the hot-
// key state. 404 on a single-node daemon.
func (s *Server) handleRing(w http.ResponseWriter, r *http.Request) {
	if s.clu == nil {
		writeJSONError(w, http.StatusNotFound, "not clustered (no -peers)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.clu.status(s.cfg.ShardID, s.cfg.HotThreshold, s.cfg.HotWindow))
}

// admitPlan runs the planner through admission control: the job takes
// a pool slot (shedding with errShed when the backlog is full) and the
// calling handler goroutine waits for its result. The job stamps its
// admission wait and planner execution time into rec; a coalesced
// caller's rec keeps zeros, because someone else's run paid the cost.
func (s *Server) admitPlan(canon *canonRequest, fp string, rec *logx.Record) ([]byte, error) {
	type out struct {
		body []byte
		err  error
	}
	submitted := time.Now()
	ch := make(chan out, 1)
	admitted := s.pool.TrySubmit(func() {
		rec.WaitS = time.Since(submitted).Seconds()
		if s.testHooks.planStarted != nil {
			s.testHooks.planStarted()
		}
		t0 := time.Now()
		body, sum, err := buildPlanJSON(canon, fp)
		rec.WorkS = time.Since(t0).Seconds()
		if err == nil {
			s.planRuns.Inc()
			s.storeExplain(fp, sum)
		}
		ch <- out{body, err}
	})
	if !admitted {
		return nil, errShed
	}
	o := <-ch
	return o.body, o.err
}

// buildPlanJSON runs the offline planner on a fresh machine built from
// the canonical request and serializes the resulting plan, plus the
// decision-count summary GET /debug/explain reports. MCCIO plans go
// through core.MCCIO.Inspect; the flat strategies (two-phase,
// two-layer) through their comm-free PlanFromMeta builders. A planner
// panic (hostile-but-validated input hitting an internal invariant) is
// converted to an error so one request cannot take the daemon down.
func buildPlanJSON(c *canonRequest, fp string) (body []byte, sum explain.Summary, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("pland: planner failed: %v", p)
		}
	}()
	machine, err := cluster.New(c.Cluster)
	if err != nil {
		return nil, explain.Summary{}, err
	}
	rec := explain.NewRecorder()
	machine.SetExplain(rec)
	var resp PlanResponse
	switch c.Strategy {
	case strategy.TwoPhase, strategy.TwoLayer:
		resp, err = flatPlanResponse(c, machine, rec)
	default:
		resp, err = mccioPlanResponse(c, machine)
	}
	if err != nil {
		return nil, explain.Summary{}, err
	}
	sum = explain.Summarize(rec.Events())
	resp.Fingerprint = fp
	resp.Strategy = c.Strategy
	resp.Ranks = len(c.Views)
	for _, v := range c.Views {
		resp.TotalBytes += v.TotalBytes()
	}
	body, err = json.Marshal(resp)
	if err != nil {
		return nil, explain.Summary{}, err
	}
	return append(body, '\n'), sum, nil
}

// mccioPlanResponse is buildPlanJSON's memory-conscious path.
func mccioPlanResponse(c *canonRequest, machine *cluster.Machine) (PlanResponse, error) {
	mc := core.MCCIO{Opts: c.Options}
	ir, err := mc.Inspect(machine, c.Views)
	if err != nil {
		return PlanResponse{}, err
	}
	resp := PlanResponse{Options: c.Options}
	for gi, gp := range ir.Plans {
		pg := PlanGroup{
			First:         gp.Group.First,
			Last:          gp.Group.Last,
			Nodes:         gp.Group.Nodes,
			Bytes:         gp.Group.Bytes,
			CoverageBytes: gp.Coverage.TotalBytes(),
			Remerges:      gp.Remerges,
		}
		for _, pl := range gp.Placements {
			pg.Domains = append(pg.Domains, PlanDomain{
				Agg:       pl.Agg,
				Node:      gp.NodeOfRank[pl.Agg],
				Lo:        pl.Leaf.Lo,
				Hi:        pl.Leaf.Hi,
				DataBytes: pl.Leaf.DataBytes,
				BufBytes:  pl.Buf,
			})
		}
		for _, l := range gp.Leaders {
			resp.Leaders = append(resp.Leaders, PlanLeader{
				Group: gi, Node: l.Node, Rank: l.Rank,
				MemAvail: l.Avail, Score: l.Score, RunnersUp: len(l.RunnersUp),
			})
		}
		resp.Aggregators += len(gp.Placements)
		resp.Remerges += gp.Remerges
		resp.Groups = append(resp.Groups, pg)
	}
	return resp, nil
}

// flatPlanResponse is buildPlanJSON's path for the single-group
// strategies: two-phase (lowest-rank aggregators) and two-layer
// (memory-elected leaders). Both strategies size their collective
// buffer from the node's memory, mirroring the simulation path.
func flatPlanResponse(c *canonRequest, machine *cluster.Machine, rec *explain.Recorder) (PlanResponse, error) {
	n := len(c.Views)
	exts := make([]collio.Ext, n)
	nodeOf := make([]int, n)
	avail := make([]int64, n)
	nodes := make(map[int]bool, n)
	var all datatype.List
	for r, v := range c.Views {
		lo, hi := v.Extent()
		exts[r] = collio.Ext{Lo: lo, Hi: hi}
		nodeOf[r] = machine.NodeOfRank(r)
		avail[r] = machine.Node(nodeOf[r]).Available()
		nodes[nodeOf[r]] = true
		all = append(all, v...)
	}
	coverage := datatype.Normalize(all)

	var plan *collio.Plan
	resp := PlanResponse{Options: c.Options}
	if c.Strategy == strategy.TwoLayer {
		var el *twolayer.Election
		plan, el = twolayer.Strategy{CBBuffer: c.Cluster.MemPerNode}.PlanFromMeta(exts, nodeOf, avail)
		if el != nil && el.MultiRank {
			for _, l := range el.Leaders {
				resp.Leaders = append(resp.Leaders, PlanLeader{
					Group: 0, Node: l.Node, Rank: l.Rank,
					MemAvail: l.Avail, Score: l.Score, RunnersUp: len(l.RunnersUp),
				})
				if rec.Enabled() {
					rec.Record(explain.Event{
						Kind: explain.KindLeader, Group: 0,
						Node: l.Node, Rank: l.Rank, Avail: l.Avail, Score: l.Score,
					})
				}
			}
		}
	} else {
		plan = collio.TwoPhase{CBBuffer: c.Cluster.MemPerNode}.PlanFromMeta(exts, nodeOf, avail)
	}

	pg := PlanGroup{
		First: 0, Last: n - 1, Nodes: len(nodes),
		CoverageBytes: coverage.TotalBytes(),
	}
	for _, v := range c.Views {
		pg.Bytes += v.TotalBytes()
	}
	for _, d := range plan.Domains {
		pg.Domains = append(pg.Domains, PlanDomain{
			Agg:       d.Agg,
			Node:      nodeOf[d.Agg],
			Lo:        d.Lo,
			Hi:        d.Hi,
			DataBytes: coverage.Clip(d.Lo, d.Hi).TotalBytes(),
			BufBytes:  d.BufBytes,
		})
	}
	resp.Aggregators = len(plan.Domains)
	resp.Groups = append(resp.Groups, pg)
	return resp, nil
}

// ExplainState is the body of GET /debug/explain: the decision-count
// summary of the most recent planner execution (a cache miss that ran),
// keyed by the plan fingerprint it produced.
type ExplainState struct {
	// Fingerprint is the canonical request key of the summarized run.
	Fingerprint string `json:"fingerprint"`
	// Summary is the run's decision-count rollup.
	Summary explain.Summary `json:"summary"`
}

// storeExplain publishes the latest planner run's decision summary.
func (s *Server) storeExplain(fp string, sum explain.Summary) {
	s.explainMu.Lock()
	s.lastExplain = &ExplainState{Fingerprint: fp, Summary: sum}
	s.explainMu.Unlock()
}

// handleExplain serves GET /debug/explain: the decision-count summary
// of the most recent planner run, or 404 before any miss has executed
// (cache hits reuse an earlier run's plan and do not update it).
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	s.explainMu.Lock()
	st := s.lastExplain
	s.explainMu.Unlock()
	if st == nil {
		writeJSONError(w, http.StatusNotFound, "no planner run recorded yet")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// handleSimulate serves POST /v1/simulate: every simulation goes
// through admission control (simulations are the expensive requests),
// runs the collio engine on the request's platform and layout, and
// answers with the result plus phase breakdown.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rid := requestID(r)
	w.Header().Set("X-Request-ID", rid)
	rec := logx.Record{ReqID: rid, Endpoint: "simulate", Shard: s.cfg.ShardID}
	if r.Method != http.MethodPost {
		s.fail(w, &rec, http.StatusMethodNotAllowed, "POST only", start)
		return
	}
	var req SimRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		s.fail(w, &rec, http.StatusBadRequest, "bad request body: "+err.Error(), start)
		return
	}
	op, err := req.validateSim()
	if err != nil {
		s.fail(w, &rec, http.StatusBadRequest, err.Error(), start)
		return
	}
	canon, err := req.canonicalize()
	if err != nil {
		s.fail(w, &rec, http.StatusBadRequest, err.Error(), start)
		return
	}
	fp := canon.Fingerprint()
	rec.Fingerprint = fp
	sp := s.tracer.BeginID(PhaseServeSimulate, obs.NoLoc, rid)

	type out struct {
		resp *SimResponse
		err  error
	}
	submitted := time.Now()
	ch := make(chan out, 1)
	admitted := s.pool.TrySubmit(func() {
		rec.WaitS = time.Since(submitted).Seconds()
		t0 := time.Now()
		resp, err := runSimulation(canon, fp, op)
		rec.WorkS = time.Since(t0).Seconds()
		if err == nil {
			s.simRuns.Inc()
		}
		ch <- out{resp, err}
	})
	if !admitted {
		sp.End()
		rec.Cache = "shed"
		s.shed.Inc()
		w.Header().Set("Retry-After", "1")
		s.fail(w, &rec, http.StatusTooManyRequests, errShed.Error(), start)
		return
	}
	o := <-ch
	sp.End()
	if o.err != nil {
		s.fail(w, &rec, http.StatusUnprocessableEntity, o.err.Error(), start)
		return
	}
	body, err := json.Marshal(o.resp)
	if err != nil {
		s.fail(w, &rec, http.StatusInternalServerError, err.Error(), start)
		return
	}
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Fingerprint", fp)
	w.Write(body)
	rec.Status = http.StatusOK
	rec.Bytes = int64(len(body))
	s.finish(&rec, start)
}

// runSimulation executes one collective through bench.RunOnce with a
// per-run tracer and folds the phase summary into the response. The
// strategy comes from the canonical request; the non-MCCIO collectives
// size their buffer from the node's memory, like the bench sweeps.
func runSimulation(c *canonRequest, fp, op string) (resp *SimResponse, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("pland: simulation failed: %v", p)
		}
	}()
	var strat iolib.Collective
	switch c.Strategy {
	case strategy.TwoPhase:
		strat = collio.TwoPhase{CBBuffer: c.Cluster.MemPerNode}
	case strategy.TwoLayer:
		strat = twolayer.Strategy{CBBuffer: c.Cluster.MemPerNode}
	case strategy.Independent:
		strat = iolib.Naive{Opts: iolib.DefaultSieve()}
	default:
		strat = core.MCCIO{Opts: c.Options}
	}
	res, sum, err := bench.RunOncePhases(bench.Spec{
		Strategy: strat,
		Op:       op,
		Machine:  c.Cluster,
		FS:       c.FS,
		Workload: workload.Explicit{Label: "plan-service", Views: c.Views},
	})
	if err != nil {
		return nil, err
	}
	out := &SimResponse{
		Fingerprint:   fp,
		Strategy:      c.Strategy,
		Op:            op,
		BandwidthMBps: res.BandwidthMBps(),
		Elapsed:       res.Elapsed,
		Bytes:         res.Bytes,
		Rounds:        res.Rounds,
		Aggregators:   res.Aggregators,
		Groups:        res.Groups,
		Remerges:      res.Remerges,
		Phases:        make(map[string]float64),
	}
	for ph, tot := range sum.Phases {
		if ph.TopLevel() {
			out.Phases[string(ph)] = tot.Seconds
		}
	}
	return out, nil
}

// HealthResponse is the GET /healthz body: liveness plus the coarse
// daemon state a poller wants without scraping the full /metrics page.
type HealthResponse struct {
	// Status is "ok" while accepting, "draining" once Shutdown began.
	Status string `json:"status"`
	// Draining mirrors Status as a bool for jq-style gates.
	Draining bool `json:"draining"`
	// UptimeS is seconds since the daemon was built.
	UptimeS float64 `json:"uptime_s"`
	// CacheEntries is the plan cache's current entry count.
	CacheEntries int `json:"cache_entries"`
	// ShardID is the daemon's ring name (the -shard-id flag); omitted
	// when unnamed.
	ShardID string `json:"shard_id,omitempty"`
	// Peers and PeersUp count the other ring members and how many of
	// them this daemon currently sees as healthy; both zero on a
	// single-node daemon.
	Peers   int `json:"peers,omitempty"`
	PeersUp int `json:"peers_up,omitempty"`
}

// handleHealth serves GET /healthz: 200 with a JSON body while
// accepting, 503 (same body shape) once the daemon starts draining —
// the signal a load balancer needs to stop routing before connections
// are refused.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		Status:       "ok",
		UptimeS:      time.Since(s.started).Seconds(),
		CacheEntries: s.cache.Len(),
		ShardID:      s.cfg.ShardID,
	}
	if s.clu != nil {
		resp.Peers = len(s.clu.peers)
		for _, p := range s.clu.peers {
			if p.up.Load() {
				resp.PeersUp++
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if s.isDraining() {
		resp.Status = "draining"
		resp.Draining = true
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(resp)
}

// handleFlight serves GET /debug/flight: the flight recorder's retained
// records as JSONL — the live, no-signal variant of the SIGQUIT dump,
// same schema as the request log.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	s.flight.WriteJSONL(w)
}
