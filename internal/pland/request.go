package pland

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/pfs"
	"repro/internal/strategy"
)

// Extent is one file run of a rank's request layout on the wire:
// Len bytes starting at byte Off.
type Extent struct {
	Off int64 `json:"off"`
	Len int64 `json:"len"`
}

// PlanRequest is the body of POST /v1/plan: the platform (compute and
// storage configuration), optional MCCIO tunables, and the per-rank
// request layout the plan is for. Omitted Options are derived from the
// platform with core.DefaultOptions — the paper's calibration — so a
// request that says nothing about tunables and one that spells the
// derived defaults out fingerprint identically.
type PlanRequest struct {
	// Cluster describes the compute platform. Zero-valued optional
	// fields (MemFloor) are filled with the same defaults the simulator
	// uses before fingerprinting.
	Cluster cluster.Config `json:"cluster"`
	// FS describes the storage system.
	FS pfs.Config `json:"fs"`
	// Options are the MCCIO tunables; nil derives them from the
	// platform.
	Options *core.Options `json:"options,omitempty"`
	// Strategy selects the collective strategy the request is about;
	// empty means "mccio". /v1/plan serves the plannable strategies
	// (mccio, two-phase, two-layer); /v1/simulate additionally accepts
	// "independent". The non-MCCIO strategies use Cluster.MemPerNode as
	// their collective buffer. The strategy is part of the request
	// fingerprint, so plans cached for one strategy can never be served
	// for another.
	Strategy string `json:"strategy,omitempty"`
	// Ranks holds one extent list per rank — the request layout.
	// Extents may arrive unsorted, overlapping, or split at arbitrary
	// points; canonicalization normalizes them, so semantically
	// identical layouts key the same cache slot.
	Ranks [][]Extent `json:"ranks"`
}

// SimRequest is the body of POST /v1/simulate: a plan request plus the
// operation to run through the collective I/O engine.
type SimRequest struct {
	PlanRequest
	// Op is "write" or "read"; empty means "write".
	Op string `json:"op,omitempty"`
}

// canonRequest is a plan request after canonicalization: defaults
// filled, options resolved, every rank's layout normalized. Two
// requests that mean the same thing canonicalize to equal values, and
// the fingerprint is computed over this form only.
type canonRequest struct {
	Cluster  cluster.Config
	FS       pfs.Config
	Options  core.Options
	Strategy string // resolved: never empty after canonicalization
	Views    []datatype.List
}

// maxRequestRanks bounds the per-request rank count so a hostile body
// cannot make the planner allocate per-rank state without limit.
const maxRequestRanks = 1 << 16

// canonicalize validates the request and reduces it to canonical form.
// Errors are client errors (the server answers 400): they describe
// what is wrong with the request, never internal state.
func (r *PlanRequest) canonicalize() (*canonRequest, error) {
	if len(r.Ranks) == 0 {
		return nil, fmt.Errorf("pland: request has no ranks")
	}
	if len(r.Ranks) > maxRequestRanks {
		return nil, fmt.Errorf("pland: %d ranks exceeds the per-request limit of %d", len(r.Ranks), maxRequestRanks)
	}
	c := &canonRequest{Cluster: r.Cluster, FS: r.FS}
	if err := c.Cluster.Validate(); err != nil {
		return nil, err
	}
	if len(r.Ranks) > c.Cluster.Nodes*c.Cluster.CoresPerNode {
		return nil, fmt.Errorf("pland: %d ranks on a machine of %d", len(r.Ranks), c.Cluster.Nodes*c.Cluster.CoresPerNode)
	}
	if err := c.FS.Validate(); err != nil {
		return nil, err
	}
	if r.Options != nil {
		c.Options = *r.Options
	} else {
		c.Options = core.DefaultOptions(c.Cluster, c.FS)
	}
	if err := c.Options.Validate(); err != nil {
		return nil, err
	}
	c.Strategy = r.Strategy
	if c.Strategy == "" {
		c.Strategy = strategy.MCCIO
	}
	if !strategy.Valid(c.Strategy) {
		return nil, fmt.Errorf("pland: unknown strategy %q (want %s)", r.Strategy, strategy.List())
	}
	c.Views = make([]datatype.List, len(r.Ranks))
	for i, exts := range r.Ranks {
		segs := make([]datatype.Segment, 0, len(exts))
		for _, e := range exts {
			if e.Off < 0 || e.Len < 0 {
				return nil, fmt.Errorf("pland: rank %d extent [%d,+%d) is negative", i, e.Off, e.Len)
			}
			if e.Len > 0 && e.Off > 1<<62-e.Len {
				return nil, fmt.Errorf("pland: rank %d extent [%d,+%d) overflows", i, e.Off, e.Len)
			}
			segs = append(segs, datatype.Segment{Off: e.Off, Len: e.Len})
		}
		c.Views[i] = datatype.Normalize(segs)
	}
	return c, nil
}

// validateSim checks the simulate-only fields and returns the resolved
// op. (Strategy lives on the embedded PlanRequest and is resolved and
// validated by canonicalization.)
func (r *SimRequest) validateSim() (op string, err error) {
	op = r.Op
	if op == "" {
		op = "write"
	}
	if op != "write" && op != "read" {
		return "", fmt.Errorf("pland: unknown op %q (want write or read)", r.Op)
	}
	return op, nil
}
