package pland

import (
	"sync"
	"time"
)

// hotMaxTracked bounds the number of fingerprints a hotTracker counts
// per window. A key first seen after the window already tracks this
// many distinct keys is by definition in the cold tail — the Zipf
// heads that replication exists for show up within the first few
// requests of every window.
const hotMaxTracked = 8192

// hotTracker detects the Zipf-head fingerprints worth replicating: it
// counts requests per fingerprint over a sliding ~2-window interval
// and reports a key hot once its count crosses the threshold. The
// two-generation scheme (current window plus the previous one) gives a
// smooth slide without per-key timestamps: rotation is O(1), memory is
// bounded by hotMaxTracked per generation, and a key that goes quiet
// is forgotten after at most two windows.
//
// A nil tracker is the disabled tracker (single-node daemon): Observe
// reports false at zero cost.
type hotTracker struct {
	mu        sync.Mutex
	window    time.Duration
	threshold int
	rotated   time.Time
	cur, prev map[string]int
}

// newHotTracker builds a tracker that calls a fingerprint hot once it
// sees threshold requests within the sliding window.
func newHotTracker(threshold int, window time.Duration) *hotTracker {
	return &hotTracker{
		window:    window,
		threshold: threshold,
		cur:       make(map[string]int),
		prev:      map[string]int{},
	}
}

// Observe counts one request for fp at time now and reports whether fp
// is hot — at or above the threshold over the sliding interval.
func (h *hotTracker) Observe(fp string, now time.Time) bool {
	if h == nil {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rotate(now)
	n := h.cur[fp]
	if n > 0 || len(h.cur) < hotMaxTracked {
		n++
		h.cur[fp] = n
	}
	return n+h.prev[fp] >= h.threshold
}

// rotate advances the window generations. Callers hold h.mu.
func (h *hotTracker) rotate(now time.Time) {
	if h.rotated.IsZero() {
		h.rotated = now
		return
	}
	gap := now.Sub(h.rotated)
	switch {
	case gap >= 2*h.window:
		// Idle for more than two windows: everything has cooled off.
		h.cur = make(map[string]int)
		h.prev = map[string]int{}
		h.rotated = now
	case gap >= h.window:
		h.prev = h.cur
		h.cur = make(map[string]int)
		h.rotated = now
	}
}

// HotCount returns how many tracked fingerprints are currently at or
// above the threshold — the /debug/ring "hot_keys" figure.
func (h *hotTracker) HotCount(now time.Time) int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rotate(now)
	n := 0
	for fp, c := range h.cur {
		if c+h.prev[fp] >= h.threshold {
			n++
		}
	}
	for fp, c := range h.prev {
		if h.cur[fp] == 0 && c >= h.threshold {
			n++
		}
	}
	return n
}
