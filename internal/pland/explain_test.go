package pland

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

// TestDebugExplain covers the decision-audit endpoint: 404 before any
// planner run, then the latest miss's fingerprint and decision counts.
func TestDebugExplain(t *testing.T) {
	srv := startServer(t, Config{})
	base := "http://" + srv.Addr()

	resp, err := http.Get(base + "/debug/explain")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("before any plan: %d, want 404", resp.StatusCode)
	}

	req := testRequest([][]Extent{
		{{0, 1 << 20}, {4 << 20, 1 << 20}},
		{{1 << 20, 1 << 20}, {5 << 20, 1 << 20}},
	})
	body, _ := json.Marshal(req)
	planResp, _ := post(t, base+"/v1/plan", body)
	if planResp.StatusCode != http.StatusOK {
		t.Fatalf("plan: %d", planResp.StatusCode)
	}
	wantFP := planResp.Header.Get("X-Fingerprint")

	resp, err = http.Get(base + "/debug/explain")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after plan: %d, want 200", resp.StatusCode)
	}
	var st ExplainState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Fingerprint != wantFP {
		t.Fatalf("explain fingerprint %q, want the served plan's %q", st.Fingerprint, wantFP)
	}
	if st.Summary.Plans == 0 || st.Summary.Placements == 0 {
		t.Fatalf("explain summary empty: %+v", st.Summary)
	}
}
