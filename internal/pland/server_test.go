package pland

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/metrics"
)

// startServer boots a daemon on an ephemeral port and tears it down
// with the test.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv
}

// post sends a JSON body and returns the response with its body read.
func post(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestPlanByteIdenticalHit(t *testing.T) {
	srv := startServer(t, Config{})
	url := "http://" + srv.Addr() + "/v1/plan"

	req := testRequest([][]Extent{
		{{0, 1 << 20}, {4 << 20, 1 << 20}},
		{{1 << 20, 1 << 20}, {5 << 20, 1 << 20}},
	})
	body, _ := json.Marshal(req)

	resp1, plan1 := post(t, url, body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first post: %d %s", resp1.StatusCode, plan1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first post X-Cache = %q, want miss", got)
	}
	resp2, plan2 := post(t, url, body)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second post: %d X-Cache=%q", resp2.StatusCode, resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(plan1, plan2) {
		t.Fatal("cache hit is not byte-identical to the miss")
	}

	// A semantically identical request spelled differently — extents
	// permuted and split, defaults written out — must hit the same slot
	// and return the same bytes.
	equiv := req
	equiv.Ranks = [][]Extent{
		{{4 << 20, 1 << 20}, {0, 512 << 10}, {512 << 10, 512 << 10}},
		{{5 << 20, 1 << 20}, {1 << 20, 1 << 20}},
	}
	if err := equiv.Cluster.Validate(); err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions(equiv.Cluster, equiv.FS)
	equiv.Options = &opts
	ebody, _ := json.Marshal(equiv)
	if bytes.Equal(ebody, body) {
		t.Fatal("test bug: equivalent body should be encoded differently")
	}
	resp3, plan3 := post(t, url, ebody)
	if resp3.StatusCode != http.StatusOK || resp3.Header.Get("X-Cache") != "hit" {
		t.Fatalf("equivalent post: %d X-Cache=%q body=%s", resp3.StatusCode, resp3.Header.Get("X-Cache"), plan3)
	}
	if !bytes.Equal(plan1, plan3) {
		t.Fatal("equivalent request did not return byte-identical plan")
	}

	var pr PlanResponse
	if err := json.Unmarshal(plan1, &pr); err != nil {
		t.Fatalf("plan response is not valid JSON: %v", err)
	}
	if pr.Ranks != 2 || pr.TotalBytes != 4<<20 || len(pr.Groups) == 0 || pr.Aggregators == 0 {
		t.Fatalf("implausible plan: %+v", pr)
	}
	if pr.Fingerprint == "" {
		t.Fatal("plan has no fingerprint")
	}
}

func TestSimulateEndpoint(t *testing.T) {
	srv := startServer(t, Config{})
	url := "http://" + srv.Addr() + "/v1/simulate"

	req := SimRequest{PlanRequest: testRequest([][]Extent{
		{{0, 1 << 20}},
		{{1 << 20, 1 << 20}},
	}), Op: "write"}
	body, _ := json.Marshal(req)
	resp, data := post(t, url, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %s", resp.StatusCode, data)
	}
	var sr SimResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.BandwidthMBps <= 0 || sr.Elapsed <= 0 || sr.Bytes != 2<<20 {
		t.Fatalf("implausible simulation: %+v", sr)
	}
	if len(sr.Phases) == 0 {
		t.Fatal("simulation reported no phases")
	}
	if sr.Strategy != "mccio" || sr.Op != "write" {
		t.Fatalf("echoed %q/%q", sr.Strategy, sr.Op)
	}

	// The two-phase baseline runs too and reports a single group.
	req.Strategy = "two-phase"
	body, _ = json.Marshal(req)
	resp, data = post(t, url, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("two-phase simulate: %d %s", resp.StatusCode, data)
	}
}

func TestBadRequests(t *testing.T) {
	srv := startServer(t, Config{})
	base := "http://" + srv.Addr()

	resp, body := post(t, base+"/v1/plan", []byte("{not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d %s", resp.StatusCode, body)
	}
	var er struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		t.Fatalf("error body is not structured: %s", body)
	}

	empty, _ := json.Marshal(testRequest(nil))
	if resp, _ := post(t, base+"/v1/plan", empty); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("no ranks: %d", resp.StatusCode)
	}

	neg, _ := json.Marshal(testRequest([][]Extent{{{-4, 16}}}))
	if resp, _ := post(t, base+"/v1/plan", neg); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative extent: %d", resp.StatusCode)
	}

	simBad, _ := json.Marshal(map[string]any{"op": "append"})
	if resp, _ := post(t, base+"/v1/simulate", simBad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad op: %d", resp.StatusCode)
	}

	get, err := http.Get(base + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/plan: %d", get.StatusCode)
	}

	hz, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", hz.StatusCode)
	}
}

// TestOverloadSheds pins the single worker with a test hook and shows
// the daemon answers a second distinct request with 429 + Retry-After
// instead of queueing — and that a cache hit still gets served while
// the worker is busy.
func TestOverloadSheds(t *testing.T) {
	srv := startServer(t, Config{Workers: 1, Queue: -1})
	url := "http://" + srv.Addr() + "/v1/plan"

	// Warm one key so we can prove hits bypass admission later.
	warm, _ := json.Marshal(testRequest([][]Extent{{{0, 64 << 10}}}))
	if resp, body := post(t, url, warm); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm: %d %s", resp.StatusCode, body)
	}

	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.testHooks.planStarted = func() {
		once.Do(func() { close(started) })
		<-release
	}

	slow, _ := json.Marshal(testRequest([][]Extent{{{1 << 30, 64 << 10}}}))
	slowDone := make(chan int, 1)
	go func() {
		resp, _ := post(t, url, slow)
		slowDone <- resp.StatusCode
	}()
	<-started // the only worker is now pinned

	other, _ := json.Marshal(testRequest([][]Extent{{{2 << 30, 64 << 10}}}))
	resp, body := post(t, url, other)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload: got %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// The warmed key is still served: hits bypass admission control.
	if resp, _ := post(t, url, warm); resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("warm key during overload: %d X-Cache=%q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}

	close(release)
	if code := <-slowDone; code != http.StatusOK {
		t.Fatalf("pinned request finished %d, want 200", code)
	}

	snap := srv.Registry().Snapshot()
	if v, ok := snap.Get("mccio_pland_shed_total", nil); !ok || v < 1 {
		t.Fatalf("shed counter = %v %v, want >= 1", v, ok)
	}
}

// TestCoalescedShedPropagates shows a coalesced waiter of a shed
// leader also sees the shed error (429), not a hang.
func TestCoalescedShedPropagates(t *testing.T) {
	srv := startServer(t, Config{Workers: 1, Queue: -1})
	url := "http://" + srv.Addr() + "/v1/plan"

	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.testHooks.planStarted = func() {
		once.Do(func() { close(started) })
		<-release
	}
	defer close(release)

	pin, _ := json.Marshal(testRequest([][]Extent{{{0, 64 << 10}}}))
	go func() {
		resp, err := http.Post(url, "application/json", bytes.NewReader(pin))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-started

	// Two concurrent requests for the same new key: the leader is shed
	// (no worker, no backlog); the coalesced follower must get the same
	// 429 rather than wait forever.
	same, _ := json.Marshal(testRequest([][]Extent{{{3 << 30, 64 << 10}}}))
	codes := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(url, "application/json", bytes.NewReader(same))
			if err != nil {
				codes <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case code := <-codes:
			if code != http.StatusTooManyRequests {
				t.Fatalf("concurrent miss under overload: %d, want 429", code)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("coalesced waiter hung on a shed leader")
		}
	}
}

func TestGracefulDrain(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	base := "http://" + srv.Addr()

	req, _ := json.Marshal(testRequest([][]Extent{{{0, 64 << 10}}}))
	if resp, body := post(t, base+"/v1/plan", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain plan: %d %s", resp.StatusCode, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v after drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after shutdown")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after drain")
	}
	// A second Shutdown is a no-op, not a panic.
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestRunLoadAgainstServer(t *testing.T) {
	srv := startServer(t, Config{})
	rep, err := RunLoad(LoadSpec{
		URL:         "http://" + srv.Addr(),
		Requests:    60,
		Concurrency: 4,
		Keys:        6,
		ZipfS:       1.1,
		SimEvery:    30,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("load saw %d errors", rep.Errors)
	}
	if rep.Hits+rep.Coalesced == 0 {
		t.Fatal("60 Zipf requests over 6 keys produced no cache hits")
	}
	if rep.Simulations == 0 {
		t.Fatal("SimEvery produced no simulations")
	}
	if rep.ThroughputRPS <= 0 || rep.P50Ms <= 0 {
		t.Fatalf("implausible report: %+v", rep)
	}
	if rep.HitRate <= 0 || rep.HitRate >= 1 {
		t.Fatalf("hit rate %v out of (0,1)", rep.HitRate)
	}

	// Server-side counters agree that the planner ran once per key.
	snap := srv.Registry().Snapshot()
	if runs, ok := snap.Get("mccio_pland_planner_runs_total", nil); !ok || runs != 6 {
		t.Fatalf("planner runs = %v %v, want 6 (one per key)", runs, ok)
	}
}

func TestMetricsEndpoints(t *testing.T) {
	srv := startServer(t, Config{})
	base := "http://" + srv.Addr()

	req, _ := json.Marshal(testRequest([][]Extent{{{0, 64 << 10}}}))
	post(t, base+"/v1/plan", req)
	post(t, base+"/v1/plan", req)

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(text), "mccio_pland_cache_hits_total 1") {
		t.Fatalf("/metrics missing hit counter:\n%s", text)
	}

	resp, err = http.Get(base + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var snap metrics.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Get("mccio_pland_requests_total", map[string]string{"endpoint": "plan", "code": "200"}); !ok || v != 2 {
		t.Fatalf("/metrics.json plan 200 count = %v %v, want 2", v, ok)
	}
}

func TestServeBench(t *testing.T) {
	if testing.Short() {
		t.Skip("serve bench issues hundreds of requests")
	}
	file, table, err := RunServeBench(bench.Options{Seed: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One single-node row, one row per ring shard, one cluster row.
	if table == nil || len(file.Experiments) != 2+ringShards {
		t.Fatalf("bench file: %+v", file)
	}
	row := file.Experiments[0]
	if row.ThroughputRPS <= 0 || row.HitRate <= 0 {
		t.Fatalf("implausible serve row: %+v", row)
	}
	ringRow := file.Experiments[len(file.Experiments)-1]
	if ringRow.HitRate < row.HitRate {
		t.Fatalf("ring hit rate %.4f below single-node %.4f", ringRow.HitRate, row.HitRate)
	}
	if file.Metrics == nil {
		t.Fatal("bench file has no metrics snapshot")
	}
	if hits, ok := file.Metrics.Get("mccio_pland_cache_hits_total", nil); !ok || hits <= 0 {
		t.Fatalf("snapshot hits = %v %v", hits, ok)
	}
}
