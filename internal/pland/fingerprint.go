package pland

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"math"
)

// fingerprintVersion is hashed into every fingerprint so a change to
// the canonical encoding (new field, different order) invalidates old
// keys instead of silently colliding with them.
//
// v2: the strategy name (length-prefixed) and Options.TwoLayer joined
// the canonical form, so requests differing only in strategy can never
// share a cache entry.
const fingerprintVersion = "mccio-plan-fp/2"

// Fingerprint returns the canonical request key: a 128-bit hex digest
// over the canonical form's fields in a fixed order. Because it hashes
// the *canonicalized* request — defaults filled, options resolved,
// layouts normalized — semantically identical requests (reordered
// extents, split-but-contiguous runs, omitted-vs-spelled-out
// defaults) produce the same key, while any change that alters what
// the planner would see produces a different one.
func (c *canonRequest) Fingerprint() string {
	h := sha256.New()
	io.WriteString(h, fingerprintVersion)
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wi := func(v int64) { wu(uint64(v)) }
	wf := func(v float64) { wu(math.Float64bits(v)) }
	wb := func(v bool) {
		if v {
			wu(1)
		} else {
			wu(0)
		}
	}

	wi(int64(c.Cluster.Nodes))
	wi(int64(c.Cluster.CoresPerNode))
	wi(c.Cluster.MemPerNode)
	wf(c.Cluster.MemSigma)
	wi(c.Cluster.MemFloor)
	wf(c.Cluster.MemBusBW)
	wf(c.Cluster.MemBusLat)
	wf(c.Cluster.NICBW)
	wf(c.Cluster.NICLat)
	wf(c.Cluster.BisectionBW)
	wf(c.Cluster.BisectionLat)
	wf(c.Cluster.IONetBW)
	wf(c.Cluster.IONetLat)
	wu(c.Cluster.Seed)

	wi(int64(c.FS.OSTs))
	wi(c.FS.StripeUnit)
	wf(c.FS.OSTBW)
	wf(c.FS.OSTLatency)
	wf(c.FS.JitterMean)
	wu(c.FS.Seed)

	wi(c.Options.Msgind)
	wi(c.Options.Msggroup)
	wi(int64(c.Options.Nah))
	wi(c.Options.Memmin)
	wb(c.Options.NodeCombine)
	wb(c.Options.TwoLayer)
	wb(c.Options.DisableGroups)
	wb(c.Options.DisableMemAware)
	wb(c.Options.DisableRemerge)

	// The strategy is part of the canonical form: a two-layer plan and
	// a two-phase plan for the same layout are different artifacts.
	// Length-prefixed so no strategy name can alias another's encoding.
	wi(int64(len(c.Strategy)))
	io.WriteString(h, c.Strategy)

	wi(int64(len(c.Views)))
	for _, v := range c.Views {
		wi(int64(len(v)))
		for _, s := range v {
			wi(s.Off)
			wi(s.Len)
		}
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}
