package pland

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/ring"
)

// Forwarding-protocol headers. X-Forwarded-By carries the proxying
// shard's ID and doubles as the loop guard: a daemon never re-forwards
// a request that already took its one internal hop — if the ring views
// disagree (a peer marked dead, a mid-deploy membership skew), the
// receiving daemon serves locally rather than bouncing the request
// around the ring.
const (
	headerForwardedBy = "X-Forwarded-By"
	headerServedBy    = "X-Served-By"
)

// forwardTimeout bounds one internal hop. It is deliberately generous:
// the owner may be computing the plan (a cold miss under load), and
// the fallback on expiry is a local compute, not a client error.
const forwardTimeout = 30 * time.Second

// peer is one remote cluster member as seen from this daemon.
type peer struct {
	id  string
	url string
	// up is flipped by the health probe loop and, eagerly, by a failed
	// forward, so one dead shard costs at most one timeout per peer
	// before everyone routes around it.
	up     atomic.Bool
	gauge  *metrics.Gauge
	lastMu sync.Mutex
	last   string // last probe/forward error, for /debug/ring
}

// setUp records a health transition.
func (p *peer) setUp(ok bool, errMsg string) {
	p.up.Store(ok)
	if ok {
		p.gauge.Set(1)
		errMsg = ""
	} else {
		p.gauge.Set(0)
	}
	p.lastMu.Lock()
	p.last = errMsg
	p.lastMu.Unlock()
}

// lastErr returns the most recent probe or forward error.
func (p *peer) lastErr() string {
	p.lastMu.Lock()
	defer p.lastMu.Unlock()
	return p.last
}

// clusterState is everything a daemon needs to act as one shard of a
// plan-serving ring: the placement ring, the peer table with health,
// the forwarding client, and the hot-key tracker that decides when a
// non-owned fingerprint is worth replicating locally.
type clusterState struct {
	self   string
	ring   *ring.Ring
	vnodes int
	peers  map[string]*peer // remote members only
	client *http.Client
	hot    *hotTracker

	probeEvery time.Duration
	stop       chan struct{}
	wg         sync.WaitGroup

	forwards     func(outcome string) *metrics.Counter
	forwardedIn  *metrics.Counter
	replicaHits  *metrics.Counter
	replicaFills *metrics.Counter
	fallbacks    *metrics.Counter
}

// newClusterState wires the ring, peers, and metrics. peers maps every
// member ID (including self) to its base URL.
func newClusterState(self string, peers map[string]string, vnodes int,
	hot *hotTracker, probeEvery time.Duration, reg *metrics.Registry) (*clusterState, error) {
	if _, ok := peers[self]; !ok {
		return nil, fmt.Errorf("pland: shard ID %q is not in the peer list", self)
	}
	ids := make([]string, 0, len(peers))
	for id := range peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	if vnodes <= 0 {
		vnodes = ring.DefaultVnodes
	}
	c := &clusterState{
		self:   self,
		ring:   ring.New(ids, vnodes),
		vnodes: vnodes,
		peers:  make(map[string]*peer, len(peers)-1),
		client: &http.Client{
			Timeout: forwardTimeout,
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     60 * time.Second,
			},
		},
		hot:        hot,
		probeEvery: probeEvery,
		stop:       make(chan struct{}),
		forwardedIn: reg.Counter("mccio_pland_forwarded_in_total",
			"Requests served on behalf of a peer shard (X-Forwarded-By present)."),
		replicaHits: reg.Counter("mccio_pland_replica_hits_total",
			"Non-owned fingerprints served from the local replica cache."),
		replicaFills: reg.Counter("mccio_pland_replica_fills_total",
			"Owner responses cached locally because the fingerprint is hot."),
		fallbacks: reg.Counter("mccio_pland_forward_fallbacks_total",
			"Forwards that failed at transport level and fell back to local compute."),
	}
	c.forwards = func(outcome string) *metrics.Counter {
		return reg.Counter("mccio_pland_forwards_total",
			"Requests proxied to their owner shard, by outcome.",
			"outcome", outcome)
	}
	for _, id := range ids {
		if id == self {
			continue
		}
		p := &peer{id: id, url: peers[id],
			gauge: reg.Gauge("mccio_pland_peer_up",
				"Peer shard health as seen by this daemon (1 = answering /healthz).",
				"peer", id)}
		// Optimistic start: peers are presumed up until a probe or a
		// forward says otherwise, so a cluster booting in any order
		// forwards from the first request.
		p.setUp(true, "")
		c.peers[id] = p
	}
	return c, nil
}

// startProbes launches one health-probe loop per remote peer.
func (c *clusterState) startProbes() {
	for _, p := range c.peers {
		c.wg.Add(1)
		go c.probeLoop(p)
	}
}

// stopProbes halts the probe loops, waits for them, and releases the
// forwarding client's keep-alive connections so peer daemons can drain
// without waiting on this one's idle conns.
func (c *clusterState) stopProbes() {
	close(c.stop)
	c.wg.Wait()
	c.client.CloseIdleConnections()
}

// probeLoop polls one peer's /healthz until the cluster shuts down. A
// 200 marks the peer up; an error or any other status (503 while the
// peer drains) marks it down so placement routes around it.
func (c *clusterState) probeLoop(p *peer) {
	defer c.wg.Done()
	tick := time.NewTicker(c.probeEvery)
	defer tick.Stop()
	probeClient := &http.Client{Timeout: c.probeEvery * 4}
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		resp, err := probeClient.Get(p.url + "/healthz")
		switch {
		case err != nil:
			p.setUp(false, err.Error())
		case resp.StatusCode != http.StatusOK:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			p.setUp(false, resp.Status)
		default:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			p.setUp(true, "")
		}
	}
}

// route returns the shard that should serve fp right now: the first
// healthy member of the fingerprint's replica order. Every daemon
// computes the same order from the same ring, so while health views
// agree, exactly one shard computes each plan. With the owner down the
// next replica takes over deterministically; with everything down the
// local daemon serves itself — degraded routing never fails a request.
func (c *clusterState) route(fp string) string {
	for _, id := range c.ring.Replicas(fp, c.ring.Len()) {
		if id == c.self {
			return id
		}
		if p := c.peers[id]; p != nil && p.up.Load() {
			return id
		}
	}
	return c.self
}

// forwardResult is the owner's answer to a proxied plan request.
type forwardResult struct {
	status int
	cache  string // the owner's X-Cache verdict
	body   []byte
}

// forward proxies a plan request body to the owner shard, propagating
// the request ID so both daemons log the same one. A transport-level
// failure eagerly marks the peer down (the probe loop will bring it
// back) and returns an error; the caller falls back to local compute.
func (c *clusterState) forward(p *peer, rawBody []byte, rid string) (*forwardResult, error) {
	req, err := http.NewRequest(http.MethodPost, p.url+"/v1/plan", bytes.NewReader(rawBody))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(headerForwardedBy, c.self)
	req.Header.Set("X-Request-ID", rid)
	resp, err := c.client.Do(req)
	if err != nil {
		p.setUp(false, err.Error())
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		p.setUp(false, err.Error())
		return nil, err
	}
	if resp.StatusCode >= 500 {
		// A 5xx is the peer failing, not the request: treat it like a
		// transport error and compute locally.
		return nil, fmt.Errorf("pland: peer %s answered %s", p.id, resp.Status)
	}
	return &forwardResult{
		status: resp.StatusCode,
		cache:  resp.Header.Get("X-Cache"),
		body:   body,
	}, nil
}

// RingMember is one member's row in the /debug/ring response.
type RingMember struct {
	// ID is the member's shard ID; URL its base URL (empty for self).
	ID  string `json:"id"`
	URL string `json:"url,omitempty"`
	// Self marks the answering daemon's own row.
	Self bool `json:"self"`
	// Up is the member's health as seen from this daemon (self is
	// always up). LastError is the most recent probe or forward
	// failure while down.
	Up        bool   `json:"up"`
	LastError string `json:"last_error,omitempty"`
	// Share is the fraction of the fingerprint keyspace the member
	// owns — exact ring arc length, not a sample.
	Share float64 `json:"share"`
}

// RingStatus is the body of GET /debug/ring: the daemon's view of the
// cluster — membership, health, ownership shares, and the hot-key
// replication state.
type RingStatus struct {
	// ShardID is the answering daemon's ring name.
	ShardID string `json:"shard_id"`
	// Vnodes is the per-member virtual-node count.
	Vnodes int `json:"vnodes"`
	// HotThreshold and HotWindowS describe the replication policy:
	// a fingerprint seen HotThreshold times within the sliding window
	// is served from any shard's local copy.
	HotThreshold int     `json:"hot_threshold"`
	HotWindowS   float64 `json:"hot_window_s"`
	// HotKeys is how many fingerprints are currently over the
	// threshold on this shard.
	HotKeys int `json:"hot_keys"`
	// Members lists every ring member in sorted ID order.
	Members []RingMember `json:"members"`
}

// status builds the /debug/ring body.
func (c *clusterState) status(shardID string, threshold int, window time.Duration) RingStatus {
	st := RingStatus{
		ShardID:      shardID,
		Vnodes:       c.vnodes,
		HotThreshold: threshold,
		HotWindowS:   window.Seconds(),
		HotKeys:      c.hot.HotCount(time.Now()),
	}
	shares := c.ring.Shares()
	for _, id := range c.ring.Members() {
		m := RingMember{ID: id, Share: shares[id]}
		if id == c.self {
			m.Self, m.Up = true, true
		} else if p := c.peers[id]; p != nil {
			m.URL = p.url
			m.Up = p.up.Load()
			m.LastError = p.lastErr()
		}
		st.Members = append(st.Members, m)
	}
	return st
}
