package pland

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/pfs"
)

// testRequest builds a valid plan request on a small testbed with the
// given per-rank layouts.
func testRequest(ranks [][]Extent) PlanRequest {
	mc := cluster.TestbedConfig(2)
	mc.MemPerNode = 16 * cluster.MiB
	return PlanRequest{Cluster: mc, FS: pfs.DefaultConfig(), Ranks: ranks}
}

// fp canonicalizes and fingerprints, failing the test on invalid input.
func fp(t *testing.T, r PlanRequest) string {
	t.Helper()
	c, err := r.canonicalize()
	if err != nil {
		t.Fatalf("canonicalize: %v", err)
	}
	return c.Fingerprint()
}

func TestFingerprintPermutationInvariant(t *testing.T) {
	a := testRequest([][]Extent{{{0, 4096}, {8192, 4096}, {65536, 1024}}})
	b := testRequest([][]Extent{{{65536, 1024}, {0, 4096}, {8192, 4096}}})
	if fp(t, a) != fp(t, b) {
		t.Fatal("permuted extent order changed the fingerprint")
	}
}

func TestFingerprintSplitInvariant(t *testing.T) {
	// One 128 KiB run vs the same run split at an arbitrary interior
	// point vs the same run with an overlapping repaint.
	whole := testRequest([][]Extent{{{4096, 128 << 10}}})
	split := testRequest([][]Extent{{{4096, 50000}, {54096, 128<<10 - 50000}}})
	overlap := testRequest([][]Extent{{{4096, 100 << 10}, {65536, 128<<10 - 61440}}})
	if fp(t, whole) != fp(t, split) {
		t.Fatal("splitting a contiguous run changed the fingerprint")
	}
	if fp(t, whole) != fp(t, overlap) {
		t.Fatal("overlapping cover of the same bytes changed the fingerprint")
	}
}

func TestFingerprintZeroLenDropped(t *testing.T) {
	a := testRequest([][]Extent{{{0, 4096}}})
	b := testRequest([][]Extent{{{0, 4096}, {9999, 0}}})
	if fp(t, a) != fp(t, b) {
		t.Fatal("a zero-length extent changed the fingerprint")
	}
}

func TestFingerprintDefaultSpelling(t *testing.T) {
	// nil Options vs the derived defaults spelled out, and MemFloor 0
	// vs the default Validate fills — all the same request.
	implicit := testRequest([][]Extent{{{0, 1 << 20}}})
	explicit := implicit
	mc, fc := implicit.Cluster, implicit.FS
	if err := mc.Validate(); err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions(mc, fc)
	explicit.Options = &opts

	spelled := implicit
	spelled.Cluster.MemFloor = mc.MemFloor // the filled default

	if fp(t, implicit) != fp(t, explicit) {
		t.Fatal("spelling out the default options changed the fingerprint")
	}
	if fp(t, implicit) != fp(t, spelled) {
		t.Fatal("spelling out the default MemFloor changed the fingerprint")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := testRequest([][]Extent{{{0, 4096}}, {{4096, 4096}}})
	cases := map[string]PlanRequest{
		"extent length": testRequest([][]Extent{{{0, 8192}}, {{4096, 4096}}}),
		"extent offset": testRequest([][]Extent{{{512, 4096}}, {{4096, 4096}}}),
		"rank count":    testRequest([][]Extent{{{0, 4096}}}),
		"rank swap":     testRequest([][]Extent{{{4096, 4096}}, {{0, 4096}}}),
	}
	mem := base
	mem.Cluster.MemPerNode *= 2
	cases["platform memory"] = mem
	opt := base
	o := core.Options{Msgind: 1 << 20, Msggroup: 1 << 26, Nah: 2, Memmin: 1 << 20}
	opt.Options = &o
	cases["options"] = opt

	bfp := fp(t, base)
	for name, r := range cases {
		if fp(t, r) == bfp {
			t.Errorf("changing %s did not change the fingerprint", name)
		}
	}
}

func TestFingerprintNoCollisions(t *testing.T) {
	// 10k distinct layouts — distinct offsets, lengths, and rank
	// structures — must key 10k distinct slots.
	seen := make(map[string]string, 10000)
	for i := 0; i < 10000; i++ {
		off := int64(i) * 512
		ln := int64(4096 + (i%97)*128)
		ranks := [][]Extent{{{off, ln}}, {{off + 1<<30, ln + int64(i)}}}
		if i%3 == 0 {
			ranks = append(ranks, []Extent{{int64(i) << 16, 8192}})
		}
		key := fp(t, testRequest(ranks))
		if prev, dup := seen[key]; dup {
			t.Fatalf("layout %d collides with %s on %s", i, prev, key)
		}
		seen[key] = fmt.Sprintf("layout %d", i)
	}
}

// FuzzFingerprintCanonical checks the canonicalization contract under
// arbitrary extents: permuting a rank's extent order never changes the
// fingerprint, and splitting one extent at an interior point never
// changes it either.
func FuzzFingerprintCanonical(f *testing.F) {
	f.Add(int64(0), int64(4096), int64(8192), int64(4096), int64(1024))
	f.Add(int64(100), int64(1), int64(101), int64(1), int64(0))
	f.Add(int64(1<<40), int64(1<<20), int64(0), int64(0), int64(1<<19))
	f.Fuzz(func(t *testing.T, off1, len1, off2, len2, split int64) {
		clamp := func(v, hi int64) int64 {
			if v < 0 {
				v = -v
			}
			if v < 0 || v > hi { // -MinInt64 stays negative
				return hi
			}
			return v
		}
		off1, len1 = clamp(off1, 1<<45), clamp(len1, 1<<30)
		off2, len2 = clamp(off2, 1<<45), clamp(len2, 1<<30)
		e1, e2 := Extent{off1, len1}, Extent{off2, len2}

		a := fp(t, testRequest([][]Extent{{e1, e2}}))
		b := fp(t, testRequest([][]Extent{{e2, e1}}))
		if a != b {
			t.Fatalf("permutation changed fingerprint: %v %v", e1, e2)
		}
		if len1 >= 2 {
			cut := 1 + clamp(split, len1-2)
			parts := []Extent{{off1, cut}, {off1 + cut, len1 - cut}, e2}
			c := fp(t, testRequest([][]Extent{parts}))
			if a != c {
				t.Fatalf("split at %d changed fingerprint: %v %v", cut, e1, e2)
			}
		}
	})
}
