package pland

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/sweep"
)

func TestCacheHitReturnsSameBytes(t *testing.T) {
	c := NewCache(8, nil)
	want := []byte("plan-bytes")
	got, st, err := c.Get("k", func() ([]byte, error) { return want, nil })
	if err != nil || st != StatusMiss || string(got) != "plan-bytes" {
		t.Fatalf("miss: got %q status %v err %v", got, st, err)
	}
	got2, st2, err := c.Get("k", func() ([]byte, error) {
		t.Fatal("hit must not recompute")
		return nil, nil
	})
	if err != nil || st2 != StatusHit {
		t.Fatalf("hit: status %v err %v", st2, err)
	}
	if &got[0] != &got2[0] {
		t.Fatal("hit returned a different byte slice than the miss stored")
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(4, nil)
	var computes atomic.Int64
	get := func(k string) {
		c.Get(k, func() ([]byte, error) {
			computes.Add(1)
			return []byte(k), nil
		})
	}
	for i := 0; i < 10; i++ {
		get(fmt.Sprintf("k%d", i))
	}
	if c.Len() != 4 {
		t.Fatalf("capacity 4 holds %d entries", c.Len())
	}
	if computes.Load() != 10 {
		t.Fatalf("10 distinct keys ran the planner %d times", computes.Load())
	}
	// k0 was evicted long ago: a re-Get recomputes. k9 is resident.
	get("k0")
	if computes.Load() != 11 {
		t.Fatal("evicted key did not recompute")
	}
	get("k9")
	if computes.Load() != 11 {
		t.Fatal("resident key recomputed")
	}
}

func TestCacheLRUOrder(t *testing.T) {
	c := NewCache(2, nil)
	var computes atomic.Int64
	get := func(k string) {
		c.Get(k, func() ([]byte, error) {
			computes.Add(1)
			return []byte(k), nil
		})
	}
	get("a")
	get("b")
	get("a") // a is now most recent
	get("c") // evicts b, not a
	get("a") // still resident
	want := int64(3)
	if computes.Load() != want {
		t.Fatalf("planner ran %d times, want %d (LRU should have kept a)", computes.Load(), want)
	}
	get("b") // was evicted
	if computes.Load() != want+1 {
		t.Fatal("evicted b did not recompute")
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(4, nil)
	boom := errors.New("boom")
	if _, _, err := c.Get("k", func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	got, st, err := c.Get("k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || st != StatusMiss || string(got) != "ok" {
		t.Fatalf("error was cached: %q %v %v", got, st, err)
	}
}

// TestCacheSingleflightStress is the -race workhorse: many goroutines
// hammer a Zipf-skewed key set whose size is under the capacity, so
// the planner must run exactly once per distinct key touched — every
// concurrent duplicate either hits or coalesces.
func TestCacheSingleflightStress(t *testing.T) {
	const (
		goroutines = 16
		iters      = 300
		keys       = 12
	)
	c := NewCache(64, nil)
	var computes [keys]atomic.Int64
	zipf := stats.NewZipf(keys, 1.1)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := stats.NewRNG(sweep.Seed(7, g))
			for i := 0; i < iters; i++ {
				k := zipf.Sample(rng)
				key := fmt.Sprintf("key-%d", k)
				val, _, err := c.Get(key, func() ([]byte, error) {
					computes[k].Add(1)
					time.Sleep(time.Millisecond) // widen the coalescing window
					return []byte(key), nil
				})
				if err != nil {
					t.Errorf("get %s: %v", key, err)
					return
				}
				if string(val) != key {
					t.Errorf("get %s returned %q — lost update", key, val)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for k := range computes {
		if n := computes[k].Load(); n > 1 {
			t.Errorf("key %d ran the planner %d times — singleflight broken", k, n)
		} else {
			total += n
		}
	}
	if total == 0 {
		t.Fatal("planner never ran")
	}
	if c.Len() > keys {
		t.Fatalf("cache holds %d entries for %d keys", c.Len(), keys)
	}
}

// TestCacheEvictionStress races eviction against singleflight: the
// key space exceeds capacity so entries churn, and the invariants that
// must hold are bounded size and value integrity — recomputation is
// expected here, exactly-once is not.
func TestCacheEvictionStress(t *testing.T) {
	const (
		goroutines = 8
		iters      = 200
		keys       = 32
		capacity   = 8
	)
	c := NewCache(capacity, nil)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := stats.NewRNG(sweep.Seed(11, g))
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("key-%d", rng.Intn(keys))
				val, _, err := c.Get(key, func() ([]byte, error) { return []byte(key), nil })
				if err != nil || string(val) != key {
					t.Errorf("get %s: %q %v", key, val, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > capacity {
		t.Fatalf("cache grew to %d entries past capacity %d", c.Len(), capacity)
	}
}
