package pland

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/pfs"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// LoadSpec drives RunLoad: a closed-loop load generator where
// Concurrency clients each issue requests back-to-back. The first Keys
// requests sweep every layout once (a deterministic warm pass); after
// that, which layout to ask for is drawn from a Zipf(ZipfS) popularity
// distribution — the skew that makes a plan cache worth having.
type LoadSpec struct {
	// URL is the daemon's base URL, e.g. "http://127.0.0.1:9100".
	URL string
	// URLs, when it has two or more entries, switches the generator to
	// cluster mode: request i goes to URLs[i % len(URLs)] — a
	// deterministic round-robin spray across the ring, the access
	// pattern of clients behind a dumb load balancer — and the report
	// gains a per-shard breakdown. Empty falls back to URL.
	URLs []string
	// Requests is the total request count; <= 0 means 200.
	Requests int
	// Concurrency is the closed-loop client count; <= 0 means 8.
	Concurrency int
	// Keys is the number of distinct request layouts; <= 0 means 32.
	Keys int
	// ZipfS is the popularity skew (0 = uniform); < 0 means 1.1.
	ZipfS float64
	// Ranks is the per-request rank count; <= 0 means 16.
	Ranks int
	// Nodes sizes the generated platform; <= 0 means 4.
	Nodes int
	// SimEvery routes every Nth request to /v1/simulate instead of
	// /v1/plan; 0 means plans only.
	SimEvery int
	// Seed derives each client's RNG; 0 means 1.
	Seed uint64
}

// LoadReport is RunLoad's result. The JSON field names are part of the
// CI contract: the serve-smoke job asserts on them with jq.
type LoadReport struct {
	Requests    int `json:"requests"`
	Errors      int `json:"errors"`
	Shed        int `json:"shed"`
	Hits        int `json:"hits"`
	Misses      int `json:"misses"`
	Coalesced   int `json:"coalesced"`
	Simulations int `json:"simulations"`
	// Cluster-mode verdicts, zero against a single node: ReplicaHits
	// are plans served from a non-owner shard's local copy,
	// ForwardHits/ForwardMisses took the internal hop to the owner
	// (who had / had not the plan cached), and Forwarded is their sum.
	ReplicaHits   int `json:"replica_hits"`
	ForwardHits   int `json:"forward_hits"`
	ForwardMisses int `json:"forward_misses"`
	Forwarded     int `json:"forwarded"`
	// ElapsedS is the wall-clock run duration in seconds.
	ElapsedS float64 `json:"elapsed_s"`
	// ThroughputRPS is completed requests per wall-clock second.
	ThroughputRPS float64 `json:"throughput_rps"`
	// Latency percentiles over all completed requests, milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	// HitRate is (hits+coalesced) / plan lookups — the fraction of
	// plan requests that did not run the planner.
	HitRate float64 `json:"hit_rate"`
	// StatusCounts tallies responses by HTTP status code ("200",
	// "429", ...); transport failures that never got a status count
	// under "net".
	StatusCounts map[string]int `json:"status_counts"`
	// ErrorRate is the fraction of requests that did not return 2xx —
	// sheds, client/server errors, and transport failures combined.
	ErrorRate float64 `json:"error_rate"`
	// Shards is the per-endpoint breakdown, present only in cluster
	// mode (two or more URLs), ordered as the URLs were given.
	Shards []ShardReport `json:"shards,omitempty"`
}

// ShardReport is one endpoint's slice of a cluster-mode load run, as
// observed from the client side.
type ShardReport struct {
	// URL is the shard's base URL.
	URL string `json:"url"`
	// Requests is how many requests this shard was sent; Errors counts
	// its non-2xx and transport failures.
	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	// Hits through ForwardMisses break plan lookups down by X-Cache
	// verdict at this shard.
	Hits          int `json:"hits"`
	Misses        int `json:"misses"`
	Coalesced     int `json:"coalesced"`
	ReplicaHits   int `json:"replica_hits"`
	ForwardHits   int `json:"forward_hits"`
	ForwardMisses int `json:"forward_misses"`
	// HitRate is the fraction of this shard's plan lookups that did
	// not run the planner anywhere in the cluster.
	HitRate float64 `json:"hit_rate"`
	// P50Ms, P95Ms, P99Ms are this shard's latency percentiles.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// withDefaults fills the spec's zero values.
func (s LoadSpec) withDefaults() LoadSpec {
	if len(s.URLs) == 0 {
		s.URLs = []string{s.URL}
	}
	if s.Requests <= 0 {
		s.Requests = 200
	}
	if s.Concurrency <= 0 {
		s.Concurrency = 8
	}
	if s.Keys <= 0 {
		s.Keys = 32
	}
	if s.ZipfS < 0 {
		s.ZipfS = 1.1
	}
	if s.Ranks <= 0 {
		s.Ranks = 16
	}
	if s.Nodes <= 0 {
		s.Nodes = 4
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// loadBodies precomputes one plan body and one simulate body per key.
// Key k's layout is an IOR-style interleave whose block size depends on
// k, so distinct keys fingerprint distinctly while every body stays
// cheap to plan.
func loadBodies(s LoadSpec) (plan, sim [][]byte, err error) {
	mc := cluster.TestbedConfig(s.Nodes)
	mc.MemPerNode = 64 * cluster.MiB
	fc := pfs.DefaultConfig()
	if s.Ranks > s.Nodes*mc.CoresPerNode {
		return nil, nil, fmt.Errorf("pland: %d ranks exceed the %d-node machine", s.Ranks, s.Nodes)
	}
	plan = make([][]byte, s.Keys)
	sim = make([][]byte, s.Keys)
	for k := 0; k < s.Keys; k++ {
		block := int64(64<<10 + k*4096)
		ranks := make([][]Extent, s.Ranks)
		for i := range ranks {
			for seg := int64(0); seg < 2; seg++ {
				off := (seg*int64(s.Ranks) + int64(i)) * block
				ranks[i] = append(ranks[i], Extent{Off: off, Len: block})
			}
		}
		req := PlanRequest{Cluster: mc, FS: fc, Ranks: ranks}
		if plan[k], err = json.Marshal(req); err != nil {
			return nil, nil, err
		}
		if sim[k], err = json.Marshal(SimRequest{PlanRequest: req, Op: "write"}); err != nil {
			return nil, nil, err
		}
	}
	return plan, sim, nil
}

// shardCounts is one client's tally against one shard, merged after
// the run.
type shardCounts struct {
	requests, errors, shed, sims                                     int
	hits, misses, coalesced, replicaHits, forwardHits, forwardMisses int
	status                                                           map[string]int
	latencies                                                        []float64 // seconds
}

// loadCounts is one client's tally: one shardCounts per target URL.
type loadCounts struct {
	shards []shardCounts
}

// addStatus bumps one status-code bucket ("200", "429", or "net" for a
// transport failure).
func (c *shardCounts) addStatus(code string) {
	if c.status == nil {
		c.status = make(map[string]int)
	}
	c.status[code]++
}

// addVerdict buckets one OK plan response by its X-Cache verdict.
func (c *shardCounts) addVerdict(verdict string) {
	switch verdict {
	case "hit":
		c.hits++
	case "coalesced":
		c.coalesced++
	case "replica-hit":
		c.replicaHits++
	case "forward-hit":
		c.forwardHits++
	case "forward-miss":
		c.forwardMisses++
	default:
		c.misses++
	}
}

// lookups is the shard's plan-lookup count; served is how many of
// them avoided a planner run anywhere in the cluster.
func (c *shardCounts) lookups() (lookups, served int) {
	lookups = c.hits + c.misses + c.coalesced + c.replicaHits + c.forwardHits + c.forwardMisses
	served = c.hits + c.coalesced + c.replicaHits + c.forwardHits
	return
}

// RunLoad drives the daemon — or, with multiple URLs, the whole ring —
// with spec and reports throughput, latency percentiles, and cache
// behavior as observed from the client side (X-Cache headers). It is
// the engine behind cmd/mccio-loadgen and the serve benchmark
// experiment.
func RunLoad(spec LoadSpec) (*LoadReport, error) {
	spec = spec.withDefaults()
	planBodies, simBodies, err := loadBodies(spec)
	if err != nil {
		return nil, err
	}
	zipf := stats.NewZipf(spec.Keys, spec.ZipfS)
	client := &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        spec.Concurrency * 2,
			MaxIdleConnsPerHost: spec.Concurrency * 2,
		},
	}

	var next atomic.Int64
	counts := make([]loadCounts, spec.Concurrency)
	for w := range counts {
		counts[w].shards = make([]shardCounts, len(spec.URLs))
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < spec.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := stats.NewRNG(sweep.Seed(spec.Seed, w))
			for {
				i := int(next.Add(1)) - 1
				if i >= spec.Requests {
					return
				}
				// The first Keys requests sweep every layout once — a
				// deterministic warm pass, so the planner runs exactly
				// once per key regardless of the Zipf tail — then the
				// skewed phase begins.
				key := i
				if i >= spec.Keys {
					key = zipf.Sample(rng)
				}
				shard := i % len(spec.URLs)
				tally := &counts[w].shards[shard]
				tally.requests++
				url, body := spec.URLs[shard]+"/v1/plan", planBodies[key]
				isSim := spec.SimEvery > 0 && i >= spec.Keys && i%spec.SimEvery == 0
				if isSim {
					url, body = spec.URLs[shard]+"/v1/simulate", simBodies[key]
					tally.sims++
				}
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					tally.errors++
					tally.addStatus("net")
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				tally.latencies = append(tally.latencies, time.Since(t0).Seconds())
				tally.addStatus(fmt.Sprintf("%d", resp.StatusCode))
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					tally.shed++
				case resp.StatusCode != http.StatusOK:
					tally.errors++
				case !isSim:
					tally.addVerdict(resp.Header.Get("X-Cache"))
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	// Release the keep-alive pool now rather than at GC: a conn the
	// transport dialed but never used sits in StateNew server-side,
	// where a graceful Shutdown waits ~5s before reaping it.
	client.CloseIdleConnections()

	rep := &LoadReport{
		Requests:     spec.Requests,
		ElapsedS:     elapsed,
		StatusCounts: make(map[string]int),
	}
	// Fold the per-worker tallies into one merged shardCounts per URL,
	// then the shard rows into the cluster-wide report.
	merged := make([]shardCounts, len(spec.URLs))
	for w := range counts {
		for s := range counts[w].shards {
			m, c := &merged[s], &counts[w].shards[s]
			m.requests += c.requests
			m.errors += c.errors
			m.shed += c.shed
			m.sims += c.sims
			m.hits += c.hits
			m.misses += c.misses
			m.coalesced += c.coalesced
			m.replicaHits += c.replicaHits
			m.forwardHits += c.forwardHits
			m.forwardMisses += c.forwardMisses
			if len(c.status) > 0 && m.status == nil {
				m.status = make(map[string]int)
			}
			for code, n := range c.status {
				m.status[code] += n
			}
			m.latencies = append(m.latencies, c.latencies...)
		}
	}
	var lats []float64
	for s := range merged {
		m := &merged[s]
		rep.Errors += m.errors
		rep.Shed += m.shed
		rep.Hits += m.hits
		rep.Misses += m.misses
		rep.Coalesced += m.coalesced
		rep.ReplicaHits += m.replicaHits
		rep.ForwardHits += m.forwardHits
		rep.ForwardMisses += m.forwardMisses
		rep.Simulations += m.sims
		for code, n := range m.status {
			rep.StatusCounts[code] += n
		}
		lats = append(lats, m.latencies...)
		if len(spec.URLs) > 1 {
			rep.Shards = append(rep.Shards, shardReport(spec.URLs[s], m))
		}
	}
	rep.Forwarded = rep.ForwardHits + rep.ForwardMisses
	if spec.Requests > 0 {
		rep.ErrorRate = float64(rep.Errors+rep.Shed) / float64(spec.Requests)
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(len(lats)) / elapsed
	}
	sort.Float64s(lats)
	rep.P50Ms = stats.Percentile(lats, 50) * 1e3
	rep.P95Ms = stats.Percentile(lats, 95) * 1e3
	rep.P99Ms = stats.Percentile(lats, 99) * 1e3
	if lookups, served := foldLookups(merged); lookups > 0 {
		rep.HitRate = float64(served) / float64(lookups)
	}
	return rep, nil
}

// foldLookups sums lookup and served counts across merged shard
// tallies.
func foldLookups(merged []shardCounts) (lookups, served int) {
	for s := range merged {
		l, sv := merged[s].lookups()
		lookups += l
		served += sv
	}
	return
}

// shardReport builds one shard's report row from its merged tally.
func shardReport(url string, m *shardCounts) ShardReport {
	sr := ShardReport{
		URL:           url,
		Requests:      m.requests,
		Errors:        m.errors,
		Hits:          m.hits,
		Misses:        m.misses,
		Coalesced:     m.coalesced,
		ReplicaHits:   m.replicaHits,
		ForwardHits:   m.forwardHits,
		ForwardMisses: m.forwardMisses,
	}
	if lookups, served := m.lookups(); lookups > 0 {
		sr.HitRate = float64(served) / float64(lookups)
	}
	sort.Float64s(m.latencies)
	sr.P50Ms = stats.Percentile(m.latencies, 50) * 1e3
	sr.P95Ms = stats.Percentile(m.latencies, 95) * 1e3
	sr.P99Ms = stats.Percentile(m.latencies, 99) * 1e3
	return sr
}
