package ring

import (
	"fmt"
	"math"
	"testing"
)

// testKeys returns n distinct fingerprint-shaped keys.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%032x", i*2654435761)
	}
	return keys
}

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("shard-%d", i)
	}
	return out
}

func TestDeterministicPlacement(t *testing.T) {
	// Two rings built from the same member set — different input order,
	// with duplicates — must agree on every key. This is the property
	// that lets every daemon route independently: placement is a pure
	// function of the membership, not of construction history.
	a := New([]string{"s1", "s2", "s3"}, 64)
	b := New([]string{"s3", "s1", "s2", "s1"}, 64)
	for _, key := range testKeys(5000) {
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("owner of %q differs between identically-membered rings: %q vs %q",
				key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestPlacementGolden(t *testing.T) {
	// Frozen key->owner pairs: placement must be stable across
	// processes, platforms, and releases, because every daemon in a
	// cluster computes it independently. If this test fails, the hash
	// or point layout changed and a rolling cluster would disagree on
	// ownership mid-deploy — change fingerprintVersion-style versioning
	// before shipping such a change.
	r := New([]string{"s1", "s2", "s3"}, 64)
	golden := map[string]string{
		"00000000000000000000000000000000": "s2",
		"deadbeefdeadbeefdeadbeefdeadbeef": "s1",
		"0123456789abcdef0123456789abcdef": "s3",
	}
	for key, want := range golden {
		if got := r.Owner(key); got != want {
			t.Errorf("Owner(%q) = %q, want frozen %q", key, got, want)
		}
	}
}

func TestJoinMovesBoundedKeys(t *testing.T) {
	// Adding one member to an N-member ring must move at most about
	// keys/(N+1) keys — the consistent-hashing contract — and every
	// moved key must move TO the new member.
	const n, keys, vnodes = 5, 20000, 128
	old := New(members(n), vnodes)
	grown := New(append(members(n), "shard-new"), vnodes)

	moved := 0
	for _, key := range testKeys(keys) {
		was, now := old.Owner(key), grown.Owner(key)
		if was == now {
			continue
		}
		moved++
		if now != "shard-new" {
			t.Fatalf("key %q moved %q -> %q, not to the joining member", key, was, now)
		}
	}
	// Expected movement is keys/(n+1); allow 50% slack for vnode
	// variance at 128 points per member.
	bound := int(float64(keys) / float64(n+1) * 1.5)
	if moved == 0 || moved > bound {
		t.Fatalf("join moved %d of %d keys, want (0, %d]", moved, keys, bound)
	}
}

func TestLeaveMovesOnlyOrphanedKeys(t *testing.T) {
	// Removing a member must not move any key that member did not own:
	// the survivors' caches stay valid.
	const n, keys, vnodes = 5, 20000, 128
	full := New(members(n), vnodes)
	shrunk := New(members(n)[:n-1], vnodes)
	removed := members(n)[n-1]

	orphaned, moved := 0, 0
	for _, key := range testKeys(keys) {
		was, now := full.Owner(key), shrunk.Owner(key)
		if was == removed {
			orphaned++
			if now == removed {
				t.Fatalf("key %q still owned by removed member", key)
			}
			continue
		}
		if was != now {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the removed member moved anyway", moved)
	}
	bound := int(float64(keys) / float64(n) * 1.5)
	if orphaned == 0 || orphaned > bound {
		t.Fatalf("removed member owned %d of %d keys, want (0, %d]", orphaned, keys, bound)
	}
}

func TestReplicasDistinctAndOwnerFirst(t *testing.T) {
	r := New(members(4), 64)
	for _, key := range testKeys(500) {
		reps := r.Replicas(key, 3)
		if len(reps) != 3 {
			t.Fatalf("Replicas(%q, 3) = %v", key, reps)
		}
		if reps[0] != r.Owner(key) {
			t.Fatalf("replica[0] %q != owner %q", reps[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, m := range reps {
			if seen[m] {
				t.Fatalf("duplicate replica %q in %v", m, reps)
			}
			seen[m] = true
		}
	}
	if got := r.Replicas("k", 99); len(got) != 4 {
		t.Fatalf("Replicas capped at member count: got %d members", len(got))
	}
	if r.Replicas("k", 0) != nil {
		t.Fatal("Replicas(k, 0) should be nil")
	}
}

func TestSharesSumToOneAndBalance(t *testing.T) {
	r := New(members(3), 256)
	shares := r.Shares()
	var sum float64
	for _, m := range r.Members() {
		s := shares[m]
		sum += s
		// At 256 vnodes each member should own within [0.5x, 1.5x] of
		// the fair 1/3 share.
		if s < 1.0/3/2 || s > 1.5/3*1.5 {
			t.Fatalf("member %s owns implausible share %.3f", m, s)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1", sum)
	}
}

func TestEmptyAndSingleRing(t *testing.T) {
	empty := New(nil, 64)
	if empty.Owner("k") != "" || empty.Replicas("k", 2) != nil || empty.Len() != 0 {
		t.Fatal("empty ring must return zero values")
	}
	if len(empty.Shares()) != 0 {
		t.Fatal("empty ring has no shares")
	}
	one := New([]string{"solo"}, 1)
	if one.Owner("k") != "solo" {
		t.Fatal("single-member ring owns everything")
	}
	if s := one.Shares(); math.Abs(s["solo"]-1) > 1e-9 {
		t.Fatalf("single-point share %v, want 1", s["solo"])
	}
	if !one.Has("solo") || one.Has("other") {
		t.Fatal("Has membership wrong")
	}
}

func TestDefaultVnodes(t *testing.T) {
	r := New(members(2), 0)
	if got := len(r.points); got != 2*DefaultVnodes {
		t.Fatalf("vnodes<=0 built %d points, want %d", got, 2*DefaultVnodes)
	}
}
