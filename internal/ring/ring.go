// Package ring is the placement layer of the sharded plan-serving
// cluster: a consistent-hash ring that maps each plan fingerprint to
// the daemon that owns it.
//
// Each member is projected onto the 64-bit hash circle at Vnodes
// pseudo-random points (virtual nodes), and a key is owned by the
// member whose point is first at or clockwise after the key's hash.
// Virtual nodes smooth the ownership shares — with v points per member
// the expected share is 1/N with variance shrinking as v grows — and,
// crucially, bound reconfiguration cost: when a member joins or leaves
// an N-member ring, only about keys/N of the keyspace changes owner,
// and every moved key moves to (join) or away from (leave) the changed
// member. The rest of the cluster's caches stay warm.
//
// Placement is a pure function of the member set and the vnode count:
// two processes that build a ring from the same membership agree on
// every key's owner without any coordination, which is what lets each
// daemon in the cluster route requests independently. The hash is
// SHA-256-based, so placement does not depend on Go's map order,
// hash seed, or platform.
package ring

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count used when a Ring is built
// with vnodes <= 0. 64 points per member keeps the max/min ownership
// share within a few tens of percent on small clusters while keeping
// ring construction and memory trivial.
const DefaultVnodes = 64

// point is one virtual node on the hash circle.
type point struct {
	hash   uint64
	member int // index into members
}

// Ring is an immutable consistent-hash ring over a set of named
// members. Build one with New; lookups are safe for concurrent use
// without locking because the ring never mutates — reconfiguration
// (a member joining or leaving) builds a new Ring.
type Ring struct {
	members []string // sorted, unique
	vnodes  int
	points  []point // sorted by hash
}

// hash64 maps a string to a point on the 64-bit circle. SHA-256 is
// already the fingerprint hash elsewhere in the plan service; reusing
// it keeps placement independent of process, platform, and Go version.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.LittleEndian.Uint64(sum[:8])
}

// New builds a ring over members with vnodes virtual nodes per member
// (<= 0 means DefaultVnodes). Member order and duplicates do not
// matter: the member set alone determines placement. A ring over zero
// members is valid; every lookup then returns the zero value.
func New(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	uniq := append([]string(nil), members...)
	sort.Strings(uniq)
	uniq = compact(uniq)
	r := &Ring{members: uniq, vnodes: vnodes}
	r.points = make([]point, 0, len(uniq)*vnodes)
	for mi, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				hash:   hash64(m + "#" + strconv.Itoa(v)),
				member: mi,
			})
		}
	}
	// Ties on hash are broken by member order so that even a collision
	// (astronomically unlikely at 64 bits, but determinism should not
	// rest on luck) resolves identically in every process.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// compact removes adjacent duplicates from a sorted slice.
func compact(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the member set in sorted order. The caller must not
// modify the returned slice.
func (r *Ring) Members() []string { return r.members }

// Has reports whether id is a ring member.
func (r *Ring) Has(id string) bool {
	i := sort.SearchStrings(r.members, id)
	return i < len(r.members) && r.members[i] == id
}

// succ returns the index of the first point at or clockwise after h.
func (r *Ring) succ(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0 // wrap past the top of the circle
	}
	return i
}

// Owner returns the member that owns key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.members[r.points[r.succ(hash64(key))].member]
}

// Replicas returns the first n distinct members clockwise from key's
// hash — the key's replica set, with the owner first. n larger than
// the member count returns every member; the order is the fail-over
// order, so routing to Replicas(key, N)[1] when the owner is down is
// the same decision on every daemon.
func (r *Ring) Replicas(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i, steps := r.succ(hash64(key)), 0; steps < len(r.points); i, steps = (i+1)%len(r.points), steps+1 {
		mi := r.points[i].member
		if seen[mi] {
			continue
		}
		seen[mi] = true
		out = append(out, r.members[mi])
		if len(out) == n {
			break
		}
	}
	return out
}

// Shares returns each member's owned fraction of the hash keyspace —
// the exact arc lengths, not a sample — for observability surfaces
// like /debug/ring. An empty ring returns an empty map.
func (r *Ring) Shares() map[string]float64 {
	out := make(map[string]float64, len(r.members))
	if len(r.points) == 0 {
		return out
	}
	if len(r.points) == 1 {
		// One point owns the whole circle; 2^64 does not fit in the
		// uint64 arc arithmetic below.
		out[r.members[r.points[0].member]] = 1
		return out
	}
	const span = float64(1<<63) * 2 // 2^64 as a float
	for i, p := range r.points {
		// Keys hashing into (prev, p.hash] belong to p's member; the
		// first point also owns the wrap-around arc from the last point.
		var arc uint64
		if i == 0 {
			arc = p.hash + (^r.points[len(r.points)-1].hash + 1)
		} else {
			arc = p.hash - r.points[i-1].hash
		}
		out[r.members[p.member]] += float64(arc) / span
	}
	return out
}
