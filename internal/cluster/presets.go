package cluster

// Presets for the two machines the paper talks about: the testbed its
// experiments ran on, and the projected exascale design of Table 1.

const (
	KiB = int64(1) << 10
	MiB = int64(1) << 20
	GiB = int64(1) << 30

	// KB/MB/GB are the decimal units storage vendors (and the paper's
	// MB/s bandwidth figures) use.
	KB = int64(1e3)
	MB = int64(1e6)
	GB = int64(1e9)
)

// TestbedConfig models the paper's evaluation platform: a Linux cluster
// whose nodes have two 6-core Xeons (12 cores) and 24 GB of memory,
// DDR InfiniBand (~2 GB/s injection) with full cross-section bandwidth,
// and a DataDirect/Lustre storage backend. MemPerNode here is NOT the
// physical 24 GB but the aggregation-memory budget under study; the
// experiments sweep it, so callers override it per run.
func TestbedConfig(nodes int) Config {
	return Config{
		Nodes:        nodes,
		CoresPerNode: 12,
		MemPerNode:   128 * MiB, // overridden by experiment sweeps
		MemSigma:     0,
		MemBusBW:     25 * float64(GB), // per-node off-chip bandwidth (2010-era, Table 1)
		MemBusLat:    200e-9,
		NICBW:        1.5 * float64(GB), // Table 1 "Interconnect BW" 2010 column
		NICLat:       2e-6,
		// Full cross-section: bisection scales with node count.
		BisectionBW:  float64(nodes) * 1.5 * float64(GB) / 2,
		BisectionLat: 1e-6,
		// Shared pipe into the storage system; chosen so that the
		// simulated testbed lands near the paper's observed 1.6–2 GB/s
		// aggregate Lustre throughput at 1080 ranks.
		IONetBW:  2.4 * float64(GB),
		IONetLat: 20e-6,
		Seed:     1,
	}
}

// ExascaleConfig scales Table 1's 2018 projection down to a given node
// count while keeping its *ratios*: node concurrency grows 83×, node
// memory bandwidth only 16×, interconnect 33× — so per-core memory and
// per-core off-chip bandwidth shrink. Used by the Table 1 model and the
// extreme-scale extrapolation benches.
func ExascaleConfig(nodes int) Config {
	return Config{
		Nodes:        nodes,
		CoresPerNode: 1000,
		MemPerNode:   10 * GiB, // 10 PB / 1M nodes
		MemSigma:     0.5,      // high variance is the projected regime
		MemBusBW:     400 * float64(GB),
		MemBusLat:    100e-9,
		NICBW:        50 * float64(GB),
		NICLat:       1e-6,
		BisectionBW:  float64(nodes) * 50 * float64(GB) / 4,
		BisectionLat: 1e-6,
		IONetBW:      20e12 / 1e6 * float64(nodes), // 20 TB/s shared by 1M nodes, scaled
		IONetLat:     20e-6,
		Seed:         1,
	}
}
