// Package cluster models the compute side of an HPC machine: nodes with
// cores, a per-node memory capacity (optionally drawn from a clipped
// normal distribution to reproduce the paper's memory-variance setup),
// a per-node off-chip memory bus, per-node NICs, and a shared network
// bisection.
//
// The cluster also keeps a memory ledger per node. Collective I/O
// strategies allocate their aggregation buffers through the ledger, so
// "available memory on this host" — the quantity the paper's aggregator
// placement keys on — is a live, queryable value, and every run reports
// per-node high-water marks.
package cluster

import (
	"fmt"
	"strconv"

	"repro/internal/explain"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/resource"
	"repro/internal/stats"
)

// Config describes a machine. Bandwidths are bytes/second, latencies
// seconds, memory sizes bytes.
type Config struct {
	Nodes        int
	CoresPerNode int

	// MemPerNode is the nominal memory budget available for aggregation
	// buffers on each node. When MemSigma > 0, each node's actual
	// capacity is drawn from Normal(MemPerNode, MemSigma*MemPerNode)
	// clipped to [MemFloor, 2*MemPerNode]; this reproduces the paper's
	// "memory buffer sizes ... set up as random variables following a
	// normal distribution".
	MemPerNode int64
	MemSigma   float64 // σ as a fraction of MemPerNode
	MemFloor   int64   // lower clip for sampled capacity (default: MemPerNode/16, min 64 KiB)

	MemBusBW  float64 // off-chip memory bandwidth per node
	MemBusLat float64

	NICBW  float64 // injection bandwidth per node (each direction)
	NICLat float64

	BisectionBW  float64 // shared cross-machine fabric capacity
	BisectionLat float64

	IONetBW  float64 // shared link from compute fabric to the storage system
	IONetLat float64

	Seed uint64 // for memory-capacity sampling
}

// Validate fills defaults and rejects nonsensical configurations.
func (c *Config) Validate() error {
	if c.Nodes <= 0 || c.CoresPerNode <= 0 {
		return fmt.Errorf("cluster: need positive Nodes and CoresPerNode, got %d×%d", c.Nodes, c.CoresPerNode)
	}
	if c.MemPerNode <= 0 {
		return fmt.Errorf("cluster: MemPerNode must be positive, got %d", c.MemPerNode)
	}
	if c.MemSigma < 0 {
		return fmt.Errorf("cluster: negative MemSigma %g", c.MemSigma)
	}
	if c.MemBusBW <= 0 || c.NICBW <= 0 || c.BisectionBW <= 0 || c.IONetBW <= 0 {
		return fmt.Errorf("cluster: all bandwidths must be positive")
	}
	if c.MemFloor == 0 {
		c.MemFloor = c.MemPerNode / 16
		if c.MemFloor < 64<<10 {
			c.MemFloor = 64 << 10
		}
		if c.MemFloor > c.MemPerNode {
			c.MemFloor = c.MemPerNode
		}
	}
	return nil
}

// Node is one physical compute node.
type Node struct {
	ID       int
	Capacity int64 // aggregation-memory budget (after variance sampling)

	used      int64
	highWater int64
	tracer    *obs.Tracer // ledger counter events; nil disables

	// Metrics handles, resolved once at SetMetrics; nil disables with
	// zero per-update cost.
	memUsed *metrics.Gauge
	memPeak *metrics.Gauge

	MemBus *resource.Link // off-chip memory bandwidth, shared by all cores on the node
	NICTx  *resource.Link
	NICRx  *resource.Link
}

// Available returns the memory currently free on the node.
func (n *Node) Available() int64 { return n.Capacity - n.used }

// Used returns the memory currently allocated on the node.
func (n *Node) Used() int64 { return n.used }

// HighWater returns the peak allocation seen on the node.
func (n *Node) HighWater() int64 { return n.highWater }

// sample emits the node's current ledger allocation as a counter
// event when tracing is attached and updates the ledger gauges when
// metrics are attached.
func (n *Node) sample() {
	n.tracer.Counter(obs.CounterMem, obs.Loc{Rank: -1, Node: n.ID, Group: -1, Round: -1}, n.used)
	n.memUsed.Set(float64(n.used))
	n.memPeak.SetMax(float64(n.used))
}

// Alloc reserves b bytes if available, reporting success.
func (n *Node) Alloc(b int64) bool {
	if b < 0 {
		panic(fmt.Sprintf("cluster: negative alloc %d on node %d", b, n.ID))
	}
	if n.used+b > n.Capacity {
		return false
	}
	n.used += b
	if n.used > n.highWater {
		n.highWater = n.used
	}
	n.sample()
	return true
}

// MustAlloc reserves b bytes even if it overcommits the node. The
// overcommitted portion is still tracked, so reports show the pressure;
// it models a strategy that ignores memory limits (the baseline).
func (n *Node) MustAlloc(b int64) {
	if b < 0 {
		panic(fmt.Sprintf("cluster: negative alloc %d on node %d", b, n.ID))
	}
	n.used += b
	if n.used > n.highWater {
		n.highWater = n.used
	}
	n.sample()
}

// InjectPressure charges b bytes of fault-injected memory pressure to
// the node's ledger, as if a co-resident application claimed them. Like
// MustAlloc it may overcommit; the squat lasts for the rest of the run
// (fault pressure does not recede), so it shows up in the high-water
// reports and ledger gauges like any other allocation.
func (n *Node) InjectPressure(b int64) {
	n.MustAlloc(b)
}

// Free releases b bytes. Freeing more than allocated indicates a
// strategy bug and panics.
func (n *Node) Free(b int64) {
	if b < 0 || b > n.used {
		panic(fmt.Sprintf("cluster: free %d with %d used on node %d", b, n.used, n.ID))
	}
	n.used -= b
	n.sample()
}

// Machine is an instantiated cluster.
type Machine struct {
	cfg       Config
	nodes     []*Node
	bisection *resource.Link
	ioNet     *resource.Link
	ranks     int // total processes (Nodes*CoresPerNode by default placement)
	tracer    *obs.Tracer
	metrics   *metrics.Registry
	explain   *explain.Recorder
}

// SetTracer attaches an event tracer: ledger changes on every node
// emit memory counter events, and the MPI/PFS layers running on this
// machine pick the tracer up for their spans. A nil tracer disables
// tracing (the default).
func (m *Machine) SetTracer(t *obs.Tracer) {
	m.tracer = t
	for _, n := range m.nodes {
		n.tracer = t
	}
}

// Tracer returns the attached event tracer (nil when disabled).
func (m *Machine) Tracer() *obs.Tracer { return m.tracer }

// SetMetrics attaches a metrics registry: the memory ledger keeps
// per-node used/peak gauges current, and the MPI/PFS layers running on
// this machine pick the registry up for their counters. Instrument
// handles are resolved here, once, so ledger updates stay a single
// atomic store. A nil registry disables metrics (the default).
func (m *Machine) SetMetrics(r *metrics.Registry) {
	m.metrics = r
	for _, n := range m.nodes {
		if r == nil {
			n.memUsed, n.memPeak = nil, nil
			continue
		}
		id := strconv.Itoa(n.ID)
		r.Gauge("mccio_node_mem_capacity_bytes",
			"Sampled aggregation-memory capacity of the node.", "node", id).Set(float64(n.Capacity))
		n.memUsed = r.Gauge("mccio_node_mem_used_bytes",
			"Current aggregation-buffer allocation on the node's ledger.", "node", id)
		n.memPeak = r.Gauge("mccio_node_mem_peak_bytes",
			"High-water aggregation-buffer allocation on the node's ledger.", "node", id)
	}
}

// Metrics returns the attached metrics registry (nil when disabled).
func (m *Machine) Metrics() *metrics.Registry { return m.metrics }

// SetExplain attaches a decision recorder: the MCCIO planner records
// its group-division, bisection, remerge, and placement decisions, and
// the round engine samples this machine's memory ledger at round
// boundaries. All explain.Recorder methods are nil-safe, so a nil
// recorder disables the audit trail (the default) at zero cost.
func (m *Machine) SetExplain(r *explain.Recorder) { m.explain = r }

// Explain returns the attached decision recorder (nil when disabled).
func (m *Machine) Explain() *explain.Recorder { return m.explain }

// New builds a machine from cfg. Node memory capacities are sampled
// deterministically from cfg.Seed when cfg.MemSigma > 0.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:       cfg,
		bisection: resource.NewLink("bisection", cfg.BisectionBW, cfg.BisectionLat),
		ioNet:     resource.NewLink("ionet", cfg.IONetBW, cfg.IONetLat),
		ranks:     cfg.Nodes * cfg.CoresPerNode,
	}
	rng := stats.NewRNG(cfg.Seed)
	for i := 0; i < cfg.Nodes; i++ {
		capacity := cfg.MemPerNode
		if cfg.MemSigma > 0 {
			capacity = int64(rng.ClippedNormal(
				float64(cfg.MemPerNode),
				cfg.MemSigma*float64(cfg.MemPerNode),
				float64(cfg.MemFloor),
				2*float64(cfg.MemPerNode)))
		}
		m.nodes = append(m.nodes, &Node{
			ID:       i,
			Capacity: capacity,
			MemBus:   resource.NewLink(fmt.Sprintf("membus%d", i), cfg.MemBusBW, cfg.MemBusLat),
			NICTx:    resource.NewLink(fmt.Sprintf("nictx%d", i), cfg.NICBW, cfg.NICLat),
			NICRx:    resource.NewLink(fmt.Sprintf("nicrx%d", i), cfg.NICBW, cfg.NICLat),
		})
	}
	return m, nil
}

// Config returns the machine's configuration (after default filling).
func (m *Machine) Config() Config { return m.cfg }

// NumNodes returns the node count.
func (m *Machine) NumNodes() int { return len(m.nodes) }

// NumRanks returns the total process count under the default placement.
func (m *Machine) NumRanks() int { return m.ranks }

// Node returns node i.
func (m *Machine) Node(i int) *Node {
	return m.nodes[i]
}

// Bisection returns the shared fabric link.
func (m *Machine) Bisection() *resource.Link { return m.bisection }

// IONet returns the shared compute→storage link.
func (m *Machine) IONet() *resource.Link { return m.ioNet }

// NodeOfRank maps a rank to its node under block placement: ranks
// 0..CoresPerNode-1 on node 0, and so on — MPI's default contiguous
// mapping, which the paper assumes when it aligns aggregation groups to
// node boundaries.
func (m *Machine) NodeOfRank(rank int) int {
	if rank < 0 || rank >= m.ranks {
		panic(fmt.Sprintf("cluster: rank %d out of %d", rank, m.ranks))
	}
	return rank / m.cfg.CoresPerNode
}

// RanksOnNode returns the rank range [first, last] on a node.
func (m *Machine) RanksOnNode(node int) (first, last int) {
	if node < 0 || node >= len(m.nodes) {
		panic(fmt.Sprintf("cluster: node %d out of %d", node, len(m.nodes)))
	}
	first = node * m.cfg.CoresPerNode
	last = first + m.cfg.CoresPerNode - 1
	if last >= m.ranks {
		last = m.ranks - 1
	}
	return first, last
}

// MessagePath returns the resource path for src→dst rank traffic.
// Intra-node messages cross only the node's memory bus; inter-node
// messages cross sender bus, sender NIC, the bisection, receiver NIC,
// and receiver bus.
func (m *Machine) MessagePath(srcRank, dstRank int) resource.Path {
	sn, dn := m.NodeOfRank(srcRank), m.NodeOfRank(dstRank)
	if sn == dn {
		return resource.NewPath(m.nodes[sn].MemBus)
	}
	return resource.NewPath(
		m.nodes[sn].MemBus,
		m.nodes[sn].NICTx,
		m.bisection,
		m.nodes[dn].NICRx,
		m.nodes[dn].MemBus,
	)
}

// StoragePath returns the resource path from a rank to the storage
// network edge (the file system appends its own server/disk hops).
func (m *Machine) StoragePath(rank int) resource.Path {
	n := m.nodes[m.NodeOfRank(rank)]
	return resource.NewPath(n.MemBus, n.NICTx, m.ioNet)
}

// StorageReturnPath is the reverse direction (reads landing in memory).
func (m *Machine) StorageReturnPath(rank int) resource.Path {
	n := m.nodes[m.NodeOfRank(rank)]
	return resource.NewPath(m.ioNet, n.NICRx, n.MemBus)
}

// MemCapacities returns every node's sampled capacity, for reporting.
func (m *Machine) MemCapacities() []int64 {
	out := make([]int64, len(m.nodes))
	for i, n := range m.nodes {
		out[i] = n.Capacity
	}
	return out
}

// MemHighWaters returns every node's peak allocation, for reporting.
func (m *Machine) MemHighWaters() []int64 {
	out := make([]int64, len(m.nodes))
	for i, n := range m.nodes {
		out[i] = n.highWater
	}
	return out
}

// ResetLedger zeroes all allocations and high-water marks; used between
// benchmark repetitions on a shared machine.
func (m *Machine) ResetLedger() {
	for _, n := range m.nodes {
		n.used = 0
		n.highWater = 0
	}
}
