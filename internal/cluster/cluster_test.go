package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func testConfig(nodes, cores int) Config {
	return Config{
		Nodes:        nodes,
		CoresPerNode: cores,
		MemPerNode:   64 * MiB,
		MemBusBW:     1e9,
		NICBW:        1e8,
		BisectionBW:  1e9,
		IONetBW:      1e8,
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{},
		{Nodes: 1},
		{Nodes: 1, CoresPerNode: 1},
		{Nodes: -2, CoresPerNode: 4, MemPerNode: 1, MemBusBW: 1, NICBW: 1, BisectionBW: 1, IONetBW: 1},
		{Nodes: 2, CoresPerNode: 4, MemPerNode: 1, MemBusBW: 0, NICBW: 1, BisectionBW: 1, IONetBW: 1},
		{Nodes: 2, CoresPerNode: 4, MemPerNode: 1, MemSigma: -1, MemBusBW: 1, NICBW: 1, BisectionBW: 1, IONetBW: 1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestBlockPlacement(t *testing.T) {
	m, err := New(testConfig(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRanks() != 12 {
		t.Fatalf("ranks %d, want 12", m.NumRanks())
	}
	cases := []struct{ rank, node int }{{0, 0}, {3, 0}, {4, 1}, {7, 1}, {8, 2}, {11, 2}}
	for _, c := range cases {
		if got := m.NodeOfRank(c.rank); got != c.node {
			t.Errorf("NodeOfRank(%d)=%d, want %d", c.rank, got, c.node)
		}
	}
	f, l := m.RanksOnNode(1)
	if f != 4 || l != 7 {
		t.Fatalf("RanksOnNode(1)=[%d,%d], want [4,7]", f, l)
	}
}

func TestPlacementCoversAllRanksExactlyOnce(t *testing.T) {
	f := func(nodes, cores uint8) bool {
		n := int(nodes%20) + 1
		c := int(cores%16) + 1
		m, err := New(testConfig(n, c))
		if err != nil {
			return false
		}
		count := make(map[int]int)
		for node := 0; node < n; node++ {
			first, last := m.RanksOnNode(node)
			for r := first; r <= last; r++ {
				count[r]++
				if m.NodeOfRank(r) != node {
					return false
				}
			}
		}
		if len(count) != m.NumRanks() {
			return false
		}
		for _, c := range count {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryLedger(t *testing.T) {
	m, err := New(testConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	n := m.Node(0)
	if !n.Alloc(32 * MiB) {
		t.Fatal("alloc within capacity failed")
	}
	if n.Alloc(40 * MiB) {
		t.Fatal("alloc beyond capacity succeeded")
	}
	if n.Available() != 32*MiB {
		t.Fatalf("available %d, want %d", n.Available(), 32*MiB)
	}
	n.MustAlloc(64 * MiB) // overcommit allowed, tracked
	if n.HighWater() != 96*MiB {
		t.Fatalf("highwater %d, want %d", n.HighWater(), 96*MiB)
	}
	n.Free(96 * MiB)
	if n.Used() != 0 {
		t.Fatalf("used %d after full free", n.Used())
	}
	m.ResetLedger()
	if n.HighWater() != 0 {
		t.Fatal("ResetLedger kept high water")
	}
}

func TestFreeTooMuchPanics(t *testing.T) {
	m, _ := New(testConfig(1, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("over-free did not panic")
		}
	}()
	m.Node(0).Free(1)
}

func TestMemoryVarianceSampledDeterministically(t *testing.T) {
	cfg := testConfig(32, 2)
	cfg.MemSigma = 0.5
	cfg.Seed = 99
	m1, _ := New(cfg)
	m2, _ := New(cfg)
	c1, c2 := m1.MemCapacities(), m2.MemCapacities()
	varied := false
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("node %d capacity differs across identical configs", i)
		}
		if c1[i] != cfg.MemPerNode {
			varied = true
		}
		if c1[i] < cfg.MemFloor || c1[i] > 2*cfg.MemPerNode {
			t.Fatalf("node %d capacity %d outside clip range", i, c1[i])
		}
	}
	if !varied {
		t.Fatal("sigma=0.5 produced no variance at all")
	}
}

func TestZeroSigmaMeansUniform(t *testing.T) {
	cfg := testConfig(8, 2)
	m, _ := New(cfg)
	for i, c := range m.MemCapacities() {
		if c != cfg.MemPerNode {
			t.Fatalf("node %d capacity %d, want %d", i, c, cfg.MemPerNode)
		}
	}
}

func TestIntraNodePathTouchesOnlyMemBus(t *testing.T) {
	m, _ := New(testConfig(2, 2))
	pa := m.MessagePath(0, 1) // same node
	if len(pa.Links()) != 1 || pa.Links()[0] != m.Node(0).MemBus {
		t.Fatalf("intra-node path %v, want just node 0 membus", pa.Links())
	}
}

func TestInterNodePathCrossesFabric(t *testing.T) {
	m, _ := New(testConfig(2, 2))
	pa := m.MessagePath(1, 2) // node 0 -> node 1
	links := pa.Links()
	if len(links) != 5 {
		t.Fatalf("inter-node path has %d hops, want 5", len(links))
	}
	if links[0] != m.Node(0).MemBus || links[2] != m.Bisection() || links[4] != m.Node(1).MemBus {
		t.Fatal("inter-node path hop order wrong")
	}
}

func TestInterNodeSlowerThanIntraNode(t *testing.T) {
	m, _ := New(testConfig(2, 2))
	e := simtime.NewEngine()
	var intra, inter float64
	e.Spawn("intra", func(p *simtime.Proc) {
		intra = m.MessagePath(0, 1).Transfer(p, 1<<20)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e2 := simtime.NewEngine()
	e2.Spawn("inter", func(p *simtime.Proc) {
		inter = m.MessagePath(0, 2).Transfer(p, 1<<20)
	})
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if inter <= intra {
		t.Fatalf("inter-node %g not slower than intra-node %g", inter, intra)
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range []Config{TestbedConfig(10), ExascaleConfig(4)} {
		if _, err := New(cfg); err != nil {
			t.Fatalf("preset invalid: %v", err)
		}
	}
}

func TestStoragePathsDistinctDirections(t *testing.T) {
	m, _ := New(testConfig(2, 1))
	out := m.StoragePath(0).Links()
	back := m.StorageReturnPath(0).Links()
	if out[1] != m.Node(0).NICTx || back[1] != m.Node(0).NICRx {
		t.Fatal("storage paths use wrong NIC directions")
	}
}
