package datatype

import "fmt"

// Type is a flattenable derived datatype: it describes where one
// instance of the type's data lands in a file, as byte segments
// relative to the instance origin.
type Type interface {
	// Segments appends the instance's byte segments, displaced by disp,
	// to dst and returns the extended slice. Output is canonical when
	// the type itself has no internal overlap (all types here qualify).
	Segments(dst List, disp int64) List
	// Size is the number of data bytes in one instance.
	Size() int64
	// Extent is the span in the file from the instance origin to one
	// past its last byte (including trailing holes for strided types).
	Extent() int64
}

// Contig is N contiguous bytes.
type Contig struct{ N int64 }

// Segments implements Type.
func (c Contig) Segments(dst List, disp int64) List {
	if c.N == 0 {
		return dst
	}
	return append(dst, Segment{Off: disp, Len: c.N})
}

// Size implements Type.
func (c Contig) Size() int64 { return c.N }

// Extent implements Type.
func (c Contig) Extent() int64 { return c.N }

// Vector is Count blocks of BlockLen bytes placed Stride bytes apart —
// the classic strided access of interleaved benchmarks. Stride must be
// ≥ BlockLen.
type Vector struct {
	Count    int64
	BlockLen int64
	Stride   int64
}

// Segments implements Type.
func (v Vector) Segments(dst List, disp int64) List {
	if v.Stride < v.BlockLen {
		panic(fmt.Sprintf("datatype: vector stride %d < blocklen %d", v.Stride, v.BlockLen))
	}
	for i := int64(0); i < v.Count; i++ {
		if v.BlockLen > 0 {
			dst = append(dst, Segment{Off: disp + i*v.Stride, Len: v.BlockLen})
		}
	}
	return dst
}

// Size implements Type.
func (v Vector) Size() int64 { return v.Count * v.BlockLen }

// Extent implements Type.
func (v Vector) Extent() int64 {
	if v.Count == 0 {
		return 0
	}
	return (v.Count-1)*v.Stride + v.BlockLen
}

// Subarray3D is a local block of a row-major 3-D global array, the
// access pattern of ROMIO's coll_perf benchmark: each rank owns the
// block Local anchored at Start inside Global, with Elem bytes per
// element. Contiguous runs are whole innermost-dimension rows of the
// local block.
type Subarray3D struct {
	Global [3]int64 // global array dimensions (x, y, z), z contiguous
	Local  [3]int64 // local block dimensions
	Start  [3]int64 // local block origin in global coordinates
	Elem   int64    // bytes per element
}

// Validate rejects blocks that stick out of the global array.
func (s Subarray3D) Validate() error {
	for d := 0; d < 3; d++ {
		if s.Local[d] < 0 || s.Start[d] < 0 || s.Start[d]+s.Local[d] > s.Global[d] {
			return fmt.Errorf("datatype: subarray dim %d: start %d + local %d > global %d",
				d, s.Start[d], s.Local[d], s.Global[d])
		}
	}
	if s.Elem <= 0 {
		return fmt.Errorf("datatype: subarray elem size %d", s.Elem)
	}
	return nil
}

// Segments implements Type. When the local block spans entire rows (or
// entire planes) the runs are merged, so a rank owning a full
// contiguous slab produces one segment, not Local[0]*Local[1].
func (s Subarray3D) Segments(dst List, disp int64) List {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if s.Local[0] == 0 || s.Local[1] == 0 || s.Local[2] == 0 {
		return dst
	}
	rowBytes := s.Local[2] * s.Elem
	fullRows := s.Local[2] == s.Global[2]
	fullPlanes := fullRows && s.Local[1] == s.Global[1]
	switch {
	case fullPlanes:
		// The whole block is one contiguous slab of planes.
		off := disp + s.Start[0]*s.Global[1]*s.Global[2]*s.Elem
		return append(dst, Segment{Off: off, Len: s.Local[0] * s.Global[1] * s.Global[2] * s.Elem})
	case fullRows:
		// Each x-plane of the block is contiguous.
		for x := int64(0); x < s.Local[0]; x++ {
			off := disp + ((s.Start[0]+x)*s.Global[1]*s.Global[2]+s.Start[1]*s.Global[2])*s.Elem
			dst = append(dst, Segment{Off: off, Len: s.Local[1] * s.Global[2] * s.Elem})
		}
		return dst
	default:
		for x := int64(0); x < s.Local[0]; x++ {
			for y := int64(0); y < s.Local[1]; y++ {
				off := disp + ((s.Start[0]+x)*s.Global[1]*s.Global[2]+
					(s.Start[1]+y)*s.Global[2]+s.Start[2])*s.Elem
				dst = append(dst, Segment{Off: off, Len: rowBytes})
			}
		}
		return dst
	}
}

// Size implements Type.
func (s Subarray3D) Size() int64 {
	return s.Local[0] * s.Local[1] * s.Local[2] * s.Elem
}

// Extent implements Type.
func (s Subarray3D) Extent() int64 {
	return s.Global[0] * s.Global[1] * s.Global[2] * s.Elem
}

// Tiled returns a pattern of reps instances of t laid end to end at
// their extents starting at disp — MPI_FILE_SET_VIEW with a repeating
// filetype. The result is normalized.
func Tiled(t Type, disp int64, reps int64) List {
	var out List
	ext := t.Extent()
	for i := int64(0); i < reps; i++ {
		out = t.Segments(out, disp+i*ext)
	}
	return Normalize(out)
}
