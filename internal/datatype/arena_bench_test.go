package datatype

import "testing"

// benchView builds a fragmented view like an interleaved workload's:
// many small segments with holes between them.
func benchView(n int) List {
	l := make(List, n)
	for i := range l {
		l[i] = Segment{Off: int64(i) * 2048, Len: 1024}
	}
	return l
}

// BenchmarkArenaClip is the round engine's hot clip: a warm arena
// clipping a fragmented view against a sliding window, Reset at each
// round boundary. The steady state must be allocation-free — the arena
// recycles one backing array — which TestArenaClipZeroAllocs pins.
func BenchmarkArenaClip(b *testing.B) {
	l := benchView(256)
	var a Arena
	_, hi := l.Extent()
	a.Clip(l, 0, hi) // warm the backing array to max size
	a.Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lo := int64(i%128) * 1024
		a.Clip(l, lo, lo+64<<10)
		a.Reset()
	}
}

// BenchmarkHeapClip is the same clip without an arena (the pre-pooling
// path, still what a nil *Arena falls back to) — the allocs/op column
// is the difference pooling makes.
func BenchmarkHeapClip(b *testing.B) {
	l := benchView(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lo := int64(i%128) * 1024
		l.Clip(lo, lo+64<<10)
	}
}

// TestArenaClipZeroAllocs asserts the warm arena clips without heap
// allocation: the collio round loop runs one clip set per (rank,
// round), so any per-clip allocation multiplies into the dominant
// steady-state garbage of a large run.
func TestArenaClipZeroAllocs(t *testing.T) {
	l := benchView(256)
	var a Arena
	_, hi := l.Extent()
	a.Clip(l, 0, hi)
	a.Reset()
	i := 0
	if avg := testing.AllocsPerRun(200, func() {
		lo := int64(i%128) * 1024
		a.Clip(l, lo, lo+64<<10)
		a.Reset()
		i++
	}); avg != 0 {
		t.Fatalf("warm arena clip allocates %.1f objects/op, want 0", avg)
	}
}
