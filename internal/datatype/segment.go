// Package datatype provides the noncontiguous-access machinery under
// MPI-IO-style file views: byte segments, canonical segment lists with
// the algebra two-phase I/O needs (normalize, intersect, clip, split),
// and flattened derived datatypes (contiguous, vector, 3-D subarray).
package datatype

import (
	"fmt"
	"sort"
)

// Segment is a half-open byte extent [Off, Off+Len) in a file.
type Segment struct {
	Off int64
	Len int64
}

// End returns one past the last byte.
func (s Segment) End() int64 { return s.Off + s.Len }

func (s Segment) String() string { return fmt.Sprintf("[%d,%d)", s.Off, s.End()) }

// List is a canonical access pattern: segments sorted by offset,
// non-overlapping, non-adjacent, all with positive length. Construct
// with Normalize (or from generators that guarantee canonical output).
type List []Segment

// Normalize sorts segments, drops empty ones, and merges overlapping or
// adjacent ones, returning the canonical form. The input is not
// modified.
func Normalize(segs []Segment) List {
	work := make([]Segment, 0, len(segs))
	for _, s := range segs {
		if s.Len < 0 {
			panic(fmt.Sprintf("datatype: negative segment length %v", s))
		}
		if s.Len > 0 {
			work = append(work, s)
		}
	}
	sort.Slice(work, func(i, j int) bool { return work[i].Off < work[j].Off })
	out := work[:0]
	for _, s := range work {
		if n := len(out); n > 0 && s.Off <= out[n-1].End() {
			if s.End() > out[n-1].End() {
				out[n-1].Len = s.End() - out[n-1].Off
			}
			continue
		}
		out = append(out, s)
	}
	return List(out)
}

// IsCanonical reports whether l satisfies the List invariants; property
// tests use it, and debug builds of strategies assert it.
func (l List) IsCanonical() bool {
	for i, s := range l {
		if s.Len <= 0 {
			return false
		}
		if i > 0 && s.Off <= l[i-1].End() {
			return false
		}
	}
	return true
}

// TotalBytes returns the sum of segment lengths.
func (l List) TotalBytes() int64 {
	var n int64
	for _, s := range l {
		n += s.Len
	}
	return n
}

// Extent returns the smallest half-open range [lo, hi) covering l, or
// (0, 0) for an empty list.
func (l List) Extent() (lo, hi int64) {
	if len(l) == 0 {
		return 0, 0
	}
	return l[0].Off, l[len(l)-1].End()
}

// Clip returns the portion of l inside [lo, hi). The result is
// canonical. Binary search keeps repeated clipping cheap: two-phase
// I/O clips every rank's pattern against every file domain each round.
func (l List) Clip(lo, hi int64) List {
	if hi <= lo || len(l) == 0 {
		return nil
	}
	// First segment whose end is past lo.
	i := sort.Search(len(l), func(i int) bool { return l[i].End() > lo })
	var out List
	for ; i < len(l) && l[i].Off < hi; i++ {
		s := l[i]
		if s.Off < lo {
			s.Len -= lo - s.Off
			s.Off = lo
		}
		if s.End() > hi {
			s.Len = hi - s.Off
		}
		if s.Len > 0 {
			out = append(out, s)
		}
	}
	return out
}

// Intersects reports whether any part of l lies inside [lo, hi) —
// Clip-then-check-length without materialising the clipped list, for
// the per-round presence tests on the exchange hot path.
func (l List) Intersects(lo, hi int64) bool {
	if hi <= lo || len(l) == 0 {
		return false
	}
	i := sort.Search(len(l), func(i int) bool { return l[i].End() > lo })
	return i < len(l) && l[i].Off < hi
}

// Shift returns l displaced by d bytes.
func (l List) Shift(d int64) List {
	out := make(List, len(l))
	for i, s := range l {
		out[i] = Segment{Off: s.Off + d, Len: s.Len}
	}
	return out
}

// Coalesce merges segments whose gap is at most maxGap, returning the
// (possibly shorter) canonical list. Data sieving uses it to decide
// which holes are cheaper to read through than to seek over. maxGap=0
// merges only adjacent segments (a no-op on a canonical list).
func (l List) Coalesce(maxGap int64) List {
	if maxGap < 0 {
		panic(fmt.Sprintf("datatype: negative maxGap %d", maxGap))
	}
	if len(l) == 0 {
		return nil
	}
	out := List{l[0]}
	for _, s := range l[1:] {
		last := &out[len(out)-1]
		if s.Off-last.End() <= maxGap {
			last.Len = s.End() - last.Off
		} else {
			out = append(out, s)
		}
	}
	return out
}

// Holes returns the gaps between consecutive segments of l inside l's
// own extent. A write pattern with holes forces read-modify-write on
// the aggregator.
func (l List) Holes() List {
	var out List
	for i := 1; i < len(l); i++ {
		gap := Segment{Off: l[i-1].End(), Len: l[i].Off - l[i-1].End()}
		if gap.Len > 0 {
			out = append(out, gap)
		}
	}
	return out
}

// SplitAt cuts l into the parts before and from offset cut.
func (l List) SplitAt(cut int64) (before, after List) {
	_, hi := l.Extent()
	lo, _ := l.Extent()
	return l.Clip(lo, cut), l.Clip(cut, hi)
}

// Equal reports element-wise equality.
func (l List) Equal(o List) bool {
	if len(l) != len(o) {
		return false
	}
	for i := range l {
		if l[i] != o[i] {
			return false
		}
	}
	return true
}
