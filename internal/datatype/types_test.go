package datatype

import (
	"testing"
	"testing/quick"
)

func TestContig(t *testing.T) {
	l := Contig{N: 100}.Segments(nil, 50)
	if !List(l).Equal(List{{50, 100}}) {
		t.Fatalf("got %v", l)
	}
	if (Contig{N: 100}).Size() != 100 || (Contig{N: 100}).Extent() != 100 {
		t.Fatal("size/extent wrong")
	}
	if l := (Contig{}).Segments(nil, 0); len(l) != 0 {
		t.Fatalf("empty contig produced %v", l)
	}
}

func TestVector(t *testing.T) {
	v := Vector{Count: 3, BlockLen: 4, Stride: 10}
	l := v.Segments(nil, 100)
	want := List{{100, 4}, {110, 4}, {120, 4}}
	if !List(l).Equal(want) {
		t.Fatalf("got %v, want %v", l, want)
	}
	if v.Size() != 12 || v.Extent() != 24 {
		t.Fatalf("size=%d extent=%d", v.Size(), v.Extent())
	}
}

func TestVectorBadStridePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Vector{Count: 1, BlockLen: 10, Stride: 5}.Segments(nil, 0)
}

func TestSubarray3DInteriorBlock(t *testing.T) {
	s := Subarray3D{
		Global: [3]int64{4, 4, 4},
		Local:  [3]int64{2, 2, 2},
		Start:  [3]int64{1, 1, 1},
		Elem:   1,
	}
	l := s.Segments(nil, 0)
	// Rows at (x,y) ∈ {1,2}×{1,2}, z=1..2: offset = x*16 + y*4 + 1.
	want := List{{21, 2}, {25, 2}, {37, 2}, {41, 2}}
	if !List(l).Equal(want) {
		t.Fatalf("got %v, want %v", l, want)
	}
	if s.Size() != 8 {
		t.Fatalf("size %d", s.Size())
	}
}

func TestSubarray3DFullRowsMerge(t *testing.T) {
	s := Subarray3D{
		Global: [3]int64{4, 4, 4},
		Local:  [3]int64{2, 2, 4}, // full z rows
		Start:  [3]int64{0, 2, 0},
		Elem:   2,
	}
	l := s.Segments(nil, 0)
	// Each x-plane: y=2..3, z full => 2*4*2=16 bytes at x*32 + 2*8.
	want := List{{16, 16}, {48, 16}}
	if !List(l).Equal(want) {
		t.Fatalf("got %v, want %v", l, want)
	}
}

func TestSubarray3DFullPlanesSingleSegment(t *testing.T) {
	s := Subarray3D{
		Global: [3]int64{8, 4, 4},
		Local:  [3]int64{2, 4, 4},
		Start:  [3]int64{4, 0, 0},
		Elem:   1,
	}
	l := s.Segments(nil, 0)
	if !List(l).Equal(List{{64, 32}}) {
		t.Fatalf("got %v", l)
	}
}

func TestSubarray3DValidate(t *testing.T) {
	bad := Subarray3D{Global: [3]int64{4, 4, 4}, Local: [3]int64{2, 2, 2}, Start: [3]int64{3, 0, 0}, Elem: 1}
	if bad.Validate() == nil {
		t.Fatal("overflowing block validated")
	}
	if (Subarray3D{Global: [3]int64{4, 4, 4}, Local: [3]int64{1, 1, 1}, Elem: 0}).Validate() == nil {
		t.Fatal("zero elem validated")
	}
}

// TestBlockDecompositionTiles checks the invariant coll_perf depends
// on: a full 3-D block decomposition across P ranks covers the global
// array exactly once.
func TestBlockDecompositionTiles(t *testing.T) {
	f := func(seed uint64) bool {
		dims := [3]int64{4, 6, 8}
		procs := [3]int64{2, 3, 2}
		var all List
		for px := int64(0); px < procs[0]; px++ {
			for py := int64(0); py < procs[1]; py++ {
				for pz := int64(0); pz < procs[2]; pz++ {
					s := Subarray3D{
						Global: dims,
						Local:  [3]int64{dims[0] / procs[0], dims[1] / procs[1], dims[2] / procs[2]},
						Start:  [3]int64{px * dims[0] / procs[0], py * dims[1] / procs[1], pz * dims[2] / procs[2]},
						Elem:   4,
					}
					all = s.Segments(all, 0)
				}
			}
		}
		n := Normalize(all)
		total := dims[0] * dims[1] * dims[2] * 4
		lo, hi := n.Extent()
		return len(n) == 1 && lo == 0 && hi == total && n.TotalBytes() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestTiledVector(t *testing.T) {
	v := Vector{Count: 2, BlockLen: 2, Stride: 4}
	l := Tiled(v, 0, 3) // extent 6: instances at 0, 6, 12
	want := List{{0, 2}, {4, 4}, {10, 4}, {16, 2}}
	if !l.Equal(want) {
		t.Fatalf("got %v, want %v", l, want)
	}
	if l.TotalBytes() != 3*v.Size() {
		t.Fatalf("bytes %d", l.TotalBytes())
	}
}

func TestTypeSizeMatchesSegments(t *testing.T) {
	types := []Type{
		Contig{N: 77},
		Vector{Count: 5, BlockLen: 3, Stride: 9},
		Subarray3D{Global: [3]int64{6, 6, 6}, Local: [3]int64{2, 3, 4}, Start: [3]int64{1, 2, 0}, Elem: 8},
	}
	for _, ty := range types {
		l := Normalize(ty.Segments(nil, 0))
		if l.TotalBytes() != ty.Size() {
			t.Errorf("%T: segments carry %d bytes, Size()=%d", ty, l.TotalBytes(), ty.Size())
		}
		if _, hi := l.Extent(); hi > ty.Extent() {
			t.Errorf("%T: segments reach %d beyond extent %d", ty, hi, ty.Extent())
		}
	}
}
