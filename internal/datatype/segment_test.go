package datatype

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestNormalizeMergesAndSorts(t *testing.T) {
	l := Normalize([]Segment{{10, 5}, {0, 5}, {5, 5}, {30, 2}, {14, 3}, {40, 0}})
	want := List{{0, 17}, {30, 2}}
	if !l.Equal(want) {
		t.Fatalf("got %v, want %v", l, want)
	}
	if !l.IsCanonical() {
		t.Fatal("not canonical")
	}
}

func TestNormalizeNegativeLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Normalize([]Segment{{0, -1}})
}

func randomSegs(r *stats.RNG, n int) []Segment {
	segs := make([]Segment, n)
	for i := range segs {
		segs[i] = Segment{Off: r.Int63n(10000), Len: r.Int63n(500)}
	}
	return segs
}

func TestNormalizePropertyCanonicalAndCovering(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		segs := randomSegs(r, 1+r.Intn(60))
		l := Normalize(segs)
		if !l.IsCanonical() {
			return false
		}
		// Every input byte must be covered, and coverage count in the
		// union sense must match: check via a bitmap.
		covered := make(map[int64]bool)
		for _, s := range segs {
			for o := s.Off; o < s.End(); o++ {
				covered[o] = true
			}
		}
		var union int64
		for _, s := range l {
			for o := s.Off; o < s.End(); o++ {
				if !covered[o] {
					return false // invented a byte
				}
				union++
			}
		}
		return union == int64(len(covered))
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestClipBasics(t *testing.T) {
	l := Normalize([]Segment{{0, 10}, {20, 10}, {40, 10}})
	cases := []struct {
		lo, hi int64
		want   List
	}{
		{0, 50, List{{0, 10}, {20, 10}, {40, 10}}},
		{5, 25, List{{5, 5}, {20, 5}}},
		{10, 20, nil},
		{25, 25, nil},
		{45, 100, List{{45, 5}}},
		{-10, 5, List{{0, 5}}},
	}
	for _, c := range cases {
		got := l.Clip(c.lo, c.hi)
		if !got.Equal(c.want) {
			t.Errorf("Clip(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}

func TestClipPropertyPartition(t *testing.T) {
	// Clipping a list at a cut point partitions its bytes exactly.
	f := func(seed uint64, cutRaw int64) bool {
		r := stats.NewRNG(seed)
		l := Normalize(randomSegs(r, 1+r.Intn(40)))
		lo, hi := l.Extent()
		if hi == lo {
			return true
		}
		cut := lo + (cutRaw%(hi-lo)+hi-lo)%(hi-lo)
		a, b := l.Clip(lo, cut), l.Clip(cut, hi)
		return a.TotalBytes()+b.TotalBytes() == l.TotalBytes() &&
			a.IsCanonical() && b.IsCanonical()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShift(t *testing.T) {
	l := List{{0, 5}, {10, 5}}
	s := l.Shift(100)
	if !s.Equal(List{{100, 5}, {110, 5}}) {
		t.Fatalf("shifted %v", s)
	}
	if !l.Equal(List{{0, 5}, {10, 5}}) {
		t.Fatal("shift mutated input")
	}
}

func TestCoalesce(t *testing.T) {
	l := List{{0, 10}, {15, 5}, {100, 5}}
	got := l.Coalesce(5)
	if !got.Equal(List{{0, 20}, {100, 5}}) {
		t.Fatalf("coalesce(5) = %v", got)
	}
	if got := l.Coalesce(0); !got.Equal(l) {
		t.Fatalf("coalesce(0) changed canonical list: %v", got)
	}
	if got := l.Coalesce(1 << 30); len(got) != 1 || got.TotalBytes() != 105 {
		t.Fatalf("coalesce(inf) = %v", got)
	}
}

func TestHoles(t *testing.T) {
	l := List{{0, 10}, {15, 5}, {30, 5}}
	h := l.Holes()
	if !h.Equal(List{{10, 5}, {20, 10}}) {
		t.Fatalf("holes %v", h)
	}
	if n := (List{{5, 10}}).Holes(); len(n) != 0 {
		t.Fatalf("single segment has holes %v", n)
	}
}

func TestHolesPlusDataEqualsExtent(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		l := Normalize(randomSegs(r, 1+r.Intn(40)))
		if len(l) == 0 {
			return true
		}
		lo, hi := l.Extent()
		return l.TotalBytes()+l.Holes().TotalBytes() == hi-lo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitAt(t *testing.T) {
	l := List{{0, 10}, {20, 10}}
	a, b := l.SplitAt(5)
	if !a.Equal(List{{0, 5}}) || !b.Equal(List{{5, 5}, {20, 10}}) {
		t.Fatalf("split %v / %v", a, b)
	}
}

func TestTotalBytesAndExtent(t *testing.T) {
	l := List{{10, 5}, {30, 5}}
	if l.TotalBytes() != 10 {
		t.Fatalf("total %d", l.TotalBytes())
	}
	lo, hi := l.Extent()
	if lo != 10 || hi != 35 {
		t.Fatalf("extent [%d,%d)", lo, hi)
	}
	lo, hi = (List{}).Extent()
	if lo != 0 || hi != 0 {
		t.Fatalf("empty extent [%d,%d)", lo, hi)
	}
}
