package datatype

import "sort"

// Arena is a bump allocator for short-lived segment lists. Two-phase
// I/O clips views and coverage against a window every round and drops
// the results at the round boundary; allocating each clip individually
// made those lists the dominant steady-state garbage of a large run.
// An arena instead hands out sub-slices of one backing array and
// recycles the whole array at a Reset point.
//
// Ownership rules (see DESIGN.md §14):
//   - Lists returned by Arena methods are valid only until the next
//     Reset. Callers must not retain them across the reset point.
//   - Returned lists are capped (three-index slices), so a caller that
//     appends gets a private copy rather than clobbering a neighbour.
//   - A nil *Arena is valid and falls back to ordinary heap
//     allocation, so call sites need not branch on pooling being on.
//
// The zero value is ready to use. An Arena is not safe for concurrent
// use; in the simulator each rank's collective call owns its own.
type Arena struct {
	buf []Segment
}

// Reset recycles every list handed out since the previous Reset. The
// backing array is kept, so after warm-up an arena allocates nothing.
func (a *Arena) Reset() {
	if a != nil {
		a.buf = a.buf[:0]
	}
}

// Clip is l.Clip(lo, hi) with the result drawn from the arena: same
// canonical output, no per-call allocation once the arena is warm.
func (a *Arena) Clip(l List, lo, hi int64) List {
	if a == nil {
		return l.Clip(lo, hi)
	}
	if hi <= lo || len(l) == 0 {
		return nil
	}
	start := len(a.buf)
	// First segment whose end is past lo, as in List.Clip.
	i := sort.Search(len(l), func(i int) bool { return l[i].End() > lo })
	for ; i < len(l) && l[i].Off < hi; i++ {
		s := l[i]
		if s.Off < lo {
			s.Len -= lo - s.Off
			s.Off = lo
		}
		if s.End() > hi {
			s.Len = hi - s.Off
		}
		if s.Len > 0 {
			a.buf = append(a.buf, s)
		}
	}
	if len(a.buf) == start {
		return nil
	}
	return List(a.buf[start:len(a.buf):len(a.buf)])
}

// Cap returns the backing array's capacity, for instrumentation.
func (a *Arena) Cap() int {
	if a == nil {
		return 0
	}
	return cap(a.buf)
}
