package core

import "repro/internal/explain"

// auditGroups records the group-division outcome in the decision audit:
// the total requested bytes, the Msg_group threshold the division
// worked from, and every group's rank span, node count, and volume.
// No-op (and allocation-free) when the recorder is disabled.
func auditGroups(rec *explain.Recorder, op string, total, msggroup int64, groups []Group) {
	if !rec.Enabled() {
		return
	}
	gi := make([]explain.GroupInfo, len(groups))
	for i, g := range groups {
		gi[i] = explain.GroupInfo{First: g.First, Last: g.Last, Nodes: g.Nodes, Bytes: g.Bytes}
	}
	rec.Record(explain.Event{
		Kind: explain.KindGroups, Group: -1, Op: op,
		TotalBytes: total, Msggroup: msggroup, Groups: gi,
	})
}

// auditTree records one group's partition-tree build outcome: the root
// extent and covered bytes, the leaf count before any remerging, and
// the effective Msg_ind / aggregator bound the build worked from.
// Scalar-only, so it is safe to call unconditionally.
func auditTree(rec *explain.Recorder, group int, t *Tree, msgind int64, maxAggs int) {
	if !rec.Enabled() {
		return
	}
	root := t.Root()
	rec.Record(explain.Event{
		Kind: explain.KindTree, Group: group,
		Lo: root.Lo, Hi: root.Hi, Data: root.DataBytes,
		Leaves: len(t.Leaves()), Msgind: msgind, MaxAggs: maxAggs,
	})
}
