package core

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/iolib"
	"repro/internal/mpi"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// TestNodeCombineWriteReadRoundTrip pushes real bytes through the
// two-layer exchange in both directions and verifies them.
func TestNodeCombineWriteReadRoundTrip(t *testing.T) {
	m := testMachine(t, 3, 4, 64*cluster.MiB, 0)
	opts := testOpts(128<<10, 512<<10)
	opts.NodeCombine = true
	res := runMCCIO(t, MCCIO{Opts: opts}, m, 12, 16, 4<<10)
	if res.Bytes != 12*16*4<<10 {
		t.Fatalf("bytes %d", res.Bytes)
	}
	if res.Rounds == 0 || res.Aggregators == 0 {
		t.Fatalf("bad metrics %+v", res.Metrics)
	}
}

func TestNodeCombineUnderVariance(t *testing.T) {
	m := testMachine(t, 4, 4, 4*cluster.MiB, 0.6)
	opts := Options{Msgind: 1 << 20, Msggroup: 16 << 20, Nah: 2, Memmin: 256 << 10, NodeCombine: true}
	res := runMCCIO(t, MCCIO{Opts: opts}, m, 16, 24, 8<<10)
	if res.Bytes != 16*24*8<<10 {
		t.Fatalf("bytes %d", res.Bytes)
	}
}

// TestNodeCombineReducesFabricMessages checks the mechanism's purpose:
// fewer NIC crossings than the flat exchange on the same workload.
func TestNodeCombineReducesFabricMessages(t *testing.T) {
	run := func(combine bool) mpi.TrafficStats {
		m := testMachine(t, 4, 4, 64*cluster.MiB, 0)
		e := simtime.NewEngine()
		w, err := mpi.NewWorld(e, m, 16)
		if err != nil {
			t.Fatal(err)
		}
		fs := testFS(t, m)
		f := iolib.Open(fs, "x")
		opts := testOpts(256<<10, 0) // one group: combining is the only difference
		opts.NodeCombine = combine
		w.Start(func(c *mpi.Comm) {
			view := interleavedView(c.Rank(), 16, 16, 4<<10)
			data := fillViewBuffer(view, uint64(c.Rank()))
			iolib.Run(MCCIO{Opts: opts}, "write", f, c, view, data, &trace.Metrics{})
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return w.Traffic()
	}
	flat := run(false)
	combined := run(true)
	if combined.MsgsInter >= flat.MsgsInter {
		t.Fatalf("combining did not reduce fabric messages: %d vs %d", combined.MsgsInter, flat.MsgsInter)
	}
}

// TestNodeCombineMatchesFlatResults: both exchanges must produce
// identical file contents; the flat read of a combined write verifies
// cross-compatibility.
func TestNodeCombineMatchesFlatResults(t *testing.T) {
	m := testMachine(t, 2, 3, 64*cluster.MiB, 0)
	e := simtime.NewEngine()
	w, err := mpi.NewWorld(e, m, 6)
	if err != nil {
		t.Fatal(err)
	}
	fs := testFS(t, m)
	f := iolib.Open(fs, "x")
	combineOpts := testOpts(128<<10, 0)
	combineOpts.NodeCombine = true
	flatOpts := testOpts(128<<10, 0)
	w.Start(func(c *mpi.Comm) {
		view := interleavedView(c.Rank(), 6, 8, 2<<10)
		data := fillViewBuffer(view, uint64(c.Rank()))
		// Write with combining, read flat.
		iolib.Run(MCCIO{Opts: combineOpts}, "write", f, c, view, data, nil)
		dst := fillViewBuffer(view, 999) // junk to be overwritten
		iolib.Run(MCCIO{Opts: flatOpts}, "read", f, c, view, dst, nil)
		var pos int64
		for _, s := range view {
			if i := dst.Slice(pos, s.Len).Verify(uint64(c.Rank()), s.Off); i != -1 {
				t.Errorf("rank %d segment %v mismatch at %d", c.Rank(), s, i)
			}
			pos += s.Len
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestNodeCombineWithTwoPhasePlan exercises the combined engine under
// the baseline planner too (offset windows, RMW path allowed).
func TestNodeCombineWithTwoPhasePlan(t *testing.T) {
	m := testMachine(t, 2, 3, 64*cluster.MiB, 0)
	e := simtime.NewEngine()
	w, err := mpi.NewWorld(e, m, 6)
	if err != nil {
		t.Fatal(err)
	}
	fs := testFS(t, m)
	f := iolib.Open(fs, "x")
	w.Start(func(c *mpi.Comm) {
		view := interleavedView(c.Rank(), 6, 8, 2<<10)
		data := fillViewBuffer(view, uint64(c.Rank()))
		tp := collio.TwoPhase{CBBuffer: 64 << 10}
		plan := tp.BuildPlan(c, view)
		plan.NodeCombine = true
		vi := iolib.NewViewIndex(view)
		var mtr trace.Metrics
		collio.ExecuteWrite(f, c, vi, data, plan, &mtr)
		c.Barrier()
		plan2 := tp.BuildPlan(c, view)
		plan2.NodeCombine = true
		dst := fillViewBuffer(view, 999)
		collio.ExecuteRead(f, c, vi, dst, plan2, &mtr)
		var pos int64
		for _, s := range view {
			if i := dst.Slice(pos, s.Len).Verify(uint64(c.Rank()), s.Off); i != -1 {
				t.Errorf("rank %d segment %v mismatch at %d", c.Rank(), s, i)
			}
			pos += s.Len
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupedWritePreservesPreexistingHoles: MCCIO's exact writes must
// not disturb file bytes between its requests, even when its window
// coverage has holes over pre-existing data.
func TestGroupedWritePreservesPreexistingHoles(t *testing.T) {
	m := testMachine(t, 2, 2, 64*cluster.MiB, 0)
	e := simtime.NewEngine()
	w, err := mpi.NewWorld(e, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	fs := testFS(t, m)
	f := iolib.Open(fs, "x")
	const fileSize = 64 << 10
	w.Start(func(c *mpi.Comm) {
		if c.Rank() == 0 {
			base := buffer.NewReal(fileSize)
			base.Fill(99, 0)
			f.WriteAt(c.Proc(), 0, 0, base)
		}
		c.Barrier()
		// 4 ranks write every second 512B block of an 8-wide stride:
		// the other half keeps the pre-image. Grouping (Msggroup=1)
		// forces multiple concurrent groups over interleaved regions.
		view := interleavedView(c.Rank(), 8, 8, 512)
		data := fillViewBuffer(view, uint64(c.Rank()))
		opts := Options{Msgind: 4 << 10, Msggroup: 1, Nah: 2, Memmin: 64 << 10}
		iolib.Run(MCCIO{Opts: opts}, "write", f, c, view, data, &trace.Metrics{})
		c.Barrier()
		if c.Rank() == 0 {
			out := buffer.NewReal(fileSize)
			f.ReadAt(c.Proc(), 0, 0, out)
			for blk := int64(0); blk < fileSize/512; blk++ {
				slot := blk % 8
				got := out.Slice(blk*512, 512)
				if slot < 4 && blk < 64 {
					if i := got.Verify(uint64(slot), blk*512); i != -1 {
						t.Errorf("block %d (rank %d) mismatch at %d", blk, slot, i)
					}
				} else {
					if i := got.Verify(99, blk*512); i != -1 {
						t.Errorf("block %d pre-image clobbered at %d", blk, i)
					}
				}
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
