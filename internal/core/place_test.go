package core

import (
	"testing"

	"repro/internal/collio"
	"repro/internal/datatype"
	"repro/internal/trace"
)

func seg(off, ln int64) datatype.Segment { return datatype.Segment{Off: off, Len: ln} }

// TestPlaceFallbackRetryOncePerDomain drives the candidates() fallback:
// when every data-owning host is saturated at Nah, placement retries
// past them onto any host with capacity — exactly once per fallen-back
// domain, even when the whole group ends up overflowing Nah.
func TestPlaceFallbackRetryOncePerDomain(t *testing.T) {
	// Four ranks on two nodes; all data lives on node 0's ranks, so
	// node 0 is the only data-owning candidate host.
	memberSegs := []datatype.List{
		{seg(0, 100)}, {seg(100, 200)}, nil, nil,
	}
	nodeOfRank := []int{0, 0, 1, 1}
	coverage := datatype.Normalize(datatype.List{seg(0, 100), seg(100, 200)})
	nodeAvail := map[int]int64{0: 1 << 20, 1: 1 << 20}

	tree := BuildTree(coverage, 100, 2)
	if n := len(tree.Leaves()); n != 2 {
		t.Fatalf("leaves = %d, want 2", n)
	}
	var m trace.Metrics
	p := newPlacer(tree, memberSegs, nodeOfRank, nodeAvail, Options{Nah: 1, Msgind: 100}, &m, nil, -1)
	placements := p.Place()
	if len(placements) != 2 {
		t.Fatalf("placements = %d, want 2", len(placements))
	}
	if p.retries != 1 {
		t.Errorf("retries = %d, want 1 (second domain fell back once)", p.retries)
	}
	if m.Remerges != 0 {
		t.Errorf("remerges = %d, want 0 (fallback is not a remerge)", m.Remerges)
	}
	if node := nodeOfRank[placements[1].Agg]; node != 1 {
		t.Errorf("fallen-back domain placed on node %d, want the non-owning node 1", node)
	}

	// Three domains on the same saturated pair: two fall back, and the
	// last one overflows Nah — still exactly one retry per domain.
	tree3 := BuildTree(coverage, 1, 3)
	if n := len(tree3.Leaves()); n != 3 {
		t.Fatalf("leaves = %d, want 3", n)
	}
	var m3 trace.Metrics
	p3 := newPlacer(tree3, memberSegs, nodeOfRank, nodeAvail, Options{Nah: 1, Msgind: 1}, &m3, nil, -1)
	placements = p3.Place()
	if len(placements) != 3 {
		t.Fatalf("placements = %d, want 3", len(placements))
	}
	if p3.retries != 2 {
		t.Errorf("retries = %d, want 2 (one per fallen-back domain)", p3.retries)
	}
}

// TestPlaceSingleLeafBelowMemminNoPanic: a single-leaf tree whose only
// candidate host cannot offer Memmin must place anyway (floored at
// BufFloor) — with and without DisableRemerge — never panic or remerge:
// there is no sibling to merge into.
func TestPlaceSingleLeafBelowMemminNoPanic(t *testing.T) {
	for _, disable := range []bool{false, true} {
		memberSegs := []datatype.List{{seg(0, 1000)}}
		coverage := datatype.Normalize(datatype.List{seg(0, 1000)})
		tree := BuildTree(coverage, 1<<20, 1)
		if n := len(tree.Leaves()); n != 1 {
			t.Fatalf("leaves = %d, want 1", n)
		}
		var m trace.Metrics
		p := newPlacer(tree, memberSegs, []int{0}, map[int]int64{0: 100},
			Options{Nah: 1, Msgind: 1 << 20, Memmin: 1 << 20, DisableRemerge: disable}, &m, nil, -1)
		placements := p.Place()
		if len(placements) != 1 {
			t.Fatalf("DisableRemerge=%v: placements = %d, want 1", disable, len(placements))
		}
		if placements[0].Buf != collio.BufFloor {
			t.Errorf("DisableRemerge=%v: buf = %d, want floor %d", disable, placements[0].Buf, collio.BufFloor)
		}
		if m.Remerges != 0 {
			t.Errorf("DisableRemerge=%v: remerges = %d, want 0", disable, m.Remerges)
		}
	}
}

// TestPlaceDisableRemergeAllBelowMemmin: with remerging disabled and
// every host below Memmin, placement must still cover every leaf (at
// BufFloor) with zero remerges, instead of collapsing the tree.
func TestPlaceDisableRemergeAllBelowMemmin(t *testing.T) {
	memberSegs := []datatype.List{
		{seg(0, 400)}, {seg(400, 400)}, {seg(800, 400)}, {seg(1200, 400)},
	}
	nodeOfRank := []int{0, 0, 1, 1}
	coverage := datatype.Normalize(datatype.List{seg(0, 1600)})
	tree := BuildTree(coverage, 400, 4)
	nLeaves := len(tree.Leaves())
	if nLeaves < 2 {
		t.Fatalf("leaves = %d, want a multi-leaf tree", nLeaves)
	}
	var m trace.Metrics
	p := newPlacer(tree, memberSegs, nodeOfRank, map[int]int64{0: 64, 1: 64},
		Options{Nah: 2, Msgind: 400, Memmin: 1 << 20, DisableRemerge: true}, &m, nil, -1)
	placements := p.Place()
	if len(placements) != nLeaves {
		t.Fatalf("placements = %d, want %d (every leaf served)", len(placements), nLeaves)
	}
	if m.Remerges != 0 {
		t.Errorf("remerges = %d, want 0 with DisableRemerge", m.Remerges)
	}
	if len(tree.Leaves()) != nLeaves {
		t.Errorf("tree mutated: %d leaves, started with %d", len(tree.Leaves()), nLeaves)
	}
	for i, pl := range placements {
		if pl.Buf != collio.BufFloor {
			t.Errorf("placement %d buf = %d, want floor %d", i, pl.Buf, collio.BufFloor)
		}
	}
}
