package core

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestDivideGroupsRespectsNodeBoundaries(t *testing.T) {
	// 4 nodes × 3 ranks, 10 bytes each, msggroup 50: groups close at
	// the first node edge after accumulating >= 50 bytes.
	nodeOf := func(r int) int { return r / 3 }
	bytes := make([]int64, 12)
	for i := range bytes {
		bytes[i] = 10
	}
	groups := DivideGroups(nodeOf, bytes, 50)
	if len(groups) != 2 {
		t.Fatalf("groups %+v, want 2", groups)
	}
	// First group: nodes 0,1 (60 bytes >= 50 at node-2 edge).
	if groups[0].First != 0 || groups[0].Last != 5 || groups[0].Bytes != 60 || groups[0].Nodes != 2 {
		t.Fatalf("group 0: %+v", groups[0])
	}
	if groups[1].First != 6 || groups[1].Last != 11 {
		t.Fatalf("group 1: %+v", groups[1])
	}
}

func TestDivideGroupsSingleWhenMsggroupZero(t *testing.T) {
	nodeOf := func(r int) int { return r / 2 }
	groups := DivideGroups(nodeOf, []int64{1, 2, 3, 4}, 0)
	if len(groups) != 1 || groups[0].Bytes != 10 || groups[0].Nodes != 2 {
		t.Fatalf("groups %+v", groups)
	}
}

func TestDivideGroupsTinyMsggroupOnePerNode(t *testing.T) {
	nodeOf := func(r int) int { return r / 2 }
	bytes := []int64{5, 5, 5, 5, 5, 5}
	groups := DivideGroups(nodeOf, bytes, 1)
	if len(groups) != 3 {
		t.Fatalf("groups %+v, want one per node", groups)
	}
	for i, g := range groups {
		if g.Nodes != 1 || g.First != i*2 || g.Last != i*2+1 {
			t.Fatalf("group %d: %+v", i, g)
		}
	}
}

func TestDivideGroupsProperty(t *testing.T) {
	f := func(seed uint64, msgRaw uint16) bool {
		r := stats.NewRNG(seed)
		nRanks := 1 + r.Intn(64)
		cores := 1 + r.Intn(8)
		nodeOf := func(rank int) int { return rank / cores }
		bytes := make([]int64, nRanks)
		var total int64
		for i := range bytes {
			bytes[i] = r.Int63n(1000)
			total += bytes[i]
		}
		groups := DivideGroups(nodeOf, bytes, int64(msgRaw))
		// Partition: contiguous, covering, node-aligned, bytes add up.
		next := 0
		var sum int64
		for gi, g := range groups {
			if g.First != next || g.Last < g.First {
				return false
			}
			next = g.Last + 1
			sum += g.Bytes
			// Node alignment: a group never ends mid-node.
			if g.Last+1 < nRanks && nodeOf(g.Last) == nodeOf(g.Last+1) {
				return false
			}
			if gi > 0 && nodeOf(g.First) == nodeOf(g.First-1) {
				return false
			}
		}
		if next != nRanks || sum != total {
			return false
		}
		colors := ColorOf(groups, nRanks)
		for r0 := 1; r0 < nRanks; r0++ {
			if colors[r0] < colors[r0-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignableAggregators(t *testing.T) {
	nodeOfRank := []int{0, 0, 0, 1, 1, 2}
	if got := AssignableAggregators(nodeOfRank, 1); got != 3 {
		t.Fatalf("nah=1: %d, want 3", got)
	}
	if got := AssignableAggregators(nodeOfRank, 2); got != 5 {
		t.Fatalf("nah=2: %d, want 5", got)
	}
	if got := AssignableAggregators(nodeOfRank, 10); got != 6 {
		t.Fatalf("nah=10: %d, want 6 (capped by processes)", got)
	}
}
