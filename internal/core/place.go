package core

import (
	"fmt"
	"sort"

	"repro/internal/collio"
	"repro/internal/datatype"
	"repro/internal/explain"
	"repro/internal/trace"
)

// Placement binds one file domain (a partition-tree leaf) to its
// aggregator and aggregation buffer.
type Placement struct {
	Leaf *TreeNode
	Agg  int   // group-comm rank of the aggregator
	Buf  int64 // aggregation buffer, charged on the aggregator's node
}

// hostState tracks one candidate node during placement.
type hostState struct {
	node      int
	avail     int64 // memory still uncommitted on this node
	aggs      int   // aggregators already placed here
	ranks     []int // group-comm ranks living on this node, ascending
	nextRank  int   // round-robin cursor into ranks
	rankIsAgg map[int]bool
}

// placer runs Aggregator Location (§3.3) with Workload Portion
// Remerging (§3.2) for one aggregation group.
type placer struct {
	tree       *Tree
	memberSegs []datatype.List // per group rank, clipped to the group
	nodeOfRank []int           // group rank -> physical node id
	hosts      map[int]*hostState
	hostOrder  []int // deterministic iteration order of hosts
	opts       Options
	metrics    *trace.Metrics
	effSlots   int // expected aggregators per node this group will field
	retries    int // placements that fell back past the data-owning hosts

	rec   *explain.Recorder // decision audit; nil disables
	group int               // aggregation-group index for audit events

	placed map[*TreeNode]*Placement
}

// newPlacer snapshots per-node availability. nodeAvail is the
// consistent view every rank obtained from the same allgather. rec,
// when enabled, receives one audit event per remerge (candidates,
// their Mem_avl, the threshold that failed, takeover variant) and per
// placement (winner, runners-up, headroom), stamped with group.
func newPlacer(tree *Tree, memberSegs []datatype.List, nodeOfRank []int, nodeAvail map[int]int64, opts Options, m *trace.Metrics, rec *explain.Recorder, group int) *placer {
	p := &placer{
		tree:       tree,
		memberSegs: memberSegs,
		nodeOfRank: nodeOfRank,
		hosts:      make(map[int]*hostState),
		opts:       opts,
		metrics:    m,
		rec:        rec,
		group:      group,
		placed:     make(map[*TreeNode]*Placement),
	}
	for r, node := range nodeOfRank {
		h := p.hosts[node]
		if h == nil {
			h = &hostState{node: node, avail: nodeAvail[node], rankIsAgg: make(map[int]bool)}
			p.hosts[node] = h
			p.hostOrder = append(p.hostOrder, node)
		}
		h.ranks = append(h.ranks, r)
	}
	sort.Ints(p.hostOrder)
	return p
}

// candidates returns the hosts of processes whose requests fall inside
// the leaf's file domain and that can still take an aggregator, in
// deterministic node order.
func (p *placer) candidates(leaf *TreeNode) []*hostState {
	inDomain := make(map[int]bool)
	for r, segs := range p.memberSegs {
		if len(segs.Clip(leaf.Lo, leaf.Hi)) > 0 {
			inDomain[p.nodeOfRank[r]] = true
		}
	}
	var out []*hostState
	for _, node := range p.hostOrder {
		h := p.hosts[node]
		if inDomain[node] && h.aggs < p.opts.Nah {
			out = append(out, h)
		}
	}
	if len(out) > 0 {
		return out
	}
	p.retries++
	// Every data-owning host is saturated (or the leaf covers no
	// member's data after a remerge cascade): fall back to any host
	// with capacity so the domain is still served.
	for _, node := range p.hostOrder {
		if h := p.hosts[node]; h.aggs < p.opts.Nah {
			out = append(out, h)
		}
	}
	if len(out) > 0 {
		return out
	}
	// Truly saturated group: allow overflowing Nah rather than failing.
	for _, node := range p.hostOrder {
		out = append(out, p.hosts[node])
	}
	return out
}

// choose picks the aggregator host for a leaf: the candidate with
// maximum available memory (§3.3), or — for the ablation that disables
// memory awareness — simple rotation over candidates.
func (p *placer) choose(leaf *TreeNode, cands []*hostState) *hostState {
	if p.opts.DisableMemAware {
		// ROMIO-like obliviousness: rotate by leaf position.
		idx := 0
		for i, l := range p.tree.Leaves() {
			if l == leaf {
				idx = i
				break
			}
		}
		return cands[idx%len(cands)]
	}
	best := cands[0]
	for _, h := range cands[1:] {
		if h.avail > best.avail {
			best = h
		}
	}
	return best
}

// Place assigns every current leaf an aggregator, remerging leaves
// whose candidates cannot offer Memmin. It returns placements in file
// order.
func (p *placer) Place() []*Placement {
	// How many aggregators will actually land per node: budgeting a
	// node's memory over Nah slots when only one or two domains will
	// ever live there wastes most of it.
	p.effSlots = (len(p.tree.Leaves()) + len(p.hostOrder) - 1) / len(p.hostOrder)
	if p.effSlots < 1 {
		p.effSlots = 1
	}
	if p.effSlots > p.opts.Nah {
		p.effSlots = p.opts.Nah
	}
	guard := 0
	for {
		guard++
		if guard > 1<<16 {
			panic("core: placement did not converge")
		}
		leaf := p.nextUnplaced()
		if leaf == nil {
			break
		}
		retriesBefore := p.retries
		cands := p.candidates(leaf)
		retried := p.retries > retriesBefore
		host := p.choose(leaf, cands)
		// An aggregator may claim only its share of the host's remaining
		// budget: the memory left divided by the aggregator slots left
		// (§3: "each node uses N_ah I/O aggregators with Msg_ind message
		// size"). Letting the first aggregator drain the node would
		// starve the other slots and cascade needless remerges.
		share := p.share(host)
		if share < p.opts.Memmin && !p.opts.DisableRemerge && len(p.tree.Leaves()) > 1 {
			// Not enough aggregation memory anywhere this domain's data
			// lives: merge it into the neighbouring domain and retry
			// (§3.2). The takeover leaf may already be placed — its
			// domain simply grew and its window schedule will stretch.
			var sib *TreeNode
			if par := leaf.Parent(); par != nil {
				if l, r := par.Children(); l == leaf {
					sib = r
				} else {
					sib = l
				}
			}
			variant := explain.VariantDFS
			if sib != nil && sib.IsLeaf() {
				variant = explain.VariantSibling
			}
			taker := p.tree.RemoveLeaf(leaf)
			p.metrics.AddRemerge()
			if p.rec.Enabled() {
				p.rec.Record(explain.Event{
					Kind: explain.KindRemerge, Group: p.group,
					Lo: leaf.Lo, Hi: leaf.Hi, Data: leaf.DataBytes,
					Variant:   variant,
					Reason:    p.remergeReason(host, share, cands),
					Threshold: p.opts.Memmin, BestShare: share, Node: host.node,
					Candidates: p.auditCandidates(cands),
					TakerLo:    taker.Lo, TakerHi: taker.Hi,
				})
			}
			// Fig 5a turns the parent into the merged leaf, retiring the
			// placed sibling's vertex: carry the placement over so the
			// aggregator it claimed keeps serving the merged domain.
			if sib != nil && taker != sib {
				if sibPl := p.placed[sib]; sibPl != nil {
					delete(p.placed, sib)
					sibPl.Leaf = taker
					p.placed[taker] = sibPl
				}
			}
			continue
		}
		buf := leaf.DataBytes
		if buf > share {
			buf = share
		}
		if buf < collio.BufFloor {
			buf = collio.BufFloor
		}
		agg := p.pickRank(host)
		availBefore := host.avail
		if buf > host.avail {
			host.avail = 0
		} else {
			host.avail -= buf
		}
		host.aggs++
		p.placed[leaf] = &Placement{Leaf: leaf, Agg: agg, Buf: buf}
		if p.rec.Enabled() {
			var runnersUp []explain.Candidate
			for _, h := range cands {
				if h != host {
					runnersUp = append(runnersUp, explain.Candidate{Node: h.node, Avail: h.avail, Share: p.share(h), Aggs: h.aggs})
				}
			}
			p.rec.Record(explain.Event{
				Kind: explain.KindPlace, Group: p.group,
				Lo: leaf.Lo, Hi: leaf.Hi, Data: leaf.DataBytes,
				Node: host.node, Rank: agg, Buf: buf,
				Avail: availBefore, Headroom: host.avail,
				Retry: retried, RunnersUp: runnersUp,
			})
		}
	}
	leaves := p.tree.Leaves()
	out := make([]*Placement, 0, len(leaves))
	for _, l := range leaves {
		pl := p.placed[l]
		if pl == nil {
			panic(fmt.Sprintf("core: leaf %v left unplaced", l))
		}
		out = append(out, pl)
	}
	return out
}

// auditCandidates snapshots the candidate hosts for a decision-audit
// event: each node's Mem_avl, the per-slot share it could offer, and
// its current aggregator load. Only called when the recorder is
// enabled.
func (p *placer) auditCandidates(cands []*hostState) []explain.Candidate {
	out := make([]explain.Candidate, len(cands))
	for i, h := range cands {
		out[i] = explain.Candidate{Node: h.node, Avail: h.avail, Share: p.share(h), Aggs: h.aggs}
	}
	return out
}

// remergeReason formats the human-readable cause of a remerge: the best
// candidate's offer against the Memmin threshold. Only called when the
// recorder is enabled.
func (p *placer) remergeReason(best *hostState, share int64, cands []*hostState) string {
	return fmt.Sprintf("no candidate can offer Memmin=%d bytes: best host node %d has Mem_avl=%d but can only offer a %d-byte share across its remaining aggregator slots (%d candidate host(s) considered)",
		p.opts.Memmin, best.node, best.avail, share, len(cands))
}

// share returns the memory an additional aggregator may claim on a
// host: the remaining budget split over the remaining expected slots.
func (p *placer) share(h *hostState) int64 {
	slots := p.effSlots - h.aggs
	if slots < 1 {
		slots = 1
	}
	return h.avail / int64(slots)
}

// nextUnplaced returns the first leaf (file order) without a placement.
func (p *placer) nextUnplaced() *TreeNode {
	for _, l := range p.tree.Leaves() {
		if p.placed[l] == nil {
			return l
		}
	}
	return nil
}

// pickRank selects the aggregator process on a host: the next rank not
// yet aggregating, in round-robin order so N_ah aggregators spread over
// distinct cores.
func (p *placer) pickRank(h *hostState) int {
	for i := 0; i < len(h.ranks); i++ {
		r := h.ranks[(h.nextRank+i)%len(h.ranks)]
		if !h.rankIsAgg[r] {
			h.nextRank = (h.nextRank + i + 1) % len(h.ranks)
			h.rankIsAgg[r] = true
			return r
		}
	}
	// All ranks on the host already aggregate (possible only when the
	// engine later rejects duplicate domains — callers bound leaves by
	// assignable aggregators, so this is a defensive fallback).
	r := h.ranks[h.nextRank]
	h.nextRank = (h.nextRank + 1) % len(h.ranks)
	return r
}

// AssignableAggregators returns how many distinct aggregator processes
// a group can field: at most Nah per node and one per process.
func AssignableAggregators(nodeOfRank []int, nah int) int {
	perNode := make(map[int]int)
	total := 0
	for _, node := range nodeOfRank {
		if perNode[node] < nah {
			perNode[node]++
			total++
		}
	}
	return total
}

// MemoryAssignableAggregators additionally respects each node's
// available memory: a node fields at most avail/memmin aggregator
// slots, since anything beyond that could not be given Memmin bytes.
// At least one slot overall is always reported so a fully starved
// group still makes progress (with a floor-sized buffer).
func MemoryAssignableAggregators(nodeOfRank []int, nodeAvail map[int]int64, nah int, memmin int64) int {
	perNodeLimit := make(map[int]int)
	for node, avail := range nodeAvail {
		slots := nah
		if memmin > 0 {
			byMem := int(avail / memmin)
			if byMem < slots {
				slots = byMem
			}
		}
		perNodeLimit[node] = slots
	}
	perNode := make(map[int]int)
	total := 0
	for _, node := range nodeOfRank {
		if perNode[node] < perNodeLimit[node] {
			perNode[node]++
			total++
		}
	}
	if total < 1 {
		total = 1
	}
	return total
}
