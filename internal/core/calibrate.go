package core

import (
	"fmt"
	"strings"

	"repro/internal/buffer"
	"repro/internal/cluster"
	"repro/internal/iolib"
	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/simtime"
)

// Calibration is the measurement-based determination of MCCIO's
// tunables that §3 of the paper describes:
//
//	"First we determine the optimal number of aggregators N_ah and
//	 message size Msg_ind per aggregator that can fully utilize the
//	 I/O bandwidth in one physical compute node ... Next we identify
//	 the minimum memory consumption Mem_min for one physical node ...
//	 Finally, we consider the aggregation I/O traffic contention on
//	 system level by increasing the number of aggregators across the
//	 system network [to] find the optimal group message size Msg_group."
//
// Each step runs micro-simulations on a throwaway copy of the platform
// and reads throughput off the virtual clock, exactly as the authors
// measured their cluster. DefaultOptions is the closed-form shortcut;
// Calibrate is the empirical procedure.

// CalibrationReport records what each step measured.
type CalibrationReport struct {
	MsgindCurve   []CurvePoint // message size -> single-stream MB/s
	NahCurve      []CurvePoint // writers per node -> node aggregate MB/s
	MemminCurve   []CurvePoint // buffer size -> rounds-limited MB/s
	MsggroupCurve []CurvePoint // system-wide aggregators -> aggregate MB/s
	Result        Options
}

// CurvePoint is one measured point of a calibration sweep.
type CurvePoint struct {
	X float64 // the swept parameter (bytes or count)
	Y float64 // measured MB/s
}

// String renders the report compactly.
func (cr *CalibrationReport) String() string {
	var b strings.Builder
	dump := func(name string, pts []CurvePoint) {
		fmt.Fprintf(&b, "%s:", name)
		for _, p := range pts {
			fmt.Fprintf(&b, " (%.3g → %.0f MB/s)", p.X, p.Y)
		}
		fmt.Fprintln(&b)
	}
	dump("msgind", cr.MsgindCurve)
	dump("nah", cr.NahCurve)
	dump("memmin", cr.MemminCurve)
	dump("msggroup", cr.MsggroupCurve)
	fmt.Fprintf(&b, "result: Msgind=%d Nah=%d Memmin=%d Msggroup=%d\n",
		cr.Result.Msgind, cr.Result.Nah, cr.Result.Memmin, cr.Result.Msggroup)
	return b.String()
}

// measureStreams times k concurrent writer processes on the first k
// slots of a fresh copy of the platform, each writing total bytes in
// msgSize requests, and returns aggregate MB/s. Jitter is disabled so
// the curves show the systematic knees, not noise.
func measureStreams(mcfg cluster.Config, fcfg pfs.Config, writers int, perNode int, msgSize, total int64) (float64, error) {
	fcfg.JitterMean = 0
	mcfg.MemSigma = 0
	// Give the probe machine plenty of ledger room; calibration probes
	// raw transport, not the allocator.
	mcfg.MemPerNode = 4 << 30
	mcfg.MemFloor = 0
	if perNode < 1 {
		perNode = 1
	}
	nodesNeeded := (writers + perNode - 1) / perNode
	if nodesNeeded > mcfg.Nodes {
		mcfg.Nodes = nodesNeeded
	}
	engine := simtime.NewEngine()
	machine, err := cluster.New(mcfg)
	if err != nil {
		return 0, err
	}
	fs, err := pfs.New(fcfg, machine)
	if err != nil {
		return 0, err
	}
	f := iolib.Open(fs, "calib")
	// Place writer i on node i/perNode, core i%perNode.
	world, err := mpi.NewWorld(engine, machine, machine.NumRanks())
	if err != nil {
		return 0, err
	}
	var last float64
	world.Start(func(c *mpi.Comm) {
		node := c.Rank() / mcfg.CoresPerNode
		core := c.Rank() % mcfg.CoresPerNode
		writer := node*perNode + core
		if core >= perNode || writer >= writers {
			return
		}
		off := int64(writer) * total
		for pos := int64(0); pos < total; pos += msgSize {
			n := msgSize
			if pos+n > total {
				n = total - pos
			}
			f.WriteAt(c.Proc(), c.WorldRank(c.Rank()), off+pos, buffer.NewPhantom(n))
		}
		if c.Now() > last {
			last = c.Now()
		}
	})
	if err := engine.Run(); err != nil {
		return 0, err
	}
	if last <= 0 {
		return 0, fmt.Errorf("core: calibration run moved no data")
	}
	return float64(int64(writers)*total) / 1e6 / last, nil
}

// Calibrate measures Msgind, Nah, Memmin, and Msggroup on the platform.
func Calibrate(mcfg cluster.Config, fcfg pfs.Config) (*CalibrationReport, error) {
	rep := &CalibrationReport{}
	const probeData = 64 << 20

	// Step 1 — Msgind: single stream, growing message size; pick the
	// smallest size reaching 90% of the best observed throughput.
	var best float64
	sizes := []int64{64 << 10, 256 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20}
	rates := make([]float64, len(sizes))
	for i, sz := range sizes {
		r, err := measureStreams(mcfg, fcfg, 1, 1, sz, probeData)
		if err != nil {
			return nil, err
		}
		rates[i] = r
		rep.MsgindCurve = append(rep.MsgindCurve, CurvePoint{X: float64(sz), Y: r})
		if r > best {
			best = r
		}
	}
	msgind := sizes[len(sizes)-1]
	for i, r := range rates {
		if r >= 0.9*best {
			msgind = sizes[i]
			break
		}
	}
	// Align to the stripe unit as the paper's domain layout implies.
	if msgind < fcfg.StripeUnit {
		msgind = fcfg.StripeUnit
	} else {
		msgind = (msgind + fcfg.StripeUnit - 1) / fcfg.StripeUnit * fcfg.StripeUnit
	}

	// Step 2 — Nah: one node, growing concurrent writers at Msgind; pick
	// the last count that still improved node throughput by >= 5%.
	nah := 1
	var prev float64
	for k := 1; k <= mcfg.CoresPerNode; k++ {
		r, err := measureStreams(mcfg, fcfg, k, k, msgind, probeData/int64(k))
		if err != nil {
			return nil, err
		}
		rep.NahCurve = append(rep.NahCurve, CurvePoint{X: float64(k), Y: r})
		if k == 1 || r >= prev*1.05 {
			nah = k
			prev = r
		} else {
			break
		}
	}

	// Step 3 — Memmin: one aggregator streaming a fixed volume through
	// shrinking buffers (more, smaller requests); the minimum viable
	// memory is the smallest buffer keeping >= 50% of the Msgind rate.
	memmin := msgind
	bufs := []int64{msgind, msgind / 2, msgind / 4, msgind / 8, msgind / 16}
	for _, b := range bufs {
		if b < 64<<10 {
			break
		}
		r, err := measureStreams(mcfg, fcfg, 1, 1, b, probeData)
		if err != nil {
			return nil, err
		}
		rep.MemminCurve = append(rep.MemminCurve, CurvePoint{X: float64(b), Y: r})
		if r >= 0.5*best {
			memmin = b
		}
	}

	// Step 4 — Msggroup: growing aggregator count across nodes (Nah per
	// node) at Msgind; saturation count × Msgind × pipeline depth gives
	// the group message size.
	satAggs := 1
	prev = 0
	for k := 1; k <= 4*mcfg.Nodes*nah && k <= 256; k *= 2 {
		r, err := measureStreams(mcfg, fcfg, k, nah, msgind, probeData/int64(k)+msgind)
		if err != nil {
			return nil, err
		}
		rep.MsggroupCurve = append(rep.MsggroupCurve, CurvePoint{X: float64(k), Y: r})
		if r >= prev*1.05 {
			satAggs = k
			prev = r
		} else {
			break
		}
	}
	msggroup := int64(satAggs) * msgind * 4

	rep.Result = Options{Msgind: msgind, Msggroup: msggroup, Nah: nah, Memmin: memmin}
	return rep, nil
}
