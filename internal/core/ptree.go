// Package core implements Memory-Conscious Collective I/O (MCCIO), the
// paper's contribution. It enhances two-phase collective I/O with four
// components:
//
//   - Aggregation Group Division (§3.1): the I/O workload is divided
//     into disjoint subgroups aligned to physical-node boundaries and
//     sized by the optimal group message size Msg_group; all shuffle
//     traffic stays inside a subgroup.
//   - I/O Workload Partition (§3.2): within a group, the aggregate
//     file region is recursively bisected into a binary partition tree
//     whose leaves are file domains holding at most Msg_ind bytes of
//     requested data.
//   - Workload Portion Remerging (§3.2): a file domain that cannot be
//     hosted (no candidate node has Mem_min available) leaves the tree,
//     its region taken over by the neighbouring leaf (sibling-leaf
//     takeover, Fig 5a, or directional DFS into the sibling subtree,
//     Fig 5b).
//   - Aggregator Location (§3.3): each file domain's aggregator is
//     placed on the candidate host with maximum available memory,
//     subject to at most N_ah aggregators per host.
//
// The resulting plan runs on the same two-phase round engine as the
// baseline (internal/collio), which is exactly how the paper frames
// MCCIO: a new planner for the existing protocol.
package core

import (
	"fmt"

	"repro/internal/datatype"
	"repro/internal/explain"
)

// TreeNode is a vertex of the binary partition tree. Every vertex
// represents a non-overlapping portion [Lo, Hi) of the group's file
// region; leaves are the current file domains.
type TreeNode struct {
	Lo, Hi    int64
	DataBytes int64 // requested bytes covered inside [Lo, Hi)

	parent      *TreeNode
	left, right *TreeNode
}

// IsLeaf reports whether the vertex is a current file domain.
func (n *TreeNode) IsLeaf() bool { return n.left == nil && n.right == nil }

// Parent returns the parent vertex (nil at the root).
func (n *TreeNode) Parent() *TreeNode { return n.parent }

// Children returns the left and right children (nil for leaves).
func (n *TreeNode) Children() (*TreeNode, *TreeNode) { return n.left, n.right }

func (n *TreeNode) String() string {
	kind := "leaf"
	if !n.IsLeaf() {
		kind = "node"
	}
	return fmt.Sprintf("%s[%d,%d) data=%d", kind, n.Lo, n.Hi, n.DataBytes)
}

// Tree is the binary partition tree of one aggregation group's file
// region.
type Tree struct {
	root     *TreeNode
	coverage datatype.List // the group's aggregate request coverage

	rec   *explain.Recorder // decision audit; nil disables
	group int               // aggregation-group index for audit events
}

// BuildTree recursively bisects the coverage's extent until every leaf
// holds at most msgind covered bytes, producing at most maxLeaves
// leaves. Bisection balances *data*, not offsets: each split point is
// the file offset at which half the portion's covered bytes lie to the
// left, so sparse and dense regions get equally loaded domains.
func BuildTree(coverage datatype.List, msgind int64, maxLeaves int) *Tree {
	return BuildTreeExplained(coverage, msgind, maxLeaves, nil, -1)
}

// BuildTreeExplained is BuildTree with a decision-audit recorder: every
// bisection is recorded (vertex extent, cut offset, covered bytes per
// half) under the given aggregation-group index, in the exact recursion
// order — left before right — so a reader can replay the events to
// reconstruct the tree. A nil recorder makes it identical to BuildTree.
func BuildTreeExplained(coverage datatype.List, msgind int64, maxLeaves int, rec *explain.Recorder, group int) *Tree {
	if msgind <= 0 {
		panic(fmt.Sprintf("core: msgind %d", msgind))
	}
	if maxLeaves < 1 {
		maxLeaves = 1
	}
	lo, hi := coverage.Extent()
	root := &TreeNode{Lo: lo, Hi: hi, DataBytes: coverage.TotalBytes()}
	t := &Tree{root: root, coverage: coverage, rec: rec, group: group}
	t.split(root, msgind, maxLeaves)
	return t
}

// split bisects n until its leaves satisfy the termination criterion,
// spending at most budget leaves.
func (t *Tree) split(n *TreeNode, msgind int64, budget int) {
	if n.DataBytes <= msgind || budget <= 1 {
		return
	}
	cut := t.halfDataOffset(n)
	if cut <= n.Lo || cut >= n.Hi {
		return // cannot bisect further (single byte of extent)
	}
	leftData := t.coverage.Clip(n.Lo, cut).TotalBytes()
	rightData := n.DataBytes - leftData
	if leftData == 0 || rightData == 0 {
		return // degenerate cut; keep as leaf
	}
	n.left = &TreeNode{Lo: n.Lo, Hi: cut, DataBytes: leftData, parent: n}
	n.right = &TreeNode{Lo: cut, Hi: n.Hi, DataBytes: rightData, parent: n}
	t.rec.Bisect(t.group, n.Lo, n.Hi, n.DataBytes, cut, leftData)
	lb := budget / 2
	rb := budget - lb
	t.split(n.left, msgind, lb)
	t.split(n.right, msgind, rb)
}

// halfDataOffset returns the offset splitting n's covered bytes in two.
func (t *Tree) halfDataOffset(n *TreeNode) int64 {
	cov := t.coverage.Clip(n.Lo, n.Hi)
	half := (n.DataBytes + 1) / 2
	var acc int64
	for _, s := range cov {
		if acc+s.Len >= half {
			cut := s.Off + (half - acc)
			// Snap to a segment edge when the cut lands at one; keeps
			// domains aligned to request boundaries where possible.
			if cut > s.End() {
				cut = s.End()
			}
			return cut
		}
		acc += s.Len
	}
	return n.Hi
}

// Root returns the root vertex.
func (t *Tree) Root() *TreeNode { return t.root }

// Coverage returns the group coverage the tree was built from.
func (t *Tree) Coverage() datatype.List { return t.coverage }

// Leaves returns the current file domains in file order.
func (t *Tree) Leaves() []*TreeNode {
	var out []*TreeNode
	var walk func(n *TreeNode)
	walk = func(n *TreeNode) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			out = append(out, n)
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	return out
}

// SiblingLeafIndex returns the index, in Leaves() order, of the leaf
// that would absorb leaf i under workload-portion remerging: the
// nearest leaf inside i's sibling subtree — the same leaf RemoveLeaf
// would hand the region to (Fig 5a/5b). Because Leaves() walks
// in-order, that is simply the adjacent leaf on the sibling's side.
// Returns -1 for a single-leaf tree or an out-of-range index.
func (t *Tree) SiblingLeafIndex(i int) int {
	leaves := t.Leaves()
	if i < 0 || i >= len(leaves) {
		return -1
	}
	p := leaves[i].parent
	if p == nil {
		return -1
	}
	if p.left == leaves[i] {
		return i + 1 // first leaf of the right sibling subtree
	}
	return i - 1 // last leaf of the left sibling subtree
}

// RemoveLeaf removes leaf a from the tree — the Workload Portion
// Remerging operation. It returns the leaf that took over a's region:
//
//   - If a's sibling b is a leaf (Fig 5a), the parent becomes a leaf
//     owned by b: the two regions merge into one domain.
//   - If b is internal (Fig 5b), a depth-first search inside b's
//     subtree finds the leaf adjacent to a (leftmost leaf when a was
//     the left sibling, rightmost when right); that leaf c absorbs a's
//     region, the parent vertex leaves the tree, and the extents along
//     c's spine stretch to cover the absorbed region.
//
// It panics when a is not a leaf or is the root (the last domain of a
// group cannot be removed; the caller must keep at least one).
func (t *Tree) RemoveLeaf(a *TreeNode) *TreeNode {
	if !a.IsLeaf() {
		panic(fmt.Sprintf("core: RemoveLeaf on internal vertex %v", a))
	}
	p := a.parent
	if p == nil {
		panic("core: cannot remove the only domain of a group")
	}
	b := p.left
	aIsLeft := false
	if b == a {
		b = p.right
		aIsLeft = true
	}

	if b.IsLeaf() {
		// Fig 5a: parent becomes the merged leaf.
		p.left, p.right = nil, nil
		p.DataBytes = a.DataBytes + b.DataBytes
		return p
	}

	// Fig 5b: contract p (replace it with b), then stretch the spine.
	gp := p.parent
	b.parent = gp
	if gp == nil {
		t.root = b
	} else if gp.left == p {
		gp.left = b
	} else {
		gp.right = b
	}
	// Stretch b's subtree toward a's side and descend to the adjacent
	// leaf, extending every vertex on the way.
	c := b
	for {
		if aIsLeft {
			c.Lo = a.Lo
		} else {
			c.Hi = a.Hi
		}
		c.DataBytes += a.DataBytes
		if c.IsLeaf() {
			return c
		}
		if aIsLeft {
			c = c.left
		} else {
			c = c.right
		}
	}
}

// CheckInvariants verifies the partition-tree structural invariants:
// children tile their parent exactly, data adds up, leaves tile the
// root in order. Tests and debug assertions use it.
func (t *Tree) CheckInvariants() error {
	var err error
	var walk func(n *TreeNode)
	walk = func(n *TreeNode) {
		if n == nil || err != nil {
			return
		}
		if (n.left == nil) != (n.right == nil) {
			err = fmt.Errorf("vertex %v has exactly one child", n)
			return
		}
		if n.left != nil {
			l, r := n.left, n.right
			if l.Lo != n.Lo || r.Hi != n.Hi || l.Hi != r.Lo {
				err = fmt.Errorf("children of %v do not tile it: %v + %v", n, l, r)
				return
			}
			if l.DataBytes+r.DataBytes != n.DataBytes {
				err = fmt.Errorf("data of %v != children sum %d+%d", n, l.DataBytes, r.DataBytes)
				return
			}
			if l.parent != n || r.parent != n {
				err = fmt.Errorf("broken parent pointers under %v", n)
				return
			}
			walk(l)
			walk(r)
		}
	}
	walk(t.root)
	if err != nil {
		return err
	}
	leaves := t.Leaves()
	prev := t.root.Lo
	var data int64
	for _, l := range leaves {
		if l.Lo != prev {
			return fmt.Errorf("leaf %v does not start at previous end %d", l, prev)
		}
		prev = l.Hi
		data += l.DataBytes
	}
	if prev != t.root.Hi {
		return fmt.Errorf("leaves end at %d, root at %d", prev, t.root.Hi)
	}
	if data != t.root.DataBytes {
		return fmt.Errorf("leaf data %d != root data %d", data, t.root.DataBytes)
	}
	return nil
}
