package core

import (
	"fmt"
	"strconv"

	"repro/internal/buffer"
	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/datatype"
	"repro/internal/iolib"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/trace"
	"repro/internal/twolayer"
)

// Options are MCCIO's tunables. The paper determines the first three
// empirically per platform (§3); DefaultOptions derives them from the
// machine and file-system configuration the way the paper's calibration
// procedure does, and the Disable* flags implement the ablations
// DESIGN.md calls out.
type Options struct {
	// Msgind is the per-aggregator message size that saturates one
	// storage stream: partition-tree leaves hold at most this much data.
	Msgind int64
	// Msggroup is the data volume per aggregation group; group division
	// closes a group at the next node boundary once its members hold
	// this much. <= 0 disables grouping (one global group).
	Msggroup int64
	// Nah is the maximum number of aggregators hosted per node.
	Nah int
	// Memmin is the minimum memory a node must have available to host
	// an aggregator; a domain whose candidates all fall short is
	// remerged with its neighbour.
	Memmin int64

	// NodeCombine enables the two-layer exchange: within each node,
	// ranks funnel shuffle pieces to a node leader over the memory bus
	// and only leaders cross the fabric — the intra-node/inter-node
	// coordination the paper's abstract describes. Leaders are the
	// lowest rank per node.
	NodeCombine bool

	// TwoLayer runs the full two-layer aggregation (Kang et al.,
	// arXiv:1907.12656) *within each aggregation group*: node leaders
	// are elected by available memory per group, intra-node pieces are
	// merged into file order, and read aggregators deduplicate
	// node-shared data. Supersedes NodeCombine when both are set.
	TwoLayer bool

	// Ablations.
	DisableGroups   bool // one global group regardless of Msggroup
	DisableMemAware bool // rotate hosts instead of max-available-memory
	DisableRemerge  bool // place on the best host even below Memmin
}

// Validate rejects unusable options.
func (o Options) Validate() error {
	if o.Msgind <= 0 {
		return fmt.Errorf("core: Msgind must be positive, got %d", o.Msgind)
	}
	if o.Nah <= 0 {
		return fmt.Errorf("core: Nah must be positive, got %d", o.Nah)
	}
	if o.Memmin < 0 {
		return fmt.Errorf("core: negative Memmin %d", o.Memmin)
	}
	return nil
}

// DefaultOptions mirrors §3's calibration on the simulated platform:
//
//   - Msgind: the smallest request for which per-request overhead is
//     under ~5% of service time (latency amortisation), rounded up to
//     a stripe unit so domain boundaries align with OST boundaries.
//   - Nah: aggregator streams needed to fill one node's injection
//     bandwidth with Msgind-sized requests, bounded by cores.
//   - Msggroup: data in flight needed to saturate the shared
//     compute→storage pipe, spread over Nah-aggregator nodes.
//   - Memmin: an aggregator below an eighth of Msgind thrashes in
//     rounds; less than that and the domain should merge instead.
func DefaultOptions(mc cluster.Config, fc pfs.Config) Options {
	msgind := int64(20 * fc.OSTLatency * fc.OSTBW)
	if msgind < fc.StripeUnit {
		msgind = fc.StripeUnit
	} else {
		msgind = (msgind + fc.StripeUnit - 1) / fc.StripeUnit * fc.StripeUnit
	}
	nah := int(mc.NICBW / fc.OSTBW)
	if nah < 1 {
		nah = 1
	}
	if nah > mc.CoresPerNode {
		nah = mc.CoresPerNode
	}
	streams := mc.IONetBW / fc.OSTBW
	if streams < 1 {
		streams = 1
	}
	msggroup := int64(streams) * msgind * 4
	memmin := msgind / 8
	if memmin < 256<<10 {
		memmin = 256 << 10
	}
	return Options{Msgind: msgind, Msggroup: msggroup, Nah: nah, Memmin: memmin}
}

// MCCIO is the memory-conscious collective I/O strategy.
type MCCIO struct {
	Opts Options
}

// Name implements iolib.Collective.
func (mc MCCIO) Name() string { return "mccio" }

// rankMeta is the global metadata each rank contributes before group
// division: its extent, request volume, node, and the node's available
// aggregation memory.
type rankMeta struct {
	Ext       collio.Ext
	Bytes     int64
	Node      int
	NodeAvail int64
	NumSegs   int
}

const rankMetaBytes = 48

// segsMsg carries a rank's full (group-clipped) request list during the
// in-group view exchange.
type segsMsg struct {
	segs datatype.List
}

// WriteAll implements iolib.Collective.
func (mc MCCIO) WriteAll(f *iolib.File, c *mpi.Comm, view datatype.List, data buffer.Buf, m *trace.Metrics) {
	mc.run("write", f, c, view, data, m)
}

// ReadAll implements iolib.Collective.
func (mc MCCIO) ReadAll(f *iolib.File, c *mpi.Comm, view datatype.List, dst buffer.Buf, m *trace.Metrics) {
	mc.run("read", f, c, view, dst, m)
}

func (mc MCCIO) run(op string, f *iolib.File, c *mpi.Comm, view datatype.List, data buffer.Buf, m *trace.Metrics) {
	if err := mc.Opts.Validate(); err != nil {
		panic(err)
	}
	// The whole planning pipeline — metadata allgather, group division,
	// in-group view exchange, partition tree, placement, plan broadcast —
	// is one top-level plan span. Groups do not exist yet when it opens,
	// so its location carries no group.
	t := c.Tracer()
	psp := t.Begin(obs.PhasePlan, obs.Loc{Rank: c.WorldRank(c.Rank()), Node: c.NodeOf(c.Rank()), Group: -1, Round: -1})
	machine := c.World().Machine()
	lo, hi := view.Extent()
	meta := rankMeta{
		Ext:       collio.Ext{Lo: lo, Hi: hi},
		Bytes:     view.TotalBytes(),
		Node:      c.NodeOf(c.Rank()),
		NodeAvail: machine.Node(c.NodeOf(c.Rank())).Available(),
		NumSegs:   len(view),
	}
	raw := c.Allgather(meta, rankMetaBytes)
	metas := make([]rankMeta, len(raw))
	bytesPer := make([]int64, len(raw))
	for i, v := range raw {
		metas[i] = v.(rankMeta)
		bytesPer[i] = metas[i].Bytes
	}

	// Aggregation Group Division.
	msggroup := mc.Opts.Msggroup
	if mc.Opts.DisableGroups {
		msggroup = 0
	}
	nodeAvailOf := func(node int) int64 {
		for _, mt := range metas {
			if mt.Node == node {
				return mt.NodeAvail
			}
		}
		return 0
	}
	groups := DivideGroupsMemAware(func(r int) int { return metas[r].Node }, bytesPer, msggroup,
		nodeAvailOf, mc.Opts.Memmin)
	colors := ColorOf(groups, c.Size())
	if c.Rank() == 0 {
		var total int64
		for _, b := range bytesPer {
			total += b
		}
		t.Instant(obs.EventGroupDivision, obs.Loc{Rank: c.WorldRank(0), Node: c.NodeOf(0), Group: -1, Round: -1}, total, int64(len(groups)))
		auditGroups(machine.Explain(), op, total, msggroup, groups)
		// Planner metrics: one rank records the group count and the
		// memory-availability snapshot the whole plan worked from, so the
		// exposition reflects exactly what placement saw.
		reg := c.Metrics()
		reg.Counter("mccio_plan_groups_total",
			"Aggregation groups formed by group division.", "op", op).Add(float64(len(groups)))
		seen := make(map[int]bool)
		for _, mt := range metas {
			if seen[mt.Node] {
				continue
			}
			seen[mt.Node] = true
			reg.Gauge("mccio_plan_node_mem_avail_bytes",
				"Aggregation-memory headroom per node in the planner's consistent snapshot.",
				"node", strconv.Itoa(mt.Node)).Set(float64(mt.NodeAvail))
		}
	}
	m.SetGroups(len(groups))
	sub := c.Split(colors[c.Rank()], 0)
	g := groups[colors[c.Rank()]]

	// In-group exchange of full request lists: the group root learns
	// the group's aggregate pattern, computes coverage, partition tree,
	// remerges and placement once, and broadcasts the resulting plan —
	// the "let the aggregators know the entire aggregated I/O requests"
	// step, paid once per group instead of once per process.
	segsRaw := sub.Gather(0, segsMsg{segs: view}, int64(len(view))*16+8)
	var plan *collio.Plan
	remerges := 0
	if sub.Rank() == 0 {
		memberSegs := make([]datatype.List, sub.Size())
		nodeOfRank := make([]int, sub.Size())
		var all datatype.List
		for i, v := range segsRaw {
			memberSegs[i] = v.(segsMsg).segs
			nodeOfRank[i] = sub.NodeOf(i)
			all = append(all, memberSegs[i]...)
		}
		coverage := datatype.Normalize(all)

		// Exact writes: groups aggregate disjoint data that interleaves
		// in the file, so an extent RMW in one group could overwrite
		// another group's concurrent writes with stale bytes.
		plan = &collio.Plan{Exts: make([]collio.Ext, sub.Size()), ExactWrite: true, NodeCombine: mc.Opts.NodeCombine, MemMin: mc.Opts.Memmin}
		for i, segs := range memberSegs {
			l, h := segs.Extent()
			plan.Exts[i] = collio.Ext{Lo: l, Hi: h}
		}

		if coverage.TotalBytes() > 0 {
			// Aggregator Location works from the consistent availability
			// snapshot of the global allgather.
			nodeAvail := make(map[int]int64)
			for _, mt := range metas[g.First : g.Last+1] {
				nodeAvail[mt.Node] = mt.NodeAvail
			}
			// I/O Workload Partition: leaves hold <= msgind data, but
			// never more leaves than the group can field aggregators —
			// counting only slots the nodes can back with Memmin memory,
			// so the tree is born balanced for what placement can host
			// instead of being remerged into shape leaf by leaf.
			maxAggs := MemoryAssignableAggregators(nodeOfRank, nodeAvail, mc.Opts.Nah, mc.Opts.Memmin)
			msgind := mc.Opts.Msgind
			if need := (coverage.TotalBytes() + int64(maxAggs) - 1) / int64(maxAggs); need > msgind {
				msgind = need
			}
			rec := machine.Explain()
			tree := BuildTreeExplained(coverage, msgind, maxAggs, rec, colors[c.Rank()])
			auditTree(rec, colors[c.Rank()], tree, msgind, maxAggs)
			var pm trace.Metrics
			pl := newPlacer(tree, memberSegs, nodeOfRank, nodeAvail, mc.Opts, &pm, rec, colors[c.Rank()])
			placements := pl.Place()
			remerges = pm.Remerges
			reg := c.Metrics()
			reg.Counter("mccio_plan_remerges_total",
				"Workload-portion remerges performed during placement.", "op", op).Add(float64(remerges))
			reg.Counter("mccio_plan_placement_retries_total",
				"Aggregator placements that fell back past the data-owning hosts.", "op", op).Add(float64(pl.retries))

			gloc := obs.Loc{Rank: c.WorldRank(c.Rank()), Node: c.NodeOf(c.Rank()), Group: colors[c.Rank()], Round: -1}
			t.Instant(obs.EventPartition, gloc, coverage.TotalBytes(), int64(len(placements)))
			if remerges > 0 {
				t.Instant(obs.EventRemerge, gloc, 0, int64(remerges))
			}
			for _, pl := range placements {
				t.Instant(obs.EventPlace, gloc, pl.Buf, int64(pl.Agg))
			}

			for i, pl := range placements {
				domCov := coverage.Clip(pl.Leaf.Lo, pl.Leaf.Hi)
				plan.Domains = append(plan.Domains, collio.Domain{
					Agg: pl.Agg, Lo: pl.Leaf.Lo, Hi: pl.Leaf.Hi,
					BufBytes: pl.Buf,
					Windows:  collio.CoverageWindows(domCov, pl.Buf),
					// Failover identity: the partition tree's adjacent leaf
					// absorbs this domain if its aggregator is lost mid-run
					// (placements are in Leaves() order).
					Sibling:   tree.SiblingLeafIndex(i),
					NodeAvail: nodeAvail[nodeOfRank[pl.Agg]],
				})
			}
			plan.Rounds = maxRoundsOf(plan)

			// Two-layer composition: elect node leaders within the group
			// from the same consistent snapshot the placement used, so the
			// group's exchange runs intra-node funnels under the
			// memory-conscious domain layout.
			if mc.Opts.TwoLayer {
				spanOf := make([]int64, sub.Size())
				availOf := make([]int64, sub.Size())
				for r := range memberSegs {
					if l, h := memberSegs[r].Extent(); h > l {
						spanOf[r] = h - l
					}
					availOf[r] = nodeAvail[nodeOfRank[r]]
				}
				if el := twolayer.Elect(nodeOfRank, availOf, spanOf); el.MultiRank {
					plan.NodeCombine = true
					plan.LeaderOf = el.LeaderOf
					plan.LeaderSucc = el.Succ
					twolayer.Audit(sub, op, colors[c.Rank()], el)
					m.AddLeaders(len(el.Leaders))
				}
			}
		}
	}
	plan = sub.Bcast(0, plan, planWireBytes(plan)).(*collio.Plan)
	// Stamp the group identity so engine spans carry it. All ranks of a
	// group share the plan pointer and the same color, so this is stable.
	plan.Group = colors[c.Rank()]
	psp.End()
	for i := 0; i < remerges; i++ {
		m.AddRemerge()
	}
	var myBuf int64
	for _, d := range plan.Domains {
		if d.Agg == sub.Rank() {
			myBuf = d.BufBytes
		}
	}

	// Charge my aggregation buffer, run the two-phase rounds in-group,
	// release.
	var node *cluster.Node
	if myBuf > 0 {
		node = machine.Node(c.NodeOf(c.Rank()))
		if !node.Alloc(myBuf) {
			node.MustAlloc(myBuf)
		}
	}
	vi := iolib.NewViewIndex(view)
	switch op {
	case "write":
		collio.ExecuteWrite(f, sub, vi, data, plan, m)
	case "read":
		collio.ExecuteRead(f, sub, vi, data, plan, m)
	}
	if node != nil {
		node.Free(myBuf)
	}
}

// planWireBytes estimates the broadcast size of a plan: per-domain
// header plus windows plus per-rank extents. nil (non-root) plans cost
// nothing; Bcast charges only the root's payload.
func planWireBytes(p *collio.Plan) int64 {
	if p == nil {
		return 0
	}
	n := int64(len(p.Exts)) * 16
	for _, d := range p.Domains {
		n += 40 + int64(len(d.Windows))*16
	}
	if p.LeaderOf != nil {
		// Elected leader map plus the node succession lines.
		n += int64(len(p.LeaderOf)) * 16
	}
	return n
}

// maxRoundsOf returns the maximum window count across domains.
func maxRoundsOf(p *collio.Plan) int {
	r := 0
	for _, d := range p.Domains {
		if len(d.Windows) > r {
			r = len(d.Windows)
		}
	}
	return r
}
