package core

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/datatype"
	"repro/internal/iolib"
	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/simtime"
	"repro/internal/trace"
)

func testMachine(t *testing.T, nodes, cores int, memPerNode int64, sigma float64) *cluster.Machine {
	t.Helper()
	m, err := cluster.New(cluster.Config{
		Nodes: nodes, CoresPerNode: cores,
		MemPerNode: memPerNode, MemSigma: sigma, Seed: 7,
		MemBusBW: 1e10, MemBusLat: 1e-7,
		NICBW: 1e9, NICLat: 1e-6,
		BisectionBW: float64(nodes) * 5e8, BisectionLat: 1e-6,
		IONetBW: 2e9, IONetLat: 1e-5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testFS(t *testing.T, m *cluster.Machine) *pfs.FS {
	t.Helper()
	fs, err := pfs.New(pfs.Config{OSTs: 4, StripeUnit: 1 << 20, OSTBW: 5e8, OSTLatency: 5e-4}, m)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func fillViewBuffer(view datatype.List, tag uint64) buffer.Buf {
	buf := buffer.NewReal(view.TotalBytes())
	var pos int64
	for _, s := range view {
		buf.Slice(pos, s.Len).Fill(tag, s.Off)
		pos += s.Len
	}
	return buf
}

func interleavedView(rank, nprocs, blocks int, blockLen int64) datatype.List {
	v := datatype.Vector{Count: int64(blocks), BlockLen: blockLen, Stride: blockLen * int64(nprocs)}
	return datatype.Normalize(v.Segments(nil, int64(rank)*blockLen))
}

func testOpts(msgind, msggroup int64) Options {
	return Options{Msgind: msgind, Msggroup: msggroup, Nah: 2, Memmin: 64 << 10}
}

// runMCCIO drives a write+verify-read cycle and returns rank 0's write result.
func runMCCIO(t *testing.T, s iolib.Collective, m *cluster.Machine, nprocs, blocks int, blockLen int64) trace.Result {
	t.Helper()
	e := simtime.NewEngine()
	// The machine carries link/ledger state; tests construct a fresh
	// machine per run so simtime reservations start clean.
	w, err := mpi.NewWorld(e, m, nprocs)
	if err != nil {
		t.Fatal(err)
	}
	fs := testFS(t, m)
	f := iolib.Open(fs, "shared")
	var res trace.Result
	w.Start(func(c *mpi.Comm) {
		view := interleavedView(c.Rank(), nprocs, blocks, blockLen)
		data := fillViewBuffer(view, uint64(c.Rank()))
		r := iolib.Run(s, "write", f, c, view, data, &trace.Metrics{})
		if c.Rank() == 0 {
			res = r
		}
		dst := buffer.NewReal(view.TotalBytes())
		iolib.Run(s, "read", f, c, view, dst, &trace.Metrics{})
		var pos int64
		for _, seg := range view {
			if i := dst.Slice(pos, seg.Len).Verify(uint64(c.Rank()), seg.Off); i != -1 {
				t.Errorf("rank %d segment %v mismatch at %d", c.Rank(), seg, i)
			}
			pos += seg.Len
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMCCIOWriteReadRoundTrip(t *testing.T) {
	m := testMachine(t, 3, 4, 64*cluster.MiB, 0)
	res := runMCCIO(t, MCCIO{Opts: testOpts(128<<10, 512<<10)}, m, 12, 16, 4<<10)
	if res.Bytes != 12*16*4<<10 {
		t.Fatalf("bytes %d", res.Bytes)
	}
	if res.Groups < 2 {
		t.Fatalf("groups %d: msggroup should have split this workload", res.Groups)
	}
	if res.Aggregators == 0 || res.Rounds == 0 {
		t.Fatalf("bad result %+v", res.Metrics)
	}
}

func TestMCCIOSingleGroupWhenDisabled(t *testing.T) {
	m := testMachine(t, 2, 2, 64*cluster.MiB, 0)
	opts := testOpts(128<<10, 1<<10)
	opts.DisableGroups = true
	res := runMCCIO(t, MCCIO{Opts: opts}, m, 4, 8, 4<<10)
	if res.Groups != 1 {
		t.Fatalf("groups %d with grouping disabled", res.Groups)
	}
}

func TestMCCIOCollapsesToOneDomainUnderMemoryPressure(t *testing.T) {
	// Memmin far above node capacity: the memory-aware leaf budget
	// admits a single domain, and the operation still completes.
	m := testMachine(t, 2, 2, 1*cluster.MiB, 0)
	opts := Options{Msgind: 64 << 10, Msggroup: 0, Nah: 2, Memmin: 16 * cluster.MiB}
	res := runMCCIO(t, MCCIO{Opts: opts}, m, 4, 8, 4<<10)
	if res.Aggregators != 1 {
		t.Fatalf("aggregators %d, want 1 under impossible Memmin", res.Aggregators)
	}
}

// placerScenario builds a placer over two hosts where host 1 can pay
// Memmin once but not twice, so the second leaf preferring it must
// remerge.
func placerScenario(t *testing.T, disableRemerge bool) *placer {
	t.Helper()
	// 4 ranks: 0,1 on node 0; 2,3 on node 1. Interleaved data so every
	// leaf has candidates on both hosts.
	memberSegs := make([]datatype.List, 4)
	for r := 0; r < 4; r++ {
		memberSegs[r] = interleavedView(r, 4, 8, 1<<10)
	}
	var all datatype.List
	for _, s := range memberSegs {
		all = append(all, s...)
	}
	cov := datatype.Normalize(all)
	tree := BuildTree(cov, cov.TotalBytes()/4+1, 4) // 4 leaves
	if len(tree.Leaves()) < 3 {
		t.Fatalf("setup: %d leaves", len(tree.Leaves()))
	}
	opts := Options{Msgind: 1 << 20, Nah: 2, Memmin: 6 << 10, DisableRemerge: disableRemerge}
	nodeAvail := map[int]int64{0: 64 << 10, 1: 8 << 10}
	var pm trace.Metrics
	return newPlacer(tree, memberSegs, []int{0, 0, 1, 1}, nodeAvail, opts, &pm, nil, -1)
}

func TestPlacerRemergesWhenSharesRunOut(t *testing.T) {
	p := placerScenario(t, false)
	placements := p.Place()
	// Host 1 (8 KiB) can host at most one Memmin=6KiB aggregator; host
	// 0 two (Nah). 4 leaves cannot all be placed: at least one remerge.
	if p.metrics.Remerges == 0 {
		t.Fatalf("no remerges; placements: %d", len(placements))
	}
	if len(placements) >= 4 {
		t.Fatalf("%d placements, expected fewer than the 4 initial leaves", len(placements))
	}
	if err := p.tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPlacerNoRemergeWhenDisabled(t *testing.T) {
	p := placerScenario(t, true)
	placements := p.Place()
	if p.metrics.Remerges != 0 {
		t.Fatalf("remerges %d with remerge disabled", p.metrics.Remerges)
	}
	if len(placements) != 4 {
		t.Fatalf("%d placements, want all 4 leaves kept", len(placements))
	}
}

func TestMCCIOPlacesAggregatorsOnMemoryRichNodes(t *testing.T) {
	// Under heavy variance, aggregate high-water marks should sit on
	// the nodes with the largest capacity.
	m := testMachine(t, 4, 2, 16*cluster.MiB, 0.8)
	caps := m.MemCapacities()
	runMCCIO(t, MCCIO{Opts: Options{Msgind: 1 << 20, Msggroup: 0, Nah: 1, Memmin: 1 << 20}}, m, 8, 16, 4<<10)
	// Identify the node with max capacity and min capacity.
	maxN, minN := 0, 0
	for i, c := range caps {
		if c > caps[maxN] {
			maxN = i
		}
		if c < caps[minN] {
			minN = i
		}
	}
	hw := m.MemHighWaters()
	if caps[maxN] > 2*caps[minN] && hw[maxN] == 0 && hw[minN] > 0 {
		t.Fatalf("placement ignored memory: caps=%v highwater=%v", caps, hw)
	}
}

func TestMCCIOBeatsTwoPhaseUnderVarianceAndSmallBuffers(t *testing.T) {
	// The headline claim at test scale: when per-node memory is scarce
	// and uneven, MCCIO outperforms the baseline.
	const nprocs, blocks = 24, 32
	const blockLen = 16 << 10
	buildMachine := func() *cluster.Machine {
		return testMachine(t, 6, 4, 2*cluster.MiB, 0.6)
	}
	base := runMCCIO(t, collio.TwoPhase{CBBuffer: 2 * cluster.MiB}, buildMachine(), nprocs, blocks, blockLen)
	opts := Options{Msgind: 2 * cluster.MiB, Msggroup: 8 * cluster.MiB, Nah: 2, Memmin: 256 << 10}
	mcc := runMCCIO(t, MCCIO{Opts: opts}, buildMachine(), nprocs, blocks, blockLen)
	if mcc.BandwidthMBps() <= base.BandwidthMBps() {
		t.Fatalf("mccio %.1f MB/s not better than two-phase %.1f MB/s under memory pressure",
			mcc.BandwidthMBps(), base.BandwidthMBps())
	}
}

func TestMCCIOReducesInterNodeShuffle(t *testing.T) {
	// Group division keeps shuffle traffic closer to home: strictly
	// fewer inter-node shuffle bytes than the global baseline.
	const nprocs, blocks = 16, 16
	const blockLen = 8 << 10
	base := runMCCIO(t, collio.TwoPhase{CBBuffer: 1 << 20}, testMachine(t, 4, 4, 64*cluster.MiB, 0), nprocs, blocks, blockLen)
	opts := Options{Msgind: 1 << 20, Msggroup: 1, Nah: 2, Memmin: 64 << 10} // one group per node
	mcc := runMCCIO(t, MCCIO{Opts: opts}, testMachine(t, 4, 4, 64*cluster.MiB, 0), nprocs, blocks, blockLen)
	if mcc.BytesShuffleInter >= base.BytesShuffleInter {
		t.Fatalf("inter-node shuffle mccio=%d >= baseline=%d", mcc.BytesShuffleInter, base.BytesShuffleInter)
	}
}

func TestMCCIOEmptyViews(t *testing.T) {
	m := testMachine(t, 2, 2, 64*cluster.MiB, 0)
	e := simtime.NewEngine()
	w, err := mpi.NewWorld(e, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := iolib.Open(testFS(t, m), "x")
	w.Start(func(c *mpi.Comm) {
		iolib.Run(MCCIO{Opts: testOpts(1<<20, 0)}, "write", f, c, nil, buffer.NewPhantom(0), &trace.Metrics{})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMCCIOLedgerReturnsToZero(t *testing.T) {
	m := testMachine(t, 2, 2, 64*cluster.MiB, 0)
	runMCCIO(t, MCCIO{Opts: testOpts(256<<10, 0)}, m, 4, 8, 4<<10)
	for i := 0; i < m.NumNodes(); i++ {
		if u := m.Node(i).Used(); u != 0 {
			t.Fatalf("node %d still has %d bytes allocated", i, u)
		}
	}
}

func TestMCCIOInvalidOptionsPanic(t *testing.T) {
	m := testMachine(t, 1, 1, 64*cluster.MiB, 0)
	e := simtime.NewEngine()
	w, _ := mpi.NewWorld(e, m, 1)
	f := iolib.Open(testFS(t, m), "x")
	w.Start(func(c *mpi.Comm) {
		defer func() {
			if recover() == nil {
				t.Error("no panic for Msgind=0")
			}
		}()
		iolib.Run(MCCIO{}, "write", f, c, datatype.List{{Off: 0, Len: 8}}, buffer.NewPhantom(8), nil)
	})
	_ = e.Run()
}

func TestDefaultOptionsDerivation(t *testing.T) {
	mc := cluster.TestbedConfig(10)
	fc := pfs.DefaultConfig()
	o := DefaultOptions(mc, fc)
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o.Msgind < fc.StripeUnit || o.Msgind%fc.StripeUnit != 0 {
		t.Fatalf("Msgind %d not stripe-aligned above unit", o.Msgind)
	}
	if o.Nah < 1 || o.Nah > mc.CoresPerNode {
		t.Fatalf("Nah %d out of range", o.Nah)
	}
	if o.Msggroup < o.Msgind {
		t.Fatalf("Msggroup %d below Msgind %d", o.Msggroup, o.Msgind)
	}
	if o.Memmin <= 0 {
		t.Fatalf("Memmin %d", o.Memmin)
	}
}
