package core

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/datatype"
	"repro/internal/trace"
	"repro/internal/twolayer"
)

// GroupPlan is the planning outcome for one aggregation group, exposed
// for inspection tools: the tree after remerging, and each domain's
// placement.
type GroupPlan struct {
	Group      Group
	Coverage   datatype.List
	Tree       *Tree
	Placements []*Placement
	NodeOfRank []int // group rank -> node
	Remerges   int
	// Leaders is the group's node-leader election outcome when
	// Options.TwoLayer composes the two-layer exchange; nil otherwise
	// (including groups whose nodes all host a single rank).
	Leaders []twolayer.Leader
}

// InspectResult is the full static plan MCCIO would compute for a set
// of rank views on a machine — everything but the data movement.
type InspectResult struct {
	Groups []Group
	Plans  []GroupPlan
}

// Inspect runs MCCIO's planning pipeline (group division, workload
// partition, remerging, aggregator location) outside the simulator,
// for debugging and teaching. views[r] is rank r's file view; ranks map
// to nodes block-wise on the machine.
func (mc MCCIO) Inspect(machine *cluster.Machine, views []datatype.List) (*InspectResult, error) {
	if err := mc.Opts.Validate(); err != nil {
		return nil, err
	}
	n := len(views)
	if n == 0 || n > machine.NumRanks() {
		return nil, fmt.Errorf("core: %d views for machine of %d ranks", n, machine.NumRanks())
	}
	bytesPer := make([]int64, n)
	for r, v := range views {
		bytesPer[r] = v.TotalBytes()
	}
	nodeOf := machine.NodeOfRank
	msggroup := mc.Opts.Msggroup
	if mc.Opts.DisableGroups {
		msggroup = 0
	}
	groups := DivideGroupsMemAware(nodeOf, bytesPer, msggroup,
		func(node int) int64 { return machine.Node(node).Available() }, mc.Opts.Memmin)
	rec := machine.Explain()
	var total int64
	for _, b := range bytesPer {
		total += b
	}
	auditGroups(rec, "inspect", total, msggroup, groups)

	res := &InspectResult{Groups: groups}
	for gi, g := range groups {
		memberSegs := make([]datatype.List, 0, g.Last-g.First+1)
		nodeOfRank := make([]int, 0, g.Last-g.First+1)
		var all datatype.List
		for r := g.First; r <= g.Last; r++ {
			memberSegs = append(memberSegs, views[r])
			nodeOfRank = append(nodeOfRank, nodeOf(r))
			all = append(all, views[r]...)
		}
		coverage := datatype.Normalize(all)
		gp := GroupPlan{Group: g, Coverage: coverage, NodeOfRank: nodeOfRank}
		if coverage.TotalBytes() > 0 {
			nodeAvail := make(map[int]int64)
			for _, node := range nodeOfRank {
				nodeAvail[node] = machine.Node(node).Available()
			}
			maxAggs := MemoryAssignableAggregators(nodeOfRank, nodeAvail, mc.Opts.Nah, mc.Opts.Memmin)
			msgind := mc.Opts.Msgind
			if need := (coverage.TotalBytes() + int64(maxAggs) - 1) / int64(maxAggs); need > msgind {
				msgind = need
			}
			gp.Tree = BuildTreeExplained(coverage, msgind, maxAggs, rec, gi)
			auditTree(rec, gi, gp.Tree, msgind, maxAggs)
			var pm trace.Metrics
			gp.Placements = newPlacer(gp.Tree, memberSegs, nodeOfRank, nodeAvail, mc.Opts, &pm, rec, gi).Place()
			gp.Remerges = pm.Remerges
			if mc.Opts.TwoLayer {
				spanOf := make([]int64, len(memberSegs))
				availOf := make([]int64, len(memberSegs))
				for r := range memberSegs {
					if l, h := memberSegs[r].Extent(); h > l {
						spanOf[r] = h - l
					}
					availOf[r] = nodeAvail[nodeOfRank[r]]
				}
				if el := twolayer.Elect(nodeOfRank, availOf, spanOf); el.MultiRank {
					gp.Leaders = el.Leaders
				}
			}
		}
		res.Plans = append(res.Plans, gp)
	}
	return res, nil
}

// DumpTree renders the partition tree as indented ASCII, leaves marked
// with their data volume.
func DumpTree(t *Tree) string {
	var b strings.Builder
	var walk func(n *TreeNode, depth int)
	walk = func(n *TreeNode, depth int) {
		if n == nil {
			return
		}
		fmt.Fprintf(&b, "%s%s\n", strings.Repeat("  ", depth), n.String())
		l, r := n.Children()
		walk(l, depth+1)
		walk(r, depth+1)
	}
	walk(t.Root(), 0)
	return b.String()
}

// Summary renders the inspection as human-readable text.
func (ir *InspectResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "aggregation groups: %d\n", len(ir.Groups))
	for gi, gp := range ir.Plans {
		g := gp.Group
		fmt.Fprintf(&b, "\ngroup %d: ranks [%d..%d] on %d node(s), %.2f MB requested\n",
			gi, g.First, g.Last, g.Nodes, float64(g.Bytes)/1e6)
		lo, hi := gp.Coverage.Extent()
		fmt.Fprintf(&b, "  coverage: %d run(s) over file [%d, %d), %.2f MB data\n",
			len(gp.Coverage), lo, hi, float64(gp.Coverage.TotalBytes())/1e6)
		if gp.Tree == nil {
			continue
		}
		fmt.Fprintf(&b, "  partition tree (%d leaves, %d remerges):\n", len(gp.Tree.Leaves()), gp.Remerges)
		for _, line := range strings.Split(strings.TrimRight(DumpTree(gp.Tree), "\n"), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
		fmt.Fprintf(&b, "  placements:\n")
		for _, pl := range gp.Placements {
			fmt.Fprintf(&b, "    domain [%d,%d) %.2f MB -> group-rank %d (node %d), buffer %.2f MB\n",
				pl.Leaf.Lo, pl.Leaf.Hi, float64(pl.Leaf.DataBytes)/1e6,
				pl.Agg, gp.NodeOfRank[pl.Agg], float64(pl.Buf)/1e6)
		}
		if len(gp.Leaders) > 0 {
			fmt.Fprintf(&b, "  node leaders (two-layer):\n")
			for _, l := range gp.Leaders {
				fmt.Fprintf(&b, "    node %d -> group-rank %d (Mem_avl %.2f MB, score %d, %d runner(s)-up)\n",
					l.Node, l.Rank, float64(l.Avail)/1e6, l.Score, len(l.RunnersUp))
			}
		}
	}
	return b.String()
}
