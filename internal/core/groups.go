package core

import "fmt"

// Group is one aggregation group: a contiguous, node-aligned range of
// communicator ranks that shuffles only among itself.
type Group struct {
	First, Last int   // inclusive comm-rank range
	Bytes       int64 // total requested bytes of its members
	Nodes       int   // physical nodes spanned
}

// DivideGroups implements Aggregation Group Division (§3.1, Fig 4):
// walking processes in rank order (block placement makes that node
// order), nodes accumulate into a group until its members' requested
// data reaches msggroup; the boundary always falls on a node edge so
// processes from one physical node never act as I/O aggregators for
// two different groups.
//
// nodeOf must be non-decreasing over ranks (block placement);
// bytes[r] is rank r's requested data. msggroup <= 0 means one group.
func DivideGroups(nodeOf func(rank int) int, bytes []int64, msggroup int64) []Group {
	n := len(bytes)
	if n == 0 {
		return nil
	}
	if msggroup <= 0 {
		g := Group{First: 0, Last: n - 1}
		for _, b := range bytes {
			g.Bytes += b
		}
		g.Nodes = nodeOf(n-1) - nodeOf(0) + 1
		return []Group{g}
	}
	var out []Group
	cur := Group{First: 0}
	prevNode := nodeOf(0)
	for r := 0; r < n; r++ {
		node := nodeOf(r)
		if node < prevNode {
			panic(fmt.Sprintf("core: nodeOf not monotone at rank %d", r))
		}
		// Close the running group at a node edge once it is full.
		if node != prevNode && cur.Bytes >= msggroup {
			cur.Last = r - 1
			cur.Nodes = prevNode - nodeOf(cur.First) + 1
			out = append(out, cur)
			cur = Group{First: r}
		}
		cur.Bytes += bytes[r]
		prevNode = node
	}
	cur.Last = n - 1
	cur.Nodes = prevNode - nodeOf(cur.First) + 1
	return append(out, cur)
}

// DivideGroupsMemAware extends DivideGroups with the memory
// consciousness the paper's runtime aggregator determination implies.
// After the byte-guided division, groups are rebalanced so that every
// group (a) contains at least one node with minAvail bytes available —
// a viable aggregator host — and (b) is not starved of aggregation
// memory relative to its data: a group whose data-to-memory ratio
// exceeds twice the machine-wide ratio is merged with its
// better-provisioned neighbour. Without this, an unlucky run of
// memory-poor nodes becomes a group whose single aggregator grinds
// through hundreds of rounds while the rest of the machine idles.
func DivideGroupsMemAware(nodeOf func(rank int) int, bytes []int64, msggroup int64,
	nodeAvail func(node int) int64, minAvail int64) []Group {
	groups := DivideGroups(nodeOf, bytes, msggroup)
	if len(groups) <= 1 {
		return groups
	}

	// Per-group aggregation memory and machine-wide ratio.
	availOf := func(g Group) int64 {
		var sum int64
		for node := nodeOf(g.First); node <= nodeOf(g.Last); node++ {
			sum += nodeAvail(node)
		}
		return sum
	}
	maxAvailOf := func(g Group) int64 {
		var max int64
		for node := nodeOf(g.First); node <= nodeOf(g.Last); node++ {
			if a := nodeAvail(node); a > max {
				max = a
			}
		}
		return max
	}
	var totalBytes, totalAvail int64
	for _, g := range groups {
		totalBytes += g.Bytes
		totalAvail += availOf(g)
	}
	if totalAvail <= 0 {
		totalAvail = 1
	}
	globalRatio := float64(totalBytes) / float64(totalAvail)

	starved := func(g Group) bool {
		if maxAvailOf(g) < minAvail {
			return true
		}
		a := availOf(g)
		if a <= 0 {
			return g.Bytes > 0
		}
		return float64(g.Bytes)/float64(a) > 2*globalRatio
	}
	merge := func(i, j int) { // j = i+1
		groups[i].Last = groups[j].Last
		groups[i].Bytes += groups[j].Bytes
		groups[i].Nodes += groups[j].Nodes
		groups = append(groups[:j], groups[j+1:]...)
	}
	for pass := 0; pass < len(bytes); pass++ {
		changed := false
		for i := 0; i < len(groups) && len(groups) > 1; i++ {
			if !starved(groups[i]) {
				continue
			}
			// Merge toward the neighbour with more spare memory.
			switch {
			case i == 0:
				merge(0, 1)
			case i == len(groups)-1:
				merge(i-1, i)
			case availOf(groups[i+1]) > availOf(groups[i-1]):
				merge(i, i+1)
			default:
				merge(i-1, i)
			}
			changed = true
			break
		}
		if !changed {
			break
		}
	}
	return groups
}

// ColorOf returns each rank's group index for a comm split.
func ColorOf(groups []Group, nranks int) []int {
	colors := make([]int, nranks)
	for gi, g := range groups {
		for r := g.First; r <= g.Last; r++ {
			colors[r] = gi
		}
	}
	return colors
}
