package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/pfs"
)

func calibPlatform() (cluster.Config, pfs.Config) {
	mcfg := cluster.TestbedConfig(4)
	fcfg := pfs.DefaultConfig()
	return mcfg, fcfg
}

func TestCalibrateProducesValidOptions(t *testing.T) {
	mcfg, fcfg := calibPlatform()
	rep, err := Calibrate(mcfg, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	o := rep.Result
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o.Msgind < fcfg.StripeUnit || o.Msgind%fcfg.StripeUnit != 0 {
		t.Fatalf("Msgind %d not stripe-aligned", o.Msgind)
	}
	if o.Nah < 1 || o.Nah > mcfg.CoresPerNode {
		t.Fatalf("Nah %d out of [1,%d]", o.Nah, mcfg.CoresPerNode)
	}
	if o.Memmin <= 0 || o.Memmin > o.Msgind {
		t.Fatalf("Memmin %d vs Msgind %d", o.Memmin, o.Msgind)
	}
	if o.Msggroup < o.Msgind {
		t.Fatalf("Msggroup %d below Msgind %d", o.Msggroup, o.Msgind)
	}
	if len(rep.MsgindCurve) == 0 || len(rep.NahCurve) == 0 {
		t.Fatal("empty calibration curves")
	}
	if rep.String() == "" {
		t.Fatal("empty report")
	}
}

func TestCalibrateMsgindCurveMonotoneKnee(t *testing.T) {
	mcfg, fcfg := calibPlatform()
	rep, err := Calibrate(mcfg, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	// Larger messages must not be slower on a latency-bound path:
	// throughput is non-decreasing until saturation (within 1%).
	prev := 0.0
	for _, p := range rep.MsgindCurve {
		if p.Y < prev*0.99 {
			t.Fatalf("throughput fell with larger messages: %+v", rep.MsgindCurve)
		}
		if p.Y > prev {
			prev = p.Y
		}
	}
}

func TestCalibrateTracksOSTLatency(t *testing.T) {
	mcfg, fcfg := calibPlatform()
	fast := fcfg
	fast.OSTLatency = 50e-6
	slow := fcfg
	slow.OSTLatency = 5e-3
	repFast, err := Calibrate(mcfg, fast)
	if err != nil {
		t.Fatal(err)
	}
	repSlow, err := Calibrate(mcfg, slow)
	if err != nil {
		t.Fatal(err)
	}
	if repSlow.Result.Msgind < repFast.Result.Msgind {
		t.Fatalf("higher per-request latency should demand larger Msgind: fast=%d slow=%d",
			repFast.Result.Msgind, repSlow.Result.Msgind)
	}
}

func TestCalibrateDeterministic(t *testing.T) {
	mcfg, fcfg := calibPlatform()
	a, err := Calibrate(mcfg, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Calibrate(mcfg, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result != b.Result {
		t.Fatalf("calibration not deterministic: %+v vs %+v", a.Result, b.Result)
	}
}
