package core

import (
	"testing"
	"testing/quick"

	"repro/internal/datatype"
	"repro/internal/stats"
)

func contiguous(lo, hi int64) datatype.List {
	return datatype.List{{Off: lo, Len: hi - lo}}
}

func randomCoverage(r *stats.RNG, n int) datatype.List {
	raw := make([]datatype.Segment, n)
	for i := range raw {
		raw[i] = datatype.Segment{Off: r.Int63n(100000), Len: 1 + r.Int63n(4000)}
	}
	return datatype.Normalize(raw)
}

func TestBuildTreeTerminatesAtMsgind(t *testing.T) {
	cov := contiguous(0, 1<<20)
	tr := BuildTree(cov, 100<<10, 64)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	leaves := tr.Leaves()
	if len(leaves) < 2 {
		t.Fatalf("no splitting happened: %d leaves", len(leaves))
	}
	for _, l := range leaves {
		if l.DataBytes > 100<<10 {
			t.Fatalf("leaf %v exceeds msgind", l)
		}
	}
}

func TestBuildTreeRespectsMaxLeaves(t *testing.T) {
	cov := contiguous(0, 1<<20)
	tr := BuildTree(cov, 1, 7) // msgind=1 would want 2^20 leaves
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if n := len(tr.Leaves()); n > 7 {
		t.Fatalf("%d leaves, budget 7", n)
	}
}

func TestBuildTreeSingleLeafWhenSmall(t *testing.T) {
	cov := contiguous(10, 20)
	tr := BuildTree(cov, 100, 64)
	if n := len(tr.Leaves()); n != 1 {
		t.Fatalf("%d leaves, want 1", n)
	}
	if tr.Root().Lo != 10 || tr.Root().Hi != 20 || tr.Root().DataBytes != 10 {
		t.Fatalf("root %v", tr.Root())
	}
}

func TestBuildTreeBalancesDataNotOffsets(t *testing.T) {
	// 1 KiB of data at the front, 1 KiB at the very end of a 1 MiB
	// span: the first split must put one segment on each side.
	cov := datatype.List{{Off: 0, Len: 1 << 10}, {Off: 1<<20 - 1<<10, Len: 1 << 10}}
	tr := BuildTree(cov, 1<<10, 8)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	leaves := tr.Leaves()
	if len(leaves) != 2 {
		t.Fatalf("%d leaves, want 2", len(leaves))
	}
	if leaves[0].DataBytes != 1<<10 || leaves[1].DataBytes != 1<<10 {
		t.Fatalf("unbalanced: %v %v", leaves[0], leaves[1])
	}
}

func TestBuildTreePropertyInvariants(t *testing.T) {
	f := func(seed uint64, msgRaw uint16, budgetRaw uint8) bool {
		r := stats.NewRNG(seed)
		cov := randomCoverage(r, 1+r.Intn(30))
		msgind := int64(msgRaw)%20000 + 1
		budget := int(budgetRaw)%40 + 1
		tr := BuildTree(cov, msgind, budget)
		if tr.CheckInvariants() != nil {
			return false
		}
		leaves := tr.Leaves()
		if len(leaves) > budget {
			return false
		}
		// Every leaf either satisfies msgind or the budget ran out.
		if len(leaves) < budget {
			for _, l := range leaves {
				if l.DataBytes > msgind && l.Hi-l.Lo > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveLeafSiblingLeafCase(t *testing.T) {
	// Fig 5a: removing a leaf whose sibling is a leaf merges into the
	// parent.
	cov := contiguous(0, 1000)
	tr := BuildTree(cov, 250, 4) // 4 leaves of 250
	leaves := tr.Leaves()
	if len(leaves) != 4 {
		t.Fatalf("setup: %d leaves", len(leaves))
	}
	a := leaves[0]
	sib := leaves[1]
	if a.Parent() != sib.Parent() {
		t.Fatal("setup: first two leaves are not siblings")
	}
	got := tr.RemoveLeaf(a)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got.Lo != 0 || got.Hi != sib.Hi || got.DataBytes != 500 {
		t.Fatalf("merged leaf %v", got)
	}
	if n := len(tr.Leaves()); n != 3 {
		t.Fatalf("%d leaves after removal", n)
	}
}

func TestRemoveLeafDFSCase(t *testing.T) {
	// Fig 5b: a's sibling is internal; the adjacent leaf of the
	// sibling subtree takes over a's region.
	cov := contiguous(0, 800)
	tr := BuildTree(cov, 200, 4) // leaves: [0,200) [200,400) [400,600) [600,800)
	leaves := tr.Leaves()
	// Remove the left child of the root's left subtree's... take leaf 0
	// whose sibling at some level is internal: remove leaf 1 first to
	// force shapes? Simpler: remove leaf 0's sibling chain directly.
	// Build a known shape instead: remove leaf[1], then leaf[0]'s
	// sibling is the internal right subtree.
	tr.RemoveLeaf(leaves[1]) // merges [0,200)+[200,400) -> leaf
	leaves = tr.Leaves()     // [0,400) [400,600) [600,800)
	a := leaves[0]
	if a.Parent() == nil || a.Parent() != tr.Root() {
		t.Fatalf("setup: expected a directly under root, tree %v", tr.Root())
	}
	// a's sibling (right subtree) is internal -> DFS leftmost leaf
	// [400,600) must take over, stretching to [0,600).
	c := tr.RemoveLeaf(a)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c.Lo != 0 || c.Hi != 600 || c.DataBytes != 600 {
		t.Fatalf("takeover leaf %v, want [0,600) data 600", c)
	}
	got := tr.Leaves()
	if len(got) != 2 || got[0] != c || got[1].Lo != 600 {
		t.Fatalf("leaves after DFS takeover: %v", got)
	}
}

func TestRemoveLeafRightDirection(t *testing.T) {
	cov := contiguous(0, 800)
	tr := BuildTree(cov, 200, 4)
	leaves := tr.Leaves()
	tr.RemoveLeaf(leaves[2]) // [400,600)+[600,800) merge
	leaves = tr.Leaves()     // [0,200) [200,400) [400,800)
	a := leaves[2]           // right child of root, sibling internal
	if a.Parent() != tr.Root() {
		t.Fatalf("setup: %v not under root", a)
	}
	c := tr.RemoveLeaf(a)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Rightmost leaf of the left subtree is [200,400): stretches to 800.
	if c.Lo != 200 || c.Hi != 800 {
		t.Fatalf("takeover leaf %v, want [200,800)", c)
	}
}

func TestRemoveLeafPanicsOnRootOrInternal(t *testing.T) {
	tr := BuildTree(contiguous(0, 100), 1000, 4) // single leaf = root
	func() {
		defer func() {
			if recover() == nil {
				t.Error("removing root leaf did not panic")
			}
		}()
		tr.RemoveLeaf(tr.Root())
	}()
	tr2 := BuildTree(contiguous(0, 1000), 250, 4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("removing internal vertex did not panic")
			}
		}()
		tr2.RemoveLeaf(tr2.Root())
	}()
}

func TestRemoveLeafPropertyRandomSequences(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		cov := randomCoverage(r, 1+r.Intn(20))
		tr := BuildTree(cov, 1+cov.TotalBytes()/16, 32)
		total := tr.Root().DataBytes
		for len(tr.Leaves()) > 1 {
			leaves := tr.Leaves()
			victim := leaves[r.Intn(len(leaves))]
			tr.RemoveLeaf(victim)
			if tr.CheckInvariants() != nil {
				return false
			}
			if tr.Root().DataBytes != total {
				return false // data lost or invented
			}
		}
		root := tr.Root()
		lo, hi := cov.Extent()
		return root.Lo == lo && root.Hi == hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
