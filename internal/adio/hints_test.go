package adio

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/iolib"
	"repro/internal/pfs"
)

func platform() (cluster.Config, pfs.Config) {
	return cluster.TestbedConfig(4), pfs.DefaultConfig()
}

func TestParseHintsBasics(t *testing.T) {
	h, err := ParseHints("collective=mccio, cb_buffer_size=1048576,mccio_nah=2")
	if err != nil {
		t.Fatal(err)
	}
	if h["collective"] != "mccio" || h["cb_buffer_size"] != "1048576" || h["mccio_nah"] != "2" {
		t.Fatalf("%+v", h)
	}
	if h, err := ParseHints(""); err != nil || len(h) != 0 {
		t.Fatalf("empty hints: %v %v", h, err)
	}
}

func TestParseHintsRejects(t *testing.T) {
	bad := []string{
		"collective",              // no value
		"=x",                      // no key
		"no_such_key=1",           // unknown
		"mccio_nah=1,mccio_nah=2", // duplicate
	}
	for _, s := range bad {
		if _, err := ParseHints(s); err == nil {
			t.Errorf("accepted %q", s)
		}
	}
}

func TestBuildDefaultIsMCCIO(t *testing.T) {
	mcfg, fcfg := platform()
	s, err := Hints{}.BuildStrategy(mcfg, fcfg, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(core.MCCIO); !ok {
		t.Fatalf("default strategy %T", s)
	}
}

func TestBuildTwoPhaseWithBuffer(t *testing.T) {
	mcfg, fcfg := platform()
	h, _ := ParseHints("collective=two_phase,cb_buffer_size=4194304")
	s, err := h.BuildStrategy(mcfg, fcfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	tp, ok := s.(collio.TwoPhase)
	if !ok || tp.CBBuffer != 4<<20 {
		t.Fatalf("%+v", s)
	}
}

func TestRomioCbWriteDisableSelectsIndependent(t *testing.T) {
	mcfg, fcfg := platform()
	h, _ := ParseHints("romio_cb_write=disable,ind_rd_buffer_size=65536")
	s, err := h.BuildStrategy(mcfg, fcfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	n, ok := s.(iolib.Naive)
	if !ok || n.Opts.BufSize != 65536 {
		t.Fatalf("%+v", s)
	}
}

func TestMccioOverrides(t *testing.T) {
	mcfg, fcfg := platform()
	h, _ := ParseHints("mccio_msgind=2097152,mccio_nah=2,mccio_memmin=524288,mccio_node_combine=true,mccio_no_groups=true")
	s, err := h.BuildStrategy(mcfg, fcfg, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	mc := s.(core.MCCIO)
	if mc.Opts.Msgind != 2<<20 || mc.Opts.Nah != 2 || mc.Opts.Memmin != 512<<10 {
		t.Fatalf("%+v", mc.Opts)
	}
	if !mc.Opts.NodeCombine || !mc.Opts.DisableGroups {
		t.Fatalf("%+v", mc.Opts)
	}
}

func TestMccioExplicitMsggroupNotClobbered(t *testing.T) {
	mcfg, fcfg := platform()
	h, _ := ParseHints("mccio_msggroup=12345678")
	s, err := h.BuildStrategy(mcfg, fcfg, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.(core.MCCIO).Opts.Msggroup; got != 12345678 {
		t.Fatalf("msggroup %d", got)
	}
}

func TestBuildRejectsBadValues(t *testing.T) {
	mcfg, fcfg := platform()
	bad := []string{
		"cb_buffer_size=potato",
		"collective=two_phase,cb_buffer_size=-1",
		"mccio_node_combine=maybe",
		"mccio_msgind=-5",
		"mccio_nah=0",
	}
	for _, s := range bad {
		h, err := ParseHints(s)
		if err != nil {
			continue // rejected at parse: also fine
		}
		if _, err := h.BuildStrategy(mcfg, fcfg, 1<<20); err == nil {
			t.Errorf("built strategy from %q", s)
		}
	}
}

func TestCalibrateHint(t *testing.T) {
	mcfg, fcfg := platform()
	h, _ := ParseHints("mccio_calibrate=true")
	s, err := h.BuildStrategy(mcfg, fcfg, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	mc := s.(core.MCCIO)
	if mc.Opts.Msgind <= 0 || mc.Opts.Nah < 1 {
		t.Fatalf("calibrated options invalid: %+v", mc.Opts)
	}
}

func TestKnownKeysDocumented(t *testing.T) {
	keys := KnownKeys()
	if len(keys) != len(knownKeys) {
		t.Fatalf("%d keys documented, want %d", len(keys), len(knownKeys))
	}
	joined := strings.Join(keys, "\n")
	for _, want := range []string{"cb_buffer_size", "mccio_nah", "romio_cb_write"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %s in %s", want, joined)
		}
	}
}
