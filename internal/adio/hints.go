// Package adio is the hint-driven front door to the collective I/O
// strategies, modelled on ROMIO's ADIO layer: applications tune
// collective I/O through MPI_Info-style string hints rather than
// concrete types. The subset understood here covers ROMIO's classic
// collective-buffering hints plus the mccio_* extensions.
//
//	h, _ := adio.ParseHints("collective=mccio,cb_buffer_size=8388608,mccio_nah=2")
//	strategy, _ := h.BuildStrategy(machineCfg, fsCfg, workloadBytes)
package adio

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/iolib"
	"repro/internal/pfs"
	"repro/internal/twolayer"
)

// Hints is a set of MPI_Info-style key/value tuning strings.
type Hints map[string]string

// Recognized keys and their meaning.
var knownKeys = map[string]string{
	"collective":         "strategy selector: mccio | two_phase | two_layer | independent (default mccio)",
	"cb_buffer_size":     "collective buffer per aggregator in bytes (ROMIO key)",
	"romio_cb_write":     "enable | disable: disable selects independent I/O (ROMIO key)",
	"ind_rd_buffer_size": "data-sieving buffer for independent I/O in bytes (ROMIO key)",
	"mccio_msgind":       "per-aggregator optimal message size in bytes",
	"mccio_msggroup":     "aggregation-group data volume in bytes (0 = one group)",
	"mccio_nah":          "max aggregators per node",
	"mccio_memmin":       "minimum host memory to place an aggregator, bytes",
	"mccio_node_combine": "true | false: rank-order node-combine exchange",
	"mccio_two_layer":    "true | false: full two-layer exchange (elected leaders) within each group",
	"mccio_calibrate":    "true | false: measure Msgind/Nah/Memmin/Msggroup on the platform first",
	"mccio_no_groups":    "true | false: ablation, disable group division",
	"mccio_no_mem_aware": "true | false: ablation, disable memory-aware placement",
	"mccio_no_remerge":   "true | false: ablation, disable remerging",
}

// KnownKeys returns the recognized hint keys with documentation, in
// sorted order, for help output.
func KnownKeys() []string {
	keys := make([]string, 0, len(knownKeys))
	for k := range knownKeys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = fmt.Sprintf("%s: %s", k, knownKeys[k])
	}
	return out
}

// ParseHints parses "k=v,k=v" (commas and/or whitespace separate
// tuples). Unknown keys are an error — silent typos in tuning knobs are
// the classic MPI_Info footgun.
func ParseHints(s string) (Hints, error) {
	h := Hints{}
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' || r == '\n' })
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("adio: malformed hint %q (want key=value)", f)
		}
		if _, known := knownKeys[k]; !known {
			return nil, fmt.Errorf("adio: unknown hint %q", k)
		}
		if _, dup := h[k]; dup {
			return nil, fmt.Errorf("adio: duplicate hint %q", k)
		}
		h[k] = v
	}
	return h, nil
}

func (h Hints) getInt64(key string, def int64) (int64, error) {
	v, ok := h[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("adio: hint %s=%q is not an integer", key, v)
	}
	return n, nil
}

func (h Hints) getBool(key string) (bool, error) {
	v, ok := h[key]
	if !ok {
		return false, nil
	}
	switch v {
	case "true", "enable", "1", "yes":
		return true, nil
	case "false", "disable", "0", "no":
		return false, nil
	}
	return false, fmt.Errorf("adio: hint %s=%q is not a boolean", key, v)
}

// BuildStrategy resolves the hints into a concrete strategy for the
// given platform. totalBytes sizes group division when mccio_msggroup
// is not set explicitly.
func (h Hints) BuildStrategy(mcfg cluster.Config, fcfg pfs.Config, totalBytes int64) (iolib.Collective, error) {
	kind := h["collective"]
	if kind == "" {
		kind = "mccio"
	}
	if cbw, err := h.getBool("romio_cb_write"); err != nil {
		return nil, err
	} else if _, set := h["romio_cb_write"]; set && !cbw {
		kind = "independent"
	}

	switch kind {
	case "independent":
		sieve, err := h.getInt64("ind_rd_buffer_size", iolib.DefaultSieve().BufSize)
		if err != nil {
			return nil, err
		}
		opts := iolib.DefaultSieve()
		opts.BufSize = sieve
		return iolib.Naive{Opts: opts}, nil

	case "two_phase":
		cb, err := h.getInt64("cb_buffer_size", 16<<20)
		if err != nil {
			return nil, err
		}
		if cb <= 0 {
			return nil, fmt.Errorf("adio: cb_buffer_size must be positive, got %d", cb)
		}
		return collio.TwoPhase{CBBuffer: cb}, nil

	case "two_layer":
		cb, err := h.getInt64("cb_buffer_size", 16<<20)
		if err != nil {
			return nil, err
		}
		if cb <= 0 {
			return nil, fmt.Errorf("adio: cb_buffer_size must be positive, got %d", cb)
		}
		return twolayer.Strategy{CBBuffer: cb}, nil

	case "mccio":
		var opts core.Options
		calibrate, err := h.getBool("mccio_calibrate")
		if err != nil {
			return nil, err
		}
		if calibrate {
			rep, err := core.Calibrate(mcfg, fcfg)
			if err != nil {
				return nil, err
			}
			opts = rep.Result
		} else {
			opts = core.DefaultOptions(mcfg, fcfg)
		}
		if totalBytes > 0 {
			groups := int64(mcfg.Nodes / 2)
			if groups < 1 {
				groups = 1
			}
			opts.Msggroup = totalBytes / groups
		}
		cb, err := h.getInt64("cb_buffer_size", 0)
		if err != nil {
			return nil, err
		}
		if cb > 0 {
			opts.Memmin = cb / 4
		}
		type i64 struct {
			key string
			dst *int64
		}
		for _, f := range []i64{
			{"mccio_msgind", &opts.Msgind},
			{"mccio_msggroup", &opts.Msggroup},
			{"mccio_memmin", &opts.Memmin},
		} {
			if v, err := h.getInt64(f.key, *f.dst); err != nil {
				return nil, err
			} else {
				*f.dst = v
			}
		}
		if v, err := h.getInt64("mccio_nah", int64(opts.Nah)); err != nil {
			return nil, err
		} else {
			opts.Nah = int(v)
		}
		type flags struct {
			key string
			dst *bool
		}
		for _, f := range []flags{
			{"mccio_node_combine", &opts.NodeCombine},
			{"mccio_two_layer", &opts.TwoLayer},
			{"mccio_no_groups", &opts.DisableGroups},
			{"mccio_no_mem_aware", &opts.DisableMemAware},
			{"mccio_no_remerge", &opts.DisableRemerge},
		} {
			v, err := h.getBool(f.key)
			if err != nil {
				return nil, err
			}
			if _, set := h[f.key]; set {
				*f.dst = v
			}
		}
		if err := opts.Validate(); err != nil {
			return nil, err
		}
		return core.MCCIO{Opts: opts}, nil
	}
	// Two-layer composed into mccio rides the mccio case via the
	// mccio_two_layer flag; two_layer here is the standalone strategy.
	return nil, fmt.Errorf("adio: unknown collective %q (want mccio | two_phase | two_layer | independent)", kind)
}
