package buffer

import (
	"testing"
	"testing/quick"
)

func TestRealRoundTrip(t *testing.T) {
	b := NewReal(64)
	b.Fill(1, 100)
	if i := b.Verify(1, 100); i != -1 {
		t.Fatalf("mismatch at %d after Fill", i)
	}
	if i := b.Verify(2, 100); i == -1 {
		t.Fatal("wrong tag verified")
	}
	if i := b.Verify(1, 101); i == -1 {
		t.Fatal("shifted offset verified")
	}
}

func TestPhantomCarriesOnlyLength(t *testing.T) {
	b := NewPhantom(1 << 40) // 1 TiB costs nothing
	if b.Len() != 1<<40 || !b.Phantom() {
		t.Fatalf("bad phantom: len=%d phantom=%v", b.Len(), b.Phantom())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Bytes() on phantom did not panic")
		}
	}()
	_ = b.Bytes()
}

func TestSliceAliasesParent(t *testing.T) {
	b := NewReal(10)
	s := b.Slice(2, 4)
	s.Bytes()[0] = 0xAB
	if b.Bytes()[2] != 0xAB {
		t.Fatal("slice does not alias parent")
	}
	if s.Len() != 4 {
		t.Fatalf("slice len %d, want 4", s.Len())
	}
}

func TestSliceOutOfRangePanics(t *testing.T) {
	b := NewReal(10)
	for _, c := range []struct{ off, n int64 }{{-1, 1}, {0, 11}, {8, 3}, {0, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("slice(%d,%d) did not panic", c.off, c.n)
				}
			}()
			b.Slice(c.off, c.n)
		}()
	}
}

func TestCopyRealToReal(t *testing.T) {
	src := NewReal(16)
	src.Fill(9, 0)
	dst := NewReal(16)
	if n := Copy(dst, src); n != 16 {
		t.Fatalf("copied %d, want 16", n)
	}
	if i := dst.Verify(9, 0); i != -1 {
		t.Fatalf("dst mismatch at %d", i)
	}
}

func TestCopyShorterSideWins(t *testing.T) {
	src := NewReal(8)
	dst := NewReal(4)
	if n := Copy(dst, src); n != 4 {
		t.Fatalf("copied %d, want 4", n)
	}
	if n := Copy(NewReal(8), NewReal(2)); n != 2 {
		t.Fatalf("copied %d, want 2", n)
	}
}

func TestCopyPhantomSourceZeroesRealDest(t *testing.T) {
	dst := NewReal(8)
	dst.Fill(1, 0)
	Copy(dst, NewPhantom(8))
	for i, v := range dst.Bytes() {
		if v != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, v)
		}
	}
}

func TestCopyPhantomDestIsNoop(t *testing.T) {
	src := NewReal(8)
	src.Fill(1, 0)
	if n := Copy(NewPhantom(8), src); n != 8 {
		t.Fatalf("copied %d, want 8", n)
	}
}

func TestPatternDistinguishesStreamsAndOffsets(t *testing.T) {
	f := func(tag uint64, off int64) bool {
		if off < 0 {
			off = -off
		}
		// Adjacent offsets of the same stream rarely collide for all of
		// 8 consecutive bytes; require at least one difference.
		diff := false
		for i := int64(0); i < 8; i++ {
			if Pattern(tag, off+i) != Pattern(tag+1, off+i) {
				diff = true
			}
		}
		return diff
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromBytesNoCopy(t *testing.T) {
	raw := []byte{1, 2, 3}
	b := FromBytes(raw)
	raw[0] = 9
	if b.Bytes()[0] != 9 {
		t.Fatal("FromBytes copied")
	}
}

func TestNewModeSwitch(t *testing.T) {
	if New(5, true).Phantom() != true || New(5, false).Phantom() != false {
		t.Fatal("New mode switch broken")
	}
}
