// Package buffer abstracts message and I/O payloads so the simulator
// can run in two modes:
//
//   - Real mode: payloads carry actual bytes. Functional tests write
//     patterned data through the whole stack and verify every byte that
//     comes back.
//   - Phantom mode: payloads carry only a length. Large-scale timing
//     runs (e.g. 1080 ranks × 32 MB) move no host memory at all while
//     exercising exactly the same control paths.
//
// A Buf is immutable in length after creation. Mixing a real and a
// phantom Buf in one copy degrades the destination region to
// "unverifiable" only in the sense that phantom sources carry no data;
// the operation itself is well-defined (real destination bytes are
// zeroed) so control flow never branches on mode.
package buffer

import "fmt"

// Buf is a byte payload that either owns real storage or is a phantom
// of a given length.
type Buf struct {
	data    []byte
	n       int64
	phantom bool
}

// NewReal returns a Buf backed by real storage of n bytes.
func NewReal(n int64) Buf {
	if n < 0 {
		panic(fmt.Sprintf("buffer: negative size %d", n))
	}
	return Buf{data: make([]byte, n), n: n}
}

// FromBytes wraps an existing slice without copying.
func FromBytes(b []byte) Buf {
	return Buf{data: b, n: int64(len(b))}
}

// NewPhantom returns a length-only Buf of n bytes.
func NewPhantom(n int64) Buf {
	if n < 0 {
		panic(fmt.Sprintf("buffer: negative size %d", n))
	}
	return Buf{n: n, phantom: true}
}

// New returns a real or phantom Buf of n bytes depending on mode.
func New(n int64, phantom bool) Buf {
	if phantom {
		return NewPhantom(n)
	}
	return NewReal(n)
}

// Len returns the payload length in bytes.
func (b Buf) Len() int64 { return b.n }

// Phantom reports whether the Buf carries no real bytes.
func (b Buf) Phantom() bool { return b.phantom }

// Bytes returns the underlying storage of a real Buf. It panics for
// phantom Bufs: callers must branch on Phantom() before touching data.
func (b Buf) Bytes() []byte {
	if b.phantom {
		panic("buffer: Bytes() on phantom Buf")
	}
	return b.data
}

// Slice returns the sub-payload [off, off+n). For a real Buf the result
// aliases the parent's storage. It panics on out-of-range arguments.
func (b Buf) Slice(off, n int64) Buf {
	if off < 0 || n < 0 || off+n > b.n {
		panic(fmt.Sprintf("buffer: slice [%d,%d) of %d-byte Buf", off, off+n, b.n))
	}
	if b.phantom {
		return Buf{n: n, phantom: true}
	}
	return Buf{data: b.data[off : off+n], n: n}
}

// Copy copies min(len(dst), len(src)) bytes from src into dst and
// returns the count. If either side is phantom no bytes move; a real
// destination receiving from a phantom source is zero-filled so stale
// data never masquerades as transferred data.
func Copy(dst, src Buf) int64 {
	n := dst.n
	if src.n < n {
		n = src.n
	}
	switch {
	case dst.phantom:
		// Nothing to store.
	case src.phantom:
		clear(dst.data[:n])
	default:
		copy(dst.data[:n], src.data[:n])
	}
	return n
}

// Fill writes a deterministic pattern derived from (tag, fileOffset)
// into a real Buf; phantom Bufs ignore it. Tests use Fill + Verify to
// check end-to-end data integrity across arbitrary shuffles.
func (b Buf) Fill(tag uint64, fileOffset int64) {
	if b.phantom {
		return
	}
	for i := int64(0); i < b.n; i++ {
		b.data[i] = Pattern(tag, fileOffset+i)
	}
}

// Verify checks a real Buf against the deterministic pattern and
// returns the index of the first mismatch, or -1 if all bytes match.
// Phantom Bufs trivially verify.
func (b Buf) Verify(tag uint64, fileOffset int64) int64 {
	if b.phantom {
		return -1
	}
	for i := int64(0); i < b.n; i++ {
		if b.data[i] != Pattern(tag, fileOffset+i) {
			return i
		}
	}
	return -1
}

// Pattern is the byte a correctly functioning stack must deliver at
// fileOffset for stream tag. It mixes both inputs so shifted or
// crossed-stream data is detected.
func Pattern(tag uint64, fileOffset int64) byte {
	x := tag*0x9e3779b97f4a7c15 + uint64(fileOffset)*0xbf58476d1ce4e5b9
	x ^= x >> 29
	return byte(x)
}
