package simtime

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestQueuePopEmptyPanics pins the contract documented on pop: the run
// loop guards emptiness, so a bare pop on an empty queue is a scheduler
// bug and must fail loudly rather than return a zero event.
func TestQueuePopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pop on empty queue did not panic")
		}
	}()
	var q eventQueue
	q.pop()
}

// TestQueueEqualTimestampFIFO drains a heap loaded with many events at
// few distinct timestamps and checks full (at, seq) order: within one
// instant, events must come out in schedule order. This is the
// tie-break the flattened siftDown must preserve — a heap that compares
// only on time would be stable by accident at small sizes and wrong at
// large ones.
func TestQueueEqualTimestampFIFO(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var q eventQueue
	var seq uint64
	const n = 5000
	for i := 0; i < n; i++ {
		seq++
		// Only 8 distinct timestamps: dense ties.
		q.push(event{at: float64(rng.Intn(8)), seq: seq})
	}
	var prev event
	for i := 0; i < n; i++ {
		ev := q.pop()
		if i > 0 {
			if ev.at < prev.at {
				t.Fatalf("pop %d: time went backwards: %g after %g", i, ev.at, prev.at)
			}
			if ev.at == prev.at && ev.seq < prev.seq {
				t.Fatalf("pop %d: FIFO violated at t=%g: seq %d after %d", i, ev.at, ev.seq, prev.seq)
			}
		}
		prev = ev
	}
	if len(q.heap) != 0 {
		t.Fatalf("queue not drained: %d left", len(q.heap))
	}
}

// TestQueueInterleavedPushPop mixes pushes and pops the way a live
// simulation does (wakes scheduled while draining) and checks the
// result against a sort of the same records.
func TestQueueInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var q eventQueue
	var seq uint64
	var all, got []event
	now := 0.0
	for i := 0; i < 2000; i++ {
		if len(q.heap) == 0 || rng.Intn(3) != 0 {
			seq++
			ev := event{at: now + float64(rng.Intn(4)), seq: seq}
			q.push(ev)
			all = append(all, ev)
		} else {
			ev := q.pop()
			now = ev.at
			got = append(got, ev)
		}
	}
	for len(q.heap) > 0 {
		got = append(got, q.pop())
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		return all[i].seq < all[j].seq
	})
	if len(got) != len(all) {
		t.Fatalf("drained %d events, pushed %d", len(got), len(all))
	}
	for i := range all {
		if got[i].at != all[i].at || got[i].seq != all[i].seq {
			t.Fatalf("pop %d: got (%g,%d), want (%g,%d)", i, got[i].at, got[i].seq, all[i].at, all[i].seq)
		}
	}
}

// TestAdvanceInlineYieldsToEqualTimeEvent checks the strict comparison
// in advanceInline: a process sleeping to exactly the time of an
// already-queued event must park so the queued event (older sequence
// number) runs first. An inline advance here would reorder
// simultaneous events and break determinism.
func TestAdvanceInlineYieldsToEqualTimeEvent(t *testing.T) {
	e := NewEngine()
	var order []string
	e.After(1, func() { order = append(order, "timer") })
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(1) // wakes at t=1, same instant as the timer
		order = append(order, "sleeper")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"timer", "sleeper"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
}

// TestAdvanceInlineSkipsPark checks the fast path itself: a lone
// process chaining sleeps with an empty queue advances the clock
// without ever re-entering the event queue, and lands at the same
// virtual time the slow path would produce.
func TestAdvanceInlineSkipsPark(t *testing.T) {
	e := NewEngine()
	e.Spawn("lone", func(p *Proc) {
		for i := 0; i < 1000; i++ {
			p.Sleep(0.5)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 500 {
		t.Fatalf("clock at %g, want 500", e.Now())
	}
}

// TestAdvanceInlineRespectsStop pins the Stop interaction: a process
// looping on Sleep must still go through the queue once Stop is called
// so the drained run loop regains control, instead of spinning the
// clock forward forever on the inline path.
func TestAdvanceInlineRespectsStop(t *testing.T) {
	e := NewEngine()
	var wakes int
	e.Spawn("looper", func(p *Proc) {
		for {
			p.Sleep(1)
			wakes++
			if wakes == 3 {
				e.Stop()
			}
			if wakes > 3 {
				t.Error("looper ran past Stop")
				return
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wakes != 3 {
		t.Fatalf("looper woke %d times, want 3", wakes)
	}
}

// BenchmarkEventQueue measures steady-state push/pop with a warm
// backing array. The queue is the hottest structure in a run; it must
// not allocate once the array has grown to the working-set size.
func BenchmarkEventQueue(b *testing.B) {
	var q eventQueue
	var seq uint64
	// Warm: keep ~64 events resident, as a mid-size simulation does.
	for i := 0; i < 64; i++ {
		seq++
		q.push(event{at: float64(i), seq: seq})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := q.pop()
		seq++
		ev.at += 64
		ev.seq = seq
		q.push(ev)
	}
	if testing.AllocsPerRun(100, func() {
		ev := q.pop()
		q.push(ev)
	}) != 0 {
		b.Fatal("event queue allocated in steady state")
	}
}

// BenchmarkSleepChain measures the whole-engine cost of a process
// advancing time with no competing events — the inline fast path.
func BenchmarkSleepChain(b *testing.B) {
	e := NewEngine()
	done := make(chan struct{})
	e.Spawn("lone", func(p *Proc) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
		close(done)
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	<-done
}
