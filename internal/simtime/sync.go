package simtime

import "fmt"

// Signal is a broadcast/wake-one condition for simulated processes.
// The zero value is not usable; construct with NewSignal.
type Signal struct {
	e          *Engine
	name       string
	parkReason string // precomputed: concatenating per Wait allocates
	waiters    []*Proc
}

// NewSignal returns a Signal bound to engine e.
func NewSignal(e *Engine, name string) *Signal {
	return &Signal{e: e, name: name, parkReason: "signal " + name}
}

// Wait parks p until another process calls Broadcast or WakeOne.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.park(s.parkReason)
}

// Broadcast wakes every waiter at the current virtual time.
func (s *Signal) Broadcast() {
	for _, w := range s.waiters {
		w.wake()
	}
	s.waiters = s.waiters[:0]
}

// WakeOne wakes the longest-waiting process, if any. It reports whether
// a process was woken.
func (s *Signal) WakeOne() bool {
	if len(s.waiters) == 0 {
		return false
	}
	w := s.waiters[0]
	copy(s.waiters, s.waiters[1:])
	s.waiters[len(s.waiters)-1] = nil
	s.waiters = s.waiters[:len(s.waiters)-1]
	w.wake()
	return true
}

// Waiters returns the number of parked processes.
func (s *Signal) Waiters() int { return len(s.waiters) }

// Chan is an unbounded FIFO mailbox between simulated processes. Put is
// non-blocking; Get blocks the calling process until an item arrives.
// It models an eager message channel: transfer cost is the sender's
// concern (charge time before Put), not the channel's.
type Chan[T any] struct {
	e          *Engine
	name       string
	parkReason string // precomputed: park reasons are built per blocking call otherwise
	items      []T
	head       int // index of the oldest live item; items[:head] are consumed
	waiters    []*Proc
}

// NewChan returns an empty mailbox bound to engine e.
func NewChan[T any](e *Engine, name string) *Chan[T] {
	return &Chan[T]{e: e, name: name, parkReason: "chan " + name}
}

// Put appends v and wakes the longest-waiting receiver, if any.
func (c *Chan[T]) Put(v T) {
	if c.head == len(c.items) {
		// Drained: restart at the front so steady-state Put/Get traffic
		// reuses the backing array instead of growing it forever (the
		// items[1:] idiom strands consumed capacity behind the slice base).
		c.items = c.items[:0]
		c.head = 0
	}
	c.items = append(c.items, v)
	if len(c.waiters) > 0 {
		w := c.waiters[0]
		// Shift rather than re-slice so the backing array is reused; the
		// queue is almost always length 1, so the copy is a single move.
		copy(c.waiters, c.waiters[1:])
		c.waiters[len(c.waiters)-1] = nil
		c.waiters = c.waiters[:len(c.waiters)-1]
		w.wake()
	}
}

// Get removes and returns the oldest item, blocking p until one exists.
func (c *Chan[T]) Get(p *Proc) T {
	for c.head == len(c.items) {
		c.waiters = append(c.waiters, p)
		p.park(c.parkReason)
	}
	v := c.items[c.head]
	// Avoid retaining a reference in the backing array.
	var zero T
	c.items[c.head] = zero
	c.head++
	return v
}

// TryGet removes and returns the oldest item without blocking.
func (c *Chan[T]) TryGet() (T, bool) {
	var zero T
	if c.head == len(c.items) {
		return zero, false
	}
	v := c.items[c.head]
	c.items[c.head] = zero
	c.head++
	return v, true
}

// Len returns the number of queued items.
func (c *Chan[T]) Len() int { return len(c.items) - c.head }

// Barrier blocks a fixed-size party of processes until all have
// arrived. It is reusable: generation counting lets the same Barrier
// synchronise successive phases.
type Barrier struct {
	e          *Engine
	name       string
	parkReason string // precomputed: a barrier parks every rank every round
	parties    int
	arrived    int
	gen        int
	waiters    []*Proc
}

// NewBarrier returns a barrier for the given party size.
func NewBarrier(e *Engine, name string, parties int) *Barrier {
	if parties <= 0 {
		panic(fmt.Sprintf("simtime: barrier %q with parties=%d", name, parties))
	}
	return &Barrier{e: e, name: name, parkReason: "barrier " + name, parties: parties}
}

// Await blocks p until parties processes have called Await in the
// current generation. The last arriver releases everyone without
// blocking itself.
func (b *Barrier) Await(p *Proc) {
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		for _, w := range b.waiters {
			w.wake()
		}
		b.waiters = b.waiters[:0]
		return
	}
	gen := b.gen
	b.waiters = append(b.waiters, p)
	for gen == b.gen {
		p.park(b.parkReason)
	}
}

// AwaitDelay is Await with the release deferred by delay seconds: every
// member (the last arriver included) resumes at arrival-of-last + delay.
// Callers that would otherwise follow Await with a fixed Sleep (e.g. a
// modelled log₂p token cascade) should fold the sleep in here: the
// virtual outcome is identical — the releaser resumes first, then the
// waiters in arrival order, exactly as Await-then-Sleep interleaves —
// but each waiter parks once instead of twice, which halves the
// context-switch bill of a barrier at large party counts.
func (b *Barrier) AwaitDelay(p *Proc, delay float64) {
	if delay < 0 {
		panic(fmt.Sprintf("simtime: barrier %q with negative delay %g", b.name, delay))
	}
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		at := b.e.now + delay
		// Schedule self before the waiters so the releaser keeps the
		// first slot at the release instant, matching the order the
		// unfolded Await + Sleep sequence produced.
		b.e.schedule(at, p, nil)
		for _, w := range b.waiters {
			b.e.schedule(at, w, nil)
		}
		b.waiters = b.waiters[:0]
		p.park(b.parkReason)
		return
	}
	gen := b.gen
	b.waiters = append(b.waiters, p)
	for gen == b.gen {
		p.park(b.parkReason)
	}
}
