package simtime

import "fmt"

// Signal is a broadcast/wake-one condition for simulated processes.
// The zero value is not usable; construct with NewSignal.
type Signal struct {
	e       *Engine
	name    string
	waiters []*Proc
}

// NewSignal returns a Signal bound to engine e.
func NewSignal(e *Engine, name string) *Signal {
	return &Signal{e: e, name: name}
}

// Wait parks p until another process calls Broadcast or WakeOne.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.park("signal " + s.name)
}

// Broadcast wakes every waiter at the current virtual time.
func (s *Signal) Broadcast() {
	for _, w := range s.waiters {
		w.wake()
	}
	s.waiters = s.waiters[:0]
}

// WakeOne wakes the longest-waiting process, if any. It reports whether
// a process was woken.
func (s *Signal) WakeOne() bool {
	if len(s.waiters) == 0 {
		return false
	}
	w := s.waiters[0]
	s.waiters = s.waiters[1:]
	w.wake()
	return true
}

// Waiters returns the number of parked processes.
func (s *Signal) Waiters() int { return len(s.waiters) }

// Chan is an unbounded FIFO mailbox between simulated processes. Put is
// non-blocking; Get blocks the calling process until an item arrives.
// It models an eager message channel: transfer cost is the sender's
// concern (charge time before Put), not the channel's.
type Chan[T any] struct {
	e          *Engine
	name       string
	parkReason string // precomputed: park reasons are built per blocking call otherwise
	items      []T
	waiters    []*Proc
}

// NewChan returns an empty mailbox bound to engine e.
func NewChan[T any](e *Engine, name string) *Chan[T] {
	return &Chan[T]{e: e, name: name, parkReason: "chan " + name}
}

// Put appends v and wakes the longest-waiting receiver, if any.
func (c *Chan[T]) Put(v T) {
	c.items = append(c.items, v)
	if len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		w.wake()
	}
}

// Get removes and returns the oldest item, blocking p until one exists.
func (c *Chan[T]) Get(p *Proc) T {
	for len(c.items) == 0 {
		c.waiters = append(c.waiters, p)
		p.park(c.parkReason)
	}
	v := c.items[0]
	// Avoid retaining a reference in the backing array.
	var zero T
	c.items[0] = zero
	c.items = c.items[1:]
	return v
}

// TryGet removes and returns the oldest item without blocking.
func (c *Chan[T]) TryGet() (T, bool) {
	var zero T
	if len(c.items) == 0 {
		return zero, false
	}
	v := c.items[0]
	c.items[0] = zero
	c.items = c.items[1:]
	return v, true
}

// Len returns the number of queued items.
func (c *Chan[T]) Len() int { return len(c.items) }

// Barrier blocks a fixed-size party of processes until all have
// arrived. It is reusable: generation counting lets the same Barrier
// synchronise successive phases.
type Barrier struct {
	e       *Engine
	name    string
	parties int
	arrived int
	gen     int
	waiters []*Proc
}

// NewBarrier returns a barrier for the given party size.
func NewBarrier(e *Engine, name string, parties int) *Barrier {
	if parties <= 0 {
		panic(fmt.Sprintf("simtime: barrier %q with parties=%d", name, parties))
	}
	return &Barrier{e: e, name: name, parties: parties}
}

// Await blocks p until parties processes have called Await in the
// current generation. The last arriver releases everyone without
// blocking itself.
func (b *Barrier) Await(p *Proc) {
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		for _, w := range b.waiters {
			w.wake()
		}
		b.waiters = b.waiters[:0]
		return
	}
	gen := b.gen
	b.waiters = append(b.waiters, p)
	for gen == b.gen {
		p.park("barrier " + b.name)
	}
}
