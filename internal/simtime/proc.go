package simtime

import "fmt"

type procState int

const (
	stateReady   procState = iota // spawned, not yet dispatched
	stateRunning                  // currently executing
	stateParked                   // blocked on a primitive
	stateDone                     // body returned
)

// Proc is a simulated process. All methods must be called from the
// process's own body (the function passed to Spawn); calling them from
// another goroutine corrupts the scheduler handshake.
type Proc struct {
	e         *Engine
	name      string
	id        int
	resume    chan struct{}
	state     procState
	waitingOn string // human-readable reason, for deadlock reports
}

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns the spawn-order index of the process.
func (p *Proc) ID() int { return p.id }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.e.now }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.e }

// park blocks the process until something reschedules it. The caller
// must have arranged a future wake (an event or a waiter-list entry).
// The run token is handed directly to the next runnable process; see
// Engine.handoff.
func (p *Proc) park(reason string) {
	p.state = stateParked
	p.waitingOn = reason
	if !p.e.handoff(p) {
		<-p.resume
	}
	p.state = stateRunning
	p.waitingOn = ""
}

// wake schedules the process to resume at the current virtual time.
func (p *Proc) wake() {
	p.e.schedule(p.e.now, p, nil)
}

// Sleep advances the process's virtual time by d seconds.
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: %s: negative sleep %g", p.name, d))
	}
	if d == 0 {
		// Still go through the queue so simultaneous events interleave
		// fairly rather than one proc monopolising the step.
		p.e.schedule(p.e.now, p, nil)
		p.park("sleep 0")
		return
	}
	at := p.e.now + d
	if p.e.advanceInline(at) {
		return
	}
	p.e.schedule(at, p, nil)
	p.park("sleep")
}

// WaitUntil blocks until virtual time t. If t is in the past it is a
// yield (the process re-enters the run queue at the current time).
func (p *Proc) WaitUntil(t float64) {
	if t <= p.e.now {
		p.Yield()
		return
	}
	if p.e.advanceInline(t) {
		return
	}
	p.e.schedule(t, p, nil)
	p.park("waituntil")
}

// Yield reschedules the process at the current time, letting other
// ready processes run first.
func (p *Proc) Yield() {
	p.e.schedule(p.e.now, p, nil)
	p.park("yield")
}
