package simtime

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEngine()
	var at float64
	e.Spawn("a", func(p *Proc) {
		p.Sleep(2.5)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 2.5 {
		t.Fatalf("woke at %g, want 2.5", at)
	}
	if e.Now() != 2.5 {
		t.Fatalf("engine at %g, want 2.5", e.Now())
	}
}

func TestEventOrderIsTimeThenFIFO(t *testing.T) {
	e := NewEngine()
	var order []string
	e.After(2, func() { order = append(order, "t2-first") })
	e.After(1, func() { order = append(order, "t1") })
	e.After(2, func() { order = append(order, "t2-second") })
	e.After(0, func() { order = append(order, "t0") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"t0", "t1", "t2-first", "t2-second"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
}

func TestSpawnFromInsideProc(t *testing.T) {
	e := NewEngine()
	var childRan bool
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(1)
		e.Spawn("child", func(c *Proc) {
			if c.Now() != 1 {
				t.Errorf("child started at %g, want 1", c.Now())
			}
			childRan = true
		})
		p.Sleep(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child never ran")
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e, "never")
	e.Spawn("stuck", func(p *Proc) { s.Wait(p) })
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("got %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("blocked %v, want 1 proc", de.Blocked)
	}
}

func TestSignalBroadcastWakesAll(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e, "go")
	woke := 0
	for i := 0; i < 5; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			s.Wait(p)
			woke++
		})
	}
	e.Spawn("broadcaster", func(p *Proc) {
		p.Sleep(1)
		s.Broadcast()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 5 {
		t.Fatalf("woke %d, want 5", woke)
	}
}

func TestSignalWakeOneIsFIFO(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e, "go")
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			s.Wait(p)
			order = append(order, i)
		})
	}
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(1)
		for s.WakeOne() {
			p.Sleep(1)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[0 1 2]" {
		t.Fatalf("wake order %v, want [0 1 2]", order)
	}
}

func TestChanBlocksUntilPut(t *testing.T) {
	e := NewEngine()
	c := NewChan[int](e, "c")
	var got int
	var at float64
	e.Spawn("recv", func(p *Proc) {
		got = c.Get(p)
		at = p.Now()
	})
	e.Spawn("send", func(p *Proc) {
		p.Sleep(3)
		c.Put(42)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 || at != 3 {
		t.Fatalf("got %d at t=%g, want 42 at t=3", got, at)
	}
}

func TestChanFIFOAcrossManyItems(t *testing.T) {
	e := NewEngine()
	c := NewChan[int](e, "c")
	var got []int
	e.Spawn("recv", func(p *Proc) {
		for i := 0; i < 10; i++ {
			got = append(got, c.Get(p))
		}
	})
	e.Spawn("send", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(0.1)
			c.Put(i)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d]=%d, want %d", i, v, i)
		}
	}
}

func TestBarrierReleasesTogetherAndIsReusable(t *testing.T) {
	e := NewEngine()
	const parties = 4
	b := NewBarrier(e, "b", parties)
	times := make([][]float64, parties)
	for i := 0; i < parties; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for phase := 0; phase < 3; phase++ {
				p.Sleep(float64(i+1) * 0.5 * float64(phase+1))
				b.Await(p)
				times[i] = append(times[i], p.Now())
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for phase := 0; phase < 3; phase++ {
		for i := 1; i < parties; i++ {
			if times[i][phase] != times[0][phase] {
				t.Fatalf("phase %d: proc %d released at %g, proc 0 at %g",
					phase, i, times[i][phase], times[0][phase])
			}
		}
	}
}

func TestDeterminismUnderRandomSleeps(t *testing.T) {
	run := func(seed int64) string {
		e := NewEngine()
		rng := rand.New(rand.NewSource(seed))
		var log []string
		c := NewChan[string](e, "c")
		for i := 0; i < 8; i++ {
			i := i
			d := rng.Float64()
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(d)
				c.Put(fmt.Sprintf("%d@%.3f", i, p.Now()))
			})
		}
		e.Spawn("collector", func(p *Proc) {
			for i := 0; i < 8; i++ {
				log = append(log, c.Get(p))
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(log)
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("non-deterministic runs:\n%s\n%s", a, b)
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	ticks := 0
	e.Spawn("ticker", func(p *Proc) {
		for {
			p.Sleep(1)
			ticks++
			if ticks == 5 {
				e.Stop()
				return
			}
		}
	})
	e.Spawn("forever", func(p *Proc) {
		s := NewSignal(e, "never")
		s.Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run after Stop: %v", err)
	}
	if ticks != 5 {
		t.Fatalf("ticks=%d, want 5", ticks)
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	e := NewEngine()
	e.Spawn("bad", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative sleep did not panic")
			}
			// Unwind cleanly so Run terminates.
		}()
		p.Sleep(-1)
	})
	_ = e.Run()
}

func TestAfterZeroDelayRunsAtCurrentTime(t *testing.T) {
	e := NewEngine()
	var at float64 = -1
	e.After(0, func() { at = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 0 {
		t.Fatalf("ran at %g, want 0", at)
	}
}

func TestManyProcsScale(t *testing.T) {
	e := NewEngine()
	const n = 2000
	b := NewBarrier(e, "b", n)
	done := 0
	for i := 0; i < n; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(float64(i%13) * 0.001)
			b.Await(p)
			done++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != n {
		t.Fatalf("done=%d, want %d", done, n)
	}
}

func TestChanTryGet(t *testing.T) {
	e := NewEngine()
	c := NewChan[int](e, "c")
	if _, ok := c.TryGet(); ok {
		t.Fatal("TryGet on empty chan succeeded")
	}
	c.Put(5)
	if v, ok := c.TryGet(); !ok || v != 5 {
		t.Fatalf("TryGet = %d,%v", v, ok)
	}
	if c.Len() != 0 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestSignalWaitersCount(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e, "s")
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) { s.Wait(p) })
	}
	e.Spawn("check", func(p *Proc) {
		p.Sleep(1)
		if s.Waiters() != 3 {
			t.Errorf("waiters %d, want 3", s.Waiters())
		}
		s.Broadcast()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAfterCallbackCanSpawn(t *testing.T) {
	e := NewEngine()
	ran := false
	e.After(1, func() {
		e.Spawn("late", func(p *Proc) {
			p.Sleep(0.5)
			ran = true
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran || e.Now() != 1.5 {
		t.Fatalf("ran=%v now=%g", ran, e.Now())
	}
}
