// Package simtime implements a deterministic discrete-event simulation
// engine with coroutine-style virtual processes.
//
// The engine owns a virtual clock and an event queue. Simulated
// processes (Proc) are goroutines that run one at a time under the
// engine's scheduler: a process runs until it blocks on a simulation
// primitive (Sleep, Signal.Wait, Chan.Get, ...) and the scheduler then
// advances the clock to the next event. Because exactly one process is
// runnable at any instant and ties are broken by sequence number, a
// simulation is bit-reproducible across runs.
//
// Time is a float64 in seconds. Durations must be non-negative; the
// engine panics on attempts to schedule into the past, which always
// indicates a model bug rather than a recoverable condition.
package simtime

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// event is a scheduled occurrence: either the resumption of a parked
// process or the invocation of a bare callback (timer).
type event struct {
	at  float64
	seq uint64 // FIFO tie-break for simultaneous events
	p   *Proc  // non-nil: resume this process
	fn  func() // non-nil: run this callback
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now     float64
	seq     uint64
	events  eventHeap
	yield   chan struct{} // handshake: running proc -> scheduler
	running bool
	cur     *Proc

	procs   []*Proc // all spawned procs, for deadlock reporting
	alive   int     // procs whose body has not returned
	stopped bool    // Stop was called
}

// NewEngine returns an empty simulation at time zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// nextSeq returns a monotonically increasing tie-break sequence.
func (e *Engine) nextSeq() uint64 {
	e.seq++
	return e.seq
}

// schedule inserts an event at absolute time at.
func (e *Engine) schedule(at float64, p *Proc, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("simtime: schedule into the past: at=%g now=%g", at, e.now))
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		panic(fmt.Sprintf("simtime: schedule at non-finite time %g", at))
	}
	heap.Push(&e.events, &event{at: at, seq: e.nextSeq(), p: p, fn: fn})
}

// After schedules fn to run after delay d. It may be called from inside
// a running process or before Run.
func (e *Engine) After(d float64, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative delay %g", d))
	}
	e.schedule(e.now+d, nil, fn)
}

// Spawn creates a simulated process executing body and schedules it to
// start at the current virtual time. It is safe to call both before Run
// and from inside a running process.
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	p := &Proc{
		e:      e,
		name:   name,
		id:     len(e.procs),
		resume: make(chan struct{}),
		state:  stateReady,
	}
	e.procs = append(e.procs, p)
	e.alive++
	go func() {
		<-p.resume // wait for first dispatch
		body(p)
		p.state = stateDone
		e.alive--
		e.yield <- struct{}{}
	}()
	e.schedule(e.now, p, nil)
	return p
}

// dispatch resumes p and blocks until p parks or finishes.
func (e *Engine) dispatch(p *Proc) {
	if p.state == stateDone {
		return
	}
	p.state = stateRunning
	e.cur = p
	p.resume <- struct{}{}
	<-e.yield
	e.cur = nil
}

// Run executes events until none remain or Stop is called. It returns a
// DeadlockError if processes are still parked when the event queue
// drains, which indicates the simulated system wedged (for example a
// Recv with no matching Send).
func (e *Engine) Run() error {
	if e.running {
		panic("simtime: Run reentered")
	}
	e.running = true
	defer func() { e.running = false }()

	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(*event)
		if ev.at < e.now {
			panic("simtime: time went backwards")
		}
		e.now = ev.at
		if ev.p != nil {
			if ev.p.state == stateDone {
				continue // proc was killed/finished before its wake fired
			}
			e.dispatch(ev.p)
		} else if ev.fn != nil {
			ev.fn()
		}
	}
	if e.stopped {
		return nil
	}
	if e.alive > 0 {
		return e.deadlock()
	}
	return nil
}

// Stop terminates Run after the current event completes. Parked
// processes are abandoned (their goroutines leak until the test binary
// exits), so Stop is intended for error paths and examples, not for the
// steady state of a model.
func (e *Engine) Stop() { e.stopped = true }

// deadlock builds the error describing all parked processes.
func (e *Engine) deadlock() error {
	var blocked []string
	for _, p := range e.procs {
		if p.state == stateParked || p.state == stateReady {
			blocked = append(blocked, fmt.Sprintf("%s (waiting: %s)", p.name, p.waitingOn))
		}
	}
	sort.Strings(blocked)
	return &DeadlockError{Now: e.now, Blocked: blocked}
}

// DeadlockError reports that the event queue drained while processes
// were still blocked.
type DeadlockError struct {
	Now     float64  // virtual time at which the simulation wedged
	Blocked []string // names of blocked processes with their wait reasons
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("simtime: deadlock at t=%g: %d blocked procs: %v", d.Now, len(d.Blocked), d.Blocked)
}
