// Package simtime implements a deterministic discrete-event simulation
// engine with coroutine-style virtual processes.
//
// The engine owns a virtual clock and an event queue. Simulated
// processes (Proc) are goroutines that run one at a time under the
// engine's scheduler: a process runs until it blocks on a simulation
// primitive (Sleep, Signal.Wait, Chan.Get, ...) and the scheduler then
// advances the clock to the next event. Because exactly one process is
// runnable at any instant and ties are broken by sequence number, a
// simulation is bit-reproducible across runs.
//
// Time is a float64 in seconds. Durations must be non-negative; the
// engine panics on attempts to schedule into the past, which always
// indicates a model bug rather than a recoverable condition.
package simtime

import (
	"fmt"
	"math"
	"sort"
)

// event is a scheduled occurrence: either the resumption of a parked
// process or the invocation of a bare callback (timer). Events are
// stored by value in a flat heap — no per-event boxing — because the
// queue is the single hottest allocation site of a large simulation
// (millions of schedule calls per run).
type event struct {
	at  float64
	seq uint64 // FIFO tie-break for simultaneous events
	p   *Proc  // non-nil: resume this process
	fn  func() // non-nil: run this callback
}

// eventQueue is a hand-rolled binary min-heap of event values ordered
// by (at, seq). Compared to container/heap over []*event it avoids the
// per-event pointer allocation and the interface boxing of Push/Pop;
// the backing array is reused across the whole run, so steady-state
// scheduling is allocation-free.
type eventQueue struct {
	heap []event
}

// less orders events by time, FIFO (schedule order) within one instant.
func (q *eventQueue) less(i, j int) bool {
	if q.heap[i].at != q.heap[j].at {
		return q.heap[i].at < q.heap[j].at
	}
	return q.heap[i].seq < q.heap[j].seq
}

// push inserts ev, sifting it up to its heap position.
func (q *eventQueue) push(ev event) {
	q.heap = append(q.heap, ev)
	i := len(q.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

// pop removes and returns the earliest event. It panics on an empty
// queue: the run loop checks emptiness first, so a bare pop always
// indicates a scheduler bug.
func (q *eventQueue) pop() event {
	n := len(q.heap) - 1
	ev := q.heap[0]
	q.heap[0] = q.heap[n]
	q.heap[n] = event{} // release the fn/proc references
	q.heap = q.heap[:n]
	q.siftDown(0)
	return ev
}

// siftDown restores the heap property from index i toward the leaves.
func (q *eventQueue) siftDown(i int) {
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && q.less(right, left) {
			least = right
		}
		if !q.less(least, i) {
			return
		}
		q.heap[i], q.heap[least] = q.heap[least], q.heap[i]
		i = least
	}
}

// Engine is a discrete-event simulation. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now     float64
	seq     uint64
	events  eventQueue
	yield   chan struct{} // handshake: running proc -> scheduler
	running bool
	cur     *Proc

	procs   []*Proc // all spawned procs, for deadlock reporting
	alive   int     // procs whose body has not returned
	stopped bool    // Stop was called
}

// NewEngine returns an empty simulation at time zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// nextSeq returns a monotonically increasing tie-break sequence.
func (e *Engine) nextSeq() uint64 {
	e.seq++
	return e.seq
}

// schedule inserts an event at absolute time at.
func (e *Engine) schedule(at float64, p *Proc, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("simtime: schedule into the past: at=%g now=%g", at, e.now))
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		panic(fmt.Sprintf("simtime: schedule at non-finite time %g", at))
	}
	e.events.push(event{at: at, seq: e.nextSeq(), p: p, fn: fn})
}

// advanceInline reports whether the running process may advance the
// clock to at without parking: no pending event precedes at, so a
// park would be immediately followed by this process's own resumption.
// Skipping the round trip elides two goroutine handshakes — the
// dominant host cost of chained resource reservations (storage
// batches, message injection). An event already queued AT at must
// still win (its tie-break sequence predates the wake we would have
// scheduled), hence the strict comparison. After Stop the slow path is
// kept so a looping process still yields control to the drained run
// loop.
func (e *Engine) advanceInline(at float64) bool {
	if !e.running || e.stopped {
		return false
	}
	if len(e.events.heap) != 0 && e.events.heap[0].at <= at {
		return false
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		panic(fmt.Sprintf("simtime: advance to non-finite time %g", at))
	}
	e.now = at
	return true
}

// After schedules fn to run after delay d. It may be called from inside
// a running process or before Run.
func (e *Engine) After(d float64, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative delay %g", d))
	}
	e.schedule(e.now+d, nil, fn)
}

// Spawn creates a simulated process executing body and schedules it to
// start at the current virtual time. It is safe to call both before Run
// and from inside a running process.
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	p := &Proc{
		e:      e,
		name:   name,
		id:     len(e.procs),
		resume: make(chan struct{}),
		state:  stateReady,
	}
	e.procs = append(e.procs, p)
	e.alive++
	go func() {
		<-p.resume // wait for first dispatch
		body(p)
		p.state = stateDone
		e.alive--
		e.handoff(nil)
	}()
	e.schedule(e.now, p, nil)
	return p
}

// next drains events on the caller's goroutine until one resumes a
// process, and returns that process (without dispatching it), or nil
// when the queue is empty or Stop was called. Callback (timer) events
// run inline here: exactly one goroutine executes simulation code at a
// time, so a callback is safe on whichever goroutine holds the run
// token, and running it in place saves the engine-goroutine round trip
// that used to cost two context switches per timer.
func (e *Engine) next() *Proc {
	for len(e.events.heap) > 0 && !e.stopped {
		ev := e.events.pop()
		if ev.at < e.now {
			panic("simtime: time went backwards")
		}
		e.now = ev.at
		if ev.p != nil {
			if ev.p.state == stateDone {
				continue // proc was killed/finished before its wake fired
			}
			return ev.p
		}
		if ev.fn != nil {
			ev.fn()
		}
	}
	return nil
}

// handoff passes the run token from the calling goroutine to the next
// runnable process — directly, without waking the engine goroutine.
// Chaining proc→proc halves the handshake cost of a context switch
// (one channel send instead of park-engine-dispatch's two pairs),
// which is the dominant host cost of a large simulation. Control
// returns to the engine goroutine only when no event remains (finish,
// deadlock, or Stop).
//
// It reports whether the next runnable process is self: sending on
// one's own unbuffered resume channel would deadlock, so a parking
// process whose own wake is next simply keeps the token — no channel
// operation at all. (A finished process passes self=nil; its wakes are
// skipped by next.)
func (e *Engine) handoff(self *Proc) bool {
	nxt := e.next()
	if nxt == self && nxt != nil {
		e.cur = nxt
		return true
	}
	if nxt != nil {
		nxt.state = stateRunning
		e.cur = nxt
		nxt.resume <- struct{}{}
		return false
	}
	e.cur = nil
	e.yield <- struct{}{}
	return false
}

// Run executes events until none remain or Stop is called. It returns a
// DeadlockError if processes are still parked when the event queue
// drains, which indicates the simulated system wedged (for example a
// Recv with no matching Send).
func (e *Engine) Run() error {
	if e.running {
		panic("simtime: Run reentered")
	}
	e.running = true
	defer func() { e.running = false }()

	for {
		nxt := e.next()
		if nxt == nil {
			break // queue drained or stopped
		}
		nxt.state = stateRunning
		e.cur = nxt
		nxt.resume <- struct{}{}
		// The run token now chains from process to process; it comes
		// back here only when the simulation can make no further step.
		<-e.yield
	}
	if e.stopped {
		return nil
	}
	if e.alive > 0 {
		return e.deadlock()
	}
	return nil
}

// Stop terminates Run after the current event completes. Parked
// processes are abandoned (their goroutines leak until the test binary
// exits), so Stop is intended for error paths and examples, not for the
// steady state of a model.
func (e *Engine) Stop() { e.stopped = true }

// deadlock builds the error describing all parked processes.
func (e *Engine) deadlock() error {
	var blocked []string
	for _, p := range e.procs {
		if p.state == stateParked || p.state == stateReady {
			blocked = append(blocked, fmt.Sprintf("%s (waiting: %s)", p.name, p.waitingOn))
		}
	}
	sort.Strings(blocked)
	return &DeadlockError{Now: e.now, Blocked: blocked}
}

// DeadlockError reports that the event queue drained while processes
// were still blocked.
type DeadlockError struct {
	Now     float64  // virtual time at which the simulation wedged
	Blocked []string // names of blocked processes with their wait reasons
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("simtime: deadlock at t=%g: %d blocked procs: %v", d.Now, len(d.Blocked), d.Blocked)
}
