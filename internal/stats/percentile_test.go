package stats

import (
	"math"
	"testing"
)

// TestPercentileEmpty documents the degraded behavior: an empty sample
// yields 0 rather than a panic, so summaries of absent data render as
// zero rows.
func TestPercentileEmpty(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil, 50) = %v, want 0", got)
	}
	if got := Percentile([]float64{}, 95); got != 0 {
		t.Errorf("Percentile(empty, 95) = %v, want 0", got)
	}
	if got := PercentileOf(nil, 50); got != 0 {
		t.Errorf("PercentileOf(nil, 50) = %v, want 0", got)
	}
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	for _, p := range []float64{-1, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(_, %v) did not panic", p)
				}
			}()
			Percentile([]float64{1, 2}, p)
		}()
	}
}

// TestPercentileOfUnsorted checks the sorting wrapper computes the same
// answer as Percentile on pre-sorted data and leaves its input alone.
func TestPercentileOfUnsorted(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	orig := append([]float64(nil), xs...)
	if got, want := PercentileOf(xs, 50), 5.0; got != want {
		t.Errorf("PercentileOf(median) = %v, want %v", got, want)
	}
	if got, want := PercentileOf(xs, 0), 1.0; got != want {
		t.Errorf("PercentileOf(p0) = %v, want %v", got, want)
	}
	if got, want := PercentileOf(xs, 100), 9.0; got != want {
		t.Errorf("PercentileOf(p100) = %v, want %v", got, want)
	}
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatalf("PercentileOf mutated its input: %v != %v", xs, orig)
		}
	}
}

// TestHistogramClamps checks out-of-range samples land in the edge
// bins rather than being dropped or panicking.
func TestHistogramClamps(t *testing.T) {
	h := NewHistogram([]float64{-100, -0.01, 0, 5, 9.99, 10, 1e9, math.Inf(1)}, 0, 10, 4)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 8 {
		t.Fatalf("counted %d of 8 samples", total)
	}
	if h.Counts[0] != 3 { // -100, -0.01, 0
		t.Errorf("low edge bin = %d, want 3 (clamped below-range samples)", h.Counts[0])
	}
	if h.Counts[3] != 4 { // 9.99, 10, 1e9, +Inf
		t.Errorf("high edge bin = %d, want 4 (clamped above-range samples)", h.Counts[3])
	}
}

func TestHistogramInvalidBoundsPanic(t *testing.T) {
	cases := []struct {
		lo, hi float64
		nbins  int
	}{
		{0, 10, 0},  // no bins
		{0, 10, -1}, // negative bins
		{10, 10, 4}, // empty range
		{10, 0, 4},  // inverted range
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(lo=%v, hi=%v, nbins=%d) did not panic", tc.lo, tc.hi, tc.nbins)
				}
			}()
			NewHistogram([]float64{1}, tc.lo, tc.hi, tc.nbins)
		}()
	}
}

// TestSummarizeUsesSafePercentiles guards the Summarize path that
// feeds bench trajectories: single samples and empty samples must not
// panic and must produce sane medians.
func TestSummarizeUsesSafePercentiles(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Median != 7 || s.P95 != 7 {
		t.Errorf("single sample: median %v p95 %v, want 7 7", s.Median, s.P95)
	}
	z := Summarize(nil)
	if z.N != 0 || z.Median != 0 || z.P95 != 0 {
		t.Errorf("empty sample: %+v, want zero summary", z)
	}
}
