package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical draws from different seeds", same)
	}
}

func TestFloat64InUnitInterval(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnInRange(t *testing.T) {
	f := func(seed uint64, n int) bool {
		if n <= 0 {
			n = -n + 1
		}
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(7)
	const n = 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(10, 3)
	}
	s := Summarize(xs)
	if math.Abs(s.Mean-10) > 0.05 {
		t.Fatalf("mean %g, want ~10", s.Mean)
	}
	if math.Abs(s.Std-3) > 0.05 {
		t.Fatalf("std %g, want ~3", s.Std)
	}
}

func TestClippedNormalRespectsBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 200; i++ {
			v := r.ClippedNormal(5, 50, 1, 9)
			if v < 1 || v > 9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Exp(4)
	}
	if m := sum / n; math.Abs(m-4) > 0.1 {
		t.Fatalf("exp mean %g, want ~4", m)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + int(seed%64)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRNG(3)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked generators produced identical first draw")
	}
}

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Sum != 15 {
		t.Fatalf("bad summary: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("std %g, want sqrt(2)", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestPercentileInterpolates(t *testing.T) {
	sorted := []float64{0, 10}
	if got := Percentile(sorted, 50); got != 5 {
		t.Fatalf("p50 = %g, want 5", got)
	}
	if got := Percentile(sorted, 0); got != 0 {
		t.Fatalf("p0 = %g, want 0", got)
	}
	if got := Percentile(sorted, 100); got != 10 {
		t.Fatalf("p100 = %g, want 10", got)
	}
}

func TestPercentileWithinMinMax(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		xs := make([]float64, 1+int(seed%100))
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		s := Summarize(xs)
		return s.Median >= s.Min && s.Median <= s.Max && s.P95 >= s.Min && s.P95 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCV(t *testing.T) {
	if cv := CV([]float64{5, 5, 5, 5}); cv != 0 {
		t.Fatalf("cv of constant sample = %g, want 0", cv)
	}
	if cv := CV(nil); cv != 0 {
		t.Fatalf("cv of empty sample = %g, want 0", cv)
	}
}

func TestHistogramCountsAll(t *testing.T) {
	xs := []float64{-5, 0, 1, 2, 3, 9, 10, 25}
	h := NewHistogram(xs, 0, 10, 5)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != len(xs) {
		t.Fatalf("histogram holds %d samples, want %d (clamping lost some)", total, len(xs))
	}
}
