package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // population standard deviation
	Min    float64
	Max    float64
	Median float64
	P95    float64
	Sum    float64
}

// Summarize computes descriptive statistics. It returns a zero Summary
// for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.N))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Percentile(sorted, 50)
	s.P95 = Percentile(sorted, 95)
	return s
}

// Percentile returns the p-th percentile (0–100) of an ascending-sorted
// sample using linear interpolation between closest ranks. An empty
// sample yields 0 (not a panic) so summaries of absent data degrade to
// zero rows; p outside [0, 100] panics. The input must already be
// sorted — use PercentileOf for unsorted data.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %g out of range", p))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// PercentileOf returns the p-th percentile of an unsorted sample: it
// sorts a copy, leaving the input untouched. Empty samples yield 0.
func PercentileOf(xs []float64, p float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Percentile(sorted, p)
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation, or 0 for a sample of
// fewer than two values.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// CV returns the coefficient of variation (σ/μ), or 0 when the mean is
// zero. Used to report aggregator memory-consumption variance.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return Std(xs) / m
}

// Histogram counts samples into nbins equal-width bins over [lo, hi].
// Out-of-range samples clamp to the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram builds a histogram of xs with nbins bins over [lo, hi].
func NewHistogram(xs []float64, lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		// Clamp in float space: converting an out-of-range float (e.g.
		// +Inf) to int is undefined and would land +Inf in the LOW bin
		// on amd64. NaN also falls through to the low edge.
		i := 0
		if f := (x - lo) / w; f >= float64(nbins) {
			i = nbins - 1
		} else if f > 0 {
			i = int(f)
		}
		h.Counts[i]++
	}
	return h
}
