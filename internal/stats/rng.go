// Package stats provides the deterministic random number generation and
// descriptive statistics used throughout the simulator.
//
// Simulations must be reproducible, so all randomness flows through RNG
// (a SplitMix64 generator) seeded explicitly by the caller; nothing in
// this module reads wall-clock time or global state.
package stats

import "math"

// RNG is a SplitMix64 pseudo-random generator. It is small, fast, has a
// full 2^64 period, and — unlike math/rand's global functions — is
// deterministic for a given seed. The zero value is a valid generator
// seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int63n with n <= 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// Normal returns a sample from N(mean, sigma²) via the Box-Muller
// transform. Each call draws two uniforms; the spare is discarded to
// keep the generator's consumption pattern simple and auditable.
func (r *RNG) Normal(mean, sigma float64) float64 {
	u1 := r.Float64()
	for u1 == 0 { // log(0) guard
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + sigma*z
}

// ClippedNormal returns a Normal sample clipped to [lo, hi]. The paper
// draws per-process aggregation-buffer sizes from a normal distribution
// (mean = nominal buffer, σ = 50) and a physical quantity like memory
// cannot go negative, so clipping is the honest interpretation.
func (r *RNG) ClippedNormal(mean, sigma, lo, hi float64) float64 {
	v := r.Normal(mean, sigma)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// LogNormal returns exp(N(mu, sigma²)); useful for skewed request-size
// distributions in synthetic workloads.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exp returns an exponential sample with the given mean. Used for
// arrival jitter in bursty workloads.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork returns an independent generator derived from this one; useful
// for giving each simulated node its own stream without interleaving
// artifacts.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xa5a5a5a5deadbeef)
}
