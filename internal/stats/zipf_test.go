package stats

import "testing"

// TestZipfSkew checks the defining property: rank 0 is drawn more
// often than rank n-1, monotonically so for the head of the
// distribution, and every draw is in range.
func TestZipfSkew(t *testing.T) {
	const n, draws = 16, 200000
	z := NewZipf(n, 1.1)
	r := NewRNG(7)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		k := z.Sample(r)
		if k < 0 || k >= n {
			t.Fatalf("sample %d out of [0,%d)", k, n)
		}
		counts[k]++
	}
	if counts[0] <= counts[n-1]*2 {
		t.Fatalf("rank 0 drawn %d times, rank %d %d times: not skewed", counts[0], n-1, counts[n-1])
	}
	for k := 0; k < 4; k++ {
		if counts[k] < counts[k+1] {
			t.Fatalf("head not monotone: counts[%d]=%d < counts[%d]=%d", k, counts[k], k+1, counts[k+1])
		}
	}
}

// TestZipfUniform checks that s=0 degenerates to (roughly) uniform.
func TestZipfUniform(t *testing.T) {
	const n, draws = 8, 80000
	z := NewZipf(n, 0)
	r := NewRNG(11)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Sample(r)]++
	}
	want := draws / n
	for k, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Fatalf("rank %d drawn %d times, want about %d", k, c, want)
		}
	}
}

// TestZipfDeterministic checks that the same seed yields the same
// draw sequence — the property the load generator's reproducibility
// rests on.
func TestZipfDeterministic(t *testing.T) {
	z := NewZipf(32, 1.3)
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 1000; i++ {
		if x, y := z.Sample(a), z.Sample(b); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}
