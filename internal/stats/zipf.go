package stats

import (
	"fmt"
	"math"
	"sort"
)

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(k+1)^s — the skewed popularity distribution of repeated
// collective-I/O shapes across timesteps and jobs, which the plan
// service's load generator uses to model cache-friendly traffic.
// s = 0 degenerates to uniform; larger s concentrates mass on the
// lowest ranks. The sampler precomputes the CDF once, so a draw is a
// uniform variate plus a binary search.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over n ranks with exponent s. It panics on
// n <= 0 or negative s (a misconfigured generator, not a data error).
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("stats: Zipf over %d ranks", n))
	}
	if s < 0 || math.IsNaN(s) {
		panic(fmt.Sprintf("stats: Zipf exponent %g", s))
	}
	cdf := make([]float64, n)
	var sum float64
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	cdf[n-1] = 1 // guard against rounding leaving the tail unreachable
	return &Zipf{cdf: cdf}
}

// Sample draws one rank using r's uniform stream.
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}
