package iolib

import (
	"repro/internal/buffer"
	"repro/internal/datatype"
	"repro/internal/simtime"
)

// SieveOptions tunes independent noncontiguous I/O. Data sieving
// (Thakur/Gropp/Lusk) trades extra bytes for fewer requests: instead of
// one request per tiny segment, read (or read-modify-write) one extent
// covering many segments.
type SieveOptions struct {
	// BufSize caps the extent handled per sieve batch. Zero disables
	// sieving: every segment becomes its own request.
	BufSize int64
	// MaxGapFrac aborts sieving a batch whose holes exceed this
	// fraction of its extent; reading 99% garbage to fetch 1% data
	// loses. 0 means "always sieve within BufSize".
	MaxGapFrac float64
	// WriteRMW allows read-modify-write of holey write batches. It is
	// only safe when the file system provides byte-range locking or the
	// caller guarantees no concurrent writer touches the holes — the
	// same condition ROMIO attaches to write data sieving. When false
	// (the default), holey batches are written as exact per-run
	// requests in one pipelined batch.
	WriteRMW bool
}

// DefaultSieve mirrors ROMIO's ind_rd_buffer_size era defaults.
func DefaultSieve() SieveOptions {
	return SieveOptions{BufSize: 4 << 20, MaxGapFrac: 0.9}
}

// batches greedily groups canonical segments into runs whose extent
// fits opts.BufSize and whose hole fraction stays under MaxGapFrac.
func (o SieveOptions) batches(view datatype.List) []datatype.List {
	if len(view) == 0 {
		return nil
	}
	if o.BufSize <= 0 {
		out := make([]datatype.List, len(view))
		for i, s := range view {
			out[i] = datatype.List{s}
		}
		return out
	}
	var out []datatype.List
	cur := datatype.List{view[0]}
	curLo := view[0].Off
	curBytes := view[0].Len
	for _, s := range view[1:] {
		extent := s.End() - curLo
		holes := extent - (curBytes + s.Len)
		tooMuchGap := o.MaxGapFrac > 0 && float64(holes) > o.MaxGapFrac*float64(extent)
		if extent > o.BufSize || tooMuchGap {
			out = append(out, cur)
			cur = datatype.List{s}
			curLo = s.Off
			curBytes = s.Len
			continue
		}
		cur = append(cur, s)
		curBytes += s.Len
	}
	return append(out, cur)
}

// WriteIndependent performs this rank's noncontiguous write without any
// inter-process coordination. With WriteRMW, a batch with holes is
// read-modify-written as one extent (fast, but needs locking against
// concurrent writers); without it, each run is its own request in a
// pipelined batch — slower on many tiny runs, which is exactly why
// collective I/O exists.
func (f *File) WriteIndependent(p *simtime.Proc, rank int, view datatype.List, data buffer.Buf, opts SieveOptions) {
	vi := NewViewIndex(view)
	for _, batch := range opts.batches(view) {
		lo := batch[0].Off
		hi := batch[len(batch)-1].End()
		_, packed := vi.Pack(data, lo, hi)
		if len(batch) == 1 {
			f.WriteAt(p, rank, lo, packed)
			continue
		}
		if opts.WriteRMW {
			// Read-modify-write the whole extent.
			extent := buffer.New(hi-lo, data.Phantom())
			f.ReadAt(p, rank, lo, extent)
			ScatterIntoRegion(extent, lo, batch, packed)
			f.WriteAt(p, rank, lo, extent)
			continue
		}
		offs := make([]int64, len(batch))
		bufs := make([]buffer.Buf, len(batch))
		var pos int64
		for i, seg := range batch {
			offs[i] = seg.Off
			bufs[i] = packed.Slice(pos, seg.Len)
			pos += seg.Len
		}
		f.WriteVec(p, rank, offs, bufs)
	}
}

// ReadIndependent performs this rank's noncontiguous read with data
// sieving: one extent read per batch, then local gathering.
func (f *File) ReadIndependent(p *simtime.Proc, rank int, view datatype.List, dst buffer.Buf, opts SieveOptions) {
	vi := NewViewIndex(view)
	for _, batch := range opts.batches(view) {
		lo := batch[0].Off
		hi := batch[len(batch)-1].End()
		extent := buffer.New(hi-lo, dst.Phantom())
		f.ReadAt(p, rank, lo, extent)
		vi.Unpack(dst, batch, GatherFromRegion(extent, lo, batch))
	}
}
