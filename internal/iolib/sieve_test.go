package iolib

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/cluster"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/simtime"
	"repro/internal/trace"
)

func rig(t *testing.T, nodes, cores int) (*simtime.Engine, *cluster.Machine, *pfs.FS) {
	t.Helper()
	e := simtime.NewEngine()
	m, err := cluster.New(cluster.Config{
		Nodes: nodes, CoresPerNode: cores,
		MemPerNode: 256 * cluster.MiB,
		MemBusBW:   1e10, MemBusLat: 1e-7,
		NICBW: 1e9, NICLat: 1e-6,
		BisectionBW: 1e10, BisectionLat: 1e-6,
		IONetBW: 2e9, IONetLat: 1e-5,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := pfs.New(pfs.Config{OSTs: 4, StripeUnit: 1 << 20, OSTBW: 5e8, OSTLatency: 5e-4}, m)
	if err != nil {
		t.Fatal(err)
	}
	return e, m, fs
}

func TestWriteIndependentContiguous(t *testing.T) {
	e, _, fs := rig(t, 1, 1)
	f := Open(fs, "x")
	e.Spawn("p", func(p *simtime.Proc) {
		view := datatype.List{{Off: 100, Len: 1000}}
		data := fillViewBuffer(view, 4)
		f.WriteIndependent(p, 0, view, data, DefaultSieve())
		out := buffer.NewReal(1000)
		f.ReadAt(p, 0, 100, out)
		if i := out.Verify(4, 100); i != -1 {
			t.Errorf("mismatch at %d", i)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteIndependentRMWPreservesNeighbours(t *testing.T) {
	e, _, fs := rig(t, 1, 1)
	f := Open(fs, "x")
	e.Spawn("p", func(p *simtime.Proc) {
		// Pre-existing data across [0, 300).
		base := buffer.NewReal(300)
		base.Fill(1, 0)
		f.WriteAt(p, 0, 0, base)
		// Holey write sieved as one RMW batch.
		view := datatype.List{{Off: 50, Len: 20}, {Off: 100, Len: 20}, {Off: 200, Len: 20}}
		data := fillViewBuffer(view, 2)
		f.WriteIndependent(p, 0, view, data, SieveOptions{BufSize: 1 << 20, WriteRMW: true})
		out := buffer.NewReal(300)
		f.ReadAt(p, 0, 0, out)
		for _, check := range []struct {
			off, n int64
			tag    uint64
		}{
			{0, 50, 1}, {50, 20, 2}, {70, 30, 1}, {100, 20, 2},
			{120, 80, 1}, {200, 20, 2}, {220, 80, 1},
		} {
			if i := out.Slice(check.off, check.n).Verify(check.tag, check.off); i != -1 {
				t.Errorf("range [%d,+%d) tag %d mismatch at %d", check.off, check.n, check.tag, i)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReadIndependentGathersHoleyView(t *testing.T) {
	e, _, fs := rig(t, 1, 1)
	f := Open(fs, "x")
	e.Spawn("p", func(p *simtime.Proc) {
		base := buffer.NewReal(1000)
		base.Fill(7, 0)
		f.WriteAt(p, 0, 0, base)
		view := datatype.List{{Off: 10, Len: 5}, {Off: 500, Len: 100}, {Off: 900, Len: 50}}
		dst := buffer.NewReal(view.TotalBytes())
		f.ReadIndependent(p, 0, view, dst, DefaultSieve())
		var pos int64
		for _, s := range view {
			if i := dst.Slice(pos, s.Len).Verify(7, s.Off); i != -1 {
				t.Errorf("segment %v mismatch at %d", s, i)
			}
			pos += s.Len
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSievingBeatsPerSegmentRequests(t *testing.T) {
	// 512 tiny adjacent-ish segments: sieved read should be much
	// faster than per-segment reads under per-request overhead.
	view := make(datatype.List, 512)
	for i := range view {
		view[i] = datatype.Segment{Off: int64(i) * 128, Len: 64}
	}
	runOne := func(opts SieveOptions) float64 {
		e, _, fs := rig(t, 1, 1)
		f := Open(fs, "x")
		var done float64
		e.Spawn("p", func(p *simtime.Proc) {
			dst := buffer.NewPhantom(view.TotalBytes())
			f.ReadIndependent(p, 0, view, dst, opts)
			done = p.Now()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	sieved := runOne(DefaultSieve())
	naive := runOne(SieveOptions{})
	if sieved*10 > naive {
		t.Fatalf("sieved %g s vs naive %g s: sieving not >=10x better", sieved, naive)
	}
}

func TestRunHarnessWithNaiveStrategy(t *testing.T) {
	e, m, fs := rig(t, 2, 2)
	w, err := mpi.NewWorld(e, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := Open(fs, "shared")
	var res trace.Result
	const segLen = 1 << 10
	w.Start(func(c *mpi.Comm) {
		// Interleaved pattern: rank r owns blocks r, r+4, r+8, ...
		view := datatype.Tiled(datatype.Vector{Count: 8, BlockLen: segLen, Stride: segLen * 4}, int64(c.Rank())*segLen, 1)
		data := fillViewBuffer(view, uint64(c.Rank()))
		// Sieving is disabled for the concurrent write: read-modify-write
		// extents from different ranks interleave and would clobber each
		// other without the file locking real ROMIO employs — the exact
		// hazard collective I/O sidesteps by assigning disjoint domains.
		r := Run(Naive{Opts: SieveOptions{}}, "write", f, c, view, data, &trace.Metrics{})
		if c.Rank() == 0 {
			res = r
		}

		// Read everything back and verify.
		dst := buffer.NewReal(view.TotalBytes())
		Run(Naive{Opts: DefaultSieve()}, "read", f, c, view, dst, nil)
		var pos int64
		for _, s := range view {
			if i := dst.Slice(pos, s.Len).Verify(uint64(c.Rank()), s.Off); i != -1 {
				t.Errorf("rank %d segment %v mismatch at %d", c.Rank(), s, i)
			}
			pos += s.Len
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 4*8*segLen {
		t.Fatalf("result bytes %d, want %d", res.Bytes, 4*8*segLen)
	}
	if res.Elapsed <= 0 || res.BandwidthMBps() <= 0 {
		t.Fatalf("bad result %+v", res)
	}
	if res.Strategy != "independent" || res.Op != "write" {
		t.Fatalf("result labels %q %q", res.Strategy, res.Op)
	}
}

func TestRunBadOpPanics(t *testing.T) {
	e, m, fs := rig(t, 1, 1)
	w, _ := mpi.NewWorld(e, m, 1)
	f := Open(fs, "x")
	w.Start(func(c *mpi.Comm) {
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		Run(Naive{}, "append", f, c, nil, buffer.NewPhantom(0), nil)
	})
	_ = e.Run()
}
