package iolib

import (
	"testing"
	"testing/quick"

	"repro/internal/buffer"
	"repro/internal/datatype"
	"repro/internal/stats"
)

// fillViewBuffer lays pattern bytes into a flat buffer as the
// concatenation of view segments, using each segment's file offset —
// so any correct pack/shuffle/unpack chain reproduces Pattern(tag, fileOff).
func fillViewBuffer(view datatype.List, tag uint64) buffer.Buf {
	buf := buffer.NewReal(view.TotalBytes())
	var pos int64
	for _, s := range view {
		buf.Slice(pos, s.Len).Fill(tag, s.Off)
		pos += s.Len
	}
	return buf
}

func TestViewIndexLookup(t *testing.T) {
	view := datatype.List{{Off: 10, Len: 5}, {Off: 20, Len: 5}, {Off: 100, Len: 10}}
	vi := NewViewIndex(view)
	if vi.TotalBytes() != 20 {
		t.Fatalf("total %d", vi.TotalBytes())
	}
	cases := []struct {
		fileOff int64
		seg     int
		bufOff  int64
	}{{10, 0, 0}, {14, 0, 4}, {20, 1, 5}, {100, 2, 10}, {109, 2, 19}}
	for _, c := range cases {
		i := vi.segContaining(c.fileOff)
		if i != c.seg {
			t.Fatalf("segContaining(%d)=%d, want %d", c.fileOff, i, c.seg)
		}
		if got := vi.bufOffset(i, c.fileOff); got != c.bufOff {
			t.Fatalf("bufOffset(%d)=%d, want %d", c.fileOff, got, c.bufOff)
		}
	}
	for _, off := range []int64{0, 9, 15, 19, 25, 110} {
		if i := vi.segContaining(off); i != -1 {
			t.Fatalf("segContaining(%d)=%d, want -1", off, i)
		}
	}
}

func TestNonCanonicalViewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewViewIndex(datatype.List{{Off: 10, Len: 5}, {Off: 5, Len: 5}})
}

func TestPackExtractsClippedBytes(t *testing.T) {
	view := datatype.List{{Off: 0, Len: 10}, {Off: 20, Len: 10}}
	vi := NewViewIndex(view)
	data := fillViewBuffer(view, 3)
	segs, packed := vi.Pack(data, 5, 25)
	if !segs.Equal(datatype.List{{Off: 5, Len: 5}, {Off: 20, Len: 5}}) {
		t.Fatalf("segs %v", segs)
	}
	if packed.Len() != 10 {
		t.Fatalf("packed %d bytes", packed.Len())
	}
	if i := packed.Slice(0, 5).Verify(3, 5); i != -1 {
		t.Fatalf("first piece mismatch at %d", i)
	}
	if i := packed.Slice(5, 5).Verify(3, 20); i != -1 {
		t.Fatalf("second piece mismatch at %d", i)
	}
}

func TestPackPhantomKeepsLengths(t *testing.T) {
	view := datatype.List{{Off: 0, Len: 10}, {Off: 20, Len: 10}}
	vi := NewViewIndex(view)
	segs, packed := vi.Pack(buffer.NewPhantom(20), 5, 25)
	if !packed.Phantom() || packed.Len() != 10 || segs.TotalBytes() != 10 {
		t.Fatalf("phantom pack: %v %d", segs, packed.Len())
	}
}

func TestUnpackInvertsPack(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		raw := make([]datatype.Segment, 1+r.Intn(20))
		for i := range raw {
			raw[i] = datatype.Segment{Off: r.Int63n(2000), Len: 1 + r.Int63n(100)}
		}
		view := datatype.Normalize(raw)
		vi := NewViewIndex(view)
		data := fillViewBuffer(view, seed)
		lo, hi := view.Extent()
		cutA := lo + r.Int63n(hi-lo+1)
		cutB := lo + r.Int63n(hi-lo+1)
		if cutA > cutB {
			cutA, cutB = cutB, cutA
		}
		segs, packed := vi.Pack(data, cutA, cutB)
		blank := buffer.NewReal(view.TotalBytes())
		vi.Unpack(blank, segs, packed)
		// Every unpacked byte must match the pattern at its file offset.
		var pos int64
		for _, s := range view {
			for _, c := range segs.Clip(s.Off, s.End()) {
				rel := c.Off - s.Off
				if i := blank.Slice(pos+rel, c.Len).Verify(seed, c.Off); i != -1 {
					return false
				}
			}
			pos += s.Len
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestScatterGatherRegionRoundTrip(t *testing.T) {
	segs := datatype.List{{Off: 105, Len: 5}, {Off: 120, Len: 10}}
	payload := buffer.NewReal(15)
	payload.Slice(0, 5).Fill(9, 105)
	payload.Slice(5, 10).Fill(9, 120)
	region := buffer.NewReal(50) // file [100, 150)
	ScatterIntoRegion(region, 100, segs, payload)
	if i := region.Slice(5, 5).Verify(9, 105); i != -1 {
		t.Fatalf("scatter first seg mismatch at %d", i)
	}
	back := GatherFromRegion(region, 100, segs)
	if back.Len() != 15 {
		t.Fatalf("gather %d bytes", back.Len())
	}
	if i := back.Slice(0, 5).Verify(9, 105); i != -1 {
		t.Fatalf("gather mismatch at %d", i)
	}
	if i := back.Slice(5, 10).Verify(9, 120); i != -1 {
		t.Fatalf("gather mismatch at %d", i)
	}
}

func TestSieveBatchesRespectBufSize(t *testing.T) {
	view := datatype.List{{Off: 0, Len: 10}, {Off: 100, Len: 10}, {Off: 200, Len: 10}, {Off: 5000, Len: 10}}
	b := (SieveOptions{BufSize: 300}).batches(view)
	if len(b) != 2 {
		t.Fatalf("%d batches, want 2", len(b))
	}
	if len(b[0]) != 3 || len(b[1]) != 1 {
		t.Fatalf("batch sizes %d,%d", len(b[0]), len(b[1]))
	}
}

func TestSieveBatchesGapFraction(t *testing.T) {
	// Two tiny segments 1000 apart: hole fraction ~0.99 > 0.5 → split.
	view := datatype.List{{Off: 0, Len: 10}, {Off: 1000, Len: 10}}
	b := (SieveOptions{BufSize: 1 << 20, MaxGapFrac: 0.5}).batches(view)
	if len(b) != 2 {
		t.Fatalf("%d batches, want 2 (gap too sparse to sieve)", len(b))
	}
}

func TestSieveDisabledOneBatchPerSegment(t *testing.T) {
	view := datatype.List{{Off: 0, Len: 10}, {Off: 20, Len: 10}, {Off: 40, Len: 10}}
	b := (SieveOptions{}).batches(view)
	if len(b) != 3 {
		t.Fatalf("%d batches, want 3", len(b))
	}
}

func TestBatchesPartitionView(t *testing.T) {
	f := func(seed uint64, bufSize uint32) bool {
		r := stats.NewRNG(seed)
		raw := make([]datatype.Segment, 1+r.Intn(30))
		for i := range raw {
			raw[i] = datatype.Segment{Off: r.Int63n(5000), Len: 1 + r.Int63n(200)}
		}
		view := datatype.Normalize(raw)
		opts := SieveOptions{BufSize: int64(bufSize % 4096), MaxGapFrac: 0.8}
		var total int64
		var segCount int
		for _, b := range opts.batches(view) {
			if len(b) == 0 {
				return false
			}
			total += b.TotalBytes()
			segCount += len(b)
		}
		return total == view.TotalBytes() && segCount == len(view)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
