package iolib

import (
	"fmt"
	"sort"

	"repro/internal/buffer"
	"repro/internal/datatype"
)

// ViewIndex binds a rank's file view (canonical segment list) to its
// flat local buffer and answers, in O(log n), where a file byte lives
// in that buffer. Two-phase I/O clips the view against every file
// domain each round, so this lookup is on the hot path.
type ViewIndex struct {
	view   datatype.List
	prefix []int64 // prefix[i] = buffer offset of view[i]'s first byte
}

// NewViewIndex builds the index. view must be canonical.
func NewViewIndex(view datatype.List) *ViewIndex {
	if !view.IsCanonical() {
		panic("iolib: view is not canonical")
	}
	prefix := make([]int64, len(view))
	var sum int64
	for i, s := range view {
		prefix[i] = sum
		sum += s.Len
	}
	return &ViewIndex{view: view, prefix: prefix}
}

// View returns the indexed segment list.
func (vi *ViewIndex) View() datatype.List { return vi.view }

// TotalBytes returns the buffer length the view implies.
func (vi *ViewIndex) TotalBytes() int64 {
	if len(vi.view) == 0 {
		return 0
	}
	return vi.prefix[len(vi.prefix)-1] + vi.view[len(vi.view)-1].Len
}

// bufOffset maps a file offset inside segment i to its buffer offset.
func (vi *ViewIndex) bufOffset(i int, fileOff int64) int64 {
	return vi.prefix[i] + (fileOff - vi.view[i].Off)
}

// segContaining returns the index of the view segment containing
// fileOff, or -1.
func (vi *ViewIndex) segContaining(fileOff int64) int {
	i := sort.Search(len(vi.view), func(i int) bool { return vi.view[i].End() > fileOff })
	if i < len(vi.view) && vi.view[i].Off <= fileOff {
		return i
	}
	return -1
}

// Clip returns the view's segments inside [lo, hi).
func (vi *ViewIndex) Clip(lo, hi int64) datatype.List {
	return vi.view.Clip(lo, hi)
}

// Intersects reports whether the view touches [lo, hi) without
// materialising the clipped list.
func (vi *ViewIndex) Intersects(lo, hi int64) bool {
	return vi.view.Intersects(lo, hi)
}

// Pack extracts from data the bytes of every view segment inside
// [lo, hi), in file order, returning the clipped segments and the
// packed payload. A phantom data buffer yields a phantom payload of the
// right length — the same control flow either way.
func (vi *ViewIndex) Pack(data buffer.Buf, lo, hi int64) (datatype.List, buffer.Buf) {
	return vi.PackArena(nil, data, lo, hi)
}

// PackArena is Pack with the clipped segment list drawn from arena a
// (nil a falls back to heap allocation). The returned list obeys the
// arena's lifetime rules: it must be consumed before the arena resets.
func (vi *ViewIndex) PackArena(a *datatype.Arena, data buffer.Buf, lo, hi int64) (datatype.List, buffer.Buf) {
	segs := a.Clip(vi.view, lo, hi)
	total := segs.TotalBytes()
	out := buffer.New(total, data.Phantom())
	if data.Phantom() || total == 0 {
		return segs, out
	}
	var pos int64
	for _, s := range segs {
		i := vi.segContaining(s.Off)
		if i < 0 {
			panic(fmt.Sprintf("iolib: clipped segment %v escaped view", s))
		}
		buffer.Copy(out.Slice(pos, s.Len), data.Slice(vi.bufOffset(i, s.Off), s.Len))
		pos += s.Len
	}
	return segs, out
}

// Unpack stores a packed payload (laid out as segs, which must be
// clipped from this view) back into data at the view's buffer offsets —
// the read-side inverse of Pack.
func (vi *ViewIndex) Unpack(data buffer.Buf, segs datatype.List, src buffer.Buf) {
	if data.Phantom() || src.Phantom() {
		return
	}
	var pos int64
	for _, s := range segs {
		i := vi.segContaining(s.Off)
		if i < 0 {
			panic(fmt.Sprintf("iolib: segment %v not in view", s))
		}
		buffer.Copy(data.Slice(vi.bufOffset(i, s.Off), s.Len), src.Slice(pos, s.Len))
		pos += s.Len
	}
}

// ScatterIntoRegion writes a packed payload into a region buffer that
// represents file range [regionLo, regionLo+region.Len()): aggregators
// use it to assemble their file domain from ranks' shuffle pieces.
func ScatterIntoRegion(region buffer.Buf, regionLo int64, segs datatype.List, src buffer.Buf) {
	if region.Phantom() || src.Phantom() {
		return
	}
	var pos int64
	for _, s := range segs {
		buffer.Copy(region.Slice(s.Off-regionLo, s.Len), src.Slice(pos, s.Len))
		pos += s.Len
	}
}

// GatherFromRegion packs the bytes of segs out of a region buffer — the
// read-side shuffle, aggregator to rank.
func GatherFromRegion(region buffer.Buf, regionLo int64, segs datatype.List) buffer.Buf {
	out := buffer.New(segs.TotalBytes(), region.Phantom())
	if region.Phantom() {
		return out
	}
	var pos int64
	for _, s := range segs {
		buffer.Copy(out.Slice(pos, s.Len), region.Slice(s.Off-regionLo, s.Len))
		pos += s.Len
	}
	return out
}
