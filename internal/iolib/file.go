// Package iolib is the MPI-IO-like middleware layer: file handles over
// the simulated parallel file system, file views (noncontiguous access
// patterns bound to a flat local buffer), independent I/O with data
// sieving, and the Collective strategy interface that the baseline
// two-phase implementation and the memory-conscious implementation both
// satisfy.
package iolib

import (
	"repro/internal/buffer"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// File is a parallel-file handle shared by all ranks of a collective
// operation (each rank holds the same *File; the underlying simulated
// storage is engine-serialized, so no locking is needed).
type File struct {
	pf *pfs.File
}

// Open returns a handle on name within fs, creating the file if needed.
func Open(fs *pfs.FS, name string) *File {
	return &File{pf: fs.Open(name)}
}

// Name returns the file name.
func (f *File) Name() string { return f.pf.Name() }

// Size returns one past the highest byte written.
func (f *File) Size() int64 { return f.pf.Size() }

// WriteAt writes buf at off on behalf of rank, blocking p for the
// simulated duration.
func (f *File) WriteAt(p *simtime.Proc, rank int, off int64, buf buffer.Buf) float64 {
	return f.pf.WriteAt(p, rank, off, buf)
}

// ReadAt fills dst from off on behalf of rank, blocking p for the
// simulated duration.
func (f *File) ReadAt(p *simtime.Proc, rank int, off int64, dst buffer.Buf) float64 {
	return f.pf.ReadAt(p, rank, off, dst)
}

// WriteVec writes several (offset, payload) runs as one pipelined batch.
func (f *File) WriteVec(p *simtime.Proc, rank int, offs []int64, bufs []buffer.Buf) float64 {
	return f.pf.WriteVec(p, rank, offs, bufs)
}

// ReadVec fills several (offset, destination) runs as one pipelined batch.
func (f *File) ReadVec(p *simtime.Proc, rank int, offs []int64, bufs []buffer.Buf) float64 {
	return f.pf.ReadVec(p, rank, offs, bufs)
}

// Collective is a collective I/O strategy. view is the calling rank's
// file access pattern (canonical segment list); data is the rank's flat
// local buffer laid out as the concatenation of view's segments in file
// order. All ranks of c must call the same method with consistent
// arguments (the SPMD contract). Implementations fill m when non-nil.
type Collective interface {
	Name() string
	WriteAll(f *File, c *mpi.Comm, view datatype.List, data buffer.Buf, m *trace.Metrics)
	ReadAll(f *File, c *mpi.Comm, view datatype.List, dst buffer.Buf, m *trace.Metrics)
}

// Run executes one collective operation under barriers and returns the
// harness-level result: elapsed virtual time between the moment all
// ranks have entered and the moment all have left. op is "write" or
// "read". Exactly one rank (rank 0) receives the filled Result; other
// ranks receive a zero Result.
func Run(s Collective, op string, f *File, c *mpi.Comm, view datatype.List, data buffer.Buf, m *trace.Metrics) trace.Result {
	c.Barrier()
	start := c.Now()
	switch op {
	case "write":
		s.WriteAll(f, c, view, data, m)
	case "read":
		s.ReadAll(f, c, view, data, m)
	default:
		panic("iolib: op must be \"write\" or \"read\"")
	}
	// The closing barrier is inside the measured window, so trace it as a
	// top-level phase; the opening one above is not (start is taken after).
	sp := c.Tracer().Begin(obs.PhaseBarrier, obs.Loc{Rank: c.WorldRank(c.Rank()), Node: c.NodeOf(c.Rank()), Group: -1, Round: -1})
	c.Barrier()
	sp.End()
	end := c.Now()
	bytes := c.AllreduceInt64(view.TotalBytes(), mpi.SumInt64)
	// Metrics are per-rank; fold them so rank 0's Result is global.
	var local trace.Metrics
	if m != nil {
		local = *m
	}
	all := c.Gather(0, local, 128)
	if c.Rank() != 0 {
		return trace.Result{}
	}
	var merged trace.Metrics
	for _, v := range all {
		merged.Merge(v.(trace.Metrics))
	}
	r := trace.Result{Bytes: bytes, Elapsed: end - start}
	r.Metrics = merged
	r.Metrics.Strategy = s.Name()
	r.Metrics.Op = op
	return r
}
