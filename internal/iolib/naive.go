package iolib

import (
	"repro/internal/buffer"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// Naive is the no-coordination comparator: every rank performs its own
// independent (data-sieved) I/O. It satisfies Collective so harnesses
// can sweep it alongside the real strategies; the paper's §2 argument —
// independent I/O can't exploit cross-process request structure — shows
// up as its poor bandwidth on interleaved patterns.
type Naive struct {
	Opts SieveOptions
}

// Name implements Collective.
func (n Naive) Name() string { return "independent" }

// WriteAll implements Collective.
func (n Naive) WriteAll(f *File, c *mpi.Comm, view datatype.List, data buffer.Buf, m *trace.Metrics) {
	t0 := c.Now()
	f.WriteIndependent(c.Proc(), c.WorldRank(c.Rank()), view, data, n.Opts)
	m.AddIO(view.TotalBytes(), 0, c.Now()-t0)
}

// ReadAll implements Collective.
func (n Naive) ReadAll(f *File, c *mpi.Comm, view datatype.List, dst buffer.Buf, m *trace.Metrics) {
	t0 := c.Now()
	f.ReadIndependent(c.Proc(), c.WorldRank(c.Rank()), view, dst, n.Opts)
	m.AddIO(view.TotalBytes(), 0, c.Now()-t0)
}
