package obs

import (
	"fmt"
	"io"
	"sort"
)

// PhaseTotal accumulates one phase's spans.
type PhaseTotal struct {
	Seconds float64 // summed span durations across all tracks
	Bytes   int64
	Extra   int64
	Count   int64 // number of spans (or instants)
}

// RoundTotal is the per-round phase split, summed across ranks.
type RoundTotal struct {
	Round                                             int
	Barrier, Pack, Intra, Exchange, RMW, Assembly, IO float64
	ExchangeBytes, IOBytes                            int64
}

// MemPoint is one ledger sample on a node.
type MemPoint struct {
	T    float64
	Used int64
}

// Summary is the aggregated view of one trace: the phase-breakdown
// table the report command prints and the figures compare against.
type Summary struct {
	Start, End float64 // earliest T0 / latest T1 over all spans

	Phases  map[Phase]*PhaseTotal // top-level pipeline phases
	Detail  map[Phase]*PhaseTotal // mpi.* / pfs.* spans and planner instants
	Rounds  []*RoundTotal         // indexed by round number
	PerRank map[int]map[Phase]float64

	GroupBytes   map[int]int64 // group -> exchange payload bytes
	GroupSeconds map[int]float64

	NodeMem     map[int][]MemPoint // node -> ledger timeline
	NodeMemPeak map[int]int64
}

// maxSummaryRounds bounds the per-round table: Rounds is indexed by
// the round numbers the trace claims, and a corrupt file claiming a
// round in the billions must not allocate a slice that large. Real
// runs stay well under this (rounds grow with data / window size).
const maxSummaryRounds = 1 << 16

// Summarize folds a trace into its breakdown. It never panics on
// hostile input: an empty or nil event slice yields a zero Summary,
// and events with out-of-range round numbers are dropped from the
// per-round table (they still count toward the phase totals).
func Summarize(events []Event) *Summary {
	s := &Summary{
		Phases:       map[Phase]*PhaseTotal{},
		Detail:       map[Phase]*PhaseTotal{},
		PerRank:      map[int]map[Phase]float64{},
		GroupBytes:   map[int]int64{},
		GroupSeconds: map[int]float64{},
		NodeMem:      map[int][]MemPoint{},
		NodeMemPeak:  map[int]int64{},
	}
	first := true
	add := func(m map[Phase]*PhaseTotal, e Event) {
		pt := m[e.Phase]
		if pt == nil {
			pt = &PhaseTotal{}
			m[e.Phase] = pt
		}
		pt.Seconds += e.Dur()
		pt.Bytes += e.Bytes
		pt.Extra += e.Extra
		pt.Count++
	}
	round := func(r int) *RoundTotal {
		for len(s.Rounds) <= r {
			s.Rounds = append(s.Rounds, &RoundTotal{Round: len(s.Rounds)})
		}
		return s.Rounds[r]
	}
	for _, e := range events {
		switch e.Kind {
		case KindCounter:
			if e.Phase == CounterMem {
				s.NodeMem[e.Loc.Node] = append(s.NodeMem[e.Loc.Node], MemPoint{T: e.T0, Used: e.Bytes})
				if e.Bytes > s.NodeMemPeak[e.Loc.Node] {
					s.NodeMemPeak[e.Loc.Node] = e.Bytes
				}
			}
			continue
		case KindInstant:
			add(s.Detail, e)
			continue
		}
		// Spans.
		if first || e.T0 < s.Start {
			s.Start = e.T0
		}
		if first || e.T1 > s.End {
			s.End = e.T1
		}
		first = false
		if !e.Phase.TopLevel() {
			add(s.Detail, e)
			continue
		}
		add(s.Phases, e)
		if pr := s.PerRank[e.Loc.Rank]; pr == nil {
			s.PerRank[e.Loc.Rank] = map[Phase]float64{e.Phase: e.Dur()}
		} else {
			pr[e.Phase] += e.Dur()
		}
		if e.Loc.Group >= 0 && e.Phase == PhaseExchange {
			s.GroupBytes[e.Loc.Group] += e.Bytes
			s.GroupSeconds[e.Loc.Group] += e.Dur()
		}
		if r := e.Loc.Round; r >= 0 && r < maxSummaryRounds {
			rt := round(r)
			switch e.Phase {
			case PhaseBarrier:
				rt.Barrier += e.Dur()
			case PhasePack:
				rt.Pack += e.Dur()
			case PhaseIntra:
				rt.Intra += e.Dur()
			case PhaseExchange:
				rt.Exchange += e.Dur()
				rt.ExchangeBytes += e.Bytes
			case PhaseRMW:
				rt.RMW += e.Dur()
				rt.IOBytes += e.Bytes
			case PhaseAssembly:
				rt.Assembly += e.Dur()
			case PhaseIO:
				rt.IO += e.Dur()
				rt.IOBytes += e.Bytes
			}
		}
	}
	return s
}

// PhaseSeconds returns the summed duration of one top-level phase.
func (s *Summary) PhaseSeconds(p Phase) float64 {
	if pt := s.Phases[p]; pt != nil {
		return pt.Seconds
	}
	return 0
}

// RankSeconds returns the total top-level span time on one rank's
// track — with full instrumentation it approximates the collective's
// elapsed time on that rank.
func (s *Summary) RankSeconds(rank int) float64 {
	var total float64
	for _, sec := range s.PerRank[rank] {
		total += sec
	}
	return total
}

// Elapsed returns the trace's wall-clock (virtual) extent.
func (s *Summary) Elapsed() float64 { return s.End - s.Start }

// phaseOrder is the presentation order of the breakdown tables.
var phaseOrder = []Phase{
	PhasePlan, PhaseReqExchange, PhaseBarrier, PhasePack, PhaseIntra,
	PhaseExchange, PhaseRMW, PhaseAssembly, PhaseIO,
}

// WriteText renders the breakdown tables (phase split, per-round
// split, per-group traffic, per-node memory high-water) to w.
func (s *Summary) WriteText(w io.Writer) {
	elapsed := s.Elapsed()
	var total float64
	for _, p := range phaseOrder {
		total += s.PhaseSeconds(p)
	}
	fmt.Fprintf(w, "trace extent: %.6f s virtual (%d ranks)\n", elapsed, len(s.PerRank))
	fmt.Fprintf(w, "\n%-14s %12s %8s %14s %8s\n", "phase", "seconds", "share", "bytes", "spans")
	for _, p := range phaseOrder {
		pt := s.Phases[p]
		if pt == nil {
			continue
		}
		share := 0.0
		if total > 0 {
			share = pt.Seconds / total * 100
		}
		fmt.Fprintf(w, "%-14s %12.6f %7.1f%% %14d %8d\n", p, pt.Seconds, share, pt.Bytes, pt.Count)
	}
	fmt.Fprintf(w, "%-14s %12.6f\n", "total", total)

	if len(s.Rounds) > 0 {
		fmt.Fprintf(w, "\n%5s %10s %10s %10s %10s %10s %10s %12s %12s\n",
			"round", "barrier", "pack", "intra", "exchange", "rmw", "assembly", "io", "xchg-bytes")
		for _, rt := range s.Rounds {
			fmt.Fprintf(w, "%5d %10.6f %10.6f %10.6f %10.6f %10.6f %10.6f %12.6f %12d\n",
				rt.Round, rt.Barrier, rt.Pack, rt.Intra, rt.Exchange, rt.RMW, rt.Assembly, rt.IO, rt.ExchangeBytes)
		}
	}

	if len(s.GroupBytes) > 0 {
		groups := make([]int, 0, len(s.GroupBytes))
		for g := range s.GroupBytes {
			groups = append(groups, g)
		}
		sort.Ints(groups)
		fmt.Fprintf(w, "\n%5s %14s %12s\n", "group", "xchg-bytes", "xchg-sec")
		for _, g := range groups {
			fmt.Fprintf(w, "%5d %14d %12.6f\n", g, s.GroupBytes[g], s.GroupSeconds[g])
		}
	}

	if len(s.NodeMemPeak) > 0 {
		nodes := make([]int, 0, len(s.NodeMemPeak))
		for n := range s.NodeMemPeak {
			nodes = append(nodes, n)
		}
		sort.Ints(nodes)
		fmt.Fprintf(w, "\n%5s %14s %8s\n", "node", "mem-peak", "samples")
		for _, n := range nodes {
			fmt.Fprintf(w, "%5d %14d %8d\n", n, s.NodeMemPeak[n], len(s.NodeMem[n]))
		}
	}

	if det := s.detailPhases(); len(det) > 0 {
		fmt.Fprintf(w, "\n%-14s %12s %14s %8s\n", "detail", "seconds", "bytes", "events")
		for _, p := range det {
			pt := s.Detail[p]
			fmt.Fprintf(w, "%-14s %12.6f %14d %8d\n", p, pt.Seconds, pt.Bytes, pt.Count)
		}
	}
}

func (s *Summary) detailPhases() []Phase {
	out := make([]Phase, 0, len(s.Detail))
	for p := range s.Detail {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
