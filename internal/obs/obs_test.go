package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// manualClock is a settable virtual-time source for tests.
type manualClock struct{ t float64 }

func (c *manualClock) now() float64 { return c.t }

func testLoc(rank, round int) Loc {
	return Loc{Rank: rank, Node: rank / 2, Group: 0, Round: round}
}

// sampleTracer records a small but representative trace: a plan span,
// one round of phases on two ranks, planner instants, and ledger
// counters.
func sampleTracer() *Tracer {
	clk := &manualClock{}
	t := NewTracer()
	t.SetClock(clk.now)

	sp := t.Begin(PhasePlan, testLoc(0, -1))
	clk.t = 0.5
	sp.End()
	t.Instant(EventGroupDivision, testLoc(0, -1), 1<<20, 2)
	t.Counter(CounterMem, Loc{Rank: -1, Node: 0, Group: -1, Round: -1}, 4096)

	for rank := 0; rank < 2; rank++ {
		loc := testLoc(rank, 0)
		sp = t.Begin(PhaseBarrier, loc)
		clk.t += 0.1
		sp.End()
		sp = t.Begin(PhaseExchange, loc)
		inner := t.Begin(PhaseMPIAlltoall, Loc{Rank: rank, Node: rank / 2, Group: -1, Round: -1})
		clk.t += 0.2
		inner.EndBytes(512, 2)
		sp.EndBytes(1024, 0)
		sp = t.Begin(PhaseIO, loc)
		clk.t += 0.3
		sp.EndBytes(2048, 4)
	}
	t.Counter(CounterMem, Loc{Rank: -1, Node: 0, Group: -1, Round: -1}, 8192)
	return t
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer claims enabled")
	}
	tr.SetClock(func() float64 { return 1 })
	sp := tr.Begin(PhaseIO, NoLoc)
	sp.End()
	sp.EndBytes(1, 2)
	tr.Instant(EventPlace, NoLoc, 1, 2)
	tr.Counter(CounterMem, NoLoc, 3)
	tr.Reset()
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer recorded something")
	}
}

func TestDisabledTracingAllocatesNothing(t *testing.T) {
	// The exact call pattern the engine round loop performs per rank per
	// round, on a disabled (nil) tracer: must be allocation-free so the
	// instrumentation is zero-cost when tracing is off.
	var tr *Tracer
	loc := Loc{Rank: 3, Node: 1, Group: 0, Round: 2}
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Begin(PhaseBarrier, loc)
		sp.End()
		sp = tr.Begin(PhasePack, loc)
		sp.EndBytes(1024, 0)
		sp = tr.Begin(PhaseExchange, loc)
		sp.EndBytes(2048, 0)
		sp = tr.Begin(PhaseRMW, loc)
		sp.EndBytes(4096, 1)
		sp = tr.Begin(PhaseAssembly, loc)
		sp.EndBytes(4096, 0)
		sp = tr.Begin(PhaseIO, loc)
		sp.EndBytes(8192, 2)
		tr.Instant(EventStripe, loc, 64, 1)
		tr.Counter(CounterMem, loc, 4096)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f per round, want 0", allocs)
	}
}

func TestSpanRecording(t *testing.T) {
	clk := &manualClock{t: 1.5}
	tr := NewTracer()
	tr.SetClock(clk.now)
	sp := tr.Begin(PhaseExchange, testLoc(1, 3))
	clk.t = 2.25
	sp.EndBytes(100, 7)
	ev := tr.Events()
	if len(ev) != 1 {
		t.Fatalf("%d events", len(ev))
	}
	e := ev[0]
	if e.Kind != KindSpan || e.Phase != PhaseExchange || e.T0 != 1.5 || e.T1 != 2.25 {
		t.Fatalf("span %+v", e)
	}
	if e.Loc != testLoc(1, 3) || e.Bytes != 100 || e.Extra != 7 || e.Dur() != 0.75 {
		t.Fatalf("span %+v", e)
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("reset kept events")
	}
}

func TestPhaseTaxonomy(t *testing.T) {
	top := []Phase{PhasePlan, PhaseReqExchange, PhaseBarrier, PhasePack,
		PhaseIntra, PhaseExchange, PhaseRMW, PhaseAssembly, PhaseIO}
	for _, p := range top {
		if !p.TopLevel() || p.Category() != "phase" {
			t.Fatalf("%s should be top-level", p)
		}
	}
	for p, cat := range map[Phase]string{
		PhaseMPIBarrier: "mpi", PhaseMPIAlltoall: "mpi",
		PhasePFSRead: "pfs", PhasePFSWrite: "pfs",
		EventGroupDivision: "planner", EventStripe: "planner",
		CounterMem: "mem",
	} {
		if p.TopLevel() || p.Category() != cat {
			t.Fatalf("%s: category %s, want %s", p, p.Category(), cat)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := sampleTracer()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr.Events()) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tr.Events())
	}
}

func TestChromeRoundTrip(t *testing.T) {
	tr := sampleTracer()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	if len(got) != len(want) {
		t.Fatalf("%d events back, want %d", len(got), len(want))
	}
	const eps = 1e-9
	for i, g := range got {
		w := want[i]
		if g.Kind != w.Kind || g.Phase != w.Phase || g.Loc != w.Loc ||
			g.Bytes != w.Bytes || g.Extra != w.Extra {
			t.Fatalf("event %d: got %+v want %+v", i, g, w)
		}
		if d := g.T0 - w.T0; d < -eps || d > eps {
			t.Fatalf("event %d: T0 %v want %v", i, g.T0, w.T0)
		}
		if d := g.T1 - w.T1; d < -eps || d > eps {
			t.Fatalf("event %d: T1 %v want %v", i, g.T1, w.T1)
		}
	}
}

func TestParseAutoSniffsBothFormats(t *testing.T) {
	tr := sampleTracer()
	var chrome, jsonl bytes.Buffer
	if err := tr.WriteChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	for name, buf := range map[string]*bytes.Buffer{"chrome": &chrome, "jsonl": &jsonl} {
		ev, err := ParseAuto(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ev) != tr.Len() {
			t.Fatalf("%s: %d events, want %d", name, len(ev), tr.Len())
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sampleTracer().Events())
	if got := s.PhaseSeconds(PhasePlan); !near(got, 0.5) {
		t.Fatalf("plan %v", got)
	}
	// Two ranks, 0.1 barrier + 0.2 exchange + 0.3 io each.
	if got := s.PhaseSeconds(PhaseBarrier); !near(got, 0.2) {
		t.Fatalf("barrier %v", got)
	}
	if got := s.PhaseSeconds(PhaseExchange); !near(got, 0.4) {
		t.Fatalf("exchange %v", got)
	}
	if got := s.PhaseSeconds(PhaseIO); !near(got, 0.6) {
		t.Fatalf("io %v", got)
	}
	if len(s.Rounds) != 1 {
		t.Fatalf("%d rounds", len(s.Rounds))
	}
	rt := s.Rounds[0]
	if !near(rt.Exchange, 0.4) || rt.ExchangeBytes != 2048 || rt.IOBytes != 4096 {
		t.Fatalf("round %+v", rt)
	}
	if s.NodeMemPeak[0] != 8192 || len(s.NodeMem[0]) != 2 {
		t.Fatalf("mem %v %v", s.NodeMemPeak, s.NodeMem)
	}
	if s.GroupBytes[0] != 2048 {
		t.Fatalf("group bytes %v", s.GroupBytes)
	}
	if mpi := s.Detail[PhaseMPIAlltoall]; mpi == nil || mpi.Count != 2 || mpi.Bytes != 1024 {
		t.Fatalf("detail %+v", s.Detail)
	}
	// Rank 1's track: barrier + exchange + io.
	if got := s.RankSeconds(1); !near(got, 0.6) {
		t.Fatalf("rank seconds %v", got)
	}

	var text strings.Builder
	s.WriteText(&text)
	for _, want := range []string{"phase", "barrier", "exchange", "io", "round", "mem-peak", "mpi.alltoall"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, text.String())
		}
	}
}

func near(a, b float64) bool {
	d := a - b
	return d > -1e-12 && d < 1e-12
}

func TestSpanIDRoundTrip(t *testing.T) {
	// A span opened with BeginID carries the correlation ID through
	// recording and through both export formats — the join key between
	// serve.* spans and the request log.
	clk := &manualClock{t: 0.5}
	tr := NewTracer()
	tr.SetClock(clk.now)
	sp := tr.BeginID("serve.plan", NoLoc, "req-42abc")
	clk.t = 0.75
	sp.EndBytes(128, 1)
	sp2 := tr.Begin(PhaseIO, testLoc(0, 0)) // an ID-less span stays ID-less
	sp2.End()

	ev := tr.Events()
	if ev[0].ID != "req-42abc" || ev[1].ID != "" {
		t.Fatalf("recorded IDs %q, %q", ev[0].ID, ev[1].ID)
	}

	var jl bytes.Buffer
	if err := tr.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSONL(bytes.NewReader(jl.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ev) {
		t.Fatalf("jsonl round trip mismatch:\n got %+v\nwant %+v", got, ev)
	}

	var ch bytes.Buffer
	if err := tr.WriteChrome(&ch); err != nil {
		t.Fatal(err)
	}
	got, err = ParseChrome(bytes.NewReader(ch.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != "req-42abc" || got[1].ID != "" {
		t.Fatalf("chrome round trip IDs %q, %q", got[0].ID, got[1].ID)
	}
}

func TestBeginIDNilTracerAllocatesNothing(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.BeginID(PhaseIO, NoLoc, "some-request-id")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled BeginID allocates %.1f per span, want 0", allocs)
	}
}
