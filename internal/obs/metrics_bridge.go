package obs

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// metricPhasePrefix namespaces trace events that carry registry
// samples; Category maps it to its own track group.
const metricPhasePrefix = "metric:"

// FlushMetrics bridges the aggregate metrics registry into the event
// trace: it emits one counter event per counter/gauge sample (and one
// per histogram, carrying sum and count) at the current virtual time,
// phased "metric:<name>{labels}". Bytes holds the value truncated to
// an integer and Extra the value in micro-units, so fractional
// counters (virtual-seconds totals) survive the integer payload.
// Nil-safe on both receiver and registry.
func (t *Tracer) FlushMetrics(r *metrics.Registry) {
	if t == nil || r == nil {
		return
	}
	snap := r.Snapshot()
	for _, f := range snap.Families {
		for _, s := range f.Samples {
			phase := Phase(metricPhasePrefix + f.Name + labelSuffix(s.Labels))
			extra := int64(s.Value * 1e6)
			if f.Kind == "histogram" {
				// For histograms Extra carries the observation count.
				extra = s.Count
			}
			t.record(Event{Kind: KindCounter, Phase: phase, T0: t.now(), T1: t.now(),
				Loc: NoLoc, Bytes: int64(s.Value), Extra: extra})
		}
	}
}

// labelSuffix renders a sample's labels as a deterministic
// {k="v",...} suffix, empty for unlabeled samples.
func labelSuffix(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}
