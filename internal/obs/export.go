package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Chrome trace_event JSON (the JSON Object Format: {"traceEvents":
// [...]}) renders in Perfetto and chrome://tracing. Mapping:
//
//	pid  = node (one process group per physical node)
//	tid  = world rank (one thread track per rank)
//	ts   = virtual microseconds
//	"X"  = span (complete event with dur)
//	"i"  = instant, "C" = counter, "M" = track-name metadata
//
// Counter events use pid = node with a synthetic tid 0 and plot the
// node's ledger allocation over time.

// chromeEvent is one trace_event entry, for both writing and parsing.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

const secToUS = 1e6

func locArgs(e Event) map[string]any {
	a := map[string]any{}
	if e.Loc.Group >= 0 {
		a["group"] = e.Loc.Group
	}
	if e.Loc.Round >= 0 {
		a["round"] = e.Loc.Round
	}
	if e.Bytes != 0 {
		a["bytes"] = e.Bytes
	}
	if e.Extra != 0 {
		a["extra"] = e.Extra
	}
	if e.ID != "" {
		a["id"] = e.ID
	}
	if len(a) == 0 {
		return nil
	}
	return a
}

// WriteChrome serializes the recorded events as Chrome trace_event
// JSON. Tracks are named (node N / rank R) via metadata events so
// Perfetto groups ranks under their node.
func (t *Tracer) WriteChrome(w io.Writer) error {
	return WriteChromeEvents(w, t.Events())
}

// WriteChromeEvents serializes an event slice as Chrome trace_event
// JSON.
func WriteChromeEvents(w io.Writer, events []Event) error {
	out := chromeFile{DisplayTimeUnit: "ms"}

	// Track-name metadata: one process per node, one thread per rank.
	nodes := map[int]bool{}
	ranks := map[[2]int]bool{}
	for _, e := range events {
		if e.Loc.Node >= 0 {
			nodes[e.Loc.Node] = true
		}
		if e.Loc.Rank >= 0 && e.Loc.Node >= 0 {
			ranks[[2]int{e.Loc.Node, e.Loc.Rank}] = true
		}
	}
	nodeIDs := make([]int, 0, len(nodes))
	for n := range nodes {
		nodeIDs = append(nodeIDs, n)
	}
	sort.Ints(nodeIDs)
	for _, n := range nodeIDs {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: n,
			Args: map[string]any{"name": fmt.Sprintf("node%d", n)},
		})
	}
	rankIDs := make([][2]int, 0, len(ranks))
	for r := range ranks {
		rankIDs = append(rankIDs, r)
	}
	sort.Slice(rankIDs, func(i, j int) bool {
		if rankIDs[i][0] != rankIDs[j][0] {
			return rankIDs[i][0] < rankIDs[j][0]
		}
		return rankIDs[i][1] < rankIDs[j][1]
	})
	for _, r := range rankIDs {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: r[0], Tid: r[1],
			Args: map[string]any{"name": fmt.Sprintf("rank%d", r[1])},
		})
	}

	for _, e := range events {
		ce := chromeEvent{
			Name: string(e.Phase),
			Cat:  e.Phase.Category(),
			TS:   e.T0 * secToUS,
			Pid:  e.Loc.Node,
			Tid:  e.Loc.Rank,
		}
		switch e.Kind {
		case KindSpan:
			ce.Ph = "X"
			ce.Dur = (e.T1 - e.T0) * secToUS
			ce.Args = locArgs(e)
		case KindInstant:
			ce.Ph = "i"
			ce.S = "t"
			ce.Args = locArgs(e)
		case KindCounter:
			ce.Ph = "C"
			ce.Tid = 0
			ce.Args = map[string]any{"used": e.Bytes}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func argInt(a map[string]any, key string, def int64) int64 {
	v, ok := a[key]
	if !ok {
		return def
	}
	f, ok := v.(float64)
	if !ok {
		return def
	}
	return int64(f)
}

func argStr(a map[string]any, key string) string {
	s, _ := a[key].(string)
	return s
}

// ParseChrome reconstructs events from Chrome trace_event JSON
// produced by WriteChrome (metadata entries are skipped).
func ParseChrome(r io.Reader) ([]Event, error) {
	var f chromeFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("obs: parse chrome trace: %w", err)
	}
	var events []Event
	for _, ce := range f.TraceEvents {
		loc := Loc{
			Rank:  ce.Tid,
			Node:  ce.Pid,
			Group: int(argInt(ce.Args, "group", -1)),
			Round: int(argInt(ce.Args, "round", -1)),
		}
		e := Event{
			Phase: Phase(ce.Name),
			T0:    ce.TS / secToUS,
			T1:    (ce.TS + ce.Dur) / secToUS,
			Loc:   loc,
			Bytes: argInt(ce.Args, "bytes", 0),
			Extra: argInt(ce.Args, "extra", 0),
			ID:    argStr(ce.Args, "id"),
		}
		switch ce.Ph {
		case "X":
			e.Kind = KindSpan
		case "i":
			e.Kind = KindInstant
		case "C":
			e.Kind = KindCounter
			e.Loc.Rank = -1
			e.Bytes = argInt(ce.Args, "used", 0)
		default: // metadata and anything we did not write
			continue
		}
		events = append(events, e)
	}
	return events, nil
}

// jsonlEvent is the lossless line format: one event per line.
type jsonlEvent struct {
	Kind  string  `json:"kind"`
	Phase string  `json:"phase"`
	T0    float64 `json:"t0"`
	T1    float64 `json:"t1"`
	Rank  int     `json:"rank"`
	Node  int     `json:"node"`
	Group int     `json:"group"`
	Round int     `json:"round"`
	Bytes int64   `json:"bytes,omitempty"`
	Extra int64   `json:"extra,omitempty"`
	ID    string  `json:"id,omitempty"`
}

// WriteJSONL serializes the recorded events as one JSON object per
// line — the scripting-friendly format (jq, pandas.read_json(lines)).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	return WriteJSONLEvents(w, t.Events())
}

// WriteJSONLEvents serializes an event slice as JSON lines.
func WriteJSONLEvents(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		je := jsonlEvent{
			Kind: e.Kind.String(), Phase: string(e.Phase),
			T0: e.T0, T1: e.T1,
			Rank: e.Loc.Rank, Node: e.Loc.Node, Group: e.Loc.Group, Round: e.Loc.Round,
			Bytes: e.Bytes, Extra: e.Extra, ID: e.ID,
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseJSONL reconstructs events from the JSONL format.
func ParseJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal([]byte(text), &je); err != nil {
			// A writer interrupted mid-line (crash, full disk) leaves a
			// truncated final record; tolerate it once events have been
			// parsed. Garbage mid-stream is still an error — the extra
			// Scan only consumes input on the error path.
			if !sc.Scan() && sc.Err() == nil && len(events) > 0 {
				return events, nil
			}
			return nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
		}
		e := Event{
			Phase: Phase(je.Phase), T0: je.T0, T1: je.T1,
			Loc:   Loc{Rank: je.Rank, Node: je.Node, Group: je.Group, Round: je.Round},
			Bytes: je.Bytes, Extra: je.Extra, ID: je.ID,
		}
		switch je.Kind {
		case "span":
			e.Kind = KindSpan
		case "instant":
			e.Kind = KindInstant
		case "counter":
			e.Kind = KindCounter
		default:
			return nil, fmt.Errorf("obs: jsonl line %d: unknown kind %q", line, je.Kind)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// ParseAuto sniffs the format: a stream whose first object carries a
// "traceEvents" key is Chrome JSON, anything else is treated as JSONL.
func ParseAuto(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	head, _ := br.Peek(512)
	if strings.Contains(string(head), "\"traceEvents\"") {
		return ParseChrome(br)
	}
	return ParseJSONL(br)
}
