package obs

import "testing"

// BenchmarkDisabledRoundLoop measures the per-round cost of the engine
// instrumentation with tracing off (nil tracer). The contract is zero
// allocations and a handful of nanoseconds.
func BenchmarkDisabledRoundLoop(b *testing.B) {
	var tr *Tracer
	loc := Loc{Rank: 3, Node: 1, Group: 0, Round: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin(PhaseBarrier, loc)
		sp.End()
		sp = tr.Begin(PhasePack, loc)
		sp.EndBytes(1024, 0)
		sp = tr.Begin(PhaseExchange, loc)
		sp.EndBytes(2048, 0)
		sp = tr.Begin(PhaseRMW, loc)
		sp.EndBytes(4096, 1)
		sp = tr.Begin(PhaseAssembly, loc)
		sp.EndBytes(4096, 0)
		sp = tr.Begin(PhaseIO, loc)
		sp.EndBytes(8192, 2)
		tr.Instant(EventStripe, loc, 64, 1)
		tr.Counter(CounterMem, loc, 4096)
	}
}

// BenchmarkEnabledRoundLoop is the enabled-path cost for comparison.
func BenchmarkEnabledRoundLoop(b *testing.B) {
	tr := NewTracer()
	var now float64
	tr.SetClock(func() float64 { now += 1e-6; return now })
	loc := Loc{Rank: 3, Node: 1, Group: 0, Round: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin(PhaseExchange, loc)
		sp.EndBytes(2048, 0)
		sp = tr.Begin(PhaseIO, loc)
		sp.EndBytes(8192, 2)
		if tr.Len() > 1<<16 {
			tr.Reset()
		}
	}
}
