package obs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/metrics"
)

const validLine = `{"kind":"span","phase":"io","t0":0,"t1":1,"rank":0,"node":0,"group":-1,"round":0,"bytes":10,"extra":1}`

// TestParseJSONLRobustness drives the parser through empty, garbage,
// and partially-written inputs: truncated final lines are forgiven
// (an interrupted writer), everything else fails cleanly.
func TestParseJSONLRobustness(t *testing.T) {
	cases := []struct {
		name    string
		input   string
		want    int // expected event count when err == nil
		wantErr bool
	}{
		{name: "empty", input: "", want: 0},
		{name: "blank lines only", input: "\n\n  \n", want: 0},
		{name: "single valid", input: validLine + "\n", want: 1},
		{name: "no trailing newline", input: validLine, want: 1},
		{name: "truncated final line", input: validLine + "\n" + validLine[:40], want: 1},
		{name: "truncated only line", input: validLine[:40], wantErr: true},
		{name: "garbage mid-stream", input: validLine + "\nnot json at all\n" + validLine + "\n", wantErr: true},
		{name: "garbage only", input: "not json at all\n", wantErr: true},
		{name: "unknown kind", input: `{"kind":"wat","phase":"io"}` + "\n", wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			events, err := ParseJSONL(strings.NewReader(tc.input))
			if tc.wantErr {
				if err == nil {
					t.Fatalf("want error, got %d events", len(events))
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(events) != tc.want {
				t.Errorf("events = %d, want %d", len(events), tc.want)
			}
			// Whatever parsed must summarize and render without panicking.
			var buf bytes.Buffer
			Summarize(events).WriteText(&buf)
		})
	}
}

// TestSummarizeHostileInput checks the aggregator never panics or
// over-allocates on empty or corrupt event streams.
func TestSummarizeHostileInput(t *testing.T) {
	var buf bytes.Buffer

	s := Summarize(nil)
	if s.Elapsed() != 0 || len(s.Phases) != 0 || len(s.Rounds) != 0 {
		t.Errorf("nil events: non-zero summary %+v", s)
	}
	s.WriteText(&buf)

	// A corrupt trace claiming a round in the billions must not blow up
	// the per-round table; the span still lands in the phase totals.
	huge := []Event{{Kind: KindSpan, Phase: PhaseIO, T0: 0, T1: 1,
		Loc: Loc{Rank: 0, Node: 0, Group: -1, Round: 2_000_000_000}, Bytes: 5}}
	s = Summarize(huge)
	if len(s.Rounds) != 0 {
		t.Errorf("out-of-range round built %d round rows", len(s.Rounds))
	}
	if s.PhaseSeconds(PhaseIO) != 1 {
		t.Errorf("phase totals lost the clamped event: %v", s.PhaseSeconds(PhaseIO))
	}
	s.WriteText(&buf)

	// The highest representable round stays, one past it is dropped.
	edge := []Event{
		{Kind: KindSpan, Phase: PhaseIO, T0: 0, T1: 1, Loc: Loc{Round: maxSummaryRounds - 1}},
		{Kind: KindSpan, Phase: PhaseIO, T0: 0, T1: 1, Loc: Loc{Round: maxSummaryRounds}},
	}
	if got := len(Summarize(edge).Rounds); got != maxSummaryRounds {
		t.Errorf("rounds = %d, want %d", got, maxSummaryRounds)
	}
}

// TestFlushMetrics checks the registry→trace bridge: counter events
// appear with the metric: phase prefix, deterministic label rendering,
// and micro-unit extras for fractional values.
func TestFlushMetrics(t *testing.T) {
	reg := metrics.New()
	reg.Counter("widgets_total", "Widgets.", "kind", "round").Add(3)
	reg.Gauge("level", "Level.").Set(1.5)
	reg.Histogram("sizes", "Sizes.", []float64{10, 100}).Observe(42)

	tr := NewTracer()
	tr.FlushMetrics(reg)
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	byPhase := map[Phase]Event{}
	for _, e := range events {
		if e.Kind != KindCounter {
			t.Errorf("kind = %v, want counter", e.Kind)
		}
		if e.Phase.Category() != "metric" {
			t.Errorf("%s: category %q, want metric", e.Phase, e.Phase.Category())
		}
		byPhase[e.Phase] = e
	}
	w, ok := byPhase[`metric:widgets_total{kind="round"}`]
	if !ok || w.Bytes != 3 {
		t.Errorf("widgets event missing or wrong: %+v (have %v)", w, byPhase)
	}
	if g := byPhase["metric:level"]; g.Bytes != 1 || g.Extra != 1_500_000 {
		t.Errorf("gauge event = %+v, want Bytes 1 Extra 1500000", g)
	}
	if h := byPhase["metric:sizes"]; h.Bytes != 42 || h.Extra != 1 {
		t.Errorf("histogram event = %+v, want Bytes 42 (sum) Extra 1 (count)", h)
	}

	// Nil tracer and nil registry are both inert.
	var nilT *Tracer
	nilT.FlushMetrics(reg)
	tr2 := NewTracer()
	tr2.FlushMetrics(nil)
	if tr2.Len() != 0 {
		t.Errorf("nil registry recorded %d events", tr2.Len())
	}
}
