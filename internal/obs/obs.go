// Package obs is the event-level tracing subsystem for the collective
// I/O pipeline. Where internal/trace accumulates end-of-run scalar
// counters, obs records *when* things happened: typed spans (plan
// build, per-round barrier wait, shuffle exchange, assembly,
// read-modify-write, file I/O) and instant events (group division,
// partition-tree build, remerge and placement decisions, per-stripe
// service), each stamped with virtual time, rank, node, group, and
// round, plus counter events for the cluster memory ledger.
//
// A nil *Tracer disables collection: every method is nil-safe and the
// disabled path performs no allocations, so instrumented hot loops
// (the two-phase round engine runs one span set per round per rank)
// cost nothing when tracing is off. Traces export as Chrome
// trace_event JSON (load in Perfetto / chrome://tracing; one track per
// rank, grouped by node) or as a JSONL stream for scripting, and
// Summarize aggregates either back into a per-phase / per-round
// breakdown.
package obs

import "sync"

// Phase identifies what a span or event measures. Dotted prefixes
// namespace the detail layers: "mpi." spans nest inside engine phases,
// "pfs." spans nest inside the I/O phases. Phases without a prefix are
// the top-level pipeline phases that tile each rank's timeline.
type Phase string

// Top-level pipeline phases. On any rank's track these spans are
// sequential and cover (almost) the whole collective, so their
// durations sum to the operation's elapsed time.
const (
	// PhasePlan covers strategy planning: metadata allgather, group
	// division, partition tree, placement, and the plan broadcast.
	PhasePlan Phase = "plan"
	// PhaseReqExchange is the upfront exchange of request lists
	// between ranks and the aggregators whose domains they touch.
	PhaseReqExchange Phase = "req-exchange"
	// PhaseBarrier is lock-step wait: the per-round entry barrier and
	// the collective's closing barrier (round -1).
	PhaseBarrier Phase = "barrier"
	// PhasePack is sender-side marshalling of view data into
	// per-domain shuffle pieces.
	PhasePack Phase = "pack"
	// PhaseIntra is the intra-node layer of the two-layer exchange:
	// ranks funnelling pieces to their node leader (writes) or leaders
	// fanning pieces out to their mates (reads).
	PhaseIntra Phase = "intra"
	// PhaseExchange is the inter-process shuffle (alltoall) of a round.
	PhaseExchange Phase = "exchange"
	// PhaseRMW is the read-modify-write pre-read of a write window.
	PhaseRMW Phase = "rmw"
	// PhaseAssembly is aggregator-side scatter/gather between the
	// collective buffer and shuffle payloads, including the modelled
	// off-chip memory pass.
	PhaseAssembly Phase = "assembly"
	// PhaseIO is file-system service time of a round's window.
	PhaseIO Phase = "io"
)

// Detail spans, nested under the top-level phases.
const (
	PhaseMPIBarrier  Phase = "mpi.barrier"  // dissemination-barrier wait
	PhaseMPIAlltoall Phase = "mpi.alltoall" // pairwise alltoall(v) wait
	PhasePFSWrite    Phase = "pfs.write"    // one write request batch
	PhasePFSRead     Phase = "pfs.read"     // one read request batch
)

// Instant events (planner decisions and per-stripe service).
const (
	EventGroupDivision Phase = "group-division" // Bytes = total bytes, Extra = group count
	EventPartition     Phase = "partition-tree" // Bytes = coverage bytes, Extra = leaf count
	EventRemerge       Phase = "remerge"        // Extra = remerge count for the group
	EventPlace         Phase = "place"          // Bytes = buffer bytes, Extra = aggregator rank
	EventLeader        Phase = "leader-elect"   // Bytes = winner's score, Extra = leader rank
	EventStripe        Phase = "stripe"         // Bytes = run bytes, Extra = OST index
)

// Fault-injection and resilience instants (internal/faults). The
// "fault:" events mark injections; the "failover:" events mark the
// engine's dynamic remerge response.
const (
	EventFaultMem       Phase = "fault:mem"            // Bytes = squatted bytes, Extra = round applied
	EventFaultNode      Phase = "fault:node"           // Loc.Node = failed node, Extra = failure round
	EventFaultRank      Phase = "fault:rank"           // Loc.Rank = failed rank, Extra = failure round
	EventFaultDrop      Phase = "fault:drop"           // Bytes = drops this round, Extra = penalty ns
	EventFaultDelay     Phase = "fault:delay"          // Bytes = delay ns, Extra = destination node
	EventFaultSlow      Phase = "fault:slow"           // Bytes = factor x1000, Extra = OST (-1 for links)
	EventFailover       Phase = "failover:remerge"     // Bytes = window bytes moved, Extra = failed domain
	EventFailoverLeader Phase = "failover:leader"      // Bytes = successor rank, Extra = failed leader rank
	EventFailoverLost   Phase = "failover:unrecovered" // Extra = failed domain
)

// CounterMem is the per-node memory-ledger counter; Bytes carries the
// node's allocation after the Alloc/Free that emitted it.
const CounterMem Phase = "mem"

// Category returns the phase's track grouping for exporters: "phase"
// for top-level pipeline phases, the prefix for detail spans, "planner"
// for decision instants, and "mem" for ledger counters.
func (p Phase) Category() string {
	switch p {
	case PhaseMPIBarrier, PhaseMPIAlltoall:
		return "mpi"
	case PhasePFSWrite, PhasePFSRead:
		return "pfs"
	case EventGroupDivision, EventPartition, EventRemerge, EventPlace, EventLeader, EventStripe:
		return "planner"
	case EventFaultMem, EventFaultNode, EventFaultRank, EventFaultDrop, EventFaultDelay, EventFaultSlow:
		return "fault"
	case EventFailover, EventFailoverLeader, EventFailoverLost:
		return "failover"
	case CounterMem:
		return "mem"
	}
	if len(p) > len(metricPhasePrefix) && string(p[:len(metricPhasePrefix)]) == metricPhasePrefix {
		return "metric"
	}
	return "phase"
}

// TopLevel reports whether spans of this phase tile a rank's timeline
// (the set whose per-track durations sum to the collective's elapsed
// time).
func (p Phase) TopLevel() bool { return p.Category() == "phase" }

// Loc places an event on the simulated machine. Rank is the world
// rank (the track identity), Node the physical node hosting it. Group
// and Round are -1 when not applicable (planner-wide spans, MPI/PFS
// detail, counters).
type Loc struct {
	Rank  int
	Node  int
	Group int
	Round int
}

// NoLoc is the Loc for machine-wide events.
var NoLoc = Loc{Rank: -1, Node: -1, Group: -1, Round: -1}

// Kind discriminates the event types.
type Kind uint8

const (
	KindSpan    Kind = iota // a [T0, T1) interval
	KindInstant             // a point event (T1 == T0)
	KindCounter             // a sampled value (Bytes) at T0
)

// String returns the JSONL kind tag.
func (k Kind) String() string {
	switch k {
	case KindSpan:
		return "span"
	case KindInstant:
		return "instant"
	case KindCounter:
		return "counter"
	}
	return "unknown"
}

// Event is one recorded trace entry. Bytes and Extra are
// phase-specific numeric payloads (see the Phase constants). ID, when
// non-empty, is a correlation key: the plan service stamps each
// serve.* span with the request's X-Request-ID so the span and the
// request's JSONL log record join on one identifier.
type Event struct {
	Kind  Kind
	Phase Phase
	T0    float64 // virtual seconds
	T1    float64 // == T0 for instants and counters
	Loc   Loc
	Bytes int64
	Extra int64
	ID    string
}

// Dur returns the span duration in virtual seconds.
func (e Event) Dur() float64 { return e.T1 - e.T0 }

// Tracer records events with timestamps from a virtual clock. The
// zero of the API is a nil *Tracer: every method returns immediately
// and allocates nothing, so instrumentation can stay unconditional in
// hot paths. The mutex makes recording safe from concurrently spawned
// simulation goroutines (the engine serializes them, but the tracer
// does not rely on that).
type Tracer struct {
	mu     sync.Mutex
	clock  func() float64
	events []Event
}

// NewTracer returns an enabled tracer. The clock may be nil until
// SetClock is called (events recorded before then are stamped 0).
func NewTracer() *Tracer { return &Tracer{} }

// SetClock installs the virtual-time source (typically
// simtime.Engine.Now). Nil-safe.
func (t *Tracer) SetClock(clock func() float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock = clock
	t.mu.Unlock()
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

func (t *Tracer) now() float64 {
	if t.clock == nil {
		return 0
	}
	return t.clock()
}

// Span is an open interval returned by Begin; call End (or EndBytes)
// exactly once. Begin returns nil on a disabled tracer and every Span
// method is nil-safe, so hot paths carry one word for instrumentation
// that is off — constructing an inert ten-word Span per phase showed
// up as measurable copy overhead in round-heavy simulations.
type Span struct {
	t     *Tracer
	phase Phase
	loc   Loc
	t0    float64
	id    string
}

// Begin opens a span of phase p at loc, stamped now. On a nil tracer
// it returns an inert Span.
func (t *Tracer) Begin(p Phase, loc Loc) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, phase: p, loc: loc, t0: t.now()}
}

// BeginID opens a span carrying a correlation ID (a request ID). The
// ID lands on the recorded event, so trace consumers can join the span
// with external records (request logs) sharing the identifier. On a
// nil tracer it returns an inert Span at zero cost.
func (t *Tracer) BeginID(p Phase, loc Loc, id string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, phase: p, loc: loc, t0: t.now(), id: id}
}

// End closes the span at the current virtual time. Nil-safe.
func (s *Span) End() { s.EndBytes(0, 0) }

// EndBytes closes the span and attaches its numeric payload. Nil-safe:
// a span from a disabled tracer is nil and ends for free.
func (s *Span) EndBytes(bytes, extra int64) {
	if s == nil || s.t == nil {
		return
	}
	s.t.record(Event{Kind: KindSpan, Phase: s.phase, T0: s.t0, T1: s.t.now(),
		Loc: s.loc, Bytes: bytes, Extra: extra, ID: s.id})
}

// Instant records a point event. Nil-safe.
func (t *Tracer) Instant(p Phase, loc Loc, bytes, extra int64) {
	if t == nil {
		return
	}
	ts := t.now()
	t.record(Event{Kind: KindInstant, Phase: p, T0: ts, T1: ts, Loc: loc, Bytes: bytes, Extra: extra})
}

// Counter records a sampled value (e.g. a node's ledger allocation).
// Nil-safe.
func (t *Tracer) Counter(p Phase, loc Loc, value int64) {
	if t == nil {
		return
	}
	ts := t.now()
	t.record(Event{Kind: KindCounter, Phase: p, T0: ts, T1: ts, Loc: loc, Bytes: value})
}

func (t *Tracer) record(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a snapshot copy of the recorded events.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Reset discards all recorded events (between benchmark repetitions).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = t.events[:0]
	t.mu.Unlock()
}
