// Package twolayer implements the two-layer collective I/O strategy of
// Kang et al., "Towards Scalable Collective I/O: Two-Layer Aggregation"
// (arXiv:1907.12656): collective exchange is split into an intra-node
// layer and an inter-node layer. Within each physical node a
// memory-elected leader funnels its mates' round pieces over the memory
// bus (writes) or fans received data out to them (reads); only leaders
// — which are also the file-domain aggregators — cross the network
// fabric and touch the file system. Compared to the flat two-phase
// exchange this turns many small NIC messages into one merged message
// per (node, domain) pair per round, and on reads ships node-shared
// file ranges across the fabric once instead of once per requesting
// rank.
//
// The strategy reuses the collio round engine (the plan carries
// NodeCombine + the elected LeaderOf/LeaderSucc maps) and mirrors the
// two-phase planner comm-for-comm: on a machine with one rank per node
// the election is trivial, the combine layer stays off, and the
// trajectory is byte-identical to TwoPhase. The memory-conscious
// strategy composes with it per aggregation group via
// core.Options.TwoLayer.
package twolayer

import (
	"strconv"

	"repro/internal/buffer"
	"repro/internal/collio"
	"repro/internal/datatype"
	"repro/internal/explain"
	"repro/internal/iolib"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/strategy"
	"repro/internal/trace"
)

// Strategy is the two-layer collective. The fields mirror TwoPhase so
// the two are comparable knob-for-knob.
type Strategy struct {
	// CBBuffer is the nominal collective buffer per aggregator, capped
	// by the leader node's available memory and floored at
	// collio.BufFloor — same sizing rule as the baseline.
	CBBuffer int64
	// AlignStripe, when positive, rounds file-domain boundaries down to
	// a multiple of this size (ROMIO's Lustre-aware alignment).
	AlignStripe int64
}

// Name implements iolib.Collective.
func (tl Strategy) Name() string { return strategy.TwoLayer }

// BuildPlan computes the two-layer schedule: one aggregator per node —
// the elected leader — with the aggregate extent split evenly by
// offset, exactly the baseline's domain geometry so any trajectory
// difference is attributable to the exchange layering and the leader
// choice. Every rank calls it inside the collective; the result is
// identical everywhere (pure function of allgathered metadata). The
// returned Election is nil when nobody has data.
func (tl Strategy) BuildPlan(c *mpi.Comm, view datatype.List) (*collio.Plan, *Election) {
	lo, hi := view.Extent()
	raw := c.Allgather(collio.Ext{Lo: lo, Hi: hi}, 16)
	exts := make([]collio.Ext, len(raw))
	empty := true
	for i, v := range raw {
		exts[i] = v.(collio.Ext)
		empty = empty && exts[i].Empty()
	}
	if empty { // nobody has data; skip the availability gather
		return &collio.Plan{Exts: exts}, nil
	}

	// Same availability allgather as the baseline: one int64 per rank,
	// so the degenerate case matches two-phase byte-for-byte on the
	// wire. The snapshot feeds both buffer sizing and the election.
	machine := c.World().Machine()
	availRaw := c.Allgather(machine.Node(c.NodeOf(c.Rank())).Available(), 8)

	n := c.Size()
	nodeOf := make([]int, n)
	avail := make([]int64, n)
	for r := 0; r < n; r++ {
		nodeOf[r] = c.NodeOf(r)
		avail[r] = availRaw[r].(int64)
	}
	return tl.PlanFromMeta(exts, nodeOf, avail)
}

// PlanFromMeta builds the two-layer schedule from already-gathered
// metadata: per-rank extents, each rank's node, and each rank's node
// availability. The pure core of BuildPlan, shared with the offline
// plan service. The returned Election is nil when nobody has data.
func (tl Strategy) PlanFromMeta(exts []collio.Ext, nodeOf []int, avail []int64) (*collio.Plan, *Election) {
	gLo, gHi := int64(0), int64(0)
	first := true
	for _, e := range exts {
		if e.Empty() {
			continue
		}
		if first || e.Lo < gLo {
			gLo = e.Lo
		}
		if first || e.Hi > gHi {
			gHi = e.Hi
		}
		first = false
	}
	plan := &collio.Plan{Exts: exts}
	if first { // nobody has data
		return plan, nil
	}
	span := make([]int64, len(exts))
	for r, e := range exts {
		if !e.Empty() {
			span[r] = e.Hi - e.Lo
		}
	}
	el := Elect(nodeOf, avail, span)

	fd := (gHi - gLo + int64(len(el.Leaders)) - 1) / int64(len(el.Leaders))
	if a := tl.AlignStripe; a > 0 {
		fd = (fd + a - 1) / a * a
	}
	for i, l := range el.Leaders {
		dLo := gLo + int64(i)*fd
		dHi := dLo + fd
		if dHi > gHi {
			dHi = gHi
		}
		if dHi <= dLo {
			break
		}
		buf := tl.CBBuffer
		if buf > avail[l.Rank] {
			buf = avail[l.Rank]
		}
		if buf < collio.BufFloor {
			buf = collio.BufFloor
		}
		plan.Domains = append(plan.Domains, collio.Domain{
			Agg: l.Rank, Lo: dLo, Hi: dHi,
			BufBytes: buf,
			Windows:  collio.OffsetWindows(dLo, dHi, buf),
		})
	}
	plan.Rounds = 0
	for _, d := range plan.Domains {
		if len(d.Windows) > plan.Rounds {
			plan.Rounds = len(d.Windows)
		}
	}
	for i := range plan.Domains {
		s := i ^ 1
		if s >= len(plan.Domains) {
			s = i - 1
		}
		plan.Domains[i].Sibling = s
	}
	// The two-layer exchange only pays off when nodes host several
	// ranks; with one rank per node the combine layer stays off and the
	// engine runs the flat path — the two-phase trajectory exactly.
	if el.MultiRank {
		plan.NodeCombine = true
		plan.LeaderOf = el.LeaderOf
		plan.LeaderSucc = el.Succ
	}
	return plan, el
}

// Audit records an election's decision trail on the calling rank: obs
// instants, explain events (winner, runners-up, Mem_avl), and registry
// metrics, all stamped with the aggregation group the plan serves (0
// for the standalone strategy). Call it from exactly one rank per plan
// — the plan's root — so counters aggregate correctly. The
// memory-conscious strategy calls it per group when composing
// (core.Options.TwoLayer).
func Audit(c *mpi.Comm, op string, group int, el *Election) {
	t := c.Tracer()
	loc := obs.Loc{Rank: c.WorldRank(c.Rank()), Node: c.NodeOf(c.Rank()), Group: group, Round: -1}
	rec := c.Explain()
	for _, l := range el.Leaders {
		t.Instant(obs.EventLeader, loc, l.Score, int64(l.Rank))
		if rec.Enabled() {
			var ups []explain.Candidate
			for _, ru := range l.RunnersUp {
				ups = append(ups, explain.Candidate{
					Rank: ru.Rank, Node: ru.Node, Avail: ru.Avail, Share: ru.Score,
				})
			}
			rec.Record(explain.Event{
				Kind: explain.KindLeader, Group: group,
				Node: l.Node, Rank: l.Rank, Avail: l.Avail, Score: l.Score,
				RunnersUp: ups,
			})
		}
	}
	reg := c.Metrics()
	reg.Counter("twolayer_plan_leaders_total",
		"Node leaders elected by the two-layer strategy.", "op", op).Add(float64(len(el.Leaders)))
	for _, l := range el.Leaders {
		reg.Gauge("twolayer_leader_mem_avail_bytes",
			"Elected leader node's available memory at election time.",
			"node", strconv.Itoa(l.Node)).Set(float64(l.Avail))
	}
}

// myDomain returns the domain owned by this rank, or nil.
func myDomain(c *mpi.Comm, plan *collio.Plan) *collio.Domain {
	for i := range plan.Domains {
		if plan.Domains[i].Agg == c.Rank() {
			return &plan.Domains[i]
		}
	}
	return nil
}

// chargeBuffer reserves the leader's collective buffer on its node's
// ledger (overcommit surfaces in high-water reports, like the
// baseline) and returns the release func.
func chargeBuffer(c *mpi.Comm, d *collio.Domain) func() {
	node := c.World().Machine().Node(c.NodeOf(c.Rank()))
	if !node.Alloc(d.BufBytes) {
		node.MustAlloc(d.BufBytes)
	}
	return func() { node.Free(d.BufBytes) }
}

func (tl Strategy) run(op string, f *iolib.File, c *mpi.Comm, view datatype.List, data buffer.Buf, m *trace.Metrics) {
	sp := c.Tracer().Begin(obs.PhasePlan, obs.Loc{Rank: c.WorldRank(c.Rank()), Node: c.NodeOf(c.Rank()), Group: 0, Round: -1})
	plan, el := tl.BuildPlan(c, view)
	if el != nil && c.Rank() == 0 {
		Audit(c, op, 0, el)
		if el.MultiRank {
			// One recorder per plan: the sum across ranks (trace.Metrics
			// merge) is the total leader count. Zero in degenerate mode so
			// the row stays byte-identical to the baseline's.
			m.AddLeaders(len(el.Leaders))
		}
	}
	sp.End()
	m.SetGroups(1)
	vi := iolib.NewViewIndex(view)
	var release func()
	if d := myDomain(c, plan); d != nil {
		release = chargeBuffer(c, d)
	}
	switch op {
	case "write":
		collio.ExecuteWrite(f, c, vi, data, plan, m)
	case "read":
		collio.ExecuteRead(f, c, vi, data, plan, m)
	}
	if release != nil {
		release()
	}
}

// WriteAll implements iolib.Collective.
func (tl Strategy) WriteAll(f *iolib.File, c *mpi.Comm, view datatype.List, data buffer.Buf, m *trace.Metrics) {
	tl.run("write", f, c, view, data, m)
}

// ReadAll implements iolib.Collective.
func (tl Strategy) ReadAll(f *iolib.File, c *mpi.Comm, view datatype.List, dst buffer.Buf, m *trace.Metrics) {
	tl.run("read", f, c, view, dst, m)
}
