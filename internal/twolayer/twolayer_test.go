// Package twolayer_test exercises the two-layer strategy end to end
// through the bench harness. It lives in an external test package so it
// can import bench (which itself imports twolayer) without a cycle.
package twolayer_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/datatype"
	"repro/internal/explain"
	"repro/internal/faults"
	"repro/internal/iolib"
	"repro/internal/pfs"
	"repro/internal/twolayer"
	"repro/internal/workload"
)

const testMem = 16 * cluster.MiB

// testMachine builds a nodes x perNode testbed with the bench suite's
// memory-variance parameters, so results here match the strategies
// experiment's regime.
func testMachine(nodes, perNode int) cluster.Config {
	cfg := cluster.TestbedConfig(nodes)
	cfg.CoresPerNode = perNode
	cfg.MemPerNode = testMem
	cfg.MemSigma = float64(bench.SigmaBytes) / float64(testMem)
	cfg.MemFloor = testMem / 4
	cfg.Seed = 42
	return cfg
}

func testFS() pfs.Config {
	cfg := pfs.DefaultConfig()
	cfg.JitterMean = 12e-3
	cfg.Seed = 42
	return cfg
}

// nodeShared builds the replicated-input pattern the two-layer exchange
// targets: node n owns tiles {t : t mod nodes == n} and every rank on
// node n requests all of them — shared within a node, disjoint across
// nodes.
func nodeShared(nodes, perNode, tilesPerNode int, tileBytes int64) workload.Explicit {
	views := make([]datatype.List, nodes*perNode)
	for n := 0; n < nodes; n++ {
		var segs []datatype.Segment
		for t := 0; t < tilesPerNode; t++ {
			tile := int64(t*nodes + n)
			segs = append(segs, datatype.Segment{Off: tile * tileBytes, Len: tileBytes})
		}
		view := datatype.Normalize(segs)
		for c := 0; c < perNode; c++ {
			views[n*perNode+c] = view
		}
	}
	return workload.Explicit{
		Label: fmt.Sprintf("node-shared %dx%d", nodes, perNode),
		Views: views,
	}
}

// TestWriteIntraExceedsInter is the write-side claim: with several
// ranks per node, mates funnel their requests to the elected leader
// over the memory bus, so strictly more shuffle bytes stay on-node than
// cross the fabric.
func TestWriteIntraExceedsInter(t *testing.T) {
	res, err := bench.RunOnce(bench.Spec{
		Strategy: twolayer.Strategy{CBBuffer: testMem},
		Op:       "write",
		Machine:  testMachine(4, 4),
		FS:       testFS(),
		Workload: workload.IOR{Ranks: 16, BlockSize: 64 << 10, Segments: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Leaders != 4 {
		t.Fatalf("leaders = %d, want one per node (4)", res.Leaders)
	}
	if res.BytesShuffleIntra <= res.BytesShuffleInter {
		t.Fatalf("intra %d <= inter %d: the funnel should dominate the shuffle",
			res.BytesShuffleIntra, res.BytesShuffleInter)
	}
	if res.BytesShuffleInter <= 0 {
		t.Fatalf("inter = %d, want > 0 (remote domains still need their data)", res.BytesShuffleInter)
	}
}

// TestReadDedupReducesInterBytes is the read-side claim: on a
// node-shared pattern the leader fetches each shared range across the
// fabric once and fans it out locally, so two-layer must move strictly
// fewer inter-node bytes than the flat two-phase shuffle.
func TestReadDedupReducesInterBytes(t *testing.T) {
	mcfg := testMachine(4, 4)
	wl := nodeShared(4, 4, 6, 64<<10)
	run := func(s iolib.Collective) bench.BenchRow {
		t.Helper()
		res, err := bench.RunOnce(bench.Spec{Strategy: s, Op: "read", Machine: mcfg, FS: testFS(), Workload: wl})
		if err != nil {
			t.Fatal(err)
		}
		return bench.RowFromResult(s.Name(), res)
	}
	two := run(twolayer.Strategy{CBBuffer: testMem})
	flat := run(collio.TwoPhase{CBBuffer: testMem})
	if two.Leaders != 4 {
		t.Fatalf("two-layer leaders = %d, want 4", two.Leaders)
	}
	if two.ShuffleInter <= 0 {
		t.Fatalf("two-layer inter = %d, want > 0", two.ShuffleInter)
	}
	if two.ShuffleInter >= flat.ShuffleInter {
		t.Fatalf("two-layer inter %d >= two-phase inter %d: dedup fan-out should cut fabric traffic",
			two.ShuffleInter, flat.ShuffleInter)
	}
}

// TestSingleRankPerNodeMatchesTwoPhase pins the degenerate case: with
// one rank per node there is nothing to aggregate intra-node, the
// election reports MultiRank=false, and the two-layer trajectory must
// be byte-identical to plain two-phase — same virtual times, same
// traffic, zero leaders.
func TestSingleRankPerNodeMatchesTwoPhase(t *testing.T) {
	mcfg := testMachine(8, 1)
	wl := workload.IOR{Ranks: 8, BlockSize: 128 << 10, Segments: 4}
	for _, op := range []string{"write", "read"} {
		spec := bench.Spec{Op: op, Machine: mcfg, FS: testFS(), Workload: wl}
		spec.Strategy = twolayer.Strategy{CBBuffer: testMem}
		a, err := bench.RunOnce(spec)
		if err != nil {
			t.Fatal(err)
		}
		spec.Strategy = collio.TwoPhase{CBBuffer: testMem}
		b, err := bench.RunOnce(spec)
		if err != nil {
			t.Fatal(err)
		}
		if a.Leaders != 0 {
			t.Fatalf("%s: leaders = %d, want 0 with one rank per node", op, a.Leaders)
		}
		ra := bench.RowFromResult("row", a)
		rb := bench.RowFromResult("row", b)
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("%s: two-layer diverged from two-phase on a 1-rank-per-node machine:\ntwo-layer: %+v\ntwo-phase: %+v", op, ra, rb)
		}
	}
}

// TestVerifiedDataIntegrity runs the strategy with real payloads on a
// disjoint workload and checks every byte: written data must read back
// exactly, read data must match what was seeded.
func TestVerifiedDataIntegrity(t *testing.T) {
	for _, op := range []string{"write", "read"} {
		_, err := bench.RunOnce(bench.Spec{
			Strategy: twolayer.Strategy{CBBuffer: testMem},
			Op:       op,
			Machine:  testMachine(4, 4),
			FS:       testFS(),
			Workload: workload.IOR{Ranks: 16, BlockSize: 32 << 10, Segments: 3},
			Verify:   true,
		})
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
	}
}

// TestExplainRecordsElections runs the strategy with a decision
// recorder attached and checks the audit: one KindLeader event per
// node, each naming its losing mates.
func TestExplainRecordsElections(t *testing.T) {
	rec := explain.NewRecorder()
	_, err := bench.RunOnce(bench.Spec{
		Strategy: twolayer.Strategy{CBBuffer: testMem},
		Op:       "write",
		Machine:  testMachine(4, 4),
		FS:       testFS(),
		Workload: workload.IOR{Ranks: 16, BlockSize: 32 << 10, Segments: 2},
		Explain:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	if s := explain.Summarize(events); s.Leaders != 4 {
		t.Fatalf("summary leaders = %d, want 4", s.Leaders)
	}
	for _, e := range events {
		if e.Kind != explain.KindLeader {
			continue
		}
		if len(e.RunnersUp) != 3 {
			t.Fatalf("leader event %+v: runners-up = %d, want 3 on a 4-rank node", e, len(e.RunnersUp))
		}
	}
}

// TestLeaderFailover fails an elected leader at round 0 and checks the
// runtime handoff: the node's next-best rank takes over, the run
// records the failover, and the written data still verifies.
func TestLeaderFailover(t *testing.T) {
	// Equal spans and shared node memory tie the election to the lowest
	// rank, so rank 0 leads node 0 and its injected failure must hand
	// leadership to a mate.
	sched, err := faults.NewSchedule(faults.Spec{
		Seed:         7,
		RankFailures: []faults.RankFailure{{Rank: 0, Round: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := bench.RunOnce(bench.Spec{
		Strategy: twolayer.Strategy{CBBuffer: testMem},
		Op:       "write",
		Machine:  testMachine(4, 4),
		FS:       testFS(),
		Workload: workload.IOR{Ranks: 16, BlockSize: 32 << 10, Segments: 3},
		Verify:   true,
		Faults:   sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Leaders != 4 {
		t.Fatalf("leaders = %d, want 4 (election precedes the failure)", res.Leaders)
	}
	if sched.Failovers() < 1 {
		t.Fatalf("failovers = %d, want at least one leadership handoff", sched.Failovers())
	}
	if sched.Unrecovered() != 0 {
		t.Fatalf("unrecovered = %d, want 0 (three surviving mates on the node)", sched.Unrecovered())
	}
}
