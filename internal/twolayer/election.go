package twolayer

import "sort"

// Candidate is one rank's standing in its node's leader election: the
// quantities the scoring rule compared, kept for the decision audit.
type Candidate struct {
	Rank  int   // comm rank
	Node  int   // physical node hosting it
	Avail int64 // node's available aggregation memory (Mem_avl)
	Span  int64 // rank's file-extent span (Hi - Lo; proxy for its load)
	Score int64 // Avail - Span; highest wins, ties to the lowest rank
}

// Leader is one node's election outcome.
type Leader struct {
	Node      int
	Rank      int
	Score     int64
	Avail     int64
	RunnersUp []Candidate // losing mates in election order, best first
}

// Election is the full outcome across the communicator's nodes.
type Election struct {
	// Leaders holds one winner per node, in node first-appearance
	// (lowest-rank) order.
	Leaders []Leader
	// LeaderOf maps every comm rank to its node's leader
	// (collio.Plan.LeaderOf).
	LeaderOf []int
	// Succ is each rank's node-local succession line — the node's comm
	// ranks in election order, best score first — used by runtime leader
	// failover. Ranks of one node share the same backing slice
	// (collio.Plan.LeaderSucc).
	Succ [][]int
	// MultiRank reports whether any node hosts two or more ranks. When
	// false the two-layer exchange is pure overhead and the plan runs
	// the flat engine path, degenerating to the two-phase trajectory.
	MultiRank bool
}

// Elect runs the memory-aware node-leader election: every rank scores
// Avail - Span on its node and the highest score wins (ties to the
// lowest rank), so the funnel endpoint lands on the mate with the most
// memory headroom relative to the data it already stages. A pure
// function of allgathered metadata — every rank computes the identical
// outcome, the SPMD contract all plan building relies on.
func Elect(nodeOf []int, avail, span []int64) *Election {
	n := len(nodeOf)
	el := &Election{LeaderOf: make([]int, n), Succ: make([][]int, n)}
	byNode := make(map[int][]Candidate)
	var order []int // nodes in first-appearance order
	for r := 0; r < n; r++ {
		node := nodeOf[r]
		if _, ok := byNode[node]; !ok {
			order = append(order, node)
		}
		byNode[node] = append(byNode[node], Candidate{
			Rank: r, Node: node, Avail: avail[r], Span: span[r], Score: avail[r] - span[r],
		})
	}
	for _, node := range order {
		cands := byNode[node]
		sort.SliceStable(cands, func(i, j int) bool {
			if cands[i].Score != cands[j].Score {
				return cands[i].Score > cands[j].Score
			}
			return cands[i].Rank < cands[j].Rank
		})
		if len(cands) > 1 {
			el.MultiRank = true
		}
		succ := make([]int, len(cands))
		for i, cd := range cands {
			succ[i] = cd.Rank
		}
		win := cands[0]
		el.Leaders = append(el.Leaders, Leader{
			Node: node, Rank: win.Rank, Score: win.Score, Avail: win.Avail,
			RunnersUp: cands[1:],
		})
		for _, cd := range cands {
			el.LeaderOf[cd.Rank] = win.Rank
			el.Succ[cd.Rank] = succ
		}
	}
	return el
}
