package twolayer

import (
	"reflect"
	"testing"
)

// rep replicates one per-node value across that node's ranks, building
// the allgathered avail vector Elect consumes.
func rep(vals ...int64) []int64 { return vals }

func TestElectHighestScoreWins(t *testing.T) {
	// One node, three ranks, equal memory: the rank with the smallest
	// extent span has the highest Avail-Span score and must lead.
	el := Elect([]int{0, 0, 0}, rep(100, 100, 100), []int64{50, 10, 30})
	if len(el.Leaders) != 1 {
		t.Fatalf("leaders = %d, want 1", len(el.Leaders))
	}
	l := el.Leaders[0]
	if l.Rank != 1 || l.Score != 90 || l.Avail != 100 {
		t.Fatalf("leader = %+v, want rank 1 score 90", l)
	}
	if want := []int{1, 1, 1}; !reflect.DeepEqual(el.LeaderOf, want) {
		t.Fatalf("LeaderOf = %v, want %v", el.LeaderOf, want)
	}
	if !el.MultiRank {
		t.Fatal("MultiRank = false on a 3-rank node")
	}
}

func TestElectMemoryDominates(t *testing.T) {
	// Two ranks on different-memory snapshots of the same node vector:
	// the rank seeing more available memory wins even with a larger span.
	el := Elect([]int{0, 0}, rep(200, 120), []int64{60, 10})
	if got := el.Leaders[0].Rank; got != 0 {
		t.Fatalf("leader rank = %d, want 0 (score 140 beats 110)", got)
	}
}

func TestElectTieGoesToLowestRank(t *testing.T) {
	el := Elect([]int{0, 0, 0, 0}, rep(64, 64, 64, 64), []int64{8, 8, 8, 8})
	if got := el.Leaders[0].Rank; got != 0 {
		t.Fatalf("tie broke to rank %d, want lowest rank 0", got)
	}
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(el.Succ[2], want) {
		t.Fatalf("Succ = %v, want rank order %v on a full tie", el.Succ[2], want)
	}
}

func TestElectSuccessionOrder(t *testing.T) {
	// Succession is the node's ranks in election order, best score
	// first, and all mates share the same line.
	el := Elect([]int{0, 0, 0}, rep(100, 100, 100), []int64{30, 10, 20})
	want := []int{1, 2, 0} // scores 90 > 80 > 70
	for r := 0; r < 3; r++ {
		if !reflect.DeepEqual(el.Succ[r], want) {
			t.Fatalf("Succ[%d] = %v, want %v", r, el.Succ[r], want)
		}
	}
	if got := len(el.Leaders[0].RunnersUp); got != 2 {
		t.Fatalf("runners-up = %d, want 2", got)
	}
	if el.Leaders[0].RunnersUp[0].Rank != 2 {
		t.Fatalf("best runner-up rank = %d, want 2", el.Leaders[0].RunnersUp[0].Rank)
	}
}

func TestElectMultiNodeMapping(t *testing.T) {
	// Two nodes, two ranks each: elections are independent per node and
	// LeaderOf maps every rank to its own node's winner.
	nodeOf := []int{0, 0, 1, 1}
	avail := []int64{100, 100, 80, 80}
	span := []int64{40, 10, 5, 30}
	el := Elect(nodeOf, avail, span)
	if len(el.Leaders) != 2 {
		t.Fatalf("leaders = %d, want 2", len(el.Leaders))
	}
	if el.Leaders[0].Node != 0 || el.Leaders[0].Rank != 1 {
		t.Fatalf("node 0 leader = %+v, want rank 1", el.Leaders[0])
	}
	if el.Leaders[1].Node != 1 || el.Leaders[1].Rank != 2 {
		t.Fatalf("node 1 leader = %+v, want rank 2", el.Leaders[1])
	}
	if want := []int{1, 1, 2, 2}; !reflect.DeepEqual(el.LeaderOf, want) {
		t.Fatalf("LeaderOf = %v, want %v", el.LeaderOf, want)
	}
}

func TestElectSingleRankPerNode(t *testing.T) {
	el := Elect([]int{0, 1, 2}, rep(10, 20, 30), []int64{1, 2, 3})
	if el.MultiRank {
		t.Fatal("MultiRank = true with one rank per node")
	}
	if want := []int{0, 1, 2}; !reflect.DeepEqual(el.LeaderOf, want) {
		t.Fatalf("LeaderOf = %v, want identity %v", el.LeaderOf, want)
	}
}
