// Package prof parses pprof profiles (the gzipped protobuf format
// runtime/pprof writes) and aggregates them into top-N tables of flat
// and cumulative cost per function — the machine-readable artifact the
// hot-path optimization work baselines against.
//
// The decoder is a minimal, dependency-free reader of the profile.proto
// wire format: it understands exactly the fields this repo consumes
// (sample types, samples, locations, lines, functions, string table)
// and skips everything else, so it stays a few hundred lines instead
// of pulling in a protobuf stack. Both packed and unpacked encodings
// of the repeated scalar fields are handled, because the runtime's
// writer packs them but the spec does not require it.
package prof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// ValueType names one sample dimension: a type ("cpu", "alloc_space",
// "inuse_objects", ...) and its unit ("nanoseconds", "bytes", ...).
type ValueType struct {
	Type string `json:"type"`
	Unit string `json:"unit"`
}

// Sample is one stack sample: the location stack (leaf first) and one
// value per sample type.
type Sample struct {
	// Locations are location IDs, leaf first.
	Locations []uint64
	// Values align with the profile's SampleTypes.
	Values []int64
}

// Function is one resolved function.
type Function struct {
	// Name is the fully qualified function name.
	Name string
	// File is the defining source file.
	File string
}

// Profile is a parsed pprof profile: enough structure to attribute
// sample values to functions.
type Profile struct {
	// SampleTypes names each value dimension of every sample.
	SampleTypes []ValueType
	// Samples are the raw stack samples.
	Samples []Sample
	// LocationFuncs maps a location ID to the function IDs of its line
	// entries, innermost (inlined callee) first.
	LocationFuncs map[uint64][]uint64
	// Functions maps a function ID to its resolved name and file.
	Functions map[uint64]Function
}

// gzip magic bytes: profiles from runtime/pprof are always compressed,
// but an already-inflated stream should parse too.
var gzipMagic = []byte{0x1f, 0x8b}

// Parse reads a pprof profile (gzipped or raw protobuf).
func Parse(r io.Reader) (*Profile, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("prof: read profile: %w", err)
	}
	if bytes.HasPrefix(data, gzipMagic) {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip profile: %w", err)
		}
		if data, err = io.ReadAll(zr); err != nil {
			return nil, fmt.Errorf("prof: gunzip profile: %w", err)
		}
	}
	return parseProfile(data)
}

// wire types of the protobuf encoding.
const (
	wireVarint = 0
	wire64     = 1
	wireBytes  = 2
	wire32     = 5
)

// decoder walks one protobuf message body.
type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) done() bool { return d.pos >= len(d.data) }

// varint reads one base-128 varint.
func (d *decoder) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if d.pos >= len(d.data) {
			return 0, fmt.Errorf("prof: truncated varint")
		}
		b := d.data[d.pos]
		d.pos++
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("prof: varint overflows 64 bits")
}

// tag reads a field tag, returning field number and wire type.
func (d *decoder) tag() (int, int, error) {
	t, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(t >> 3), int(t & 7), nil
}

// bytes reads one length-delimited field body.
func (d *decoder) bytes() ([]byte, error) {
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.data)-d.pos) {
		return nil, fmt.Errorf("prof: length %d exceeds remaining %d", n, len(d.data)-d.pos)
	}
	out := d.data[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return out, nil
}

// skip discards one field body of the given wire type.
func (d *decoder) skip(wire int) error {
	switch wire {
	case wireVarint:
		_, err := d.varint()
		return err
	case wire64:
		if len(d.data)-d.pos < 8 {
			return fmt.Errorf("prof: truncated fixed64")
		}
		d.pos += 8
		return nil
	case wireBytes:
		_, err := d.bytes()
		return err
	case wire32:
		if len(d.data)-d.pos < 4 {
			return fmt.Errorf("prof: truncated fixed32")
		}
		d.pos += 4
		return nil
	}
	return fmt.Errorf("prof: unsupported wire type %d", wire)
}

// uints reads a repeated uint64 field that may be packed (wire type 2)
// or a single unpacked element (wire type 0), appending to dst.
func (d *decoder) uints(wire int, dst []uint64) ([]uint64, error) {
	if wire == wireVarint {
		v, err := d.varint()
		if err != nil {
			return nil, err
		}
		return append(dst, v), nil
	}
	body, err := d.bytes()
	if err != nil {
		return nil, err
	}
	sub := decoder{data: body}
	for !sub.done() {
		v, err := sub.varint()
		if err != nil {
			return nil, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// ints is uints for int64 fields (profile.proto encodes them as
// two's-complement varints, not zigzag).
func (d *decoder) ints(wire int, dst []int64) ([]int64, error) {
	us, err := d.uints(wire, nil)
	if err != nil {
		return nil, err
	}
	for _, u := range us {
		dst = append(dst, int64(u))
	}
	return dst, nil
}

// parseProfile decodes the top-level Profile message.
func parseProfile(data []byte) (*Profile, error) {
	p := &Profile{
		LocationFuncs: make(map[uint64][]uint64),
		Functions:     make(map[uint64]Function),
	}
	var strtab []string
	// String indices are resolved after the walk: the string table may
	// legally appear after the messages that reference it.
	type vtRef struct{ typ, unit uint64 }
	var vtRefs []vtRef
	type fnRef struct {
		id       uint64
		name, fn uint64
	}
	var fnRefs []fnRef

	d := decoder{data: data}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1: // repeated ValueType sample_type
			body, err := d.bytes()
			if err != nil {
				return nil, err
			}
			ref, err := parseValueType(body)
			if err != nil {
				return nil, err
			}
			vtRefs = append(vtRefs, vtRef{ref[0], ref[1]})
		case 2: // repeated Sample sample
			body, err := d.bytes()
			if err != nil {
				return nil, err
			}
			s, err := parseSample(body)
			if err != nil {
				return nil, err
			}
			p.Samples = append(p.Samples, s)
		case 4: // repeated Location location
			body, err := d.bytes()
			if err != nil {
				return nil, err
			}
			id, fns, err := parseLocation(body)
			if err != nil {
				return nil, err
			}
			p.LocationFuncs[id] = fns
		case 5: // repeated Function function
			body, err := d.bytes()
			if err != nil {
				return nil, err
			}
			id, name, file, err := parseFunction(body)
			if err != nil {
				return nil, err
			}
			fnRefs = append(fnRefs, fnRef{id, name, file})
		case 6: // repeated string string_table
			body, err := d.bytes()
			if err != nil {
				return nil, err
			}
			strtab = append(strtab, string(body))
		default:
			if err := d.skip(wire); err != nil {
				return nil, err
			}
		}
	}
	str := func(i uint64) string {
		if i < uint64(len(strtab)) {
			return strtab[i]
		}
		return ""
	}
	for _, r := range vtRefs {
		p.SampleTypes = append(p.SampleTypes, ValueType{Type: str(r.typ), Unit: str(r.unit)})
	}
	for _, r := range fnRefs {
		p.Functions[r.id] = Function{Name: str(r.name), File: str(r.fn)}
	}
	return p, nil
}

// parseValueType returns the string-table indices (type, unit).
func parseValueType(body []byte) ([2]uint64, error) {
	var out [2]uint64
	d := decoder{data: body}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return out, err
		}
		switch field {
		case 1, 2:
			v, err := d.varint()
			if err != nil {
				return out, err
			}
			out[field-1] = v
		default:
			if err := d.skip(wire); err != nil {
				return out, err
			}
		}
	}
	return out, nil
}

// parseSample decodes one Sample message.
func parseSample(body []byte) (Sample, error) {
	var s Sample
	d := decoder{data: body}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return s, err
		}
		switch field {
		case 1: // repeated uint64 location_id
			if s.Locations, err = d.uints(wire, s.Locations); err != nil {
				return s, err
			}
		case 2: // repeated int64 value
			if s.Values, err = d.ints(wire, s.Values); err != nil {
				return s, err
			}
		default:
			if err := d.skip(wire); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

// parseLocation decodes one Location message into (id, function IDs of
// its Line entries, innermost first).
func parseLocation(body []byte) (uint64, []uint64, error) {
	var id uint64
	var fns []uint64
	d := decoder{data: body}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return 0, nil, err
		}
		switch field {
		case 1: // uint64 id
			if id, err = d.varint(); err != nil {
				return 0, nil, err
			}
		case 4: // repeated Line line
			line, err := d.bytes()
			if err != nil {
				return 0, nil, err
			}
			fn, err := parseLine(line)
			if err != nil {
				return 0, nil, err
			}
			fns = append(fns, fn)
		default:
			if err := d.skip(wire); err != nil {
				return 0, nil, err
			}
		}
	}
	return id, fns, nil
}

// parseFunction decodes one Function message into (id, name index,
// filename index).
func parseFunction(body []byte) (id, name, file uint64, err error) {
	d := decoder{data: body}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return 0, 0, 0, err
		}
		switch field {
		case 1: // uint64 id
			if id, err = d.varint(); err != nil {
				return 0, 0, 0, err
			}
		case 2: // int64 name (string table index)
			if name, err = d.varint(); err != nil {
				return 0, 0, 0, err
			}
		case 4: // int64 filename (string table index)
			if file, err = d.varint(); err != nil {
				return 0, 0, 0, err
			}
		default:
			if err := d.skip(wire); err != nil {
				return 0, 0, 0, err
			}
		}
	}
	return id, name, file, nil
}

// parseLine decodes one Line message into its function ID.
func parseLine(body []byte) (uint64, error) {
	var fn uint64
	d := decoder{data: body}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return 0, err
		}
		if field == 1 {
			if fn, err = d.varint(); err != nil {
				return 0, err
			}
			continue
		}
		if err := d.skip(wire); err != nil {
			return 0, err
		}
	}
	return fn, nil
}

// Site is one function's aggregated cost in a profile: Flat is the
// value sampled with the function at the leaf, Cum the value sampled
// with the function anywhere on the stack.
type Site struct {
	// Func is the fully qualified function name.
	Func string `json:"func"`
	// File is the defining source file.
	File string `json:"file,omitempty"`
	// Flat and Cum are in the sample type's Unit.
	Flat int64 `json:"flat"`
	Cum  int64 `json:"cum"`
	// Unit names Flat/Cum's unit ("nanoseconds", "bytes").
	Unit string `json:"unit"`
}

// ValueIndex returns the index of the named sample type, or -1.
func (p *Profile) ValueIndex(sampleType string) int {
	for i, st := range p.SampleTypes {
		if st.Type == sampleType {
			return i
		}
	}
	return -1
}

// Top aggregates the named sample dimension per function and returns
// the n highest-cumulative sites, ties broken by name for determinism.
// Inlined frames count: every Line entry of a location attributes to
// its function. A function appearing multiple times in one stack
// (recursion) is counted once toward Cum.
func (p *Profile) Top(sampleType string, n int) ([]Site, error) {
	vi := p.ValueIndex(sampleType)
	if vi < 0 {
		var have []string
		for _, st := range p.SampleTypes {
			have = append(have, st.Type)
		}
		return nil, fmt.Errorf("prof: profile has no sample type %q (has %v)", sampleType, have)
	}
	unit := p.SampleTypes[vi].Unit
	type agg struct{ flat, cum int64 }
	sites := make(map[uint64]*agg)
	seen := make(map[uint64]bool)
	for _, s := range p.Samples {
		if vi >= len(s.Values) {
			continue
		}
		v := s.Values[vi]
		if v == 0 {
			continue
		}
		clear(seen)
		for li, loc := range s.Locations {
			fns := p.LocationFuncs[loc]
			for fi, fn := range fns {
				a := sites[fn]
				if a == nil {
					a = &agg{}
					sites[fn] = a
				}
				if li == 0 && fi == 0 {
					a.flat += v
				}
				if !seen[fn] {
					seen[fn] = true
					a.cum += v
				}
			}
		}
	}
	out := make([]Site, 0, len(sites))
	for fn, a := range sites {
		f := p.Functions[fn]
		name := f.Name
		if name == "" {
			name = fmt.Sprintf("func#%d", fn)
		}
		out = append(out, Site{Func: name, File: f.File, Flat: a.flat, Cum: a.cum, Unit: unit})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cum != out[j].Cum {
			return out[i].Cum > out[j].Cum
		}
		return out[i].Func < out[j].Func
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out, nil
}

// TotalValue sums the named sample dimension over all samples — the
// denominator for percentage-of-profile columns.
func (p *Profile) TotalValue(sampleType string) int64 {
	vi := p.ValueIndex(sampleType)
	if vi < 0 {
		return 0
	}
	var total int64
	for _, s := range p.Samples {
		if vi < len(s.Values) {
			total += s.Values[vi]
		}
	}
	return total
}
