package prof

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

// allocWork is a named allocation site the heap-profile test looks
// for; the sink keeps the compiler from eliding the allocations.
var allocSink [][]byte

//go:noinline
func allocWork(n int) {
	for i := 0; i < n; i++ {
		allocSink = append(allocSink, make([]byte, 64<<10))
		if len(allocSink) > 16 {
			allocSink = allocSink[:0]
		}
	}
}

// spinWork is a named CPU-burning site for the CPU-profile test.
//
//go:noinline
func spinWork(d time.Duration) uint64 {
	var acc uint64
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		for i := 0; i < 1<<14; i++ {
			acc = acc*6364136223846793005 + 1442695040888963407
		}
	}
	return acc
}

func TestParseAllocsProfile(t *testing.T) {
	allocWork(256)
	runtime.GC() // flush outstanding allocations into the profile
	var buf bytes.Buffer
	if err := pprof.Lookup("allocs").WriteTo(&buf, 0); err != nil {
		t.Fatal(err)
	}
	p, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p.ValueIndex("alloc_space") < 0 {
		t.Fatalf("allocs profile lacks alloc_space: %+v", p.SampleTypes)
	}
	if len(p.Samples) == 0 || len(p.Functions) == 0 {
		t.Fatalf("empty profile: %d samples, %d functions", len(p.Samples), len(p.Functions))
	}
	sites, err := p.Top("alloc_space", 0)
	if err != nil {
		t.Fatal(err)
	}
	var found *Site
	for i := range sites {
		if strings.HasSuffix(sites[i].Func, "allocWork") {
			found = &sites[i]
			break
		}
	}
	if found == nil {
		t.Fatalf("allocWork not attributed in %d sites", len(sites))
	}
	if found.Cum < found.Flat || found.Cum <= 0 {
		t.Fatalf("allocWork site inconsistent: %+v", *found)
	}
	if found.Unit != "bytes" {
		t.Fatalf("alloc_space unit %q, want bytes", found.Unit)
	}
	// Cumulative attribution must reach the callers: the test function
	// itself sits above allocWork on every sampled stack.
	for _, s := range sites {
		if strings.Contains(s.Func, "TestParseAllocsProfile") && s.Cum >= found.Cum {
			return
		}
	}
	t.Fatal("caller TestParseAllocsProfile missing from cumulative attribution")
}

func TestParseCPUProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Fatal(err)
	}
	spinWork(300 * time.Millisecond)
	pprof.StopCPUProfile()

	p, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p.ValueIndex("cpu") < 0 {
		t.Fatalf("cpu profile lacks cpu sample type: %+v", p.SampleTypes)
	}
	if len(p.Samples) == 0 {
		// A starved CI box can yield zero samples; the parse itself
		// succeeded, which is the hard requirement.
		t.Skip("no CPU samples collected; host too loaded to assert attribution")
	}
	sites, err := p.Top("cpu", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) == 0 {
		t.Fatal("no sites from a sampled profile")
	}
	// Sites come back cumulative-descending.
	for i := 1; i < len(sites); i++ {
		if sites[i].Cum > sites[i-1].Cum {
			t.Fatalf("sites not sorted: %d before %d", sites[i-1].Cum, sites[i].Cum)
		}
	}
	for _, s := range sites {
		if strings.HasSuffix(s.Func, "spinWork") {
			return
		}
	}
	t.Logf("spinWork not in top-10 (loaded host?): %+v", sites)
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse(strings.NewReader("\x1f\x8bnot really gzip")); err == nil {
		t.Fatal("bad gzip accepted")
	}
	// Raw bytes that aren't a profile: either a parse error or an
	// empty profile is acceptable, but never a panic.
	p, err := Parse(strings.NewReader("\xff\xff\xff\xff\xff"))
	if err == nil && len(p.Samples) > 0 {
		t.Fatal("garbage produced samples")
	}
}

func TestTopUnknownSampleType(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.Lookup("allocs").WriteTo(&buf, 0); err != nil {
		t.Fatal(err)
	}
	p, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Top("no_such_dimension", 5); err == nil {
		t.Fatal("unknown sample type accepted")
	}
}
