package logx

import (
	"bytes"
	"strings"
	"testing"
)

func sampleRecord() Record {
	return Record{
		ReqID:       "a1b2c3d4e5f60708",
		Endpoint:    "plan",
		Fingerprint: "mccio-plan-fp/1:deadbeef",
		Cache:       "miss",
		Status:      200,
		Bytes:       4096,
		WaitS:       0.001,
		WorkS:       0.25,
		DurS:        0.2511,
	}
}

func TestRecordJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf)
	want := []Record{
		sampleRecord(),
		{ReqID: "ffff000011112222", Endpoint: "simulate", Status: 422,
			DurS: 0.003, Error: "pland: simulation failed: boom"},
		{ReqID: "0000111122223333", Endpoint: "plan", Cache: "shed",
			Status: 429, DurS: 0.0001, Error: "pland: admission queue full"},
		{ReqID: "4444555566667777", Endpoint: "plan", Shard: "s1", Peer: "s2",
			Cache: "forward-hit", Status: 200, Bytes: 2048, DurS: 0.002},
	}
	for _, rec := range want {
		l.Request(rec)
	}
	got, err := ParseRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d records back, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	// Every line is also a self-contained JSON object carrying the ID
	// verbatim — the grep-ability contract.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(want) {
		t.Fatalf("%d lines, want %d", len(lines), len(want))
	}
	for i, line := range lines {
		if !strings.Contains(line, want[i].ReqID) {
			t.Fatalf("line %d does not carry the request ID: %s", i, line)
		}
	}
}

func TestParseRecordsToleratesTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf)
	l.Request(sampleRecord())
	l.Request(sampleRecord())
	full := buf.String()
	cut := full[:len(full)-10] // kill the writer mid-record
	got, err := ParseRecords(strings.NewReader(cut))
	if err != nil {
		t.Fatalf("truncated tail should be tolerated: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("%d records from truncated log, want 1", len(got))
	}
	// Garbage mid-stream is still an error.
	if _, err := ParseRecords(strings.NewReader("not json\n" + full)); err == nil {
		t.Fatal("mid-stream garbage parsed without error")
	}
}

func TestNilLoggerSafe(t *testing.T) {
	var l *Logger
	if l.Enabled() {
		t.Fatal("nil logger claims enabled")
	}
	l.Request(sampleRecord()) // must not panic
}

func TestDisabledLoggerAllocatesNothing(t *testing.T) {
	// The alloc gate: a daemon run without -log must pay nothing for
	// the unconditional Request call in the serving loop.
	var l *Logger
	rec := sampleRecord()
	allocs := testing.AllocsPerRun(100, func() {
		l.Request(rec)
	})
	if allocs != 0 {
		t.Fatalf("disabled logger allocates %.1f per request, want 0", allocs)
	}
}

func TestNewRequestID(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if len(id) != 16 {
			t.Fatalf("id %q: want 16 hex chars", id)
		}
		if !ValidRequestID(id) {
			t.Fatalf("generated id %q fails its own validity check", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestValidRequestID(t *testing.T) {
	for _, ok := range []string{"abc", "A-b_c.9", strings.Repeat("x", 64)} {
		if !ValidRequestID(ok) {
			t.Errorf("%q rejected", ok)
		}
	}
	for _, bad := range []string{"", strings.Repeat("x", 65), "has space",
		"new\nline", `quo"te`, "semi;colon", "naïve"} {
		if ValidRequestID(bad) {
			t.Errorf("%q accepted", bad)
		}
	}
}
