package logx

import (
	"io"
	"testing"
)

// BenchmarkDisabledRequest measures the cost of the serving loop's
// unconditional log call with logging off (nil logger). The contract
// is zero allocations, matching the obs and metrics disabled paths.
func BenchmarkDisabledRequest(b *testing.B) {
	var l *Logger
	rec := sampleRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Request(rec)
	}
}

// BenchmarkEnabledRequest is the enabled-path cost for comparison: one
// slog JSONL line per request into a discarding writer.
func BenchmarkEnabledRequest(b *testing.B) {
	l := New(io.Discard)
	rec := sampleRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Request(rec)
	}
}
