// Package trace collects per-operation metrics from collective I/O
// strategies: phase times, round counts, shuffle traffic, aggregator
// buffer sizes. The benchmark harness turns these into the rows the
// paper's figures report, and the memory/variance claims (aggregator
// memory consumption and its spread) are checked against them.
package trace

import (
	"fmt"
	"time"

	"repro/internal/stats"
)

// Metrics accumulates strategy-internal counters for one collective
// operation. Strategies fill it; a nil *Metrics disables collection, so
// every recording method is nil-safe.
type Metrics struct {
	Strategy string
	Op       string // "write" or "read"

	Rounds      int   // two-phase rounds executed (max across aggregators)
	Aggregators int   // distinct aggregator processes
	Groups      int   // aggregation groups (1 for the baseline)
	Leaders     int   // elected node leaders (two-layer exchange; 0 otherwise)
	Remerges    int   // file domains remerged for lack of memory
	BytesIO     int64 // bytes moved to/from the file system
	IORequests  int64 // requests issued to the file system

	BytesShuffleIntra int64 // shuffle bytes that stayed on-node
	BytesShuffleInter int64 // shuffle bytes that crossed nodes

	ExchangeSeconds float64 // summed aggregator time in the exchange phase
	IOSeconds       float64 // summed aggregator time in the I/O phase

	AggBufferBytes []int64 // per-aggregator buffer allocation (high-water)
}

// AddRound records that an aggregator completed its round r (1-based);
// the operation's round count is the max over aggregators.
func (m *Metrics) AddRound(r int) {
	if m == nil {
		return
	}
	if r > m.Rounds {
		m.Rounds = r
	}
}

// AddIO accounts bytes and one request batch against the I/O phase.
func (m *Metrics) AddIO(bytes int64, requests int64, seconds float64) {
	if m == nil {
		return
	}
	m.BytesIO += bytes
	m.IORequests += requests
	m.IOSeconds += seconds
}

// AddExchange accounts shuffle traffic against the exchange phase.
func (m *Metrics) AddExchange(bytesIntra, bytesInter int64, seconds float64) {
	if m == nil {
		return
	}
	m.BytesShuffleIntra += bytesIntra
	m.BytesShuffleInter += bytesInter
	m.ExchangeSeconds += seconds
}

// AddAggregator records one aggregator and its buffer high-water mark.
func (m *Metrics) AddAggregator(bufBytes int64) {
	if m == nil {
		return
	}
	m.Aggregators++
	m.AggBufferBytes = append(m.AggBufferBytes, bufBytes)
}

// AddRemerge records a file-domain remerge.
func (m *Metrics) AddRemerge() {
	if m == nil {
		return
	}
	m.Remerges++
}

// SetGroups records the aggregation group count.
func (m *Metrics) SetGroups(n int) {
	if m == nil {
		return
	}
	m.Groups = n
}

// AddLeaders records a plan's elected node-leader count (two-layer
// exchange). Exactly one rank per plan — its root — calls this, so the
// sum across ranks (see Merge) is the operation's total leader count
// even when several group plans run concurrently.
func (m *Metrics) AddLeaders(n int) {
	if m == nil {
		return
	}
	m.Leaders += n
}

// AggBufferStats summarises per-aggregator buffer sizes; the paper's
// "reduces aggregator memory consumption and variance" claim is checked
// on Mean and CV.
func (m *Metrics) AggBufferStats() stats.Summary {
	if m == nil {
		return stats.Summary{}
	}
	xs := make([]float64, len(m.AggBufferBytes))
	for i, b := range m.AggBufferBytes {
		xs[i] = float64(b)
	}
	return stats.Summarize(xs)
}

// Merge folds another rank's metrics into m. Per-rank counters
// (traffic, I/O bytes, phase seconds, aggregator buffers) add up;
// values every rank computes identically from the shared plan (rounds,
// groups, remerges) take the max so redundant computation is not
// double-counted.
func (m *Metrics) Merge(o Metrics) {
	if o.Rounds > m.Rounds {
		m.Rounds = o.Rounds
	}
	if o.Groups > m.Groups {
		m.Groups = o.Groups
	}
	if o.Remerges > m.Remerges {
		m.Remerges = o.Remerges
	}
	m.Aggregators += o.Aggregators
	m.Leaders += o.Leaders
	m.BytesIO += o.BytesIO
	m.IORequests += o.IORequests
	m.BytesShuffleIntra += o.BytesShuffleIntra
	m.BytesShuffleInter += o.BytesShuffleInter
	m.ExchangeSeconds += o.ExchangeSeconds
	m.IOSeconds += o.IOSeconds
	m.AggBufferBytes = append(m.AggBufferBytes, o.AggBufferBytes...)
}

// Result is one completed collective operation as the harness sees it.
type Result struct {
	Metrics
	Bytes   int64   // payload bytes moved for the application
	Elapsed float64 // virtual seconds from collective start to finish
}

// BandwidthMBps returns application bandwidth in decimal MB/s, the unit
// the paper plots.
func (r Result) BandwidthMBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / r.Elapsed
}

// String renders a one-line summary for logs.
func (r Result) String() string {
	return fmt.Sprintf("%s %s: %.1f MB in %s → %.1f MB/s (rounds=%d aggs=%d groups=%d remerges=%d)",
		r.Strategy, r.Op, float64(r.Bytes)/1e6,
		(time.Duration(r.Elapsed * float64(time.Second))).Round(time.Microsecond),
		r.BandwidthMBps(), r.Rounds, r.Aggregators, r.Groups, r.Remerges)
}
