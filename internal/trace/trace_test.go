package trace

import (
	"strings"
	"testing"
)

func TestNilMetricsSafe(t *testing.T) {
	var m *Metrics
	m.AddRound(3)
	m.AddIO(10, 1, 0.5)
	m.AddExchange(1, 2, 0.1)
	m.AddAggregator(100)
	m.AddRemerge()
	m.SetGroups(2)
	if s := m.AggBufferStats(); s.N != 0 || s.Mean != 0 {
		t.Fatalf("nil metrics stats %+v, want zero summary", s)
	}
}

func TestAddRoundKeepsMax(t *testing.T) {
	var m Metrics
	m.AddRound(3)
	m.AddRound(1)
	m.AddRound(7)
	if m.Rounds != 7 {
		t.Fatalf("rounds %d", m.Rounds)
	}
}

func TestAccumulators(t *testing.T) {
	var m Metrics
	m.AddIO(100, 2, 0.5)
	m.AddIO(50, 1, 0.25)
	m.AddExchange(10, 20, 0.1)
	m.AddAggregator(1000)
	m.AddAggregator(3000)
	if m.BytesIO != 150 || m.IORequests != 3 || m.IOSeconds != 0.75 {
		t.Fatalf("io: %+v", m)
	}
	if m.BytesShuffleIntra != 10 || m.BytesShuffleInter != 20 {
		t.Fatalf("shuffle: %+v", m)
	}
	if m.Aggregators != 2 || len(m.AggBufferBytes) != 2 {
		t.Fatalf("aggs: %+v", m)
	}
	s := m.AggBufferStats()
	if s.Mean != 2000 || s.Min != 1000 || s.Max != 3000 {
		t.Fatalf("buffer stats %+v", s)
	}
}

func TestMergeSemantics(t *testing.T) {
	a := Metrics{Rounds: 5, Groups: 2, Remerges: 1, Aggregators: 1,
		BytesIO: 100, IORequests: 2, BytesShuffleIntra: 10, BytesShuffleInter: 20,
		ExchangeSeconds: 1, IOSeconds: 2, AggBufferBytes: []int64{64}}
	b := Metrics{Rounds: 3, Groups: 2, Remerges: 1, Aggregators: 2,
		BytesIO: 50, IORequests: 1, BytesShuffleIntra: 5, BytesShuffleInter: 5,
		ExchangeSeconds: 0.5, IOSeconds: 1, AggBufferBytes: []int64{32, 16}}
	a.Merge(b)
	// Max fields (computed identically everywhere) stay, sums add.
	if a.Rounds != 5 || a.Groups != 2 || a.Remerges != 1 {
		t.Fatalf("max fields: %+v", a)
	}
	if a.Aggregators != 3 || a.BytesIO != 150 || a.IORequests != 3 {
		t.Fatalf("sum fields: %+v", a)
	}
	if a.ExchangeSeconds != 1.5 || a.IOSeconds != 3 {
		t.Fatalf("seconds: %+v", a)
	}
	if len(a.AggBufferBytes) != 3 {
		t.Fatalf("buffers: %+v", a.AggBufferBytes)
	}
}

func TestResultBandwidth(t *testing.T) {
	r := Result{Bytes: 2_000_000, Elapsed: 2}
	if got := r.BandwidthMBps(); got != 1 {
		t.Fatalf("bw %g, want 1", got)
	}
	if (Result{Bytes: 100}).BandwidthMBps() != 0 {
		t.Fatal("zero elapsed must yield zero bandwidth")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Bytes: 1_000_000, Elapsed: 1}
	r.Strategy = "mccio"
	r.Op = "write"
	r.Rounds = 4
	s := r.String()
	for _, want := range []string{"mccio", "write", "1.0 MB/s", "rounds=4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("%q missing from %q", want, s)
		}
	}
}
