// Package resource models contended hardware resources — memory buses,
// NICs, network bisection, disks — as bandwidth/latency servers whose
// capacity is reserved in virtual time.
//
// The contention model is serialized reservation: a resource keeps an
// "available at" horizon; each transfer occupies the resource for
// bytes/bandwidth seconds starting no earlier than that horizon, and
// pushes the horizon forward. Two transfers sharing a link therefore
// finish no faster than the link can carry their combined bytes, which
// is the property the paper's off-chip-bandwidth and shuffle-contention
// arguments rest on. A path across several resources completes at the
// pace of its bottleneck while still charging every hop for the bytes
// it carried.
package resource

import (
	"fmt"

	"repro/internal/simtime"
)

// Link is a bandwidth/latency resource: a memory bus, a NIC, a switch
// bisection, or a disk stream.
type Link struct {
	name      string
	bandwidth float64 // bytes per second
	latency   float64 // fixed per-transfer seconds
	availAt   float64 // horizon: earliest start for the next transfer

	busy      float64 // accumulated busy seconds, for utilisation reports
	bytesIn   int64   // total bytes carried
	transfers int64
}

// NewLink returns a link with the given bandwidth (bytes/s) and fixed
// per-transfer latency (s). Bandwidth must be positive.
func NewLink(name string, bandwidth, latency float64) *Link {
	if bandwidth <= 0 {
		panic(fmt.Sprintf("resource: link %q with bandwidth %g", name, bandwidth))
	}
	if latency < 0 {
		panic(fmt.Sprintf("resource: link %q with negative latency %g", name, latency))
	}
	return &Link{name: name, bandwidth: bandwidth, latency: latency}
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// Bandwidth returns the link's bandwidth in bytes/s.
func (l *Link) Bandwidth() float64 { return l.bandwidth }

// Latency returns the link's fixed per-transfer latency in seconds.
func (l *Link) Latency() float64 { return l.latency }

// serviceTime returns how long the link is occupied carrying n bytes.
func (l *Link) serviceTime(n int64) float64 {
	return float64(n) / l.bandwidth
}

// reserve books n bytes starting no earlier than t and returns the
// [start, end) of the occupation.
func (l *Link) reserve(t float64, n int64) (start, end float64) {
	start = t
	if l.availAt > start {
		start = l.availAt
	}
	end = start + l.serviceTime(n)
	l.availAt = end
	l.busy += end - start
	l.bytesIn += n
	l.transfers++
	return start, end
}

// Transfer blocks p for the time it takes to move n bytes across the
// link: queueing behind earlier reservations, plus latency, plus
// serialization. It returns the virtual completion time.
func (l *Link) Transfer(p *simtime.Proc, n int64) float64 {
	done := l.Reserve(p.Now(), n)
	p.WaitUntil(done)
	return done
}

// Reserve books n bytes starting no earlier than now and returns the
// completion time without blocking. It lets one process issue several
// concurrent requests (e.g. to many storage targets) and then wait for
// the latest completion.
func (l *Link) Reserve(now float64, n int64) float64 {
	if n < 0 {
		panic(fmt.Sprintf("resource: negative transfer %d on %q", n, l.name))
	}
	_, end := l.reserve(now, n)
	return end + l.latency
}

// Stats reports cumulative link usage.
func (l *Link) Stats() LinkStats {
	return LinkStats{Name: l.name, BusySeconds: l.busy, Bytes: l.bytesIn, Transfers: l.transfers}
}

// LinkStats is a snapshot of cumulative link usage.
type LinkStats struct {
	Name        string
	BusySeconds float64
	Bytes       int64
	Transfers   int64
}

// Path is an ordered sequence of links a transfer crosses, e.g.
// sender membus → sender NIC → bisection → receiver NIC → receiver
// membus. Completion is bottleneck-paced; every hop is charged its own
// service time so later traffic queues realistically at each hop.
type Path struct {
	links []*Link
}

// NewPath returns a path over the given links. Nil links are skipped so
// callers can compose paths conditionally (e.g. no bisection hop for
// intra-rack traffic).
func NewPath(links ...*Link) Path {
	kept := make([]*Link, 0, len(links))
	for _, l := range links {
		if l != nil {
			kept = append(kept, l)
		}
	}
	return Path{links: kept}
}

// Links returns the hops in order.
func (pa Path) Links() []*Link { return pa.links }

// Transfer blocks p while n bytes traverse every hop. The transfer
// starts when the most-backlogged hop frees up, runs at the bandwidth
// of the slowest hop, and pays the sum of hop latencies once (cut-
// through, not store-and-forward). Each hop's horizon advances by its
// own service time, so a fast hop shared with other traffic still
// serializes that traffic. Returns the completion time.
func (pa Path) Transfer(p *simtime.Proc, n int64) float64 {
	done := pa.Reserve(p.Now(), n)
	p.WaitUntil(done)
	return done
}

// Reserve books n bytes across every hop starting no earlier than now
// and returns the completion time without blocking. See Transfer for
// the pacing model.
func (pa Path) Reserve(now float64, n int64) float64 {
	return reserveSeq(pa.links, nil, now, n)
}

// ReserveTail is Reserve over the path's hops followed by tail — the
// arithmetic pa.Extend(tail).Reserve(now, n) performs — without
// building a new path. Hot callers (one storage target appended per
// request) use it to keep the reservation alloc-free.
func (pa Path) ReserveTail(now float64, n int64, tail *Link) float64 {
	t := [1]*Link{tail}
	return reserveSeq(pa.links, t[:], now, n)
}

// ReserveHead is Reserve with head prepended to the path's hops — the
// arithmetic NewPath(head).Extend(pa.Links()...).Reserve(now, n)
// performs — without building a new path.
func (pa Path) ReserveHead(now float64, n int64, head *Link) float64 {
	h := [1]*Link{head}
	return reserveSeq(h[:], pa.links, now, n)
}

// reserveSeq reserves across the hops of a followed by b. Reserve and
// its zero-alloc variants all route here so the float arithmetic —
// latency summation order in particular — cannot drift between them.
func reserveSeq(a, b []*Link, now float64, n int64) float64 {
	if len(a)+len(b) == 0 {
		return now
	}
	if n < 0 {
		panic(fmt.Sprintf("resource: negative transfer %d on path", n))
	}
	start := now
	var latSum, bottleneck float64
	first := true
	for _, links := range [2][]*Link{a, b} {
		for _, l := range links {
			if first {
				bottleneck = l.bandwidth
				first = false
			}
			if l.availAt > start {
				start = l.availAt
			}
			latSum += l.latency
			if l.bandwidth < bottleneck {
				bottleneck = l.bandwidth
			}
		}
	}
	for _, links := range [2][]*Link{a, b} {
		for _, l := range links {
			svc := l.serviceTime(n)
			l.availAt = start + svc
			l.busy += svc
			l.bytesIn += n
			l.transfers++
		}
	}
	return start + float64(n)/bottleneck + latSum
}

// Extend returns a new path with extra hops appended.
func (pa Path) Extend(links ...*Link) Path {
	all := append(append([]*Link(nil), pa.links...), links...)
	return NewPath(all...)
}

// Latency returns the sum of hop latencies.
func (pa Path) Latency() float64 {
	var sum float64
	for _, l := range pa.links {
		sum += l.latency
	}
	return sum
}

// Bottleneck returns the minimum hop bandwidth, or 0 for an empty path.
func (pa Path) Bottleneck() float64 {
	if len(pa.links) == 0 {
		return 0
	}
	b := pa.links[0].bandwidth
	for _, l := range pa.links[1:] {
		if l.bandwidth < b {
			b = l.bandwidth
		}
	}
	return b
}
