package resource

import "testing"

// benchSink keeps the reserve results live so the compiler cannot
// discard the benchmark body.
var benchSink float64

// BenchmarkReserveTail is the storage write path's batched cost model:
// the cached client path (memory bus, I/O NIC) plus a per-run OST tail,
// reserved in one pass without materialising an extended Path. One call
// per (rank, OST run) in every I/O round, so the steady state must be
// allocation-free — TestReserveZeroAllocs pins it.
func BenchmarkReserveTail(b *testing.B) {
	base := NewPath(NewLink("membus", 1e10, 1e-7), NewLink("ionet", 1e9, 1e-6))
	tail := NewLink("ost", 1e8, 1e-3)
	b.ReportAllocs()
	now := 0.0
	for i := 0; i < b.N; i++ {
		now = base.ReserveTail(now, 1<<20, tail)
	}
	benchSink = now
}

// BenchmarkReserveHead is the read path's mirror: the OST serves first,
// then the client-side links carry the bytes home.
func BenchmarkReserveHead(b *testing.B) {
	base := NewPath(NewLink("ionet", 1e9, 1e-6), NewLink("membus", 1e10, 1e-7))
	head := NewLink("ost", 1e8, 1e-3)
	b.ReportAllocs()
	now := 0.0
	for i := 0; i < b.N; i++ {
		now = base.ReserveHead(now, 1<<20, head)
	}
	benchSink = now
}

// TestReserveZeroAllocs asserts the three reserve entry points run
// without heap allocation: they are called once per message and once
// per OST run on the simulator's hottest paths.
func TestReserveZeroAllocs(t *testing.T) {
	base := NewPath(NewLink("membus", 1e10, 1e-7), NewLink("nic", 1e9, 1e-6))
	extra := NewLink("ost", 1e8, 1e-3)
	now := 0.0
	if avg := testing.AllocsPerRun(200, func() {
		now = base.Reserve(now, 1<<16)
		now = base.ReserveTail(now, 1<<16, extra)
		now = base.ReserveHead(now, 1<<16, extra)
	}); avg != 0 {
		t.Fatalf("reserve path allocates %.1f objects/op, want 0", avg)
	}
	benchSink = now
}
