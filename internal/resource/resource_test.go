package resource

import (
	"math"
	"testing"

	"repro/internal/simtime"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSingleTransferTime(t *testing.T) {
	e := simtime.NewEngine()
	l := NewLink("l", 100, 0.5) // 100 B/s, 0.5 s latency
	var done float64
	e.Spawn("p", func(p *simtime.Proc) {
		done = l.Transfer(p, 200)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(done, 2.5) { // 200/100 + 0.5
		t.Fatalf("done at %g, want 2.5", done)
	}
}

func TestTwoTransfersSerializeOnSharedLink(t *testing.T) {
	e := simtime.NewEngine()
	l := NewLink("l", 100, 0)
	var d1, d2 float64
	e.Spawn("a", func(p *simtime.Proc) { d1 = l.Transfer(p, 100) })
	e.Spawn("b", func(p *simtime.Proc) { d2 = l.Transfer(p, 100) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	first, second := d1, d2
	if first > second {
		first, second = second, first
	}
	if !almostEq(first, 1) || !almostEq(second, 2) {
		t.Fatalf("completions %g,%g; want 1 and 2 (serialized)", d1, d2)
	}
}

func TestLinkThroughputConserved(t *testing.T) {
	// N concurrent senders through one link: last completion must be
	// at least totalBytes/bandwidth regardless of arrival pattern.
	e := simtime.NewEngine()
	l := NewLink("l", 1000, 0)
	const n = 10
	var last float64
	for i := 0; i < n; i++ {
		e.Spawn("s", func(p *simtime.Proc) {
			d := l.Transfer(p, 500)
			if d > last {
				last = d
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if last < float64(n*500)/1000-1e-9 {
		t.Fatalf("last completion %g beats link capacity %g", last, float64(n*500)/1000)
	}
}

func TestPathBottleneckPacing(t *testing.T) {
	e := simtime.NewEngine()
	fast := NewLink("fast", 1000, 0.1)
	slow := NewLink("slow", 100, 0.2)
	pa := NewPath(fast, slow)
	var done float64
	e.Spawn("p", func(p *simtime.Proc) { done = pa.Transfer(p, 100) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 100 bytes at bottleneck 100 B/s = 1 s, plus 0.3 s latency.
	if !almostEq(done, 1.3) {
		t.Fatalf("done %g, want 1.3", done)
	}
}

func TestPathChargesEveryHop(t *testing.T) {
	e := simtime.NewEngine()
	a := NewLink("a", 1000, 0)
	b := NewLink("b", 100, 0)
	pa := NewPath(a, b)
	e.Spawn("p", func(p *simtime.Proc) { pa.Transfer(p, 1000) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Stats().Bytes != 1000 || b.Stats().Bytes != 1000 {
		t.Fatalf("hop bytes %d,%d; want 1000,1000", a.Stats().Bytes, b.Stats().Bytes)
	}
	if !almostEq(a.Stats().BusySeconds, 1) || !almostEq(b.Stats().BusySeconds, 10) {
		t.Fatalf("busy %g,%g; want 1,10", a.Stats().BusySeconds, b.Stats().BusySeconds)
	}
}

func TestPathSkipsNilLinks(t *testing.T) {
	e := simtime.NewEngine()
	a := NewLink("a", 100, 0.5)
	pa := NewPath(nil, a, nil)
	var done float64
	e.Spawn("p", func(p *simtime.Proc) { done = pa.Transfer(p, 100) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(done, 1.5) {
		t.Fatalf("done %g, want 1.5", done)
	}
	if pa.Bottleneck() != 100 || !almostEq(pa.Latency(), 0.5) {
		t.Fatalf("bottleneck/latency wrong: %g %g", pa.Bottleneck(), pa.Latency())
	}
}

func TestEmptyPathIsInstant(t *testing.T) {
	e := simtime.NewEngine()
	pa := NewPath()
	var done float64 = -1
	e.Spawn("p", func(p *simtime.Proc) {
		p.Sleep(2)
		done = pa.Transfer(p, 1e9)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(done, 2) {
		t.Fatalf("done %g, want 2", done)
	}
}

func TestSharedHopSerializesTwoPaths(t *testing.T) {
	// Two disjoint endpoints sharing one bisection link: combined
	// completion bounded by bisection capacity.
	e := simtime.NewEngine()
	bisect := NewLink("bisect", 100, 0)
	n1 := NewLink("nic1", 1000, 0)
	n2 := NewLink("nic2", 1000, 0)
	p1 := NewPath(n1, bisect)
	p2 := NewPath(n2, bisect)
	var d1, d2 float64
	e.Spawn("a", func(p *simtime.Proc) { d1 = p1.Transfer(p, 100) })
	e.Spawn("b", func(p *simtime.Proc) { d2 = p2.Transfer(p, 100) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	last := math.Max(d1, d2)
	if last < 2-1e-9 {
		t.Fatalf("last completion %g, want >= 2 (bisection carries 200 B at 100 B/s)", last)
	}
}

func TestZeroByteTransferPaysOnlyLatency(t *testing.T) {
	e := simtime.NewEngine()
	l := NewLink("l", 100, 0.25)
	var done float64
	e.Spawn("p", func(p *simtime.Proc) { done = l.Transfer(p, 0) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(done, 0.25) {
		t.Fatalf("done %g, want 0.25", done)
	}
}

func TestInvalidLinkPanics(t *testing.T) {
	for _, c := range []struct{ bw, lat float64 }{{0, 0}, {-1, 0}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLink(%g,%g) did not panic", c.bw, c.lat)
				}
			}()
			NewLink("bad", c.bw, c.lat)
		}()
	}
}

func TestReserveDoesNotBlock(t *testing.T) {
	// Reserve books capacity without advancing the caller's clock;
	// the caller can aggregate several reservations then wait once.
	e := simtime.NewEngine()
	l := NewLink("l", 100, 0)
	var before, after, done float64
	e.Spawn("p", func(p *simtime.Proc) {
		before = p.Now()
		d1 := l.Reserve(p.Now(), 100) // 1s
		d2 := l.Reserve(p.Now(), 100) // queued: 2s
		after = p.Now()
		if d2 <= d1 {
			t.Errorf("reservations did not queue: %g then %g", d1, d2)
		}
		p.WaitUntil(d2)
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("Reserve advanced the clock from %g to %g", before, after)
	}
	if !almostEq(done, 2) {
		t.Fatalf("done %g, want 2", done)
	}
}

func TestExtendComposesPaths(t *testing.T) {
	a := NewLink("a", 1000, 0.1)
	b := NewLink("b", 500, 0.2)
	c := NewLink("c", 100, 0.3)
	p := NewPath(a).Extend(b, nil, c)
	if len(p.Links()) != 3 {
		t.Fatalf("links %v", p.Links())
	}
	if p.Bottleneck() != 100 || !almostEq(p.Latency(), 0.6) {
		t.Fatalf("bottleneck %g latency %g", p.Bottleneck(), p.Latency())
	}
}
