package pfs

import "testing"

// BenchmarkSplitByOST is the striping decomposition on the I/O hot
// path: one call per (rank, window) in every round, splitting a large
// extent across the stripe layout. The FS-owned scratch (per-OST byte
// accumulator plus a reusable run slice) makes the warm path
// allocation-free — TestSplitByOSTZeroAllocs pins it.
func BenchmarkSplitByOST(b *testing.B) {
	_, fs := testRig(b)      // 4 OSTs, 1 MiB stripes
	fs.splitByOST(0, 48<<20) // warm the run scratch
	b.ReportAllocs()
	total := int64(0)
	for i := 0; i < b.N; i++ {
		for _, r := range fs.splitByOST(int64(i%7)*4096, 48<<20) {
			total += r.bytes
		}
	}
	if total < 0 {
		b.Fatal("unreachable; keeps the loop live")
	}
}

// TestSplitByOSTZeroAllocs asserts the warm split allocates nothing:
// the pre-scratch implementation built a map and sorted its keys per
// call, which profiled as one of the two dominant allocation sites of
// a sweep.
func TestSplitByOSTZeroAllocs(t *testing.T) {
	_, fs := testRig(t)
	fs.splitByOST(0, 48<<20)
	i := 0
	if avg := testing.AllocsPerRun(200, func() {
		fs.splitByOST(int64(i%7)*4096, 48<<20)
		i++
	}); avg != 0 {
		t.Fatalf("warm splitByOST allocates %.1f objects/op, want 0", avg)
	}
}
