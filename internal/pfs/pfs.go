// Package pfs simulates a Lustre-like striped parallel file system.
//
// A file is striped round-robin across object storage targets (OSTs)
// in fixed stripe units (the paper's testbed used 1 MB units over all
// servers). Each OST is a bandwidth/latency resource; every request an
// OST serves pays a fixed per-request overhead (RPC + seek) plus
// size/bandwidth. That overhead is what makes many small noncontiguous
// requests slow and few large contiguous requests fast — the property
// collective I/O exists to exploit.
//
// Data is stored sparsely per file in fixed-size blocks so functional
// tests can verify every byte; phantom payloads exercise the same cost
// accounting without storing anything.
package pfs

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/resource"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// storeBlock is the granularity of the sparse byte store. It is a
// storage-efficiency knob only; it has no effect on timing.
const storeBlock = 256 << 10

// Config describes the storage system.
type Config struct {
	OSTs       int
	StripeUnit int64   // bytes per stripe
	OSTBW      float64 // per-OST streaming bandwidth, bytes/s
	OSTLatency float64 // per-request overhead (RPC + seek), seconds

	// JitterMean adds an exponentially distributed extra delay to each
	// request's completion, modelling shared-storage interference (lock
	// ping-pong, seek storms, competing jobs). Zero disables it. Many
	// small rounds each pay the *maximum* jitter of their in-flight
	// requests, which is why small collective buffers decay on real
	// systems.
	JitterMean float64
	// Seed drives the deterministic jitter stream.
	Seed uint64
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	if c.OSTs <= 0 {
		return fmt.Errorf("pfs: OSTs must be positive, got %d", c.OSTs)
	}
	if c.StripeUnit <= 0 {
		return fmt.Errorf("pfs: StripeUnit must be positive, got %d", c.StripeUnit)
	}
	if c.OSTBW <= 0 {
		return fmt.Errorf("pfs: OSTBW must be positive, got %g", c.OSTBW)
	}
	if c.OSTLatency < 0 {
		return fmt.Errorf("pfs: negative OSTLatency %g", c.OSTLatency)
	}
	if c.JitterMean < 0 {
		return fmt.Errorf("pfs: negative JitterMean %g", c.JitterMean)
	}
	return nil
}

// DefaultConfig mirrors the paper's testbed storage: 1 MB stripes over
// a DataDirect-class backend. Per-OST bandwidth and count are chosen so
// aggregate streaming capacity is a few GB/s.
func DefaultConfig() Config {
	return Config{
		OSTs:       16,
		StripeUnit: 1 * cluster.MB,
		OSTBW:      400 * float64(cluster.MB),
		OSTLatency: 500e-6,
	}
}

// FS is a simulated parallel file system mounted on a machine.
type FS struct {
	cfg     Config
	machine *cluster.Machine
	osts    []*resource.Link
	files   map[string]*fileData
	rng     *stats.RNG
	faults  *faults.Schedule // nil = no straggler-OST faults

	// Per-node client paths and splitByOST scratch, built once at New.
	// Paths are ordered views over shared *Link state, so one cached
	// entry per node replaces a NewPath per request; the run scratch
	// replaces the map+sort that dominated allocation in request-heavy
	// sweeps. Both are touched only from simulation context, which the
	// engine serializes, and runs is fully consumed before any yield.
	storeTx  []resource.Path // node -> client write path (membus, NIC tx, I/O net)
	storeRx  []resource.Path // node -> client read-return path (I/O net, NIC rx, membus)
	runBytes []int64         // per-OST accumulator, zeroed after each split
	runs     []ostRun        // reusable splitByOST result

	reqs         int64
	bytesRead    int64
	bytesWritten int64

	met fsMetrics
}

// fsMetrics bundles the storage-layer instrument handles, resolved
// once at New (the machine's registry must be attached before the file
// system is mounted). Per-OST counters are an array so the per-run
// update is one atomic add with no lookup.
type fsMetrics struct {
	reqs       [2]*metrics.Counter // indexed by opRead/opWrite
	bytes      [2]*metrics.Counter
	batchBytes [2]*metrics.Histogram // service-batch sizes per op
	ostRuns    []*metrics.Counter    // per-OST service runs
	ostBytes   []*metrics.Counter    // per-OST bytes served
}

const (
	opRead = iota
	opWrite
)

func newFSMetrics(r *metrics.Registry, osts int) fsMetrics {
	var fm fsMetrics
	ops := [2]string{"read", "write"}
	for i, op := range ops {
		fm.reqs[i] = r.Counter("pfs_requests_total",
			"Requests served by the parallel file system.", "op", op)
		fm.bytes[i] = r.Counter("pfs_bytes_total",
			"Bytes moved to or from the parallel file system.", "op", op)
		fm.batchBytes[i] = r.Histogram("pfs_batch_bytes",
			"Size of each request batch serviced.", metrics.DefBytesBuckets(), "op", op)
	}
	if r != nil {
		fm.ostRuns = make([]*metrics.Counter, osts)
		fm.ostBytes = make([]*metrics.Counter, osts)
		for i := 0; i < osts; i++ {
			id := fmt.Sprintf("%d", i)
			fm.ostRuns[i] = r.Counter("pfs_ost_runs_total",
				"Contiguous per-OST service runs (one client RPC each).", "ost", id)
			fm.ostBytes[i] = r.Counter("pfs_ost_bytes_total",
				"Bytes served per OST.", "ost", id)
		}
	}
	return fm
}

// stripe accounts one per-OST run; nil-safe when metrics are off.
func (fm *fsMetrics) stripe(run ostRun) {
	if fm.ostRuns == nil {
		return
	}
	fm.ostRuns[run.ost].Inc()
	fm.ostBytes[run.ost].Add(float64(run.bytes))
}

// batch accounts one request batch of n bytes and reqs per-OST runs.
func (fm *fsMetrics) batch(op int, n, reqs int64) {
	fm.reqs[op].Add(float64(reqs))
	fm.bytes[op].Add(float64(n))
	fm.batchBytes[op].Observe(float64(n))
}

type fileData struct {
	blocks map[int64][]byte // block index -> storage (lazily allocated)
	size   int64            // highest written offset + 1
}

// New mounts a file system with cfg on machine m.
func New(cfg Config, m *cluster.Machine) (*FS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fs := &FS{cfg: cfg, machine: m, files: make(map[string]*fileData), rng: stats.NewRNG(cfg.Seed ^ 0x5f5),
		met: newFSMetrics(m.Metrics(), cfg.OSTs)}
	for i := 0; i < cfg.OSTs; i++ {
		fs.osts = append(fs.osts, resource.NewLink(fmt.Sprintf("ost%d", i), cfg.OSTBW, cfg.OSTLatency))
	}
	fs.storeTx = make([]resource.Path, m.NumNodes())
	fs.storeRx = make([]resource.Path, m.NumNodes())
	for r := 0; r < m.NumRanks(); r++ {
		sn := m.NodeOfRank(r)
		if len(fs.storeTx[sn].Links()) == 0 {
			fs.storeTx[sn] = m.StoragePath(r)
			fs.storeRx[sn] = m.StorageReturnPath(r)
		}
	}
	fs.runBytes = make([]int64, cfg.OSTs)
	fs.runs = make([]ostRun, 0, cfg.OSTs)
	return fs, nil
}

// Config returns the file system configuration.
func (fs *FS) Config() Config { return fs.cfg }

// Open returns a handle on name, creating the file if needed.
func (fs *FS) Open(name string) *File {
	fd := fs.files[name]
	if fd == nil {
		fd = &fileData{blocks: make(map[int64][]byte)}
		fs.files[name] = fd
	}
	return &File{fs: fs, name: name, data: fd}
}

// Remove deletes a file's contents.
func (fs *FS) Remove(name string) { delete(fs.files, name) }

// Stats reports cumulative request and byte counts.
func (fs *FS) Stats() Stats {
	s := Stats{Requests: fs.reqs, BytesRead: fs.bytesRead, BytesWritten: fs.bytesWritten}
	for _, o := range fs.osts {
		s.OSTBusy = append(s.OSTBusy, o.Stats().BusySeconds)
	}
	return s
}

// traceLoc is the issuing rank's track identity for service spans.
func (fs *FS) traceLoc(rank int) obs.Loc {
	return obs.Loc{Rank: rank, Node: fs.machine.NodeOfRank(rank), Group: -1, Round: -1}
}

// traceStripe records one per-OST service run as an instant event when
// tracing is attached and as per-OST counters when metrics are
// attached (nil-safe otherwise).
func (fs *FS) traceStripe(t *obs.Tracer, loc obs.Loc, run ostRun) {
	t.Instant(obs.EventStripe, loc, run.bytes, int64(run.ost))
	fs.met.stripe(run)
}

// SetFaults attaches a fault schedule; straggler-OST entries stretch
// matching requests' service time. Nil detaches.
func (fs *FS) SetFaults(s *faults.Schedule) { fs.faults = s }

// slowEnd stretches one request's service interval [now, end) when a
// straggler fault is active on its OST.
func (fs *FS) slowEnd(now, end float64, ost int) float64 {
	if fs.faults == nil {
		return end
	}
	if f := fs.faults.OSTFactor(ost, now); f > 1 {
		return now + (end-now)*f
	}
	return end
}

// jitter draws one request's interference delay.
func (fs *FS) jitter() float64 {
	if fs.cfg.JitterMean <= 0 {
		return 0
	}
	return fs.rng.Exp(fs.cfg.JitterMean)
}

// Stats is a snapshot of file system activity.
type Stats struct {
	Requests     int64
	BytesRead    int64
	BytesWritten int64
	OSTBusy      []float64
}

// File is a handle on a (simulated) striped file.
type File struct {
	fs   *FS
	name string
	data *fileData
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Size returns one past the highest byte ever written.
func (f *File) Size() int64 { return f.data.size }

// ostRun is a contiguous-in-object-space run of bytes on one OST.
type ostRun struct {
	ost   int
	bytes int64
}

// splitByOST decomposes the file extent [off, off+n) into per-OST runs,
// ascending by OST. Stripes land round-robin, so within one contiguous
// file extent each OST's pieces are contiguous in its object space and
// count as a single request (Lustre clients batch exactly this way).
// The returned slice is FS-owned scratch, valid until the next call;
// callers consume it before yielding to the engine.
func (fs *FS) splitByOST(off, n int64) []ostRun {
	if n == 0 {
		return nil
	}
	su := fs.cfg.StripeUnit
	pos := off
	remaining := n
	for remaining > 0 {
		stripe := pos / su
		inStripe := su - pos%su
		if inStripe > remaining {
			inStripe = remaining
		}
		ost := int(stripe % int64(fs.cfg.OSTs))
		fs.runBytes[ost] += inStripe
		pos += inStripe
		remaining -= inStripe
	}
	fs.runs = fs.runs[:0]
	for ost, b := range fs.runBytes {
		if b != 0 {
			fs.runs = append(fs.runs, ostRun{ost: ost, bytes: b})
			fs.runBytes[ost] = 0
		}
	}
	return fs.runs
}

// WriteAt writes buf at file offset off on behalf of rank, blocking p
// for the simulated duration. Per-OST requests are issued concurrently;
// the call completes when the slowest OST finishes. Returns the virtual
// completion time.
func (f *File) WriteAt(p *simtime.Proc, rank int, off int64, buf buffer.Buf) float64 {
	n := buf.Len()
	if n == 0 {
		return p.Now()
	}
	if off < 0 {
		panic(fmt.Sprintf("pfs: write at negative offset %d", off))
	}
	t := f.fs.machine.Tracer()
	loc := f.fs.traceLoc(rank)
	sp := t.Begin(obs.PhasePFSWrite, loc)
	f.storeBytes(off, buf)
	base := f.fs.storeTx[f.fs.machine.NodeOfRank(rank)]
	done := p.Now()
	var reqs int64
	for _, run := range f.fs.splitByOST(off, n) {
		end := f.fs.slowEnd(p.Now(), base.ReserveTail(p.Now(), run.bytes, f.fs.osts[run.ost]), run.ost) + f.fs.jitter()
		if end > done {
			done = end
		}
		f.fs.reqs++
		reqs++
		f.fs.traceStripe(t, loc, run)
	}
	f.fs.bytesWritten += n
	f.fs.met.batch(opWrite, n, reqs)
	p.WaitUntil(done)
	sp.EndBytes(n, reqs)
	return done
}

// ReadAt fills dst from file offset off on behalf of rank, blocking p
// for the simulated duration. Unwritten bytes read as zero. Returns the
// virtual completion time.
func (f *File) ReadAt(p *simtime.Proc, rank int, off int64, dst buffer.Buf) float64 {
	n := dst.Len()
	if n == 0 {
		return p.Now()
	}
	if off < 0 {
		panic(fmt.Sprintf("pfs: read at negative offset %d", off))
	}
	t := f.fs.machine.Tracer()
	loc := f.fs.traceLoc(rank)
	sp := t.Begin(obs.PhasePFSRead, loc)
	f.loadBytes(off, dst)
	base := f.fs.storeRx[f.fs.machine.NodeOfRank(rank)]
	done := p.Now()
	var reqs int64
	for _, run := range f.fs.splitByOST(off, n) {
		end := f.fs.slowEnd(p.Now(), base.ReserveHead(p.Now(), run.bytes, f.fs.osts[run.ost]), run.ost) + f.fs.jitter()
		if end > done {
			done = end
		}
		f.fs.reqs++
		reqs++
		f.fs.traceStripe(t, loc, run)
	}
	f.fs.bytesRead += n
	f.fs.met.batch(opRead, n, reqs)
	p.WaitUntil(done)
	sp.EndBytes(n, reqs)
	return done
}

// WriteVec writes several (offset, payload) runs as one pipelined batch
// on behalf of rank: all requests are issued concurrently (as a real
// parallel-file-system client would keep them in flight) and the call
// completes when the slowest finishes. Returns the completion time.
func (f *File) WriteVec(p *simtime.Proc, rank int, offs []int64, bufs []buffer.Buf) float64 {
	if len(offs) != len(bufs) {
		panic(fmt.Sprintf("pfs: WriteVec with %d offsets, %d payloads", len(offs), len(bufs)))
	}
	t := f.fs.machine.Tracer()
	loc := f.fs.traceLoc(rank)
	sp := t.Begin(obs.PhasePFSWrite, loc)
	base := f.fs.storeTx[f.fs.machine.NodeOfRank(rank)]
	done := p.Now()
	var reqs, bytes int64
	for i, off := range offs {
		n := bufs[i].Len()
		if n == 0 {
			continue
		}
		if off < 0 {
			panic(fmt.Sprintf("pfs: write at negative offset %d", off))
		}
		f.storeBytes(off, bufs[i])
		for _, run := range f.fs.splitByOST(off, n) {
			end := f.fs.slowEnd(p.Now(), base.ReserveTail(p.Now(), run.bytes, f.fs.osts[run.ost]), run.ost) + f.fs.jitter()
			if end > done {
				done = end
			}
			f.fs.reqs++
			reqs++
			f.fs.traceStripe(t, loc, run)
		}
		f.fs.bytesWritten += n
		bytes += n
	}
	f.fs.met.batch(opWrite, bytes, reqs)
	p.WaitUntil(done)
	sp.EndBytes(bytes, reqs)
	return done
}

// ReadVec reads several (offset, destination) runs as one pipelined
// batch; see WriteVec.
func (f *File) ReadVec(p *simtime.Proc, rank int, offs []int64, bufs []buffer.Buf) float64 {
	if len(offs) != len(bufs) {
		panic(fmt.Sprintf("pfs: ReadVec with %d offsets, %d payloads", len(offs), len(bufs)))
	}
	t := f.fs.machine.Tracer()
	loc := f.fs.traceLoc(rank)
	sp := t.Begin(obs.PhasePFSRead, loc)
	base := f.fs.storeRx[f.fs.machine.NodeOfRank(rank)]
	done := p.Now()
	var reqs, bytes int64
	for i, off := range offs {
		n := bufs[i].Len()
		if n == 0 {
			continue
		}
		if off < 0 {
			panic(fmt.Sprintf("pfs: read at negative offset %d", off))
		}
		f.loadBytes(off, bufs[i])
		for _, run := range f.fs.splitByOST(off, n) {
			end := f.fs.slowEnd(p.Now(), base.ReserveHead(p.Now(), run.bytes, f.fs.osts[run.ost]), run.ost) + f.fs.jitter()
			if end > done {
				done = end
			}
			f.fs.reqs++
			reqs++
			f.fs.traceStripe(t, loc, run)
		}
		f.fs.bytesRead += n
		bytes += n
	}
	f.fs.met.batch(opRead, bytes, reqs)
	p.WaitUntil(done)
	sp.EndBytes(bytes, reqs)
	return done
}

// storeBytes persists a real payload into the sparse block store.
// Phantom payloads only extend the file size.
func (f *File) storeBytes(off int64, buf buffer.Buf) {
	n := buf.Len()
	if off+n > f.data.size {
		f.data.size = off + n
	}
	if buf.Phantom() {
		return
	}
	src := buf.Bytes()
	pos := int64(0)
	for pos < n {
		blk := (off + pos) / storeBlock
		blkOff := (off + pos) % storeBlock
		chunk := int64(storeBlock) - blkOff
		if chunk > n-pos {
			chunk = n - pos
		}
		b := f.data.blocks[blk]
		if b == nil {
			b = make([]byte, storeBlock)
			f.data.blocks[blk] = b
		}
		copy(b[blkOff:blkOff+chunk], src[pos:pos+chunk])
		pos += chunk
	}
}

// loadBytes fills a real payload from the sparse block store. Phantom
// payloads skip data movement.
func (f *File) loadBytes(off int64, dst buffer.Buf) {
	if dst.Phantom() {
		return
	}
	out := dst.Bytes()
	n := dst.Len()
	pos := int64(0)
	for pos < n {
		blk := (off + pos) / storeBlock
		blkOff := (off + pos) % storeBlock
		chunk := int64(storeBlock) - blkOff
		if chunk > n-pos {
			chunk = n - pos
		}
		if b := f.data.blocks[blk]; b != nil {
			copy(out[pos:pos+chunk], b[blkOff:blkOff+chunk])
		} else {
			clear(out[pos : pos+chunk])
		}
		pos += chunk
	}
}
