package pfs

import (
	"testing"
	"testing/quick"

	"repro/internal/buffer"
	"repro/internal/cluster"
	"repro/internal/simtime"
)

func testRig(t testing.TB) (*cluster.Machine, *FS) {
	t.Helper()
	m, err := cluster.New(cluster.Config{
		Nodes: 2, CoresPerNode: 2,
		MemPerNode: 64 * cluster.MiB,
		MemBusBW:   1e10, NICBW: 1e9, BisectionBW: 1e10, IONetBW: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := New(Config{OSTs: 4, StripeUnit: 1 << 20, OSTBW: 1e8, OSTLatency: 1e-3}, m)
	if err != nil {
		t.Fatal(err)
	}
	return m, fs
}

func runSim(t *testing.T, body func(p *simtime.Proc)) {
	t.Helper()
	e := simtime.NewEngine()
	e.Spawn("t", body)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	_, fs := testRig(t)
	f := fs.Open("a")
	runSim(t, func(p *simtime.Proc) {
		w := buffer.NewReal(3 << 20)
		w.Fill(7, 1000)
		f.WriteAt(p, 0, 1000, w)
		r := buffer.NewReal(3 << 20)
		f.ReadAt(p, 1, 1000, r)
		if i := r.Verify(7, 1000); i != -1 {
			t.Errorf("mismatch at byte %d", i)
		}
	})
}

func TestUnwrittenBytesReadZero(t *testing.T) {
	_, fs := testRig(t)
	f := fs.Open("a")
	runSim(t, func(p *simtime.Proc) {
		w := buffer.NewReal(10)
		w.Fill(1, 100)
		f.WriteAt(p, 0, 100, w)
		r := buffer.NewReal(30)
		f.ReadAt(p, 0, 90, r)
		for i := 0; i < 10; i++ {
			if r.Bytes()[i] != 0 {
				t.Fatalf("pre-gap byte %d nonzero", i)
			}
		}
		if i := r.Slice(10, 10).Verify(1, 100); i != -1 {
			t.Fatalf("written region mismatch at %d", i)
		}
		for i := 20; i < 30; i++ {
			if r.Bytes()[i] != 0 {
				t.Fatalf("post-gap byte %d nonzero", i)
			}
		}
	})
}

func TestOverlappingWritesLastWins(t *testing.T) {
	_, fs := testRig(t)
	f := fs.Open("a")
	runSim(t, func(p *simtime.Proc) {
		w1 := buffer.NewReal(100)
		w1.Fill(1, 0)
		f.WriteAt(p, 0, 0, w1)
		w2 := buffer.NewReal(50)
		w2.Fill(2, 25)
		f.WriteAt(p, 0, 25, w2)
		r := buffer.NewReal(100)
		f.ReadAt(p, 0, 0, r)
		if i := r.Slice(0, 25).Verify(1, 0); i != -1 {
			t.Fatalf("head overwritten at %d", i)
		}
		if i := r.Slice(25, 50).Verify(2, 25); i != -1 {
			t.Fatalf("overlap not overwritten at %d", i)
		}
		if i := r.Slice(75, 25).Verify(1, 75); i != -1 {
			t.Fatalf("tail overwritten at %d", i)
		}
	})
}

func TestSplitByOSTRoundRobin(t *testing.T) {
	_, fs := testRig(t) // 4 OSTs, 1 MiB stripes
	su := int64(1 << 20)
	runs := fs.splitByOST(0, 6*su)
	if len(runs) != 4 {
		t.Fatalf("runs %v, want 4 OSTs", runs)
	}
	// Stripes 0..5 -> OSTs 0,1,2,3,0,1: OSTs 0,1 get 2 MiB, OSTs 2,3 get 1 MiB.
	want := map[int]int64{0: 2 * su, 1: 2 * su, 2: su, 3: su}
	for _, r := range runs {
		if want[r.ost] != r.bytes {
			t.Fatalf("OST %d got %d bytes, want %d", r.ost, r.bytes, want[r.ost])
		}
	}
}

func TestSplitByOSTConservesBytes(t *testing.T) {
	_, fs := testRig(t)
	f := func(off, n uint32) bool {
		o, sz := int64(off), int64(n%(64<<20))
		total := int64(0)
		for _, r := range fs.splitByOST(o, sz) {
			if r.bytes <= 0 {
				return false
			}
			total += r.bytes
		}
		return total == sz
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnalignedExtentSplit(t *testing.T) {
	_, fs := testRig(t)
	su := int64(1 << 20)
	// Start mid-stripe 1, end mid-stripe 2: OST1 gets the tail of
	// stripe 1, OST2 the head of stripe 2.
	runs := fs.splitByOST(su+su/2, su)
	if len(runs) != 2 {
		t.Fatalf("runs %v, want 2", runs)
	}
	if runs[0].ost != 1 || runs[0].bytes != su/2 || runs[1].ost != 2 || runs[1].bytes != su/2 {
		t.Fatalf("bad split %v", runs)
	}
}

func TestLargeContiguousBeatsManySmall(t *testing.T) {
	// The property collective I/O relies on: same bytes, fewer
	// requests, faster. 16 MiB in one call vs 256 calls of 64 KiB.
	_, fs1 := testRig(t)
	var tOne float64
	runSim(t, func(p *simtime.Proc) {
		fs1.Open("a").WriteAt(p, 0, 0, buffer.NewPhantom(16<<20))
		tOne = p.Now()
	})
	_, fs2 := testRig(t)
	var tMany float64
	runSim(t, func(p *simtime.Proc) {
		f := fs2.Open("a")
		for i := int64(0); i < 256; i++ {
			f.WriteAt(p, 0, i*(64<<10), buffer.NewPhantom(64<<10))
		}
		tMany = p.Now()
	})
	if tOne*2 > tMany {
		t.Fatalf("large contiguous (%g s) not clearly faster than many small (%g s)", tOne, tMany)
	}
}

func TestPhantomWriteTracksSizeOnly(t *testing.T) {
	_, fs := testRig(t)
	f := fs.Open("a")
	runSim(t, func(p *simtime.Proc) {
		f.WriteAt(p, 0, 1<<30, buffer.NewPhantom(1<<20))
	})
	if f.Size() != 1<<30+1<<20 {
		t.Fatalf("size %d", f.Size())
	}
	if len(f.data.blocks) != 0 {
		t.Fatalf("phantom write stored %d blocks", len(f.data.blocks))
	}
}

func TestStatsAccumulate(t *testing.T) {
	_, fs := testRig(t)
	f := fs.Open("a")
	runSim(t, func(p *simtime.Proc) {
		f.WriteAt(p, 0, 0, buffer.NewPhantom(4<<20))
		f.ReadAt(p, 0, 0, buffer.NewPhantom(2<<20))
	})
	s := fs.Stats()
	if s.BytesWritten != 4<<20 || s.BytesRead != 2<<20 {
		t.Fatalf("bytes RW %d/%d", s.BytesRead, s.BytesWritten)
	}
	if s.Requests != 4+2 { // 4 OSTs on write, 2 on read
		t.Fatalf("requests %d, want 6", s.Requests)
	}
}

func TestConcurrentClientsShareOSTs(t *testing.T) {
	// Two clients streaming to disjoint extents on the same OSTs:
	// combined finish must respect aggregate OST capacity.
	_, fs := testRig(t)
	e := simtime.NewEngine()
	var d0, d1 float64
	const sz = 32 << 20 // spans all 4 OSTs, 8 MiB each
	f := fs.Open("a")
	e.Spawn("c0", func(p *simtime.Proc) { d0 = f.WriteAt(p, 0, 0, buffer.NewPhantom(sz)) })
	e.Spawn("c1", func(p *simtime.Proc) { d1 = f.WriteAt(p, 2, sz, buffer.NewPhantom(sz)) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	last := d0
	if d1 > last {
		last = d1
	}
	// Each OST carries 16 MiB total at 1e8 B/s => >= 0.167 s.
	if last < 16.0*(1<<20)/1e8 {
		t.Fatalf("finish %g s beats per-OST capacity", last)
	}
}

func TestOpenSameNameSharesData(t *testing.T) {
	_, fs := testRig(t)
	a := fs.Open("x")
	b := fs.Open("x")
	runSim(t, func(p *simtime.Proc) {
		w := buffer.NewReal(8)
		w.Fill(3, 0)
		a.WriteAt(p, 0, 0, w)
		r := buffer.NewReal(8)
		b.ReadAt(p, 0, 0, r)
		if i := r.Verify(3, 0); i != -1 {
			t.Errorf("handles don't share data, mismatch at %d", i)
		}
	})
	fs.Remove("x")
	if fs.Open("x").Size() != 0 {
		t.Fatal("Remove did not clear file")
	}
}

func TestBadConfigRejected(t *testing.T) {
	m, _ := cluster.New(cluster.Config{
		Nodes: 1, CoresPerNode: 1, MemPerNode: 1 << 20,
		MemBusBW: 1, NICBW: 1, BisectionBW: 1, IONetBW: 1,
	})
	bad := []Config{
		{OSTs: 0, StripeUnit: 1, OSTBW: 1},
		{OSTs: 1, StripeUnit: 0, OSTBW: 1},
		{OSTs: 1, StripeUnit: 1, OSTBW: 0},
		{OSTs: 1, StripeUnit: 1, OSTBW: 1, OSTLatency: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, m); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestWriteVecReadVecRoundTrip(t *testing.T) {
	_, fs := testRig(t)
	f := fs.Open("vec")
	runSim(t, func(p *simtime.Proc) {
		offs := []int64{100, 5000, 9000}
		var bufs []buffer.Buf
		for i, off := range offs {
			b := buffer.NewReal(int64(200 + i*50))
			b.Fill(uint64(i+1), off)
			bufs = append(bufs, b)
		}
		f.WriteVec(p, 0, offs, bufs)
		var outs []buffer.Buf
		for i := range offs {
			outs = append(outs, buffer.NewReal(int64(200+i*50)))
		}
		f.ReadVec(p, 1, offs, outs)
		for i, off := range offs {
			if j := outs[i].Verify(uint64(i+1), off); j != -1 {
				t.Errorf("run %d mismatch at %d", i, j)
			}
		}
	})
}

func TestWriteVecPipelinesFasterThanSerialWrites(t *testing.T) {
	mk := func() (*FS, []int64, []buffer.Buf) {
		_, fs := testRig(t)
		var offs []int64
		var bufs []buffer.Buf
		for i := int64(0); i < 32; i++ {
			offs = append(offs, i*(128<<10))
			bufs = append(bufs, buffer.NewPhantom(64<<10))
		}
		return fs, offs, bufs
	}
	var vec, serial float64
	fs1, offs, bufs := mk()
	runSim(t, func(p *simtime.Proc) {
		fs1.Open("a").WriteVec(p, 0, offs, bufs)
		vec = p.Now()
	})
	fs2, offs2, bufs2 := mk()
	runSim(t, func(p *simtime.Proc) {
		f := fs2.Open("a")
		for i := range offs2 {
			f.WriteAt(p, 0, offs2[i], bufs2[i])
		}
		serial = p.Now()
	})
	if vec >= serial {
		t.Fatalf("vectored %g s not faster than serial %g s", vec, serial)
	}
}

func TestVecLengthMismatchPanics(t *testing.T) {
	_, fs := testRig(t)
	f := fs.Open("x")
	runSim(t, func(p *simtime.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		f.WriteVec(p, 0, []int64{0, 1}, []buffer.Buf{buffer.NewPhantom(1)})
	})
}

func TestJitterSlowsAndStaysDeterministic(t *testing.T) {
	run := func(jitter float64, seed uint64) float64 {
		m, _ := cluster.New(cluster.Config{
			Nodes: 1, CoresPerNode: 1, MemPerNode: 64 * cluster.MiB,
			MemBusBW: 1e10, NICBW: 1e9, BisectionBW: 1e10, IONetBW: 1e9,
		})
		fs, err := New(Config{OSTs: 4, StripeUnit: 1 << 20, OSTBW: 1e8, OSTLatency: 1e-3,
			JitterMean: jitter, Seed: seed}, m)
		if err != nil {
			t.Fatal(err)
		}
		var done float64
		e := simtime.NewEngine()
		e.Spawn("p", func(p *simtime.Proc) {
			f := fs.Open("a")
			for i := int64(0); i < 16; i++ {
				f.WriteAt(p, 0, i<<20, buffer.NewPhantom(1<<20))
			}
			done = p.Now()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	calm := run(0, 1)
	noisy := run(20e-3, 1)
	if noisy <= calm {
		t.Fatalf("jitter did not slow the run: %g vs %g", noisy, calm)
	}
	if run(20e-3, 1) != noisy {
		t.Fatal("jitter not deterministic for fixed seed")
	}
	if run(20e-3, 2) == noisy {
		t.Fatal("different jitter seeds gave identical timing")
	}
}

func TestNegativeJitterRejected(t *testing.T) {
	m, _ := cluster.New(cluster.Config{
		Nodes: 1, CoresPerNode: 1, MemPerNode: 1 << 20,
		MemBusBW: 1, NICBW: 1, BisectionBW: 1, IONetBW: 1,
	})
	if _, err := New(Config{OSTs: 1, StripeUnit: 1, OSTBW: 1, JitterMean: -1}, m); err == nil {
		t.Fatal("negative jitter accepted")
	}
}
