package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoBarePrintsInInternal fails for any fmt.Print / fmt.Printf /
// fmt.Println call in a non-test file under internal/. Library code
// must write to an injected io.Writer (fmt.Fprintf, a logger, the
// tracer) so its output is capturable and silenceable; printing
// straight to stdout belongs only in the cmd/ entry points.
func TestNoBarePrintsInInternal(t *testing.T) {
	root := ".."
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != "fmt" {
				return true
			}
			switch sel.Sel.Name {
			case "Print", "Printf", "Println":
				p := fset.Position(call.Pos())
				t.Errorf("%s:%d: bare fmt.%s in internal/ — write to an injected io.Writer instead",
					p.Filename, p.Line, sel.Sel.Name)
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
