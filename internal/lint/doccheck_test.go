// Package lint holds build-time style gates that go vet cannot
// express. The tests here run in CI like any other package's tests, so
// a missing doc comment fails the build the same way a broken one
// would.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// docAuditPackages are the packages whose exported identifiers must
// all carry doc comments: the surfaces the documentation pass covers
// (sweep, bench, faults) plus the plan service, the observability
// packages, and their commands.
var docAuditPackages = []string{
	"../sweep", "../bench", "../faults", "../twolayer", "../strategy",
	"../pland", "../logx", "../prof", "../top", "../explain", "../ring",
	"../../cmd/mccio-pland", "../../cmd/mccio-loadgen", "../../cmd/mccio-top",
}

// TestExportedIdentifiersDocumented parses each audited package and
// fails for every exported type, function, method, const, or var
// declared without a doc comment. Test files are exempt; fields of
// documented structs are not individually required.
func TestExportedIdentifiersDocumented(t *testing.T) {
	for _, dir := range docAuditPackages {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			fset := token.NewFileSet()
			pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
				return !strings.HasSuffix(fi.Name(), "_test.go")
			}, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			for _, pkg := range pkgs {
				for _, file := range pkg.Files {
					for _, missing := range undocumented(fset, file) {
						t.Error(missing)
					}
				}
			}
		})
	}
}

// undocumented returns one message per exported declaration in file
// that has no doc comment.
func undocumented(fset *token.FileSet, file *ast.File) []string {
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(n.Pos(), strings.ToLower(d.Tok.String()), n.Name)
						}
					}
				}
			}
		}
	}
	return out
}
