package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestZeroRows: an empty sweep returns an empty slice and no error,
// regardless of worker count.
func TestZeroRows(t *testing.T) {
	out, err := Sweep[int]{Workers: 4}.Run(context.Background(), 0, func(context.Context, int) (int, error) {
		t.Fatal("fn called for zero-row sweep")
		return 0, nil
	})
	if err != nil {
		t.Fatalf("zero rows: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("zero rows: got %d results", len(out))
	}
}

// TestOneRow: a single row runs exactly once and lands in slot 0.
func TestOneRow(t *testing.T) {
	var calls atomic.Int64
	out, err := Sweep[string]{Workers: 8}.Run(context.Background(), 1, func(_ context.Context, row int) (string, error) {
		calls.Add(1)
		return fmt.Sprintf("row-%d", row), nil
	})
	if err != nil {
		t.Fatalf("one row: %v", err)
	}
	if calls.Load() != 1 || out[0] != "row-0" {
		t.Fatalf("one row: calls=%d out=%v", calls.Load(), out)
	}
}

// TestWorkersExceedRows: a pool wider than the grid still runs every
// row exactly once and keeps slot-per-row ordering.
func TestWorkersExceedRows(t *testing.T) {
	const n = 3
	var calls atomic.Int64
	out, err := Sweep[int]{Workers: 64}.Run(context.Background(), n, func(_ context.Context, row int) (int, error) {
		calls.Add(1)
		return row * row, nil
	})
	if err != nil {
		t.Fatalf("workers > rows: %v", err)
	}
	if calls.Load() != n {
		t.Fatalf("workers > rows: %d calls, want %d", calls.Load(), n)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d holds %d, want %d", i, v, i*i)
		}
	}
}

// TestErrorMidSweep: one failing row does not stop its siblings — every
// other row still completes — and the aggregated error names the row.
func TestErrorMidSweep(t *testing.T) {
	const n = 12
	boom := errors.New("boom")
	out, err := Sweep[int]{Workers: 4}.Run(context.Background(), n, func(_ context.Context, row int) (int, error) {
		if row == 5 {
			return 0, boom
		}
		return row + 100, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("aggregated error %v does not wrap the row error", err)
	}
	if !strings.Contains(err.Error(), "row 5") {
		t.Fatalf("aggregated error %q does not name row 5", err)
	}
	for i := 0; i < n; i++ {
		switch {
		case i == 5 && out[i] != 0:
			t.Fatalf("failed row slot holds %d, want zero value", out[i])
		case i != 5 && out[i] != i+100:
			t.Fatalf("row %d did not complete after sibling failure: %d", i, out[i])
		}
	}
}

// TestCancellation: cancelling mid-sweep lets in-flight rows finish,
// skips undispatched rows, and reports context.Canceled for them.
func TestCancellation(t *testing.T) {
	const n = 50
	ctx, cancel := context.WithCancel(context.Background())
	var completed atomic.Int64
	release := make(chan struct{})
	var once sync.Once
	out, err := Sweep[int]{Workers: 2}.Run(ctx, n, func(_ context.Context, row int) (int, error) {
		once.Do(func() {
			cancel() // cancel while the first dispatched rows are in flight
			close(release)
		})
		<-release
		completed.Add(1)
		return row + 1, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep error = %v, want context.Canceled", err)
	}
	done := completed.Load()
	if done == 0 || done == n {
		t.Fatalf("completed %d rows, want some but not all of %d", done, n)
	}
	var filled int64
	for _, v := range out {
		if v != 0 {
			filled++
		}
	}
	if filled != done {
		t.Fatalf("%d slots filled, %d rows completed", filled, done)
	}
}

// TestSlotOrderIndependentOfCompletionOrder: rows finishing out of
// order still land in their own slots.
func TestSlotOrderIndependentOfCompletionOrder(t *testing.T) {
	const n = 16
	gate := make(chan struct{})
	var started atomic.Int64
	out, err := Sweep[int]{Workers: n}.Run(context.Background(), n, func(_ context.Context, row int) (int, error) {
		if started.Add(1) == n {
			close(gate) // last starter releases everyone: reverse-ish completion
		}
		<-gate
		return row * 7, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*7 {
			t.Fatalf("slot %d = %d, want %d", i, v, i*7)
		}
	}
}

// TestProgressLines: progress output counts every row and reports an
// ETA, serialized line by line.
func TestProgressLines(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	_, err := Sweep[int]{Workers: 3, Progress: w, Label: "grid"}.Run(context.Background(), 5, func(_ context.Context, row int) (int, error) {
		return row, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d progress lines, want 5:\n%s", len(lines), buf.String())
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "grid: row ") || !strings.Contains(l, "/5 done") || !strings.Contains(l, "ETA") {
			t.Fatalf("malformed progress line %q", l)
		}
	}
	if !strings.Contains(lines[4], "row 5/5 done") {
		t.Fatalf("last line %q is not the 5/5 completion", lines[4])
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestSeedDeterministicAndDecorrelated: Seed is a pure function of
// (base, row), differs across rows and bases, and never collides with
// the base itself on small grids.
func TestSeedDeterministic(t *testing.T) {
	seen := map[uint64]int{}
	for row := 0; row < 1000; row++ {
		s := Seed(42, row)
		if s != Seed(42, row) {
			t.Fatalf("Seed(42, %d) not deterministic", row)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("Seed(42, %d) == Seed(42, %d)", row, prev)
		}
		seen[s] = row
	}
	if Seed(1, 0) == Seed(2, 0) {
		t.Fatal("different bases produced the same row-0 seed")
	}
}
