package sweep

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is the serving-side counterpart of Sweep: a long-lived bounded
// worker pool with a bounded admission queue. Where Sweep fans a fixed
// grid of rows out and returns, a Pool accepts work for the lifetime of
// a server and answers "no" when full instead of queueing without
// bound — the load-shedding admission control the plan service needs
// to stay responsive under overload.
//
// Admission is slot-counted: Workers jobs may execute concurrently and
// Queue more may wait, so exactly Workers+Queue jobs can be outstanding
// at once. TrySubmit never blocks; when every slot is taken (or the
// pool is draining) it reports false and the caller sheds the request.
// Drain closes admission, lets every accepted job finish, and
// returns — the SIGTERM path.
type Pool struct {
	jobs chan func()

	mu     sync.Mutex
	closed bool
	slots  int // admission slots remaining; a job holds one until it finishes

	wg     sync.WaitGroup
	queued atomic.Int64
	active atomic.Int64
}

// NewPool starts a pool of workers goroutines with a backlog of queue
// jobs. workers <= 0 means runtime.GOMAXPROCS(0); queue <= 0 means no
// backlog (only in-flight slots admit work).
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue < 0 {
		queue = 0
	}
	// The channel buffer equals the slot count, so an admitted job's
	// send can never block.
	p := &Pool{jobs: make(chan func(), workers+queue), slots: workers + queue}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				p.queued.Add(-1)
				p.active.Add(1)
				job()
				p.active.Add(-1)
				p.mu.Lock()
				p.slots++
				p.mu.Unlock()
			}
		}()
	}
	return p
}

// TrySubmit offers a job to the pool without blocking. It reports
// false — and does not run the job — when every admission slot is
// held or the pool is draining; the caller decides how to shed (the
// plan service answers 429).
func (p *Pool) TrySubmit(job func()) bool {
	p.mu.Lock()
	if p.closed || p.slots == 0 {
		p.mu.Unlock()
		return false
	}
	p.slots--
	p.queued.Add(1)
	p.jobs <- job // buffered to the slot count; cannot block
	p.mu.Unlock()
	return true
}

// Queued returns the number of accepted jobs not yet started.
func (p *Pool) Queued() int { return int(p.queued.Load()) }

// Active returns the number of jobs currently executing.
func (p *Pool) Active() int { return int(p.active.Load()) }

// Drain closes admission (subsequent TrySubmit reports false) and
// waits until every accepted job has finished, or until ctx expires —
// in which case the remaining jobs keep running on their goroutines
// but Drain stops waiting and returns the context's error. Drain is
// idempotent.
func (p *Pool) Drain(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
