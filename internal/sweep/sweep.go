// Package sweep fans independent experiment rows out across a worker
// pool while keeping the sweep's output byte-identical to serial
// execution.
//
// Every experiment in this repo — regression benches, chaos drop-rate
// tables, exascale scans, ablations — is a grid of hermetic simulation
// runs: each run builds its own discrete-event engine, machine, file
// system, and observability sinks, and shares no mutable state with
// its siblings. That makes the grid embarrassingly parallel, and this
// package supplies the three properties the bench layer needs on top
// of plain goroutines:
//
//   - Deterministic output order. Results land in a slot-per-row slice
//     indexed by row number, never by completion order, so a sweep's
//     output is independent of scheduling and of the worker count.
//   - Deterministic randomness. Seed derives a per-row RNG seed from
//     the sweep's base seed and the row index, so a row's random draws
//     are a pure function of its identity in the grid.
//   - Failure isolation. A row that fails does not cancel its
//     siblings; remaining rows still run and the per-row errors are
//     aggregated into one error once every dispatched row has settled.
//
// A Sweep with Workers == 1 executes rows strictly serially in row
// order — today's single-core behaviour — and is the reference the
// determinism tests compare parallel runs against.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
)

// Seed derives the deterministic RNG seed for one row of a sweep from
// the sweep's base seed and the row index. The derivation is a
// SplitMix64-style finalizer over the pair, so adjacent rows get
// decorrelated streams and the result is a pure function of
// (base, row) — independent of worker count and completion order.
func Seed(base uint64, row int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(row+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Sweep runs n independent rows through a bounded worker pool. The
// zero value is ready to use: all cores, no progress output.
type Sweep[T any] struct {
	// Workers is the number of rows executed concurrently. 0 means
	// runtime.GOMAXPROCS(0); 1 recovers strictly serial row-order
	// execution. The pool never spawns more workers than rows.
	Workers int
	// Progress, when non-nil, receives one line per completed row:
	// "label: row 12/48 done (detail), ETA 1.2s". Lines are written
	// from the collector only, so they never interleave mid-line.
	Progress io.Writer
	// Label prefixes progress lines; empty means no prefix.
	Label string
	// Describe, when non-nil, renders the per-row detail shown in the
	// row's completion line. It is called from the collector after the
	// row's result is published, with the zero T when the row failed.
	Describe func(row int, v T) string
}

// Run executes fn(ctx, row) for every row in [0, n) across the pool
// and returns the results in a slot-per-row slice: out[i] is row i's
// result regardless of completion order. A row's error does not stop
// its siblings — every remaining row still runs — and all failures
// come back joined into one error, each wrapped with its row number;
// out[i] holds the zero T for failed rows. Cancelling ctx stops
// dispatching new rows (in-flight rows finish); skipped rows report
// the context's error. n == 0 returns an empty slice and nil.
func (s Sweep[T]) Run(ctx context.Context, n int, fn func(ctx context.Context, row int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	errs := make([]error, n)
	ran := make([]bool, n)
	jobs := make(chan int)
	completions := make(chan int)
	dispatched := make(chan int, 1)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for row := range jobs {
				ran[row] = true
				if err := ctx.Err(); err != nil {
					// Dispatched before the cancel landed: skip the
					// work but still account for the row.
					errs[row] = err
				} else {
					out[row], errs[row] = fn(ctx, row)
				}
				completions <- row
			}
		}()
	}

	go func() {
		sent := 0
	dispatch:
		for i := 0; i < n; i++ {
			select {
			case jobs <- i:
				sent++
			case <-ctx.Done():
				break dispatch
			}
		}
		close(jobs)
		dispatched <- sent
	}()

	// Collect. The number of completions to expect is only known once
	// the dispatcher finishes (cancellation can cut it short), so the
	// collector listens for both until the counts meet.
	start := time.Now()
	want := -1
	done := 0
	for want < 0 || done < want {
		select {
		case sent := <-dispatched:
			want = sent
		case row := <-completions:
			done++
			s.progress(row, done, n, start, out[row], errs[row])
		}
	}
	wg.Wait()

	// Rows the dispatcher never handed out exist only here; stamp them
	// with the cancellation cause after all workers have exited.
	if err := ctx.Err(); err != nil {
		for i := range ran {
			if !ran[i] && errs[i] == nil {
				errs[i] = err
			}
		}
	}
	var failed []error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Errorf("row %d: %w", i, err))
		}
	}
	return out, errors.Join(failed...)
}

// progress emits one row-completion line with a naive ETA: remaining
// rows at the observed mean wall-clock rate. Host time is only used
// for display; nothing in the results depends on it.
func (s Sweep[T]) progress(row, done, n int, start time.Time, v T, err error) {
	if s.Progress == nil {
		return
	}
	prefix := ""
	if s.Label != "" {
		prefix = s.Label + ": "
	}
	elapsed := time.Since(start)
	eta := time.Duration(float64(elapsed) / float64(done) * float64(n-done)).Round(10 * time.Millisecond)
	detail := ""
	switch {
	case err != nil:
		detail = fmt.Sprintf(" (FAILED: %v)", err)
	case s.Describe != nil:
		detail = " (" + s.Describe(row, v) + ")"
	}
	fmt.Fprintf(s.Progress, "%srow %d/%d done%s, ETA %s\n", prefix, done, n, detail, eta)
}
