package sweep

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsJobs checks that every accepted job executes exactly once.
func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(4, 16)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		if !p.TrySubmit(func() { ran.Add(1); wg.Done() }) {
			wg.Done()
			t.Fatalf("submit %d rejected with a 16-deep queue and 4 workers", i)
		}
	}
	wg.Wait()
	if got := ran.Load(); got != 20 {
		t.Fatalf("ran %d of 20 jobs", got)
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestPoolShedsWhenFull fills the single worker and the backlog, then
// checks that the next submit is rejected rather than queued or run.
func TestPoolShedsWhenFull(t *testing.T) {
	p := NewPool(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	if !p.TrySubmit(func() { close(started); <-block }) {
		t.Fatal("first submit rejected")
	}
	<-started // worker occupied
	if !p.TrySubmit(func() {}) {
		t.Fatal("backlog slot rejected")
	}
	if p.TrySubmit(func() { t.Error("shed job must not run") }) {
		t.Fatal("submit accepted with worker busy and backlog full")
	}
	if got := p.Queued(); got != 1 {
		t.Fatalf("Queued() = %d, want 1", got)
	}
	if got := p.Active(); got != 1 {
		t.Fatalf("Active() = %d, want 1", got)
	}
	close(block)
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestPoolDrain checks the shutdown contract: Drain waits for accepted
// jobs, rejects new ones, and is idempotent.
func TestPoolDrain(t *testing.T) {
	p := NewPool(2, 4)
	var ran atomic.Int64
	for i := 0; i < 6; i++ {
		if !p.TrySubmit(func() { time.Sleep(5 * time.Millisecond); ran.Add(1) }) {
			t.Fatalf("submit %d rejected", i)
		}
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := ran.Load(); got != 6 {
		t.Fatalf("drain returned with %d of 6 jobs done", got)
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("submit accepted after drain")
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestPoolDrainTimeout checks that a stuck job makes Drain return the
// context error instead of hanging.
func TestPoolDrainTimeout(t *testing.T) {
	p := NewPool(1, 0)
	block := make(chan struct{})
	started := make(chan struct{})
	if !p.TrySubmit(func() { close(started); <-block }) {
		t.Fatal("submit rejected")
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := p.Drain(ctx); err == nil {
		t.Fatal("drain returned nil with a job stuck")
	}
	close(block)
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("final drain: %v", err)
	}
}
