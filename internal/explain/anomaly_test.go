package explain

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// TestDetectStraggler plants one synthetic straggler among uniform
// ranks and expects exactly it to be flagged.
func TestDetectStraggler(t *testing.T) {
	sum := &obs.Summary{PerRank: map[int]map[obs.Phase]float64{
		0: {obs.PhaseIO: 1.0},
		1: {obs.PhaseIO: 1.1},
		2: {obs.PhaseIO: 0.9},
		3: {obs.PhaseIO: 9.0},       // the straggler: 9x the median
		4: {obs.PhaseExchange: 5.0}, // no I/O at all — must not participate
	}}
	got := DetectAnomalies(sum, nil, AnomalyConfig{})
	if len(got) != 1 || got[0].Kind != AnomalyStraggler {
		t.Fatalf("anomalies = %+v, want one straggler", got)
	}
	if !strings.Contains(got[0].Detail, "rank 3") {
		t.Fatalf("wrong rank flagged: %s", got[0].Detail)
	}
	// With a loose threshold nothing is flagged.
	if got := DetectAnomalies(sum, nil, AnomalyConfig{StragglerK: 20}); len(got) != 0 {
		t.Fatalf("loose threshold still flagged %+v", got)
	}
}

func TestDetectNearCeiling(t *testing.T) {
	events := []Event{
		{Kind: KindMemTL, Node: 0, Round: 0, Used: 40, Peak: 50, Cap: 100},
		{Kind: KindMemTL, Node: 1, Round: 0, Used: 80, Peak: 95, Cap: 100},
		{Kind: KindMemTL, Node: 2, Round: 0, Used: 10, Peak: 10, Cap: 0}, // no capacity sample
	}
	got := DetectAnomalies(nil, events, AnomalyConfig{})
	if len(got) != 1 || got[0].Kind != AnomalyNearCeiling {
		t.Fatalf("anomalies = %+v, want one near-ceiling node", got)
	}
	if !strings.Contains(got[0].Detail, "node 1") {
		t.Fatalf("wrong node flagged: %s", got[0].Detail)
	}
}

func TestDetectImbalance(t *testing.T) {
	sum := &obs.Summary{GroupBytes: map[int]int64{0: 100, 1: 100, 2: 1000}}
	got := DetectAnomalies(sum, nil, AnomalyConfig{})
	if len(got) != 1 || got[0].Kind != AnomalyImbalance {
		t.Fatalf("anomalies = %+v, want one imbalanced group", got)
	}
	if !strings.Contains(got[0].Detail, "group 2") {
		t.Fatalf("wrong group flagged: %s", got[0].Detail)
	}
	// One group alone can never be imbalanced.
	solo := &obs.Summary{GroupBytes: map[int]int64{0: 1000}}
	if got := DetectAnomalies(solo, nil, AnomalyConfig{}); len(got) != 0 {
		t.Fatalf("solo group flagged: %+v", got)
	}
}

func TestDetectAnomaliesNilInputs(t *testing.T) {
	if got := DetectAnomalies(nil, nil, AnomalyConfig{}); len(got) != 0 {
		t.Fatalf("nil inputs produced %+v", got)
	}
}

func TestCountAnomalies(t *testing.T) {
	reg := metrics.New()
	CountAnomalies(reg, []Anomaly{
		{Kind: AnomalyStraggler, Detail: "a"},
		{Kind: AnomalyStraggler, Detail: "b"},
		{Kind: AnomalyImbalance, Detail: "c"},
	})
	snap := reg.Snapshot()
	straggler, _ := snap.Get("mccio_anomalies_total", map[string]string{"kind": AnomalyStraggler})
	imbalance, _ := snap.Get("mccio_anomalies_total", map[string]string{"kind": AnomalyImbalance})
	if straggler != 2 || imbalance != 1 {
		t.Fatalf("counter values straggler=%v imbalance=%v, want 2 and 1", straggler, imbalance)
	}
	// Nil registry must be a no-op, not a panic.
	CountAnomalies(nil, []Anomaly{{Kind: AnomalyStraggler}})
}
