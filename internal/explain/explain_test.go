package explain

import (
	"bytes"
	"strings"
	"testing"
)

// sampleEvents builds a small but representative decision log: one run
// marker, a plan with two groups, a tree with one bisection, a remerge
// with its candidate audit, a placement, and a memory sample.
func sampleEvents() []Event {
	return []Event{
		{Kind: KindRun, Group: -1, Key: "mem=4MB/mccio/write"},
		{Kind: KindGroups, Group: -1, Op: "write", TotalBytes: 1 << 20, Msggroup: 1 << 19,
			Groups: []GroupInfo{{First: 0, Last: 11, Nodes: 1, Bytes: 1 << 19}, {First: 12, Last: 23, Nodes: 1, Bytes: 1 << 19}}},
		{Kind: KindTree, Group: 0, Lo: 0, Hi: 1 << 19, Data: 1 << 19, Leaves: 2, Msgind: 1 << 18, MaxAggs: 2},
		{Kind: KindBisect, Group: 0, Lo: 0, Hi: 1 << 19, Data: 1 << 19, Cut: 1 << 18, LeftData: 1 << 18, RightData: 1 << 18},
		{Kind: KindRemerge, Group: 0, Lo: 1 << 18, Hi: 1 << 19, Data: 1 << 18,
			Variant: VariantSibling, Reason: "no candidate can offer Memmin=1048576 bytes",
			Threshold: 1 << 20, BestShare: 1 << 18, Node: 0,
			Candidates: []Candidate{{Node: 0, Avail: 1 << 18, Share: 1 << 18, Aggs: 1}},
			TakerLo:    0, TakerHi: 1 << 19},
		{Kind: KindPlace, Group: 0, Lo: 0, Hi: 1 << 19, Data: 1 << 19,
			Node: 0, Rank: 0, Buf: 1 << 19, Avail: 1 << 20, Headroom: 1 << 19,
			RunnersUp: []Candidate{{Node: 1, Avail: 1 << 18}}},
		{Kind: KindMemTL, Group: -1, Node: 0, Round: 0, Used: 1 << 19, Peak: 1 << 19, Cap: 1 << 21},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := sampleEvents()
	var buf bytes.Buffer
	if err := WriteJSONLEvents(&buf, in); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), Schema) {
		t.Fatalf("serialized log missing schema header:\n%s", buf.String())
	}
	out, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip returned %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Kind != in[i].Kind || out[i].Group != in[i].Group {
			t.Errorf("event %d: got kind=%q group=%d, want kind=%q group=%d",
				i, out[i].Kind, out[i].Group, in[i].Kind, in[i].Group)
		}
	}
	re := out[4]
	if re.Kind != KindRemerge || re.Reason == "" || len(re.Candidates) != 1 || re.Candidates[0].Avail != 1<<18 {
		t.Errorf("remerge payload mangled: %+v", re)
	}
}

func TestParseJSONLTruncatedFinalLine(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONLEvents(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	whole := buf.String()
	// Chop the final record mid-JSON, as an interrupted writer would.
	cut := strings.LastIndexByte(strings.TrimRight(whole, "\n"), '{') + 5
	events, err := ParseJSONL(strings.NewReader(whole[:cut]))
	if err != nil {
		t.Fatalf("truncated final line should be tolerated: %v", err)
	}
	if len(events) != len(sampleEvents())-1 {
		t.Fatalf("got %d events from truncated log, want %d", len(events), len(sampleEvents())-1)
	}
}

func TestParseJSONLMidStreamGarbage(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONLEvents(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(buf.String(), "\n")
	lines[2] = "{this is not json}\n"
	if _, err := ParseJSONL(strings.NewReader(strings.Join(lines, ""))); err == nil {
		t.Fatal("garbage mid-stream should be an error, not tolerated as truncation")
	}
}

func TestParseJSONLSchemaMismatch(t *testing.T) {
	in := `{"kind":"header","t":0,"group":-1,"schema":"mccio-explain/999"}` + "\n"
	if _, err := ParseJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("unsupported schema should be rejected")
	}
}

func TestParseJSONLKindlessRecord(t *testing.T) {
	in := `{"t":0,"group":-1}` + "\n" + `{"kind":"run","t":0,"group":-1}` + "\n"
	if _, err := ParseJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("record without kind should be rejected")
	}
}

func TestRecorderClockStamping(t *testing.T) {
	r := NewRecorder()
	now := 1.5
	r.SetClock(func() float64 { return now })
	r.Bisect(0, 0, 100, 100, 50, 50)
	now = 2.5
	r.MemSample(0, 0, 10, 20, 30)
	ev := r.Events()
	if ev[0].T != 1.5 || ev[1].T != 2.5 {
		t.Fatalf("timestamps %v, %v; want 1.5, 2.5", ev[0].T, ev[1].T)
	}
	// An event carrying its own stamp keeps it.
	r.Record(Event{Kind: KindRun, T: 9})
	if got := r.Events()[2].T; got != 9 {
		t.Fatalf("pre-stamped event rewritten to %v", got)
	}
}

func TestRecorderAppendAndReset(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	a.Run("row-0")
	b.Run("row-1")
	b.Bisect(0, 0, 10, 10, 5, 5)
	merged := NewRecorder()
	merged.Append(a.Events())
	merged.Append(b.Events())
	if merged.Len() != 3 {
		t.Fatalf("merged %d events, want 3", merged.Len())
	}
	if ev := merged.Events(); ev[0].Key != "row-0" || ev[1].Key != "row-1" {
		t.Fatalf("row order not preserved: %+v", ev[:2])
	}
	merged.Reset()
	if merged.Len() != 0 {
		t.Fatalf("reset left %d events", merged.Len())
	}
}

// TestNilRecorder proves the disabled API surface is a no-op: every
// method on a nil *Recorder returns without panicking.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.SetClock(func() float64 { return 0 })
	r.Record(Event{Kind: KindRun})
	r.Run("x")
	r.Bisect(0, 0, 1, 1, 0, 0)
	r.MemSample(0, 0, 0, 0, 0)
	r.Append([]Event{{Kind: KindRun}})
	r.Reset()
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder holds events")
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestDisabledRecorderAllocs is the acceptance gate in test form: the
// scalar-only record paths on a disabled (nil) recorder allocate
// nothing.
func TestDisabledRecorderAllocs(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.Bisect(3, 0, 1<<20, 1<<20, 1<<19, 1<<19)
		r.MemSample(1, 2, 100, 200, 300)
		if r.Enabled() {
			t.Fatal("unreachable")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled recorder allocates %v per op, want 0", allocs)
	}
}

// BenchmarkRecorderDisabled must report 0 allocs/op: the planner and
// round engine call these unconditionally on every run.
func BenchmarkRecorderDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Bisect(0, 0, 1<<20, 1<<20, 1<<19, 1<<19)
		r.MemSample(0, i, 100, 200, 300)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sampleEvents())
	want := Summary{Runs: 1, Plans: 1, Groups: 2, Bisections: 1,
		Remerges: 1, RemergeSibling: 1, Placements: 1, MemSamples: 1}
	if s != want {
		t.Fatalf("summary = %+v, want %+v", s, want)
	}
	var buf bytes.Buffer
	s.WriteText(&buf)
	for _, want := range []string{"1 plan(s), 2 group(s)", "remerges:          1 (1 sibling-takeover, 0 dfs)"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("summary text missing %q:\n%s", want, buf.String())
		}
	}
}
