package explain

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// Anomaly kinds. Kind doubles as the metrics label value.
const (
	// AnomalyStraggler flags a rank whose I/O phase time exceeds
	// StragglerK times the median across I/O-active ranks.
	AnomalyStraggler = "straggler"
	// AnomalyNearCeiling flags a node whose ledger peaked at or above
	// CeilingFrac of its sampled memory capacity.
	AnomalyNearCeiling = "mem-near-ceiling"
	// AnomalyImbalance flags shuffle-byte imbalance across aggregation
	// groups: the heaviest group moved more than ImbalanceFactor times
	// the mean.
	AnomalyImbalance = "shuffle-imbalance"
)

// Anomaly is one detected irregularity in a run.
type Anomaly struct {
	// Kind is one of the Anomaly* constants.
	Kind string `json:"kind"`
	// Detail is the human-readable finding with the compared numbers.
	Detail string `json:"detail"`
}

// AnomalyConfig tunes the detector thresholds; zero fields take the
// defaults (StragglerK 3, CeilingFrac 0.9, ImbalanceFactor 2).
type AnomalyConfig struct {
	// StragglerK is the multiple of the median I/O time beyond which a
	// rank counts as a straggler.
	StragglerK float64
	// CeilingFrac is the used/capacity fraction at which a node counts
	// as near its memory ceiling.
	CeilingFrac float64
	// ImbalanceFactor is the max/mean shuffle-byte ratio beyond which
	// groups count as imbalanced.
	ImbalanceFactor float64
}

// withDefaults fills zero thresholds.
func (c AnomalyConfig) withDefaults() AnomalyConfig {
	if c.StragglerK <= 0 {
		c.StragglerK = 3
	}
	if c.CeilingFrac <= 0 {
		c.CeilingFrac = 0.9
	}
	if c.ImbalanceFactor <= 0 {
		c.ImbalanceFactor = 2
	}
	return c
}

// DetectAnomalies scans a phase summary and a decision log's memory
// timeline for stragglers, near-ceiling aggregators, and shuffle
// imbalance. Either input may be nil/empty; findings are returned in a
// deterministic order (kind, then rank/node/group).
func DetectAnomalies(sum *obs.Summary, events []Event, cfg AnomalyConfig) []Anomaly {
	cfg = cfg.withDefaults()
	var out []Anomaly

	// Stragglers: ranks whose PhaseIO time dwarfs the median. Only
	// I/O-active ranks participate — non-aggregators do no I/O at all.
	if sum != nil {
		type rankIO struct {
			rank int
			sec  float64
		}
		var active []rankIO
		for rank, phases := range sum.PerRank {
			if sec := phases[obs.PhaseIO]; sec > 0 {
				active = append(active, rankIO{rank, sec})
			}
		}
		if len(active) >= 2 {
			sort.Slice(active, func(i, j int) bool { return active[i].sec < active[j].sec })
			median := active[len(active)/2].sec
			if len(active)%2 == 0 {
				median = (active[len(active)/2-1].sec + active[len(active)/2].sec) / 2
			}
			var slow []rankIO
			for _, a := range active {
				if median > 0 && a.sec > cfg.StragglerK*median {
					slow = append(slow, a)
				}
			}
			sort.Slice(slow, func(i, j int) bool { return slow[i].rank < slow[j].rank })
			for _, s := range slow {
				out = append(out, Anomaly{Kind: AnomalyStraggler,
					Detail: fmt.Sprintf("rank %d spent %.6fs in io (median %.6fs, threshold %.1fx)", s.rank, s.sec, median, cfg.StragglerK)})
			}
		}
	}

	// Near-ceiling aggregators: from the memory timeline, which carries
	// capacity alongside the samples.
	peaks := map[int][2]int64{} // node -> {peak, capacity}
	var nodes []int
	for _, e := range events {
		if e.Kind != KindMemTL || e.Cap <= 0 {
			continue
		}
		p, seen := peaks[e.Node]
		if !seen {
			nodes = append(nodes, e.Node)
		}
		hi := e.Peak
		if e.Used > hi {
			hi = e.Used
		}
		if hi > p[0] {
			p[0] = hi
		}
		if e.Cap > p[1] {
			p[1] = e.Cap
		}
		peaks[e.Node] = p
	}
	sort.Ints(nodes)
	for _, node := range nodes {
		p := peaks[node]
		if frac := float64(p[0]) / float64(p[1]); frac >= cfg.CeilingFrac {
			out = append(out, Anomaly{Kind: AnomalyNearCeiling,
				Detail: fmt.Sprintf("node %d peaked at %d of %d bytes (%.0f%% of capacity)", node, p[0], p[1], frac*100)})
		}
	}

	// Shuffle imbalance across groups.
	if sum != nil && len(sum.GroupBytes) >= 2 {
		var groups []int
		var total int64
		for g, b := range sum.GroupBytes {
			groups = append(groups, g)
			total += b
		}
		sort.Ints(groups)
		mean := float64(total) / float64(len(groups))
		if mean > 0 {
			for _, g := range groups {
				if float64(sum.GroupBytes[g]) > cfg.ImbalanceFactor*mean {
					out = append(out, Anomaly{Kind: AnomalyImbalance,
						Detail: fmt.Sprintf("group %d shuffled %d bytes (mean %.0f, threshold %.1fx)", g, sum.GroupBytes[g], mean, cfg.ImbalanceFactor)})
				}
			}
		}
	}
	return out
}

// CountAnomalies bumps the mccio_anomalies_total counter per finding,
// labelled by kind. Nil-registry safe.
func CountAnomalies(reg *metrics.Registry, anomalies []Anomaly) {
	for _, a := range anomalies {
		reg.Counter("mccio_anomalies_total",
			"Anomalies flagged by the run detector (stragglers, near-ceiling nodes, shuffle imbalance).",
			"kind", a.Kind).Add(1)
	}
}
