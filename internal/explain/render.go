package explain

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// runLog is one simulation run's slice of the decision log: its plans
// in planning order plus the memory-timeline samples.
type runLog struct {
	key   string
	plans []*planLog
	memtl []Event
}

// planLog is one planned collective: the group-division event and the
// per-group decision streams (tree, bisects, remerges, placements) in
// recording order.
type planLog struct {
	groups   Event
	perGroup map[int][]Event
	order    []int // groups in first-appearance order
}

// splitRuns partitions a decision log at its KindRun markers; events
// before the first marker form an implicit unnamed run.
func splitRuns(events []Event) []*runLog {
	var runs []*runLog
	cur := func() *runLog {
		if len(runs) == 0 {
			runs = append(runs, &runLog{})
		}
		return runs[len(runs)-1]
	}
	for _, e := range events {
		switch e.Kind {
		case KindRun:
			runs = append(runs, &runLog{key: e.Key})
		case KindGroups:
			r := cur()
			r.plans = append(r.plans, &planLog{groups: e, perGroup: map[int][]Event{}})
		case KindTree, KindBisect, KindRemerge, KindPlace, KindLeader:
			r := cur()
			if len(r.plans) == 0 {
				// Tolerate a log whose group-division line was truncated
				// away: synthesize an empty plan so the events still render.
				r.plans = append(r.plans, &planLog{groups: Event{Kind: KindGroups, Group: -1}, perGroup: map[int][]Event{}})
			}
			p := r.plans[len(r.plans)-1]
			if _, ok := p.perGroup[e.Group]; !ok {
				p.order = append(p.order, e.Group)
			}
			p.perGroup[e.Group] = append(p.perGroup[e.Group], e)
		case KindMemTL:
			cur().memtl = append(cur().memtl, e)
		}
	}
	// Drop runs that carry nothing renderable.
	out := runs[:0]
	for _, r := range runs {
		if len(r.plans) > 0 || len(r.memtl) > 0 {
			out = append(out, r)
		}
	}
	return out
}

// renderNode is a reconstructed partition-tree vertex.
type renderNode struct {
	lo, hi, data int64
	left, right  *renderNode
	remerge      *Event // remerge that removed this exact extent, if any
	place        *Event // placement whose domain is exactly this extent
	merged       *Event // placement of a merged domain covering this leaf
}

// rebuildTree replays a group's bisect events into the built partition
// tree and attaches remerge/placement annotations. Returns nil when the
// group has no tree or bisect events at all.
func rebuildTree(events []Event) *renderNode {
	var root *renderNode
	byExtent := map[[2]int64]*renderNode{}
	node := func(lo, hi, data int64) *renderNode {
		key := [2]int64{lo, hi}
		if n := byExtent[key]; n != nil {
			return n
		}
		n := &renderNode{lo: lo, hi: hi, data: data}
		byExtent[key] = n
		return n
	}
	for _, e := range events {
		switch e.Kind {
		case KindTree:
			if root == nil {
				root = node(e.Lo, e.Hi, e.Data)
			}
		case KindBisect:
			n := node(e.Lo, e.Hi, e.Data)
			if root == nil {
				root = n
			}
			n.left = node(e.Lo, e.Cut, e.LeftData)
			n.right = node(e.Cut, e.Hi, e.RightData)
		}
	}
	if root == nil {
		return nil
	}
	// Annotate. Remerges and placements of post-remerge (stretched)
	// extents may not match a built vertex exactly; those fall through
	// to the containment pass below.
	var leaves []*renderNode
	var collect func(n *renderNode)
	collect = func(n *renderNode) {
		if n.left == nil {
			leaves = append(leaves, n)
			return
		}
		collect(n.left)
		collect(n.right)
	}
	collect(root)
	for i := range events {
		e := &events[i]
		switch e.Kind {
		case KindRemerge:
			if n := byExtent[[2]int64{e.Lo, e.Hi}]; n != nil {
				n.remerge = e
			}
		case KindPlace:
			if n := byExtent[[2]int64{e.Lo, e.Hi}]; n != nil {
				n.place = e
				continue
			}
			// A merged domain: mark every built leaf it covers.
			for _, l := range leaves {
				if l.lo >= e.Lo && l.hi <= e.Hi && l.place == nil {
					l.merged = e
				}
			}
		}
	}
	return root
}

// mbs formats a byte count as megabytes for annotations.
func mbs(b int64) string { return fmt.Sprintf("%.2fMB", float64(b)/1e6) }

// writeTree renders the reconstructed tree as indented ASCII with
// remerge reasons and placements inline.
func writeTree(w io.Writer, n *renderNode, depth int) {
	indent := strings.Repeat("  ", depth)
	kind := "leaf"
	if n.left != nil {
		kind = "node"
	}
	ann := ""
	switch {
	case n.remerge != nil:
		e := n.remerge
		ann = fmt.Sprintf("  <- remerged (%s) into [%d,%d): %s", e.Variant, e.TakerLo, e.TakerHi, e.Reason)
	case n.place != nil:
		e := n.place
		ann = fmt.Sprintf("  -> agg rank %d @ node %d, buf %s, headroom %s", e.Rank, e.Node, mbs(e.Buf), mbs(e.Headroom))
		if e.Retry {
			ann += " (fell back past data-owning hosts)"
		}
	case n.merged != nil:
		e := n.merged
		ann = fmt.Sprintf("  -> part of merged domain [%d,%d) -> agg rank %d @ node %d", e.Lo, e.Hi, e.Rank, e.Node)
	}
	fmt.Fprintf(w, "%s%s[%d,%d) data=%d%s\n", indent, kind, n.lo, n.hi, n.data, ann)
	if n.left != nil {
		writeTree(w, n.left, depth+1)
		writeTree(w, n.right, depth+1)
	}
}

// RenderExplain renders a decision log as annotated ASCII partition
// trees — every remerge inline with its reason, every placement with
// its winner and headroom — followed by a per-decision "why" table.
func RenderExplain(w io.Writer, events []Event) {
	runs := splitRuns(events)
	if len(runs) == 0 {
		fmt.Fprintln(w, "no planner decisions in log")
		return
	}
	for ri, run := range runs {
		if run.key != "" {
			fmt.Fprintf(w, "run %s\n", run.key)
		} else if len(runs) > 1 {
			fmt.Fprintf(w, "run %d\n", ri)
		}
		for pi, p := range run.plans {
			g := p.groups
			fmt.Fprintf(w, "plan %d", pi)
			if g.Op != "" {
				fmt.Fprintf(w, " (%s)", g.Op)
			}
			fmt.Fprintf(w, ": %s over %d group(s), Msg_group=%d\n", mbs(g.TotalBytes), len(g.Groups), g.Msggroup)
			for gi, info := range g.Groups {
				fmt.Fprintf(w, "  group %d: ranks [%d..%d] on %d node(s), %s requested\n",
					gi, info.First, info.Last, info.Nodes, mbs(info.Bytes))
				writeGroupDecisions(w, p.perGroup[gi])
			}
			// Groups that recorded decisions without a matching division
			// entry (e.g. a log with the header truncated away).
			for _, gi := range p.order {
				if gi >= 0 && gi < len(g.Groups) {
					continue
				}
				fmt.Fprintf(w, "  group %d:\n", gi)
				writeGroupDecisions(w, p.perGroup[gi])
			}
		}
		writeWhyTable(w, run)
		fmt.Fprintln(w)
	}
}

// writeGroupDecisions renders one group's tree and decision lines.
func writeGroupDecisions(w io.Writer, events []Event) {
	var tree *Event
	for i := range events {
		if events[i].Kind == KindTree {
			tree = &events[i]
			break
		}
	}
	root := rebuildTree(events)
	if root == nil {
		fmt.Fprintf(w, "    (no partition tree: group holds no data)\n")
		return
	}
	if tree != nil {
		fmt.Fprintf(w, "    partition tree: %d leaves built, Msg_ind=%d, max aggregators=%d\n",
			tree.Leaves, tree.Msgind, tree.MaxAggs)
	}
	var b strings.Builder
	writeTree(&b, root, 0)
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		fmt.Fprintf(w, "    %s\n", line)
	}
}

// writeWhyTable prints one line per remerge and placement decision with
// the quantities the rule compared.
func writeWhyTable(w io.Writer, run *runLog) {
	var rows []string
	for _, p := range run.plans {
		gis := append([]int(nil), p.order...)
		sort.Ints(gis)
		for _, gi := range gis {
			for _, e := range p.perGroup[gi] {
				switch e.Kind {
				case KindRemerge:
					cands := make([]string, len(e.Candidates))
					for i, c := range e.Candidates {
						cands[i] = fmt.Sprintf("node %d Mem_avl=%d share=%d", c.Node, c.Avail, c.Share)
					}
					rows = append(rows, fmt.Sprintf("  remerge  g%-3d [%d,%d) %-17s threshold=%d best_share=%d candidates: %s",
						e.Group, e.Lo, e.Hi, e.Variant, e.Threshold, e.BestShare, strings.Join(cands, "; ")))
				case KindPlace:
					extra := ""
					if len(e.RunnersUp) > 0 {
						ups := make([]string, len(e.RunnersUp))
						for i, c := range e.RunnersUp {
							ups[i] = fmt.Sprintf("node %d Mem_avl=%d", c.Node, c.Avail)
						}
						extra = " runners-up: " + strings.Join(ups, "; ")
					}
					if e.Retry {
						extra += " [retry]"
					}
					rows = append(rows, fmt.Sprintf("  place    g%-3d [%d,%d) -> rank %d @ node %d buf=%d avail=%d headroom=%d%s",
						e.Group, e.Lo, e.Hi, e.Rank, e.Node, e.Buf, e.Avail, e.Headroom, extra))
				case KindLeader:
					extra := ""
					if len(e.RunnersUp) > 0 {
						ups := make([]string, len(e.RunnersUp))
						for i, c := range e.RunnersUp {
							ups[i] = fmt.Sprintf("rank %d Mem_avl=%d score=%d", c.Rank, c.Avail, c.Share)
						}
						extra = " runners-up: " + strings.Join(ups, "; ")
					}
					rows = append(rows, fmt.Sprintf("  leader   g%-3d node %d -> rank %d Mem_avl=%d score=%d%s",
						e.Group, e.Node, e.Rank, e.Avail, e.Score, extra))
				}
			}
		}
	}
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "why (%d decision(s)):\n", len(rows))
	for _, r := range rows {
		fmt.Fprintln(w, r)
	}
}

// memShades maps a utilization fraction to a heatmap cell, light to
// heavy; the last two shades mean the node is close to its ceiling.
const memShades = " .:-=+*#%@"

// shadeOf returns the heatmap character for used/cap.
func shadeOf(used, capacity int64) byte {
	if capacity <= 0 {
		return '?'
	}
	frac := float64(used) / float64(capacity)
	idx := int(frac * float64(len(memShades)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(memShades) {
		idx = len(memShades) - 1
	}
	return memShades[idx]
}

// RenderMemTL renders the per-aggregator memory timelines as a terminal
// heatmap: one row per node, one column per round, shaded by the
// node's peak ledger utilization observed at that round boundary.
func RenderMemTL(w io.Writer, events []Event) {
	runs := splitRuns(events)
	any := false
	for ri, run := range runs {
		if len(run.memtl) == 0 {
			continue
		}
		any = true
		if run.key != "" {
			fmt.Fprintf(w, "run %s\n", run.key)
		} else if len(runs) > 1 {
			fmt.Fprintf(w, "run %d\n", ri)
		}
		type cell struct{ used, peak, capacity int64 }
		grid := map[int]map[int]*cell{} // node -> round -> sample
		maxRound := 0
		var nodes []int
		for _, e := range run.memtl {
			if grid[e.Node] == nil {
				grid[e.Node] = map[int]*cell{}
				nodes = append(nodes, e.Node)
			}
			c := grid[e.Node][e.Round]
			if c == nil {
				c = &cell{}
				grid[e.Node][e.Round] = c
			}
			if e.Used > c.used {
				c.used = e.Used
			}
			if e.Peak > c.peak {
				c.peak = e.Peak
			}
			if e.Cap > c.capacity {
				c.capacity = e.Cap
			}
			if e.Round > maxRound {
				maxRound = e.Round
			}
		}
		sort.Ints(nodes)
		fmt.Fprintf(w, "memory timeline (%d node(s) x %d round(s)); shade = used/capacity [%s]\n",
			len(nodes), maxRound+1, memShades)
		for _, node := range nodes {
			var line strings.Builder
			var peak, capacity int64
			for r := 0; r <= maxRound; r++ {
				c := grid[node][r]
				if c == nil {
					line.WriteByte(' ')
					continue
				}
				line.WriteByte(shadeOf(c.used, c.capacity))
				if c.peak > peak {
					peak = c.peak
				}
				if c.capacity > capacity {
					capacity = c.capacity
				}
			}
			util := 0.0
			if capacity > 0 {
				util = float64(peak) / float64(capacity) * 100
			}
			fmt.Fprintf(w, "node %3d |%s| peak %s / %s (%.0f%%)\n",
				node, line.String(), mbs(peak), mbs(capacity), util)
		}
		fmt.Fprintln(w)
	}
	if !any {
		fmt.Fprintln(w, "no memory-timeline samples in log")
	}
}
