package explain

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderExplainAnnotatedTree(t *testing.T) {
	var buf bytes.Buffer
	RenderExplain(&buf, sampleEvents())
	out := buf.String()
	for _, want := range []string{
		"run mem=4MB/mccio/write",
		"plan 0 (write)",
		"group 0: ranks [0..11]",
		"partition tree: 2 leaves built",
		"node[0,524288) data=524288  -> agg rank 0 @ node 0, buf 0.52MB, headroom 0.52MB",
		"leaf[0,262144)",
		"<- remerged (sibling-takeover) into [0,524288): no candidate can offer",
		"why (2 decision(s)):",
		"remerge  g0   [262144,524288) sibling-takeover",
		"candidates: node 0 Mem_avl=262144 share=262144",
		"place    g0   [0,524288) -> rank 0 @ node 0",
		"runners-up: node 1 Mem_avl=262144",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered explain missing %q:\n%s", want, out)
		}
	}
}

// TestRenderExplainMergedDomain covers the containment fallback: a
// placement whose extent was stretched by a directional-DFS remerge
// matches no built vertex, so the leaves it covers are marked as part
// of the merged domain.
func TestRenderExplainMergedDomain(t *testing.T) {
	events := []Event{
		{Kind: KindGroups, Group: -1, Op: "write", TotalBytes: 300, Msggroup: 300,
			Groups: []GroupInfo{{First: 0, Last: 3, Nodes: 1, Bytes: 300}}},
		{Kind: KindTree, Group: 0, Lo: 0, Hi: 300, Data: 300, Leaves: 3, Msgind: 100, MaxAggs: 3},
		{Kind: KindBisect, Group: 0, Lo: 0, Hi: 300, Data: 300, Cut: 100, LeftData: 100, RightData: 200},
		{Kind: KindBisect, Group: 0, Lo: 100, Hi: 300, Data: 200, Cut: 200, LeftData: 100, RightData: 100},
		// The stretched domain [0,200) spans the root cut, so it covers
		// two built leaves but is itself no vertex of the tree.
		{Kind: KindPlace, Group: 0, Lo: 0, Hi: 200, Data: 200, Node: 1, Rank: 1, Buf: 200, Headroom: 50},
	}
	var buf bytes.Buffer
	RenderExplain(&buf, events)
	out := buf.String()
	for _, want := range []string{
		"leaf[0,100) data=100  -> part of merged domain [0,200) -> agg rank 1 @ node 1",
		"leaf[100,200) data=100  -> part of merged domain [0,200) -> agg rank 1 @ node 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged-domain render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderExplainEmpty(t *testing.T) {
	var buf bytes.Buffer
	RenderExplain(&buf, nil)
	if !strings.Contains(buf.String(), "no planner decisions") {
		t.Fatalf("empty log render: %q", buf.String())
	}
}

// TestRenderExplainTruncatedLog proves the renderer copes with a log
// whose group-division line is missing (truncated file): the decision
// events still render under a synthesized plan.
func TestRenderExplainTruncatedLog(t *testing.T) {
	ev := sampleEvents()[2:] // drop run marker and groups line
	var buf bytes.Buffer
	RenderExplain(&buf, ev)
	out := buf.String()
	if !strings.Contains(out, "group 0:") || !strings.Contains(out, "remerged (sibling-takeover)") {
		t.Fatalf("truncated log lost its decisions:\n%s", out)
	}
}

func TestRenderMemTL(t *testing.T) {
	events := []Event{
		{Kind: KindMemTL, Group: -1, Node: 0, Round: 0, Used: 0, Peak: 0, Cap: 100},
		{Kind: KindMemTL, Group: -1, Node: 0, Round: 1, Used: 95, Peak: 95, Cap: 100},
		{Kind: KindMemTL, Group: -1, Node: 1, Round: 0, Used: 50, Peak: 50, Cap: 100},
	}
	var buf bytes.Buffer
	RenderMemTL(&buf, events)
	out := buf.String()
	if !strings.Contains(out, "memory timeline (2 node(s) x 2 round(s))") {
		t.Fatalf("missing grid header:\n%s", out)
	}
	// Node 0: idle then near-ceiling — one of the two hottest shades.
	if !strings.Contains(out, "node   0 | %|") {
		t.Fatalf("node 0 row wrong:\n%s", out)
	}
	if !strings.Contains(out, "(95%)") {
		t.Fatalf("peak utilization missing:\n%s", out)
	}

	buf.Reset()
	RenderMemTL(&buf, nil)
	if !strings.Contains(buf.String(), "no memory-timeline samples") {
		t.Fatalf("empty timeline render: %q", buf.String())
	}
}

func TestShadeOf(t *testing.T) {
	if c := shadeOf(0, 100); c != ' ' {
		t.Errorf("idle shade = %q, want space", c)
	}
	if c := shadeOf(100, 100); c != '@' {
		t.Errorf("full shade = %q, want @", c)
	}
	if c := shadeOf(10, 0); c != '?' {
		t.Errorf("zero-capacity shade = %q, want ?", c)
	}
}

// TestRenderExplainLeader covers the two-layer election line: winner
// with Mem_avl and score, runners-up in election order.
func TestRenderExplainLeader(t *testing.T) {
	events := []Event{
		{Kind: KindGroups, Group: -1, Op: "read", TotalBytes: 100, Msggroup: 100,
			Groups: []GroupInfo{{First: 0, Last: 3, Nodes: 2, Bytes: 100}}},
		{Kind: KindLeader, Group: 0, Node: 0, Rank: 1, Avail: 4096, Score: 3000,
			RunnersUp: []Candidate{{Rank: 0, Node: 0, Avail: 4096, Share: 2500}}},
		{Kind: KindLeader, Group: 0, Node: 1, Rank: 2, Avail: 8192, Score: 7000},
	}
	var buf bytes.Buffer
	RenderExplain(&buf, events)
	out := buf.String()
	for _, want := range []string{
		"leader   g0   node 0 -> rank 1 Mem_avl=4096 score=3000 runners-up: rank 0 Mem_avl=4096 score=2500",
		"leader   g0   node 1 -> rank 2 Mem_avl=8192 score=7000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered explain missing %q:\n%s", want, out)
		}
	}
	s := Summarize(events)
	if s.Leaders != 2 {
		t.Fatalf("summary leaders = %d, want 2", s.Leaders)
	}
}
