// Package explain is the planner decision-audit layer: it records
// *why* memory-conscious collective I/O made each of its decisions —
// how the workload was divided into aggregation groups, where every
// partition-tree bisection cut, which hosts were considered (and
// rejected, with their Mem_avl and the threshold that failed) when a
// file domain was remerged away, and which candidate won each
// aggregator placement with what headroom — plus per-aggregator memory
// timelines sampled from the cluster ledger at round boundaries.
//
// Where internal/obs answers "when did phases run and how long", this
// package answers "why does the plan look like this" and "how close did
// each aggregator come to its memory ceiling". The discipline matches
// obs/metrics/logx: a nil *Recorder disables collection, every method
// is nil-safe, and the disabled path performs no allocations, so the
// planner and the round engine stay unconditionally instrumented.
//
// The on-disk format is schema-versioned JSONL (one Event per line,
// first line a header record carrying Schema) with a
// truncation-tolerant parser, mirroring the obs trace format.
package explain

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Schema identifies the decision-log line format. Bump on incompatible
// changes; the parser rejects logs from a different major schema.
const Schema = "mccio-explain/1"

// Event kinds. Every line of a decision log carries exactly one.
const (
	// KindHeader is the first line of a log: schema identification.
	KindHeader = "header"
	// KindRun marks the start of one simulation run (one bench row or
	// one collective call sequence); Key labels it.
	KindRun = "run"
	// KindGroups is the group-division outcome: TotalBytes requested,
	// the Msggroup threshold used, and one GroupInfo per group.
	KindGroups = "groups"
	// KindTree is one group's partition-tree build outcome: root extent
	// [Lo, Hi), covered Data bytes, leaf count, and the effective
	// Msgind / MaxAggs the build worked from.
	KindTree = "tree"
	// KindBisect is one partition-tree bisection: vertex [Lo, Hi) with
	// Data covered bytes cut at Cut into LeftData/RightData halves.
	KindBisect = "bisect"
	// KindRemerge is one workload-portion remerge: leaf [Lo, Hi) left
	// the tree because no candidate host could offer Threshold bytes
	// (best offer BestShare on node Node); Candidates lists every host
	// considered with its Mem_avl, Variant names the takeover shape,
	// and [TakerLo, TakerHi) is the absorbing leaf after the merge.
	KindRemerge = "remerge"
	// KindPlace is one aggregator placement: leaf [Lo, Hi) went to
	// group rank Rank on Node with a Buf-byte buffer, leaving Headroom
	// uncommitted memory; RunnersUp lists the losing candidates and
	// Retry marks placements that fell back past the data-owning hosts.
	KindPlace = "place"
	// KindMemTL is one memory-timeline sample: at virtual time T, the
	// aggregator on Node observed Used bytes allocated (Peak high-water)
	// of Cap capacity at the boundary of Round.
	KindMemTL = "memtl"
	// KindLeader is one two-layer leader election: group rank Rank on
	// Node won the node's intra-node funnel with Score (Mem_avl minus
	// extent span) and Avail bytes available; RunnersUp lists the losing
	// mates with their Mem_avl and scores.
	KindLeader = "leader"
)

// Remerge variants (Fig 5a / 5b of the paper).
const (
	// VariantSibling is Fig 5a: the sibling is a leaf, the parent
	// becomes the merged domain.
	VariantSibling = "sibling-takeover"
	// VariantDFS is Fig 5b: the sibling is internal, a directional DFS
	// finds the adjacent leaf and the spine stretches over the region.
	VariantDFS = "dfs"
)

// GroupInfo is one aggregation group's boundary in a KindGroups event.
type GroupInfo struct {
	// First and Last bound the group's communicator ranks (inclusive).
	First int `json:"first"`
	Last  int `json:"last"`
	// Nodes is the physical nodes the group spans.
	Nodes int `json:"nodes"`
	// Bytes is the members' total requested data.
	Bytes int64 `json:"bytes"`
}

// Candidate is one host considered during a remerge or placement
// decision: the quantities the max-available-memory rule compared.
type Candidate struct {
	// Node is the physical node id.
	Node int `json:"node"`
	// Avail is the node's uncommitted aggregation memory (Mem_avl) at
	// decision time. Deliberately never omitted: an exhausted host's 0
	// is the whole point of the audit line.
	Avail int64 `json:"avail"`
	// Share is the per-slot budget the host could actually offer (its
	// Avail split over remaining aggregator slots).
	Share int64 `json:"share"`
	// Aggs is how many aggregators the host already carries.
	Aggs int `json:"aggs,omitempty"`
	// Rank is the candidate's comm rank (leader elections only, where
	// candidates are ranks sharing a node rather than hosts).
	Rank int `json:"rank,omitempty"`
}

// Event is one decision-log record. Fields beyond Kind/T/Group are
// kind-specific (see the Kind constants); unused numeric fields are
// omitted from the JSON and read back as zero, which round-trips
// losslessly.
type Event struct {
	// Kind discriminates the record (KindHeader .. KindMemTL).
	Kind string `json:"kind"`
	// T is the virtual-time stamp in seconds (0 outside a simulation).
	T float64 `json:"t"`
	// Group is the aggregation-group index, -1 when not applicable.
	Group int `json:"group"`

	// SchemaV carries Schema on KindHeader lines.
	SchemaV string `json:"schema,omitempty"`
	// Key labels KindRun records (a bench row key or workload name).
	Key string `json:"key,omitempty"`
	// Op is the collective operation ("write"/"read") on KindGroups.
	Op string `json:"op,omitempty"`

	// Lo, Hi, Data describe the file-domain extent a tree-shaped event
	// (KindTree/KindBisect/KindRemerge/KindPlace) refers to.
	Lo   int64 `json:"lo,omitempty"`
	Hi   int64 `json:"hi,omitempty"`
	Data int64 `json:"data,omitempty"`

	// KindGroups payload.
	TotalBytes int64       `json:"total_bytes,omitempty"`
	Msggroup   int64       `json:"msggroup,omitempty"`
	Groups     []GroupInfo `json:"groups,omitempty"`

	// KindTree payload.
	Leaves  int   `json:"leaves,omitempty"`
	Msgind  int64 `json:"msgind,omitempty"`
	MaxAggs int   `json:"max_aggs,omitempty"`

	// KindBisect payload.
	Cut       int64 `json:"cut,omitempty"`
	LeftData  int64 `json:"left_data,omitempty"`
	RightData int64 `json:"right_data,omitempty"`

	// KindRemerge payload. Reason is the human-readable one-liner;
	// Threshold is the Memmin that no candidate met; BestShare is the
	// best offer that still fell short; TakerLo/TakerHi bound the leaf
	// that absorbed the region.
	Variant    string      `json:"variant,omitempty"`
	Reason     string      `json:"reason,omitempty"`
	Threshold  int64       `json:"threshold,omitempty"`
	BestShare  int64       `json:"best_share,omitempty"`
	Candidates []Candidate `json:"candidates,omitempty"`
	TakerLo    int64       `json:"taker_lo,omitempty"`
	TakerHi    int64       `json:"taker_hi,omitempty"`

	// KindPlace / KindMemTL payload. Node doubles as the winner's host
	// (place) and the sampled node (memtl).
	Node      int         `json:"node,omitempty"`
	Rank      int         `json:"rank,omitempty"`
	Buf       int64       `json:"buf,omitempty"`
	Avail     int64       `json:"avail,omitempty"`
	Headroom  int64       `json:"headroom,omitempty"`
	Retry     bool        `json:"retry,omitempty"`
	RunnersUp []Candidate `json:"runners_up,omitempty"`

	// KindMemTL payload.
	Round int   `json:"round,omitempty"`
	Used  int64 `json:"used,omitempty"`
	Peak  int64 `json:"peak,omitempty"`
	Cap   int64 `json:"cap,omitempty"`

	// KindLeader payload: the winner's election score (Mem_avl minus
	// extent span; RunnersUp carries the losers' via Candidate.Share).
	Score int64 `json:"score,omitempty"`
}

// Recorder accumulates decision events. The zero of the API is a nil
// *Recorder: every method returns immediately and allocates nothing,
// so the planner's instrumentation stays unconditional. The mutex
// makes recording safe from concurrently spawned simulation
// goroutines; the discrete-event engine's deterministic scheduling is
// what makes the recorded order reproducible.
type Recorder struct {
	mu     sync.Mutex
	clock  func() float64
	events []Event
}

// NewRecorder returns an enabled recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// SetClock installs the virtual-time source (typically
// simtime.Engine.Now). Events recorded before a clock is set are
// stamped 0. Nil-safe.
func (r *Recorder) SetClock(clock func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.clock = clock
	r.mu.Unlock()
}

// Enabled reports whether events are being recorded. Call sites that
// must build slices or strings for an event (candidate lists, reason
// text) should guard on this so the disabled path stays allocation
// free; scalar-only records may call unconditionally.
func (r *Recorder) Enabled() bool { return r != nil }

// Record appends one event, stamping T from the recorder's clock when
// the event carries no stamp of its own. Nil-safe.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if e.T == 0 && r.clock != nil {
		e.T = r.clock()
	}
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Run marks the start of one labelled run. Nil-safe; the label string
// must already exist at the call site (no formatting on this path).
func (r *Recorder) Run(key string) {
	if r == nil {
		return
	}
	r.Record(Event{Kind: KindRun, Group: -1, Key: key})
}

// Bisect records one partition-tree cut. Scalar-only: safe to call
// unconditionally from the tree builder.
func (r *Recorder) Bisect(group int, lo, hi, data, cut, leftData int64) {
	if r == nil {
		return
	}
	r.Record(Event{Kind: KindBisect, Group: group, Lo: lo, Hi: hi, Data: data,
		Cut: cut, LeftData: leftData, RightData: data - leftData})
}

// MemSample records one round-boundary ledger sample for a node.
// Scalar-only: safe to call unconditionally from the round engine.
func (r *Recorder) MemSample(node, round int, used, peak, capacity int64) {
	if r == nil {
		return
	}
	r.Record(Event{Kind: KindMemTL, Group: -1, Node: node, Round: round,
		Used: used, Peak: peak, Cap: capacity})
}

// Len returns the number of recorded events. Nil-safe.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a snapshot copy of the recorded events. Nil-safe.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Append bulk-appends events recorded elsewhere — the parallel bench
// harness records each hermetic row into its own recorder and folds
// them back in row order, which is what keeps the merged log
// byte-identical at any worker count. Nil-safe.
func (r *Recorder) Append(events []Event) {
	if r == nil || len(events) == 0 {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, events...)
	r.mu.Unlock()
}

// Reset discards all recorded events. Nil-safe.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = r.events[:0]
	r.mu.Unlock()
}

// WriteJSONL serializes the recorded events, preceded by the schema
// header line. Nil-safe: a nil recorder writes just the header.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	return WriteJSONLEvents(w, r.Events())
}

// WriteJSONLEvents serializes a decision log: one header line carrying
// the schema version, then one line per event.
func WriteJSONLEvents(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(Event{Kind: KindHeader, Group: -1, SchemaV: Schema}); err != nil {
		return err
	}
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseJSONL reconstructs a decision log. The header line is optional
// (its schema is verified when present); a truncated final line — a
// writer interrupted mid-record — is tolerated once at least one
// record parsed, mirroring the obs trace parser. Garbage mid-stream is
// still an error.
func ParseJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	line := 0
	parsed := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			if !sc.Scan() && sc.Err() == nil && parsed > 0 {
				return events, nil
			}
			return nil, fmt.Errorf("explain: jsonl line %d: %w", line, err)
		}
		parsed++
		if e.Kind == KindHeader {
			if e.SchemaV != Schema {
				return nil, fmt.Errorf("explain: unsupported schema %q (want %q)", e.SchemaV, Schema)
			}
			continue
		}
		if e.Kind == "" {
			return nil, fmt.Errorf("explain: jsonl line %d: record without kind", line)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// Summary is the decision-count rollup of a log — what mccio-inspect
// prints and GET /debug/explain returns.
type Summary struct {
	// Runs counts KindRun markers (0 for single-run logs without one).
	Runs int `json:"runs"`
	// Plans counts group-division events (one per collective planned).
	Plans int `json:"plans"`
	// Groups is the total aggregation groups formed across plans.
	Groups int `json:"groups"`
	// Bisections counts partition-tree cuts.
	Bisections int `json:"bisections"`
	// Remerges counts workload-portion remerges; the two variant
	// fields split it by takeover shape (Fig 5a vs 5b).
	Remerges       int `json:"remerges"`
	RemergeSibling int `json:"remerge_sibling"`
	RemergeDFS     int `json:"remerge_dfs"`
	// Placements counts aggregator placements; PlacementRetries the
	// ones that fell back past the data-owning hosts.
	Placements       int `json:"placements"`
	PlacementRetries int `json:"placement_retries"`
	// Leaders counts two-layer node-leader elections.
	Leaders int `json:"leaders"`
	// MemSamples counts round-boundary ledger samples.
	MemSamples int `json:"mem_samples"`
}

// Summarize folds a decision log into its counts.
func Summarize(events []Event) Summary {
	var s Summary
	for _, e := range events {
		switch e.Kind {
		case KindRun:
			s.Runs++
		case KindGroups:
			s.Plans++
			s.Groups += len(e.Groups)
		case KindBisect:
			s.Bisections++
		case KindRemerge:
			s.Remerges++
			switch e.Variant {
			case VariantSibling:
				s.RemergeSibling++
			case VariantDFS:
				s.RemergeDFS++
			}
		case KindPlace:
			s.Placements++
			if e.Retry {
				s.PlacementRetries++
			}
		case KindLeader:
			s.Leaders++
		case KindMemTL:
			s.MemSamples++
		}
	}
	return s
}

// WriteText renders the summary as the one-block count report.
func (s Summary) WriteText(w io.Writer) {
	fmt.Fprintf(w, "decision audit: %d plan(s), %d group(s)\n", s.Plans, s.Groups)
	fmt.Fprintf(w, "  bisections:        %d\n", s.Bisections)
	fmt.Fprintf(w, "  remerges:          %d (%d sibling-takeover, %d dfs)\n",
		s.Remerges, s.RemergeSibling, s.RemergeDFS)
	fmt.Fprintf(w, "  placements:        %d (%d fell back past data-owning hosts)\n",
		s.Placements, s.PlacementRetries)
	if s.Leaders > 0 {
		fmt.Fprintf(w, "  leader elections:  %d\n", s.Leaders)
	}
	if s.MemSamples > 0 {
		fmt.Fprintf(w, "  memory samples:    %d\n", s.MemSamples)
	}
}
