// Package strategy is the canonical enumeration of collective-I/O
// strategy names. Every layer that selects a strategy by name — the
// simulator and trace CLI flag parsing, the bench experiment grids, the
// plan service's request decoding, the adio hint translation — resolves
// and validates names through this package, so the allowed list lives
// in exactly one place and usage strings, HTTP errors, and exit
// messages can never drift apart.
//
// The package is a leaf: it imports nothing from the repo, so any
// layer (planner, engine, serving, benches) can depend on it without
// cycles.
package strategy

import "strings"

// The strategy names, in canonical presentation order.
const (
	// MCCIO is the memory-conscious strategy (internal/core): group
	// division, partition-tree file domains, memory-aware aggregator
	// placement with remerging.
	MCCIO = "mccio"
	// TwoPhase is the ROMIO-style baseline (internal/collio): one
	// aggregator per node chosen by lowest rank, the file extent split
	// evenly by offset.
	TwoPhase = "two-phase"
	// TwoLayer is the intra-node request aggregation strategy
	// (internal/twolayer), after Kang et al. 2019: ranks funnel round
	// pieces to a node-local leader elected by available memory; only
	// leaders join the inter-node shuffle.
	TwoLayer = "two-layer"
	// Independent is per-rank POSIX-style I/O with data sieving
	// (internal/iolib), no collective coordination at all.
	Independent = "independent"
)

// Names returns every selectable strategy in canonical order. The
// returned slice is fresh; callers may mutate it.
func Names() []string {
	return []string{MCCIO, TwoPhase, TwoLayer, Independent}
}

// Valid reports whether name is a known strategy.
func Valid(name string) bool {
	switch name {
	case MCCIO, TwoPhase, TwoLayer, Independent:
		return true
	}
	return false
}

// List renders the allowed names for usage strings and error messages:
// "mccio | two-phase | two-layer | independent".
func List() string {
	return strings.Join(Names(), " | ")
}

// Planned reports whether name has a planning stage the plan service
// can serve offline via /v1/plan — every strategy except independent,
// which has no collective plan to inspect.
func Planned(name string) bool {
	return Valid(name) && name != Independent
}

// PlannedList renders the /v1/plan-servable names for error messages.
func PlannedList() string {
	var out []string
	for _, n := range Names() {
		if Planned(n) {
			out = append(out, n)
		}
	}
	return strings.Join(out, " | ")
}
