package strategy

import "testing"

func TestNamesValidAndList(t *testing.T) {
	names := Names()
	if len(names) != 4 {
		t.Fatalf("expected 4 strategies, got %v", names)
	}
	for _, n := range names {
		if !Valid(n) {
			t.Errorf("Valid(%q) = false for enumerated name", n)
		}
	}
	for _, bad := range []string{"", "twophase", "two_layer", "MCCIO", "romio"} {
		if Valid(bad) {
			t.Errorf("Valid(%q) = true", bad)
		}
	}
	if got, want := List(), "mccio | two-phase | two-layer | independent"; got != want {
		t.Errorf("List() = %q, want %q", got, want)
	}
}

func TestPlannedExcludesIndependent(t *testing.T) {
	if Planned(Independent) {
		t.Error("independent should not be plan-servable")
	}
	for _, n := range []string{MCCIO, TwoPhase, TwoLayer} {
		if !Planned(n) {
			t.Errorf("Planned(%q) = false", n)
		}
	}
	if Planned("nope") {
		t.Error("Planned should reject unknown names")
	}
	if got, want := PlannedList(), "mccio | two-phase | two-layer"; got != want {
		t.Errorf("PlannedList() = %q, want %q", got, want)
	}
}
