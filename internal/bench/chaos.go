package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/iolib"
	"repro/internal/metrics"
)

// ChaosDropRates are the message-drop probabilities the chaos
// experiment sweeps on top of the fixed fault backdrop.
var ChaosDropRates = []float64{0.02, 0.05, 0.10, 0.20}

// chaosSpec builds the experiment's fault schedule: every fault class
// at once — a memory-pressure spike that drains an aggregator node, a
// straggler OST, a degraded link, an aggregator-node failure mid-run,
// and message drop/delay at the given rate. The spec is a pure value,
// so every sweep point perturbs the same backdrop and only the drop
// rate moves.
func chaosSpec(seed uint64, mem int64, dropRate float64) faults.Spec {
	return faults.Spec{
		Seed: seed,
		MemPressure: []faults.MemPressure{
			{Node: 1, Round: 1, Bytes: mem / 2},
		},
		SlowOSTs: []faults.SlowOST{
			{OST: 0, Factor: 3, FromSec: 0}, // whole run
		},
		SlowLinks: []faults.SlowLink{
			{Node: 1, Factor: 2, FromSec: 0},
		},
		NodeFailures: []faults.NodeFailure{
			{Node: 1, Round: 2},
		},
		Messages: faults.MessageSpec{
			DropRate:     dropRate,
			DelayRate:    dropRate / 2,
			DelayMeanSec: 0.5e-3,
		},
	}
}

// Chaos sweeps fault intensity against delivered bandwidth: a
// fault-free baseline, then the full chaos backdrop at each
// ChaosDropRates point, for both strategies on the write path. Every
// run verifies its bytes (write + verified read-back), so a row in the
// table certifies the collective survived its faults without data
// loss. reg, when non-nil, collects the fault and failover counters
// across all runs for /metrics exposition.
func Chaos(o Options, reg *metrics.Registry) (*Table, error) {
	o = o.withDefaults()
	mem := 4 * cluster.MiB
	wl := iorWorkload(24, o.Scale)
	fcfg := testbedFS(o.Seed)
	mcfg := testbedMachine(2, mem, SigmaBytes, o.Seed)
	mccOpts := mccioOptions(mcfg, fcfg, wl.TotalBytes(), mem)
	strategies := []iolib.Collective{
		collio.TwoPhase{CBBuffer: mem},
		core.MCCIO{Opts: mccOpts},
	}

	tbl := &Table{
		Title: "Chaos: fault rate vs bandwidth (IOR interleaved, write+verify, 24 procs, 2 nodes)",
		Headers: []string{"drop rate", "strategy", "MB/s", "vs fault-free",
			"injected", "failovers", "unrecovered", "drops"},
		Notes: []string{
			"Fault backdrop at every nonzero rate: mem-pressure spike (node 1, round 1),",
			"slow OST 0 (3x), degraded node-1 link (2x), node-1 failure at round 2,",
			"message delay at half the drop rate. Every run verifies all bytes after",
			"the collective, so each row implies zero data loss under its faults.",
		},
	}

	baseline := make(map[string]float64)
	rates := append([]float64{0}, ChaosDropRates...)
	for _, rate := range rates {
		for _, s := range strategies {
			var sched *faults.Schedule
			if rate > 0 {
				// Fresh schedule per run: exactly-once state (pressure
				// application, failover rounds) lives inside it.
				var err error
				sched, err = faults.NewSchedule(chaosSpec(o.Seed, mem, rate))
				if err != nil {
					return nil, fmt.Errorf("bench: chaos spec: %w", err)
				}
			}
			res, err := RunOnce(Spec{
				Strategy: s, Op: "write", Machine: mcfg, FS: fcfg,
				Workload: wl, Verify: true, Metrics: reg, Faults: sched,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: chaos rate=%.2f %s: %w", rate, s.Name(), err)
			}
			bw := res.BandwidthMBps()
			if rate == 0 {
				baseline[s.Name()] = bw
			}
			rel := "1.00x"
			if base := baseline[s.Name()]; base > 0 && rate > 0 {
				rel = fmt.Sprintf("%.2fx", bw/base)
			}
			var inj, fo, unrec, drops int64
			if sched != nil {
				inj, fo, unrec, drops = sched.Injected(), sched.Failovers(), sched.Unrecovered(), sched.Dropped()
			}
			tbl.AddRow(fmt.Sprintf("%.2f", rate), s.Name(), fmt.Sprintf("%.1f", bw), rel,
				fmt.Sprintf("%d", inj), fmt.Sprintf("%d", fo),
				fmt.Sprintf("%d", unrec), fmt.Sprintf("%d", drops))
			o.logf("  chaos rate=%.2f %s: %s (injected=%d failovers=%d)", rate, s.Name(), res.String(), inj, fo)
		}
	}
	return tbl, nil
}
