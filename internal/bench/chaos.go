package bench

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/iolib"
	"repro/internal/metrics"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// ChaosDropRates are the message-drop probabilities the chaos
// experiment sweeps on top of the fixed fault backdrop.
var ChaosDropRates = []float64{0.02, 0.05, 0.10, 0.20}

// chaosSpec builds the experiment's fault schedule: every fault class
// at once — a memory-pressure spike that drains an aggregator node, a
// straggler OST, a degraded link, an aggregator-node failure mid-run,
// and message drop/delay at the given rate. The spec is a pure value,
// so every sweep point perturbs the same backdrop and only the drop
// rate moves.
func chaosSpec(seed uint64, mem int64, dropRate float64) faults.Spec {
	return faults.Spec{
		Seed: seed,
		MemPressure: []faults.MemPressure{
			{Node: 1, Round: 1, Bytes: mem / 2},
		},
		SlowOSTs: []faults.SlowOST{
			{OST: 0, Factor: 3, FromSec: 0}, // whole run
		},
		SlowLinks: []faults.SlowLink{
			{Node: 1, Factor: 2, FromSec: 0},
		},
		NodeFailures: []faults.NodeFailure{
			{Node: 1, Round: 2},
		},
		Messages: faults.MessageSpec{
			DropRate:     dropRate,
			DelayRate:    dropRate / 2,
			DelayMeanSec: 0.5e-3,
		},
	}
}

// Chaos sweeps fault intensity against delivered bandwidth: a
// fault-free baseline, then the full chaos backdrop at each
// ChaosDropRates point, for both strategies on the write path. Every
// run verifies its bytes (write + verified read-back), so a row in the
// table certifies the collective survived its faults without data
// loss. Rows fan out across o.Parallel workers, each with its own
// fault schedule and metrics registry; reg, when non-nil, absorbs the
// merged fault and failover counters for /metrics exposition.
func Chaos(o Options, reg *metrics.Registry) (*Table, error) {
	o = o.withDefaults()
	mem := 4 * cluster.MiB
	wl := iorWorkload(24, o.Scale)
	fcfg := testbedFS(o.Seed)
	mcfg := testbedMachine(2, mem, SigmaBytes, o.Seed)
	mccOpts := mccioOptions(mcfg, fcfg, wl.TotalBytes(), mem)
	strategies := []iolib.Collective{
		collio.TwoPhase{CBBuffer: mem},
		core.MCCIO{Opts: mccOpts},
	}

	tbl := &Table{
		Title: "Chaos: fault rate vs bandwidth (IOR interleaved, write+verify, 24 procs, 2 nodes)",
		Headers: []string{"drop rate", "strategy", "MB/s", "vs fault-free",
			"injected", "failovers", "unrecovered", "drops"},
		Notes: []string{
			"Fault backdrop at every nonzero rate: mem-pressure spike (node 1, round 1),",
			"slow OST 0 (3x), degraded node-1 link (2x), node-1 failure at round 2,",
			"message delay at half the drop rate. Every run verifies all bytes after",
			"the collective, so each row implies zero data loss under its faults.",
		},
	}

	// One grid row per (rate, strategy). Each row builds its own fault
	// schedule inside the worker (exactly-once state lives in the
	// schedule) and gets its own metrics registry, so concurrent rows
	// share nothing; the fault-free baseline relation is computed after
	// the sweep from the slot-per-row results.
	rates := append([]float64{0}, ChaosDropRates...)
	type chaosRow struct {
		rate float64
		s    iolib.Collective
		reg  *metrics.Registry
	}
	type chaosOut struct {
		res                   trace.Result
		inj, fo, unrec, drops int64
	}
	var grid []chaosRow
	for _, rate := range rates {
		for _, s := range strategies {
			row := chaosRow{rate: rate, s: s}
			if reg != nil {
				row.reg = metrics.New()
			}
			grid = append(grid, row)
		}
	}
	runner := sweep.Sweep[chaosOut]{
		Workers:  o.Parallel,
		Progress: o.Progress,
		Label:    "chaos",
		Describe: func(i int, out chaosOut) string {
			return fmt.Sprintf("rate=%.2f %s: %s (injected=%d failovers=%d)",
				grid[i].rate, grid[i].s.Name(), out.res.String(), out.inj, out.fo)
		},
	}
	outs, err := runner.Run(context.Background(), len(grid), func(_ context.Context, i int) (chaosOut, error) {
		row := grid[i]
		var sched *faults.Schedule
		if row.rate > 0 {
			var err error
			sched, err = faults.NewSchedule(chaosSpec(o.Seed, mem, row.rate))
			if err != nil {
				return chaosOut{}, fmt.Errorf("chaos spec: %w", err)
			}
		}
		res, err := RunOnce(Spec{
			Strategy: row.s, Op: "write", Machine: mcfg, FS: fcfg,
			Workload: wl, Verify: true, Metrics: row.reg, Faults: sched,
		})
		if err != nil {
			return chaosOut{}, fmt.Errorf("chaos rate=%.2f %s: %w", row.rate, row.s.Name(), err)
		}
		out := chaosOut{res: res}
		if sched != nil {
			out.inj, out.fo, out.unrec, out.drops = sched.Injected(), sched.Failovers(), sched.Unrecovered(), sched.Dropped()
		}
		return out, nil
	})
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	if reg != nil {
		snaps := make([]metrics.Snapshot, 0, len(grid))
		for _, row := range grid {
			snaps = append(snaps, row.reg.Snapshot())
		}
		reg.Absorb(metrics.MergeSnapshots(snaps...))
	}
	baseline := make(map[string]float64)
	for i, row := range grid {
		if row.rate == 0 {
			baseline[row.s.Name()] = outs[i].res.BandwidthMBps()
		}
	}
	for i, row := range grid {
		out := outs[i]
		bw := out.res.BandwidthMBps()
		rel := "1.00x"
		if base := baseline[row.s.Name()]; base > 0 && row.rate > 0 {
			rel = fmt.Sprintf("%.2fx", bw/base)
		}
		tbl.AddRow(fmt.Sprintf("%.2f", row.rate), row.s.Name(), fmt.Sprintf("%.1f", bw), rel,
			fmt.Sprintf("%d", out.inj), fmt.Sprintf("%d", out.fo),
			fmt.Sprintf("%d", out.unrec), fmt.Sprintf("%d", out.drops))
	}
	return tbl, nil
}
