package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/explain"
)

// runRegressionExplain runs the fixed-seed regression bench with the
// decision audit attached and returns the serialized JSONL log and the
// rendered explain report.
func runRegressionExplain(t *testing.T, parallel int) (jsonl, rendered []byte) {
	t.Helper()
	rec := explain.NewRecorder()
	if _, err := RunRegression(Options{Scale: 0.05, Seed: 9, Parallel: parallel, Explain: rec}, nil); err != nil {
		t.Fatalf("parallel=%d: %v", parallel, err)
	}
	var log, rep bytes.Buffer
	if err := rec.WriteJSONL(&log); err != nil {
		t.Fatal(err)
	}
	explain.RenderExplain(&rep, rec.Events())
	return log.Bytes(), rep.Bytes()
}

// TestExplainDeterminism is the acceptance gate for the decision audit:
// for the fixed regression seed, the JSONL log and the rendered explain
// report are byte-identical whether the rows run serially or across 8
// workers, and the log actually contains annotated remerges — every
// remerge carries its reason and the candidate hosts' Mem_avl.
func TestExplainDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	serialLog, serialRep := runRegressionExplain(t, 1)
	parallelLog, parallelRep := runRegressionExplain(t, 8)
	if !bytes.Equal(serialLog, parallelLog) {
		t.Fatal("decision log differs between -parallel 1 and -parallel 8")
	}
	if !bytes.Equal(serialRep, parallelRep) {
		t.Fatal("rendered explain report differs between -parallel 1 and -parallel 8")
	}

	events, err := explain.ParseJSONL(bytes.NewReader(serialLog))
	if err != nil {
		t.Fatal(err)
	}
	sum := explain.Summarize(events)
	if sum.Runs != 8 {
		t.Fatalf("log has %d run markers, want 8 regression rows", sum.Runs)
	}
	if sum.Plans == 0 || sum.Bisections == 0 || sum.Placements == 0 || sum.MemSamples == 0 {
		t.Fatalf("log missing planner decisions: %+v", sum)
	}
	rep := string(serialRep)
	for _, want := range []string{"run mem=4MB/mccio/write", "partition tree:", "why ("} {
		if !strings.Contains(rep, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, rep[:min(len(rep), 2000)])
		}
	}
}

// TestExplainRemergeAudit starves a 2-node testbed until the planner
// must remerge, then checks every remerge event carries its full
// audit — reason text, the failed threshold, the candidate hosts with
// their Mem_avl — and that the rendered tree annotates it inline.
func TestExplainRemergeAudit(t *testing.T) {
	const mem = 2 * 1 << 20 // 2 MiB: scarce enough that placements fail
	wl := iorWorkload(24, 1.0)
	fcfg := testbedFS(42)
	mcfg := testbedMachine(2, mem, SigmaBytes, 42)
	mccOpts := mccioOptions(mcfg, fcfg, wl.TotalBytes(), mem)
	rec := explain.NewRecorder()
	res, err := RunOnce(Spec{Strategy: core.MCCIO{Opts: mccOpts}, Op: "write",
		Machine: mcfg, FS: fcfg, Workload: wl, Explain: rec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Remerges == 0 {
		t.Fatal("scarce-memory run performed no remerges; test platform needs retuning")
	}
	events := rec.Events()
	remerges := 0
	for _, e := range events {
		if e.Kind != explain.KindRemerge {
			continue
		}
		remerges++
		if e.Reason == "" || e.Threshold <= 0 {
			t.Fatalf("remerge without reason/threshold: %+v", e)
		}
		if len(e.Candidates) == 0 {
			t.Fatalf("remerge without candidate audit: %+v", e)
		}
		if e.Variant != explain.VariantSibling && e.Variant != explain.VariantDFS {
			t.Fatalf("remerge with unknown variant %q", e.Variant)
		}
		if e.TakerHi <= e.TakerLo {
			t.Fatalf("remerge with empty taker extent: %+v", e)
		}
	}
	if remerges != res.Remerges {
		t.Fatalf("audit recorded %d remerges, engine reported %d", remerges, res.Remerges)
	}
	var buf bytes.Buffer
	explain.RenderExplain(&buf, events)
	if !strings.Contains(buf.String(), "<- remerged (") {
		t.Fatalf("rendered tree has no inline remerge annotation:\n%s", buf.String())
	}
}

// TestPhaseBreakdownAnomalyNotes smoke-checks the anomaly wiring: the
// phase table renders with its notes and never flags the healthy
// regression-sized run as anomalous in a nondeterministic way (two
// invocations agree).
func TestPhaseBreakdownAnomalyNotes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	run := func() []byte {
		tab, err := PhaseBreakdown(Options{Scale: 0.05, Seed: 9, Parallel: 2})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		tab.WriteText(&buf)
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("phase table with anomaly notes is nondeterministic:\n%s\n---\n%s", a, b)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
