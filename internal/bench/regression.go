package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/explain"
	"repro/internal/iolib"
	"repro/internal/metrics"
)

// RegressionMems are the memory points of the fixed-seed regression
// bench: one scarce and one comfortable aggregation budget (bytes).
var RegressionMems = []int64{4 * cluster.MiB, 16 * cluster.MiB}

// RunRegression runs the small fixed-seed bench that gates CI: IOR
// interleaved at 24 processes on 2 nodes x 12 cores, both strategies
// and both operations at each RegressionMems point — 8 rows in a few
// seconds. The rows fan out across o.Parallel workers; each run gets
// its own metrics registry and the per-run snapshots are merged in row
// order into the trajectory's combined snapshot, so the output is
// byte-identical whatever the worker count. reg, when non-nil, absorbs
// that merged snapshot so a live /metrics exposition sees the sweep's
// aggregate counters.
//
// The simulation runs on virtual time with seeded randomness, so for a
// given (scale, seed) the returned numbers are bit-identical on every
// host — which is what lets a checked-in BenchFile act as the baseline.
func RunRegression(o Options, reg *metrics.Registry) (*BenchFile, error) {
	o = o.withDefaults()
	out := &BenchFile{Schema: BenchSchemaVersion, Scale: o.Scale, Seed: o.Seed}
	wl := iorWorkload(24, o.Scale)
	fcfg := testbedFS(o.Seed)
	var rows []specRow
	for _, mem := range RegressionMems {
		mcfg := testbedMachine(2, mem, SigmaBytes, o.Seed)
		mccOpts := mccioOptions(mcfg, fcfg, wl.TotalBytes(), mem)
		for _, r := range []struct {
			s  iolib.Collective
			op string
		}{
			{collio.TwoPhase{CBBuffer: mem}, "write"},
			{core.MCCIO{Opts: mccOpts}, "write"},
			{collio.TwoPhase{CBBuffer: mem}, "read"},
			{core.MCCIO{Opts: mccOpts}, "read"},
		} {
			rows = append(rows, specRow{
				key:  fmt.Sprintf("mem=%s/%s/%s", mb(mem), r.s.Name(), r.op),
				spec: Spec{Strategy: r.s, Op: r.op, Machine: mcfg, FS: fcfg, Workload: wl},
			})
		}
	}
	// One registry per row: concurrent runs never share atomic cells,
	// and merging the snapshots in row order reproduces exactly what a
	// single registry fed by a serial sweep would hold.
	var regs []*metrics.Registry
	if reg != nil {
		regs = make([]*metrics.Registry, len(rows))
		for i := range regs {
			regs[i] = metrics.New()
			rows[i].spec.Metrics = regs[i]
		}
	}
	// Same discipline for the decision audit: each row records into its
	// own recorder (opened with a run marker carrying the row key), and
	// the logs are concatenated in row order afterwards — byte-identical
	// output whatever o.Parallel is.
	var recs []*explain.Recorder
	if o.Explain != nil {
		recs = make([]*explain.Recorder, len(rows))
		for i := range recs {
			recs[i] = explain.NewRecorder()
			recs[i].Run(rows[i].key)
			rows[i].spec.Explain = recs[i]
		}
	}
	results, hosts, err := runSpecs(o, "regression", rows)
	if err != nil {
		return nil, fmt.Errorf("bench: regression: %w", err)
	}
	for i, res := range results {
		row := RowFromResult(rows[i].key, res)
		if hosts != nil {
			row.HostNsOp = hosts[i].WallNs
			row.HostAllocsOp = hosts[i].Allocs
		}
		out.Experiments = append(out.Experiments, row)
	}
	if reg != nil {
		snaps := make([]metrics.Snapshot, len(regs))
		for i, r := range regs {
			snaps[i] = r.Snapshot()
		}
		merged := metrics.MergeSnapshots(snaps...)
		out.Metrics = &merged
		reg.Absorb(merged)
	}
	for _, r := range recs {
		o.Explain.Append(r.Events())
	}
	return out, nil
}
