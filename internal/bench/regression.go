package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/iolib"
	"repro/internal/metrics"
)

// RegressionMems are the memory points of the fixed-seed regression
// bench: one scarce and one comfortable aggregation budget.
var RegressionMems = []int64{4 * cluster.MiB, 16 * cluster.MiB}

// RunRegression runs the small fixed-seed bench that gates CI: IOR
// interleaved at 24 processes on 2 nodes x 12 cores, both strategies
// and both operations at each RegressionMems point — 8 rows in a few
// seconds. reg, when non-nil, aggregates metrics across all runs and
// its snapshot is embedded in the returned trajectory.
//
// The simulation runs on virtual time with seeded randomness, so for a
// given (scale, seed) the returned numbers are bit-identical on every
// host — which is what lets a checked-in BenchFile act as the baseline.
func RunRegression(o Options, reg *metrics.Registry) (*BenchFile, error) {
	o = o.withDefaults()
	out := &BenchFile{Schema: BenchSchemaVersion, Scale: o.Scale, Seed: o.Seed}
	wl := iorWorkload(24, o.Scale)
	fcfg := testbedFS(o.Seed)
	for _, mem := range RegressionMems {
		mcfg := testbedMachine(2, mem, SigmaBytes, o.Seed)
		mccOpts := mccioOptions(mcfg, fcfg, wl.TotalBytes(), mem)
		runs := []struct {
			s  iolib.Collective
			op string
		}{
			{collio.TwoPhase{CBBuffer: mem}, "write"},
			{core.MCCIO{Opts: mccOpts}, "write"},
			{collio.TwoPhase{CBBuffer: mem}, "read"},
			{core.MCCIO{Opts: mccOpts}, "read"},
		}
		for _, r := range runs {
			key := fmt.Sprintf("mem=%s/%s/%s", mb(mem), r.s.Name(), r.op)
			res, err := RunOnce(Spec{
				Strategy: r.s, Op: r.op, Machine: mcfg, FS: fcfg,
				Workload: wl, Metrics: reg,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: regression %s: %w", key, err)
			}
			out.Experiments = append(out.Experiments, RowFromResult(key, res))
			o.logf("  regression %s: %s", key, res.String())
		}
	}
	if reg != nil {
		snap := reg.Snapshot()
		out.Metrics = &snap
	}
	return out, nil
}
