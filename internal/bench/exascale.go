package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/iolib"
	"repro/internal/trace"
)

// Exascale is the extrapolation experiment the paper's title implies
// but its testbed could not run: hold the per-rank workload and the
// (scarce, varied) per-node memory fixed and grow the machine, so the
// data volume scales with concurrency while aggregation memory per
// byte of data stays flat — the projected extreme-scale regime of
// Table 1. The question is whether MCCIO's advantage survives scale-up.
func Exascale(o Options) (*Table, error) {
	o = o.withDefaults()
	const mem = 8 * cluster.MiB
	fcfg := testbedFS(o.Seed)
	t := &Table{
		Title: "Extreme-scale extrapolation: IOR, fixed 8MB/node memory, growing machine",
		Headers: []string{"nodes", "ranks", "data GB",
			"two-phase wr MB/s", "mccio wr MB/s", "wr gain",
			"two-phase rd MB/s", "mccio rd MB/s", "rd gain"},
	}
	nodeCounts := []int{10, 20, 40, 90}
	for _, nodes := range nodeCounts {
		ranks := nodes * 12
		wl := iorWorkload(ranks, o.Scale*0.5) // half Fig-7 volume per rank for tractable sweeps
		mccCfg := testbedMachine(nodes, mem, SigmaBytes, o.Seed)
		mccOpts := mccioOptions(mccCfg, fcfg, wl.TotalBytes(), mem)
		var bw, bm, rw, rm trace.Result
		runs := []struct {
			res *trace.Result
			s   iolib.Collective
			op  string
		}{
			{&bw, collio.TwoPhase{CBBuffer: mem}, "write"},
			{&bm, core.MCCIO{Opts: mccOpts}, "write"},
			{&rw, collio.TwoPhase{CBBuffer: mem}, "read"},
			{&rm, core.MCCIO{Opts: mccOpts}, "read"},
		}
		for _, r := range runs {
			res, err := RunOnce(Spec{Strategy: r.s, Op: r.op, Machine: mccCfg, FS: fcfg, Workload: wl})
			if err != nil {
				return nil, fmt.Errorf("exascale %d nodes %s %s: %w", nodes, r.s.Name(), r.op, err)
			}
			*r.res = res
			o.logf("  exascale nodes=%d: %s", nodes, res.String())
		}
		t.AddRow(
			fmt.Sprintf("%d", nodes),
			fmt.Sprintf("%d", ranks),
			fmt.Sprintf("%.2f", float64(wl.TotalBytes())/1e9),
			fmt.Sprintf("%.1f", bw.BandwidthMBps()),
			fmt.Sprintf("%.1f", bm.BandwidthMBps()),
			pct(bm.BandwidthMBps(), bw.BandwidthMBps()),
			fmt.Sprintf("%.1f", rw.BandwidthMBps()),
			fmt.Sprintf("%.1f", rm.BandwidthMBps()),
			pct(rm.BandwidthMBps(), rw.BandwidthMBps()),
		)
	}
	t.Notes = append(t.Notes,
		"per-rank data and per-node memory fixed; machine (and storage contention) grows",
		"the paper's claim: memory-conscious aggregation is what scales into this regime")
	return t, nil
}
