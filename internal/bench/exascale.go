package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/iolib"
	"repro/internal/workload"
)

// Exascale is the extrapolation experiment the paper's title implies
// but its testbed could not run: hold the per-rank workload and the
// (scarce, varied) per-node memory fixed and grow the machine, so the
// data volume scales with concurrency while aggregation memory per
// byte of data stays flat — the projected extreme-scale regime of
// Table 1. The question is whether MCCIO's advantage survives scale-up.
func Exascale(o Options) (*Table, error) {
	o = o.withDefaults()
	const mem = 8 * cluster.MiB
	fcfg := testbedFS(o.Seed)
	t := &Table{
		Title: "Extreme-scale extrapolation: IOR, fixed 8MB/node memory, growing machine",
		Headers: []string{"nodes", "ranks", "data GB",
			"two-phase wr MB/s", "mccio wr MB/s", "wr gain",
			"two-phase rd MB/s", "mccio rd MB/s", "rd gain"},
	}
	nodeCounts := []int{10, 20, 40, 90}
	var rows []specRow
	workloads := make([]workload.Workload, len(nodeCounts))
	for ni, nodes := range nodeCounts {
		ranks := nodes * 12
		wl := iorWorkload(ranks, o.Scale*0.5) // half Fig-7 volume per rank for tractable sweeps
		workloads[ni] = wl
		mccCfg := testbedMachine(nodes, mem, SigmaBytes, o.Seed)
		mccOpts := mccioOptions(mccCfg, fcfg, wl.TotalBytes(), mem)
		for _, r := range []struct {
			s  iolib.Collective
			op string
		}{
			{collio.TwoPhase{CBBuffer: mem}, "write"},
			{core.MCCIO{Opts: mccOpts}, "write"},
			{collio.TwoPhase{CBBuffer: mem}, "read"},
			{core.MCCIO{Opts: mccOpts}, "read"},
		} {
			rows = append(rows, specRow{
				key:  fmt.Sprintf("nodes=%d %s %s", nodes, r.s.Name(), r.op),
				spec: Spec{Strategy: r.s, Op: r.op, Machine: mccCfg, FS: fcfg, Workload: wl},
			})
		}
	}
	results, _, err := runSpecs(o, "exascale", rows)
	if err != nil {
		return nil, fmt.Errorf("exascale: %w", err)
	}
	for ni, nodes := range nodeCounts {
		bw, bm, rw, rm := results[ni*4], results[ni*4+1], results[ni*4+2], results[ni*4+3]
		t.AddRow(
			fmt.Sprintf("%d", nodes),
			fmt.Sprintf("%d", nodes*12),
			fmt.Sprintf("%.2f", float64(workloads[ni].TotalBytes())/1e9),
			fmt.Sprintf("%.1f", bw.BandwidthMBps()),
			fmt.Sprintf("%.1f", bm.BandwidthMBps()),
			pct(bm.BandwidthMBps(), bw.BandwidthMBps()),
			fmt.Sprintf("%.1f", rw.BandwidthMBps()),
			fmt.Sprintf("%.1f", rm.BandwidthMBps()),
			pct(rm.BandwidthMBps(), rw.BandwidthMBps()),
		)
	}
	t.Notes = append(t.Notes,
		"per-rank data and per-node memory fixed; machine (and storage contention) grows",
		"the paper's claim: memory-conscious aggregation is what scales into this regime")
	return t, nil
}
