package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/iolib"
	"repro/internal/trace"
)

// Stripes sweeps the file system's stripe unit — the layout axis the
// paper's related work (resonant I/O, LACIO) optimizes against. MCCIO's
// stripe-aligned Msg_ind means its domains stay resonant with the
// layout as the unit changes; the baseline's offset-even domains do
// not.
func Stripes(o Options) (*Table, error) {
	o = o.withDefaults()
	const nodes = 10
	const mem = 8 * cluster.MiB
	wl := iorWorkload(120, o.Scale)
	t := &Table{
		Title:   "Stripe-unit sweep: IOR 120 procs, 8MB nominal buffer",
		Headers: []string{"stripe", "two-phase wr MB/s", "mccio wr MB/s", "gain", "fs requests (2p/mccio)"},
	}
	for _, su := range []int64{256 << 10, 1 << 20, 4 << 20} {
		fcfg := testbedFS(o.Seed)
		fcfg.StripeUnit = su
		mccCfg := testbedMachine(nodes, mem, SigmaBytes, o.Seed)
		mccOpts := mccioOptions(mccCfg, fcfg, wl.TotalBytes(), mem)
		var base, mcc trace.Result
		for _, r := range []struct {
			res *trace.Result
			s   iolib.Collective
		}{
			{&base, collio.TwoPhase{CBBuffer: mem}},
			{&mcc, core.MCCIO{Opts: mccOpts}},
		} {
			res, err := RunOnce(Spec{Strategy: r.s, Op: "write", Machine: mccCfg, FS: fcfg, Workload: wl})
			if err != nil {
				return nil, err
			}
			*r.res = res
			o.logf("  stripes su=%s: %s", mb(su), res.String())
		}
		t.AddRow(mb(su),
			fmt.Sprintf("%.1f", base.BandwidthMBps()),
			fmt.Sprintf("%.1f", mcc.BandwidthMBps()),
			pct(mcc.BandwidthMBps(), base.BandwidthMBps()),
			fmt.Sprintf("%d / %d", base.IORequests, mcc.IORequests),
		)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("workload: %s", wl.Name()))
	return t, nil
}
