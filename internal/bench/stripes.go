package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/iolib"
)

// Stripes sweeps the file system's stripe unit — the layout axis the
// paper's related work (resonant I/O, LACIO) optimizes against. MCCIO's
// stripe-aligned Msg_ind means its domains stay resonant with the
// layout as the unit changes; the baseline's offset-even domains do
// not.
func Stripes(o Options) (*Table, error) {
	o = o.withDefaults()
	const nodes = 10
	const mem = 8 * cluster.MiB
	wl := iorWorkload(120, o.Scale)
	t := &Table{
		Title:   "Stripe-unit sweep: IOR 120 procs, 8MB nominal buffer",
		Headers: []string{"stripe", "two-phase wr MB/s", "mccio wr MB/s", "gain", "fs requests (2p/mccio)"},
	}
	units := []int64{256 << 10, 1 << 20, 4 << 20}
	var rows []specRow
	for _, su := range units {
		fcfg := testbedFS(o.Seed)
		fcfg.StripeUnit = su
		mccCfg := testbedMachine(nodes, mem, SigmaBytes, o.Seed)
		mccOpts := mccioOptions(mccCfg, fcfg, wl.TotalBytes(), mem)
		for _, s := range []iolib.Collective{
			collio.TwoPhase{CBBuffer: mem},
			core.MCCIO{Opts: mccOpts},
		} {
			rows = append(rows, specRow{
				key:  fmt.Sprintf("stripes su=%s %s", mb(su), s.Name()),
				spec: Spec{Strategy: s, Op: "write", Machine: mccCfg, FS: fcfg, Workload: wl},
			})
		}
	}
	results, _, err := runSpecs(o, "stripes", rows)
	if err != nil {
		return nil, err
	}
	for si, su := range units {
		base, mcc := results[si*2], results[si*2+1]
		t.AddRow(mb(su),
			fmt.Sprintf("%.1f", base.BandwidthMBps()),
			fmt.Sprintf("%.1f", mcc.BandwidthMBps()),
			pct(mcc.BandwidthMBps(), base.BandwidthMBps()),
			fmt.Sprintf("%d / %d", base.IORequests, mcc.IORequests),
		)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("workload: %s", wl.Name()))
	return t, nil
}
