package bench

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/iolib"
	"repro/internal/workload"
)

func TestTable1ContainsPaperRowsAndDerived(t *testing.T) {
	tab := Table1()
	var text strings.Builder
	tab.WriteText(&text)
	for _, want := range []string{
		"System Peak", "Total Concurrency", "4444", "I/O Bandwidth",
		"Memory per core", "Off-chip BW per core",
	} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, text.String())
		}
	}
	// The derived memory-per-core factor must be ~0.0075 (33/4444).
	found := false
	for _, row := range tab.Rows {
		if row[0] == "Memory per core (derived)" && row[3] == "0.01" {
			found = true
		}
	}
	if !found {
		t.Fatal("derived memory-per-core factor wrong or absent")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Headers: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Notes = append(tab.Notes, "hello")
	var txt, csv strings.Builder
	tab.WriteText(&txt)
	tab.WriteCSV(&csv)
	if !strings.Contains(txt.String(), "note: hello") {
		t.Fatalf("text: %s", txt.String())
	}
	if !strings.Contains(csv.String(), "a,bb") || !strings.Contains(csv.String(), "1,2") {
		t.Fatalf("csv: %s", csv.String())
	}
}

func TestMbAndPct(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{{2 << 20, "2MB"}, {512 << 10, "512KB"}, {100, "100B"}}
	for _, c := range cases {
		if got := mb(c.n); got != c.want {
			t.Fatalf("mb(%d)=%q, want %q", c.n, got, c.want)
		}
	}
	if got := pct(150, 100); got != "+50.0%" {
		t.Fatalf("pct=%q", got)
	}
	if got := pct(1, 0); got != "n/a" {
		t.Fatalf("pct zero base=%q", got)
	}
}

func TestRunOnceVerifiedBothStrategiesBothOps(t *testing.T) {
	// Small functional runs with real bytes verified end to end.
	mcfg := testbedMachine(2, 4*cluster.MiB, SigmaBytes, 7)
	mcfg.CoresPerNode = 2
	fcfg := testbedFS(7)
	fcfg.JitterMean = 0
	wl := workload.IOR{Ranks: 4, BlockSize: 64 << 10, Segments: 8}
	opts := mccioOptions(mcfg, fcfg, wl.TotalBytes(), 4*cluster.MiB)
	for _, s := range []iolib.Collective{
		collio.TwoPhase{CBBuffer: 4 * cluster.MiB},
		core.MCCIO{Opts: opts},
	} {
		for _, op := range []string{"write", "read"} {
			res, err := RunOnce(Spec{
				Strategy: s, Op: op, Machine: mcfg, FS: fcfg, Workload: wl, Verify: true,
			})
			if err != nil {
				t.Fatalf("%s %s: %v", s.Name(), op, err)
			}
			if res.Bytes != wl.TotalBytes() {
				t.Fatalf("%s %s: bytes %d", s.Name(), op, res.Bytes)
			}
		}
	}
}

func TestRunOnceRejectsOversizedWorkload(t *testing.T) {
	mcfg := testbedMachine(1, 4*cluster.MiB, 0, 1)
	mcfg.CoresPerNode = 2
	wl := workload.IOR{Ranks: 64, BlockSize: 1 << 10, Segments: 1}
	_, err := RunOnce(Spec{Strategy: collio.TwoPhase{CBBuffer: 1 << 20}, Op: "write",
		Machine: mcfg, FS: testbedFS(1), Workload: wl})
	if err == nil {
		t.Fatal("oversized workload accepted")
	}
}

func TestScaledDim(t *testing.T) {
	if d := scaledDim(1024, 1); d != 1024 {
		t.Fatalf("scale 1: %d", d)
	}
	if d := scaledDim(1024, 0.125); d != 512 {
		t.Fatalf("scale 1/8: %d", d)
	}
	if d := scaledDim(1024, 1e-9); d < 64 {
		t.Fatalf("floor: %d", d)
	}
	if d := scaledDim(1024, 0.3); d%8 != 0 {
		t.Fatalf("not multiple of 8: %d", d)
	}
}

func TestComparisonSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is seconds-long")
	}
	// A tiny sweep exercising the whole harness path.
	old := MemSweep
	MemSweep = []int64{1 << 20, 4 << 20}
	defer func() { MemSweep = old }()
	wl := workload.IOR{Ranks: 8, BlockSize: 128 << 10, Segments: 8}
	tab, pts, err := comparisonSweep("smoke", wl, 2, Options{Scale: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || len(tab.Rows) != 2 {
		t.Fatalf("points %d rows %d", len(pts), len(tab.Rows))
	}
	for _, p := range pts {
		for _, r := range []float64{p.BaseWrite.BandwidthMBps(), p.MccWrite.BandwidthMBps(),
			p.BaseRead.BandwidthMBps(), p.MccRead.BandwidthMBps()} {
			if r <= 0 {
				t.Fatalf("zero bandwidth in %+v", p)
			}
		}
	}
}

func TestChunkedCallsVerify(t *testing.T) {
	// IOR's transfer-size axis: splitting one logical test into many
	// collective calls must still move every byte correctly.
	mcfg := testbedMachine(2, 4*cluster.MiB, SigmaBytes, 7)
	mcfg.CoresPerNode = 2
	fcfg := testbedFS(7)
	fcfg.JitterMean = 0
	wl := workload.IOR{Ranks: 4, BlockSize: 64 << 10, Segments: 8}
	for _, calls := range []int{1, 2, 4, 16} {
		res, err := RunOnce(Spec{
			Strategy: core.MCCIO{Opts: mccioOptions(mcfg, fcfg, wl.TotalBytes(), 4*cluster.MiB)},
			Op:       "write", Machine: mcfg, FS: fcfg, Workload: wl, Verify: true, Calls: calls,
		})
		if err != nil {
			t.Fatalf("calls=%d: %v", calls, err)
		}
		if res.Bytes != wl.TotalBytes() {
			t.Fatalf("calls=%d: bytes %d, want %d", calls, res.Bytes, wl.TotalBytes())
		}
	}
}

func TestMoreCallsMoreOverhead(t *testing.T) {
	// Splitting the same data over more collective calls cannot be
	// faster: each call pays its own planning and synchronization.
	mcfg := testbedMachine(4, 8*cluster.MiB, SigmaBytes, 7)
	fcfg := testbedFS(7)
	wl := workload.IOR{Ranks: 48, BlockSize: 256 << 10, Segments: 16}
	run := func(calls int) float64 {
		res, err := RunOnce(Spec{
			Strategy: collio.TwoPhase{CBBuffer: 8 * cluster.MiB},
			Op:       "write", Machine: mcfg, FS: fcfg, Workload: wl, Calls: calls,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	if one, many := run(1), run(8); many < one {
		t.Fatalf("8 calls (%.3fs) faster than 1 call (%.3fs)", many, one)
	}
}

func tinyOptions() Options {
	return Options{Scale: 0.02, Seed: 7}
}

func TestAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	tab, err := Ablation(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("%d ablation rows, want 10", len(tab.Rows))
	}
}

func TestMemoryPressureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	tab, err := MemoryPressure(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}

func TestStripesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	tab, err := Stripes(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}

func TestFigureRunnersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	old := MemSweep
	MemSweep = []int64{4 << 20}
	defer func() { MemSweep = old }()
	for _, f := range []func(Options) (*Table, []SweepPoint, error){Fig6CollPerf, Fig7IOR120} {
		tab, pts, err := f(tinyOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != 1 || len(pts) != 1 {
			t.Fatalf("rows=%d pts=%d", len(tab.Rows), len(pts))
		}
	}
}
