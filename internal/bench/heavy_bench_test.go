package bench

import (
	"testing"

	"repro/internal/collio"
)

// BenchmarkFig8BaselineWritePoint times the heaviest single simulation
// in the suite — the Figure 8 baseline write at 1080 ranks — as the
// simulator's host-performance canary (it drove the mailbox-tag and
// barrier optimizations recorded in DESIGN.md §7).
func BenchmarkFig8BaselineWritePoint(b *testing.B) {
	o := Options{Scale: 0.25, Seed: 42}.withDefaults()
	wl := iorWorkload(1080, 0.25)
	fcfg := testbedFS(o.Seed)
	mcfg := testbedMachine(90, 8<<20, SigmaBytes, o.Seed)
	for i := 0; i < b.N; i++ {
		_, err := RunOnce(Spec{Strategy: collio.TwoPhase{CBBuffer: 8 << 20}, Op: "write", Machine: mcfg, FS: fcfg, Workload: wl})
		if err != nil {
			b.Fatal(err)
		}
	}
}
