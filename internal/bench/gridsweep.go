package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/iolib"
	"repro/internal/metrics"
	"repro/internal/sweep"
)

// SweepMems are the aggregation-memory points (bytes) of the sharded
// grid sweep: the scarce half of the paper's 2–128 MB axis, where the
// strategies actually separate.
var SweepMems = []int64{2 * cluster.MiB, 4 * cluster.MiB, 8 * cluster.MiB, 16 * cluster.MiB}

// SweepVariants is how many seed variants the grid sweep runs per
// (memory, strategy, op) cell. Each variant perturbs the platform —
// memory variance and storage jitter — through its own derived seed,
// so a cell's rows sample the paper's σ=50 distribution instead of one
// draw from it.
const SweepVariants = 3

// RunSweep runs the sharded parameter grid: SweepMems × both
// strategies × {write, read} × SweepVariants seed variants — 48
// hermetic rows on the 24-process IOR interleaved workload — fanned
// across o.Parallel workers. Row i's platform seed is
// sweep.Seed(o.Seed, i), so every row's randomness is fixed by
// (sweep seed, row index) alone: a worker never consumes another
// row's random draws, and the returned BenchFile is byte-identical at
// any worker count. Per-run metrics registries are merged in row
// order into the file's combined snapshot; reg, when non-nil, absorbs
// the merge for live /metrics exposition.
func RunSweep(o Options, reg *metrics.Registry) (*BenchFile, error) {
	o = o.withDefaults()
	out := &BenchFile{Schema: BenchSchemaVersion, Scale: o.Scale, Seed: o.Seed}
	wl := iorWorkload(24, o.Scale)
	var rows []specRow
	for _, mem := range SweepMems {
		for _, strat := range []string{"two-phase", "mccio"} {
			for _, op := range []string{"write", "read"} {
				for v := 0; v < SweepVariants; v++ {
					seed := sweep.Seed(o.Seed, len(rows))
					fcfg := testbedFS(seed)
					mcfg := testbedMachine(2, mem, SigmaBytes, seed)
					var s iolib.Collective
					if strat == "mccio" {
						s = core.MCCIO{Opts: mccioOptions(mcfg, fcfg, wl.TotalBytes(), mem)}
					} else {
						s = collio.TwoPhase{CBBuffer: mem}
					}
					rows = append(rows, specRow{
						key:  fmt.Sprintf("mem=%s/%s/%s/v%d", mb(mem), strat, op, v),
						spec: Spec{Strategy: s, Op: op, Machine: mcfg, FS: fcfg, Workload: wl},
					})
				}
			}
		}
	}
	var regs []*metrics.Registry
	if reg != nil {
		regs = make([]*metrics.Registry, len(rows))
		for i := range regs {
			regs[i] = metrics.New()
			rows[i].spec.Metrics = regs[i]
		}
	}
	results, hosts, err := runSpecs(o, "sweep", rows)
	if err != nil {
		return nil, fmt.Errorf("bench: sweep: %w", err)
	}
	for i, res := range results {
		row := RowFromResult(rows[i].key, res)
		if hosts != nil {
			row.HostNsOp = hosts[i].WallNs
			row.HostAllocsOp = hosts[i].Allocs
		}
		out.Experiments = append(out.Experiments, row)
	}
	if reg != nil {
		snaps := make([]metrics.Snapshot, len(regs))
		for i, r := range regs {
			snaps[i] = r.Snapshot()
		}
		merged := metrics.MergeSnapshots(snaps...)
		out.Metrics = &merged
		reg.Absorb(merged)
	}
	return out, nil
}
