package bench

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func syntheticFile() *BenchFile {
	return &BenchFile{
		Schema: BenchSchemaVersion, Scale: 1, Seed: 42,
		Experiments: []BenchRow{
			{Key: "mem=4MB/two-phase/write", BandwidthMBps: 100, Bytes: 1 << 20},
			{Key: "mem=4MB/mccio/write", BandwidthMBps: 200, Bytes: 1 << 20},
			{Key: "mem=16MB/mccio/read", BandwidthMBps: 300, Bytes: 1 << 20},
		},
	}
}

func TestBenchFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	want := syntheticFile()
	if err := WriteBenchFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestReadBenchFileRejectsSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	bad := syntheticFile()
	bad.Schema = BenchSchemaVersion + 1
	if err := WriteBenchFile(path, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchFile(path); err == nil {
		t.Error("expected schema-mismatch error, got nil")
	}
}

// TestCompareBenchDetectsRegression injects a synthetic bandwidth drop
// and checks that only it is flagged at a 10% threshold.
func TestCompareBenchDetectsRegression(t *testing.T) {
	old := syntheticFile()
	cur := syntheticFile()
	cur.Experiments[1].BandwidthMBps = 150 // -25%: regression
	cur.Experiments[2].BandwidthMBps = 285 // -5%: within threshold
	tbl, deltas, regressed, err := CompareBench(old, cur, 10)
	if err != nil {
		t.Fatal(err)
	}
	if regressed != 1 {
		t.Fatalf("regressed = %d, want 1 (deltas %+v)", regressed, deltas)
	}
	if !deltas[1].Regressed || deltas[0].Regressed || deltas[2].Regressed {
		t.Errorf("wrong row flagged: %+v", deltas)
	}
	if len(tbl.Rows) != 3 {
		t.Errorf("table rows = %d, want 3", len(tbl.Rows))
	}

	// The same pair passes at a looser threshold.
	if _, _, n, _ := CompareBench(old, cur, 30); n != 0 {
		t.Errorf("regressed at 30%% threshold = %d, want 0", n)
	}
}

func TestCompareBenchMissingKeys(t *testing.T) {
	old := syntheticFile()
	cur := syntheticFile()
	cur.Experiments = cur.Experiments[:2]
	cur.Experiments = append(cur.Experiments, BenchRow{Key: "brand-new", BandwidthMBps: 1})
	_, deltas, regressed, err := CompareBench(old, cur, 10)
	if err != nil {
		t.Fatal(err)
	}
	if regressed != 0 {
		t.Errorf("missing keys must not count as regressions, got %d", regressed)
	}
	if len(deltas) != 2 {
		t.Errorf("deltas = %d, want 2 (dropped key is a note, not a delta)", len(deltas))
	}
}

// TestRunRegressionDeterministic runs the CI bench twice at a small
// scale and requires bit-identical trajectories — the property that
// lets a checked-in baseline gate CI on any host.
func TestRunRegressionDeterministic(t *testing.T) {
	opts := Options{Scale: 0.05, Seed: 42}
	reg := metrics.New()
	a, err := RunRegression(opts, reg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRegression(Options{Scale: 0.05, Seed: 42}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Experiments) != 8 {
		t.Fatalf("experiments = %d, want 8", len(a.Experiments))
	}
	for i := range a.Experiments {
		if a.Experiments[i].BandwidthMBps <= 0 {
			t.Errorf("%s: bandwidth %v, want > 0", a.Experiments[i].Key, a.Experiments[i].BandwidthMBps)
		}
		if !reflect.DeepEqual(a.Experiments[i], b.Experiments[i]) {
			t.Errorf("run-to-run mismatch at %s:\n%+v\n%+v",
				a.Experiments[i].Key, a.Experiments[i], b.Experiments[i])
		}
	}
	if a.Metrics == nil || len(a.Metrics.Families) == 0 {
		t.Fatal("metrics snapshot missing from trajectory")
	}
	if v, ok := a.Metrics.Get("mccio_engine_rounds_total", map[string]string{"op": "write"}); !ok || v <= 0 {
		t.Errorf("mccio_engine_rounds_total{op=write} = %v, %v; want > 0", v, ok)
	}
	if v, ok := a.Metrics.Get("pfs_requests_total", map[string]string{"op": "write"}); !ok || v <= 0 {
		t.Errorf("pfs_requests_total{op=write} = %v, %v; want > 0", v, ok)
	}
}

// TestCompareBenchErrors pins the error contract: nil trajectories and
// schema mismatches fail loudly instead of comparing nothing.
func TestCompareBenchErrors(t *testing.T) {
	ok := syntheticFile()
	if _, _, _, err := CompareBench(nil, ok, 10); err == nil {
		t.Error("nil baseline: want error, got nil")
	}
	if _, _, _, err := CompareBench(ok, nil, 10); err == nil {
		t.Error("nil current: want error, got nil")
	}
	newer := syntheticFile()
	newer.Schema = BenchSchemaVersion + 1
	if _, _, _, err := CompareBench(ok, newer, 10); err == nil {
		t.Error("schema mismatch: want error, got nil")
	}
}

// TestReadBenchFileErrors distinguishes the two stale-baseline modes:
// the file is absent, or it was written by a newer build.
func TestReadBenchFileErrors(t *testing.T) {
	if _, err := ReadBenchFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file: want error, got nil")
	} else if !strings.Contains(err.Error(), "regression bench") {
		t.Errorf("missing file error not actionable: %v", err)
	}
	path := filepath.Join(t.TempDir(), "newer.json")
	newer := syntheticFile()
	newer.Schema = BenchSchemaVersion + 3
	if err := WriteBenchFile(path, newer); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchFile(path); err == nil {
		t.Error("newer schema: want error, got nil")
	} else if !strings.Contains(err.Error(), "newer build") {
		t.Errorf("newer-schema error should name the cause: %v", err)
	}
}
