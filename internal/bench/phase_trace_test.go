package bench

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/iolib"
	"repro/internal/obs"
	"repro/internal/workload"
)

// tracedSpecs are the strategy/op matrix the acceptance tests run.
func tracedSpecs(t *testing.T) []Spec {
	t.Helper()
	mcfg := testbedMachine(4, 8*cluster.MiB, SigmaBytes, 11)
	mcfg.CoresPerNode = 4
	fcfg := testbedFS(11)
	wl := workload.IOR{Ranks: 16, BlockSize: 256 << 10, Segments: 8}
	opts := mccioOptions(mcfg, fcfg, wl.TotalBytes(), 8*cluster.MiB)
	combineOpts := opts
	combineOpts.NodeCombine = true
	var specs []Spec
	for _, s := range []iolib.Collective{
		collio.TwoPhase{CBBuffer: 8 * cluster.MiB},
		collio.TwoPhase{CBBuffer: 8 * cluster.MiB, NodeCombine: true},
		core.MCCIO{Opts: opts},
		core.MCCIO{Opts: combineOpts},
	} {
		for _, op := range []string{"write", "read"} {
			specs = append(specs, Spec{Strategy: s, Op: op, Machine: mcfg, FS: fcfg, Workload: wl})
		}
	}
	return specs
}

func specName(s Spec) string {
	name := s.Strategy.Name()
	switch v := s.Strategy.(type) {
	case collio.TwoPhase:
		if v.NodeCombine {
			name += "+combine"
		}
	case core.MCCIO:
		if v.Opts.NodeCombine {
			name += "+combine"
		}
	}
	return fmt.Sprintf("%s/%s", name, s.Op)
}

// TestTracedPhaseSumsMatchElapsed is the headline acceptance check:
// virtual time only advances inside traced primitives, so each rank's
// top-level phase spans tile its timeline and their sum must equal the
// operation's elapsed time within 5%.
func TestTracedPhaseSumsMatchElapsed(t *testing.T) {
	for _, spec := range tracedSpecs(t) {
		spec := spec
		t.Run(specName(spec), func(t *testing.T) {
			res, sum, err := RunOncePhases(spec)
			if err != nil {
				t.Fatal(err)
			}
			if res.Elapsed <= 0 {
				t.Fatalf("elapsed %v", res.Elapsed)
			}
			if len(sum.PerRank) != spec.Workload.NumRanks() {
				t.Fatalf("%d rank tracks, want %d", len(sum.PerRank), spec.Workload.NumRanks())
			}
			for rank := range sum.PerRank {
				got := sum.RankSeconds(rank)
				if diff := got - res.Elapsed; diff < -0.05*res.Elapsed || diff > 0.05*res.Elapsed {
					t.Errorf("rank %d: phase sum %.6fs vs elapsed %.6fs (%.1f%% off)",
						rank, got, res.Elapsed, (got/res.Elapsed-1)*100)
				}
			}
		})
	}
}

// TestTracedChromeExport checks the trace_event output end to end: the
// JSON parses back, every span is well-formed, spans on one (node,
// rank) track either nest or are disjoint, and track timelines are
// monotone.
func TestTracedChromeExport(t *testing.T) {
	for _, spec := range tracedSpecs(t) {
		spec := spec
		t.Run(specName(spec), func(t *testing.T) {
			tr := obs.NewTracer()
			spec.Tracer = tr
			if _, err := RunOnce(spec); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := tr.WriteChrome(&buf); err != nil {
				t.Fatal(err)
			}
			events, err := obs.ParseChrome(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			checkTrackNesting(t, events)
		})
	}
}

// checkTrackNesting verifies per-(node,rank) span trees: sorted by
// start time, every span either contains the next or ends before it.
func checkTrackNesting(t *testing.T, events []obs.Event) {
	t.Helper()
	const eps = 1e-9
	tracks := map[[2]int][]obs.Event{}
	spans := 0
	for _, e := range events {
		if e.Kind != obs.KindSpan {
			continue
		}
		if e.T1 < e.T0-eps {
			t.Fatalf("span %s ends before it starts: %+v", e.Phase, e)
		}
		tracks[[2]int{e.Loc.Node, e.Loc.Rank}] = append(tracks[[2]int{e.Loc.Node, e.Loc.Rank}], e)
		spans++
	}
	if spans == 0 {
		t.Fatal("trace has no spans")
	}
	for track, evs := range tracks {
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].T0 != evs[j].T0 {
				return evs[i].T0 < evs[j].T0
			}
			return evs[i].T1 > evs[j].T1
		})
		var stack []obs.Event
		prevT0 := evs[0].T0
		for _, e := range evs {
			if e.T0 < prevT0-eps {
				t.Fatalf("track %v: timestamps not monotone", track)
			}
			prevT0 = e.T0
			for len(stack) > 0 && stack[len(stack)-1].T1 <= e.T0+eps {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && e.T1 > stack[len(stack)-1].T1+eps {
				t.Fatalf("track %v: span %s [%.9f,%.9f] escapes enclosing %s [%.9f,%.9f]",
					track, e.Phase, e.T0, e.T1,
					stack[len(stack)-1].Phase, stack[len(stack)-1].T0, stack[len(stack)-1].T1)
			}
			stack = append(stack, e)
		}
	}
}

// TestTracedRunRecordsTaxonomy spot-checks that a memory-conscious run
// emits the event families the subsystem promises: planner instants,
// MPI and PFS detail spans, memory counters, and group/round stamps.
func TestTracedRunRecordsTaxonomy(t *testing.T) {
	// Uniform memory (no variance) so the mem-aware rebalancer leaves
	// the byte-guided groups alone, and a Msggroup of a quarter of the
	// data: four aggregation groups, one per node.
	mcfg := testbedMachine(4, 8*cluster.MiB, 0, 11)
	mcfg.CoresPerNode = 4
	fcfg := testbedFS(11)
	wl := workload.IOR{Ranks: 16, BlockSize: 256 << 10, Segments: 8}
	opts := mccioOptions(mcfg, fcfg, wl.TotalBytes(), 8*cluster.MiB)
	opts.Msggroup = wl.TotalBytes() / 4
	spec := Spec{Strategy: core.MCCIO{Opts: opts}, Op: "write", Machine: mcfg, FS: fcfg, Workload: wl}
	tr := obs.NewTracer()
	spec.Tracer = tr
	if _, err := RunOnce(spec); err != nil {
		t.Fatal(err)
	}
	seen := map[obs.Phase]bool{}
	rounds, groups := false, false
	for _, e := range tr.Events() {
		seen[e.Phase] = true
		if e.Loc.Round >= 0 {
			rounds = true
		}
		if e.Loc.Group > 0 {
			groups = true
		}
	}
	for _, p := range []obs.Phase{
		obs.PhasePlan, obs.PhaseReqExchange, obs.PhaseBarrier, obs.PhasePack,
		obs.PhaseExchange, obs.PhaseIO, obs.PhaseMPIBarrier, obs.PhaseMPIAlltoall,
		obs.PhasePFSWrite, obs.EventGroupDivision, obs.EventPartition,
		obs.EventPlace, obs.EventStripe, obs.CounterMem,
	} {
		if !seen[p] {
			t.Errorf("trace missing %s events", p)
		}
	}
	if !rounds {
		t.Error("no round-stamped events")
	}
	if !groups {
		t.Error("no group-stamped events (multi-group run expected)")
	}
}

// TestPhaseBreakdownExperiment smoke-tests the bench experiment that
// reports per-phase seconds as a table.
func TestPhaseBreakdownExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	tab, err := PhaseBreakdown(Options{Scale: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tab.Rows))
	}
	if len(tab.Headers) != 3+len(breakdownPhases) {
		t.Fatalf("%d headers", len(tab.Headers))
	}
}
