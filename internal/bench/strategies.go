package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/iolib"
	"repro/internal/metrics"
	"repro/internal/twolayer"
	"repro/internal/workload"
)

// StrategiesNodes and StrategiesPerNode fix the strategies bench
// topology: 4 nodes × 4 ranks, the smallest machine where the two-layer
// claim is visible (several ranks share each node's NIC) and CI can
// assert leader count == node count.
const (
	StrategiesNodes   = 4
	StrategiesPerNode = 4
)

// nodeSharedWorkload builds the strategies bench's access pattern: the
// file is a round-robin sequence of tiles, node n owns tile set
// {t : t mod nodes == n}, and every rank on node n requests all of
// node n's tiles. Requests are shared within a node and disjoint
// across nodes — a replicated-input pattern (every process of a
// node-local ensemble member reads the same shard). This is the regime
// the two-layer exchange exists for: the flat two-phase shuffle ships
// each tile across the fabric once per requesting rank, the two-layer
// shuffle once per node.
func nodeSharedWorkload(nodes, perNode, tilesPerNode int, tileBytes int64) workload.Explicit {
	views := make([]datatype.List, nodes*perNode)
	for n := 0; n < nodes; n++ {
		var segs []datatype.Segment
		for t := 0; t < tilesPerNode; t++ {
			tile := int64(t*nodes + n)
			segs = append(segs, datatype.Segment{Off: tile * tileBytes, Len: tileBytes})
		}
		view := datatype.Normalize(segs)
		for c := 0; c < perNode; c++ {
			views[n*perNode+c] = view
		}
	}
	return workload.Explicit{
		Label: fmt.Sprintf("node-shared tiles p=%d (%dx%d) tiles=%d tile=%d",
			nodes*perNode, nodes, perNode, tilesPerNode, tileBytes),
		Views: views,
	}
}

// strategiesWorkload scales the node-shared pattern: 6 tiles per node
// of 256 KiB (at Scale=1), floored so tiny smoke scales stay non-empty.
func strategiesWorkload(scale float64) workload.Explicit {
	tile := int64(float64(256<<10) * scale)
	if tile < 16<<10 {
		tile = 16 << 10
	}
	return nodeSharedWorkload(StrategiesNodes, StrategiesPerNode, 6, tile)
}

// RunStrategies runs the per-strategy comparison: all four collective
// strategies (independent, two-phase, two-layer, mccio) plus the
// composed mccio+two-layer variant, write and read, on the node-shared
// workload at a fixed 16 MB nominal buffer on a 4-node × 4-rank
// machine. Rows are keyed "strat=<name>/<op>" and carry the intra- vs
// inter-node shuffle split and the elected-leader count, which is what
// the CI gates assert on: the two-layer read rows must move strictly
// fewer inter-node bytes than two-phase (leaders ship each node-shared
// range once and fan out locally), the two-layer write rows more
// intra- than inter-node bytes (mates funnel over the memory bus,
// leaders ship the merged image), and the leader count must equal the
// node count.
//
// Like the regression bench this is a pure function of (scale, seed):
// the trajectory is byte-identical on every host and at every
// o.Parallel, so a checked-in BenchFile is a golden.
func RunStrategies(o Options, reg *metrics.Registry) (*BenchFile, error) {
	o = o.withDefaults()
	out := &BenchFile{Schema: BenchSchemaVersion, Scale: o.Scale, Seed: o.Seed}
	const mem = 16 * cluster.MiB
	wl := strategiesWorkload(o.Scale)
	fcfg := testbedFS(o.Seed)
	mcfg := testbedMachine(StrategiesNodes, mem, SigmaBytes, o.Seed)
	mcfg.CoresPerNode = StrategiesPerNode
	mccOpts := mccioOptions(mcfg, fcfg, wl.TotalBytes(), mem)
	mccTL := mccOpts
	mccTL.TwoLayer = true

	entries := []struct {
		name string
		s    iolib.Collective
	}{
		{"independent", iolib.Naive{Opts: iolib.DefaultSieve()}},
		{"two-phase", collio.TwoPhase{CBBuffer: mem}},
		{"two-layer", twolayer.Strategy{CBBuffer: mem}},
		{"mccio", core.MCCIO{Opts: mccOpts}},
		{"mccio+two-layer", core.MCCIO{Opts: mccTL}},
	}
	var rows []specRow
	for _, e := range entries {
		for _, op := range []string{"write", "read"} {
			rows = append(rows, specRow{
				key:  fmt.Sprintf("strat=%s/%s", e.name, op),
				spec: Spec{Strategy: e.s, Op: op, Machine: mcfg, FS: fcfg, Workload: wl},
			})
		}
	}
	var regs []*metrics.Registry
	if reg != nil {
		regs = make([]*metrics.Registry, len(rows))
		for i := range regs {
			regs[i] = metrics.New()
			rows[i].spec.Metrics = regs[i]
		}
	}
	results, hosts, err := runSpecs(o, "strategies", rows)
	if err != nil {
		return nil, fmt.Errorf("bench: strategies: %w", err)
	}
	for i, res := range results {
		row := RowFromResult(rows[i].key, res)
		if hosts != nil {
			row.HostNsOp = hosts[i].WallNs
			row.HostAllocsOp = hosts[i].Allocs
		}
		out.Experiments = append(out.Experiments, row)
	}
	if reg != nil {
		snaps := make([]metrics.Snapshot, len(regs))
		for i, r := range regs {
			snaps[i] = r.Snapshot()
		}
		merged := metrics.MergeSnapshots(snaps...)
		out.Metrics = &merged
		reg.Absorb(merged)
	}
	return out, nil
}

// StrategiesTable renders a strategies trajectory with the columns the
// experiment is about: the intra/inter shuffle split and the leader
// count, per strategy and operation.
func StrategiesTable(b *BenchFile) *Table {
	t := &Table{
		Title: fmt.Sprintf("Strategy comparison: node-shared tiles, %d nodes x %d ranks (scale %.3g, seed %d)",
			StrategiesNodes, StrategiesPerNode, b.Scale, b.Seed),
		Headers: []string{"experiment", "MB/s", "rounds", "aggs", "leaders", "intra MB", "inter MB", "io MB"},
	}
	for _, r := range b.Experiments {
		t.AddRow(r.Key,
			fmt.Sprintf("%.1f", r.BandwidthMBps),
			fmt.Sprintf("%d", r.Rounds),
			fmt.Sprintf("%d", r.Aggregators),
			fmt.Sprintf("%d", r.Leaders),
			fmt.Sprintf("%.2f", float64(r.ShuffleIntra)/1e6),
			fmt.Sprintf("%.2f", float64(r.ShuffleInter)/1e6),
			fmt.Sprintf("%.2f", float64(r.BytesIO)/1e6))
	}
	t.Notes = append(t.Notes,
		"every rank requests its node's full tile set: shared within a node, disjoint across nodes",
		"two-layer reads ship each node's tile set across the fabric once (leader fans out locally);",
		"two-phase ships it once per requesting rank — the inter-node column is the claim")
	return t
}
