package bench

import (
	"bytes"
	"fmt"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/prof"
)

// profileMinSeconds is how much wall time RunProfile keeps the CPU
// profiler running: at the default 100 Hz sampling rate, one second
// yields on the order of a hundred samples — enough for the hot
// planner and engine functions to show up reliably.
const profileMinSeconds = 1.0

// profileMaxRounds caps the regression repeats so a pathologically
// fast (or heavily downscaled) workload cannot loop unbounded.
const profileMaxRounds = 64

// ProfileReport is RunProfile's result: the top CPU and allocation
// sites of the fixed-seed regression workload, decoded from the
// runtime's own pprof output into a machine-readable table — the
// "where does plan time go" answer without leaving the repo's tooling.
type ProfileReport struct {
	// Scale and Seed echo the profiled workload.
	Scale float64 `json:"scale"`
	Seed  uint64  `json:"seed"`
	// Rounds is how many regression sweeps ran under the profiler.
	Rounds int `json:"rounds"`
	// WallSeconds is the profiled wall-clock time.
	WallSeconds float64 `json:"wall_seconds"`
	// CPUSeconds is the total sampled CPU time across all sites.
	CPUSeconds float64 `json:"cpu_seconds"`
	// AllocBytes is the total allocation volume the heap profile saw.
	AllocBytes int64 `json:"alloc_bytes"`
	// CPU and Alloc are the top sites by cumulative value ("cpu" and
	// "alloc_space" sample types respectively).
	CPU   []prof.Site `json:"cpu"`
	Alloc []prof.Site `json:"alloc"`
}

// SiteCapture is an in-flight CPU + allocation capture around
// arbitrary work: StartSiteCapture turns the runtime's CPU profiler
// on, the caller runs whatever it wants profiled, and Stop decodes
// both profiles into a machine-readable ProfileReport. It is the
// mechanism behind both `mccio-bench -experiment profile` (regression
// rounds as the body) and `mccio-bench -sites` (any experiment sweep
// as the body). Only one capture — and no other CPU profiler — can be
// active per process.
type SiteCapture struct {
	cpuBuf bytes.Buffer
	start  time.Time
}

// StartSiteCapture begins a capture. Every return path must call Stop
// exactly once; until then no other CPU profile can start.
func StartSiteCapture() (*SiteCapture, error) {
	c := &SiteCapture{start: time.Now()}
	if err := pprof.StartCPUProfile(&c.cpuBuf); err != nil {
		return nil, fmt.Errorf("bench: profile: %w", err)
	}
	return c, nil
}

// Stop ends the capture, snapshots the allocation profile, and decodes
// both into the top n sites by cumulative value. Rounds is left for
// the caller to fill (Stop cannot know how many workload repetitions
// the body ran); WallSeconds covers start-to-stop.
func (c *SiteCapture) Stop(n int) (*ProfileReport, error) {
	if n <= 0 {
		n = 15
	}
	pprof.StopCPUProfile()
	wall := time.Since(c.start).Seconds()

	runtime.GC() // flush pending frees so alloc_space is current
	var heapBuf bytes.Buffer
	if err := pprof.Lookup("allocs").WriteTo(&heapBuf, 0); err != nil {
		return nil, fmt.Errorf("bench: profile: allocs: %w", err)
	}

	cp, err := prof.Parse(&c.cpuBuf)
	if err != nil {
		return nil, fmt.Errorf("bench: profile: decode cpu: %w", err)
	}
	ap, err := prof.Parse(&heapBuf)
	if err != nil {
		return nil, fmt.Errorf("bench: profile: decode allocs: %w", err)
	}
	rep := &ProfileReport{
		WallSeconds: wall,
		CPUSeconds:  float64(cp.TotalValue("cpu")) / 1e9,
		AllocBytes:  ap.TotalValue("alloc_space"),
	}
	if rep.CPU, err = cp.Top("cpu", n); err != nil {
		return nil, err
	}
	if rep.Alloc, err = ap.Top("alloc_space", n); err != nil {
		return nil, err
	}
	return rep, nil
}

// RunProfile runs the fixed-seed regression workload under the CPU
// profiler (repeating it until profileMinSeconds of wall time has
// accumulated), snapshots the allocation profile, and decodes both
// into the top n sites by cumulative value. It is the engine behind
// `mccio-bench -experiment profile`.
func RunProfile(o Options, n int) (*ProfileReport, error) {
	// Progress lines would interleave with the profiler's own work and
	// the rounds are identical anyway; report rounds in the result.
	o.Progress = nil

	sc, err := StartSiteCapture()
	if err != nil {
		return nil, err
	}
	rounds := 0
	var runErr error
	for time.Since(sc.start).Seconds() < profileMinSeconds && rounds < profileMaxRounds {
		if _, runErr = RunRegression(o, nil); runErr != nil {
			break
		}
		rounds++
	}
	rep, err := sc.Stop(n)
	if runErr != nil {
		return nil, runErr
	}
	if err != nil {
		return nil, err
	}
	rep.Scale = o.withDefaults().Scale
	rep.Seed = o.withDefaults().Seed
	rep.Rounds = rounds
	return rep, nil
}

// fmtSiteVal renders a profile value in its natural unit.
func fmtSiteVal(v int64, unit string) string {
	switch unit {
	case "nanoseconds":
		return fmt.Sprintf("%.3fs", float64(v)/1e9)
	case "bytes":
		return fmt.Sprintf("%.1fMB", float64(v)/1e6)
	}
	return fmt.Sprintf("%d %s", v, unit)
}

// siteTable renders one site list as a Table.
func siteTable(title string, sites []prof.Site) *Table {
	t := &Table{
		Title:   title,
		Headers: []string{"func", "flat", "cum"},
	}
	for _, s := range sites {
		t.AddRow(s.Func, fmtSiteVal(s.Flat, s.Unit), fmtSiteVal(s.Cum, s.Unit))
	}
	return t
}

// Tables renders the report for stdout: the CPU sites and the
// allocation sites, cumulative-descending.
func (r *ProfileReport) Tables() []*Table {
	return []*Table{
		siteTable(fmt.Sprintf("Top CPU sites (%d rounds, %.1fs sampled)", r.Rounds, r.CPUSeconds), r.CPU),
		siteTable(fmt.Sprintf("Top allocation sites (%.1f MB total)", float64(r.AllocBytes)/1e6), r.Alloc),
	}
}
