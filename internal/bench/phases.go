package bench

import (
	"context"
	"fmt"

	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/explain"
	"repro/internal/iolib"
	"repro/internal/obs"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// breakdownPhases are the top-level pipeline phases the breakdown table
// reports, in presentation order.
var breakdownPhases = []obs.Phase{
	obs.PhasePlan, obs.PhaseReqExchange, obs.PhaseBarrier, obs.PhasePack,
	obs.PhaseIntra, obs.PhaseExchange, obs.PhaseRMW, obs.PhaseAssembly,
	obs.PhaseIO,
}

// PhaseBreakdown runs both strategies, write and read, with tracing
// attached and reports where the virtual time goes: per-phase seconds
// summed over all rank tracks. It is the tabular twin of the Chrome
// trace — the same spans, folded instead of plotted.
func PhaseBreakdown(o Options) (*Table, error) {
	o = o.withDefaults()
	wl := iorWorkload(24, o.Scale)
	const nodes = 2
	mem := int64(16 << 20)
	fcfg := testbedFS(o.Seed)
	mcfg := testbedMachine(nodes, mem, SigmaBytes, o.Seed)
	mccOpts := mccioOptions(mcfg, fcfg, wl.TotalBytes(), mem)

	t := &Table{
		Title: "Phase breakdown: per-phase seconds summed over ranks (24 processes, 16MB/agg)",
		Headers: []string{"strategy", "op", "MB/s", "plan", "req-exch", "barrier", "pack",
			"intra", "exchange", "rmw", "assembly", "io"},
	}
	runs := []struct {
		s  iolib.Collective
		op string
	}{
		{collio.TwoPhase{CBBuffer: mem}, "write"},
		{core.MCCIO{Opts: mccOpts}, "write"},
		{collio.TwoPhase{CBBuffer: mem}, "read"},
		{core.MCCIO{Opts: mccOpts}, "read"},
	}
	type phaseOut struct {
		res       trace.Result
		sum       *obs.Summary
		anomalies []explain.Anomaly
	}
	runner := sweep.Sweep[phaseOut]{
		Workers:  o.Parallel,
		Progress: o.Progress,
		Label:    "phases",
		Describe: func(i int, out phaseOut) string {
			return fmt.Sprintf("phases %s %s: %s", runs[i].s.Name(), runs[i].op, out.res.String())
		},
	}
	outs, err := runner.Run(context.Background(), len(runs), func(_ context.Context, i int) (phaseOut, error) {
		r := runs[i]
		// One hermetic recorder per run: the anomaly scan needs the
		// memory timeline, and per-run isolation keeps the table
		// byte-identical at any worker count.
		rec := explain.NewRecorder()
		res, sum, err := RunOncePhases(Spec{Strategy: r.s, Op: r.op, Machine: mcfg, FS: fcfg, Workload: wl, Explain: rec})
		if err != nil {
			return phaseOut{}, fmt.Errorf("%s %s: %w", r.s.Name(), r.op, err)
		}
		anomalies := explain.DetectAnomalies(sum, rec.Events(), explain.AnomalyConfig{})
		return phaseOut{res: res, sum: sum, anomalies: anomalies}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, r := range runs {
		row := []string{r.s.Name(), r.op, fmt.Sprintf("%.1f", outs[i].res.BandwidthMBps())}
		for _, p := range breakdownPhases {
			row = append(row, fmt.Sprintf("%.4f", outs[i].sum.PhaseSeconds(p)))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("workload: %s, %.2f GB total", wl.Name(), float64(wl.TotalBytes())/1e9),
		"seconds are summed across all rank tracks; one rank's phases tile its own timeline",
	)
	for i, r := range runs {
		for _, a := range outs[i].anomalies {
			t.Notes = append(t.Notes,
				fmt.Sprintf("warning (%s %s): %s: %s", r.s.Name(), r.op, a.Kind, a.Detail))
		}
	}
	return t, nil
}
