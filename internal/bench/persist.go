package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// BenchSchemaVersion versions the persisted trajectory format. Readers
// reject files written under a different schema instead of silently
// comparing incompatible rows.
const BenchSchemaVersion = 1

// BenchRow is one experiment point of a persisted trajectory: the
// result a run's rank 0 reported, flattened to stable JSON names so
// trajectories written by different builds stay comparable.
type BenchRow struct {
	Key             string  `json:"key"` // e.g. "mem=16MB/mccio/write"
	BandwidthMBps   float64 `json:"bandwidth_mbps"`
	Bytes           int64   `json:"bytes"`
	Elapsed         float64 `json:"elapsed_s"`
	Rounds          int     `json:"rounds"`
	Aggregators     int     `json:"aggregators"`
	Groups          int     `json:"groups"`
	Remerges        int     `json:"remerges"`
	BytesIO         int64   `json:"bytes_io"`
	IORequests      int64   `json:"io_requests"`
	ShuffleIntra    int64   `json:"shuffle_intra_bytes"`
	ShuffleInter    int64   `json:"shuffle_inter_bytes"`
	ExchangeSeconds float64 `json:"exchange_s"`
	IOSeconds       float64 `json:"io_s"`
	AggBufMedian    float64 `json:"agg_buf_median"`
	AggBufP95       float64 `json:"agg_buf_p95"`
	// Leaders is the elected node-leader count (two-layer exchange
	// rows); zero and omitted elsewhere, which keeps rows written
	// before the field existed byte-identical.
	Leaders int `json:"leaders,omitempty"`

	// Serve-experiment fields (the plan-service benchmark); zero and
	// omitted on simulation rows. Wall-clock latency percentiles are
	// host-dependent, so the regression gate compares only the
	// deterministic fields above.
	ThroughputRPS float64 `json:"throughput_rps,omitempty"`
	LatP50Ms      float64 `json:"lat_p50_ms,omitempty"`
	LatP95Ms      float64 `json:"lat_p95_ms,omitempty"`
	LatP99Ms      float64 `json:"lat_p99_ms,omitempty"`
	HitRate       float64 `json:"hit_rate,omitempty"`

	// Host-side cost columns, recorded only under Options.HostMetrics
	// (mccio-bench -host): the wall-clock nanoseconds and heap
	// allocations the host spent simulating this row. Host-dependent by
	// nature, so CompareBench ignores them; CompareHost gates them with
	// tolerance bands (tight for allocations, which are near-
	// deterministic per binary; wide for wall time, which varies with
	// hardware and load).
	HostNsOp     int64 `json:"host_ns_op,omitempty"`
	HostAllocsOp int64 `json:"host_allocs_op,omitempty"`
}

// RowFromResult flattens one run result into a trajectory row.
func RowFromResult(key string, r trace.Result) BenchRow {
	bufs := r.AggBufferStats()
	return BenchRow{
		Key:             key,
		BandwidthMBps:   r.BandwidthMBps(),
		Bytes:           r.Bytes,
		Elapsed:         r.Elapsed,
		Rounds:          r.Rounds,
		Aggregators:     r.Aggregators,
		Groups:          r.Groups,
		Remerges:        r.Remerges,
		BytesIO:         r.BytesIO,
		IORequests:      r.IORequests,
		ShuffleIntra:    r.BytesShuffleIntra,
		ShuffleInter:    r.BytesShuffleInter,
		ExchangeSeconds: r.ExchangeSeconds,
		IOSeconds:       r.IOSeconds,
		AggBufMedian:    bufs.Median,
		AggBufP95:       bufs.P95,
		Leaders:         r.Leaders,
	}
}

// BenchFile is a persisted bench trajectory: the experiment rows of one
// fixed-seed run plus the metrics-registry snapshot taken after it.
// Virtual-time simulation makes the numbers a pure function of
// (schema, scale, seed), so a checked-in file doubles as a regression
// baseline on any host.
type BenchFile struct {
	Schema      int               `json:"schema"`
	Created     string            `json:"created,omitempty"` // RFC3339, stamped by the writer
	Scale       float64           `json:"scale"`
	Seed        uint64            `json:"seed"`
	Experiments []BenchRow        `json:"experiments"`
	Metrics     *metrics.Snapshot `json:"metrics,omitempty"`
}

// Row returns the row with the given key, or nil.
func (b *BenchFile) Row(key string) *BenchRow {
	for i := range b.Experiments {
		if b.Experiments[i].Key == key {
			return &b.Experiments[i]
		}
	}
	return nil
}

// WriteBenchFile writes the trajectory as indented JSON.
func WriteBenchFile(path string, b *BenchFile) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBenchFile reads a trajectory and rejects unknown schemas. A
// missing file and a file written by a newer build get distinct,
// actionable errors — the two ways a CI baseline goes stale.
func ReadBenchFile(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: trajectory %s: %w (generate one with the regression bench)", path, err)
	}
	var b BenchFile
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if b.Schema > BenchSchemaVersion {
		return nil, fmt.Errorf("bench: %s: written by a newer build (schema %d, this build reads %d); update this tool or regenerate the file", path, b.Schema, BenchSchemaVersion)
	}
	if b.Schema != BenchSchemaVersion {
		return nil, fmt.Errorf("bench: %s: schema %d, this build reads %d; regenerate the file", path, b.Schema, BenchSchemaVersion)
	}
	return &b, nil
}

// Delta is one key's bandwidth movement between two trajectories.
type Delta struct {
	Key       string
	Old, New  float64 // MB/s
	Pct       float64 // (New/Old - 1) * 100
	Regressed bool    // New fell more than the threshold below Old
}

// CompareBench diffs two trajectories row by row (matched on Key) and
// returns a printable table, the per-key deltas, and the number of
// regressions: rows whose bandwidth fell by more than thresholdPct
// percent. Keys present in only one file are reported as notes, never
// as regressions. A nil trajectory or a schema mismatch between the
// two files is an error, not a silent empty comparison.
func CompareBench(old, new *BenchFile, thresholdPct float64) (*Table, []Delta, int, error) {
	if old == nil {
		return nil, nil, 0, fmt.Errorf("bench: compare: baseline trajectory is missing; generate one with the regression bench")
	}
	if new == nil {
		return nil, nil, 0, fmt.Errorf("bench: compare: current trajectory is missing")
	}
	if old.Schema != new.Schema {
		return nil, nil, 0, fmt.Errorf("bench: compare: schema mismatch (baseline %d, current %d); regenerate the baseline", old.Schema, new.Schema)
	}
	t := &Table{
		Title:   "Bench trajectory comparison",
		Headers: []string{"experiment", "old MB/s", "new MB/s", "delta", "verdict"},
	}
	var deltas []Delta
	regressed := 0
	for _, or := range old.Experiments {
		nr := new.Row(or.Key)
		if nr == nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: missing from new trajectory", or.Key))
			continue
		}
		d := Delta{Key: or.Key, Old: or.BandwidthMBps, New: nr.BandwidthMBps}
		if d.Old > 0 {
			d.Pct = (d.New/d.Old - 1) * 100
		}
		d.Regressed = d.New < d.Old*(1-thresholdPct/100)
		verdict := "ok"
		if d.Regressed {
			verdict = "REGRESSED"
			regressed++
		}
		deltas = append(deltas, d)
		t.AddRow(d.Key,
			fmt.Sprintf("%.1f", d.Old),
			fmt.Sprintf("%.1f", d.New),
			fmt.Sprintf("%+.1f%%", d.Pct),
			verdict)
	}
	for _, nr := range new.Experiments {
		if old.Row(nr.Key) == nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: new experiment, no baseline", nr.Key))
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("threshold: fail when bandwidth drops more than %.1f%%", thresholdPct))
	return t, deltas, regressed, nil
}

// HostDelta is one key's host-cost movement between two trajectories.
type HostDelta struct {
	Key                  string
	OldNs, NewNs         int64
	OldAllocs, NewAllocs int64
	NsRegressed          bool // NewNs exceeded OldNs by more than the band
	AllocsRegressed      bool // NewAllocs exceeded OldAllocs by more than the band
}

// CompareHost diffs the host-side columns (host_ns_op, host_allocs_op)
// of two trajectories and counts regressions: rows whose wall time grew
// more than nsTolPct percent or whose allocation count grew more than
// allocTolPct percent. The gates are one-sided — getting faster or
// leaner never fails — and banded rather than exact because host
// numbers are not a pure function of (scale, seed): allocation counts
// shift slightly across Go releases and wall time with hardware, so
// sensible bands are tight for allocations (tens of percent) and wide
// for nanoseconds (hundreds). Rows without host data on either side
// are skipped with a note; comparing two trajectories where no row
// pair has host data is an error (the caller almost certainly forgot
// to record with -host).
func CompareHost(old, new *BenchFile, nsTolPct, allocTolPct float64) (*Table, []HostDelta, int, error) {
	if old == nil || new == nil {
		return nil, nil, 0, fmt.Errorf("bench: compare host: missing trajectory")
	}
	t := &Table{
		Title:   "Host-cost comparison (wall time and allocations per row)",
		Headers: []string{"experiment", "old ms", "new ms", "wall", "old allocs", "new allocs", "alloc", "verdict"},
	}
	var deltas []HostDelta
	regressed, compared := 0, 0
	pctStr := func(oldV, newV int64) string {
		if oldV <= 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", (float64(newV)/float64(oldV)-1)*100)
	}
	for _, or := range old.Experiments {
		nr := new.Row(or.Key)
		if nr == nil {
			continue // CompareBench already notes missing keys
		}
		if or.HostNsOp == 0 || nr.HostNsOp == 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: no host data on one side, skipped", or.Key))
			continue
		}
		compared++
		d := HostDelta{
			Key:   or.Key,
			OldNs: or.HostNsOp, NewNs: nr.HostNsOp,
			OldAllocs: or.HostAllocsOp, NewAllocs: nr.HostAllocsOp,
		}
		d.NsRegressed = float64(d.NewNs) > float64(d.OldNs)*(1+nsTolPct/100)
		d.AllocsRegressed = d.OldAllocs > 0 &&
			float64(d.NewAllocs) > float64(d.OldAllocs)*(1+allocTolPct/100)
		verdict := "ok"
		if d.NsRegressed || d.AllocsRegressed {
			verdict = "REGRESSED"
			regressed++
		}
		deltas = append(deltas, d)
		t.AddRow(d.Key,
			fmt.Sprintf("%.1f", float64(d.OldNs)/1e6),
			fmt.Sprintf("%.1f", float64(d.NewNs)/1e6),
			pctStr(d.OldNs, d.NewNs),
			fmt.Sprintf("%d", d.OldAllocs),
			fmt.Sprintf("%d", d.NewAllocs),
			pctStr(d.OldAllocs, d.NewAllocs),
			verdict)
	}
	if compared == 0 {
		return nil, nil, 0, fmt.Errorf("bench: compare host: no row pair carries host columns; record both trajectories with host metrics enabled (mccio-bench -host)")
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"bands: fail when wall time grows more than %.0f%% or allocations more than %.0f%%", nsTolPct, allocTolPct))
	return t, deltas, regressed, nil
}
