package bench

import (
	"fmt"
	"io"
	"math"

	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/explain"
	"repro/internal/iolib"
	"repro/internal/pfs"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Options steer an experiment run.
type Options struct {
	// Scale multiplies per-rank data volume (dimensionless factor); 1.0
	// is this repo's default experiment size (see EXPERIMENTS.md for
	// the mapping to the paper's sizes). Smaller is faster.
	Scale float64
	// Seed drives memory-variance sampling and storage jitter.
	Seed uint64
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
	// Parallel is how many simulation runs an experiment executes
	// concurrently through internal/sweep. 0 means GOMAXPROCS; 1
	// recovers strictly serial execution. Results are byte-identical
	// for every value: each run is hermetic (its own engine, machine,
	// file system, and sinks) and results land slot-per-row.
	Parallel int
	// Explain, when non-nil, collects the decision audit of experiments
	// that support it (currently the regression bench): each row runs
	// with its own hermetic recorder and the per-row logs are folded in
	// row order, so the merged audit is byte-identical at any Parallel.
	Explain *explain.Recorder
	// HostMetrics records each run's host-side cost — wall-clock
	// nanoseconds and heap allocations — into the trajectory rows of the
	// experiments that persist one (regression, sweep). Recording forces
	// the sweep serial whatever Parallel says: the Go runtime's
	// allocation counter is process-global, so concurrent rows would
	// bleed into each other's counts. The simulated columns remain
	// byte-identical; only the two host_* columns are added, and the
	// deterministic regression gate (CompareBench) never reads them —
	// they are gated separately, with tolerance bands, by CompareHost.
	HostMetrics bool
}

// fill in defaults.
func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// SigmaBytes is the paper's memory-variance parameter: per-process
// aggregation memory is normal with σ = 50 (MB) around the nominal
// buffer size.
const SigmaBytes = 50 * cluster.MB

// MemSweep is the aggregation-buffer sweep of Figures 6–8: 2–128 MB.
var MemSweep = []int64{
	2 * cluster.MiB, 4 * cluster.MiB, 8 * cluster.MiB, 16 * cluster.MiB,
	32 * cluster.MiB, 64 * cluster.MiB, 128 * cluster.MiB,
}

// testbedMachine builds the evaluation platform with a given per-node
// aggregation-memory budget. sigmaBytes > 0 adds the paper's normal
// variance (clipped to [floor, 2×mem]).
func testbedMachine(nodes int, memPerNode, sigmaBytes int64, seed uint64) cluster.Config {
	cfg := cluster.TestbedConfig(nodes)
	cfg.MemPerNode = memPerNode
	if sigmaBytes > 0 {
		cfg.MemSigma = float64(sigmaBytes) / float64(memPerNode)
	}
	// A node under memory pressure still has a quarter of the nominal
	// budget; the ceiling is twice nominal (cluster clips there).
	cfg.MemFloor = memPerNode / 4
	cfg.Seed = seed
	return cfg
}

// testbedFS builds the storage system with shared-interference jitter.
func testbedFS(seed uint64) pfs.Config {
	cfg := pfs.DefaultConfig()
	cfg.JitterMean = 12e-3
	cfg.Seed = seed
	return cfg
}

// mccioOptions derives the strategy tunables for one sweep point, as
// §3's calibration would on this platform: Msgind/Nah from the
// machine+storage configs, Msggroup sized for groups of a few nodes,
// Memmin a quarter of the nominal buffer.
func mccioOptions(mcfg cluster.Config, fcfg pfs.Config, totalBytes int64, memNominal int64) core.Options {
	opts := core.DefaultOptions(mcfg, fcfg)
	groups := mcfg.Nodes / 2
	if groups < 1 {
		groups = 1
	}
	opts.Msggroup = totalBytes / int64(groups)
	opts.Memmin = memNominal / 4
	if opts.Memmin < 256<<10 {
		opts.Memmin = 256 << 10
	}
	return opts
}

// SweepPoint is one memory size's four measurements.
type SweepPoint struct {
	Mem                                    int64
	BaseWrite, MccWrite, BaseRead, MccRead trace.Result
}

// comparisonSweep runs baseline and MCCIO, write and read, across the
// memory sweep on a fixed workload.
func comparisonSweep(title string, wl workload.Workload, nodes int, o Options) (*Table, []SweepPoint, error) {
	o = o.withDefaults()
	t := &Table{
		Title: title,
		Headers: []string{"mem/agg", "two-phase wr MB/s", "mccio wr MB/s", "wr gain",
			"two-phase rd MB/s", "mccio rd MB/s", "rd gain"},
	}
	fcfg := testbedFS(o.Seed)
	// Build the whole grid up front — every row is a hermetic Spec —
	// then fan it out through the sweep pool. Both strategies run on
	// the SAME machine: per-node aggregation memory is normal around
	// the nominal buffer size (the paper's σ=50 setup). The baseline
	// asks for a fixed buffer everywhere and is capped by what
	// physically exists; MCCIO places around the variance.
	var rows []specRow
	for _, mem := range MemSweep {
		mccCfg := testbedMachine(nodes, mem, SigmaBytes, o.Seed)
		mccOpts := mccioOptions(mccCfg, fcfg, wl.TotalBytes(), mem)
		for _, r := range []struct {
			s  iolib.Collective
			op string
		}{
			{collio.TwoPhase{CBBuffer: mem}, "write"},
			{core.MCCIO{Opts: mccOpts}, "write"},
			{collio.TwoPhase{CBBuffer: mem}, "read"},
			{core.MCCIO{Opts: mccOpts}, "read"},
		} {
			rows = append(rows, specRow{
				key:  fmt.Sprintf("%s %s at %s", r.s.Name(), r.op, mb(mem)),
				spec: Spec{Strategy: r.s, Op: r.op, Machine: mccCfg, FS: fcfg, Workload: wl},
			})
		}
	}
	results, _, err := runSpecs(o, title, rows)
	if err != nil {
		return nil, nil, err
	}
	var points []SweepPoint
	for mi, mem := range MemSweep {
		pt := SweepPoint{
			Mem:       mem,
			BaseWrite: results[mi*4],
			MccWrite:  results[mi*4+1],
			BaseRead:  results[mi*4+2],
			MccRead:   results[mi*4+3],
		}
		points = append(points, pt)
		t.AddRow(mb(mem),
			fmt.Sprintf("%.1f", pt.BaseWrite.BandwidthMBps()),
			fmt.Sprintf("%.1f", pt.MccWrite.BandwidthMBps()),
			pct(pt.MccWrite.BandwidthMBps(), pt.BaseWrite.BandwidthMBps()),
			fmt.Sprintf("%.1f", pt.BaseRead.BandwidthMBps()),
			fmt.Sprintf("%.1f", pt.MccRead.BandwidthMBps()),
			pct(pt.MccRead.BandwidthMBps(), pt.BaseRead.BandwidthMBps()),
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("workload: %s, %.2f GB total", wl.Name(), float64(wl.TotalBytes())/1e9),
		fmt.Sprintf("memory variance for mccio platform: sigma=%d MB (paper: 50)", SigmaBytes/cluster.MB),
	)
	avgGain := func(get func(SweepPoint) (float64, float64)) float64 {
		var sum float64
		for _, p := range points {
			m, b := get(p)
			if b > 0 {
				sum += (m/b - 1) * 100
			}
		}
		return sum / float64(len(points))
	}
	wr := avgGain(func(p SweepPoint) (float64, float64) {
		return p.MccWrite.BandwidthMBps(), p.BaseWrite.BandwidthMBps()
	})
	rd := avgGain(func(p SweepPoint) (float64, float64) {
		return p.MccRead.BandwidthMBps(), p.BaseRead.BandwidthMBps()
	})
	t.Notes = append(t.Notes, fmt.Sprintf("average improvement: write %+.1f%%, read %+.1f%%", wr, rd))
	return t, points, nil
}

// Fig6CollPerf regenerates Figure 6: coll_perf (3-D block array) at 120
// processes, write and read bandwidth vs aggregation memory. Paper:
// mccio averaged +34.2% write, +22.9% read.
func Fig6CollPerf(o Options) (*Table, []SweepPoint, error) {
	o = o.withDefaults()
	dim := scaledDim(1024, o.Scale)
	wl := workload.CollPerf3D{
		Dims:  [3]int64{dim, dim, dim},
		Procs: workload.Grid3(120),
		Elem:  4,
	}
	t, pts, err := comparisonSweep("Figure 6: coll_perf, 120 processes (10 nodes x 12)", wl, 10, o)
	if err != nil {
		return nil, nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("array %d^3 x 4B = %.2f GB (paper: 2048^3 = 32 GB; scaled for simulation)", dim, float64(wl.TotalBytes())/1e9),
		"paper reference: avg +34.2% write, +22.9% read")
	return t, pts, nil
}

// scaledDim scales a cubic dimension by the cube root of scale,
// rounded to a multiple of 8 so process grids divide evenly.
func scaledDim(base int64, scale float64) int64 {
	d := int64(float64(base) * math.Cbrt(scale))
	if d < 64 {
		d = 64
	}
	return d / 8 * 8
}

// iorWorkload builds the IOR interleaved pattern used by Figures 7–8:
// 32 MB per process (at Scale=1) in 8 interleaved segments.
func iorWorkload(ranks int, scale float64) workload.IOR {
	block := int64(float64(4*cluster.MiB) * scale)
	if block < 64<<10 {
		block = 64 << 10
	}
	return workload.IOR{Ranks: ranks, BlockSize: block, Segments: 8, TransferSize: block}
}

// Fig7IOR120 regenerates Figure 7: IOR interleaved at 120 processes.
// Paper: write gains +40.3%..+121.7% (best at 16 MB), read +64.6%..
// +97.4% (best at 8 MB); averages +81.2% write, +82.4% read.
func Fig7IOR120(o Options) (*Table, []SweepPoint, error) {
	o = o.withDefaults()
	wl := iorWorkload(120, o.Scale)
	t, pts, err := comparisonSweep("Figure 7: IOR interleaved, 120 processes (10 nodes x 12)", wl, 10, o)
	if err != nil {
		return nil, nil, err
	}
	t.Notes = append(t.Notes, "paper reference: avg +81.2% write, +82.4% read; best write at 16MB, best read at 8MB")
	return t, pts, nil
}

// Fig8IOR1080 regenerates Figure 8: IOR interleaved at 1080 processes.
// Paper: baseline write falls 1631.91 -> 396.36 MB/s (128 -> 2 MB) and
// read 2047.05 -> 861.62; mccio averages +24.3% write, +57.8% read.
func Fig8IOR1080(o Options) (*Table, []SweepPoint, error) {
	o = o.withDefaults()
	wl := iorWorkload(1080, o.Scale)
	t, pts, err := comparisonSweep("Figure 8: IOR interleaved, 1080 processes (90 nodes x 12)", wl, 90, o)
	if err != nil {
		return nil, nil, err
	}
	t.Notes = append(t.Notes, "paper reference: baseline write 1631.91->396.36 MB/s, read 2047.05->861.62 MB/s; avg gains +24.3% write, +57.8% read")
	return t, pts, nil
}
