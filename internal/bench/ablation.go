package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/collio"
	"repro/internal/core"
	"repro/internal/iolib"
	"repro/internal/twolayer"
)

// Ablation isolates each MCCIO mechanism on the Figure-7 workload at a
// fixed 8 MB nominal buffer (the paper's most sensitive point): full
// MCCIO, then each component disabled in turn, plus the two-phase
// baseline, for write and read.
func Ablation(o Options) (*Table, error) {
	o = o.withDefaults()
	const nodes = 10
	const mem = 8 * cluster.MiB
	wl := iorWorkload(120, o.Scale)
	fcfg := testbedFS(o.Seed)
	mccCfg := testbedMachine(nodes, mem, SigmaBytes, o.Seed)
	full := mccioOptions(mccCfg, fcfg, wl.TotalBytes(), mem)

	variant := func(name string, mutate func(*core.Options)) (string, iolib.Collective, cluster.Config) {
		opts := full
		if mutate != nil {
			mutate(&opts)
		}
		return name, core.MCCIO{Opts: opts}, mccCfg
	}

	type entry struct {
		name string
		s    iolib.Collective
		mcfg cluster.Config
	}
	var entries []entry
	add := func(name string, s iolib.Collective, mcfg cluster.Config) {
		entries = append(entries, entry{name, s, mcfg})
	}
	add(variant("mccio (full)", nil))
	add(variant("+ node combining", func(op *core.Options) { op.NodeCombine = true }))
	add(variant("+ two-layer exchange", func(op *core.Options) { op.TwoLayer = true }))
	add(variant("no group division", func(op *core.Options) { op.DisableGroups = true }))
	add(variant("no memory-aware placement", func(op *core.Options) { op.DisableMemAware = true }))
	add(variant("no remerging", func(op *core.Options) { op.DisableRemerge = true }))
	add(variant("Nah=1 (one aggregator/node)", func(op *core.Options) { op.Nah = 1 }))
	// Same varied machine for the comparators: the baseline's fixed
	// buffer is capped by what physically exists on each node.
	add("two-phase baseline", collio.TwoPhase{CBBuffer: mem}, mccCfg)
	add("two-layer baseline", twolayer.Strategy{CBBuffer: mem}, mccCfg)
	add("independent I/O", iolib.Naive{Opts: iolib.DefaultSieve()}, mccCfg)

	t := &Table{
		Title:   "Ablation: MCCIO mechanisms on IOR 120 procs, 8MB nominal buffer",
		Headers: []string{"variant", "write MB/s", "read MB/s", "rounds(w)", "aggs(w)", "groups(w)", "inter-shuffle MB(w)"},
	}
	var rows []specRow
	for _, e := range entries {
		for _, op := range []string{"write", "read"} {
			rows = append(rows, specRow{
				key:  fmt.Sprintf("ablation %s %s", e.name, op),
				spec: Spec{Strategy: e.s, Op: op, Machine: e.mcfg, FS: fcfg, Workload: wl},
			})
		}
	}
	results, _, err := runSpecs(o, "ablation", rows)
	if err != nil {
		return nil, err
	}
	for ei, e := range entries {
		wres, rres := results[ei*2], results[ei*2+1]
		t.AddRow(e.name,
			fmt.Sprintf("%.1f", wres.BandwidthMBps()),
			fmt.Sprintf("%.1f", rres.BandwidthMBps()),
			fmt.Sprintf("%d", wres.Rounds),
			fmt.Sprintf("%d", wres.Aggregators),
			fmt.Sprintf("%d", wres.Groups),
			fmt.Sprintf("%.1f", float64(wres.BytesShuffleInter)/1e6),
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("workload: %s", wl.Name()),
		"independent I/O is competitive on THIS pattern because its blocks are large (4MB at scale 1) and stripe-aligned;",
		"shrink the blocks (examples/ior) and it collapses — the regime collective I/O exists for")
	return t, nil
}

// MemoryPressure reports the memory-consumption side of the paper's
// claim: per-aggregator buffer mean and coefficient of variation, and
// per-node ledger high-water marks, for baseline vs MCCIO at a small
// buffer under variance.
func MemoryPressure(o Options) (*Table, error) {
	o = o.withDefaults()
	const nodes = 10
	const mem = 8 * cluster.MiB
	wl := iorWorkload(120, o.Scale)
	fcfg := testbedFS(o.Seed)
	mccCfg := testbedMachine(nodes, mem, SigmaBytes, o.Seed)
	baseCfg := testbedMachine(nodes, mem, SigmaBytes, o.Seed) // same varied machine: fairness
	t := &Table{
		Title:   "Aggregator memory consumption under variance (IOR 120 procs, 8MB nominal)",
		Headers: []string{"strategy", "aggs", "mean buf MB", "cv", "max buf MB", "remerges"},
	}
	entries := []struct {
		name string
		s    iolib.Collective
		cfg  cluster.Config
	}{
		{"two-phase", collio.TwoPhase{CBBuffer: mem}, baseCfg},
		{"mccio", core.MCCIO{Opts: mccioOptions(mccCfg, fcfg, wl.TotalBytes(), mem)}, mccCfg},
	}
	var rows []specRow
	for _, e := range entries {
		rows = append(rows, specRow{
			key:  "memory " + e.name,
			spec: Spec{Strategy: e.s, Op: "write", Machine: e.cfg, FS: fcfg, Workload: wl},
		})
	}
	results, _, err := runSpecs(o, "memory", rows)
	if err != nil {
		return nil, err
	}
	for ei, e := range entries {
		res := results[ei]
		s := res.AggBufferStats()
		cv := 0.0
		if s.Mean > 0 {
			cv = s.Std / s.Mean
		}
		t.AddRow(e.name,
			fmt.Sprintf("%d", res.Aggregators),
			fmt.Sprintf("%.2f", s.Mean/1e6),
			fmt.Sprintf("%.3f", cv),
			fmt.Sprintf("%.2f", s.Max/1e6),
			fmt.Sprintf("%d", res.Remerges),
		)
	}
	return t, nil
}
