package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result: a title, column headers, and
// rows of cells. Experiments return Tables; cmd/mccio-bench renders
// them as aligned text or CSV.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) {
	fmt.Fprintf(w, "\n%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	printRow(t.Headers)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// WriteCSV renders the table as CSV (title and notes as comments).
func (t *Table) WriteCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", t.Title)
	fmt.Fprintln(w, strings.Join(t.Headers, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
}

// mb formats a byte count as a compact MB/MiB-style label.
func mb(bytes int64) string {
	switch {
	case bytes >= 1<<20 && bytes%(1<<20) == 0:
		return fmt.Sprintf("%dMB", bytes>>20)
	case bytes >= 1<<10 && bytes%(1<<10) == 0:
		return fmt.Sprintf("%dKB", bytes>>10)
	default:
		return fmt.Sprintf("%dB", bytes)
	}
}

// pct formats an improvement of a over b in percent.
func pct(a, b float64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (a/b-1)*100)
}
