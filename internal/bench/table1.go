package bench

import "fmt"

// table1Row is one line of the paper's Table 1: a system parameter in
// 2010, its 2018 exascale projection, and the growth factor.
type table1Row struct {
	Name   string
	V2010  float64
	V2018  float64
	Unit   string
	factor float64 // paper's rounded factor; 0 = compute
}

// table1Data reproduces Table 1 ("Potential exascale computer design
// and its relationship to current HPC designs", after Vetter et al.).
var table1Data = []table1Row{
	{"System Peak", 2e15, 1e18, "f/s", 500},
	{"Power", 6e6, 20e6, "W", 3},
	{"System Memory", 0.3e15, 10e15, "B", 33},
	{"Node Performance", 0.125e12, 10e12, "f/s", 80},
	{"Node Memory BW", 25e9, 400e9, "B/s", 16},
	{"Node Concurrency", 12, 1000, "CPUs", 83},
	{"Interconnect BW", 1.5e9, 50e9, "B/s", 33},
	{"System Size (nodes)", 20e3, 1e6, "nodes", 50},
	{"Total Concurrency", 225e3, 1e9, "", 4444},
	{"Storage", 15e15, 300e15, "B", 20},
	{"I/O Bandwidth", 0.2e12, 20e12, "B/s", 100},
}

// Table1 regenerates the paper's Table 1 and appends the derived rows
// its §1 argument rests on: memory per core and off-chip bandwidth per
// core, computed by the paper's own formula MB/(SS·NC) — which shrink
// even as everything else grows. That shrinkage is the premise of
// memory-conscious collective I/O.
func Table1() *Table {
	t := &Table{
		Title:   "Table 1: potential exascale design vs 2010 HPC design",
		Headers: []string{"parameter", "2010", "2018", "factor change"},
	}
	get := func(name string) table1Row {
		for _, r := range table1Data {
			if r.Name == name {
				return r
			}
		}
		panic("bench: missing table1 row " + name)
	}
	for _, r := range table1Data {
		f := r.factor
		if f == 0 {
			f = r.V2018 / r.V2010
		}
		t.AddRow(r.Name, human(r.V2010, r.Unit), human(r.V2018, r.Unit), fmt.Sprintf("%.0f", f))
	}
	// Derived pressure rows.
	memPerCore2010 := get("System Memory").V2010 / get("Total Concurrency").V2010
	memPerCore2018 := get("System Memory").V2018 / get("Total Concurrency").V2018
	bwPerCore2010 := get("Node Memory BW").V2010 / get("Node Concurrency").V2010
	bwPerCore2018 := get("Node Memory BW").V2018 / get("Node Concurrency").V2018
	t.AddRow("Memory per core (derived)", human(memPerCore2010, "B"), human(memPerCore2018, "B"),
		fmt.Sprintf("%.2f", memPerCore2018/memPerCore2010))
	t.AddRow("Off-chip BW per core (derived)", human(bwPerCore2010, "B/s"), human(bwPerCore2018, "B/s"),
		fmt.Sprintf("%.2f", bwPerCore2018/bwPerCore2010))
	t.Notes = append(t.Notes,
		"memory-per-core factor = MB/(SS*NC) = 33/(50*83) ≈ 0.008: average memory per core drops to megabytes",
		"both derived rows shrink while total concurrency grows 4444x — the premise of memory-conscious collective I/O")
	return t
}

// human formats a quantity with SI prefixes.
func human(v float64, unit string) string {
	abs := v
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= 1e18:
		return fmt.Sprintf("%.3g E%s", v/1e18, unit)
	case abs >= 1e15:
		return fmt.Sprintf("%.3g P%s", v/1e15, unit)
	case abs >= 1e12:
		return fmt.Sprintf("%.3g T%s", v/1e12, unit)
	case abs >= 1e9:
		return fmt.Sprintf("%.3g G%s", v/1e9, unit)
	case abs >= 1e6:
		return fmt.Sprintf("%.3g M%s", v/1e6, unit)
	case abs >= 1e3:
		return fmt.Sprintf("%.3g K%s", v/1e3, unit)
	default:
		return fmt.Sprintf("%.3g %s", v, unit)
	}
}
