package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/metrics"
)

// marshalBench flattens a trajectory to canonical JSON for byte
// comparison. Created is never set by the runners, so the encoding is
// a pure function of the rows and the merged metrics snapshot.
func marshalBench(t *testing.T, b *BenchFile) []byte {
	t.Helper()
	b.Created = ""
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSweepDeterminismRegression is the tentpole proof: the regression
// trajectory — experiment rows AND merged metrics snapshot — is
// byte-identical whether the rows run serially or across 8 workers.
func TestSweepDeterminismRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	run := func(parallel int) []byte {
		reg := metrics.New()
		b, err := RunRegression(Options{Scale: 0.05, Seed: 9, Parallel: parallel}, reg)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return marshalBench(t, b)
	}
	serial, parallel := run(1), run(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("regression trajectory differs between -parallel 1 and -parallel 8:\nserial:   %s\nparallel: %s", serial, parallel)
	}
}

// TestSweepDeterminismGrid proves the same for the 48-row sharded grid,
// whose per-row seeds come from sweep.Seed(seed, row) — the path where
// a worker stealing another row's random draws would show up first.
func TestSweepDeterminismGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("48-run experiment")
	}
	run := func(parallel int) *BenchFile {
		reg := metrics.New()
		b, err := RunSweep(Options{Scale: 0.02, Seed: 9, Parallel: parallel}, reg)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return b
	}
	serialFile, parallelFile := run(1), run(8)
	if n := len(serialFile.Experiments); n != len(SweepMems)*2*2*SweepVariants {
		t.Fatalf("grid has %d rows, want %d", n, len(SweepMems)*2*2*SweepVariants)
	}
	serial, parallel := marshalBench(t, serialFile), marshalBench(t, parallelFile)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("grid trajectory differs between -parallel 1 and -parallel 8:\nserial:   %s\nparallel: %s", serial, parallel)
	}
}

// TestSweepDeterminismVariantsDiffer guards the seed derivation: two
// variants of the same grid cell must see different platforms (else
// SweepVariants is sampling one draw three times).
func TestSweepDeterminismVariantsDiffer(t *testing.T) {
	if testing.Short() {
		t.Skip("48-run experiment")
	}
	b, err := RunSweep(Options{Scale: 0.02, Seed: 9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v0 := b.Row("mem=2MB/mccio/write/v0")
	v1 := b.Row("mem=2MB/mccio/write/v1")
	if v0 == nil || v1 == nil {
		t.Fatal("expected variant rows missing")
	}
	if v0.BandwidthMBps == v1.BandwidthMBps && v0.Elapsed == v1.Elapsed {
		t.Fatalf("variants v0 and v1 identical: %+v", *v0)
	}
}
