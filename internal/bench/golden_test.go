package bench

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"repro/internal/metrics"
)

// The seed-engine goldens: trajectories (rows plus merged metrics
// snapshot) written by the pre-optimization engine at fixed (scale,
// seed). The hot-path work — pooled extent arenas, flattened event
// queue, cached reserve paths, mailbox flush reuse, sparse-exchange
// scratch — is host-side only by contract: every virtual time, float
// operation order, and event tie-break must be preserved, so the
// trajectory the current engine produces must match these files byte
// for byte. A diff here means an optimization changed simulation
// semantics, not just speed.
func readGolden(t *testing.T, name string) (*BenchFile, []byte) {
	t.Helper()
	g, err := ReadBenchFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	g.Created = ""
	canon, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, canon
}

// checkGolden runs the experiment at the golden's own (scale, seed) and
// compares canonical encodings.
func checkGolden(t *testing.T, name string, run func(Options) (*BenchFile, error), parallel int) {
	g, want := readGolden(t, name)
	got, err := run(Options{Scale: g.Scale, Seed: g.Seed, Parallel: parallel})
	if err != nil {
		t.Fatal(err)
	}
	have := marshalBench(t, got)
	if !bytes.Equal(have, want) {
		t.Fatalf("trajectory diverged from seed engine golden %s (parallel=%d):\ngolden:  %s\ncurrent: %s",
			name, parallel, want, have)
	}
}

// TestGoldenRegressionSeedEngine locks the fixed-seed regression rows
// to the seed engine, serially and through the worker pool.
func TestGoldenRegressionSeedEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	run := func(o Options) (*BenchFile, error) { return RunRegression(o, metrics.New()) }
	checkGolden(t, "regression_seed_engine.json", run, 1)
	checkGolden(t, "regression_seed_engine.json", run, 8)
}

// TestGoldenSweepSeedEngine locks the 48-row sharded grid — the
// trajectory EXPERIMENTS.md §18's speedup walkthrough measures — to the
// seed engine at the walkthrough's own scale and seed.
func TestGoldenSweepSeedEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("48-run experiment")
	}
	run := func(o Options) (*BenchFile, error) { return RunSweep(o, metrics.New()) }
	checkGolden(t, "sweep_seed_engine.json", run, 1)
	checkGolden(t, "sweep_seed_engine.json", run, 8)
}

// TestGoldenStrategiesSeedEngine locks the per-strategy comparison —
// the rows CI's two-layer gates assert on — to the seed engine,
// serially and through the worker pool.
func TestGoldenStrategiesSeedEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	run := func(o Options) (*BenchFile, error) { return RunStrategies(o, metrics.New()) }
	checkGolden(t, "strategies_seed_engine.json", run, 1)
	checkGolden(t, "strategies_seed_engine.json", run, 8)
}

// TestGoldenHostMetricsDoNotPerturb proves host-cost recording is an
// observer: a regression run with HostMetrics on must produce the same
// simulated columns as the golden, differing only in the two host_*
// fields.
func TestGoldenHostMetricsDoNotPerturb(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	g, want := readGolden(t, "regression_seed_engine.json")
	got, err := RunRegression(Options{Scale: g.Scale, Seed: g.Seed, HostMetrics: true}, metrics.New())
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Experiments {
		r := &got.Experiments[i]
		if r.HostNsOp <= 0 || r.HostAllocsOp <= 0 {
			t.Fatalf("row %s: host columns not recorded: ns=%d allocs=%d", r.Key, r.HostNsOp, r.HostAllocsOp)
		}
		r.HostNsOp, r.HostAllocsOp = 0, 0
	}
	if have := marshalBench(t, got); !bytes.Equal(have, want) {
		t.Fatalf("HostMetrics perturbed the simulated columns:\ngolden:  %s\ncurrent: %s", want, have)
	}
}
