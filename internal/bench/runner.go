// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (Table 1, Figures 6–8) plus the
// ablation studies DESIGN.md calls out, on the simulated testbed.
//
// Each experiment sweeps the aggregation memory size, runs the baseline
// two-phase strategy and memory-conscious collective I/O on identical
// platforms, and reports application bandwidth in MB/s — the same rows
// the paper plots.
package bench

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/cluster"
	"repro/internal/datatype"
	"repro/internal/explain"
	"repro/internal/faults"
	"repro/internal/iolib"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Spec is one simulation run: a strategy applied to a workload on a
// platform.
type Spec struct {
	Strategy iolib.Collective
	Op       string // "write" or "read"
	Machine  cluster.Config
	FS       pfs.Config
	Workload workload.Workload
	// Verify runs with real data and checks every byte read back
	// (write runs are followed by a verified read). Only for small
	// functional runs; benchmarks use phantom payloads.
	Verify bool
	// Calls splits each rank's view into this many consecutive chunks
	// and issues one collective call per chunk — IOR's transfer-size
	// axis (one MPI_File_write_all per transfer). 0 or 1 means a single
	// call covering the whole view. Elapsed spans all calls.
	Calls int
	// Tracer, when non-nil, records event-level spans for the run. The
	// runner binds it to the engine's virtual clock and attaches it to
	// the machine; nil keeps tracing fully disabled.
	Tracer *obs.Tracer
	// Metrics, when non-nil, aggregates typed counters/gauges/histograms
	// for the run. The runner attaches it to the machine before the
	// file system and MPI world are built (they resolve instrument
	// handles at construction); nil keeps collection fully disabled.
	Metrics *metrics.Registry
	// Explain, when non-nil, receives the run's decision audit: planner
	// events (group division, bisections, remerges with reasons,
	// placements) and per-aggregator memory-ledger samples at round
	// boundaries. The runner binds it to the engine's virtual clock and
	// attaches it to the machine; nil keeps the audit fully disabled.
	Explain *explain.Recorder
	// Faults, when non-nil, injects the schedule's deterministic faults
	// into the run: the runner binds it to the run's observability sinks
	// and attaches it to the MPI delivery layer and the file system. Use
	// a fresh Schedule per run — exactly-once state lives inside it. nil
	// keeps the fault path fully disabled (zero cost).
	Faults *faults.Schedule
}

// RunOnce executes one collective operation and returns the global
// result (bandwidth, rounds, aggregators, traffic, memory stats).
func RunOnce(spec Spec) (trace.Result, error) {
	nprocs := spec.Workload.NumRanks()
	engine := simtime.NewEngine()
	machine, err := cluster.New(spec.Machine)
	if err != nil {
		return trace.Result{}, err
	}
	if nprocs > machine.NumRanks() {
		return trace.Result{}, fmt.Errorf("bench: workload needs %d ranks, machine has %d", nprocs, machine.NumRanks())
	}
	// Attach observability sinks before the file system and MPI world
	// are built: both resolve their instrument handles at construction.
	if spec.Tracer != nil {
		spec.Tracer.SetClock(engine.Now)
		machine.SetTracer(spec.Tracer)
	}
	if spec.Metrics != nil {
		machine.SetMetrics(spec.Metrics)
	}
	if spec.Explain != nil {
		spec.Explain.SetClock(engine.Now)
		machine.SetExplain(spec.Explain)
	}
	fs, err := pfs.New(spec.FS, machine)
	if err != nil {
		return trace.Result{}, err
	}
	world, err := mpi.NewWorld(engine, machine, nprocs)
	if err != nil {
		return trace.Result{}, err
	}
	if spec.Faults != nil {
		spec.Faults.Bind(spec.Metrics, spec.Tracer)
		world.SetFaults(spec.Faults)
		fs.SetFaults(spec.Faults)
	}
	file := iolib.Open(fs, "bench.dat")

	var res trace.Result
	var verifyErr error
	world.Start(func(c *mpi.Comm) {
		view := spec.Workload.View(c.Rank())
		data := buffer.New(view.TotalBytes(), !spec.Verify)
		if spec.Verify {
			fillView(view, data, uint64(c.Rank()))
		}
		if spec.Op == "read" && spec.Verify {
			// Seed the file so the verified read has bytes to fetch.
			c.Barrier()
			if err := seedFile(file, c, view, uint64(c.Rank())); err != nil && verifyErr == nil {
				verifyErr = err
			}
			c.Barrier()
		}
		calls := spec.Calls
		if calls < 1 {
			calls = 1
		}
		if calls == 1 {
			r := iolib.Run(spec.Strategy, spec.Op, file, c, view, data, &trace.Metrics{})
			if c.Rank() == 0 {
				res = r
			}
		} else {
			// One collective per chunk: split the view into `calls`
			// consecutive byte ranges, slicing the flat buffer along.
			r := runChunked(spec, file, c, view, data, calls)
			if c.Rank() == 0 {
				res = r
			}
		}
		if spec.Verify {
			if err := verifyAfter(spec.Op, file, c, view, data, uint64(c.Rank())); err != nil && verifyErr == nil {
				verifyErr = err
			}
		}
	})
	if err := engine.Run(); err != nil {
		return trace.Result{}, err
	}
	if verifyErr != nil {
		return trace.Result{}, verifyErr
	}
	// Bridge the run's final counter values into the trace so the
	// timeline and the aggregates land in one artifact.
	spec.Tracer.FlushMetrics(spec.Metrics)
	return res, nil
}

// RunOncePhases executes spec with a fresh tracer attached and returns
// the result together with the trace's phase-breakdown summary.
func RunOncePhases(spec Spec) (trace.Result, *obs.Summary, error) {
	tr := obs.NewTracer()
	spec.Tracer = tr
	res, err := RunOnce(spec)
	if err != nil {
		return trace.Result{}, nil, err
	}
	return res, obs.Summarize(tr.Events()), nil
}

// runChunked issues one collective call per consecutive view chunk and
// folds the results: total bytes, summed metrics, elapsed spanning all
// calls.
func runChunked(spec Spec, file *iolib.File, c *mpi.Comm, view datatype.List, data buffer.Buf, calls int) trace.Result {
	var total trace.Result
	var bufPos int64
	perCall := (int64(len(view)) + int64(calls) - 1) / int64(calls)
	for i := 0; i < calls; i++ {
		lo := int64(i) * perCall
		hi := lo + perCall
		if lo > int64(len(view)) {
			lo = int64(len(view))
		}
		if hi > int64(len(view)) {
			hi = int64(len(view))
		}
		chunk := view[lo:hi]
		n := chunk.TotalBytes()
		r := iolib.Run(spec.Strategy, spec.Op, file, c, chunk, data.Slice(bufPos, n), &trace.Metrics{})
		bufPos += n
		if c.Rank() == 0 {
			total.Bytes += r.Bytes
			total.Elapsed += r.Elapsed
			total.Metrics.Merge(r.Metrics)
			total.Strategy = r.Strategy
			total.Op = r.Op
		}
	}
	return total
}

// fillView lays the per-offset pattern into a flat view buffer.
func fillView(view datatype.List, data buffer.Buf, tag uint64) {
	var pos int64
	for _, s := range view {
		data.Slice(pos, s.Len).Fill(tag, s.Off)
		pos += s.Len
	}
}

// seedFile writes the rank's pattern independently before a read test.
func seedFile(f *iolib.File, c *mpi.Comm, view datatype.List, tag uint64) error {
	data := buffer.NewReal(view.TotalBytes())
	fillView(view, data, tag)
	f.WriteIndependent(c.Proc(), c.WorldRank(c.Rank()), view, data, iolib.SieveOptions{})
	return nil
}

// verifyAfter checks the operation's bytes: after a read, the
// destination buffer; after a write, the file contents re-read
// independently.
func verifyAfter(op string, f *iolib.File, c *mpi.Comm, view datatype.List, data buffer.Buf, tag uint64) error {
	check := data
	if op == "write" {
		c.Barrier()
		check = buffer.NewReal(view.TotalBytes())
		f.ReadIndependent(c.Proc(), c.WorldRank(c.Rank()), view, check, iolib.SieveOptions{BufSize: 4 << 20})
	}
	var pos int64
	for _, s := range view {
		if i := check.Slice(pos, s.Len).Verify(tag, s.Off); i != -1 {
			return fmt.Errorf("bench: rank %d %s verification failed in %v at byte %d", c.Rank(), op, s, i)
		}
		pos += s.Len
	}
	return nil
}
