package bench

import (
	"strings"
	"testing"
)

func TestRunProfileNamesEngineSites(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the regression workload under the profiler for ~1s")
	}
	rep, err := RunProfile(Options{Scale: 0.1, Seed: 42, Parallel: 1}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds < 1 {
		t.Fatalf("profiled %d rounds, want at least 1", rep.Rounds)
	}
	if len(rep.Alloc) == 0 || rep.AllocBytes == 0 {
		t.Fatalf("allocation profile empty: %+v", rep)
	}
	// The regression workload spends its time in the planner and the
	// engine; the allocation profile is deterministic enough that at
	// least one attributed site must come from there. (The CPU profile
	// is sampled and can be starved on a loaded host, so it is only
	// checked when it has samples at all.)
	engineSite := func(sites []string) bool {
		for _, fn := range sites {
			if strings.Contains(fn, "collio") || strings.Contains(fn, "datatype") ||
				strings.Contains(fn, "core") {
				return true
			}
		}
		return false
	}
	var allocFns, cpuFns []string
	for _, s := range rep.Alloc {
		allocFns = append(allocFns, s.Func)
	}
	for _, s := range rep.CPU {
		cpuFns = append(cpuFns, s.Func)
	}
	if !engineSite(allocFns) {
		t.Fatalf("no engine function in top alloc sites:\n%s", strings.Join(allocFns, "\n"))
	}
	if len(rep.CPU) > 0 && rep.CPUSeconds <= 0 {
		t.Fatalf("CPU sites present but zero sampled seconds: %+v", rep.CPU)
	}
	for _, tb := range rep.Tables() {
		if tb.Title == "" || len(tb.Headers) == 0 {
			t.Fatalf("bad table: %+v", tb)
		}
	}
}
