package bench

import (
	"context"
	"fmt"

	"repro/internal/sweep"
	"repro/internal/trace"
)

// specRow is one unit of an experiment sweep: a stable display key and
// the fully built run specification. Rows must be hermetic — a Spec
// carries value-typed configs and strategies, plus per-row sinks only
// (never a tracer, registry, or fault schedule shared with a sibling
// row), which is what makes the sweep safe to parallelize.
type specRow struct {
	key  string
	spec Spec
}

// runSpecs executes the rows through the sweep worker pool — o.Parallel
// runs at a time, GOMAXPROCS when 0, strictly serial when 1 — and
// returns the results slot-per-row: results[i] belongs to rows[i]
// whatever order the runs finished in. Per-row progress lines (key,
// result, ETA) land on o.Progress. A failed row is reported wrapped
// with its key, after every other row has completed.
func runSpecs(o Options, label string, rows []specRow) ([]trace.Result, error) {
	s := sweep.Sweep[trace.Result]{
		Workers:  o.Parallel,
		Progress: o.Progress,
		Label:    label,
		Describe: func(row int, r trace.Result) string { return rows[row].key + ": " + r.String() },
	}
	return s.Run(context.Background(), len(rows), func(_ context.Context, row int) (trace.Result, error) {
		res, err := RunOnce(rows[row].spec)
		if err != nil {
			return trace.Result{}, fmt.Errorf("%s: %w", rows[row].key, err)
		}
		return res, nil
	})
}
