package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/sweep"
	"repro/internal/trace"
)

// specRow is one unit of an experiment sweep: a stable display key and
// the fully built run specification. Rows must be hermetic — a Spec
// carries value-typed configs and strategies, plus per-row sinks only
// (never a tracer, registry, or fault schedule shared with a sibling
// row), which is what makes the sweep safe to parallelize.
type specRow struct {
	key  string
	spec Spec
}

// HostSample is one row's host-side cost: the wall-clock nanoseconds
// and heap allocations (object count, runtime.MemStats.Mallocs delta)
// the process spent executing the row's simulation. Samples exist only
// under Options.HostMetrics and are inherently host-dependent — they
// gate through CompareHost's tolerance bands, never the byte-exact
// regression comparison.
type HostSample struct {
	WallNs int64
	Allocs int64
}

// runSpecs executes the rows through the sweep worker pool — o.Parallel
// runs at a time, GOMAXPROCS when 0, strictly serial when 1 — and
// returns the results slot-per-row: results[i] belongs to rows[i]
// whatever order the runs finished in. Per-row progress lines (key,
// result, ETA) land on o.Progress. A failed row is reported wrapped
// with its key, after every other row has completed.
//
// When o.HostMetrics is set the pool is forced serial (the allocation
// counter is process-global; a concurrent sibling's garbage would land
// in this row's count) and the second return value carries one
// HostSample per row; otherwise it is nil.
func runSpecs(o Options, label string, rows []specRow) ([]trace.Result, []HostSample, error) {
	workers := o.Parallel
	var hosts []HostSample
	if o.HostMetrics {
		workers = 1
		hosts = make([]HostSample, len(rows))
	}
	s := sweep.Sweep[trace.Result]{
		Workers:  workers,
		Progress: o.Progress,
		Label:    label,
		Describe: func(row int, r trace.Result) string { return rows[row].key + ": " + r.String() },
	}
	results, err := s.Run(context.Background(), len(rows), func(_ context.Context, row int) (trace.Result, error) {
		var m0 runtime.MemStats
		var t0 time.Time
		if hosts != nil {
			runtime.ReadMemStats(&m0)
			t0 = time.Now()
		}
		res, err := RunOnce(rows[row].spec)
		if err != nil {
			return trace.Result{}, fmt.Errorf("%s: %w", rows[row].key, err)
		}
		if hosts != nil {
			wall := time.Since(t0)
			var m1 runtime.MemStats
			runtime.ReadMemStats(&m1)
			hosts[row] = HostSample{WallNs: wall.Nanoseconds(), Allocs: int64(m1.Mallocs - m0.Mallocs)}
		}
		return res, nil
	})
	return results, hosts, err
}
