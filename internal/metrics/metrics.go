// Package metrics is the always-on counterpart to internal/obs: where
// obs records *when* things happened (spans on a virtual timeline),
// metrics keeps cheap aggregate instruments — counters, gauges, and
// fixed-bucket histograms — that can be scraped live over HTTP in
// Prometheus text format or dumped once as JSON, and compared across
// runs by the bench-regression gate.
//
// The package is dependency-free (standard library plus
// internal/stats for quantile math) and follows the same disabled-path
// contract as obs.Tracer: a nil *Registry hands out nil instruments,
// and every instrument method is nil-safe and allocation-free, so
// instrumentation stays unconditional in hot loops. Hot paths resolve
// their instrument handles once (per collective, per file system, per
// world) and the per-round cost is a single atomic update — or nothing
// at all when metrics are off.
//
// Instruments are identified by name plus an ordered list of label
// pairs ("op", "write"). Looking the same identity up again returns
// the same instrument, so layers do not need to coordinate
// registration.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates instrument families.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// fvalue is a float64 cell updated with a CAS loop; Prometheus sample
// values are floats, and byte counts stay exact below 2^53.
type fvalue struct {
	bits atomic.Uint64
}

func (v *fvalue) add(d float64) {
	for {
		old := v.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if v.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

func (v *fvalue) set(x float64) { v.bits.Store(math.Float64bits(x)) }

func (v *fvalue) setMax(x float64) {
	for {
		old := v.bits.Load()
		if math.Float64frombits(old) >= x {
			return
		}
		if v.bits.CompareAndSwap(old, math.Float64bits(x)) {
			return
		}
	}
}

func (v *fvalue) get() float64 { return math.Float64frombits(v.bits.Load()) }

// Counter is a monotonically increasing value. A nil *Counter (from a
// nil Registry) ignores every update without allocating.
type Counter struct {
	v fvalue
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter. Negative deltas are ignored (counters
// never decrease).
func (c *Counter) Add(d float64) {
	if c == nil || d <= 0 {
		return
	}
	c.v.add(d)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v.get()
}

// Gauge is a value that can go up and down. Nil-safe like Counter.
type Gauge struct {
	v fvalue
}

// Set stores the value.
func (g *Gauge) Set(x float64) {
	if g == nil {
		return
	}
	g.v.set(x)
}

// Add adjusts the value by d (negative d decreases it).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.v.add(d)
}

// SetMax raises the gauge to x if x is larger — the high-water-mark
// update the memory ledger uses.
func (g *Gauge) SetMax(x float64) {
	if g == nil {
		return
	}
	g.v.setMax(x)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.get()
}

// Histogram counts observations into fixed buckets. Bounds are the
// inclusive upper edges of each bucket, ascending; an implicit +Inf
// bucket catches the rest (out-of-range observations clamp into the
// edge buckets exactly like stats.NewHistogram). Sum and Count make
// rates and means recoverable.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	count  atomic.Int64
	sum    fvalue
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, x) // first bound >= x
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(x)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.get()
}

// Quantile estimates the q-th quantile (0–1) by linear interpolation
// inside the owning bucket, the standard Prometheus estimate. Returns
// 0 with no observations; values in the +Inf bucket report the highest
// finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || q < 0 || q > 1 {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// ExponentialBuckets returns n bounds starting at start, each factor
// times the previous — the shape used for byte-size histograms.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("metrics: invalid exponential buckets")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// DefBytesBuckets spans 64 KiB to 4 GiB by powers of four — wide
// enough for request batches and shuffle rounds alike.
func DefBytesBuckets() []float64 { return ExponentialBuckets(64<<10, 4, 9) }

// DefSecondsBuckets spans 100 µs to ~27 min by powers of four.
func DefSecondsBuckets() []float64 { return ExponentialBuckets(1e-4, 4, 12) }

// child binds an instrument to its rendered label set.
type child struct {
	key    string   // rendered {k="v",...} (empty when unlabelled)
	labels []string // alternating key, value
	inst   any
}

// family is all children of one metric name.
type family struct {
	name, help string
	kind       Kind
	bounds     []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child
}

// Registry owns metric families. The zero of the API is a nil
// *Registry: every method returns a nil instrument whose updates are
// no-ops, so layers attach instrumentation unconditionally.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// New returns an enabled registry.
func New() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// labelKey renders alternating (name, value) pairs as the child key.
// Values are escaped for the Prometheus text format.
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("metrics: odd label list %q", labels))
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// lookup finds or creates the family and child for one identity.
func (r *Registry) lookup(name, help string, kind Kind, bounds []float64, labels []string, make func() any) any {
	r.mu.Lock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, children: map[string]*child{}}
		r.fams[name] = f
	}
	r.mu.Unlock()
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	ch := f.children[key]
	if ch == nil {
		ch = &child{key: key, labels: append([]string(nil), labels...), inst: make()}
		f.children[key] = ch
	}
	return ch.inst
}

// Counter returns the counter for name and label pairs, creating it on
// first use. labels alternate key and value ("op", "write"). Nil-safe:
// a nil registry returns a nil counter.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindCounter, nil, labels, func() any { return new(Counter) }).(*Counter)
}

// Gauge returns the gauge for name and label pairs. Nil-safe.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindGauge, nil, labels, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram returns the histogram for name and label pairs, with the
// given bucket bounds (ascending upper edges; only the first caller's
// bounds are used). Nil-safe.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: histogram %s with no buckets", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %s bounds not ascending", name))
		}
	}
	return r.lookup(name, help, KindHistogram, bounds, labels, func() any {
		return &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]atomic.Int64, len(bounds)+1)}
	}).(*Histogram)
}

// families returns a name-sorted snapshot of the registered families
// and their key-sorted children.
func (r *Registry) families() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// sortedChildren returns a family's children ordered by label key.
func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	out := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		out = append(out, c)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}
