package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// fillRun builds a registry shaped like one bench run's worth of
// instruments, scaled by k so runs are distinguishable.
func fillRun(k float64) *Registry {
	r := New()
	r.Counter("rounds_total", "engine rounds", "op", "write").Add(10 * k)
	r.Counter("rounds_total", "engine rounds", "op", "read").Add(3 * k)
	r.Gauge("mem_peak_bytes", "ledger peak", "node", "0").Set(100 * k)
	h := r.Histogram("io_bytes", "per-round IO", []float64{10, 100}, "ost", "1")
	h.Observe(5 * k)
	h.Observe(50 * k)
	return r
}

// TestMergeSnapshotsEqualsSharedRegistry: merging per-run snapshots in
// row order must reproduce what a single registry shared across the
// same runs (executed serially in that order) reports.
func TestMergeSnapshotsEqualsSharedRegistry(t *testing.T) {
	shared := New()
	var snaps []Snapshot
	for _, k := range []float64{1, 2, 3} {
		snaps = append(snaps, fillRun(k).Snapshot())
		// Replay the same updates on the shared registry.
		shared.Counter("rounds_total", "engine rounds", "op", "write").Add(10 * k)
		shared.Counter("rounds_total", "engine rounds", "op", "read").Add(3 * k)
		shared.Gauge("mem_peak_bytes", "ledger peak", "node", "0").Set(100 * k)
		h := shared.Histogram("io_bytes", "per-round IO", []float64{10, 100}, "ost", "1")
		h.Observe(5 * k)
		h.Observe(50 * k)
	}
	merged := MergeSnapshots(snaps...)
	want := shared.Snapshot()
	a, _ := json.Marshal(merged)
	b, _ := json.Marshal(want)
	if !bytes.Equal(a, b) {
		t.Fatalf("merged snapshot differs from shared-registry snapshot:\nmerged: %s\nshared: %s", a, b)
	}
	// Spot-check semantics: counters summed, gauge last-wins.
	if v, ok := merged.Get("rounds_total", map[string]string{"op": "write"}); !ok || v != 60 {
		t.Fatalf("merged counter = %v, %v; want 60", v, ok)
	}
	if v, ok := merged.Get("mem_peak_bytes", map[string]string{"node": "0"}); !ok || v != 300 {
		t.Fatalf("merged gauge = %v, %v; want 300 (last run wins)", v, ok)
	}
}

// TestMergeIsOrderDependentOnlyForGauges: permuting run order changes
// gauges (last-wins) but not counter or histogram totals.
func TestMergeGaugeLastWins(t *testing.T) {
	a, b := fillRun(1).Snapshot(), fillRun(4).Snapshot()
	ab := MergeSnapshots(a, b)
	ba := MergeSnapshots(b, a)
	if v, _ := ab.Get("mem_peak_bytes", map[string]string{"node": "0"}); v != 400 {
		t.Fatalf("a,b gauge = %v, want 400", v)
	}
	if v, _ := ba.Get("mem_peak_bytes", map[string]string{"node": "0"}); v != 100 {
		t.Fatalf("b,a gauge = %v, want 100", v)
	}
	for _, s := range []Snapshot{ab, ba} {
		if v, _ := s.Get("rounds_total", map[string]string{"op": "write"}); v != 50 {
			t.Fatalf("counter sum = %v, want 50 in both orders", v)
		}
	}
}

// TestMergeHistogramBuckets: bucket counts, sample count, and sum all
// add across runs, including the +Inf bucket.
func TestMergeHistogramBuckets(t *testing.T) {
	r1, r2 := New(), New()
	h1 := r1.Histogram("lat", "", []float64{1, 10})
	h1.Observe(0.5)
	h1.Observe(100) // +Inf bucket
	h2 := r2.Histogram("lat", "", []float64{1, 10})
	h2.Observe(5)
	h2.Observe(200) // +Inf bucket
	m := MergeSnapshots(r1.Snapshot(), r2.Snapshot())
	if len(m.Families) != 1 {
		t.Fatalf("got %d families", len(m.Families))
	}
	s := m.Families[0].Samples[0]
	if s.Count != 4 || s.Value != 305.5 {
		t.Fatalf("merged count=%d sum=%v, want 4, 305.5", s.Count, s.Value)
	}
	wantCounts := []int64{1, 1, 2}
	for i, b := range s.Buckets {
		if b.Count != wantCounts[i] {
			t.Fatalf("bucket %d count %d, want %d", i, b.Count, wantCounts[i])
		}
	}
	if !math.IsInf(s.Buckets[2].UpperBound, 1) {
		t.Fatalf("last bucket bound %v, want +Inf", s.Buckets[2].UpperBound)
	}
}

// TestAbsorbRoundTripsThroughJSON: a snapshot that has been through
// the JSON encode/decode cycle (the persisted-trajectory path) absorbs
// identically to a fresh one.
func TestAbsorbRoundTripsThroughJSON(t *testing.T) {
	snap := fillRun(2).Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(MergeSnapshots(snap))
	b, _ := json.Marshal(MergeSnapshots(decoded))
	if !bytes.Equal(a, b) {
		t.Fatalf("JSON round-trip changed the absorbed snapshot:\nfresh:   %s\ndecoded: %s", a, b)
	}
}

// TestAbsorbNilRegistry: absorbing into a nil registry must not panic.
func TestAbsorbNilRegistry(t *testing.T) {
	var r *Registry
	r.Absorb(fillRun(1).Snapshot())
}
