package metrics

import (
	"net"
	"net/http"
)

// Handler serves the registry in Prometheus text format on every GET.
// Works with a nil registry (serves an empty page), so callers can
// expose the endpoint unconditionally.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Serve binds addr and serves GET /metrics (and /metrics.json for the
// JSON snapshot) in a background goroutine. It returns the bound
// listener so callers can report the actual address (addr may use port
// 0) and close it to stop serving.
func Serve(addr string, r *Registry) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
	go http.Serve(ln, mux)
	return ln, nil
}
