package metrics

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler serves the registry in Prometheus text format on every GET.
// Works with a nil registry (serves an empty page), so callers can
// expose the endpoint unconditionally.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// JSONHandler serves the registry's JSON snapshot — the /metrics.json
// exposition scripts and CI gates consume with jq. Nil-safe like
// Handler.
func JSONHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
}

// NewMux returns a mux with the two exposition endpoints mounted:
// /metrics (Prometheus text) and /metrics.json (JSON snapshot).
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/metrics.json", JSONHandler(r))
	return mux
}

// AttachPprof mounts the net/http/pprof profiling handlers on mux
// under /debug/pprof/ — live CPU/heap/goroutine profiles from a
// running daemon. Callers gate this behind a flag: the endpoints are
// for operators, not for untrusted networks.
func AttachPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// NewServer wraps a handler in an http.Server with the exposition
// timeouts set: ReadHeaderTimeout so a stalled client cannot pin a
// connection in header-read forever, IdleTimeout so keep-alive
// connections are reaped. Every HTTP listener in this repo — the
// one-shot exposition endpoints and the plan-serving daemon — goes
// through this constructor so none is deployed without timeouts.
func NewServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
}

// Exposition is a live metrics endpoint started by StartExposition —
// the shared "-serve" wiring of mccio-sim and mccio-bench.
type Exposition struct {
	ln  net.Listener
	srv *http.Server
}

// StartExposition binds addr, serves /metrics and /metrics.json in a
// background goroutine (with the NewServer timeouts), and logs the
// scrape URL to logw (when non-nil) using the bound address, so ":0"
// reports the actual port.
func StartExposition(addr string, r *Registry, logw io.Writer) (*Exposition, error) {
	return startExposition(addr, r, false, logw)
}

// StartExpositionPprof is StartExposition with the net/http/pprof
// handlers additionally mounted under /debug/pprof/ — the -pprof flag
// wiring of mccio-sim and mccio-bench.
func StartExpositionPprof(addr string, r *Registry, logw io.Writer) (*Exposition, error) {
	return startExposition(addr, r, true, logw)
}

func startExposition(addr string, r *Registry, withPprof bool, logw io.Writer) (*Exposition, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := NewMux(r)
	if withPprof {
		AttachPprof(mux)
	}
	srv := NewServer(mux)
	go srv.Serve(ln)
	if logw != nil {
		fmt.Fprintf(logw, "serving metrics on http://%s/metrics\n", ln.Addr())
		if withPprof {
			fmt.Fprintf(logw, "serving profiles on http://%s/debug/pprof/\n", ln.Addr())
		}
	}
	return &Exposition{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address.
func (e *Exposition) Addr() net.Addr { return e.ln.Addr() }

// Close stops serving and releases the listener.
func (e *Exposition) Close() error { return e.srv.Close() }

// Block logs msg to logw (when non-nil) and blocks forever — the
// tail of a "-serve" run that keeps the endpoint scrapable after the
// work finishes, until the process is interrupted.
func (e *Exposition) Block(logw io.Writer, msg string) {
	if logw != nil {
		fmt.Fprintln(logw, msg)
	}
	select {}
}

// Serve binds addr and serves GET /metrics (and /metrics.json for the
// JSON snapshot) in a background goroutine. It returns the bound
// listener so callers can report the actual address (addr may use port
// 0) and close it to stop serving. Prefer StartExposition, which also
// handles the logging; Serve remains for callers that only need the
// listener.
func Serve(addr string, r *Registry) (net.Listener, error) {
	e, err := StartExposition(addr, r, nil)
	if err != nil {
		return nil, err
	}
	return e.ln, nil
}
