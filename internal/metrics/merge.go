package metrics

import "sort"

// kindFromString is the inverse of Kind.String for snapshot payloads.
func kindFromString(s string) (Kind, bool) {
	switch s {
	case "counter":
		return KindCounter, true
	case "gauge":
		return KindGauge, true
	case "histogram":
		return KindHistogram, true
	}
	return 0, false
}

// sortedLabelPairs flattens a snapshot sample's label map into the
// alternating key/value list the registry indexes children by, with
// keys sorted so the rendering is deterministic regardless of the
// order the original instrument declared them in.
func sortedLabelPairs(labels map[string]string) []string {
	if len(labels) == 0 {
		return nil
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, 2*len(keys))
	for _, k := range keys {
		out = append(out, k, labels[k])
	}
	return out
}

// Absorb folds a snapshot into the registry, instrument by instrument:
// counter values and histogram bucket counts/sums add onto whatever
// the registry already holds, while gauges are overwritten — the
// absorbed snapshot is treated as the later observation, so absorbing
// run snapshots in row order reproduces the final gauge values a
// single registry shared across those runs in that order would show.
// Families with an unknown kind are skipped. Nil-safe: absorbing into
// a nil registry is a no-op.
func (r *Registry) Absorb(s Snapshot) {
	if r == nil {
		return
	}
	for _, fam := range s.Families {
		kind, ok := kindFromString(fam.Kind)
		if !ok {
			continue
		}
		for _, sm := range fam.Samples {
			labels := sortedLabelPairs(sm.Labels)
			switch kind {
			case KindCounter:
				r.Counter(fam.Name, fam.Help, labels...).Add(sm.Value)
			case KindGauge:
				r.Gauge(fam.Name, fam.Help, labels...).Set(sm.Value)
			case KindHistogram:
				if len(sm.Buckets) < 2 {
					continue // malformed: at least one bound plus +Inf
				}
				bounds := make([]float64, len(sm.Buckets)-1)
				for i := range bounds {
					bounds[i] = sm.Buckets[i].UpperBound
				}
				h := r.Histogram(fam.Name, fam.Help, bounds, labels...)
				// Snapshot buckets are non-cumulative and align with
				// the histogram's counts (last slot is +Inf). Guard the
				// copy range in case an absorbed histogram was
				// registered earlier with different bounds.
				for i, b := range sm.Buckets {
					if i < len(h.counts) {
						h.counts[i].Add(b.Count)
					}
				}
				h.count.Add(sm.Count)
				h.sum.add(sm.Value)
			}
		}
	}
}

// MergeSnapshots folds per-run snapshots into one combined snapshot —
// the sweep-level aggregate embedded in a bench trajectory. Counters
// and histograms sum across runs; gauges take the value of the last
// snapshot that carries them (matching what a registry shared across
// the runs executed in that order would report). The merge is a pure
// function of the snapshot sequence, so a parallel sweep that collects
// per-run snapshots slot-per-row merges to the exact snapshot its
// serial counterpart produces.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	r := New()
	for _, s := range snaps {
		r.Absorb(s)
	}
	return r.Snapshot()
}
