package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteJSON writes the one-shot JSON exposition: the registry snapshot
// as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// fmtVal renders a sample value the way Prometheus does: shortest
// round-trip float, "+Inf"/"-Inf"/"NaN" spelled out.
func fmtVal(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// withLabel merges one extra label pair into a rendered label key.
func withLabel(key, name, value string) string {
	extra := name + `="` + escapeLabel(value) + `"`
	if key == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(key, "}") + "," + extra + "}"
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4). A nil registry writes
// nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, c := range f.sortedChildren() {
			switch inst := c.inst.(type) {
			case *Counter:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, c.key, fmtVal(inst.Value()))
			case *Gauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, c.key, fmtVal(inst.Value()))
			case *Histogram:
				var cum int64
				for i, bound := range inst.bounds {
					cum += inst.counts[i].Load()
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, withLabel(c.key, "le", fmtVal(bound)), cum)
				}
				cum += inst.counts[len(inst.bounds)].Load()
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, withLabel(c.key, "le", "+Inf"), cum)
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, c.key, fmtVal(inst.Sum()))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, c.key, inst.Count())
			}
		}
	}
	return bw.Flush()
}

// Bucket is one histogram bucket in a snapshot: the upper bound and
// the non-cumulative count of samples that landed in it.
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// MarshalJSON renders the bound as a string so the +Inf bucket
// survives encoding/json (which rejects infinite floats).
func (b Bucket) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, fmtVal(b.UpperBound), b.Count)), nil
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		Le    string `json:"le"`
		Count int64  `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	switch raw.Le {
	case "+Inf":
		b.UpperBound = math.Inf(1)
	case "-Inf":
		b.UpperBound = math.Inf(-1)
	default:
		v, err := strconv.ParseFloat(raw.Le, 64)
		if err != nil {
			return fmt.Errorf("metrics: bad bucket bound %q: %w", raw.Le, err)
		}
		b.UpperBound = v
	}
	return nil
}

// Sample is one instrument's state in a snapshot.
type Sample struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value"`             // counter/gauge value, histogram sum
	Count   int64             `json:"count,omitempty"`   // histogram only
	Buckets []Bucket          `json:"buckets,omitempty"` // histogram only
}

// Family is one metric family in a snapshot.
type Family struct {
	Name    string   `json:"name"`
	Help    string   `json:"help,omitempty"`
	Kind    string   `json:"kind"`
	Samples []Sample `json:"samples"`
}

// Snapshot is a point-in-time copy of the whole registry — the
// one-shot JSON exposition path and the payload embedded in bench
// trajectory files.
type Snapshot struct {
	Families []Family `json:"families"`
}

// Get returns the value of the named counter or gauge sample whose
// labels all match want, and whether it was found.
func (s *Snapshot) Get(name string, want map[string]string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	for _, f := range s.Families {
		if f.Name != name {
			continue
		}
	sample:
		for _, sm := range f.Samples {
			for k, v := range want {
				if sm.Labels[k] != v {
					continue sample
				}
			}
			return sm.Value, true
		}
	}
	return 0, false
}

// QuantileBuckets estimates the q-th quantile (0–1) from snapshot
// histogram buckets (non-cumulative counts, ascending bounds, +Inf
// last), with linear interpolation inside the owning bucket — the same
// estimate Histogram.Quantile computes on a live instrument, usable on
// decoded /metrics.json payloads (mccio-top's latency panel). Returns
// 0 with no observations; values landing in the +Inf bucket report the
// highest finite bound.
func QuantileBuckets(buckets []Bucket, q float64) float64 {
	if len(buckets) == 0 || q < 0 || q > 1 {
		return 0
	}
	var total int64
	for _, b := range buckets {
		total += b.Count
	}
	if total == 0 {
		return 0
	}
	highestFinite := func() float64 {
		for i := len(buckets) - 1; i >= 0; i-- {
			if !math.IsInf(buckets[i].UpperBound, 0) {
				return buckets[i].UpperBound
			}
		}
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, b := range buckets {
		if b.Count == 0 {
			continue
		}
		if float64(cum+b.Count) >= rank {
			if math.IsInf(b.UpperBound, 1) {
				return highestFinite()
			}
			lo := 0.0
			if i > 0 {
				lo = buckets[i-1].UpperBound
			}
			frac := (rank - float64(cum)) / float64(b.Count)
			return lo + (b.UpperBound-lo)*frac
		}
		cum += b.Count
	}
	return highestFinite()
}

// SumBuckets adds b into dst bucket-by-bucket and returns dst; when
// dst is empty it returns a copy of b. Bucket layouts must match (same
// family), which holds for samples of one histogram family — the merge
// mccio-top uses to fold per-endpoint latency series into one panel.
func SumBuckets(dst, b []Bucket) []Bucket {
	if len(dst) == 0 {
		return append([]Bucket(nil), b...)
	}
	if len(b) != len(dst) {
		return dst
	}
	for i := range dst {
		dst[i].Count += b[i].Count
	}
	return dst
}

// Snapshot copies the registry's current state. A nil registry yields
// an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var out Snapshot
	for _, f := range r.families() {
		fam := Family{Name: f.name, Help: f.help, Kind: f.kind.String()}
		for _, c := range f.sortedChildren() {
			s := Sample{}
			if len(c.labels) > 0 {
				s.Labels = make(map[string]string, len(c.labels)/2)
				for i := 0; i < len(c.labels); i += 2 {
					s.Labels[c.labels[i]] = c.labels[i+1]
				}
			}
			switch inst := c.inst.(type) {
			case *Counter:
				s.Value = inst.Value()
			case *Gauge:
				s.Value = inst.Value()
			case *Histogram:
				s.Value = inst.Sum()
				s.Count = inst.Count()
				for i, bound := range inst.bounds {
					s.Buckets = append(s.Buckets, Bucket{UpperBound: bound, Count: inst.counts[i].Load()})
				}
				s.Buckets = append(s.Buckets, Bucket{UpperBound: math.Inf(1), Count: inst.counts[len(inst.bounds)].Load()})
			}
			fam.Samples = append(fam.Samples, s)
		}
		out.Families = append(out.Families, fam)
	}
	return out
}
