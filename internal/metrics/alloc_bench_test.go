package metrics

import "testing"

// engineHandles mirrors the instrument bundle the collio round loop
// holds: handles are resolved once per collective, and the per-round
// cost is only the method calls below.
type engineHandles struct {
	rounds          *Counter
	shuffleIntra    *Counter
	shuffleInter    *Counter
	exchangeSeconds *Counter
	ioSeconds       *Counter
	ioBytes         *Histogram
}

func handlesFrom(r *Registry) engineHandles {
	return engineHandles{
		rounds:          r.Counter("mccio_engine_rounds_total", "", "op", "write"),
		shuffleIntra:    r.Counter("mccio_shuffle_bytes_total", "", "locality", "intra"),
		shuffleInter:    r.Counter("mccio_shuffle_bytes_total", "", "locality", "inter"),
		exchangeSeconds: r.Counter("mccio_exchange_seconds_total", ""),
		ioSeconds:       r.Counter("mccio_io_seconds_total", ""),
		ioBytes:         r.Histogram("mccio_round_io_bytes", "", DefBytesBuckets()),
	}
}

func (h engineHandles) round() {
	h.rounds.Inc()
	h.shuffleIntra.Add(4096)
	h.shuffleInter.Add(1 << 20)
	h.exchangeSeconds.Add(0.002)
	h.ioSeconds.Add(0.01)
	h.ioBytes.Observe(1 << 20)
}

// TestDisabledZeroAlloc asserts the disabled-registry contract the
// engine relies on: with metrics off (nil registry), one simulated
// round of instrument updates allocates nothing.
func TestDisabledZeroAlloc(t *testing.T) {
	h := handlesFrom(nil)
	if allocs := testing.AllocsPerRun(1000, h.round); allocs != 0 {
		t.Fatalf("disabled round loop allocates %.1f objects/round, want 0", allocs)
	}
}

// BenchmarkDisabledRoundLoop measures the per-round cost of engine
// instrumentation with metrics off. The contract is zero allocations
// and a handful of nanoseconds — the same bar as the obs tracer.
func BenchmarkDisabledRoundLoop(b *testing.B) {
	h := handlesFrom(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.round()
	}
}

// BenchmarkEnabledRoundLoop is the enabled-path cost for comparison:
// atomic updates only, no per-round allocation either.
func BenchmarkEnabledRoundLoop(b *testing.B) {
	h := handlesFrom(New())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.round()
	}
}
