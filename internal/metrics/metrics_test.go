package metrics

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters never decrease
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %g, want 5", got)
	}
	if again := r.Counter("reqs_total", "requests"); again != c {
		t.Fatal("same identity returned a different counter")
	}

	g := r.Gauge("mem_bytes", "used", "node", "0")
	g.Set(100)
	g.Add(-40)
	if got := g.Value(); got != 60 {
		t.Fatalf("gauge = %g, want 60", got)
	}
	g.SetMax(50) // below current: no-op
	g.SetMax(90)
	if got := g.Value(); got != 90 {
		t.Fatalf("gauge after SetMax = %g, want 90", got)
	}
	if other := r.Gauge("mem_bytes", "used", "node", "1"); other == g {
		t.Fatal("different labels returned the same gauge")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("x_total", "")
}

func TestHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", "latency", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-106.5) > 1e-9 {
		t.Fatalf("sum = %g, want 106.5", got)
	}
	// Median rank 2.5 lands in the (1,2] bucket holding observations
	// 2..3 of 5; interpolation stays inside the bucket.
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Fatalf("q50 = %g, want within (1,2]", q)
	}
	// Samples in the +Inf bucket report the highest finite bound.
	if q := h.Quantile(1); q != 4 {
		t.Fatalf("q100 = %g, want 4", q)
	}
	if q := (*Histogram)(nil).Quantile(0.5); q != 0 {
		t.Fatalf("nil quantile = %g, want 0", q)
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("a_total", "")
	g := r.Gauge("b", "")
	h := r.Histogram("c", "", []float64{1})
	c.Inc()
	g.Set(5)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments recorded values")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry exposition = %q, want empty", buf.String())
	}
	if snap := r.Snapshot(); len(snap.Families) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := New()
	r.Counter("mccio_rounds_total", "Rounds executed.", "op", "write").Add(3)
	r.Gauge("mccio_node_mem_used_bytes", "Ledger usage.", "node", "0").Set(1 << 20)
	h := r.Histogram("pfs_request_bytes", "Request sizes.", []float64{1024, 4096}, "op", "write")
	h.Observe(100)
	h.Observe(2048)
	h.Observe(1 << 20)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE mccio_rounds_total counter",
		`mccio_rounds_total{op="write"} 3`,
		"# TYPE mccio_node_mem_used_bytes gauge",
		`mccio_node_mem_used_bytes{node="0"} 1.048576e+06`,
		"# TYPE pfs_request_bytes histogram",
		`pfs_request_bytes_bucket{op="write",le="1024"} 1`,
		`pfs_request_bytes_bucket{op="write",le="4096"} 2`,
		`pfs_request_bytes_bucket{op="write",le="+Inf"} 3`,
		`pfs_request_bytes_count{op="write"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("a_total", "help a", "op", "read").Add(7)
	h := r.Histogram("b_bytes", "", []float64{10})
	h.Observe(5)
	h.Observe(50) // +Inf bucket: must survive JSON

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Get("a_total", map[string]string{"op": "read"}); !ok || v != 7 {
		t.Fatalf("a_total = %g,%v; want 7,true", v, ok)
	}
	if _, ok := snap.Get("a_total", map[string]string{"op": "write"}); ok {
		t.Fatal("found sample with wrong labels")
	}
	var hist *Sample
	for i := range snap.Families {
		if snap.Families[i].Name == "b_bytes" {
			hist = &snap.Families[i].Samples[0]
		}
	}
	if hist == nil || len(hist.Buckets) != 2 {
		t.Fatalf("histogram snapshot = %+v", hist)
	}
	if !math.IsInf(hist.Buckets[1].UpperBound, 1) || hist.Buckets[1].Count != 1 {
		t.Fatalf("+Inf bucket = %+v", hist.Buckets[1])
	}
}

func TestHandler(t *testing.T) {
	r := New()
	r.Counter("hits_total", "").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "hits_total 1") {
		t.Fatalf("scrape = %q", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := New()
	c := r.Counter("n_total", "")
	h := r.Histogram("v", "", []float64{50})
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 100))
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if c.Value() != 4000 || h.Count() != 4000 {
		t.Fatalf("counter=%g hist=%d, want 4000 each", c.Value(), h.Count())
	}
}

func TestQuantileBucketsMatchesLiveHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("qb_seconds", "", DefSecondsBuckets())
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) * 1e-5) // 0 .. 10ms
	}
	snap := r.Snapshot()
	var buckets []Bucket
	for _, f := range snap.Families {
		if f.Name == "qb_seconds" {
			buckets = f.Samples[0].Buckets
		}
	}
	if buckets == nil {
		t.Fatal("histogram missing from snapshot")
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		live := h.Quantile(q)
		fromSnap := QuantileBuckets(buckets, q)
		if live != fromSnap {
			t.Fatalf("q=%.2f: snapshot %v, live %v", q, fromSnap, live)
		}
	}
}

func TestQuantileBucketsEdges(t *testing.T) {
	if got := QuantileBuckets(nil, 0.5); got != 0 {
		t.Fatalf("empty buckets -> %v, want 0", got)
	}
	b := []Bucket{{UpperBound: 1}, {UpperBound: 2}, {UpperBound: math.Inf(1)}}
	if got := QuantileBuckets(b, 0.5); got != 0 {
		t.Fatalf("zero observations -> %v, want 0", got)
	}
	// Everything in +Inf clamps to the highest finite bound.
	b[2].Count = 10
	if got := QuantileBuckets(b, 0.99); got != 2 {
		t.Fatalf("+Inf bucket -> %v, want 2", got)
	}
}

func TestSumBuckets(t *testing.T) {
	a := []Bucket{{UpperBound: 1, Count: 2}, {UpperBound: math.Inf(1), Count: 1}}
	var dst []Bucket
	dst = SumBuckets(dst, a)
	dst = SumBuckets(dst, a)
	if dst[0].Count != 4 || dst[1].Count != 2 {
		t.Fatalf("summed %+v", dst)
	}
	if a[0].Count != 2 {
		t.Fatal("SumBuckets mutated its source")
	}
	// Mismatched layouts are ignored rather than corrupting dst.
	if got := SumBuckets(dst, a[:1]); got[0].Count != 4 {
		t.Fatalf("mismatched merge %+v", got)
	}
}
