package mpi

import (
	"fmt"
	"sort"

	"repro/internal/buffer"
	"repro/internal/explain"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// Tag limits: user tags live below userTagSpace; internal collective
// tags are derived above it from a per-communicator sequence number, so
// a collective never collides with user point-to-point traffic.
const userTagSpace = 1 << 16

// Comm is a communicator: an ordered group of processes with a private
// context, exactly one per process per communicator. All collective
// methods must be called by every member in the same order (the usual
// SPMD contract); the runtime deadlocks — and the engine reports which
// ranks are stuck — if the contract is broken.
type Comm struct {
	w        *World
	p        *simtime.Proc
	ctx      uint64
	rank     int   // my rank within this communicator
	group    []int // comm rank -> world rank
	splitSeq int   // lockstep counter deriving split contexts

	sparse *SparseExchange // cached SparseScratch result, lazily built
}

// SparseScratch returns this member's cached SparseExchange, creating
// it on first use. One scratch per communicator member suffices because
// exchange rounds on a comm never nest; reusing it keeps repeated
// collective rounds from reallocating the O(size) staging arrays.
func (c *Comm) SparseScratch() *SparseExchange {
	if c.sparse == nil {
		c.sparse = NewSparseExchange(c)
	}
	return c.sparse
}

// Rank returns the caller's rank in this communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of members.
func (c *Comm) Size() int { return len(c.group) }

// WorldRank maps a communicator rank to its world rank.
func (c *Comm) WorldRank(r int) int { return c.group[r] }

// Proc returns the simulated process.
func (c *Comm) Proc() *simtime.Proc { return c.p }

// World returns the owning world.
func (c *Comm) World() *World { return c.w }

// NodeOf returns the physical node hosting communicator rank r.
func (c *Comm) NodeOf(r int) int { return c.w.machine.NodeOfRank(c.group[r]) }

// Now returns the caller's virtual time.
func (c *Comm) Now() float64 { return c.p.Now() }

// Tracer returns the event tracer attached to the machine, or nil when
// tracing is disabled. All obs.Tracer methods are nil-safe, so callers
// may use the result unconditionally.
func (c *Comm) Tracer() *obs.Tracer { return c.w.machine.Tracer() }

// Metrics returns the metrics registry attached to the machine, or nil
// when metrics are disabled. All metrics methods are nil-safe, so
// callers may use the result unconditionally.
func (c *Comm) Metrics() *metrics.Registry { return c.w.machine.Metrics() }

// Explain returns the decision recorder attached to the machine, or
// nil when the audit trail is disabled. All explain.Recorder methods
// are nil-safe, so callers may use the result unconditionally.
func (c *Comm) Explain() *explain.Recorder { return c.w.machine.Explain() }

// Faults returns the fault schedule attached to the world, or nil when
// fault injection is off. All Schedule methods are nil-safe, so callers
// may use the result unconditionally.
func (c *Comm) Faults() *faults.Schedule { return c.w.faults }

// traceLoc is the caller's track identity for MPI-level wait spans.
func (c *Comm) traceLoc() obs.Loc {
	return obs.Loc{Rank: c.group[c.rank], Node: c.w.machine.NodeOfRank(c.group[c.rank]), Group: -1, Round: -1}
}

func (c *Comm) checkRank(r int, what string) {
	if r < 0 || r >= len(c.group) {
		panic(fmt.Sprintf("mpi: %s rank %d out of comm size %d", what, r, len(c.group)))
	}
}

func (c *Comm) checkTag(tag int) {
	if tag < 0 || tag >= userTagSpace {
		panic(fmt.Sprintf("mpi: user tag %d out of [0,%d)", tag, userTagSpace))
	}
}

// Send transfers a payload buffer to dst. The caller blocks while
// injecting through its node's memory bus and NIC; delivery completes
// asynchronously.
func (c *Comm) Send(dst, tag int, buf buffer.Buf) {
	c.checkRank(dst, "send")
	c.checkTag(tag)
	c.w.deliver(c.p, c.group[c.rank], c.group[dst], c.ctx, tag, message{payload: buf, bytes: buf.Len()})
}

// Recv blocks until the matching buffer from src arrives and returns it.
func (c *Comm) Recv(src, tag int) buffer.Buf {
	c.checkRank(src, "recv")
	c.checkTag(tag)
	return c.recvAny(src, tag).(buffer.Buf)
}

// SendVal transfers an arbitrary metadata value charged at bytes.
// Strategies use it for offset lists and control records whose wire
// size is known but which would be noise to serialize for real.
func (c *Comm) SendVal(dst, tag int, v any, bytes int64) {
	c.checkRank(dst, "send")
	c.checkTag(tag)
	c.w.deliver(c.p, c.group[c.rank], c.group[dst], c.ctx, tag, message{payload: v, bytes: bytes})
}

// RecvVal blocks until the matching metadata value from src arrives.
func (c *Comm) RecvVal(src, tag int) any {
	c.checkRank(src, "recv")
	c.checkTag(tag)
	return c.recvAny(src, tag)
}

// recvAny pulls the next message on (src→me, tag) in this context.
func (c *Comm) recvAny(src, tag int) any {
	k := msgKey{src: c.group[src], dst: c.group[c.rank], ctx: c.ctx, tag: tag}
	m := c.w.box(k).ch.Get(c.p)
	return m.payload
}

// internal send/recv on the collective tag space.
func (c *Comm) isend(dst, tag int, v any, bytes int64) {
	c.w.deliver(c.p, c.group[c.rank], c.group[dst], c.ctx, tag, message{payload: v, bytes: bytes})
}

func (c *Comm) irecv(src, tag int) any {
	k := msgKey{src: c.group[src], dst: c.group[c.rank], ctx: c.ctx, tag: tag}
	return c.w.box(k).ch.Get(c.p).payload
}

// Internal collective tag blocks. Tags are FIXED per collective type
// rather than drawn from a per-call sequence: within one communicator
// context, (src,dst,tag) delivery is FIFO and arrival times are
// monotone, and the SPMD contract means both ends issue collectives in
// the same order — so successive collectives of the same type reuse
// their mailboxes safely. Bounded tags keep the mailbox table small
// (a fresh tag per call made it grow with every round of two-phase
// I/O, which dominated large-run memory and GC time).
const (
	tagBarrier   = userTagSpace
	tagBcast     = userTagSpace + 1
	tagGather    = userTagSpace + 2
	tagReduce    = userTagSpace + 3
	tagAllgather = userTagSpace + 64 // + stepTag(step)
	tagAlltoall  = userTagSpace + 128
	tagSplit     = userTagSpace + 192
)

// tokenBytes is the charged size of a zero-data control token.
const tokenBytes = 8

// Barrier blocks until all members arrive. The release time models the
// dissemination algorithm — the last arriver plus ⌈log₂ p⌉ token hops —
// but uses the engine's native barrier instead of 2·p·log p simulated
// token messages, which dominated host time in large runs. Token
// bandwidth is negligible (8 bytes/hop); the straggler semantics (all
// wait for the slowest) are preserved exactly.
func (c *Comm) Barrier() {
	p := len(c.group)
	if p == 1 {
		return
	}
	sp := c.Tracer().Begin(obs.PhaseMPIBarrier, c.traceLoc())
	c.w.met.barriers.Inc()
	steps := 0
	for dist := 1; dist < p; dist *= 2 {
		steps++
	}
	// The release delay is folded into the barrier wake (one park per
	// member instead of park-then-sleep); virtual times are unchanged.
	c.w.barrierFor(c.ctx, p).AwaitDelay(c.p, float64(steps)*c.w.barrierHop)
	sp.End()
}

// bcastMsg carries the payload size alongside the value so forwarding
// members charge the root's size, not their own (meaningless) argument.
type bcastMsg struct {
	v     any
	bytes int64
}

// Bcast distributes root's value to every member along a binomial tree
// and returns it. bytes is the charged payload size (only the root's
// argument matters).
func (c *Comm) Bcast(root int, v any, bytes int64) any {
	c.checkRank(root, "bcast root")
	p := len(c.group)
	const tag = tagBcast
	if p == 1 {
		return v
	}
	rel := (c.rank - root + p) % p
	// Receive from parent (highest set bit of rel).
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			src := (rel - mask + root) % p
			got := c.irecv(src, tag).(bcastMsg)
			v, bytes = got.v, got.bytes
			break
		}
		mask <<= 1
	}
	// Forward to children.
	mask >>= 1
	for mask > 0 {
		if rel&mask == 0 && rel+mask < p {
			dst := (rel + mask + root) % p
			c.isend(dst, tag, bcastMsg{v: v, bytes: bytes}, bytes)
		}
		mask >>= 1
	}
	return v
}

// Allgather collects one value from every member on every member, via
// the ring algorithm (p−1 steps, each carrying one block). bytes is the
// charged size of each member's value. Result is indexed by comm rank.
func (c *Comm) Allgather(v any, bytes int64) []any {
	p := len(c.group)
	out := make([]any, p)
	out[c.rank] = v
	if p == 1 {
		return out
	}
	const tag = tagAllgather
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	for step := 0; step < p-1; step++ {
		sendIdx := (c.rank - step + p) % p
		recvIdx := (c.rank - step - 1 + p) % p
		c.isend(right, tag+stepTag(step), out[sendIdx], bytes)
		out[recvIdx] = c.irecv(left, tag+stepTag(step))
	}
	return out
}

// stepTag folds an unbounded ring step into the 63-tag block reserved
// for Allgather; ring neighbours reuse a tag no sooner than 63 steps
// later, far beyond any in-flight window.
func stepTag(step int) int { return step % 63 }

// Gather collects one value from every member at root; non-roots get
// nil. bytes charges each member's value.
func (c *Comm) Gather(root int, v any, bytes int64) []any {
	c.checkRank(root, "gather root")
	p := len(c.group)
	const tag = tagGather
	if c.rank != root {
		c.isend(root, tag, v, bytes)
		return nil
	}
	out := make([]any, p)
	out[root] = v
	for r := 0; r < p; r++ {
		if r != root {
			out[r] = c.irecv(r, tag)
		}
	}
	return out
}

// Alltoall exchanges vals[i] (charged at bytes[i]) to member i and
// returns the values received, using pairwise exchange. vals and bytes
// must have length Size(). A nil payload with zero bytes costs nothing.
func (c *Comm) Alltoall(vals []any, bytes []int64) []any {
	p := len(c.group)
	if len(vals) != p || len(bytes) != p {
		panic(fmt.Sprintf("mpi: alltoall with %d vals, %d sizes for comm of %d", len(vals), len(bytes), p))
	}
	const tag = tagAlltoall
	sp := c.Tracer().Begin(obs.PhaseMPIAlltoall, c.traceLoc())
	var sent int64
	out := make([]any, p)
	out[c.rank] = vals[c.rank]
	if bytes[c.rank] > 0 {
		// Self-exchange still crosses the local memory bus.
		c.w.intraPaths[c.NodeOf(c.rank)].Transfer(c.p, bytes[c.rank])
		sent += bytes[c.rank]
	}
	for step := 1; step < p; step++ {
		dst := (c.rank + step) % p
		src := (c.rank - step + p) % p
		c.isend(dst, tag, vals[dst], bytes[dst])
		sent += bytes[dst]
		out[src] = c.irecv(src, tag)
	}
	sp.EndBytes(sent, int64(p))
	c.w.met.alltoalls.Inc()
	c.w.met.alltoallBytes.Add(float64(sent))
	return out
}

// AlltoallSparse exchanges only the non-nil entries. present[i] must be
// true on the *receiver* side exactly when sender i has a non-nil value
// for us; strategies compute it from the same global metadata on both
// sides. This keeps sparse shuffles (the common collective-I/O case —
// each rank talks to a few aggregators) from paying p² latency.
func (c *Comm) AlltoallSparse(vals []any, bytes []int64, present []bool) []any {
	out := make([]any, len(c.group))
	c.AlltoallSparseInto(out, vals, bytes, present)
	return out
}

// AlltoallSparseInto is AlltoallSparse writing received values into the
// caller-owned out slice (length Size()), so a round loop can reuse one
// result array instead of allocating p entries per exchange — the
// single largest allocation site of a sweep before it was added. Every
// entry of out is overwritten (non-present entries with nil).
func (c *Comm) AlltoallSparseInto(out, vals []any, bytes []int64, present []bool) {
	p := len(c.group)
	if len(out) != p || len(vals) != p || len(bytes) != p || len(present) != p {
		panic("mpi: alltoallsparse length mismatch")
	}
	const tag = tagAlltoall
	sp := c.Tracer().Begin(obs.PhaseMPIAlltoall, c.traceLoc())
	var sent, pairs int64
	for i := range out {
		out[i] = nil
	}
	if vals[c.rank] != nil {
		out[c.rank] = vals[c.rank]
		if bytes[c.rank] > 0 {
			c.w.intraPaths[c.NodeOf(c.rank)].Transfer(c.p, bytes[c.rank])
			sent += bytes[c.rank]
			pairs++
		}
	}
	for step := 1; step < p; step++ {
		dst := (c.rank + step) % p
		src := (c.rank - step + p) % p
		if vals[dst] != nil {
			c.isend(dst, tag, vals[dst], bytes[dst])
			sent += bytes[dst]
			pairs++
		}
		if present[src] {
			out[src] = c.irecv(src, tag)
		}
	}
	sp.EndBytes(sent, pairs)
	c.w.met.alltoalls.Inc()
	c.w.met.alltoallBytes.Add(float64(sent))
}

// ReduceInt64 folds every member's value with op at root (op must be
// associative and commutative); non-roots get 0. Binomial tree.
func (c *Comm) ReduceInt64(root int, v int64, op func(a, b int64) int64) int64 {
	c.checkRank(root, "reduce root")
	p := len(c.group)
	const tag = tagReduce
	rel := (c.rank - root + p) % p
	acc := v
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			dst := (rel - mask + root) % p
			c.isend(dst, tag, acc, tokenBytes)
			return 0
		}
		if rel+mask < p {
			src := (rel + mask + root) % p
			acc = op(acc, c.irecv(src, tag).(int64))
		}
		mask <<= 1
	}
	return acc
}

// AllreduceInt64 is ReduceInt64 to rank 0 followed by a broadcast.
func (c *Comm) AllreduceInt64(v int64, op func(a, b int64) int64) int64 {
	r := c.ReduceInt64(0, v, op)
	return c.Bcast(0, r, tokenBytes).(int64)
}

// MaxInt64 and SumInt64 are the common reduction operators.
func MaxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// SumInt64 returns a+b.
func SumInt64(a, b int64) int64 { return a + b }

// splitInfo is the record exchanged by Split.
type splitInfo struct {
	color, key, rank int
}

// Split partitions the communicator by color: members sharing a color
// form a new communicator ordered by (key, old rank), exactly like
// MPI_Comm_split. Every member must call it; the caller gets its own
// color's communicator.
func (c *Comm) Split(color, key int) *Comm {
	infos := c.Allgather(splitInfo{color: color, key: key, rank: c.rank}, 12)
	var mine []splitInfo
	for _, v := range infos {
		si := v.(splitInfo)
		if si.color == color {
			mine = append(mine, si)
		}
	}
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].key != mine[j].key {
			return mine[i].key < mine[j].key
		}
		return mine[i].rank < mine[j].rank
	})
	group := make([]int, len(mine))
	newRank := -1
	for i, si := range mine {
		group[i] = c.group[si.rank]
		if si.rank == c.rank {
			newRank = i
		}
	}
	// All members derive the same context deterministically; the split
	// counter advances in lockstep under the SPMD contract.
	c.splitSeq++
	ctx := c.ctx*0x100000001b3 ^ uint64(c.splitSeq)<<20 ^ uint64(color+1)
	return &Comm{w: c.w, p: c.p, ctx: ctx, rank: newRank, group: group}
}
