// Package mpi implements the message-passing runtime the collective
// I/O strategies run on: communicators over simulated processes,
// point-to-point messaging costed through the machine's resource
// links, and the collective algorithms (binomial broadcast,
// dissemination barrier, ring allgather, pairwise all-to-all) MPI
// implementations actually use, so their virtual-time cost scales the
// way real collectives do.
//
// The transfer model is eager with asynchronous delivery: a sender is
// blocked only while it injects the message through its own node's
// memory bus and NIC; the fabric and receiver-side hops determine the
// arrival time, at which point the message lands in the destination
// mailbox. A receive blocks until its message arrives.
package mpi

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/simtime"
)

// message is an in-flight payload. Payload is either a buffer.Buf or
// an arbitrary metadata value; Bytes is its charged size.
type message struct {
	payload any
	bytes   int64
}

// msgKey routes a message: world ranks, communicator context, user tag.
type msgKey struct {
	src, dst int
	ctx      uint64
	tag      int
}

// mailbox pairs a delivery channel with its queue of scheduled
// in-flight messages. Arrivals on one mailbox are monotonic (the same
// (src,dst,tag) stream reserves the same paths in send order, and the
// fault path clamps explicitly), so pending is a FIFO and one reusable
// flush closure replaces the per-message closure deliver used to
// allocate.
type mailbox struct {
	ch      *simtime.Chan[message]
	pending []message
	head    int
	flush   func()
}

// World is the universe of simulated MPI processes on one machine.
type World struct {
	engine   *simtime.Engine
	machine  *cluster.Machine
	size     int
	boxes    map[msgKey]*mailbox
	barriers map[uint64]*simtime.Barrier // per communicator context

	met worldMetrics

	// Per-node delivery paths, built once at NewWorld. A path value is
	// just an ordered view over shared *Link state, so one cached entry
	// per node-direction replaces the per-message NewPath construction
	// that dominated allocation in shuffle-heavy runs: the cost model is
	// batched per node pair, not rebuilt per message.
	txPaths    []resource.Path // node -> sender-side injection (membus, NIC tx)
	rxPaths    []resource.Path // node -> fabric + receiver side (bisection, NIC rx, membus)
	intraPaths []resource.Path // node -> same-node memory-bus pass
	barrierHop float64         // one dissemination token hop, precomputed from Config

	// faults, when non-nil, perturbs inter-node delivery (link
	// slowdowns, message delay); lastArrival keeps each mailbox FIFO
	// under time-varying fault delays. Both are touched only from
	// simulation context, which the engine serializes.
	faults      *faults.Schedule
	lastArrival map[msgKey]float64

	bytesIntra int64
	bytesInter int64
	msgsIntra  int64
	msgsInter  int64
}

// worldMetrics bundles the collective-layer instrument handles,
// resolved once at NewWorld. All handles are nil (and updates free)
// when the machine has no metrics registry attached.
type worldMetrics struct {
	barriers      *metrics.Counter
	alltoalls     *metrics.Counter
	alltoallBytes *metrics.Counter
}

func newWorldMetrics(r *metrics.Registry) worldMetrics {
	return worldMetrics{
		barriers: r.Counter("mpi_barriers_total",
			"Barrier collectives entered (one count per calling rank)."),
		alltoalls: r.Counter("mpi_alltoalls_total",
			"Alltoall(v) collectives entered (one count per calling rank)."),
		alltoallBytes: r.Counter("mpi_alltoall_bytes_total",
			"Payload bytes injected into alltoall exchanges."),
	}
}

// NewWorld creates a world of size processes placed block-wise on the
// machine. size must not exceed the machine's core count.
func NewWorld(e *simtime.Engine, m *cluster.Machine, size int) (*World, error) {
	if size <= 0 || size > m.NumRanks() {
		return nil, fmt.Errorf("mpi: world size %d not in [1, %d]", size, m.NumRanks())
	}
	w := &World{
		engine:   e,
		machine:  m,
		size:     size,
		boxes:    make(map[msgKey]*mailbox),
		barriers: make(map[uint64]*simtime.Barrier),
		met:      newWorldMetrics(m.Metrics()),
	}
	nn := m.NumNodes()
	w.txPaths = make([]resource.Path, nn)
	w.rxPaths = make([]resource.Path, nn)
	w.intraPaths = make([]resource.Path, nn)
	for n := 0; n < nn; n++ {
		node := m.Node(n)
		w.txPaths[n] = resource.NewPath(node.MemBus, node.NICTx)
		w.rxPaths[n] = resource.NewPath(m.Bisection(), node.NICRx, node.MemBus)
		w.intraPaths[n] = resource.NewPath(node.MemBus)
	}
	cfg := m.Config()
	w.barrierHop = 2*cfg.NICLat + cfg.BisectionLat + 2*cfg.MemBusLat
	return w, nil
}

// SetFaults attaches a fault schedule to the world's delivery layer;
// nil detaches. Attach before Start so every message sees it.
func (w *World) SetFaults(s *faults.Schedule) {
	w.faults = s
	if s != nil && w.lastArrival == nil {
		w.lastArrival = make(map[msgKey]float64)
	}
}

// Faults returns the attached fault schedule, or nil. All Schedule
// methods are nil-safe, so callers may use the result unconditionally.
func (w *World) Faults() *faults.Schedule { return w.faults }

// Size returns the number of processes.
func (w *World) Size() int { return w.size }

// Machine returns the machine the world runs on.
func (w *World) Machine() *cluster.Machine { return w.machine }

// Engine returns the simulation engine.
func (w *World) Engine() *simtime.Engine { return w.engine }

// Start spawns every process; each runs body with its world
// communicator. Call engine.Run() afterwards to execute.
func (w *World) Start(body func(*Comm)) {
	for r := 0; r < w.size; r++ {
		r := r
		group := make([]int, w.size)
		for i := range group {
			group[i] = i
		}
		w.engine.Spawn(fmt.Sprintf("rank%d", r), func(p *simtime.Proc) {
			body(&Comm{w: w, p: p, ctx: 1, rank: r, group: group})
		})
	}
}

// box returns (lazily creating) the mailbox for a routing key.
func (w *World) box(k msgKey) *mailbox {
	b := w.boxes[k]
	if b == nil {
		b = &mailbox{ch: simtime.NewChan[message](w.engine, fmt.Sprintf("mbox %d->%d ctx%x tag%d", k.src, k.dst, k.ctx, k.tag))}
		b.flush = func() {
			msg := b.pending[b.head]
			b.pending[b.head] = message{}
			b.head++
			if b.head == len(b.pending) {
				b.pending = b.pending[:0]
				b.head = 0
			}
			b.ch.Put(msg)
		}
		w.boxes[k] = b
	}
	return b
}

// barrierFor returns (lazily creating) the native barrier backing a
// communicator's Barrier calls.
func (w *World) barrierFor(ctx uint64, parties int) *simtime.Barrier {
	b := w.barriers[ctx]
	if b == nil {
		b = simtime.NewBarrier(w.engine, fmt.Sprintf("comm%x", ctx), parties)
		w.barriers[ctx] = b
	}
	return b
}

// Traffic reports cumulative message traffic split by locality. The
// paper's group-division argument is precisely about moving shuffle
// bytes from the "inter" to the "intra" row.
func (w *World) Traffic() TrafficStats {
	return TrafficStats{
		BytesIntra: w.bytesIntra, BytesInter: w.bytesInter,
		MsgsIntra: w.msgsIntra, MsgsInter: w.msgsInter,
	}
}

// TrafficStats is cumulative point-to-point traffic.
type TrafficStats struct {
	BytesIntra, BytesInter int64
	MsgsIntra, MsgsInter   int64
}

// deliver injects the message from src to dst (world ranks): the
// calling proc blocks while its local hops carry the bytes; remote hops
// are reserved asynchronously and the payload lands in the mailbox at
// the arrival time.
func (w *World) deliver(p *simtime.Proc, src, dst int, ctx uint64, tag int, msg message) {
	sn, dn := w.machine.NodeOfRank(src), w.machine.NodeOfRank(dst)
	k := msgKey{src: src, dst: dst, ctx: ctx, tag: tag}
	b := w.box(k)
	if sn == dn {
		w.bytesIntra += msg.bytes
		w.msgsIntra++
		// One memory-bus pass; sender is occupied for the whole copy.
		w.intraPaths[sn].Transfer(p, msg.bytes)
		b.ch.Put(msg)
		return
	}
	w.bytesInter += msg.bytes
	w.msgsInter++
	txDone := w.txPaths[sn].Reserve(p.Now(), msg.bytes)
	arrival := w.rxPaths[dn].Reserve(txDone, msg.bytes)
	if w.faults != nil {
		// A degraded link stretches the remote (fabric + receiver) part
		// of the delivery; either endpoint's link fault applies.
		f := w.faults.LinkFactor(sn, p.Now())
		if g := w.faults.LinkFactor(dn, p.Now()); g > f {
			f = g
		}
		if f > 1 {
			arrival = txDone + (arrival-txDone)*f
		}
		arrival += w.faults.MessageDelay(sn, dn, p.Now())
		// Variable fault delays must not reorder a (src,dst,tag) stream:
		// the mailbox is a FIFO and receivers match payloads by arrival
		// order, so clamp each arrival to its predecessor's.
		if last := w.lastArrival[k]; arrival < last {
			arrival = last
		}
		w.lastArrival[k] = arrival
	}
	b.pending = append(b.pending, msg)
	w.engine.After(arrival-p.Now(), b.flush)
	p.WaitUntil(txDone)
}
