package mpi

import "testing"

// benchComm builds a bare communicator for staging-path benchmarks.
// Reset/Stage/Expect touch only the comm's rank and group size, so no
// world or engine is needed — which keeps goroutine-scheduler noise out
// of the allocs/op figure.
func benchComm(rank, size int) *Comm {
	return &Comm{rank: rank, group: make([]int, size)}
}

// BenchmarkSparseRoundStaging is the host-side cost of one exchange
// round's bookkeeping on a 1024-rank communicator with 8 partners:
// Reset the scratch, stage 8 sends, expect 8 receives. This is the
// per-round, per-rank work the engine's request and shuffle exchanges
// do before any virtual-time messaging; it must stay O(partners +
// ranks/64) and allocation-free (TestSparseStagingZeroAllocs).
func BenchmarkSparseRoundStaging(b *testing.B) {
	c := benchComm(5, 1024)
	x := NewSparseExchange(c)
	payload := struct{ n int }{1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Reset()
		for k := 0; k < 8; k++ {
			dst := (c.rank + 1 + k*13) % 1024
			x.Stage(dst, &payload, 1<<16)
			x.Expect((c.rank + 1 + k*7) % 1024)
		}
	}
}

// TestSparseStagingZeroAllocs pins the steady state: after the scratch
// is built, rounds of Reset/Stage/Expect must not allocate. Every
// collio round on every rank runs this cycle, so a single allocation
// here multiplies by rounds × ranks.
func TestSparseStagingZeroAllocs(t *testing.T) {
	c := benchComm(5, 1024)
	x := NewSparseExchange(c)
	payload := struct{ n int }{1}
	x.Stage(0, &payload, 1)
	x.Reset()
	if avg := testing.AllocsPerRun(200, func() {
		x.Reset()
		for k := 0; k < 8; k++ {
			x.Stage((c.rank+1+k*13)%1024, &payload, 1<<16)
			x.Expect((c.rank + 1 + k*7) % 1024)
		}
	}); avg != 0 {
		t.Fatalf("sparse staging allocates %.1f objects/op, want 0", avg)
	}
}
