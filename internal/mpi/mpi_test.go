package mpi

import (
	"fmt"
	"testing"

	"repro/internal/buffer"
	"repro/internal/cluster"
	"repro/internal/simtime"
)

func testMachine(t *testing.T, nodes, cores int) *cluster.Machine {
	t.Helper()
	m, err := cluster.New(cluster.Config{
		Nodes: nodes, CoresPerNode: cores,
		MemPerNode: 64 * cluster.MiB,
		MemBusBW:   1e10, MemBusLat: 1e-7,
		NICBW: 1e9, NICLat: 1e-6,
		BisectionBW: 1e10, BisectionLat: 1e-6,
		IONetBW: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// run spins up a world of nprocs on nodes×cores and executes body on
// every rank, failing the test on deadlock.
func run(t *testing.T, nodes, cores, nprocs int, body func(*Comm)) *World {
	t.Helper()
	e := simtime.NewEngine()
	m := testMachine(t, nodes, cores)
	w, err := NewWorld(e, m, nprocs)
	if err != nil {
		t.Fatal(err)
	}
	w.Start(body)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSendRecvCarriesData(t *testing.T) {
	run(t, 2, 2, 4, func(c *Comm) {
		if c.Rank() == 0 {
			b := buffer.NewReal(128)
			b.Fill(5, 0)
			c.Send(3, 1, b)
		}
		if c.Rank() == 3 {
			got := c.Recv(0, 1)
			if got.Len() != 128 {
				t.Errorf("len %d", got.Len())
			}
			if i := got.Verify(5, 0); i != -1 {
				t.Errorf("payload mismatch at %d", i)
			}
		}
	})
}

func TestSendRecvOrderingSameTag(t *testing.T) {
	run(t, 1, 2, 2, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 5; i++ {
				c.SendVal(1, 2, i, 8)
			}
		} else {
			for i := 0; i < 5; i++ {
				if got := c.RecvVal(0, 2).(int); got != i {
					t.Errorf("message %d arrived as %d", i, got)
				}
			}
		}
	})
}

func TestTagsIsolateStreams(t *testing.T) {
	run(t, 1, 2, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.SendVal(1, 7, "seven", 8)
			c.SendVal(1, 8, "eight", 8)
		} else {
			// Receive in the opposite order of sending.
			if got := c.RecvVal(0, 8).(string); got != "eight" {
				t.Errorf("tag 8 got %q", got)
			}
			if got := c.RecvVal(0, 7).(string); got != "seven" {
				t.Errorf("tag 7 got %q", got)
			}
		}
	})
}

func TestInterNodeCostsMoreThanIntraNode(t *testing.T) {
	var intra, inter float64
	run(t, 2, 2, 4, func(c *Comm) {
		const sz = 1 << 20
		switch c.Rank() {
		case 0:
			c.Send(1, 1, buffer.NewPhantom(sz)) // same node
			c.Send(2, 2, buffer.NewPhantom(sz)) // other node
		case 1:
			c.Recv(0, 1)
			intra = c.Now()
		case 2:
			c.Recv(0, 2)
			inter = c.Now()
		}
	})
	if intra <= 0 || inter <= intra {
		t.Fatalf("intra=%g inter=%g; want 0 < intra < inter", intra, inter)
	}
}

func TestSenderBlocksOnlyForInjection(t *testing.T) {
	// With a slow bisection, the sender should be free long before the
	// receiver gets the message.
	e := simtime.NewEngine()
	m, err := cluster.New(cluster.Config{
		Nodes: 2, CoresPerNode: 1,
		MemPerNode: 64 * cluster.MiB,
		MemBusBW:   1e12, NICBW: 1e12,
		BisectionBW: 1e6, // 1 MB/s: delivery takes ~1 s for 1 MB
		IONetBW:     1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(e, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	var senderFree, recvAt float64
	w.Start(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, buffer.NewPhantom(1<<20))
			senderFree = c.Now()
		} else {
			c.Recv(0, 1)
			recvAt = c.Now()
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if senderFree >= recvAt/10 {
		t.Fatalf("sender blocked until %g, delivery at %g: send is not asynchronous", senderFree, recvAt)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	times := make([]float64, 8)
	run(t, 2, 4, 8, func(c *Comm) {
		c.Proc().Sleep(float64(c.Rank()) * 0.01)
		c.Barrier()
		times[c.Rank()] = c.Now()
	})
	for r, at := range times {
		if at < 0.07 {
			t.Fatalf("rank %d left barrier at %g, before last arrival 0.07", r, at)
		}
	}
}

func TestBcastDeliversToAll(t *testing.T) {
	got := make([]int, 7)
	run(t, 2, 4, 7, func(c *Comm) {
		v := -1
		if c.Rank() == 2 {
			v = 42
		}
		got[c.Rank()] = c.Bcast(2, v, 8).(int)
	})
	for r, v := range got {
		if v != 42 {
			t.Fatalf("rank %d got %d", r, v)
		}
	}
}

func TestAllgatherOrderAndCompleteness(t *testing.T) {
	const p = 6
	run(t, 2, 3, p, func(c *Comm) {
		out := c.Allgather(c.Rank()*10, 8)
		if len(out) != p {
			t.Fatalf("allgather returned %d entries", len(out))
		}
		for i, v := range out {
			if v.(int) != i*10 {
				t.Fatalf("rank %d: out[%d]=%v, want %d", c.Rank(), i, v, i*10)
			}
		}
	})
}

func TestGatherOnlyRootSees(t *testing.T) {
	run(t, 1, 4, 4, func(c *Comm) {
		out := c.Gather(1, fmt.Sprintf("r%d", c.Rank()), 8)
		if c.Rank() != 1 {
			if out != nil {
				t.Errorf("non-root got %v", out)
			}
			return
		}
		for i, v := range out {
			if v.(string) != fmt.Sprintf("r%d", i) {
				t.Errorf("out[%d]=%v", i, v)
			}
		}
	})
}

func TestAlltoallPermutation(t *testing.T) {
	const p = 5
	run(t, 1, 8, p, func(c *Comm) {
		vals := make([]any, p)
		bytes := make([]int64, p)
		for i := 0; i < p; i++ {
			vals[i] = c.Rank()*100 + i
			bytes[i] = 64
		}
		out := c.Alltoall(vals, bytes)
		for i, v := range out {
			want := i*100 + c.Rank()
			if v.(int) != want {
				t.Fatalf("rank %d: out[%d]=%v, want %d", c.Rank(), i, v, want)
			}
		}
	})
}

func TestAlltoallSparseSkipsAbsent(t *testing.T) {
	const p = 4
	// Only rank 0 sends, to everyone; everyone knows it.
	run(t, 1, 4, p, func(c *Comm) {
		vals := make([]any, p)
		bytes := make([]int64, p)
		present := make([]bool, p)
		if c.Rank() == 0 {
			for i := range vals {
				vals[i] = i + 1000
				bytes[i] = 32
			}
		}
		present[0] = true
		out := c.AlltoallSparse(vals, bytes, present)
		if out[0].(int) != c.Rank()+1000 {
			t.Fatalf("rank %d got %v from 0", c.Rank(), out[0])
		}
		for i := 1; i < p; i++ {
			if out[i] != nil {
				t.Fatalf("rank %d got unexpected %v from %d", c.Rank(), out[i], i)
			}
		}
	})
}

func TestReduceAndAllreduce(t *testing.T) {
	const p = 9
	run(t, 3, 3, p, func(c *Comm) {
		sum := c.ReduceInt64(0, int64(c.Rank()+1), SumInt64)
		if c.Rank() == 0 && sum != 45 {
			t.Errorf("reduce sum %d, want 45", sum)
		}
		max := c.AllreduceInt64(int64(c.Rank()), MaxInt64)
		if max != p-1 {
			t.Errorf("rank %d allreduce max %d, want %d", c.Rank(), max, p-1)
		}
	})
}

func TestSplitByParity(t *testing.T) {
	const p = 6
	run(t, 2, 3, p, func(c *Comm) {
		sub := c.Split(c.Rank()%2, c.Rank())
		if sub.Size() != 3 {
			t.Fatalf("sub size %d", sub.Size())
		}
		if want := c.Rank() / 2; sub.Rank() != want {
			t.Fatalf("world rank %d has sub rank %d, want %d", c.Rank(), sub.Rank(), want)
		}
		// Collectives on the sub-communicator must not cross colors.
		sum := sub.AllreduceInt64(int64(c.Rank()), SumInt64)
		want := int64(0 + 2 + 4)
		if c.Rank()%2 == 1 {
			want = 1 + 3 + 5
		}
		if sum != want {
			t.Fatalf("rank %d sub-sum %d, want %d", c.Rank(), sum, want)
		}
		// World rank mapping preserved.
		if sub.WorldRank(sub.Rank()) != c.Rank() {
			t.Fatalf("world rank mapping broken")
		}
	})
}

func TestSplitSubgroupsAreConcurrentlyUsable(t *testing.T) {
	// Two disjoint subgroups barrier independently; neither waits for
	// the other (the point of the paper's group division).
	leftDone := make([]float64, 4)
	run(t, 2, 2, 4, func(c *Comm) {
		sub := c.Split(c.Rank()/2, 0)
		if c.Rank() >= 2 {
			c.Proc().Sleep(1000) // right group is very slow
		}
		sub.Barrier()
		leftDone[c.Rank()] = c.Now()
	})
	if leftDone[0] > 1 || leftDone[1] > 1 {
		t.Fatalf("left group blocked on right group: %v", leftDone[:2])
	}
}

func TestTrafficStatsSeparateLocality(t *testing.T) {
	w := run(t, 2, 2, 4, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, buffer.NewPhantom(100)) // intra
			c.Send(2, 1, buffer.NewPhantom(200)) // inter
		}
		if c.Rank() == 1 {
			c.Recv(0, 1)
		}
		if c.Rank() == 2 {
			c.Recv(0, 1)
		}
	})
	tr := w.Traffic()
	if tr.BytesIntra != 100 || tr.BytesInter != 200 || tr.MsgsIntra != 1 || tr.MsgsInter != 1 {
		t.Fatalf("traffic %+v", tr)
	}
}

func TestMismatchedCollectiveDeadlocks(t *testing.T) {
	e := simtime.NewEngine()
	m := testMachine(t, 1, 2)
	w, err := NewWorld(e, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	w.Start(func(c *Comm) {
		if c.Rank() == 0 {
			c.Barrier() // rank 1 never joins
		}
	})
	if _, ok := e.Run().(*simtime.DeadlockError); !ok {
		t.Fatal("mismatched barrier did not report deadlock")
	}
}

func TestWorldSizeValidation(t *testing.T) {
	e := simtime.NewEngine()
	m := testMachine(t, 1, 2)
	if _, err := NewWorld(e, m, 3); err == nil {
		t.Fatal("oversized world accepted")
	}
	if _, err := NewWorld(e, m, 0); err == nil {
		t.Fatal("empty world accepted")
	}
}

func TestBadRankAndTagPanic(t *testing.T) {
	run(t, 1, 2, 2, func(c *Comm) {
		if c.Rank() != 0 {
			return
		}
		for _, f := range []func(){
			func() { c.Send(5, 0, buffer.NewPhantom(1)) },
			func() { c.Send(0, -1, buffer.NewPhantom(1)) },
			func() { c.Send(0, userTagSpace, buffer.NewPhantom(1)) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Error("no panic")
					}
				}()
				f()
			}()
		}
	})
}

func TestSingletonCommCollectivesAreNoops(t *testing.T) {
	run(t, 1, 1, 1, func(c *Comm) {
		c.Barrier()
		if v := c.Bcast(0, 9, 8).(int); v != 9 {
			t.Error("bcast")
		}
		if out := c.Allgather(3, 8); len(out) != 1 || out[0].(int) != 3 {
			t.Error("allgather")
		}
		if s := c.AllreduceInt64(7, SumInt64); s != 7 {
			t.Error("allreduce")
		}
	})
}

func TestLargeWorldBarrierScales(t *testing.T) {
	run(t, 16, 8, 128, func(c *Comm) {
		for i := 0; i < 3; i++ {
			c.Barrier()
		}
	})
}

func TestBcastChargesRootSizeThroughTree(t *testing.T) {
	// Binomial broadcast sends p-1 messages, each charged at the
	// ROOT's payload size — including the hops forwarded by
	// intermediate members whose own bytes argument is meaningless.
	const p = 8
	const payload = int64(1000)
	w := run(t, 4, 2, p, func(c *Comm) {
		v := any(nil)
		bytes := int64(0)
		if c.Rank() == 3 {
			v, bytes = "data", payload
		}
		c.Bcast(3, v, bytes)
	})
	tr := w.Traffic()
	if got := tr.BytesIntra + tr.BytesInter; got != payload*(p-1) {
		t.Fatalf("bcast moved %d bytes, want %d", got, payload*(p-1))
	}
}

func TestSplitContextsIsolateSuccessiveSplits(t *testing.T) {
	// Two successive splits with the same colors must not cross talk:
	// messages of the first sub-comm cannot be received by the second.
	run(t, 2, 2, 4, func(c *Comm) {
		a := c.Split(c.Rank()%2, 0)
		b := c.Split(c.Rank()%2, 0)
		if a.Rank() == 0 {
			a.SendVal(1, 1, "first", 8)
		}
		if b.Rank() == 0 {
			b.SendVal(1, 1, "second", 8)
		}
		if a.Rank() == 1 {
			if got := a.RecvVal(0, 1).(string); got != "first" {
				t.Errorf("sub-comm a got %q", got)
			}
		}
		if b.Rank() == 1 {
			if got := b.RecvVal(0, 1).(string); got != "second" {
				t.Errorf("sub-comm b got %q", got)
			}
		}
	})
}
