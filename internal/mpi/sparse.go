package mpi

import (
	"math/bits"

	"repro/internal/obs"
)

// SparseExchange is reusable per-communicator state for repeated
// sparse alltoall rounds. The plain AlltoallSparse walks all p pairwise
// steps probing vals/present, which makes a k-partner exchange cost
// O(p) host work per rank — O(p²) per round across the communicator —
// even when k is tiny (the common collective-I/O case: each rank talks
// to a few aggregators). SparseExchange keeps step-indexed bitmasks of
// staged sends and expected receives, so one round costs O(p/64 + k)
// and reuses every backing array.
//
// The virtual-time semantics are exactly AlltoallSparse's: the same
// pairwise step order, the same send-before-receive interleaving
// within a step, the same self-exchange bus charge. A staged value is
// delivered at the identical virtual instant either way.
//
// Usage per round: Reset, then any mix of Stage/Expect, then Exchange,
// then Received. The exchange must be collective — every member runs
// the same round in the same order (the usual SPMD contract).
type SparseExchange struct {
	c     *Comm
	vals  []any
	bytes []int64
	out   []any

	sendMask []uint64 // bit s: staged send to (rank+s)%p at step s
	recvMask []uint64 // bit s: expected receive from (rank-s+p)%p at step s
	srcMask  []uint64 // bit r: out[r] holds a received value (rank order)
}

// NewSparseExchange returns exchange scratch bound to c. The scratch is
// owned by the calling rank's collective; it is not safe to share.
func NewSparseExchange(c *Comm) *SparseExchange {
	p := c.Size()
	words := (p + 63) / 64
	return &SparseExchange{
		c:        c,
		vals:     make([]any, p),
		bytes:    make([]int64, p),
		out:      make([]any, p),
		sendMask: make([]uint64, words),
		recvMask: make([]uint64, words),
		srcMask:  make([]uint64, words),
	}
}

// Reset clears the previous round's staged sends and received values in
// O(active + p/64) time, releasing every payload reference.
func (x *SparseExchange) Reset() {
	p := len(x.vals)
	rank := x.c.rank
	for w, word := range x.sendMask {
		for word != 0 {
			s := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			dst := rank + s
			if dst >= p {
				dst -= p
			}
			x.vals[dst] = nil
			x.bytes[dst] = 0
		}
		x.sendMask[w] = 0
	}
	for w, word := range x.srcMask {
		for word != 0 {
			src := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			x.out[src] = nil
		}
		x.srcMask[w] = 0
	}
	for w := range x.recvMask {
		x.recvMask[w] = 0
	}
}

// Stage queues v (charged at n bytes) for delivery to comm rank dst in
// the next Exchange. v must be non-nil; staging the caller's own rank
// models the local self-exchange.
func (x *SparseExchange) Stage(dst int, v any, n int64) {
	if v == nil {
		panic("mpi: SparseExchange.Stage with nil value")
	}
	x.c.checkRank(dst, "stage")
	p := len(x.vals)
	s := dst - x.c.rank
	if s < 0 {
		s += p
	}
	x.sendMask[s/64] |= 1 << (s % 64)
	x.vals[dst] = v
	x.bytes[dst] = n
}

// Expect declares that comm rank src will stage a value for us this
// round. Like AlltoallSparse's present slice it must mirror the
// sender's decision exactly; both sides compute it from the same global
// metadata. Expecting one's own rank is a no-op (self-delivery is
// implied by Stage).
func (x *SparseExchange) Expect(src int) {
	x.c.checkRank(src, "expect")
	if src == x.c.rank {
		return
	}
	p := len(x.vals)
	s := x.c.rank - src
	if s < 0 {
		s += p
	}
	x.recvMask[s/64] |= 1 << (s % 64)
	x.srcMask[src/64] |= 1 << (src % 64)
}

// Exchange runs the pairwise exchange over the staged/expected steps.
// Step order and the send-then-receive interleaving within a step match
// AlltoallSparse exactly, so virtual delivery times are identical.
func (x *SparseExchange) Exchange() {
	c := x.c
	p := len(x.vals)
	const tag = tagAlltoall
	sp := c.Tracer().Begin(obs.PhaseMPIAlltoall, c.traceLoc())
	var sent, pairs int64
	if x.sendMask[0]&1 != 0 {
		x.out[c.rank] = x.vals[c.rank]
		x.srcMask[c.rank/64] |= 1 << (c.rank % 64)
		if x.bytes[c.rank] > 0 {
			c.w.intraPaths[c.NodeOf(c.rank)].Transfer(c.p, x.bytes[c.rank])
			sent += x.bytes[c.rank]
			pairs++
		}
	}
	for w := range x.sendMask {
		sw, rw := x.sendMask[w], x.recvMask[w]
		if w == 0 {
			sw &^= 1 // self handled above
		}
		both := sw | rw
		for both != 0 {
			s := w*64 + bits.TrailingZeros64(both)
			both &= both - 1
			bit := uint64(1) << (s % 64)
			if sw&bit != 0 {
				dst := c.rank + s
				if dst >= p {
					dst -= p
				}
				c.isend(dst, tag, x.vals[dst], x.bytes[dst])
				sent += x.bytes[dst]
				pairs++
			}
			if rw&bit != 0 {
				src := c.rank - s
				if src < 0 {
					src += p
				}
				x.out[src] = c.irecv(src, tag)
			}
		}
	}
	sp.EndBytes(sent, pairs)
	c.w.met.alltoalls.Inc()
	c.w.met.alltoallBytes.Add(float64(sent))
}

// Received calls f for every value delivered by the last Exchange, in
// ascending source-rank order — the same order a scan over
// AlltoallSparse's result slice visits.
func (x *SparseExchange) Received(f func(src int, v any)) {
	for w, word := range x.srcMask {
		for word != 0 {
			src := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			f(src, x.out[src])
		}
	}
}

// Out returns the value received from src in the last Exchange, or nil.
func (x *SparseExchange) Out(src int) any {
	x.c.checkRank(src, "out")
	return x.out[src]
}
