package iotrace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/workload"
)

func sample() *Trace {
	t := &Trace{}
	t.Add(0, Write, 0, 100)
	t.Add(1, Write, 100, 100)
	t.Add(0, Read, 0, 50)
	t.Add(2, Write, 300, 10)
	return t
}

func TestRoundTripSerialization(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Requests) != len(tr.Requests) {
		t.Fatalf("%d requests, want %d", len(got.Requests), len(tr.Requests))
	}
	for i := range got.Requests {
		if got.Requests[i] != tr.Requests[i] {
			t.Fatalf("request %d: %+v != %+v", i, got.Requests[i], tr.Requests[i])
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	bad := []string{
		"0 w 0 100\n",                       // no header
		"#mccio-trace v1\n0 w 0\n",          // short line
		"#mccio-trace v1\n-1 w 0 10\n",      // negative rank
		"#mccio-trace v1\n0 x 0 10\n",       // bad op
		"#mccio-trace v1\n0 w -5 10\n",      // negative offset
		"#mccio-trace v1\n0 w 0 0\n",        // zero length
		"#mccio-trace v1\n0 w 0 banana\n",   // non-numeric
		"",                                  // empty
		"# a comment but no version line\n", // missing header
	}
	for i, s := range bad {
		if _, err := Parse(strings.NewReader(s)); err == nil {
			t.Errorf("case %d accepted: %q", i, s)
		}
	}
}

func TestParseTolerantOfCommentsAndBlanks(t *testing.T) {
	in := "#mccio-trace v1\n\n# hello\n0 w 10 20\n\n"
	tr, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 1 || tr.Requests[0].Off != 10 {
		t.Fatalf("%+v", tr.Requests)
	}
}

func TestFromWorkloadAndReplayEquivalence(t *testing.T) {
	wl := workload.IOR{Ranks: 6, BlockSize: 4 << 10, Segments: 5}
	tr := FromWorkload(wl, Write)
	rp, err := NewReplay(tr, Write)
	if err != nil {
		t.Fatal(err)
	}
	if rp.NumRanks() != wl.NumRanks() || rp.TotalBytes() != wl.TotalBytes() {
		t.Fatalf("replay %d ranks %d bytes, want %d/%d",
			rp.NumRanks(), rp.TotalBytes(), wl.NumRanks(), wl.TotalBytes())
	}
	for r := 0; r < wl.NumRanks(); r++ {
		if !rp.View(r).Equal(wl.View(r)) {
			t.Fatalf("rank %d view mismatch", r)
		}
	}
}

func TestReplayRejectsOverlappingWrites(t *testing.T) {
	tr := &Trace{}
	tr.Add(0, Write, 0, 100)
	tr.Add(1, Write, 50, 100)
	if _, err := NewReplay(tr, Write); err == nil {
		t.Fatal("overlapping writes accepted")
	}
	// Overlapping reads are fine.
	tr2 := &Trace{}
	tr2.Add(0, Read, 0, 100)
	tr2.Add(1, Read, 50, 100)
	if _, err := NewReplay(tr2, Read); err != nil {
		t.Fatal(err)
	}
}

func TestReplayFiltersOp(t *testing.T) {
	rp, err := NewReplay(sample(), Read)
	if err != nil {
		t.Fatal(err)
	}
	if rp.TotalBytes() != 50 {
		t.Fatalf("read bytes %d, want 50", rp.TotalBytes())
	}
	if len(rp.View(1)) != 0 || len(rp.View(2)) != 0 {
		t.Fatal("ranks without reads must have empty views")
	}
}

func TestAnalyze(t *testing.T) {
	s := Analyze(sample())
	if s.Ranks != 3 || s.Requests != 4 || s.Bytes != 260 {
		t.Fatalf("%+v", s)
	}
	if s.MinLen != 10 || s.MaxLen != 100 || s.FileExtent != 310 {
		t.Fatalf("%+v", s)
	}
	if s.WriteShare != 0.75 {
		t.Fatalf("write share %g", s.WriteShare)
	}
	if s.SizeBuckets["<4K"] != 4 {
		t.Fatalf("buckets %+v", s.SizeBuckets)
	}
}

func TestAnalyzeInterleaveDistinguishesLayouts(t *testing.T) {
	serial := FromWorkload(workload.Checkpoint{Ranks: 8, MeanBytes: 1 << 20}, Write)
	inter := FromWorkload(workload.IOR{Ranks: 8, BlockSize: 64 << 10, Segments: 16}, Write)
	si, ii := Analyze(serial).Interleave, Analyze(inter).Interleave
	if si > 1.01 {
		t.Fatalf("serial layout interleave %g, want ~1", si)
	}
	if ii < 4 {
		t.Fatalf("interleaved layout interleave %g, want >> 1", ii)
	}
}

func TestSerializationPropertyRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		tr := &Trace{}
		n := 1 + r.Intn(50)
		for i := 0; i < n; i++ {
			op := Write
			if r.Intn(2) == 0 {
				op = Read
			}
			tr.Add(r.Intn(16), op, r.Int63n(1<<40), 1+r.Int63n(1<<20))
		}
		var buf bytes.Buffer
		if tr.Write(&buf) != nil {
			return false
		}
		got, err := Parse(&buf)
		if err != nil || len(got.Requests) != len(tr.Requests) {
			return false
		}
		for i := range got.Requests {
			if got.Requests[i] != tr.Requests[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
