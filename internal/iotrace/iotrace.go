// Package iotrace records and replays application I/O traces. A trace
// is the portable form of a workload: one line per request with rank,
// operation, offset and length. Traces let users feed their real
// application patterns into the simulator (`mccio-trace run`) and let
// experiments persist exactly what they measured.
//
// Format (text, line-oriented, stable):
//
//	#mccio-trace v1
//	# optional comments
//	<rank> <w|r> <offset> <length>
//
// Requests of one rank need not be sorted; replay canonicalizes them.
package iotrace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/datatype"
	"repro/internal/workload"
)

// Op is a request direction.
type Op byte

const (
	Write Op = 'w'
	Read  Op = 'r'
)

// Request is one recorded I/O request.
type Request struct {
	Rank int
	Op   Op
	Off  int64
	Len  int64
}

// Trace is an ordered list of requests.
type Trace struct {
	Requests []Request
}

// header identifies the format version.
const header = "#mccio-trace v1"

// Add appends a request.
func (t *Trace) Add(rank int, op Op, off, length int64) {
	t.Requests = append(t.Requests, Request{Rank: rank, Op: op, Off: off, Len: length})
}

// NumRanks returns one past the highest rank mentioned.
func (t *Trace) NumRanks() int {
	max := -1
	for _, r := range t.Requests {
		if r.Rank > max {
			max = r.Rank
		}
	}
	return max + 1
}

// Write serializes the trace.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, header); err != nil {
		return err
	}
	for _, r := range t.Requests {
		if _, err := fmt.Fprintf(bw, "%d %c %d %d\n", r.Rank, r.Op, r.Off, r.Len); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Parse reads a serialized trace, validating every line.
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	sawHeader := false
	t := &Trace{}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if text == header {
				sawHeader = true
			}
			continue
		}
		if !sawHeader {
			return nil, fmt.Errorf("iotrace: line %d: data before %q header", line, header)
		}
		fields := strings.Fields(text)
		if len(fields) != 4 {
			return nil, fmt.Errorf("iotrace: line %d: want 4 fields, got %d", line, len(fields))
		}
		rank, err := strconv.Atoi(fields[0])
		if err != nil || rank < 0 {
			return nil, fmt.Errorf("iotrace: line %d: bad rank %q", line, fields[0])
		}
		var op Op
		switch fields[1] {
		case "w":
			op = Write
		case "r":
			op = Read
		default:
			return nil, fmt.Errorf("iotrace: line %d: bad op %q", line, fields[1])
		}
		off, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil || off < 0 {
			return nil, fmt.Errorf("iotrace: line %d: bad offset %q", line, fields[2])
		}
		length, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil || length <= 0 {
			return nil, fmt.Errorf("iotrace: line %d: bad length %q", line, fields[3])
		}
		t.Add(rank, op, off, length)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("iotrace: missing %q header", header)
	}
	return t, nil
}

// FromWorkload records a workload's views as a trace (all requests with
// the given op).
func FromWorkload(w workload.Workload, op Op) *Trace {
	t := &Trace{}
	for rank := 0; rank < w.NumRanks(); rank++ {
		for _, s := range w.View(rank) {
			t.Add(rank, op, s.Off, s.Len)
		}
	}
	return t
}

// Replay is a Workload backed by a trace, filtered to one op.
type Replay struct {
	trace *Trace
	op    Op
	views []datatype.List
}

// NewReplay canonicalizes the trace's op-requests into per-rank views.
// Overlapping requests of one rank merge (canonical views); overlaps
// ACROSS ranks are rejected for writes, since a collective write with
// inter-rank overlap has no deterministic outcome to verify.
func NewReplay(t *Trace, op Op) (*Replay, error) {
	n := t.NumRanks()
	if n == 0 {
		return nil, fmt.Errorf("iotrace: empty trace")
	}
	raw := make([][]datatype.Segment, n)
	for _, r := range t.Requests {
		if r.Op != op {
			continue
		}
		raw[r.Rank] = append(raw[r.Rank], datatype.Segment{Off: r.Off, Len: r.Len})
	}
	rp := &Replay{trace: t, op: op, views: make([]datatype.List, n)}
	var all []datatype.Segment
	var sum int64
	for rank, segs := range raw {
		rp.views[rank] = datatype.Normalize(segs)
		sum += rp.views[rank].TotalBytes()
		all = append(all, rp.views[rank]...)
	}
	if op == Write {
		if merged := datatype.Normalize(all); merged.TotalBytes() != sum {
			return nil, fmt.Errorf("iotrace: write requests overlap across ranks (%d bytes requested, %d distinct)",
				sum, merged.TotalBytes())
		}
	}
	return rp, nil
}

// Name implements workload.Workload.
func (rp *Replay) Name() string {
	return fmt.Sprintf("trace replay (%c, %d ranks, %d reqs)", rp.op, len(rp.views), len(rp.trace.Requests))
}

// NumRanks implements workload.Workload.
func (rp *Replay) NumRanks() int { return len(rp.views) }

// View implements workload.Workload.
func (rp *Replay) View(rank int) datatype.List { return rp.views[rank] }

// TotalBytes implements workload.Workload.
func (rp *Replay) TotalBytes() int64 {
	var sum int64
	for _, v := range rp.views {
		sum += v.TotalBytes()
	}
	return sum
}

// Stats summarizes a trace for inspection tools.
type Stats struct {
	Ranks       int
	Requests    int
	Bytes       int64
	MinLen      int64
	MaxLen      int64
	MeanLen     float64
	FileExtent  int64 // one past the highest byte touched
	Interleave  float64
	WriteShare  float64 // fraction of requests that are writes
	SizeBuckets map[string]int
}

// Analyze computes trace statistics. Interleave measures how scattered
// ownership is: the number of maximal contiguous single-rank runs
// divided by the number of ranks (1.0 = perfectly rank-contiguous
// layout; higher = interleaved).
func Analyze(t *Trace) Stats {
	s := Stats{Ranks: t.NumRanks(), Requests: len(t.Requests), SizeBuckets: map[string]int{}}
	if len(t.Requests) == 0 {
		return s
	}
	s.MinLen = t.Requests[0].Len
	type ext struct {
		off, end int64
		rank     int
	}
	exts := make([]ext, 0, len(t.Requests))
	writes := 0
	for _, r := range t.Requests {
		s.Bytes += r.Len
		if r.Len < s.MinLen {
			s.MinLen = r.Len
		}
		if r.Len > s.MaxLen {
			s.MaxLen = r.Len
		}
		if r.Off+r.Len > s.FileExtent {
			s.FileExtent = r.Off + r.Len
		}
		if r.Op == Write {
			writes++
		}
		s.SizeBuckets[sizeBucket(r.Len)]++
		exts = append(exts, ext{off: r.Off, end: r.Off + r.Len, rank: r.Rank})
	}
	s.MeanLen = float64(s.Bytes) / float64(s.Requests)
	s.WriteShare = float64(writes) / float64(s.Requests)
	// Interleave: sort by offset, count rank changes between adjacent
	// extents.
	sort.Slice(exts, func(i, j int) bool { return exts[i].off < exts[j].off })
	runs := 1
	for i := 1; i < len(exts); i++ {
		if exts[i].rank != exts[i-1].rank {
			runs++
		}
	}
	s.Interleave = float64(runs) / float64(maxInt(s.Ranks, 1))
	return s
}

func sizeBucket(n int64) string {
	switch {
	case n < 4<<10:
		return "<4K"
	case n < 64<<10:
		return "4K-64K"
	case n < 1<<20:
		return "64K-1M"
	case n < 16<<20:
		return "1M-16M"
	default:
		return ">=16M"
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
