package faults

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/obs"
)

func writeSpec(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadSpec(t *testing.T) {
	path := writeSpec(t, `{
		"seed": 7,
		"retry": {"timeout_s": 0.002, "backoff": 2, "max_timeout_s": 0.05, "max_retries": 4},
		"mem_pressure": [{"node": 1, "round": 1, "bytes": 2097152}],
		"slow_osts": [{"ost": 3, "factor": 4, "from_s": 0.0}],
		"slow_links": [{"node": 2, "factor": 2, "from_s": 0, "until_s": 1}],
		"node_failures": [{"node": 1, "round": 2}],
		"messages": {"drop_rate": 0.05, "delay_rate": 0.02, "delay_mean_s": 0.001}
	}`)
	s, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 || len(s.MemPressure) != 1 || s.MemPressure[0].Bytes != 2<<20 ||
		s.SlowOSTs[0].Factor != 4 || s.SlowLinks[0].UntilSec != 1 ||
		s.NodeFailures[0].Round != 2 || s.Messages.DropRate != 0.05 {
		t.Errorf("parsed spec wrong: %+v", s)
	}
}

func TestLoadSpecRejectsUnknownFields(t *testing.T) {
	path := writeSpec(t, `{"seed": 1, "mem_presure": []}`)
	if _, err := LoadSpec(path); err == nil {
		t.Error("typo'd field should fail loudly, got nil error")
	} else if !strings.Contains(err.Error(), "mem_presure") {
		t.Errorf("error should name the unknown field: %v", err)
	}
}

func TestValidate(t *testing.T) {
	bad := []Spec{
		{MemPressure: []MemPressure{{Node: 0, Round: 0, Bytes: 0}}},
		{MemPressure: []MemPressure{{Node: -1, Round: 0, Bytes: 1}}},
		{SlowOSTs: []SlowOST{{OST: 0, Factor: 0.5}}},
		{SlowOSTs: []SlowOST{{OST: 0, Factor: 2, FromSec: 5, UntilSec: 1}}},
		{SlowLinks: []SlowLink{{Node: 0, Factor: 0.9}}},
		{NodeFailures: []NodeFailure{{Node: 0, Round: -1}}},
		{Messages: MessageSpec{DropRate: 1.5}},
		{Messages: MessageSpec{DelayRate: -0.1}},
		{Messages: MessageSpec{DelayRate: 0.1}}, // delay without a mean
		{Retry: RetrySpec{TimeoutSec: -1}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad[%d] %+v: want error, got nil", i, s)
		}
	}
	ok := Spec{
		MemPressure:  []MemPressure{{Node: 0, Round: 0, Bytes: 1}},
		SlowOSTs:     []SlowOST{{OST: 0, Factor: 1}},
		NodeFailures: []NodeFailure{{Node: 3, Round: 0}},
		Messages:     MessageSpec{DropRate: 1, DelayRate: 0.5, DelayMeanSec: 1e-3},
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestExchangeDropsDeterministic pins the two properties the resilience
// machinery depends on: the draw is a pure function of the coordinate
// (same across schedules with the same seed, order-independent), and it
// never exceeds the retry budget.
func TestExchangeDropsDeterministic(t *testing.T) {
	spec := Spec{Seed: 99, Messages: MessageSpec{DropRate: 0.5}}
	a, err := NewSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	type coord struct{ g, r, k int }
	var coords []coord
	for g := 0; g < 3; g++ {
		for r := 0; r < 4; r++ {
			for k := 0; k < 8; k++ {
				coords = append(coords, coord{g, r, k})
			}
		}
	}
	forward := make(map[coord]int)
	sawDrop := false
	for _, c := range coords {
		d := a.ExchangeDrops(c.g, c.r, c.k)
		if d < 0 || d > a.Spec().Retry.MaxRetries {
			t.Fatalf("drops %d outside retry budget %d", d, a.Spec().Retry.MaxRetries)
		}
		if d > 0 {
			sawDrop = true
		}
		forward[c] = d
	}
	if !sawDrop {
		t.Fatal("drop rate 0.5 never dropped — draw is broken")
	}
	// Second schedule, coordinates visited in reverse: identical draws.
	for i := len(coords) - 1; i >= 0; i-- {
		c := coords[i]
		if d := b.ExchangeDrops(c.g, c.r, c.k); d != forward[c] {
			t.Fatalf("draw at %+v order-dependent: %d vs %d", c, d, forward[c])
		}
	}
	// A different seed moves the draws.
	diff, _ := NewSchedule(Spec{Seed: 100, Messages: MessageSpec{DropRate: 0.5}})
	same := true
	for _, c := range coords {
		if diff.ExchangeDrops(c.g, c.r, c.k) != forward[c] {
			same = false
			break
		}
	}
	if same {
		t.Error("seed does not influence the drop draws")
	}
}

func TestRetryPenalty(t *testing.T) {
	s, err := NewSchedule(Spec{Retry: RetrySpec{TimeoutSec: 1, Backoff: 2, MaxTimeoutSec: 3, MaxRetries: 5}})
	if err != nil {
		t.Fatal(err)
	}
	// 1, 2, then capped at 3.
	cases := map[int]float64{0: 0, 1: 1, 2: 3, 3: 6, 4: 9}
	for drops, want := range cases {
		if got := s.RetryPenalty(drops); got != want {
			t.Errorf("RetryPenalty(%d) = %g, want %g", drops, got, want)
		}
	}
}

func TestFactorWindows(t *testing.T) {
	s, err := NewSchedule(Spec{
		SlowOSTs: []SlowOST{
			{OST: 2, Factor: 3, FromSec: 1, UntilSec: 2},
			{OST: 2, Factor: 2, FromSec: 0}, // forever
		},
		SlowLinks: []SlowLink{{Node: 1, Factor: 4, FromSec: 0.5, UntilSec: 1.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.OSTFactor(2, 0.5); got != 2 {
		t.Errorf("OSTFactor(2, 0.5) = %g, want 2 (only the open-ended entry)", got)
	}
	if got := s.OSTFactor(2, 1.5); got != 6 {
		t.Errorf("OSTFactor(2, 1.5) = %g, want 6 (both entries compound)", got)
	}
	if got := s.OSTFactor(2, 2.0); got != 2 {
		t.Errorf("OSTFactor(2, 2.0) = %g, want 2 (window is half-open)", got)
	}
	if got := s.OSTFactor(0, 1.5); got != 1 {
		t.Errorf("OSTFactor(0, 1.5) = %g, want 1 (other OST untouched)", got)
	}
	if got := s.LinkFactor(1, 1.0); got != 4 {
		t.Errorf("LinkFactor(1, 1.0) = %g, want 4", got)
	}
	if got := s.LinkFactor(1, 2.0); got != 1 {
		t.Errorf("LinkFactor(1, 2.0) = %g, want 1 (expired)", got)
	}
}

func TestApplyPressureExactlyOnce(t *testing.T) {
	s, err := NewSchedule(Spec{MemPressure: []MemPressure{
		{Node: 0, Round: 0, Bytes: 10},
		{Node: 1, Round: 2, Bytes: 20},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var got []MemPressure
	apply := func(node int, bytes int64) { got = append(got, MemPressure{Node: node, Bytes: bytes}) }
	s.ApplyPressure(0, apply)
	s.ApplyPressure(0, apply) // re-check same round: no double application
	s.ApplyPressure(3, apply) // later round picks up the round-2 entry
	s.ApplyPressure(3, apply)
	want := []MemPressure{{Node: 0, Bytes: 10}, {Node: 1, Bytes: 20}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("applied %+v, want %+v", got, want)
	}
	if s.Injected() != 2 {
		t.Errorf("injected = %d, want 2", s.Injected())
	}
	// The pure predicate is cumulative and unaffected by application.
	if p := s.PressureBy(1, 1); p != 0 {
		t.Errorf("PressureBy(1, 1) = %d, want 0 (entry due at round 2)", p)
	}
	if p := s.PressureBy(1, 2); p != 20 {
		t.Errorf("PressureBy(1, 2) = %d, want 20", p)
	}
}

func TestNodeFailedBy(t *testing.T) {
	s, err := NewSchedule(Spec{NodeFailures: []NodeFailure{{Node: 2, Round: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if s.NodeFailedBy(2, 2) {
		t.Error("node reported failed before its round")
	}
	if !s.NodeFailedBy(2, 3) || !s.NodeFailedBy(2, 7) {
		t.Error("node failure must persist from its round on")
	}
	if s.NodeFailedBy(1, 9) {
		t.Error("unrelated node reported failed")
	}
}

// TestBindCountsScheduleFaults checks that schedule-level faults (slow
// entries, node failures) land in the injected counter and the metrics
// registry once, and that Bind is idempotent.
func TestBindCountsScheduleFaults(t *testing.T) {
	s, err := NewSchedule(Spec{
		SlowOSTs:     []SlowOST{{OST: 0, Factor: 2}},
		SlowLinks:    []SlowLink{{Node: 1, Factor: 2}},
		NodeFailures: []NodeFailure{{Node: 0, Round: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	tr := obs.NewTracer()
	s.Bind(reg, tr)
	s.Bind(reg, tr) // idempotent
	if s.Injected() != 3 {
		t.Errorf("injected = %d, want 3 (2 slow + 1 node)", s.Injected())
	}
	snap := reg.Snapshot()
	if v, ok := snap.Get("faults_injected_total", map[string]string{"class": "slow"}); !ok || v != 2 {
		t.Errorf("faults_injected_total{class=slow} = %v, %v; want 2", v, ok)
	}
	if v, ok := snap.Get("faults_injected_total", map[string]string{"class": "node"}); !ok || v != 1 {
		t.Errorf("faults_injected_total{class=node} = %v, %v; want 1", v, ok)
	}
	var faultEvents int
	for _, e := range tr.Events() {
		if e.Phase.Category() == "fault" {
			faultEvents++
		}
	}
	if faultEvents != 3 {
		t.Errorf("fault trace instants = %d, want 3", faultEvents)
	}
}

// TestNilScheduleSafe drives every public method through a nil receiver:
// the disabled path must answer "no fault" and never dereference.
func TestNilScheduleSafe(t *testing.T) {
	var s *Schedule
	s.Bind(nil, nil)
	if s.NodeFailedBy(0, 0) || s.PressureBy(0, 0) != 0 {
		t.Error("nil schedule reported faults")
	}
	s.ApplyPressure(0, func(int, int64) { t.Error("nil schedule applied pressure") })
	if s.OSTFactor(0, 0) != 1 || s.LinkFactor(0, 0) != 1 {
		t.Error("nil schedule slowed something")
	}
	if s.MessageDelay(0, 1, 0) != 0 || s.ExchangeDrops(0, 0, 0) != 0 || s.RetryPenalty(3) != 0 {
		t.Error("nil schedule injected message faults")
	}
	s.RecordDrops(obs.NoLoc, 1, 1)
	s.RecordFailover(obs.NoLoc, true, 1, 0)
	s.RecordUnrecovered(obs.NoLoc, 0)
	if s.Injected() != 0 || s.Failovers() != 0 || s.Unrecovered() != 0 || s.Dropped() != 0 {
		t.Error("nil schedule accumulated counters")
	}
	if !reflect.DeepEqual(s.Spec(), Spec{}) {
		t.Error("nil schedule has a spec")
	}
}

// TestMessageDelayDeterministic: two schedules from the same spec
// produce the identical delay sequence.
func TestMessageDelayDeterministic(t *testing.T) {
	spec := Spec{Seed: 5, Messages: MessageSpec{DelayRate: 0.5, DelayMeanSec: 1e-3}}
	a, _ := NewSchedule(spec)
	b, _ := NewSchedule(spec)
	var da, db []float64
	for i := 0; i < 200; i++ {
		da = append(da, a.MessageDelay(0, 1, 0))
		db = append(db, b.MessageDelay(0, 1, 0))
	}
	if !reflect.DeepEqual(da, db) {
		t.Error("delay sequence differs between identical schedules")
	}
	var nonzero int
	for _, d := range da {
		if d > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Error("delay rate 0.5 never delayed")
	}
	if a.Injected() != int64(nonzero) {
		t.Errorf("injected = %d, want %d (one per delay)", a.Injected(), nonzero)
	}
}

func TestRetryDefaults(t *testing.T) {
	s, err := NewSchedule(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Spec().Retry
	if r.TimeoutSec != 2e-3 || r.Backoff != 2 || r.MaxTimeoutSec != 50e-3 || r.MaxRetries != 4 {
		t.Errorf("defaults wrong: %+v", r)
	}
	s2, err := NewSchedule(Spec{Retry: RetrySpec{TimeoutSec: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Spec().Retry.MaxTimeoutSec; got != 0.1 {
		t.Errorf("MaxTimeoutSec = %g, want raised to TimeoutSec 0.1", got)
	}
}

func TestRankFailedBy(t *testing.T) {
	s, err := NewSchedule(Spec{RankFailures: []RankFailure{{Rank: 5, Round: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if s.RankFailedBy(5, 1) {
		t.Error("rank reported failed before its round")
	}
	if !s.RankFailedBy(5, 2) || !s.RankFailedBy(5, 6) {
		t.Error("rank failure must persist from its round on")
	}
	if s.RankFailedBy(4, 9) {
		t.Error("unrelated rank reported failed")
	}
	var nilSched *Schedule
	if nilSched.RankFailedBy(0, 0) {
		t.Error("nil schedule reported a failed rank")
	}
}

func TestRankFailureSpec(t *testing.T) {
	path := writeSpec(t, `{"seed": 1, "rank_failures": [{"rank": 3, "round": 0}, {"rank": 1, "round": 2}]}`)
	s, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []RankFailure{{Rank: 3, Round: 0}, {Rank: 1, Round: 2}}
	if !reflect.DeepEqual(s.RankFailures, want) {
		t.Fatalf("parsed rank failures %+v, want %+v", s.RankFailures, want)
	}
	for _, bad := range []Spec{
		{RankFailures: []RankFailure{{Rank: -1, Round: 0}}},
		{RankFailures: []RankFailure{{Rank: 0, Round: -2}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%+v: want error, got nil", bad)
		}
	}
}
