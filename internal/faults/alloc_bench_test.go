package faults

import (
	"testing"

	"repro/internal/obs"
)

// The disabled-path contract: a run with no fault schedule must pay
// nothing. Every nil-receiver query the engine's hot path can issue is
// asserted allocation-free, and benchmarked so regressions show in the
// bench logs too.

func TestNilScheduleZeroAllocs(t *testing.T) {
	var s *Schedule
	if n := testing.AllocsPerRun(100, func() {
		s.NodeFailedBy(1, 2)
		s.PressureBy(1, 2)
		s.ApplyPressure(2, nil)
		s.OSTFactor(3, 0.5)
		s.LinkFactor(1, 0.5)
		s.MessageDelay(0, 1, 0.5)
		s.ExchangeDrops(0, 1, 2)
		s.RetryPenalty(3)
		s.RecordDrops(obs.NoLoc, 0, 0)
		s.Injected()
	}); n != 0 {
		t.Fatalf("nil Schedule allocated %v times per op, want 0", n)
	}
}

func BenchmarkNilScheduleQueries(b *testing.B) {
	var s *Schedule
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.NodeFailedBy(1, 2)
		s.OSTFactor(3, 0.5)
		s.LinkFactor(1, 0.5)
		s.MessageDelay(0, 1, 0.5)
		s.ExchangeDrops(0, 1, 2)
	}
}
